// Package adapt is a from-scratch Go implementation of ADAPT
// (Zhou et al., ICPP 2025): an access-density-aware data placement
// strategy for GC-efficient log-structured storage on SSD arrays,
// together with the full substrate it is evaluated on — a
// trace-driven log-structured store simulator with SLA-bounded chunk
// coalescing and zero padding over a RAID-5 chunk model, five baseline
// placement policies (SepGC, DAC, WARCIP, MiDA, SepBIT), workload
// synthesizers, trace parsers, and a concurrent prototype.
//
// The root package is the public facade. A minimal session:
//
//	sim, _ := adapt.NewSimulator(adapt.SimulatorConfig{
//		UserBlocks: 1 << 20,
//		Policy:     adapt.PolicyADAPT,
//	})
//	tr := adapt.GenerateYCSB(adapt.YCSBConfig{Blocks: 1 << 20, Writes: 10 << 20, Fill: true, Theta: 0.99})
//	_ = sim.Replay(tr)
//	fmt.Println(sim.Metrics().WA)
//
// The cmd/ directory holds the experiment binaries (adaptsim,
// adaptbench, tracegen, traceinfo); examples/ holds runnable
// walkthroughs; bench_test.go regenerates every figure of the paper's
// evaluation as a testing.B benchmark.
package adapt
