package adapt

import (
	"fmt"
	"time"

	"adapt/internal/adaptcore"
	"adapt/internal/checker"
	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// Placement policy names accepted by SimulatorConfig.Policy.
const (
	PolicySepGC  = "sepgc"
	PolicyDAC    = "dac"
	PolicyWARCIP = "warcip"
	PolicyMiDA   = "mida"
	PolicySepBIT = "sepbit"
	PolicyADAPT  = "adapt"
)

// Policies lists every available placement policy in the paper's
// evaluation order.
func Policies() []string {
	return []string{PolicySepGC, PolicyDAC, PolicyWARCIP, PolicyMiDA, PolicySepBIT, PolicyADAPT}
}

// Victim policy names accepted by SimulatorConfig.Victim.
const (
	VictimGreedy         = "greedy"
	VictimCostBenefit    = "cost-benefit"
	VictimDChoices       = "d-choices"
	VictimWindowedGreedy = "windowed-greedy"
	VictimRandomGreedy   = "random-greedy"
)

// Victims lists every available GC victim selection policy.
func Victims() []string {
	return []string{VictimGreedy, VictimCostBenefit, VictimDChoices, VictimWindowedGreedy, VictimRandomGreedy}
}

// ErrMismatch is the sentinel behind every Paranoid-mode divergence:
// when the store disagrees with the reference model, Write, Trim,
// Replay, and Verify return errors wrapping it.
var ErrMismatch = checker.ErrMismatch

// ADAPTOptions tunes the ADAPT policy; zero values take defaults.
// The Disable switches support ablation studies.
type ADAPTOptions struct {
	// SampleRate is the spatial sampling rate of the threshold
	// adaptation module (paper prototype: 0.001).
	SampleRate float64
	// GhostSets is the number of concurrent ghost-set simulations.
	GhostSets int
	// DemoteScore is the re-access score required for proactive
	// demotion.
	DemoteScore int
	// DisableAggregation, DisableDemotion, and DisableAdaptation turn
	// off the corresponding mechanism.
	DisableAggregation, DisableDemotion, DisableAdaptation bool
}

// SimulatorConfig describes a simulated log-structured store on an
// SSD array. Zero fields take the paper's defaults (§4.1): 4 KiB
// blocks, 64 KiB chunks, 100 µs coalescing window, 4-SSD RAID-5, 15%
// over-provisioning.
type SimulatorConfig struct {
	// UserBlocks is the user-visible capacity in blocks. Required.
	UserBlocks int64
	// Policy is the data placement policy name (see Policies). It is
	// validated through ParsePolicy; an unknown name surfaces as an
	// error wrapping ErrUnknownPolicy when the simulator is built.
	Policy string
	// Victim is the GC victim selection policy (default greedy),
	// validated through ParseVictim (ErrUnknownVictim on bad names).
	Victim string
	// BlockSize in bytes (default 4096).
	BlockSize int
	// ChunkBlocks is the array chunk size in blocks (default 16).
	ChunkBlocks int
	// SegmentChunks is the segment size in chunks (default derived
	// from capacity).
	SegmentChunks int
	// DataColumns is the RAID data-column count (default 3).
	DataColumns int
	// OverProvision is the spare capacity fraction (default 0.15).
	OverProvision float64
	// SLAWindow is the chunk coalescing deadline (default 100 µs).
	SLAWindow time.Duration
	// Paranoid arms the correctness oracle: the store runs its full
	// invariant sweep after every GC cycle and drain, and the simulator
	// replays every operation through a model-based reference (flat
	// per-LBA store plus a byte-level RAID mirror), failing fast with an
	// error wrapping ErrMismatch on any divergence. Costs roughly 40×
	// in throughput (BenchmarkParanoidReplay) plus a full array mirror
	// in memory; meant for tests and `make paranoid`, not experiments.
	Paranoid bool
	// ADAPT tunes the ADAPT policy (ignored for baselines).
	ADAPT ADAPTOptions
	// GCSched selects the garbage-collection scheduling mode; the zero
	// value keeps the classic synchronous watermark GC.
	GCSched GCSchedConfig
}

// GCSchedConfig is the typed GC-scheduling configuration shared by the
// simulator and the prototype. With Background set, watermark pressure
// no longer triggers a stop-the-world GC cycle inline with a write:
// the cycle becomes a resumable state machine driven in bounded slices
// — per-operation in the deterministic simulator, by the gcsched pacer
// in the served prototype — with a synchronous emergency fallback when
// the free pool hits the hard floor. Invalid values surface as errors
// from the constructor, never panics.
type GCSchedConfig struct {
	// Background enables paced background GC.
	Background bool
	// EmergencyFloor is the free-segment hard floor at which an
	// allocation gives up on the pacer and collects synchronously
	// (default: 2 below the low watermark, at least 1). Must stay below
	// the low watermark, which defaults to groups+2.
	EmergencyFloor int
	// SliceUnits is the relocation budget per GC slice (default 32).
	// One unit is roughly one victim chunk scanned or one block
	// relocated.
	SliceUnits int
}

// sliceUnits returns the defaulted per-slice budget.
func (g GCSchedConfig) sliceUnits() int {
	if g.SliceUnits == 0 {
		return 32
	}
	return g.SliceUnits
}

// build validates the configuration and constructs the store geometry
// and the placement policy instance in one pass. It is the single
// path behind NewSimulator, RunPrototype, and PolicyFootprintBytes, so
// every entry point shares the same validation and defaulting: bad
// names surface as ErrUnknownPolicy/ErrUnknownVictim and bad geometry
// as errors here rather than panics deep inside the store.
func (c SimulatorConfig) build() (lss.Config, lss.Policy, error) {
	fail := func(err error) (lss.Config, lss.Policy, error) { return lss.Config{}, nil, err }
	if c.UserBlocks <= 0 {
		return fail(fmt.Errorf("adapt: UserBlocks must be positive, got %d", c.UserBlocks))
	}
	if c.BlockSize < 0 || c.ChunkBlocks < 0 || c.SegmentChunks < 0 {
		return fail(fmt.Errorf("adapt: negative geometry (BlockSize %d, ChunkBlocks %d, SegmentChunks %d)",
			c.BlockSize, c.ChunkBlocks, c.SegmentChunks))
	}
	if c.DataColumns < 0 {
		return fail(fmt.Errorf("adapt: negative DataColumns %d", c.DataColumns))
	}
	if c.OverProvision < 0 {
		return fail(fmt.Errorf("adapt: negative OverProvision %v", c.OverProvision))
	}
	if c.OverProvision > 0 && c.OverProvision < 0.02 {
		return fail(fmt.Errorf("adapt: OverProvision %v below the 2%% GC floor", c.OverProvision))
	}
	if c.SLAWindow < 0 {
		return fail(fmt.Errorf("adapt: negative SLAWindow %v", c.SLAWindow))
	}
	polName, err := ParsePolicy(c.Policy)
	if err != nil {
		return fail(err)
	}
	victim, err := ParseVictim(c.Victim)
	if err != nil {
		return fail(err)
	}
	vp, err := victim.lss()
	if err != nil {
		return fail(err)
	}
	cfg := lss.Config{
		BlockSize:     c.BlockSize,
		ChunkBlocks:   c.ChunkBlocks,
		SegmentChunks: c.SegmentChunks,
		DataColumns:   c.DataColumns,
		UserBlocks:    c.UserBlocks,
		OverProvision: c.OverProvision,
		SLAWindow:     sim.Time(c.SLAWindow),
		Victim:        vp,
		Paranoid:      c.Paranoid,
	}
	if cfg.ChunkBlocks == 0 {
		cfg.ChunkBlocks = 16
	}
	if cfg.SegmentChunks == 0 {
		segChunks := int(c.UserBlocks / int64(cfg.ChunkBlocks) / 128)
		if segChunks < 2 {
			segChunks = 2
		}
		if segChunks > 32 {
			segChunks = 32
		}
		cfg.SegmentChunks = segChunks
	}
	var pol lss.Policy
	if polName == PolicyADAPT {
		rate := c.ADAPT.SampleRate
		if rate == 0 {
			rate = 2048 / float64(cfg.UserBlocks)
			if rate > 0.5 {
				rate = 0.5
			}
			if rate < 0.002 {
				rate = 0.002
			}
		}
		pol = adaptcore.New(adaptcore.Config{
			UserBlocks:    cfg.UserBlocks,
			SegmentBlocks: cfg.SegmentBlocks(),
			ChunkBlocks:   cfg.ChunkBlocks,
			OverProvision: cfg.OverProvision,
		}, adaptcore.Options{
			SampleRate:         rate,
			Ladder:             c.ADAPT.GhostSets,
			DemoteScore:        c.ADAPT.DemoteScore,
			DisableAggregation: c.ADAPT.DisableAggregation,
			DisableDemotion:    c.ADAPT.DisableDemotion,
			DisableAdaptation:  c.ADAPT.DisableAdaptation,
		})
	} else {
		pol, err = placement.New(string(polName), placement.Params{
			UserBlocks:    cfg.UserBlocks,
			SegmentBlocks: cfg.SegmentBlocks(),
			ChunkBlocks:   cfg.ChunkBlocks,
		})
		if err != nil {
			return fail(err)
		}
	}
	if c.GCSched.SliceUnits < 0 {
		return fail(fmt.Errorf("adapt: negative GCSched.SliceUnits %d", c.GCSched.SliceUnits))
	}
	if c.GCSched.Background {
		cfg.BackgroundGC = true
		cfg.GCEmergencyFloor = c.GCSched.EmergencyFloor
		// The public config never sets GCLowWater, so the store's derived
		// low watermark is groups+2; validate here so a bad floor surfaces
		// as an error instead of the store's internal panic.
		if low := pol.Groups() + 2; c.GCSched.EmergencyFloor != 0 &&
			(c.GCSched.EmergencyFloor < 1 || c.GCSched.EmergencyFloor >= low) {
			return fail(fmt.Errorf("adapt: GCSched.EmergencyFloor %d must be in [1, %d) (low watermark is groups+2 = %d)",
				c.GCSched.EmergencyFloor, low, low))
		}
	} else if c.GCSched.EmergencyFloor != 0 || c.GCSched.SliceUnits != 0 {
		return fail(fmt.Errorf("adapt: GCSched.EmergencyFloor/SliceUnits set without GCSched.Background"))
	}
	return cfg, pol, nil
}

// GroupMetrics is the per-group traffic breakdown.
type GroupMetrics struct {
	Group          int
	UserBlocks     int64
	GCBlocks       int64
	ShadowBlocks   int64
	PaddingBlocks  int64
	PaddingEvents  int64
	SealedSegments int64
}

// Metrics summarizes a simulation run.
type Metrics struct {
	// WA is (user + GC-rewritten blocks) / user blocks (Figure 8).
	WA float64
	// EffectiveWA additionally charges padding and shadow traffic.
	EffectiveWA float64
	// PaddingRatio is padding blocks over all array block traffic
	// (Figure 9).
	PaddingRatio float64

	UserBlocks, GCBlocks, ShadowBlocks, PaddingBlocks int64
	ReadBlocks, SegmentsReclaimed, GCCycles           int64

	// DataChunks and ParityChunks are array-level chunk writes.
	DataChunks, ParityChunks int64

	// Latency summarizes user-block persistence latency: time from
	// arrival to durability (chunk flush or shadow persist). The SLA
	// window bounds it by construction.
	Latency LatencyMetrics

	PerGroup []GroupMetrics
}

// LatencyMetrics summarizes persistence latency.
type LatencyMetrics struct {
	Count      int64
	Mean       time.Duration
	P50        time.Duration // bucket-resolution upper bound
	P99        time.Duration // bucket-resolution upper bound
	Max        time.Duration
	Violations int64 // beyond the SLA window (Drain leftovers only)
}

// Simulator is a trace-driven log-structured store with a placement
// policy. It is not safe for concurrent use.
type Simulator struct {
	store     *lss.Store
	policy    lss.Policy
	oracle    *checker.Oracle // non-nil iff Paranoid
	verifyErr error           // first deferred audit failure (Drain)
	gcStep    int             // per-op GC slice budget; 0 = synchronous GC
}

// NewSimulator builds a simulator for the given configuration.
func NewSimulator(c SimulatorConfig) (*Simulator, error) {
	cfg, pol, err := c.build()
	if err != nil {
		return nil, err
	}
	s := &Simulator{store: lss.New(cfg, pol), policy: pol}
	if c.GCSched.Background {
		s.gcStep = c.GCSched.sliceUnits()
	}
	if c.Paranoid {
		s.oracle, err = checker.New(s.store, checker.Options{Mirror: true})
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// PolicyName returns the active placement policy's name.
func (s *Simulator) PolicyName() string { return s.policy.Name() }

// TelemetryConfig tunes the telemetry subsystem attached by
// EnableTelemetry. Zero values take the telemetry package defaults.
type TelemetryConfig struct {
	// WindowInterval is the time-series snapshot interval in simulated
	// (trace) time. Default 10 ms.
	WindowInterval time.Duration
	// MaxWindows bounds the retained window ring (default 4096).
	MaxWindows int
	// EventCapacity bounds the event tracer ring (default 4096).
	EventCapacity int
}

// EnableTelemetry attaches a telemetry set to the simulator: the
// store's canonical metrics register with the time-series recorder,
// GC/flush/padding events flow into the tracer, and — when the active
// policy is ADAPT — threshold adaptations and proactive demotions are
// instrumented too. Call it once, before replaying any traffic.
// The returned Set exposes the registry, recorder, and tracer for
// export (telemetry.WriteWindowsJSONL, Set.Tracer.WriteJSONL, ...).
func (s *Simulator) EnableTelemetry(tc TelemetryConfig) *telemetry.Set {
	ts := telemetry.New(telemetry.Options{
		WindowInterval: sim.Time(tc.WindowInterval),
		MaxWindows:     tc.MaxWindows,
		EventCapacity:  tc.EventCapacity,
	})
	s.store.Reconfigure(func(r *lss.Runtime) { r.Telemetry = ts })
	if p, ok := s.policy.(*adaptcore.Policy); ok {
		p.SetTelemetry(ts)
	}
	return ts
}

// stepGC drives one bounded background-GC slice when the simulator
// runs in GCSched.Background mode. The simulator has no wall clock, so
// "background" means per-operation pacing: every user op donates one
// slice of budget, which spreads a cycle's relocations across the
// operations that made it necessary instead of charging one victim
// write with the whole cycle.
func (s *Simulator) stepGC() {
	if s.gcStep > 0 {
		s.store.GCStep(s.gcStep)
	}
}

// Write appends user-written blocks starting at lba at the given
// trace time. Under Paranoid, a reference-model divergence surfaces
// here as an error wrapping ErrMismatch.
func (s *Simulator) Write(lba int64, blocks int, at time.Duration) error {
	var err error
	if s.oracle != nil {
		err = s.oracle.Write(lba, blocks, sim.Time(at))
	} else {
		err = s.store.Write(lba, blocks, sim.Time(at))
	}
	if err == nil {
		s.stepGC()
	}
	return err
}

// Read records a user read (workload accounting only).
func (s *Simulator) Read(lba int64, blocks int, at time.Duration) {
	if s.oracle != nil {
		s.oracle.Read(lba, blocks, sim.Time(at))
	} else {
		s.store.Read(lba, blocks, sim.Time(at))
	}
	s.stepGC()
}

// Trim discards blocks (TRIM/UNMAP): their live versions become
// garbage immediately, reclaimable without GC migration.
func (s *Simulator) Trim(lba int64, blocks int, at time.Duration) error {
	var err error
	if s.oracle != nil {
		err = s.oracle.Trim(lba, blocks, sim.Time(at))
	} else {
		err = s.store.Trim(lba, blocks, sim.Time(at))
	}
	if err == nil {
		s.stepGC()
	}
	return err
}

// Drain flushes all buffered chunks, padding remainders; call it when
// a replay finishes (Replay does this automatically). Under Paranoid
// the post-drain audit failure, if any, is held for Verify.
func (s *Simulator) Drain() {
	// Finish any in-flight background cycle first so the drain (and the
	// Paranoid sweep behind it) sees settled GC accounting.
	for s.gcStep > 0 && s.store.GCActive() {
		s.store.GCStep(1 << 30)
	}
	if s.oracle != nil {
		if err := s.oracle.Drain(s.store.Now() + sim.Second); err != nil && s.verifyErr == nil {
			s.verifyErr = err
		}
		return
	}
	s.store.Drain(s.store.Now() + sim.Second)
}

// Verify runs the deepest correctness audit available right now and
// reports the first failure, if any. Without Paranoid it sweeps the
// store's internal invariants; with it, the model-based oracle
// additionally proves the LBA mapping, per-segment garbage accounting,
// RAID parity, and every live block's read-back against the reference.
func (s *Simulator) Verify() error {
	if s.verifyErr != nil {
		return s.verifyErr
	}
	if s.oracle != nil {
		return s.oracle.FullCheck()
	}
	return s.store.CheckInvariants()
}

// Metrics returns a snapshot of the run's traffic accounting.
func (s *Simulator) Metrics() Metrics {
	m := s.store.Metrics()
	a := s.store.Array()
	out := Metrics{
		WA:                m.WA(),
		EffectiveWA:       m.EffectiveWA(),
		PaddingRatio:      m.PaddingRatio(),
		UserBlocks:        m.UserBlocks,
		GCBlocks:          m.GCBlocks,
		ShadowBlocks:      m.ShadowBlocks,
		PaddingBlocks:     m.PaddingBlocks,
		ReadBlocks:        m.ReadBlocks,
		SegmentsReclaimed: m.SegmentsReclaimed,
		GCCycles:          m.GCCycles,
		DataChunks:        a.DataChunks(),
		ParityChunks:      a.ParityChunks(),
		Latency: LatencyMetrics{
			Count:      m.Latency.Count,
			Mean:       time.Duration(m.Latency.Mean()),
			P50:        time.Duration(m.Latency.Quantile(0.5)),
			P99:        time.Duration(m.Latency.Quantile(0.99)),
			Max:        time.Duration(m.Latency.Max),
			Violations: m.Latency.Violations,
		},
	}
	for i, g := range m.PerGroup {
		out.PerGroup = append(out.PerGroup, GroupMetrics{
			Group:          i,
			UserBlocks:     g.UserBlocks,
			GCBlocks:       g.GCBlocks,
			ShadowBlocks:   g.ShadowBlocks,
			PaddingBlocks:  g.PaddingBlocks,
			PaddingEvents:  g.PaddingEvents,
			SealedSegments: g.Sealed,
		})
	}
	return out
}

// ADAPTDiagnostics reports ADAPT's internal mechanism counters, or
// ok=false when the active policy is not ADAPT.
type ADAPTDiagnostics struct {
	Threshold      float64
	Adoptions      int64
	Demotions      int64
	ShadowGrants   int64
	FootprintBytes int64 // sampler + ghost sets + discriminators
	BaseTableBytes int64 // per-LBA last-write table
}

// Diagnostics returns ADAPT-specific counters.
func (s *Simulator) Diagnostics() (ADAPTDiagnostics, bool) {
	p, ok := s.policy.(*adaptcore.Policy)
	if !ok {
		return ADAPTDiagnostics{}, false
	}
	return ADAPTDiagnostics{
		Threshold:      p.Threshold(),
		Adoptions:      p.Adoptions(),
		Demotions:      p.Demotions(),
		ShadowGrants:   p.ShadowGrants(),
		FootprintBytes: p.Footprint(),
		BaseTableBytes: p.BaseFootprint(),
	}, true
}
