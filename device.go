package adapt

import (
	"adapt/internal/ftl"
	"adapt/internal/lss"
)

// DeviceConfig describes a simulated multi-stream SSD (page-mapped
// FTL with erase blocks and greedy device GC), used to measure
// in-device write amplification under different stream mappings
// (paper §3.1).
type DeviceConfig struct {
	// UserPages is the exported logical capacity in 4 KiB pages.
	UserPages int64
	// PagesPerBlock is the erase-block size in pages (default 64).
	PagesPerBlock int
	// OverProvision is the physical spare fraction (default 0.10).
	OverProvision float64
	// Streams is the number of write streams (1 = conventional SSD).
	Streams int
}

// Device is a simulated SSD. Not safe for concurrent use.
type Device struct {
	dev *ftl.Device
}

// NewDevice builds a simulated SSD.
func NewDevice(c DeviceConfig) *Device {
	return &Device{dev: ftl.NewDevice(ftl.Config{
		UserPages:     c.UserPages,
		PagesPerBlock: c.PagesPerBlock,
		OverProvision: c.OverProvision,
		Streams:       c.Streams,
	})}
}

// WritePage stores one logical page through the given stream
// (clamped to the device's stream count).
func (d *Device) WritePage(lpn int64, stream int) error {
	return d.dev.Write(lpn, stream)
}

// DeviceMetrics summarizes device-internal activity.
type DeviceMetrics struct {
	HostPages     int64
	MigratedPages int64
	Erases        int64
	// WA is in-device write amplification: (host+migrated)/host.
	WA float64
	// WearImbalance is max/mean erase count across blocks.
	WearImbalance float64
}

// Metrics returns a snapshot.
func (d *Device) Metrics() DeviceMetrics {
	m := d.dev.Metrics()
	return DeviceMetrics{
		HostPages:     m.HostPages,
		MigratedPages: m.MigratedPages,
		Erases:        m.Erases,
		WA:            m.WA(),
		WearImbalance: d.dev.WearImbalance(),
	}
}

// AttachDevice routes every chunk flush of the simulator to the
// device, addressing pages at the array's physical segment locations
// so that segment reuse appears to the device as page overwrites.
// When mapGroupsToStreams is true, each placement group writes through
// its own stream (multi-stream mode, §3.1); otherwise everything uses
// stream 0. The device must be sized with at least
// SimulatorDevicePages(sim) pages. Only one device (or sink) can be
// attached at a time.
func (s *Simulator) AttachDevice(d *Device, mapGroupsToStreams bool) {
	cfg := s.store.Config()
	segPages := int64(cfg.SegmentBlocks())
	s.store.Reconfigure(func(r *lss.Runtime) {
		r.Sink = func(w lss.ChunkWrite) {
			stream := 0
			if mapGroupsToStreams {
				stream = int(w.Group)
			}
			base := int64(w.Segment)*segPages + int64(w.Chunk)*int64(cfg.ChunkBlocks)
			for p := int64(0); p < int64(cfg.ChunkBlocks); p++ {
				// The address range is bounded by construction; Write only
				// fails for out-of-range pages.
				_ = d.dev.Write(base+p, stream)
			}
		}
	})
}

// SimulatorDevicePages returns the logical page count a device needs
// to back this simulator's physical segment space.
func (s *Simulator) SimulatorDevicePages() int64 {
	return int64(s.store.TotalSegments()) * int64(s.store.Config().SegmentBlocks())
}

// GroupCount returns the number of placement groups the active policy
// uses (the stream count for one-to-one mapping).
func (s *Simulator) GroupCount() int { return s.policy.Groups() }
