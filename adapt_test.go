package adapt

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPoliciesList(t *testing.T) {
	ps := Policies()
	if len(ps) != 6 || ps[5] != PolicyADAPT {
		t.Fatalf("Policies() = %v", ps)
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	if _, err := NewSimulator(SimulatorConfig{}); err == nil {
		t.Fatal("zero UserBlocks accepted")
	}
	if _, err := NewSimulator(SimulatorConfig{UserBlocks: 1024, Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewSimulator(SimulatorConfig{UserBlocks: 1024, Victim: "bogus"}); err == nil {
		t.Fatal("unknown victim accepted")
	}
}

func TestSimulatorEndToEnd(t *testing.T) {
	for _, policy := range Policies() {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			s, err := NewSimulator(SimulatorConfig{
				UserBlocks: 8 << 10,
				Policy:     policy,
			})
			if err != nil {
				t.Fatal(err)
			}
			tr := GenerateYCSB(YCSBConfig{
				Blocks: 8 << 10, Writes: 48 << 10, Fill: true,
				Theta: 0.99, MeanGap: 50 * time.Microsecond, Seed: 1,
			})
			if err := s.Replay(tr); err != nil {
				t.Fatal(err)
			}
			m := s.Metrics()
			if m.WA < 1 || m.WA > 20 {
				t.Fatalf("implausible WA %f", m.WA)
			}
			if m.UserBlocks != 56<<10 {
				t.Fatalf("UserBlocks = %d", m.UserBlocks)
			}
			if m.DataChunks == 0 || m.ParityChunks == 0 {
				t.Fatal("array accounting missing")
			}
			if len(m.PerGroup) == 0 {
				t.Fatal("no per-group metrics")
			}
		})
	}
}

func TestDiagnosticsOnlyForADAPT(t *testing.T) {
	s, err := NewSimulator(SimulatorConfig{UserBlocks: 4096, Policy: PolicyADAPT})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Diagnostics(); !ok {
		t.Fatal("ADAPT simulator has no diagnostics")
	}
	b, err := NewSimulator(SimulatorConfig{UserBlocks: 4096, Policy: PolicySepGC})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Diagnostics(); ok {
		t.Fatal("sepgc simulator reports ADAPT diagnostics")
	}
}

func TestManualWriteAPI(t *testing.T) {
	s, err := NewSimulator(SimulatorConfig{UserBlocks: 1024, Policy: PolicySepGC})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, 4, 0); err != nil {
		t.Fatal(err)
	}
	s.Read(0, 2, time.Millisecond)
	s.Drain()
	m := s.Metrics()
	if m.UserBlocks != 4 || m.ReadBlocks != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if err := s.Write(1<<30, 1, 0); err == nil {
		t.Fatal("out-of-range write accepted")
	}
}

func TestTraceFacadeRoundTrips(t *testing.T) {
	tr := GenerateYCSB(YCSBConfig{Blocks: 256, Writes: 1000, Theta: 0.9, Seed: 3})
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinaryTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatal("binary round trip lost records")
	}
	st := tr.Stats(4096)
	if st.Writes != 1000 {
		t.Fatalf("Stats.Writes = %d", st.Writes)
	}
}

func TestParserFacades(t *testing.T) {
	msr := "128166372003061629,usr,0,Write,0,4096,100\n"
	if tr, err := ParseMSR(strings.NewReader(msr), "m"); err != nil || len(tr.Records) != 1 {
		t.Fatalf("ParseMSR: %v", err)
	}
	ali := "3,W,1024,4096,1000000\n"
	if tr, err := ParseAli(strings.NewReader(ali), "a"); err != nil || len(tr.Records) != 1 {
		t.Fatalf("ParseAli: %v", err)
	}
	tc := "1538323200,8,8,1,1283\n"
	if tr, err := ParseTencent(strings.NewReader(tc), "t"); err != nil || len(tr.Records) != 1 {
		t.Fatalf("ParseTencent: %v", err)
	}
}

func TestDensifyFacade(t *testing.T) {
	tr := &Trace{Name: "sparse", Records: []Record{
		{Op: OpWrite, Offset: 1 << 40, Size: 4096},
		{Op: OpWrite, Offset: 1 << 41, Size: 4096},
	}}
	dense, blocks := tr.Densify(4096)
	if blocks != 2 {
		t.Fatalf("blocks = %d", blocks)
	}
	s, err := NewSimulator(SimulatorConfig{UserBlocks: blocks, Policy: PolicySepGC})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Replay(dense); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteFacade(t *testing.T) {
	vols := NewSuite(SuiteConfig{Profile: ProfileAli, Volumes: 3, ScaleBlocks: 2048, Seed: 1})
	if len(vols) != 3 {
		t.Fatalf("%d volumes", len(vols))
	}
	tr := vols[0].Generate()
	if int64(len(tr.Records)) < vols[0].WriteOps {
		t.Fatal("trace shorter than write ops")
	}
	s, err := NewSimulator(SimulatorConfig{
		UserBlocks: vols[0].FootprintBlocks,
		Policy:     PolicyADAPT,
		Victim:     VictimCostBenefit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Replay(tr); err != nil {
		t.Fatal(err)
	}
	if s.Metrics().WA < 1 {
		t.Fatal("bad WA")
	}
}

func TestADAPTAblationSwitches(t *testing.T) {
	run := func(opts ADAPTOptions) Metrics {
		s, err := NewSimulator(SimulatorConfig{
			UserBlocks: 4096, Policy: PolicyADAPT, ADAPT: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := GenerateYCSB(YCSBConfig{
			Blocks: 4096, Writes: 16 << 10, Fill: true,
			Theta: 0.99, MeanGap: 300 * time.Microsecond, Seed: 9,
		})
		if err := s.Replay(tr); err != nil {
			t.Fatal(err)
		}
		return s.Metrics()
	}
	full := run(ADAPTOptions{})
	noAgg := run(ADAPTOptions{DisableAggregation: true})
	if full.ShadowBlocks == 0 {
		t.Fatal("aggregation inactive in full configuration on sparse load")
	}
	if noAgg.ShadowBlocks != 0 {
		t.Fatal("DisableAggregation still produced shadow traffic")
	}
	if full.PaddingBlocks > noAgg.PaddingBlocks {
		t.Fatalf("aggregation increased padding: %d > %d", full.PaddingBlocks, noAgg.PaddingBlocks)
	}
}
