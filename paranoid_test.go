package adapt

import (
	"testing"
	"time"
)

// TestParanoidReplay runs a full zipfian replay through the public
// Paranoid mode: every operation is cross-checked against the
// reference model and byte mirror, and Verify gives the final clean
// bill. GC must actually run or the oracle proved nothing.
func TestParanoidReplay(t *testing.T) {
	sim, err := NewSimulator(SimulatorConfig{
		UserBlocks:    4 << 10,
		Policy:        PolicyADAPT,
		ChunkBlocks:   4,
		SegmentChunks: 8,
		OverProvision: 0.25,
		Paranoid:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateYCSB(YCSBConfig{
		Blocks: 4 << 10,
		Writes: 16 << 10,
		Fill:   true,
		Theta:  0.99,
		Seed:   42,
	})
	if err := sim.Replay(tr); err != nil {
		t.Fatalf("paranoid replay: %v", err)
	}
	if err := sim.Verify(); err != nil {
		t.Fatalf("final audit: %v", err)
	}
	if m := sim.Metrics(); m.GCBlocks == 0 {
		t.Fatalf("GC never ran (WA %.3f); the oracle audited nothing interesting", m.WA)
	}
	// Manual traffic after a replay stays under the oracle too.
	if err := sim.Write(1, 2, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := sim.Trim(1, 1, time.Second); err != nil {
		t.Fatal(err)
	}
	sim.Drain()
	if err := sim.Verify(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkParanoidReplay measures what Paranoid mode costs: the same
// zipfian replay with the oracle off and on. The ratio goes into
// EXPERIMENTS.md §Paranoid overhead.
func BenchmarkParanoidReplay(b *testing.B) {
	tr := GenerateYCSB(YCSBConfig{
		Blocks: 4 << 10,
		Writes: 16 << 10,
		Fill:   true,
		Theta:  0.99,
		Seed:   42,
	})
	for _, paranoid := range []bool{false, true} {
		name := "plain"
		if paranoid {
			name = "paranoid"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := NewSimulator(SimulatorConfig{
					UserBlocks:    4 << 10,
					Policy:        PolicyADAPT,
					ChunkBlocks:   4,
					SegmentChunks: 8,
					OverProvision: 0.25,
					Paranoid:      paranoid,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Replay(tr); err != nil {
					b.Fatal(err)
				}
				if err := s.Verify(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestParanoidPrototypeFault reruns the concurrent fault-injection
// prototype with the store's paranoid self-checks armed: the full
// invariant sweep after every GC cycle and drain now runs inside the
// degraded/rebuild phases, under the race detector when `make check`
// drives it.
func TestParanoidPrototypeFault(t *testing.T) {
	res, err := RunPrototype(PrototypeConfig{
		Simulator: SimulatorConfig{
			UserBlocks: 8 << 10,
			Policy:     PolicyADAPT,
			Paranoid:   true,
		},
		Clients:     4,
		Ops:         12000,
		Theta:       0.99,
		Fill:        true,
		ServiceTime: time.Microsecond,
		QueueDepth:  8,
		Seed:        7,
		Fault: FaultConfig{
			FailDevice:      1,
			FailAtOp:        3000,
			RebuildDelayOps: 2000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedDevice != 1 || res.RebuildChunks == 0 {
		t.Fatalf("fault path not exercised: %+v", res)
	}
}
