package adapt

import (
	"time"

	"adapt/internal/prototype"
)

// Ingest is the request-facing engine API: everything a serving layer
// needs to drive traffic against a live store — writes, reads, trims
// (plain, timed, and batched), fault operations, stats, and the
// background-GC stepping surface. It is the public face of the
// prototype engines; NewEngine is the supported way to obtain one.
// All methods are safe for concurrent use.
type Ingest = prototype.Ingest

// GCShard is one shard's background-GC stepping surface (need,
// urgency, bounded slices); Ingest.GCShards exposes one per shard for
// an external pacer when the store runs with GCSched.Background.
type GCShard = prototype.GCShard

// OpTiming is the per-operation timing breakdown returned by the
// Timed variants of the Ingest operations.
type OpTiming = prototype.OpTiming

// BatchWrite is one write of a batched group commit.
type BatchWrite = prototype.BatchWrite

// EngineStats is a point-in-time snapshot of an engine's traffic,
// GC, latency, and queueing counters.
type EngineStats = prototype.EngineStats

// EngineConfig describes a standalone ingest engine. The store
// geometry, placement policy, and GC scheduling mode all come from the
// embedded SimulatorConfig, so an engine shares the simulator's
// validation and defaulting (bad names and bad GC floors surface as
// errors here, never panics deeper in the stack).
type EngineConfig struct {
	// Simulator is the store geometry, placement policy, and GC
	// scheduling mode (GCSched).
	Simulator SimulatorConfig
	// ServiceTime is the modelled device time per chunk write (default
	// 50 µs ≈ 64 KiB chunks at 1.3 GB/s per SSD).
	ServiceTime time.Duration
	// ReadServiceTime is the device time per chunk read (default half
	// the write service time).
	ReadServiceTime time.Duration
	// QueueDepth bounds each device's queue (default 8).
	QueueDepth int
	// Fill writes every block sequentially before the engine is
	// returned, so subsequent traffic runs at full utilization with GC
	// active.
	Fill bool
	// Verify attaches the correctness oracle: all traffic is
	// cross-checked against a flat reference model, and Close runs a
	// full O(capacity) check.
	Verify bool
}

// NewEngine builds and starts a standalone ingest engine through the
// validated public configuration path. The caller must Close it to
// drain open chunks and stop the device workers. Constructing internal
// prototype engines directly is deprecated for anything outside this
// module's own tooling: it bypasses configuration validation and the
// typed GCSchedConfig mapping.
func NewEngine(c EngineConfig) (Ingest, error) {
	cfg, pol, err := c.Simulator.build()
	if err != nil {
		return nil, err
	}
	return prototype.NewEngine(prototype.EngineConfig{
		Store:           cfg,
		Policy:          pol,
		ServiceTime:     c.ServiceTime,
		ReadServiceTime: c.ReadServiceTime,
		QueueDepth:      c.QueueDepth,
		Fill:            c.Fill,
		Verify:          c.Verify,
	})
}
