package adapt

import (
	"bytes"
	"testing"
	"time"
)

func TestFacadeCheckpointRecovery(t *testing.T) {
	cfg := SimulatorConfig{UserBlocks: 4096, Policy: PolicyADAPT}
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateYCSB(YCSBConfig{
		Blocks: 4096, Writes: 16 << 10, Fill: true,
		Theta: 0.99, MeanGap: 120 * time.Microsecond, Seed: 4,
	})
	if err := s.Replay(tr); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := RecoverSimulator(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The recovered store accepts further writes under the same policy.
	if err := r.Write(0, 4, 0); err != nil {
		t.Fatal(err)
	}
	r.Drain()
	if m := r.Metrics(); m.UserBlocks != 4 {
		t.Fatalf("recovered store user blocks = %d", m.UserBlocks)
	}
	// Geometry mismatch must be rejected.
	var buf2 bytes.Buffer
	if err := s.WriteCheckpoint(&buf2); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.UserBlocks = 8192
	if _, err := RecoverSimulator(&buf2, bad); err == nil {
		t.Fatal("mismatched geometry accepted")
	}
}

func TestFacadeDevice(t *testing.T) {
	s, err := NewSimulator(SimulatorConfig{UserBlocks: 4096, Policy: PolicySepBIT})
	if err != nil {
		t.Fatal(err)
	}
	dev := NewDevice(DeviceConfig{
		UserPages:     s.SimulatorDevicePages(),
		PagesPerBlock: 64,
		OverProvision: 0.1,
		Streams:       s.GroupCount(),
	})
	s.AttachDevice(dev, true)
	tr := GenerateYCSB(YCSBConfig{
		Blocks: 4096, Writes: 16 << 10, Fill: true,
		Theta: 0.99, MeanGap: 10 * time.Microsecond, Seed: 6,
	})
	if err := s.Replay(tr); err != nil {
		t.Fatal(err)
	}
	m := dev.Metrics()
	if m.HostPages == 0 {
		t.Fatal("device saw no traffic")
	}
	if m.WA < 1 {
		t.Fatalf("device WA %f", m.WA)
	}
	if m.WearImbalance < 1 {
		t.Fatalf("wear imbalance %f", m.WearImbalance)
	}
}

func TestFacadeLatencyMetrics(t *testing.T) {
	s, err := NewSimulator(SimulatorConfig{UserBlocks: 2048, Policy: PolicySepGC})
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateYCSB(YCSBConfig{
		Blocks: 2048, Writes: 8 << 10, Fill: true,
		Theta: 0.9, MeanGap: 60 * time.Microsecond, Seed: 8,
	})
	if err := s.Replay(tr); err != nil {
		t.Fatal(err)
	}
	l := s.Metrics().Latency
	if l.Count == 0 {
		t.Fatal("no latency samples")
	}
	if l.Mean <= 0 || l.P99 < l.P50 || l.Max < l.P50 {
		t.Fatalf("latency summary inconsistent: %+v", l)
	}
	// The 100 µs SLA bounds persistence latency during operation.
	if l.Mean > 100*time.Microsecond {
		t.Fatalf("mean latency %v exceeds the SLA window", l.Mean)
	}
}

func TestFacadeTrim(t *testing.T) {
	s, err := NewSimulator(SimulatorConfig{UserBlocks: 1024, Policy: PolicySepGC})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, 8, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Trim(0, 8, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Trim(1<<20, 1, 0); err == nil {
		t.Fatal("out-of-range trim accepted")
	}
}
