// Prototype: the concurrent experiment of the paper's Figure 12a —
// client goroutines hammer the store with YCSB-A zipfian writes while
// chunk flushes compete for bandwidth-modelled SSDs. More clients
// saturate the array; policies that generate less GC and padding
// traffic leave more device time for user writes.
package main

import (
	"fmt"
	"log"
	"time"

	"adapt"
)

func main() {
	const blocks = 32 << 10

	fmt.Printf("%-8s %8s %14s %8s %10s\n", "policy", "clients", "ops/s", "WA", "elapsed")
	for _, clients := range []int{1, 4, 8} {
		for _, policy := range []string{adapt.PolicySepGC, adapt.PolicySepBIT, adapt.PolicyADAPT} {
			res, err := adapt.RunPrototype(adapt.PrototypeConfig{
				Simulator: adapt.SimulatorConfig{
					UserBlocks: blocks,
					Policy:     policy,
				},
				Clients:     clients,
				Ops:         8 * blocks,
				Theta:       0.99,
				Fill:        true, // start at full utilization: GC competes for bandwidth
				ServiceTime: 50 * time.Microsecond,
				QueueDepth:  8,
				Seed:        1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %8d %14.0f %8.3f %10v\n",
				policy, clients, res.OpsPerSec, res.WA, res.Elapsed.Round(time.Millisecond))
		}
	}

	fmt.Println("\nmemory footprint (warmed, YCSB-A):")
	fmt.Printf("%-10s %14s %14s\n", "blocks", "sepbit", "adapt")
	for _, b := range []int64{16 << 10, 64 << 10, 256 << 10} {
		sep, err := adapt.PolicyFootprintBytes(adapt.PolicySepBIT, b, b)
		if err != nil {
			log.Fatal(err)
		}
		ad, err := adapt.PolicyFootprintBytes(adapt.PolicyADAPT, b, b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %13dB %13dB (+%.1f%%)\n", b, sep, ad,
			100*float64(ad-sep)/float64(sep))
	}
}
