// Cloudreplay: synthesize an Alibaba-profile volume suite (sparse
// request rates, small writes, zipfian skew) and compare all six
// placement policies on it — a miniature of the paper's Figure 8.
package main

import (
	"fmt"
	"log"

	"adapt"
)

func main() {
	vols := adapt.NewSuite(adapt.SuiteConfig{
		Profile:     adapt.ProfileAli,
		Volumes:     4,
		ScaleBlocks: 16 << 10,
		Seed:        7,
	})

	fmt.Printf("%-8s %-28s %8s %8s %10s\n", "policy", "volume", "WA", "effWA", "padding%")
	for _, policy := range adapt.Policies() {
		var userSum, gcSum int64
		for _, vol := range vols {
			sim, err := adapt.NewSimulator(adapt.SimulatorConfig{
				UserBlocks: vol.FootprintBlocks,
				Policy:     policy,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := sim.Replay(vol.Generate()); err != nil {
				log.Fatal(err)
			}
			m := sim.Metrics()
			userSum += m.UserBlocks
			gcSum += m.GCBlocks
			fmt.Printf("%-8s %-28s %8.3f %8.3f %9.2f%%\n",
				policy, vol.Name, m.WA, m.EffectiveWA, 100*m.PaddingRatio)
		}
		fmt.Printf("%-8s %-28s %8.3f\n\n", policy, "OVERALL",
			float64(userSum+gcSum)/float64(userSum))
	}
}
