// Tuning: sensitivity analysis in the style of the paper's Figure 11 —
// sweep access density (mean interarrival gap) and zipfian skew, and
// watch how ADAPT and SepGC respond. It also demonstrates the ablation
// switches: ADAPT with cross-group aggregation disabled.
package main

import (
	"fmt"
	"log"
	"time"

	"adapt"
)

const blocks = 16 << 10

func runOnce(policy string, gap time.Duration, theta float64, opts adapt.ADAPTOptions) adapt.Metrics {
	sim, err := adapt.NewSimulator(adapt.SimulatorConfig{
		UserBlocks: blocks,
		Policy:     policy,
		ADAPT:      opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := adapt.GenerateYCSB(adapt.YCSBConfig{
		Blocks:  blocks,
		Writes:  6 * blocks,
		Fill:    true,
		Theta:   theta,
		MeanGap: gap,
		Seed:    3,
	})
	if err := sim.Replay(tr); err != nil {
		log.Fatal(err)
	}
	return sim.Metrics()
}

func main() {
	fmt.Println("== access density sweep (θ = 0.99) ==")
	fmt.Printf("%-10s %10s %10s %12s\n", "density", "policy", "WA", "padding%")
	for _, d := range []struct {
		name string
		gap  time.Duration
	}{
		{"light", 300 * time.Microsecond},
		{"medium", 60 * time.Microsecond},
		{"heavy", 5 * time.Microsecond},
	} {
		for _, p := range []string{adapt.PolicySepGC, adapt.PolicyADAPT} {
			m := runOnce(p, d.gap, 0.99, adapt.ADAPTOptions{})
			fmt.Printf("%-10s %10s %10.3f %11.2f%%\n", d.name, p, m.WA, 100*m.PaddingRatio)
		}
	}

	fmt.Println("\n== skew sweep (medium density) ==")
	fmt.Printf("%-10s %10s %10s\n", "zipf α", "policy", "WA")
	for _, alpha := range []float64{0, 0.5, 0.9, 0.99} {
		for _, p := range []string{adapt.PolicySepGC, adapt.PolicyADAPT} {
			m := runOnce(p, 60*time.Microsecond, alpha, adapt.ADAPTOptions{})
			fmt.Printf("%-10.2f %10s %10.3f\n", alpha, p, m.WA)
		}
	}

	fmt.Println("\n== ADAPT ablations (light density, θ = 0.99) ==")
	fmt.Printf("%-24s %10s %10s %12s\n", "variant", "WA", "effWA", "padding%")
	variants := []struct {
		name string
		opts adapt.ADAPTOptions
	}{
		{"full", adapt.ADAPTOptions{}},
		{"no aggregation", adapt.ADAPTOptions{DisableAggregation: true}},
		{"no demotion", adapt.ADAPTOptions{DisableDemotion: true}},
		{"no threshold adapt", adapt.ADAPTOptions{DisableAdaptation: true}},
	}
	for _, v := range variants {
		m := runOnce(adapt.PolicyADAPT, 300*time.Microsecond, 0.99, v.opts)
		fmt.Printf("%-24s %10.3f %10.3f %11.2f%%\n", v.name, m.WA, m.EffectiveWA, 100*m.PaddingRatio)
	}
}
