// Multistream: the §3.1 claim — mapping ADAPT's placement groups to
// SSD streams one-to-one reduces write amplification *inside* the
// device, because segments with similar lifetimes land in the same
// erase blocks. The same workload is replayed twice per policy: once
// against a single-stream SSD, once with groups mapped to streams.
package main

import (
	"fmt"
	"log"
	"time"

	"adapt"
)

func main() {
	const blocks = 16 << 10

	run := func(policy string, multi bool) (adapt.DeviceMetrics, adapt.Metrics) {
		sim, err := adapt.NewSimulator(adapt.SimulatorConfig{
			UserBlocks: blocks,
			Policy:     policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		streams := 1
		if multi {
			streams = sim.GroupCount()
		}
		dev := adapt.NewDevice(adapt.DeviceConfig{
			UserPages:     sim.SimulatorDevicePages(),
			PagesPerBlock: 256,
			OverProvision: 0.07,
			Streams:       streams,
		})
		sim.AttachDevice(dev, multi)
		tr := adapt.GenerateYCSB(adapt.YCSBConfig{
			Blocks: blocks, Writes: 6 * blocks, Fill: true,
			Theta: 0.99, MeanGap: 60 * time.Microsecond, Seed: 5,
		})
		if err := sim.Replay(tr); err != nil {
			log.Fatal(err)
		}
		return dev.Metrics(), sim.Metrics()
	}

	fmt.Printf("%-8s %14s %14s %12s %12s\n",
		"policy", "1-stream devWA", "multi devWA", "reduction", "host WA")
	for _, policy := range []string{adapt.PolicySepGC, adapt.PolicySepBIT, adapt.PolicyADAPT} {
		single, _ := run(policy, false)
		multi, host := run(policy, true)
		fmt.Printf("%-8s %14.3f %14.3f %11.1f%% %12.3f\n",
			policy, single.WA, multi.WA,
			100*(single.WA-multi.WA)/single.WA, host.EffectiveWA)
	}
	fmt.Println("\nDevice WA multiplies with host WA: the array-level data placement")
	fmt.Println("and the in-device stream separation compound (§3.1).")
}
