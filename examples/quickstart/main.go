// Quickstart: build a simulated log-structured store on an SSD array,
// replay an update-heavy workload through ADAPT, and print the write
// amplification and padding accounting.
package main

import (
	"fmt"
	"log"
	"time"

	"adapt"
)

func main() {
	const blocks = 32 << 10 // 128 MiB volume of 4 KiB blocks

	// A store with the paper's defaults: 64 KiB chunks on a 4-SSD
	// RAID-5, 100 µs coalescing SLA, 15% over-provisioning.
	sim, err := adapt.NewSimulator(adapt.SimulatorConfig{
		UserBlocks: blocks,
		Policy:     adapt.PolicyADAPT,
		Victim:     adapt.VictimGreedy,
	})
	if err != nil {
		log.Fatal(err)
	}

	// YCSB-A style: fill the volume, then 8× zipfian overwrites with
	// sparse arrivals (300 µs mean gap ⇒ chunks rarely fill in time).
	tr := adapt.GenerateYCSB(adapt.YCSBConfig{
		Blocks:  blocks,
		Writes:  8 * blocks,
		Fill:    true,
		Theta:   0.99,
		MeanGap: 300 * time.Microsecond,
		Seed:    42,
	})

	if err := sim.Replay(tr); err != nil {
		log.Fatal(err)
	}

	m := sim.Metrics()
	fmt.Printf("user writes:        %d blocks\n", m.UserBlocks)
	fmt.Printf("GC rewrites:        %d blocks\n", m.GCBlocks)
	fmt.Printf("shadow appends:     %d blocks\n", m.ShadowBlocks)
	fmt.Printf("zero padding:       %d blocks\n", m.PaddingBlocks)
	fmt.Printf("write amplification: %.3f (effective %.3f)\n", m.WA, m.EffectiveWA)
	fmt.Printf("padding ratio:       %.2f%%\n", 100*m.PaddingRatio)

	if d, ok := sim.Diagnostics(); ok {
		fmt.Printf("\nADAPT internals: hot/cold threshold %.0f blocks, "+
			"%d ghost adoptions, %d proactive demotions, %d shadow grants\n",
			d.Threshold, d.Adoptions, d.Demotions, d.ShadowGrants)
	}
}
