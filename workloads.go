package adapt

import (
	"time"

	"adapt/internal/sim"
	"adapt/internal/workload"
)

// YCSBConfig describes a YCSB-A style update-heavy workload (§4.3).
type YCSBConfig struct {
	// Blocks is the record space (one 4 KiB block per record).
	Blocks int64
	// Writes is the number of update writes to generate.
	Writes int64
	// Fill prepends a sequential write of every block.
	Fill bool
	// Theta is the zipfian constant (0 uniform, YCSB default 0.99).
	Theta float64
	// MeanGap is the mean interarrival time; gaps above the 100 µs SLA
	// window make the workload "light" in the paper's terms.
	MeanGap time.Duration
	// ReadRatio interleaves reads at this rate.
	ReadRatio float64
	// Seed selects the deterministic random stream.
	Seed uint64
}

// GenerateYCSB materializes the workload as a trace.
func GenerateYCSB(c YCSBConfig) *Trace {
	return fromInternal(workload.Generate(workload.YCSBConfig{
		Blocks:    c.Blocks,
		Writes:    c.Writes,
		Fill:      c.Fill,
		Theta:     c.Theta,
		MeanGap:   sim.Time(c.MeanGap),
		ReadRatio: c.ReadRatio,
		Seed:      c.Seed,
	}))
}

// Production profiles for synthesized volume suites.
const (
	ProfileAli     = "ali"
	ProfileTencent = "tencent"
	ProfileMSRC    = "msrc"
)

// Volume describes one synthesized production volume; Generate
// materializes its trace.
type Volume struct {
	Name            string
	FootprintBlocks int64
	Theta           float64
	ReadRatio       float64
	Rate            float64
	WriteOps        int64

	inner workload.Volume
}

// Generate materializes the volume's trace.
func (v Volume) Generate() *Trace { return fromInternal(v.inner.Generate()) }

// SuiteConfig controls production-suite synthesis (§2.3/Figure 2
// distributions).
type SuiteConfig struct {
	// Profile is one of ProfileAli, ProfileTencent, ProfileMSRC.
	Profile string
	// Volumes is the number of volumes (the paper samples 50).
	Volumes int
	// ScaleBlocks centers per-volume footprints (default 32 Ki blocks).
	ScaleBlocks int64
	// OverwriteFactor sets write volume relative to footprint.
	OverwriteFactor float64
	// Seed selects the deterministic random stream.
	Seed uint64
}

// NewSuite synthesizes a production volume suite.
func NewSuite(c SuiteConfig) []Volume {
	vols := workload.NewSuite(workload.SuiteConfig{
		Profile:         workload.Profile(c.Profile),
		Volumes:         c.Volumes,
		ScaleBlocks:     c.ScaleBlocks,
		OverwriteFactor: c.OverwriteFactor,
		Seed:            c.Seed,
	})
	out := make([]Volume, len(vols))
	for i, v := range vols {
		out[i] = Volume{
			Name:            v.Name,
			FootprintBlocks: v.FootprintBlocks,
			Theta:           v.Theta,
			ReadRatio:       v.ReadRatio,
			Rate:            v.Rate,
			WriteOps:        v.WriteOps,
			inner:           v,
		}
	}
	return out
}
