package adapt

import (
	"errors"
	"fmt"

	"adapt/internal/lss"
)

// Sentinel errors returned (wrapped) by the name-parsing API, so
// callers can distinguish a bad policy name from a bad victim name
// with errors.Is.
var (
	ErrUnknownPolicy = errors.New("adapt: unknown placement policy")
	ErrUnknownVictim = errors.New("adapt: unknown victim policy")
)

// Policy is a validated placement policy name. The untyped string
// constants (PolicySepGC, ..., PolicyADAPT) assign to it directly, and
// ParsePolicy lifts runtime strings (flags, config files) into it with
// validation. SimulatorConfig.Policy remains a plain string for
// compatibility; it is parsed through ParsePolicy when the simulator
// is built.
type Policy string

// String returns the policy name.
func (p Policy) String() string { return string(p) }

// ParsePolicy validates a placement policy name. The empty string
// parses to the default (ADAPT); unknown names return an error
// wrapping ErrUnknownPolicy.
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "":
		return PolicyADAPT, nil
	case PolicySepGC, PolicyDAC, PolicyWARCIP, PolicyMiDA, PolicySepBIT, PolicyADAPT:
		return Policy(name), nil
	default:
		return "", fmt.Errorf("%w: %q", ErrUnknownPolicy, name)
	}
}

// Victim is a validated GC victim policy name. Like Policy, the
// untyped constants (VictimGreedy, ...) assign to it directly and
// SimulatorConfig.Victim stays a plain string on the outside.
type Victim string

// String returns the victim policy name.
func (v Victim) String() string { return string(v) }

// ParseVictim validates a victim policy name. The empty string parses
// to the default (greedy); unknown names return an error wrapping
// ErrUnknownVictim.
func ParseVictim(name string) (Victim, error) {
	if _, err := victimPolicy(name); err != nil {
		return "", err
	}
	if name == "" {
		return VictimGreedy, nil
	}
	return Victim(name), nil
}

// lss maps a validated Victim onto the store's enum.
func (v Victim) lss() (lss.VictimPolicy, error) { return victimPolicy(string(v)) }

// victimPolicy is the single name→enum mapping behind ParseVictim and
// Victim.lss.
func victimPolicy(name string) (lss.VictimPolicy, error) {
	switch name {
	case "", VictimGreedy:
		return lss.Greedy, nil
	case VictimCostBenefit:
		return lss.CostBenefit, nil
	case VictimDChoices:
		return lss.DChoices, nil
	case VictimWindowedGreedy:
		return lss.WindowedGreedy, nil
	case VictimRandomGreedy:
		return lss.RandomGreedy, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnknownVictim, name)
	}
}
