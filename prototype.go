package adapt

import (
	"time"

	"adapt/internal/prototype"
)

// PrototypeConfig describes a concurrent prototype run (§4.4): client
// goroutines issue zipfian 4 KiB writes against a shared store whose
// chunk flushes are dispatched to bandwidth-modelled SSDs through
// bounded queues.
type PrototypeConfig struct {
	// Simulator is the store geometry and policy (Victim selects GC).
	Simulator SimulatorConfig
	// Clients is the number of writer goroutines (paper: 1, 4, 8).
	Clients int
	// Ops is the total number of user block writes.
	Ops int64
	// Theta is the zipfian skew (YCSB-A: 0.99).
	Theta float64
	// Fill writes every block sequentially before the measured phase,
	// so updates run at full utilization with GC active.
	Fill bool
	// ReadRatio interleaves reads at this fraction of operations
	// (YCSB-A: 0.5); reads consume device bandwidth.
	ReadRatio float64
	// ServiceTime is the modelled device time per 64 KiB chunk
	// (default 50 µs ≈ 1.3 GB/s per SSD).
	ServiceTime time.Duration
	// QueueDepth bounds each device queue (paper: I/O depth 8).
	QueueDepth int
	// Seed drives the client streams.
	Seed uint64
}

// PrototypeResult summarizes a prototype run.
type PrototypeResult struct {
	OpsPerSec     float64
	Elapsed       time.Duration
	WA            float64
	PaddingRatio  float64
	ChunksWritten int64
}

// RunPrototype executes a concurrent prototype experiment.
func RunPrototype(c PrototypeConfig) (PrototypeResult, error) {
	cfg, err := c.Simulator.lssConfig()
	if err != nil {
		return PrototypeResult{}, err
	}
	sim, err := NewSimulator(c.Simulator)
	if err != nil {
		return PrototypeResult{}, err
	}
	res, err := prototype.Run(prototype.Config{
		Store:       cfg,
		Policy:      sim.policy,
		Clients:     c.Clients,
		Ops:         c.Ops,
		Theta:       c.Theta,
		Fill:        c.Fill,
		ReadRatio:   c.ReadRatio,
		ServiceTime: c.ServiceTime,
		QueueDepth:  c.QueueDepth,
		Seed:        c.Seed,
	})
	if err != nil {
		return PrototypeResult{}, err
	}
	return PrototypeResult{
		OpsPerSec:     res.OpsPerSec,
		Elapsed:       res.Elapsed,
		WA:            res.WA,
		PaddingRatio:  res.PaddingRatio,
		ChunksWritten: res.ChunksWritten,
	}, nil
}

// PolicyFootprintBytes reports the metadata memory cost of a policy at
// the given store size after warming it with ops zipfian writes —
// the Figure 12b comparison.
func PolicyFootprintBytes(policy string, userBlocks, warmOps int64) (int64, error) {
	s, err := NewSimulator(SimulatorConfig{UserBlocks: userBlocks, Policy: policy})
	if err != nil {
		return 0, err
	}
	tr := GenerateYCSB(YCSBConfig{Blocks: userBlocks, Writes: warmOps, Theta: 0.99, Seed: 1})
	if err := s.Replay(tr); err != nil {
		return 0, err
	}
	if d, ok := s.Diagnostics(); ok {
		return d.BaseTableBytes + d.FootprintBytes, nil
	}
	return prototype.Footprint(s.policy), nil
}
