package adapt

import (
	"time"

	"adapt/internal/prototype"
)

// FaultConfig arms the prototype's fault injector: one device of the
// RAID-5 array fails mid-run, reads of it are served by XOR
// reconstruction fan-out, GC runs throttled while the rebuild lags its
// watermark, and the rebuild streams the lost column back through the
// same bounded device queues as user traffic. The zero value keeps the
// run healthy.
type FaultConfig struct {
	// FailDevice is the array column (0-based, parity included) to fail
	// when FailAtOp is set.
	FailDevice int
	// FailAtOp fires the failure at this user-op count (first op = 1).
	FailAtOp int64
	// MTBFOps, when positive, replaces the fixed plan with a seeded
	// exponential failure schedule with this mean, in ops.
	MTBFOps int64
	// RebuildDelayOps delays the rebuild start by this many further
	// user ops after the failure.
	RebuildDelayOps int64
	// RebuildBurst is chunks per rebuild dispatch round (default 8).
	RebuildBurst int
	// QueueTimeout bounds one device-queue send attempt before it
	// counts as a retry (default 2ms).
	QueueTimeout time.Duration
	// RetryMax is the number of timed-out attempts before the final
	// blocking send (default 5); operations are never dropped.
	RetryMax int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between retries (defaults 50µs / 5ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// DegradedGCWatermark is the rebuild-progress fraction below which
	// the store runs throttled degraded-mode GC (default 0.5).
	DegradedGCWatermark float64
}

func (f FaultConfig) internal() prototype.FaultConfig {
	return prototype.FaultConfig{
		FailDevice:          f.FailDevice,
		FailAtOp:            f.FailAtOp,
		MTBFOps:             f.MTBFOps,
		RebuildDelayOps:     f.RebuildDelayOps,
		RebuildBurst:        f.RebuildBurst,
		QueueTimeout:        f.QueueTimeout,
		RetryMax:            f.RetryMax,
		BackoffBase:         f.BackoffBase,
		BackoffCap:          f.BackoffCap,
		DegradedGCWatermark: f.DegradedGCWatermark,
	}
}

// PrototypeConfig describes a concurrent prototype run (§4.4): client
// goroutines issue zipfian 4 KiB writes against a shared store whose
// chunk flushes are dispatched to bandwidth-modelled SSDs through
// bounded queues.
type PrototypeConfig struct {
	// Simulator is the store geometry and policy (Victim selects GC).
	Simulator SimulatorConfig
	// Clients is the number of writer goroutines (paper: 1, 4, 8).
	Clients int
	// Ops is the total number of user block writes.
	Ops int64
	// Theta is the zipfian skew (YCSB-A: 0.99).
	Theta float64
	// Fill writes every block sequentially before the measured phase,
	// so updates run at full utilization with GC active.
	Fill bool
	// ReadRatio interleaves reads at this fraction of operations
	// (YCSB-A: 0.5); reads consume device bandwidth.
	ReadRatio float64
	// ServiceTime is the modelled device time per 64 KiB chunk
	// (default 50 µs ≈ 1.3 GB/s per SSD).
	ServiceTime time.Duration
	// QueueDepth bounds each device queue (paper: I/O depth 8).
	QueueDepth int
	// Seed drives the client streams.
	Seed uint64
	// Fault arms the fault injector; the zero value stays healthy.
	Fault FaultConfig
}

// PhaseResult summarizes one phase of a fault run (healthy, degraded,
// rebuilding, rebuilt).
type PhaseResult struct {
	Phase     string
	Ops       int64
	Elapsed   time.Duration
	OpsPerSec float64
	WA        float64
	P99       time.Duration
}

// PrototypeResult summarizes a prototype run. The fault fields are
// populated only when FaultConfig armed the injector and the failure
// fired; FailedDevice is -1 otherwise.
type PrototypeResult struct {
	OpsPerSec     float64
	Elapsed       time.Duration
	WA            float64
	PaddingRatio  float64
	ChunksWritten int64

	FailedDevice  int
	FailedAtOp    int64
	DegradedReads int64
	RebuildChunks int64
	LostChunks    int64
	QueueRetries  int64
	Phases        []PhaseResult
}

// RunPrototype executes a concurrent prototype experiment.
func RunPrototype(c PrototypeConfig) (PrototypeResult, error) {
	cfg, pol, err := c.Simulator.build()
	if err != nil {
		return PrototypeResult{}, err
	}
	pcfg := prototype.Config{
		Store:       cfg,
		Policy:      pol,
		Clients:     c.Clients,
		Ops:         c.Ops,
		Theta:       c.Theta,
		Fill:        c.Fill,
		ReadRatio:   c.ReadRatio,
		ServiceTime: c.ServiceTime,
		QueueDepth:  c.QueueDepth,
		Seed:        c.Seed,
		Fault:       c.Fault.internal(),
	}
	if c.Simulator.GCSched.Background {
		pcfg.GCSliceUnits = c.Simulator.GCSched.sliceUnits()
	}
	res, err := prototype.Run(pcfg)
	if err != nil {
		return PrototypeResult{}, err
	}
	out := PrototypeResult{
		OpsPerSec:     res.OpsPerSec,
		Elapsed:       res.Elapsed,
		WA:            res.WA,
		PaddingRatio:  res.PaddingRatio,
		ChunksWritten: res.ChunksWritten,
		FailedDevice:  res.FailedDevice,
		FailedAtOp:    res.FailedAtOp,
		DegradedReads: res.DegradedReads,
		RebuildChunks: res.RebuildChunks,
		LostChunks:    res.LostChunks,
		QueueRetries:  res.QueueRetries,
	}
	for _, ps := range res.Phases {
		out.Phases = append(out.Phases, PhaseResult{
			Phase:     ps.Phase.String(),
			Ops:       ps.Ops,
			Elapsed:   ps.Elapsed,
			OpsPerSec: ps.OpsPerSec,
			WA:        ps.WA,
			P99:       ps.P99,
		})
	}
	return out, nil
}

// PolicyFootprintBytes reports the metadata memory cost of a policy at
// the given store size after warming it with ops zipfian writes —
// the Figure 12b comparison. The untyped policy-name constants assign
// to Policy directly; runtime strings go through ParsePolicy first.
func PolicyFootprintBytes(policy Policy, userBlocks, warmOps int64) (int64, error) {
	s, err := NewSimulator(SimulatorConfig{UserBlocks: userBlocks, Policy: string(policy)})
	if err != nil {
		return 0, err
	}
	tr := GenerateYCSB(YCSBConfig{Blocks: userBlocks, Writes: warmOps, Theta: 0.99, Seed: 1})
	if err := s.Replay(tr); err != nil {
		return 0, err
	}
	if d, ok := s.Diagnostics(); ok {
		return d.BaseTableBytes + d.FootprintBytes, nil
	}
	return prototype.Footprint(s.policy), nil
}
