// Command nbdload is a closed-loop load generator that speaks the
// standard NBD protocol against adaptserve's -nbd-addr listener (or
// any other NBD server): one NBD connection per worker (exercising
// NBD_FLAG_CAN_MULTI_CONN), byte-addressed requests with an optional
// unaligned fraction (exercising the server's read-modify-write
// path), and a throughput + p50/p99/p999 latency report.
//
// With -verify each worker owns a disjoint slice of the export,
// mirrors every acked write into a shadow buffer, and reads its whole
// slice back at the end — a byte-exact end-to-end check over the
// public protocol.
//
// Usage:
//
//	nbdload -addr 127.0.0.1:10809 -export vol0 -duration 5s
//	nbdload -workers 8 -write-frac 1 -unaligned 0.5 -verify
package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"adapt/internal/cli"
	"adapt/internal/nbd/nbdtest"
	"adapt/internal/stats"
)

type workerResult struct {
	ops, writes, reads, flushes, rmw int64
	bytes                            int64
	latencies                        []float64 // microseconds
	err                              error
}

func main() {
	cmd := cli.New("nbdload",
		"nbdload -addr 127.0.0.1:10809 -export vol0 -duration 5s",
		"nbdload -workers 8 -write-frac 1 -unaligned 0.5 -verify")
	fs := cmd.Flags()
	addr := fs.String("addr", "127.0.0.1:10809", "NBD server address")
	export := fs.String("export", "vol0", "export name (empty: the server's default export)")
	workers := fs.Int("workers", 4, "closed-loop workers, one NBD connection each")
	duration := fs.Duration("duration", 5*time.Second, "load duration")
	opBytes := fs.Int("op-bytes", 4096, "request payload size in bytes")
	writeFrac := fs.Float64("write-frac", 0.7, "fraction of ops that are writes")
	unaligned := fs.Float64("unaligned", 0, "fraction of ops issued at unaligned byte offsets")
	flushEvery := fs.Int("flush-every", 0, "issue an NBD_CMD_FLUSH every n ops per worker (0 disables)")
	verify := fs.Bool("verify", false, "shadow-mirror acked writes per worker and read the whole slice back at the end")
	seed := fs.Int64("seed", 1, "random seed")
	cmd.Parse(os.Args[1:])

	if fs.NArg() != 0 {
		cmd.UsageErrorf("unexpected arguments: %v", fs.Args())
	}
	if *workers < 1 || *opBytes < 1 {
		cmd.UsageErrorf("-workers and -op-bytes must be positive")
	}
	if *writeFrac < 0 || *writeFrac > 1 {
		cmd.UsageErrorf("-write-frac must be in [0,1], got %g", *writeFrac)
	}
	if *unaligned < 0 || *unaligned > 1 {
		cmd.UsageErrorf("-unaligned must be in [0,1], got %g", *unaligned)
	}

	// Geometry handshake: one throwaway connection sizes the export.
	probe, err := nbdtest.Dial(*addr, *export)
	cmd.Check(err)
	info := probe.Info()
	probe.Close()
	if info.Size < uint64(*workers)*uint64(*opBytes)*2 {
		cmd.UsageErrorf("export %q is %d bytes: too small for %d workers × %d-byte ops",
			*export, info.Size, *workers, *opBytes)
	}
	if uint64(*opBytes) > uint64(info.MaxBlock) && info.MaxBlock != 0 {
		cmd.UsageErrorf("-op-bytes %d exceeds the export's %d-byte request cap", *opBytes, info.MaxBlock)
	}
	multiConn := info.Flags&nbdtest.TFlagCanMultiConn != 0
	if *workers > 1 && !multiConn {
		fmt.Fprintln(os.Stderr, "nbdload: warning: server does not advertise CAN_MULTI_CONN; multi-worker results may be unsafe")
	}

	fmt.Printf("loading %q (%d bytes, preferred block %d) × %d workers for %v (%.0f%% writes, %.0f%% unaligned, %dB ops, verify=%v)\n",
		*export, info.Size, info.PreferredBlock, *workers, *duration,
		100**writeFrac, 100**unaligned, *opBytes, *verify)

	// Each worker owns a disjoint byte slice of the export so -verify
	// can shadow without cross-worker races.
	sliceBytes := info.Size / uint64(*workers)
	results := make([]workerResult, *workers)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			c, err := nbdtest.Dial(*addr, *export)
			if err != nil {
				res.err = fmt.Errorf("worker %d dial: %w", w, err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			base := uint64(w) * sliceBytes
			span := sliceBytes - uint64(*opBytes)
			var shadow []byte
			if *verify {
				shadow = make([]byte, sliceBytes)
				// Start from a known image so untouched bytes verify too.
				var zeroed uint64
				for zeroed < sliceBytes {
					n := uint32(sliceBytes - zeroed)
					if n > 1<<20 {
						n = 1 << 20
					}
					if err := c.WriteZeroes(base+zeroed, n, 0); err != nil {
						res.err = fmt.Errorf("worker %d zero: %w", w, err)
						return
					}
					zeroed += uint64(n)
				}
			}
			payload := make([]byte, *opBytes)
			align := uint64(info.PreferredBlock)
			if align == 0 {
				align = 4096
			}
			for time.Now().Before(deadline) {
				off := base + uint64(rng.Int63n(int64(span)))
				if rng.Float64() >= *unaligned {
					off = off &^ (align - 1)
					if off < base {
						off = base
					}
				} else if off%align == 0 {
					off++ // force the ragged path
				}
				write := rng.Float64() < *writeFrac
				flush := *flushEvery > 0 && res.ops > 0 && res.ops%int64(*flushEvery) == 0
				start := time.Now()
				switch {
				case flush:
					err = c.Flush()
				case write:
					rng.Read(payload)
					err = c.Write(off, payload, 0)
				default:
					_, err = c.Read(off, uint32(*opBytes))
				}
				if err != nil {
					res.err = fmt.Errorf("worker %d: %w", w, err)
					return
				}
				us := float64(time.Since(start).Microseconds())
				res.latencies = append(res.latencies, us)
				res.ops++
				res.bytes += int64(*opBytes)
				switch {
				case flush:
					res.flushes++
				case write:
					res.writes++
					if shadow != nil {
						copy(shadow[off-base:], payload)
					}
					if off%align != 0 || uint64(*opBytes)%align != 0 {
						res.rmw++
					}
				default:
					res.reads++
				}
			}
			if shadow != nil {
				if err := c.Flush(); err != nil {
					res.err = fmt.Errorf("worker %d final flush: %w", w, err)
					return
				}
				var read uint64
				for read < sliceBytes {
					n := uint32(sliceBytes - read)
					if n > 1<<20 {
						n = 1 << 20
					}
					got, err := c.Read(base+read, n)
					if err != nil {
						res.err = fmt.Errorf("worker %d verify read: %w", w, err)
						return
					}
					if !bytes.Equal(got, shadow[read:read+uint64(n)]) {
						res.err = fmt.Errorf("worker %d: VERIFY FAILED: readback diverged in [%d,%d)", w, base+read, base+read+uint64(n))
						return
					}
					read += uint64(n)
				}
			}
		}(w)
	}
	wg.Wait()

	var total workerResult
	for w := range results {
		r := &results[w]
		cmd.Check(r.err)
		total.ops += r.ops
		total.writes += r.writes
		total.reads += r.reads
		total.flushes += r.flushes
		total.rmw += r.rmw
		total.bytes += r.bytes
		total.latencies = append(total.latencies, r.latencies...)
	}
	sort.Float64s(total.latencies)
	el := duration.Seconds()
	fmt.Printf("aggregate: %d ops in %v — %.1f ops/s, %.1f MiB/s (%d w, %d r, %d flush, %d unaligned writes)\n",
		total.ops, *duration, float64(total.ops)/el, float64(total.bytes)/el/(1<<20),
		total.writes, total.reads, total.flushes, total.rmw)
	fmt.Printf("latency: p50 %sµs  p99 %sµs  p999 %sµs\n",
		pct(total.latencies, 50), pct(total.latencies, 99), pct(total.latencies, 99.9))
	if *verify {
		fmt.Println("verify: all worker slices read back byte-identical")
	}
}

func pct(sorted []float64, p float64) string {
	if len(sorted) == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", stats.SortedPercentile(sorted, p))
}
