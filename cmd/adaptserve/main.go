// Command adaptserve serves the ADAPT array as a multi-tenant network
// block service: the storage engine (log-structured store + modelled
// RAID-5 SSD array) behind the internal/server wire protocol, with
// live telemetry (Prometheus-style /metrics, /events.jsonl,
// /series.jsonl, /debug/pprof) on a second HTTP listener.
//
// Usage:
//
//	adaptserve -addr 127.0.0.1:9750 -telemetry 127.0.0.1:9751
//	adaptserve -volumes 8 -policy adapt -batch=false
//	adaptserve -data-dir /var/lib/adapt -durable-sync always
//	adaptserve -nbd-addr 127.0.0.1:10809
//
// With -nbd-addr the same volumes are additionally exported over the
// standard Network Block Device protocol (newstyle fixed handshake),
// one export per volume named vol0..volN-1, so a stock nbd-client or
// qemu-nbd can attach them while the bespoke wire protocol keeps
// serving on -addr.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"adapt/internal/cli"
	"adapt/internal/gcsched"
	"adapt/internal/harness"
	"adapt/internal/lss"
	"adapt/internal/nbd"
	"adapt/internal/prototype"
	"adapt/internal/segfile"
	"adapt/internal/server"
	"adapt/internal/telemetry"
)

func main() {
	cmd := cli.New("adaptserve",
		"adaptserve -addr 127.0.0.1:9750 -telemetry 127.0.0.1:9751",
		"adaptserve -volumes 8 -policy adapt -batch=false",
		"adaptserve -data-dir /var/lib/adapt -durable-sync always")
	fs := cmd.Flags()
	addr := fs.String("addr", "127.0.0.1:9750", "block service listen address")
	telAddr := fs.String("telemetry", "127.0.0.1:9751", "telemetry HTTP listen address (empty disables)")
	volumes := fs.Int("volumes", 8, "tenant volumes to carve from the array")
	policy := fs.String("policy", harness.PolicyADAPT, "placement policy: sepgc|dac|warcip|mida|sepbit|adapt")
	victim := fs.String("victim", "greedy", "GC victim policy: greedy|cost-benefit|d-choices")
	userBlocks := fs.Int64("user-blocks", 64<<10, "array capacity in 4 KiB blocks (RAM data plane grows with it)")
	shards := fs.Int("shards", 0, "engine shards across the LBA space (0: GOMAXPROCS, 1: unsharded)")
	batch := fs.Bool("batch", true, "coalesce small writes into chunk-aligned group commits")
	batchUS := fs.Int("batch-us", 0, "group-commit deadline in microseconds (0: the store's SLA window)")
	maxInflight := fs.Int("max-inflight", 64, "per-tenant inflight ops before backpressure")
	serviceUS := fs.Int("service-us", 50, "modelled device time per chunk write in microseconds")
	trace := fs.Bool("trace", true, "per-request tracing with tail-latency attribution (/debug/trace)")
	traceThreshUS := fs.Int("trace-threshold-us", 500, "latency above which a span becomes an exemplar")
	gcBG := fs.Bool("gc-bg", false, "background paced GC instead of synchronous watermark cycles")
	gcSliceUnits := fs.Int("gc-slice-units", 0, "pacer relocation budget per tick at urgency 1 (0: gcsched default)")
	gcIntervalUS := fs.Int("gc-interval-us", 0, "pacer tick interval in microseconds (0: gcsched default)")
	gcTargetUS := fs.Int("gc-target-p999-us", 2000, "back off non-urgent GC while traced p999 exceeds this (0 or -trace=false disables)")
	nbdAddr := fs.String("nbd-addr", "", "NBD listen address: exports every volume as vol0..volN-1 over the standard NBD protocol (empty disables)")
	nbdMaxReqKiB := fs.Int("nbd-max-req-kib", 0, "largest NBD request payload in KiB (0: protocol default of 8 MiB)")
	dataDir := fs.String("data-dir", "", "durable root: <dir>/engine holds the segment log, <dir>/volumes the tenant payload files; reboot recovers both (empty: RAM only)")
	durableSync := fs.String("durable-sync", "seal", "segment-log fsync discipline: always (every chunk append) | seal (segment seal and checkpoint)")
	odirect := fs.Bool("odirect", false, "open segment files with O_DIRECT where the filesystem supports it")
	cmd.Parse(os.Args[1:])

	if fs.NArg() != 0 {
		cmd.UsageErrorf("unexpected arguments: %v", fs.Args())
	}
	if *volumes < 1 {
		cmd.UsageErrorf("-volumes must be at least 1, got %d", *volumes)
	}
	if *nbdMaxReqKiB < 0 {
		cmd.UsageErrorf("-nbd-max-req-kib must be non-negative, got %d", *nbdMaxReqKiB)
	}
	if *nbdMaxReqKiB > 0 && *nbdAddr == "" {
		cmd.UsageErrorf("-nbd-max-req-kib requires -nbd-addr")
	}
	var vp lss.VictimPolicy
	switch *victim {
	case "greedy":
		vp = lss.Greedy
	case "cost-benefit":
		vp = lss.CostBenefit
	case "d-choices":
		vp = lss.DChoices
	default:
		cmd.UsageErrorf("unknown victim policy %q", *victim)
	}
	cfg := harness.StoreConfig(*userBlocks, vp)
	cfg.BackgroundGC = *gcBG
	if _, err := harness.BuildPolicy(*policy, cfg); err != nil {
		cmd.UsageErrorf("%v", err)
	}
	var durable *segfile.Options
	if *dataDir != "" {
		var mode segfile.SyncMode
		switch *durableSync {
		case "always":
			mode = segfile.SyncAlways
		case "seal":
			mode = segfile.SyncOnSeal
		default:
			cmd.UsageErrorf("unknown -durable-sync %q (want always|seal)", *durableSync)
		}
		durable = &segfile.Options{
			Dir:     filepath.Join(*dataDir, "engine"),
			Sync:    mode,
			ODirect: *odirect,
		}
	}

	ts := telemetry.New(telemetry.Options{})
	eng, err := prototype.NewSharded(prototype.ShardedConfig{
		Engine: prototype.EngineConfig{
			Store:       cfg,
			ServiceTime: time.Duration(*serviceUS) * time.Microsecond,
			Telemetry:   ts,
			Durable:     durable,
		},
		Shards: *shards,
		PolicyFactory: func(shard int, scfg lss.Config) (lss.Policy, error) {
			return harness.BuildPolicy(*policy, scfg)
		},
	})
	cmd.Check(err)
	var srv *server.Server
	var ctl *gcsched.Controller
	if *gcBG {
		gcfg := gcsched.Config{
			Interval:   time.Duration(*gcIntervalUS) * time.Microsecond,
			SliceUnits: *gcSliceUnits,
			QueueFill:  eng.QueueFill,
			Telemetry:  ts,
		}
		if *trace && *gcTargetUS > 0 {
			gcfg.TargetP999 = time.Duration(*gcTargetUS) * time.Microsecond
			// srv is assigned below, before ctl.Start spawns the only
			// reader of this closure.
			gcfg.P999 = func() time.Duration { return srv.TailP999() }
		}
		shards := eng.GCShards()
		sh := make([]gcsched.Shard, len(shards))
		for i, s := range shards {
			sh[i] = s
		}
		ctl, err = gcsched.New(gcfg, sh)
		cmd.Check(err)
	}
	volDir := ""
	if *dataDir != "" {
		volDir = filepath.Join(*dataDir, "volumes")
	}
	srv, err = server.New(server.Config{
		Engine:       eng,
		Volumes:      *volumes,
		DataDir:      volDir,
		MaxInflight:  *maxInflight,
		Batch:        *batch,
		BatchTimeout: time.Duration(*batchUS) * time.Microsecond,
		Telemetry:    ts,
		Trace: server.TraceConfig{
			Enabled:   *trace,
			Threshold: time.Duration(*traceThreshUS) * time.Microsecond,
		},
		GCSched: ctl,
	})
	cmd.Check(err)
	if ctl != nil {
		ctl.Start()
	}

	if *telAddr != "" {
		var extra map[string]http.Handler
		if *trace {
			extra = map[string]http.Handler{"/debug/trace": srv.TraceHandler()}
		}
		_, taddr, err := telemetry.Serve(*telAddr, ts, extra)
		cmd.Check(err)
		fmt.Printf("telemetry on http://%s/ (metrics, events.jsonl, series.jsonl, debug/trace, debug/pprof)\n", taddr)
	}

	var nsrv *nbd.Server
	nbdDone := make(chan error, 1)
	if *nbdAddr != "" {
		nsrv, err = nbd.New(nbd.Config{
			Backend:         srv,
			MaxRequestBytes: *nbdMaxReqKiB << 10,
			Telemetry:       ts,
		})
		cmd.Check(err)
		nln, err := net.Listen("tcp", *nbdAddr)
		cmd.Check(err)
		go func() { nbdDone <- nsrv.Serve(nln) }()
		fmt.Printf("nbd: %d exports (vol0..vol%d) on %s\n", srv.Volumes(), srv.Volumes()-1, nln.Addr())
	} else {
		close(nbdDone)
	}

	ln, err := net.Listen("tcp", *addr)
	cmd.Check(err)
	gcMode := "sync"
	if *gcBG {
		gcMode = "background"
	}
	fmt.Printf("serving %d volumes × %d blocks (%s policy, %d shards, batch=%v, gc=%s) on %s\n",
		srv.Volumes(), srv.VolumeBlocks(), *policy, eng.Shards(), *batch, gcMode, ln.Addr())
	if *dataDir != "" {
		if ds, ok := eng.DurableStats(); ok && eng.Recovered() {
			fmt.Printf("durable: recovered %d segments (%d live blocks) from %s\n",
				ds.RecoveredSegments, ds.RecoveredBlocks, *dataDir)
		} else {
			fmt.Printf("durable: fresh log in %s (sync=%s, odirect=%v)\n", *dataDir, *durableSync, *odirect)
		}
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Println("draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// The NBD frontend drains first: its in-flight ops need a
		// backend that is still admitting, so the volume manager must
		// not start refusing Acquire until NBD connections are gone.
		if nsrv != nil {
			if err := nsrv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "adaptserve: nbd shutdown:", err)
			}
		}
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "adaptserve: shutdown:", err)
		}
	}()

	cmd.Check(srv.Serve(ln))
	cmd.Check(<-nbdDone)
	if ctl != nil {
		ctl.Stop()
	}
	cmd.Check(eng.Close())
	st := eng.Stats()
	fmt.Printf("final: %d user blocks, WA %.3f, effective WA %.3f, %d padded chunks of %d flushed\n",
		st.UserBlocks, st.WA, st.EffectiveWA, st.PaddedChunks, st.ChunkFlushes)
}
