// Command adaptserve serves the ADAPT array as a multi-tenant network
// block service: the storage engine (log-structured store + modelled
// RAID-5 SSD array) behind the internal/server wire protocol, with
// live telemetry (Prometheus-style /metrics, /events.jsonl,
// /series.jsonl, /debug/pprof) on a second HTTP listener.
//
// Usage:
//
//	adaptserve -addr 127.0.0.1:9750 -telemetry 127.0.0.1:9751
//	adaptserve -volumes 8 -policy adapt -batch=false
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adapt/internal/cli"
	"adapt/internal/harness"
	"adapt/internal/lss"
	"adapt/internal/prototype"
	"adapt/internal/server"
	"adapt/internal/telemetry"
)

func main() {
	cmd := cli.New("adaptserve",
		"adaptserve -addr 127.0.0.1:9750 -telemetry 127.0.0.1:9751",
		"adaptserve -volumes 8 -policy adapt -batch=false")
	fs := cmd.Flags()
	addr := fs.String("addr", "127.0.0.1:9750", "block service listen address")
	telAddr := fs.String("telemetry", "127.0.0.1:9751", "telemetry HTTP listen address (empty disables)")
	volumes := fs.Int("volumes", 8, "tenant volumes to carve from the array")
	policy := fs.String("policy", harness.PolicyADAPT, "placement policy: sepgc|dac|warcip|mida|sepbit|adapt")
	victim := fs.String("victim", "greedy", "GC victim policy: greedy|cost-benefit|d-choices")
	userBlocks := fs.Int64("user-blocks", 64<<10, "array capacity in 4 KiB blocks (RAM data plane grows with it)")
	shards := fs.Int("shards", 0, "engine shards across the LBA space (0: GOMAXPROCS, 1: unsharded)")
	batch := fs.Bool("batch", true, "coalesce small writes into chunk-aligned group commits")
	batchUS := fs.Int("batch-us", 0, "group-commit deadline in microseconds (0: the store's SLA window)")
	maxInflight := fs.Int("max-inflight", 64, "per-tenant inflight ops before backpressure")
	serviceUS := fs.Int("service-us", 50, "modelled device time per chunk write in microseconds")
	trace := fs.Bool("trace", true, "per-request tracing with tail-latency attribution (/debug/trace)")
	traceThreshUS := fs.Int("trace-threshold-us", 500, "latency above which a span becomes an exemplar")
	cmd.Parse(os.Args[1:])

	if fs.NArg() != 0 {
		cmd.UsageErrorf("unexpected arguments: %v", fs.Args())
	}
	if *volumes < 1 {
		cmd.UsageErrorf("-volumes must be at least 1, got %d", *volumes)
	}
	var vp lss.VictimPolicy
	switch *victim {
	case "greedy":
		vp = lss.Greedy
	case "cost-benefit":
		vp = lss.CostBenefit
	case "d-choices":
		vp = lss.DChoices
	default:
		cmd.UsageErrorf("unknown victim policy %q", *victim)
	}
	cfg := harness.StoreConfig(*userBlocks, vp)
	if _, err := harness.BuildPolicy(*policy, cfg); err != nil {
		cmd.UsageErrorf("%v", err)
	}

	ts := telemetry.New(telemetry.Options{})
	eng, err := prototype.NewSharded(prototype.ShardedConfig{
		Engine: prototype.EngineConfig{
			Store:       cfg,
			ServiceTime: time.Duration(*serviceUS) * time.Microsecond,
			Telemetry:   ts,
		},
		Shards: *shards,
		PolicyFactory: func(shard int, scfg lss.Config) (lss.Policy, error) {
			return harness.BuildPolicy(*policy, scfg)
		},
	})
	cmd.Check(err)
	srv, err := server.New(server.Config{
		Engine:       eng,
		Volumes:      *volumes,
		MaxInflight:  *maxInflight,
		Batch:        *batch,
		BatchTimeout: time.Duration(*batchUS) * time.Microsecond,
		Telemetry:    ts,
		Trace: server.TraceConfig{
			Enabled:   *trace,
			Threshold: time.Duration(*traceThreshUS) * time.Microsecond,
		},
	})
	cmd.Check(err)

	if *telAddr != "" {
		var extra map[string]http.Handler
		if *trace {
			extra = map[string]http.Handler{"/debug/trace": srv.TraceHandler()}
		}
		_, taddr, err := telemetry.Serve(*telAddr, ts, extra)
		cmd.Check(err)
		fmt.Printf("telemetry on http://%s/ (metrics, events.jsonl, series.jsonl, debug/trace, debug/pprof)\n", taddr)
	}

	ln, err := net.Listen("tcp", *addr)
	cmd.Check(err)
	fmt.Printf("serving %d volumes × %d blocks (%s policy, %d shards, batch=%v) on %s\n",
		srv.Volumes(), srv.VolumeBlocks(), *policy, eng.Shards(), *batch, ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		fmt.Println("draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "adaptserve: shutdown:", err)
		}
	}()

	cmd.Check(srv.Serve(ln))
	cmd.Check(eng.Close())
	st := eng.Stats()
	fmt.Printf("final: %d user blocks, WA %.3f, effective WA %.3f, %d padded chunks of %d flushed\n",
		st.UserBlocks, st.WA, st.EffectiveWA, st.PaddedChunks, st.ChunkFlushes)
}
