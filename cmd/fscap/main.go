// Command fscap probes a directory's durable-path capability — the
// filesystem type and whether aligned O_DIRECT writes succeed there —
// and prints one JSON line. bench-snapshot records it alongside
// benchmark output, because durable-path numbers from an O_DIRECT ext4
// host and a buffered overlayfs container are not comparable.
//
// Usage:
//
//	fscap
//	fscap -dir /var/lib/adapt
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"adapt/internal/cli"
	"adapt/internal/segfile"
)

func main() {
	cmd := cli.New("fscap", "fscap", "fscap -dir /var/lib/adapt")
	fs := cmd.Flags()
	dir := fs.String("dir", ".", "directory to probe")
	cmd.Parse(os.Args[1:])
	if fs.NArg() != 0 {
		cmd.UsageErrorf("unexpected arguments: %v", fs.Args())
	}
	out, err := json.Marshal(struct {
		Action string `json:"Action"`
		Dir    string `json:"dir"`
		segfile.Capability
	}{Action: "fscap", Dir: *dir, Capability: segfile.Probe(*dir)})
	cmd.Check(err)
	fmt.Println(string(out))
}
