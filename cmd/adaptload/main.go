// Command adaptload is a closed-loop multi-tenant load generator for
// adaptserve: one connection per tenant volume, a configurable number
// of pipelined workers per connection, zipfian access over each
// volume's LBA space (reusing the internal/workload generator), and a
// per-tenant + aggregate report of throughput and p50/p99/p999
// latency, plus the server's own padding and batching counters.
//
// Usage:
//
//	adaptload -addr 127.0.0.1:9750 -tenants 8 -duration 5s
//	adaptload -write-frac 1 -sync -theta 0.99
package main

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"adapt/internal/cli"
	"adapt/internal/fault"
	"adapt/internal/server"
	"adapt/internal/sim"
	"adapt/internal/stats"
	"adapt/internal/workload"
)

type tenantResult struct {
	ops, writes, reads, flushes int64
	retries                     int64
	latencies                   []float64 // all ops, microseconds
	// Per-class latency samples (microseconds), so write, read, and
	// flush percentiles report separately.
	wlat, rlat, flat []float64
}

func main() {
	cmd := cli.New("adaptload",
		"adaptload -addr 127.0.0.1:9750 -tenants 8 -duration 5s",
		"adaptload -write-frac 1 -sync -theta 0.99")
	fs := cmd.Flags()
	addr := fs.String("addr", "127.0.0.1:9750", "adaptserve address")
	tenants := fs.Int("tenants", 8, "tenant volumes to load (volume IDs 0..n-1)")
	workers := fs.Int("workers", 8, "pipelined closed-loop workers per tenant")
	duration := fs.Duration("duration", 5*time.Second, "load duration")
	writeFrac := fs.Float64("write-frac", 0.7, "fraction of ops that are writes")
	theta := fs.Float64("theta", 0.99, "zipfian skew over each volume's LBA space")
	blocksPerOp := fs.Int("blocks-per-op", 1, "blocks per request")
	syncWrites := fs.Bool("sync", false, "bypass server-side batching (FlagNoBatch)")
	flushEvery := fs.Int("flush-every", 0, "issue a FLUSH every n ops per worker (0 disables)")
	traceEvery := fs.Int("trace-every", 0, "opt every nth request into server-side exemplar capture (0 disables)")
	seed := fs.Uint64("seed", 1, "random seed")
	cmd.Parse(os.Args[1:])

	if fs.NArg() != 0 {
		cmd.UsageErrorf("unexpected arguments: %v", fs.Args())
	}
	if *tenants < 1 || *workers < 1 || *blocksPerOp < 1 {
		cmd.UsageErrorf("-tenants, -workers, and -blocks-per-op must be positive")
	}
	if *writeFrac < 0 || *writeFrac > 1 {
		cmd.UsageErrorf("-write-frac must be in [0,1], got %g", *writeFrac)
	}

	// Geometry handshake: one STAT round-trip sizes payloads and LBA
	// ranges; a tenant count beyond the served volumes is a user error.
	probe, err := server.Dial(*addr, 0)
	cmd.Check(err)
	geom, err := probe.Stats()
	cmd.Check(err)
	probe.Close()
	blockBytes := int(geom["geom_block_bytes"])
	volBlocks := geom["geom_vol_blocks"]
	if int64(*tenants) > geom["geom_volumes"] {
		cmd.UsageErrorf("-tenants %d exceeds the server's %d volumes", *tenants, geom["geom_volumes"])
	}
	span := volBlocks - int64(*blocksPerOp) + 1
	if span < 1 {
		cmd.UsageErrorf("-blocks-per-op %d exceeds the %d-block volumes", *blocksPerOp, volBlocks)
	}

	clients := make([]*server.Client, *tenants)
	for t := range clients {
		c, err := server.Dial(*addr, uint32(t))
		cmd.Check(err)
		c.SetBlockBytes(blockBytes)
		c.SetTraceEvery(*traceEvery)
		defer c.Close()
		clients[t] = c
	}

	fmt.Printf("loading %d tenants × %d workers for %v (%.0f%% writes, θ=%.2f, %d×%dB blocks/op, sync=%v)\n",
		*tenants, *workers, *duration, 100**writeFrac, *theta, *blocksPerOp, blockBytes, *syncWrites)

	results := make([][]tenantResult, *tenants)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for t := 0; t < *tenants; t++ {
		results[t] = make([]tenantResult, *workers)
		for w := 0; w < *workers; w++ {
			wg.Add(1)
			go func(c *server.Client, res *tenantResult, wseed uint64) {
				defer wg.Done()
				rng := sim.NewRNG(wseed)
				zipf := workload.NewZipf(rng, span, *theta, true)
				payload := make([]byte, *blocksPerOp*blockBytes)
				for i := range payload {
					payload[i] = byte(rng.Intn(256))
				}
				bo := fault.Backoff{}
				for time.Now().Before(deadline) {
					lba := zipf.Next()
					start := time.Now()
					var err error
					write := rng.Float64() < *writeFrac
					flush := *flushEvery > 0 && res.ops > 0 && res.ops%int64(*flushEvery) == 0
					for attempt := 0; ; attempt++ {
						if flush {
							err = c.Flush()
						} else if write {
							if *syncWrites {
								err = c.WriteSync(lba, payload)
							} else {
								err = c.Write(lba, payload)
							}
						} else {
							_, err = c.Read(lba, *blocksPerOp)
						}
						if !errors.Is(err, server.ErrBackpressure) {
							break
						}
						res.retries++
						time.Sleep(bo.Delay(attempt))
					}
					if err != nil {
						fmt.Fprintln(os.Stderr, "adaptload:", err)
						return
					}
					us := float64(time.Since(start).Microseconds())
					res.latencies = append(res.latencies, us)
					res.ops++
					switch {
					case flush:
						res.flushes++
						res.flat = append(res.flat, us)
					case write:
						res.writes++
						res.wlat = append(res.wlat, us)
					default:
						res.reads++
						res.rlat = append(res.rlat, us)
					}
				}
			}(clients[t], &results[t][w], *seed+uint64(t*1000+w))
		}
	}
	wg.Wait()
	elapsed := *duration

	var total tenantResult
	for t := 0; t < *tenants; t++ {
		var tr tenantResult
		for w := range results[t] {
			r := &results[t][w]
			tr.ops += r.ops
			tr.writes += r.writes
			tr.reads += r.reads
			tr.flushes += r.flushes
			tr.retries += r.retries
			tr.latencies = append(tr.latencies, r.latencies...)
			tr.wlat = append(tr.wlat, r.wlat...)
			tr.rlat = append(tr.rlat, r.rlat...)
			tr.flat = append(tr.flat, r.flat...)
		}
		sort.Float64s(tr.latencies)
		fmt.Printf("tenant %d: %7d ops (%d w, %d r) %9.1f ops/s  p50 %sµs  p99 %sµs  p999 %sµs  retries %d\n",
			t, tr.ops, tr.writes, tr.reads, float64(tr.ops)/elapsed.Seconds(),
			pct(tr.latencies, 50), pct(tr.latencies, 99), pct(tr.latencies, 99.9), tr.retries)
		total.ops += tr.ops
		total.writes += tr.writes
		total.reads += tr.reads
		total.flushes += tr.flushes
		total.retries += tr.retries
		total.latencies = append(total.latencies, tr.latencies...)
		total.wlat = append(total.wlat, tr.wlat...)
		total.rlat = append(total.rlat, tr.rlat...)
		total.flat = append(total.flat, tr.flat...)
	}
	sort.Float64s(total.latencies)
	fmt.Printf("aggregate: %d ops in %v — %.1f ops/s (%.1f writes/s, %.1f reads/s)  p50 %sµs  p99 %sµs  p999 %sµs  retries %d\n",
		total.ops, elapsed, float64(total.ops)/elapsed.Seconds(),
		float64(total.writes)/elapsed.Seconds(), float64(total.reads)/elapsed.Seconds(),
		pct(total.latencies, 50), pct(total.latencies, 99), pct(total.latencies, 99.9), total.retries)
	for _, class := range []struct {
		name string
		n    int64
		lat  []float64
	}{
		{"write", total.writes, total.wlat},
		{"read", total.reads, total.rlat},
		{"flush", total.flushes, total.flat},
	} {
		if class.n == 0 {
			continue
		}
		sort.Float64s(class.lat)
		fmt.Printf("%-5s: %8d ops  p50 %sµs  p99 %sµs  p999 %sµs\n",
			class.name, class.n, pct(class.lat, 50), pct(class.lat, 99), pct(class.lat, 99.9))
	}

	final, err := clients[0].Stats()
	cmd.Check(err)
	printStageTable(final)
	fmt.Printf("server: %d group commits covering %d writes, %d backpressure rejections, %d/%d chunks padded, WA %.3f (effective %.3f)\n",
		final["srv_batches"], final["srv_batched_writes"], final["srv_backpressure"],
		final["store_padded_chunks"], final["store_chunk_flushes"],
		float64(final["store_wa_milli"])/1000, float64(final["store_eff_wa_milli"])/1000)
}

// stages mirrors the server's stage taxonomy (telemetry.Stage order);
// the STAT keys are trace_<stage>_{count,p50_ns,p99_ns,p999_ns}.
var stages = []string{"decode", "admission", "batch", "lockwait", "commit", "flush", "respond"}

// printStageTable renders the server-side per-stage latency breakdown
// when the STAT payload carries tracing percentiles (server started
// with tracing enabled).
func printStageTable(st map[string]int64) {
	any := false
	for _, s := range stages {
		if st["trace_"+s+"_count"] > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	tbl := stats.NewTable("stage", "count", "p50", "p99", "p999")
	for _, s := range stages {
		n := st["trace_"+s+"_count"]
		if n == 0 {
			continue
		}
		tbl.AddRow(s, fmt.Sprintf("%d", n),
			fmtNS(st["trace_"+s+"_p50_ns"]),
			fmtNS(st["trace_"+s+"_p99_ns"]),
			fmtNS(st["trace_"+s+"_p999_ns"]))
	}
	fmt.Println("server stage latency (histogram upper bounds):")
	fmt.Print(tbl.String())
}

// fmtNS renders a nanosecond value with a readable unit.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// pct renders a percentile of the sorted latency sample.
func pct(sorted []float64, p float64) string {
	if len(sorted) == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", stats.SortedPercentile(sorted, p))
}
