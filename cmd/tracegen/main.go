// Command tracegen synthesizes block I/O traces — production volume
// suites fit to the paper's workload statistics, or YCSB-A streams —
// and writes them in the compact binary format adaptsim consumes.
//
// Usage:
//
//	tracegen -profile ali -volumes 50 -out traces/
//	tracegen -ycsb -ycsb-blocks 1048576 -ycsb-writes 10485760 -out traces/
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"adapt"
	"adapt/internal/cli"
)

func main() {
	cmd := cli.New("tracegen",
		"tracegen -profile ali -volumes 50 -out traces/",
		"tracegen -ycsb -ycsb-blocks 1048576 -ycsb-writes 10485760 -out traces/")
	fs := cmd.Flags()
	profile := fs.String("profile", "ali", "production profile: ali|tencent|msrc")
	volumes := fs.Int("volumes", 10, "volumes to synthesize")
	scaleBlocks := fs.Int64("scale-blocks", 32<<10, "per-volume footprint center in 4 KiB blocks")
	overwrite := fs.Float64("overwrite", 5, "write volume relative to footprint")
	ycsb := fs.Bool("ycsb", false, "generate a YCSB-A stream instead of a suite")
	ycsbBlocks := fs.Int64("ycsb-blocks", 64<<10, "YCSB block count")
	ycsbWrites := fs.Int64("ycsb-writes", 512<<10, "YCSB write count")
	theta := fs.Float64("theta", 0.99, "YCSB zipfian constant")
	gapUS := fs.Int64("gap-us", 50, "YCSB mean interarrival (µs)")
	out := fs.String("out", ".", "output directory")
	seed := fs.Uint64("seed", 1, "random seed")
	cmd.Parse(os.Args[1:])
	if fs.NArg() != 0 {
		cmd.UsageErrorf("unexpected arguments: %v", fs.Args())
	}
	if !*ycsb {
		switch *profile {
		case adapt.ProfileAli, adapt.ProfileTencent, adapt.ProfileMSRC:
		default:
			cmd.UsageErrorf("unknown profile %q", *profile)
		}
	}

	cmd.Check(os.MkdirAll(*out, 0o755))

	write := func(tr *adapt.Trace, name string) {
		path := filepath.Join(*out, name+".bin")
		f, err := os.Create(path)
		cmd.Check(err)
		cmd.Check(tr.WriteBinary(f))
		cmd.Check(f.Close())
		st := tr.Stats(4096)
		fmt.Printf("%s: %d requests, %d writes, %.2f req/s, footprint %d KiB\n",
			path, st.Requests, st.Writes, st.ReqPerSec, st.FootprintKiB)
	}

	if *ycsb {
		tr := adapt.GenerateYCSB(adapt.YCSBConfig{
			Blocks:  *ycsbBlocks,
			Writes:  *ycsbWrites,
			Fill:    true,
			Theta:   *theta,
			MeanGap: time.Duration(*gapUS) * time.Microsecond,
			Seed:    *seed,
		})
		write(tr, "ycsb-a")
		return
	}

	vols := adapt.NewSuite(adapt.SuiteConfig{
		Profile:         *profile,
		Volumes:         *volumes,
		ScaleBlocks:     *scaleBlocks,
		OverwriteFactor: *overwrite,
		Seed:            *seed,
	})
	for _, v := range vols {
		write(v.Generate(), v.Name)
	}
}
