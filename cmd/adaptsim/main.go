// Command adaptsim replays a block I/O trace (or a synthesized
// workload) through the log-structured store simulator under a chosen
// placement policy and prints the traffic accounting.
//
// Usage:
//
//	adaptsim -policy adapt -victim greedy -trace vol0.csv -format msr
//	adaptsim -policy sepbit -ycsb-blocks 65536 -ycsb-writes 500000
package main

import (
	"fmt"
	"os"
	"time"

	"adapt"
	"adapt/internal/cli"
)

func main() {
	cmd := cli.New("adaptsim",
		"adaptsim -policy adapt -victim greedy -trace vol0.csv -format msr",
		"adaptsim -policy sepbit -ycsb-blocks 65536 -ycsb-writes 500000")
	fs := cmd.Flags()
	policy := fs.String("policy", adapt.PolicyADAPT, "placement policy: sepgc|dac|warcip|mida|sepbit|adapt")
	victim := fs.String("victim", adapt.VictimGreedy, "GC victim policy: greedy|cost-benefit|d-choices")
	tracePath := fs.String("trace", "", "trace file to replay (empty: synthesize YCSB)")
	format := fs.String("format", "bin", "trace format: msr|ali|tencent|bin")
	chunkKiB := fs.Int("chunk-kib", 64, "array chunk size in KiB")
	slaUS := fs.Int("sla-us", 100, "chunk coalescing window in microseconds")
	op := fs.Float64("op", 0.15, "over-provisioning fraction")
	ycsbBlocks := fs.Int64("ycsb-blocks", 64<<10, "synthetic workload: block count")
	ycsbWrites := fs.Int64("ycsb-writes", 512<<10, "synthetic workload: write count")
	theta := fs.Float64("theta", 0.99, "synthetic workload: zipfian constant")
	gapUS := fs.Int64("gap-us", 50, "synthetic workload: mean interarrival in microseconds")
	seed := fs.Uint64("seed", 1, "random seed")
	cmd.Parse(os.Args[1:])
	if fs.NArg() != 0 {
		cmd.UsageErrorf("unexpected arguments: %v", fs.Args())
	}
	if _, err := adapt.ParsePolicy(*policy); err != nil {
		cmd.UsageErrorf("%v", err)
	}
	if _, err := adapt.ParseVictim(*victim); err != nil {
		cmd.UsageErrorf("%v", err)
	}

	var tr *adapt.Trace
	var blocks int64
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		cmd.Check(err)
		defer f.Close()
		var perr error
		switch *format {
		case "msr":
			tr, perr = adapt.ParseMSR(f, *tracePath)
		case "ali":
			tr, perr = adapt.ParseAli(f, *tracePath)
		case "tencent":
			tr, perr = adapt.ParseTencent(f, *tracePath)
		case "bin":
			tr, perr = adapt.ReadBinaryTrace(f)
		default:
			cmd.UsageErrorf("unknown trace format %q", *format)
		}
		cmd.Check(perr)
		tr, blocks = tr.Densify(4096)
		if blocks == 0 {
			cmd.Fatalf("trace %s contains no blocks", *tracePath)
		}
	} else {
		blocks = *ycsbBlocks
		tr = adapt.GenerateYCSB(adapt.YCSBConfig{
			Blocks:  blocks,
			Writes:  *ycsbWrites,
			Fill:    true,
			Theta:   *theta,
			MeanGap: time.Duration(*gapUS) * time.Microsecond,
			Seed:    *seed,
		})
	}

	sim, err := adapt.NewSimulator(adapt.SimulatorConfig{
		UserBlocks:    blocks,
		Policy:        *policy,
		Victim:        *victim,
		ChunkBlocks:   *chunkKiB * 1024 / 4096,
		OverProvision: *op,
		SLAWindow:     time.Duration(*slaUS) * time.Microsecond,
	})
	cmd.Check(err)

	start := time.Now()
	cmd.Check(sim.Replay(tr))
	elapsed := time.Since(start)

	st := tr.Stats(4096)
	m := sim.Metrics()
	fmt.Printf("trace: %s (%d requests, %d writes, %.1f req/s avg)\n",
		tr.Name, st.Requests, st.Writes, st.ReqPerSec)
	fmt.Printf("policy: %s  victim: %s  blocks: %d  replay time: %v\n",
		sim.PolicyName(), *victim, blocks, elapsed.Round(time.Millisecond))
	fmt.Printf("WA: %.3f  effective WA: %.3f  padding ratio: %.2f%%\n",
		m.WA, m.EffectiveWA, 100*m.PaddingRatio)
	fmt.Printf("user: %d  gc: %d  shadow: %d  padding: %d blocks\n",
		m.UserBlocks, m.GCBlocks, m.ShadowBlocks, m.PaddingBlocks)
	fmt.Printf("chunks: %d data, %d parity  segments reclaimed: %d (%d GC cycles)\n",
		m.DataChunks, m.ParityChunks, m.SegmentsReclaimed, m.GCCycles)
	fmt.Println("\nper-group traffic:")
	for _, g := range m.PerGroup {
		total := g.UserBlocks + g.GCBlocks + g.ShadowBlocks + g.PaddingBlocks
		if total == 0 {
			continue
		}
		fmt.Printf("  group %d: user %d  gc %d  shadow %d  padding %d  segments %d\n",
			g.Group, g.UserBlocks, g.GCBlocks, g.ShadowBlocks, g.PaddingBlocks, g.SealedSegments)
	}
	if d, ok := sim.Diagnostics(); ok {
		fmt.Printf("\nADAPT diagnostics: threshold %.0f blocks, %d adoptions, %d demotions, %d shadow grants\n",
			d.Threshold, d.Adoptions, d.Demotions, d.ShadowGrants)
	}
}
