// Command adaptbench regenerates the paper's evaluation figures
// (Figures 2, 3, 8, 9, 10, 11, 12) on the trace-driven simulator and
// the concurrent prototype, printing paper-style tables.
//
// Usage:
//
//	adaptbench -exp all -scale small
//	adaptbench -exp fig8 -scale full
//	adaptbench -exp telemetry -series series.jsonl -events events.jsonl
//	adaptbench -replay series.jsonl
//	adaptbench -exp telemetry -debug localhost:6060
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"adapt/internal/cli"
	"adapt/internal/harness"
	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
	"adapt/internal/workload"
)

func main() {
	cmd := cli.New("adaptbench",
		"adaptbench -exp all -scale small",
		"adaptbench -exp telemetry -series series.jsonl -events events.jsonl",
		"adaptbench -replay series.jsonl")
	fs := cmd.Flags()
	exp := fs.String("exp", "all", "experiment: fig2|fig3|fig8|fig9|fig10|fig11|fig12|streams|chunk|sla|victims|latency|fault|tailtrace|gcsched|shardscale|telemetry|all")
	scaleName := fs.String("scale", "small", "experiment scale: small|full")
	policy := fs.String("policy", harness.PolicyADAPT, "placement policy for -exp telemetry")
	series := fs.String("series", "", "write telemetry time-series windows (JSONL) to this file")
	seriesCSV := fs.String("series-csv", "", "write telemetry time-series windows (CSV) to this file")
	events := fs.String("events", "", "write telemetry event trace (JSONL) to this file")
	debug := fs.String("debug", "", "serve live telemetry + pprof on this address (e.g. localhost:6060) and block after the run")
	replay := fs.String("replay", "", "render the stats table from a previously dumped -series JSONL file and exit")
	window := fs.Duration("window", 10*time.Millisecond, "telemetry window interval (simulated time)")
	cmd.Parse(os.Args[1:])
	if fs.NArg() != 0 {
		cmd.UsageErrorf("unexpected arguments: %v", fs.Args())
	}

	if *replay != "" {
		f, err := os.Open(*replay)
		cmd.Check(err)
		ws, err := telemetry.ReadWindowsJSONL(f)
		f.Close()
		cmd.Check(err)
		fmt.Print(harness.RenderWindows(fmt.Sprintf("Telemetry replay — %s (%d windows)", *replay, len(ws)), ws))
		return
	}

	var sc harness.Scale
	switch *scaleName {
	case "small":
		sc = harness.SmallScale()
	case "full":
		sc = harness.FullScale()
	default:
		cmd.UsageErrorf("unknown scale %q", *scaleName)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("fig2") {
		ran = true
		for _, r := range harness.Fig2(sc, workload.Profiles()) {
			fmt.Println(r.Render())
		}
	}
	if want("fig3") {
		ran = true
		results, err := harness.Fig3(sc, harness.PolicyNames())
		cmd.Check(err)
		for _, r := range results {
			fmt.Println(r.Render())
		}
	}
	if want("fig8") || want("fig9") || want("fig10") {
		ran = true
		fmt.Println("running experiment grid (suites × victims × policies × volumes)...")
		start := time.Now()
		grid, err := harness.RunGrid(sc, workload.Profiles(),
			[]lss.VictimPolicy{lss.Greedy, lss.CostBenefit}, harness.PolicyNames())
		cmd.Check(err)
		fmt.Printf("grid complete in %v\n\n", time.Since(start).Round(time.Millisecond))
		if want("fig8") {
			fmt.Println(harness.RenderFig8(harness.Fig8(grid)))
			for _, p := range workload.Profiles() {
				for _, v := range []lss.VictimPolicy{lss.Greedy, lss.CostBenefit} {
					reds := harness.Fig8Reductions(grid, p, v)
					var parts []string
					for _, base := range harness.PolicyNames() {
						if r, ok := reds[base]; ok {
							parts = append(parts, fmt.Sprintf("%s %.1f%%", base, r))
						}
					}
					fmt.Printf("ADAPT WA reduction (%s, %s): %s\n", p, v, strings.Join(parts, ", "))
				}
			}
			fmt.Println()
		}
		if want("fig9") {
			fmt.Println(harness.RenderFig9(harness.Fig9(grid)))
		}
		if want("fig10") {
			fmt.Println(harness.RenderFig10(harness.Fig10(grid)))
		}
	}
	if want("fig11") {
		ran = true
		res, err := harness.Fig11(sc, harness.PolicyNames())
		cmd.Check(err)
		fmt.Println(res.Render())
	}
	if want("fig12") {
		ran = true
		res, err := harness.Fig12(sc, harness.PolicyNames(), harness.DefaultFig12Options(sc))
		cmd.Check(err)
		fmt.Println(res.Render())
	}
	if want("streams") {
		ran = true
		rows, err := harness.ExpStreams(sc, []string{"sepgc", "sepbit", harness.PolicyADAPT})
		cmd.Check(err)
		fmt.Println(harness.RenderStreams(rows))
	}
	if want("chunk") {
		ran = true
		cells, err := harness.ExpChunkSize(sc, []string{"sepgc", "sepbit", harness.PolicyADAPT})
		cmd.Check(err)
		fmt.Println(harness.RenderExt("Extension — chunk-size sensitivity (YCSB-A, Greedy)", cells))
	}
	if want("sla") {
		ran = true
		cells, err := harness.ExpSLAWindow(sc, []string{"sepgc", "sepbit", harness.PolicyADAPT})
		cmd.Check(err)
		fmt.Println(harness.RenderExt("Extension — SLA-window sensitivity (YCSB-A, Greedy)", cells))
	}
	if want("victims") {
		ran = true
		cells, err := harness.ExpVictims(sc, []string{"sepgc", harness.PolicyADAPT})
		cmd.Check(err)
		fmt.Println(harness.RenderExt("Extension — victim-selection policies (YCSB-A)", cells))
	}
	if want("latency") {
		ran = true
		cells, err := harness.ExpLatency(sc, harness.PolicyNames())
		cmd.Check(err)
		fmt.Println(harness.RenderLatency(cells))
	}
	if want("fault") {
		ran = true
		res, err := harness.ExpFault(sc, harness.PolicyNames(), harness.DefaultFaultOptions(sc))
		cmd.Check(err)
		fmt.Println(res.Render())
	}
	if want("tailtrace") {
		ran = true
		res, err := harness.ExpTailTrace(sc, harness.PolicyNames(), harness.DefaultTailTraceOptions(sc))
		cmd.Check(err)
		fmt.Println(res.Render())
	}
	if *exp == "gcsched" {
		// Wall-clock tail latencies under live pacing: explicit-only so
		// "all" stays deterministic.
		ran = true
		res, err := harness.ExpGCSched(sc, []string{"sepgc", "sepbit", harness.PolicyADAPT},
			harness.DefaultGCSchedOptions(sc))
		cmd.Check(err)
		fmt.Println(res.Render())
	}
	if *exp == "shardscale" {
		// Wall-clock (not simulated) throughput, so it runs only when
		// asked for explicitly; "all" stays deterministic.
		ran = true
		res, err := harness.ExpShardScale(sc, harness.DefaultShardScaleOptions(sc))
		cmd.Check(err)
		fmt.Println(res.Render())
	}
	if *exp == "telemetry" {
		ran = true
		ts, res, err := harness.TelemetryRun(sc, *policy, telemetry.Options{
			WindowInterval: sim.Time(*window),
		})
		cmd.Check(err)
		ws := ts.Recorder.Windows()
		fmt.Print(harness.RenderWindows(
			fmt.Sprintf("Telemetry — %s on YCSB-A (%d windows, %d dropped)",
				res.Policy, len(ws), ts.Recorder.Dropped()), ws))
		fmt.Printf("run totals: WA %.2f, effective WA %.2f, padding %.1f%%\n\n",
			res.WA, res.EffectiveWA, 100*res.PaddingRatio)
		fmt.Print(harness.RenderEventSummary(ts.Tracer))
		if *series != "" {
			cmd.Check(writeFile(*series, func(f *os.File) error {
				return telemetry.WriteWindowsJSONL(f, ws)
			}))
			fmt.Printf("wrote %d windows to %s\n", len(ws), *series)
		}
		if *seriesCSV != "" {
			cmd.Check(writeFile(*seriesCSV, func(f *os.File) error {
				return telemetry.WriteWindowsCSV(f, ws)
			}))
			fmt.Printf("wrote %d windows to %s\n", len(ws), *seriesCSV)
		}
		if *events != "" {
			cmd.Check(writeFile(*events, func(f *os.File) error {
				return ts.Tracer.WriteJSONL(f)
			}))
			fmt.Printf("wrote %d events to %s\n", ts.Tracer.Len(), *events)
		}
		if *debug != "" {
			_, addr, err := telemetry.Serve(*debug, ts, nil)
			cmd.Check(err)
			fmt.Printf("serving telemetry on http://%s/ (metrics, events.jsonl, series.jsonl, debug/pprof); ctrl-c to exit\n", addr)
			select {}
		}
	}
	if !ran {
		cmd.UsageErrorf("unknown experiment %q", *exp)
	}
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
