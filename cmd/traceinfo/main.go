// Command traceinfo characterizes block I/O traces the way Figure 2
// of the paper does: request rate, write-size distribution, and
// footprint, for any of the supported trace formats.
//
// Usage:
//
//	traceinfo -format msr volume1.csv volume2.csv
//	traceinfo -format bin traces/*.bin
package main

import (
	"fmt"
	"os"
	"sort"

	"adapt"
	"adapt/internal/cli"
	"adapt/internal/stats"
)

func main() {
	cmd := cli.New("traceinfo",
		"traceinfo -format msr volume1.csv volume2.csv",
		"traceinfo -format bin traces/*.bin")
	fs := cmd.Flags()
	format := fs.String("format", "bin", "trace format: msr|ali|tencent|bin")
	cmd.Parse(os.Args[1:])
	if fs.NArg() == 0 {
		cmd.UsageErrorf("no trace files given")
	}
	switch *format {
	case "msr", "ali", "tencent", "bin":
	default:
		cmd.UsageErrorf("unknown trace format %q", *format)
	}

	var rates []float64
	fmt.Printf("%-32s %10s %10s %10s %12s %14s\n",
		"trace", "requests", "writes", "req/s", "avgWriteKiB", "footprintKiB")
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		cmd.Check(err)
		var tr *adapt.Trace
		switch *format {
		case "msr":
			tr, err = adapt.ParseMSR(f, path)
		case "ali":
			tr, err = adapt.ParseAli(f, path)
		case "tencent":
			tr, err = adapt.ParseTencent(f, path)
		case "bin":
			tr, err = adapt.ReadBinaryTrace(f)
		}
		f.Close()
		cmd.Check(err)
		st := tr.Stats(4096)
		rates = append(rates, st.ReqPerSec)
		fmt.Printf("%-32s %10d %10d %10.2f %12.2f %14d\n",
			tr.Name, st.Requests, st.Writes, st.ReqPerSec, st.AvgWriteKiB, st.FootprintKiB)
	}
	if len(rates) > 1 {
		sort.Float64s(rates)
		below10 := 0
		for _, r := range rates {
			if r < 10 {
				below10++
			}
		}
		fmt.Printf("\nvolumes: %d   median rate: %.2f req/s   under 10 req/s: %.1f%%\n",
			len(rates), stats.SortedPercentile(rates, 50), 100*float64(below10)/float64(len(rates)))
	}
}
