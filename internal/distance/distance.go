// Package distance implements a reuse-distance tracker — the "distance
// tree" of ADAPT's threshold-adaptation module (§3.2). For each access
// it reports how many *distinct* other keys were touched since the
// previous access to the same key (∞ for first accesses), in O(log n)
// amortized time using a Fenwick tree over access sequence slots.
//
// The classic construction: every key occupies exactly one slot, at its
// most recent access position. On re-access, the number of occupied
// slots strictly after the key's previous position is its reuse
// distance; the old slot is vacated and the key re-inserted at the
// current position. The slot array grows with the access count and is
// compacted when it becomes sparse.
package distance

import (
	"sort"

	"adapt/internal/fenwick"
)

// Infinite is returned for the first access to a key.
const Infinite = int64(-1)

// Tracker computes reuse distances over a stream of keys.
type Tracker struct {
	tree    *fenwick.Tree
	lastPos map[int64]int // key -> slot of most recent access
	next    int           // next free slot
	resizes int
}

// NewTracker returns an empty tracker. capacityHint sizes the initial
// slot array (it grows as needed).
func NewTracker(capacityHint int) *Tracker {
	if capacityHint < 64 {
		capacityHint = 64
	}
	return &Tracker{
		tree:    fenwick.New(capacityHint),
		lastPos: make(map[int64]int),
	}
}

// Access records an access to key and returns the reuse distance: the
// number of distinct keys accessed since the previous access to key, or
// Infinite if key was never seen.
func (t *Tracker) Access(key int64) int64 {
	if t.next >= t.tree.Len() {
		t.compact()
	}
	pos := t.next
	t.next++
	prev, seen := t.lastPos[key]
	var d int64 = Infinite
	if seen {
		d = t.tree.SuffixSum(prev)
		t.tree.Add(prev, -1)
	}
	t.tree.Add(pos, 1)
	t.lastPos[key] = pos
	return d
}

// Unique returns the number of distinct keys seen so far.
func (t *Tracker) Unique() int { return len(t.lastPos) }

// Forget removes key from the tracker; its next access will be treated
// as a first access.
func (t *Tracker) Forget(key int64) {
	if pos, ok := t.lastPos[key]; ok {
		t.tree.Add(pos, -1)
		delete(t.lastPos, key)
	}
}

// Footprint estimates the tracker's memory use in bytes.
func (t *Tracker) Footprint() int64 {
	// Fenwick: 8 bytes per slot; map: ~48 bytes per entry including
	// bucket overhead (8B key + 8B value + hashing metadata).
	return int64(t.tree.Len())*8 + int64(len(t.lastPos))*48
}

// compact rebuilds the slot array so that live keys occupy a dense
// prefix in their current relative order, then doubles if still tight.
func (t *Tracker) compact() {
	live := len(t.lastPos)
	size := t.tree.Len()
	for size < 2*live+64 {
		size *= 2
	}
	// Collect keys ordered by current slot.
	type kv struct {
		key int64
		pos int
	}
	ordered := make([]kv, 0, live)
	for k, p := range t.lastPos {
		ordered = append(ordered, kv{k, p})
	}
	// Sort by position (insertion-order within the slot array).
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].pos < ordered[j].pos })
	nt := fenwick.New(size)
	for i, e := range ordered {
		nt.Add(i, 1)
		t.lastPos[e.key] = i
	}
	t.tree = nt
	t.next = live
	t.resizes++
}
