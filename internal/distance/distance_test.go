package distance

import (
	"testing"
	"testing/quick"

	"adapt/internal/sim"
)

// naiveDistance is the O(n) reference: scan back through the access
// history counting distinct keys since the previous occurrence.
type naiveDistance struct {
	history []int64
}

func (n *naiveDistance) access(key int64) int64 {
	defer func() { n.history = append(n.history, key) }()
	seen := make(map[int64]bool)
	for i := len(n.history) - 1; i >= 0; i-- {
		if n.history[i] == key {
			return int64(len(seen))
		}
		seen[n.history[i]] = true
	}
	return Infinite
}

func TestFirstAccessInfinite(t *testing.T) {
	tr := NewTracker(0)
	if d := tr.Access(42); d != Infinite {
		t.Fatalf("first access distance = %d, want Infinite", d)
	}
	if u := tr.Unique(); u != 1 {
		t.Fatalf("Unique = %d, want 1", u)
	}
}

func TestImmediateReuseIsZero(t *testing.T) {
	tr := NewTracker(0)
	tr.Access(1)
	if d := tr.Access(1); d != 0 {
		t.Fatalf("immediate reuse distance = %d, want 0", d)
	}
}

func TestKnownSequence(t *testing.T) {
	// Sequence a b c a: distance of final a is 2 (b and c intervene).
	tr := NewTracker(0)
	tr.Access(1)
	tr.Access(2)
	tr.Access(3)
	if d := tr.Access(1); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
	// b was accessed before c and a-again: distance 2 (c, a).
	if d := tr.Access(2); d != 2 {
		t.Fatalf("distance for b = %d, want 2", d)
	}
}

func TestRepeatedKeyDoesNotInflateDistance(t *testing.T) {
	// a b b b a: only one distinct key (b) intervenes.
	tr := NewTracker(0)
	tr.Access(1)
	tr.Access(2)
	tr.Access(2)
	tr.Access(2)
	if d := tr.Access(1); d != 1 {
		t.Fatalf("distance = %d, want 1", d)
	}
}

func TestForget(t *testing.T) {
	tr := NewTracker(0)
	tr.Access(7)
	tr.Forget(7)
	if d := tr.Access(7); d != Infinite {
		t.Fatalf("post-Forget distance = %d, want Infinite", d)
	}
	// Forgetting an unknown key must be a no-op.
	tr.Forget(999)
	if u := tr.Unique(); u != 1 {
		t.Fatalf("Unique = %d, want 1", u)
	}
}

func TestCompactionPreservesDistances(t *testing.T) {
	// Force many compactions with a tiny initial capacity and verify
	// against the naive reference throughout.
	tr := NewTracker(1)
	ref := &naiveDistance{}
	rng := sim.NewRNG(7)
	for i := 0; i < 5000; i++ {
		key := rng.Int63n(50)
		got, want := tr.Access(key), ref.access(key)
		if got != want {
			t.Fatalf("access %d key %d: got %d, want %d", i, key, got, want)
		}
	}
	if tr.resizes == 0 {
		t.Fatal("expected at least one compaction in this test")
	}
}

func TestQuickAgainstNaive(t *testing.T) {
	f := func(keys []uint8) bool {
		tr := NewTracker(4)
		ref := &naiveDistance{}
		for _, k := range keys {
			if tr.Access(int64(k)) != ref.access(int64(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintGrowsWithKeys(t *testing.T) {
	tr := NewTracker(0)
	before := tr.Footprint()
	for i := int64(0); i < 1000; i++ {
		tr.Access(i)
	}
	if after := tr.Footprint(); after <= before {
		t.Fatalf("footprint did not grow: before=%d after=%d", before, after)
	}
}

func BenchmarkAccessZipf(b *testing.B) {
	tr := NewTracker(1 << 16)
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Access(rng.Int63n(1 << 16))
	}
}
