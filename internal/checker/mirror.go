package checker

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"adapt/internal/blockdev"
	"adapt/internal/lss"
)

// mirror is the byte-level array model. It observes every chunk flush
// through the store's audit sink, synthesizes the chunk's bytes from
// the store's slot directory (each block is a deterministic encoding of
// its slot kind, LBA, and version), and writes them stripe-by-stripe
// into a real blockdev.DataArray — XOR parity, rotating parity column,
// failures, and rebuilds included. Verification then reads every
// durable live block back through the array (degraded reconstruction
// and all) and compares it with what the slot directory says must be
// there. The store itself never materializes data bytes, so this is
// the only place byte-level placement, parity, and rebuild correctness
// are exercised end to end.
type mirror struct {
	data        *blockdev.DataArray
	blockBytes  int
	chunkBlocks int
	segChunks   int
	dataColumns int

	// seqOf maps a physical chunk (segID*segChunks + chunkIdx) to the
	// global sequence number of its most recent flush, or -1 if the
	// chunk has not been flushed since the mirror attached. Segment
	// reuse overwrites the entry, so a stale mapping into a reclaimed
	// segment can never read plausible old bytes.
	seqOf []int64
	next  int64 // next global chunk sequence number

	// pending accumulates chunks until a full stripe of DataColumns is
	// ready for WriteStripe. Reads of not-yet-striped chunks are served
	// straight from here.
	pending [][]byte

	firstErr error // first stripe-write failure, surfaced at verify
}

const blockHeader = 17 // kind byte + LBA + version

func newMirror(store *lss.Store) (*mirror, error) {
	cfg := store.Config()
	if cfg.BlockSize < blockHeader {
		return nil, fmt.Errorf("checker: mirror needs BlockSize >= %d bytes to encode block identity, got %d",
			blockHeader, cfg.BlockSize)
	}
	return &mirror{
		data:        blockdev.NewDataArray(cfg.DataColumns, int(cfg.ChunkBytes())),
		blockBytes:  cfg.BlockSize,
		chunkBlocks: cfg.ChunkBlocks,
		segChunks:   cfg.SegmentChunks,
		dataColumns: cfg.DataColumns,
		seqOf:       newSeqTable(store.TotalSegments() * cfg.SegmentChunks),
	}, nil
}

func newSeqTable(n int) []int64 {
	t := make([]int64, n)
	for i := range t {
		t[i] = -1
	}
	return t
}

// encodeBlock writes the canonical content of a slot into dst: zeroes
// for padding, else a header of (kind, LBA, version) followed by a
// keystream derived from them, so corruption anywhere in the block is
// caught, not just in the first bytes.
func (m *mirror) encodeBlock(dst []byte, info lss.SlotInfo) {
	if info.Kind == lss.SlotPad {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	dst[0] = byte(info.Kind)
	binary.LittleEndian.PutUint64(dst[1:9], uint64(info.LBA))
	binary.LittleEndian.PutUint64(dst[9:blockHeader], uint64(info.Version))
	for i := blockHeader; i < len(dst); i++ {
		dst[i] = byte(i) ^ byte(info.LBA) ^ byte(info.Version>>2)
	}
}

// observe is the audit-sink callback: synthesize the flushed chunk's
// bytes from the slot directory and append it to the array, completing
// a stripe whenever DataColumns chunks have accumulated.
func (m *mirror) observe(store *lss.Store) lss.ChunkSink {
	return func(w lss.ChunkWrite) {
		chunk := make([]byte, m.chunkBlocks*m.blockBytes)
		base := w.Chunk * m.chunkBlocks
		for i := 0; i < m.chunkBlocks; i++ {
			info, ok := store.Slot(w.Segment, base+i)
			if !ok {
				m.fail(fmt.Errorf("flush of segment %d chunk %d references unwritten slot %d",
					w.Segment, w.Chunk, base+i))
				return
			}
			m.encodeBlock(chunk[i*m.blockBytes:(i+1)*m.blockBytes], info)
		}
		m.seqOf[w.Segment*m.segChunks+w.Chunk] = m.next
		m.next++
		m.pending = append(m.pending, chunk)
		if len(m.pending) == m.dataColumns {
			if err := m.data.WriteStripe(m.pending); err != nil {
				m.fail(fmt.Errorf("stripe write: %v", err))
			}
			m.pending = m.pending[:0]
		}
	}
}

func (m *mirror) fail(err error) {
	if m.firstErr == nil {
		m.firstErr = mismatchf("mirror: %v", err)
	}
}

// readChunk fetches the chunk with global sequence number seq, from
// the array (exercising degraded reconstruction when a column is
// failed) or from the pending partial stripe.
func (m *mirror) readChunk(seq int64) ([]byte, error) {
	row := seq / int64(m.dataColumns)
	idx := int(seq % int64(m.dataColumns))
	if row < m.data.Rows() {
		return m.data.ReadChunk(row, idx)
	}
	if row == m.data.Rows() && idx < len(m.pending) {
		return m.pending[idx], nil
	}
	return nil, fmt.Errorf("chunk seq %d beyond array (%d rows, %d pending)", seq, m.data.Rows(), len(m.pending))
}

// verify checks XOR parity across the whole array and reads every
// durable live block back, comparing the array bytes with the canonical
// encoding of the slot the store's mapping points at.
func (m *mirror) verify(store *lss.Store) error {
	if m.firstErr != nil {
		return m.firstErr
	}
	if got := store.Array().DataChunks(); got != m.next {
		return mismatchf("mirror: store accounting reports %d data chunks, audit sink observed %d", got, m.next)
	}
	if err := m.data.CheckParity(); err != nil {
		return mismatchf("mirror: %v", err)
	}
	cfg := store.Config()
	want := make([]byte, m.blockBytes)
	for lba := int64(0); lba < cfg.UserBlocks; lba++ {
		seg, slot, mapped := store.Location(lba)
		if !mapped {
			continue
		}
		if slot >= store.FlushedSlots(seg) {
			// Still coalescing in the open chunk; not on the array yet.
			continue
		}
		seq := m.seqOf[seg*m.segChunks+slot/m.chunkBlocks]
		if seq < 0 {
			return mismatchf("mirror: lba %d maps to flushed segment %d slot %d but its chunk never hit the array",
				lba, seg, slot)
		}
		chunk, err := m.readChunk(seq)
		if err != nil {
			return mismatchf("mirror: lba %d: %v", lba, err)
		}
		info, ok := store.Slot(seg, slot)
		if !ok {
			return mismatchf("mirror: lba %d maps to unreadable slot %d/%d", lba, seg, slot)
		}
		m.encodeBlock(want, info)
		off := (slot % m.chunkBlocks) * m.blockBytes
		if !bytes.Equal(chunk[off:off+m.blockBytes], want) {
			return mismatchf("mirror: lba %d read-back differs from slot %d/%d encoding (kind %v, version %d)",
				lba, seg, slot, info.Kind, info.Version)
		}
	}
	return nil
}
