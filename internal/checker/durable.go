package checker

import (
	"sync"

	"adapt/internal/lss"
	"adapt/internal/sim"
)

// DurableLedger is the crash oracle for lss.DurableLog backends. It
// interposes between the store and a real backend (internal/segfile),
// recording exactly the transitions the backend acknowledged: an
// AppendChunk that returned nil is durable, a FreeSegment that
// returned nil destroyed its segment's image, and nothing else moves
// the mapping. From that ledger, ExpectedDurable computes the mapping
// a post-crash recovery must roll forward to — the durable analogue of
// ExpectedRecovery, suitable for CompareRecovered.
//
// The exactness argument: the recovered mapping is a pure function of
// the surviving chunk records and segment liveness, and under a
// sync-per-append discipline (segfile.SyncAlways) an operation is
// durable if and only if the backend acked it. Seal, open, and
// checkpoint acks carry no mapping state (a seal only promotes a
// segment whose chunks are all already durable; a checkpoint is only a
// clock floor), so the ledger can ignore their ack-ness entirely.
// Under relaxed disciplines acked-but-unsynced appends may survive a
// crash or not; the ledger then yields a lower bound, not an equality.
type DurableLedger struct {
	mu    sync.Mutex
	inner lss.DurableLog
	segs  map[int]map[int]ledgerChunk // seg id -> chunk idx -> slots
}

// ledgerChunk is one acked chunk's slot image, copied out of the
// DurableChunk (whose slices alias store memory).
type ledgerChunk struct {
	lbas []int64
	vers []int64
}

// NewDurableLedger wraps inner, which may be nil to run the ledger as
// a pure in-memory recorder.
func NewDurableLedger(inner lss.DurableLog) *DurableLedger {
	return &DurableLedger{inner: inner, segs: make(map[int]map[int]ledgerChunk)}
}

// OpenSegment forwards and, on ack, starts a fresh (empty) incarnation
// for id.
func (l *DurableLedger) OpenSegment(id int, group lss.GroupID, born sim.WriteClock) error {
	if l.inner != nil {
		if err := l.inner.OpenSegment(id, group, born); err != nil {
			return err
		}
	}
	l.mu.Lock()
	l.segs[id] = make(map[int]ledgerChunk)
	l.mu.Unlock()
	return nil
}

// AppendChunk forwards and, on ack, records the chunk's slot image.
func (l *DurableLedger) AppendChunk(c lss.DurableChunk) error {
	if l.inner != nil {
		if err := l.inner.AppendChunk(c); err != nil {
			return err
		}
	}
	lc := ledgerChunk{
		lbas: append([]int64(nil), c.LBAs...),
		vers: append([]int64(nil), c.Vers...),
	}
	l.mu.Lock()
	if l.segs[c.Segment] == nil {
		l.segs[c.Segment] = make(map[int]ledgerChunk)
	}
	l.segs[c.Segment][c.Chunk] = lc
	l.mu.Unlock()
	return nil
}

// SealSegment forwards; seals carry no mapping state.
func (l *DurableLedger) SealSegment(id int, sealedW sim.WriteClock) error {
	if l.inner != nil {
		return l.inner.SealSegment(id, sealedW)
	}
	return nil
}

// FreeSegment forwards and, on ack, destroys the segment's image.
func (l *DurableLedger) FreeSegment(id int) error {
	if l.inner != nil {
		if err := l.inner.FreeSegment(id); err != nil {
			return err
		}
	}
	l.mu.Lock()
	delete(l.segs, id)
	l.mu.Unlock()
	return nil
}

// Checkpoint forwards; checkpoints carry no mapping state.
func (l *DurableLedger) Checkpoint(w sim.WriteClock, appendSeq int64, now sim.Time) error {
	if l.inner != nil {
		return l.inner.Checkpoint(w, appendSeq, now)
	}
	return nil
}

// ExpectedDurable computes the mapping recovery must produce from the
// acked state: for every LBA the highest-versioned slot across all
// live (never-freed-since) segment incarnations, primary or shadow —
// the same roll-forward lss.Recover and ExpectedRecovery perform.
func (l *DurableLedger) ExpectedDurable() map[int64]RecoveredLoc {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[int64]RecoveredLoc)
	for id, chunks := range l.segs {
		for ci, c := range chunks {
			for i := range c.lbas {
				lba, ok := lss.DecodeSlot(c.lbas[i])
				if !ok {
					continue
				}
				ver := c.vers[i]
				if best, seen := out[lba]; !seen || ver > best.Version {
					out[lba] = RecoveredLoc{
						Seg:     id,
						Slot:    ci*len(c.lbas) + i,
						Version: ver,
					}
				}
			}
		}
	}
	return out
}
