package checker_test

import (
	"errors"
	"testing"

	"adapt/internal/checker"
	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/sim"
)

// FuzzOracleOps drives the full oracle — reference model plus byte
// mirror — with a fuzzed operation stream that includes device
// failures and partial rebuilds. Request-validation errors (out-of-
// range writes, double faults) are expected; a reference-model
// divergence is a bug by definition, whatever the input.
func FuzzOracleOps(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 11, 0, 4, 1, 0, 0, 12, 0, 5, 8, 0})
	f.Add([]byte{0, 1, 0, 2, 1, 0, 3, 100, 1, 0, 2, 1})
	f.Add([]byte{4, 0, 0, 4, 1, 0, 5, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := lss.Config{
			BlockSize:     32,
			ChunkBlocks:   4,
			SegmentChunks: 4,
			UserBlocks:    1024,
			OverProvision: 0.3,
		}
		pol, err := placement.New(placement.NameSepGC, placement.Params{
			UserBlocks:    cfg.UserBlocks,
			SegmentBlocks: cfg.SegmentBlocks(),
			ChunkBlocks:   cfg.ChunkBlocks,
		})
		if err != nil {
			t.Fatal(err)
		}
		o, err := checker.New(lss.New(cfg, pol), checker.Options{Mirror: true, CheckEvery: 16})
		if err != nil {
			t.Fatal(err)
		}
		fatalOnMismatch := func(err error) {
			if err != nil && errors.Is(err, checker.ErrMismatch) {
				t.Fatalf("oracle mismatch: %v", err)
			}
		}
		// The store applies geometry defaults; read the effective column
		// count back so the fault op covers every column plus one past
		// the end.
		cols := o.Store().Config().DataColumns
		now := sim.Time(0)
		ops := 0
		for i := 0; i+2 < len(data) && ops < 2048; i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			lba := (int64(a) | int64(b)<<8) % (cfg.UserBlocks + 8)
			switch op % 6 {
			case 0, 1:
				fatalOnMismatch(o.Write(lba, 1, now))
			case 2:
				fatalOnMismatch(o.Trim(lba, int(a%8)+1, now))
			case 3:
				now += sim.Time(a) * sim.Microsecond
			case 4:
				// Double faults are expected rejections; mismatches are not.
				fatalOnMismatch(o.FailColumn(int(a) % (cols + 2)))
			case 5:
				_, _, err := o.RebuildStep(int(a)%64 + 1)
				fatalOnMismatch(err)
			}
			ops++
		}
		// Finish any outstanding rebuild so the final audit sees a
		// healthy array, then require a completely clean bill.
		for o.MirrorArray().FailedColumn() >= 0 {
			if _, done, err := o.RebuildStep(1 << 10); err != nil {
				t.Fatalf("rebuild: %v", err)
			} else if done {
				break
			}
		}
		if err := o.Drain(now + sim.Second); err != nil {
			t.Fatalf("final audit after %d ops: %v", ops, err)
		}
	})
}
