package checker_test

import (
	"bytes"
	"errors"
	"testing"

	"adapt/internal/checker"
	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/sim"
	"adapt/internal/trace"
	"adapt/internal/workload"
)

// smallCfg keeps the mirror's memory footprint trivial: 32-byte blocks
// mean the whole physical space is a few hundred KiB even after heavy
// GC churn.
func smallCfg() lss.Config {
	return lss.Config{
		BlockSize:     32,
		ChunkBlocks:   4,
		SegmentChunks: 8,
		UserBlocks:    4096,
		OverProvision: 0.25,
	}
}

func params(cfg lss.Config) placement.Params {
	return placement.Params{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.SegmentBlocks(),
		ChunkBlocks:   cfg.ChunkBlocks,
	}
}

func newOracle(t *testing.T, cfg lss.Config, opts checker.Options) *checker.Oracle {
	t.Helper()
	pol, err := placement.New(placement.NameSepGC, params(cfg))
	if err != nil {
		t.Fatalf("placement.New: %v", err)
	}
	o, err := checker.New(lss.New(cfg, pol), opts)
	if err != nil {
		t.Fatalf("checker.New: %v", err)
	}
	return o
}

func zipfTrace(cfg lss.Config, writes int64, seed uint64) *trace.Trace {
	return workload.Generate(workload.YCSBConfig{
		Blocks:    cfg.UserBlocks,
		Writes:    writes,
		Fill:      true,
		Theta:     0.99,
		BlockSize: int64(cfg.BlockSize),
		Seed:      seed,
	})
}

func TestOracleCleanReplay(t *testing.T) {
	cfg := smallCfg()
	o := newOracle(t, cfg, checker.Options{Mirror: true, FullEvery: 4096})
	if err := o.ReplayTrace(zipfTrace(cfg, 16384, 1)); err != nil {
		t.Fatalf("oracle replay: %v", err)
	}
	if o.Store().Metrics().GCBlocks == 0 {
		t.Fatal("trace too light: GC never ran, oracle exercised nothing interesting")
	}
	cheap, full := o.Checks()
	if cheap == 0 || full < 2 {
		t.Fatalf("checks did not run: cheap=%d full=%d", cheap, full)
	}
}

func TestOracleTrims(t *testing.T) {
	cfg := smallCfg()
	o := newOracle(t, cfg, checker.Options{Mirror: true})
	now := sim.Time(0)
	for round := 0; round < 8; round++ {
		for lba := int64(0); lba < cfg.UserBlocks; lba += 2 {
			if err := o.Write(lba, 1, now); err != nil {
				t.Fatalf("write: %v", err)
			}
			now += sim.Microsecond
		}
		if err := o.Trim(0, int(cfg.UserBlocks/4), now); err != nil {
			t.Fatalf("trim: %v", err)
		}
	}
	if err := o.Drain(now + sim.Second); err != nil {
		t.Fatalf("drain check: %v", err)
	}
}

// TestOracleDetectsBypass proves the oracle is not vacuous: traffic
// that sneaks past the model (a direct store write) must trip the next
// cross-check with ErrMismatch.
func TestOracleDetectsBypass(t *testing.T) {
	cfg := smallCfg()
	o := newOracle(t, cfg, checker.Options{})
	if err := o.Write(0, 64, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := o.Store().WriteBlock(100, sim.Microsecond); err != nil {
		t.Fatalf("direct write: %v", err)
	}
	err := o.FullCheck()
	if !errors.Is(err, checker.ErrMismatch) {
		t.Fatalf("bypassing the model produced %v, want ErrMismatch", err)
	}
}

// TestOracleFaultRebuild replays through a mid-trace device failure,
// continues degraded (reads reconstructing from parity), rebuilds
// incrementally, and requires a clean bill of health afterwards.
func TestOracleFaultRebuild(t *testing.T) {
	cfg := smallCfg()
	o := newOracle(t, cfg, checker.Options{Mirror: true})
	tr := zipfTrace(cfg, 8192, 7)
	half := len(tr.Records) / 2
	first := &trace.Trace{Name: "first", Records: tr.Records[:half]}

	bs := int64(cfg.BlockSize)
	for i := range first.Records {
		r := &first.Records[i]
		if r.Op != trace.OpWrite {
			continue
		}
		if err := o.Write(r.Offset/bs, 1, r.Time); err != nil {
			t.Fatalf("first half: %v", err)
		}
	}
	if err := o.FailColumn(1); err != nil {
		t.Fatalf("fail column: %v", err)
	}
	// Degraded full check: reads of the failed column reconstruct.
	if err := o.FullCheck(); err != nil {
		t.Fatalf("degraded check: %v", err)
	}
	if o.MirrorArray().DegradedReads() == 0 {
		t.Fatal("degraded check never reconstructed a chunk")
	}
	// Keep writing while degraded, rebuilding a bit at a time.
	for i := half; i < len(tr.Records); i++ {
		r := &tr.Records[i]
		if r.Op != trace.OpWrite {
			continue
		}
		if err := o.Write(r.Offset/bs, 1, r.Time); err != nil {
			t.Fatalf("degraded write: %v", err)
		}
		if i%64 == 0 {
			if _, _, err := o.RebuildStep(4); err != nil {
				t.Fatalf("rebuild step: %v", err)
			}
		}
	}
	for {
		_, done, err := o.RebuildStep(128)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		if done {
			break
		}
	}
	if o.MirrorArray().FailedColumn() != -1 {
		t.Fatal("array still degraded after rebuild completed")
	}
	if err := o.Drain(o.Store().Now() + sim.Second); err != nil {
		t.Fatalf("post-rebuild check: %v", err)
	}
}

// TestExpectedRecoverySweep is the crash-point property test: random
// operation prefixes, checkpoint, recover, and require the recovered
// mapping to equal the independent ExpectedRecovery prediction and the
// recovered store to pass its own invariants.
func TestExpectedRecoverySweep(t *testing.T) {
	cfg := smallCfg()
	tr := zipfTrace(cfg, 4096, 11)
	rng := sim.NewRNG(99)
	bs := int64(cfg.BlockSize)
	for round := 0; round < 12; round++ {
		cut := 1 + int(rng.Uint64()%uint64(len(tr.Records)))
		pol, err := placement.New(placement.NameSepGC, params(cfg))
		if err != nil {
			t.Fatalf("placement.New: %v", err)
		}
		s := lss.New(cfg, pol)
		for i := 0; i < cut; i++ {
			r := &tr.Records[i]
			if r.Op != trace.OpWrite {
				continue
			}
			if err := s.WriteBlock(r.Offset/bs, r.Time); err != nil {
				t.Fatalf("cut %d: write: %v", cut, err)
			}
		}
		want := checker.ExpectedRecovery(s)

		var buf bytes.Buffer
		if err := s.WriteCheckpoint(&buf); err != nil {
			t.Fatalf("cut %d: checkpoint: %v", cut, err)
		}
		pol2, _ := placement.New(placement.NameSepGC, params(cfg))
		rec, err := lss.Recover(&buf, cfg, pol2)
		if err != nil {
			t.Fatalf("cut %d: recover: %v", cut, err)
		}
		if err := checker.CompareRecovered(rec, want); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("cut %d: recovered invariants: %v", cut, err)
		}
	}
}

// TestCrashDuringBackgroundGCSweep checkpoints at every preemption
// point of paused background-GC cycles — after each single-chunk
// GCStep while a cycle is in flight — and requires recovery to roll
// forward to exactly the independently predicted mapping. A crash
// mid-relocation must behave like a crash anywhere else: durable
// chunks win by version, the in-flight cycle simply evaporates.
func TestCrashDuringBackgroundGCSweep(t *testing.T) {
	cfg := smallCfg()
	cfg.BackgroundGC = true
	pol, err := placement.New(placement.NameSepGC, params(cfg))
	if err != nil {
		t.Fatalf("placement.New: %v", err)
	}
	s := lss.New(cfg, pol)
	rng := sim.NewRNG(17)
	now := sim.Time(0)
	checked := 0
	for op := 0; op < 40000 && checked < 60; op++ {
		now += 10 * sim.Microsecond
		if err := s.WriteBlock(rng.Int63n(cfg.UserBlocks), now); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if !s.GCNeeded() {
			continue
		}
		s.GCStep(1) // smallest slice: pause at the next chunk boundary
		if !s.GCActive() || op%7 != 0 {
			continue // sample the yield points, sweep stays fast
		}
		checked++
		want := checker.ExpectedRecovery(s)
		var buf bytes.Buffer
		if err := s.WriteCheckpoint(&buf); err != nil {
			t.Fatalf("op %d: checkpoint: %v", op, err)
		}
		pol2, _ := placement.New(placement.NameSepGC, params(cfg))
		rec, err := lss.Recover(&buf, cfg, pol2)
		if err != nil {
			t.Fatalf("op %d: recover: %v", op, err)
		}
		if err := checker.CompareRecovered(rec, want); err != nil {
			t.Fatalf("op %d (mid-GC): %v", op, err)
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("op %d: recovered invariants: %v", op, err)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d mid-GC crash points exercised; workload too small", checked)
	}
}

func TestOracleRejectsUsedStore(t *testing.T) {
	cfg := smallCfg()
	pol, _ := placement.New(placement.NameSepGC, params(cfg))
	s := lss.New(cfg, pol)
	if err := s.WriteBlock(0, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := checker.New(s, checker.Options{}); err == nil {
		t.Fatal("oracle attached to a used store")
	}
}

func TestMirrorNeedsWideBlocks(t *testing.T) {
	cfg := smallCfg()
	cfg.BlockSize = 8
	pol, _ := placement.New(placement.NameSepGC, params(cfg))
	if _, err := checker.New(lss.New(cfg, pol), checker.Options{Mirror: true}); err == nil {
		t.Fatal("mirror accepted blocks too small to encode identity")
	}
}
