// Package checker is the correctness-verification subsystem: a
// deliberately naive reference model that replays the same
// (LBA, size, timestamp) operation stream as any placement policy and
// cross-checks the real lss.Store — and, through a byte-accurate RAID
// mirror, the array beneath it — after every operation window and at
// end of trace.
//
// The model is a flat per-LBA liveness table plus plain counters:
// trivially correct by construction, with none of the machinery under
// test (no segments, no GC, no victim index, no coalescing). Anything
// the store and the model disagree on is a bug in the store, the
// policy, or the replayer. The paper's headline properties — GC write
// amplification charged to real user writes, padding accounting, and
// zero data loss under a single device failure — are exactly the
// equalities checked here.
//
// Three check tiers trade cost for depth:
//
//   - Check: O(segments) counter cross-check (user/trim totals, live
//     block count), run every Options.CheckEvery mutating blocks.
//   - FullCheck: O(capacity) — live-set equality per LBA, independent
//     per-segment garbage recount, the store's own CheckInvariants,
//     and (with Options.Mirror) RAID parity plus byte read-back of
//     every durable live block.
//   - Drain: drains the store, then always runs FullCheck.
//
// The public API exposes the oracle as SimulatorConfig.Paranoid.
package checker

import (
	"errors"
	"fmt"

	"adapt/internal/blockdev"
	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/trace"
)

// ErrMismatch is wrapped by every divergence the oracle reports, so
// harnesses can distinguish an oracle verdict from an ordinary replay
// error with errors.Is.
var ErrMismatch = errors.New("checker: store diverged from reference model")

func mismatchf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMismatch, fmt.Sprintf(format, args...))
}

// Options tunes the oracle.
type Options struct {
	// CheckEvery runs the cheap counter cross-check every N mutating
	// blocks (default 64; negative disables).
	CheckEvery int
	// FullEvery runs the O(capacity) full cross-check every N mutating
	// blocks (default 0: only at Drain and explicit FullCheck calls).
	FullEvery int
	// Mirror maintains a byte-accurate RAID-5 mirror of every flushed
	// chunk (via the store's audit sink) and verifies XOR parity and
	// block-level read-back during full checks. Memory grows with total
	// chunks written; tests shrink Config.BlockSize to keep it small.
	// Requires BlockSize >= 17 bytes.
	Mirror bool
}

// Oracle pairs an lss.Store with the reference model. Drive all
// traffic through the oracle's Write/Read/Trim/Drain (or ReplayTrace);
// mutating the store directly makes the model stale, which the next
// check reports as a divergence. Not safe for concurrent use, exactly
// like the store it wraps.
type Oracle struct {
	store *lss.Store
	opts  Options

	live      []bool // reference liveness: written at least once, not trimmed since
	liveCount int64
	users     int64 // user blocks accepted by the model
	trims     int64 // live blocks discarded by the model
	blocks    int64 // mutating blocks processed (check cadence clock)

	checks, fullChecks int64

	mirror *mirror
}

// New attaches an oracle to a freshly built store. Attach before any
// traffic: the model starts empty, and the mirror (when enabled) must
// observe every chunk flush from the first one.
func New(store *lss.Store, opts Options) (*Oracle, error) {
	if opts.CheckEvery == 0 {
		opts.CheckEvery = 64
	}
	cfg := store.Config()
	if store.WriteClock() != 0 || store.Metrics().UserBlocks != 0 {
		return nil, fmt.Errorf("checker: oracle must attach to an unused store (write clock %d)", store.WriteClock())
	}
	o := &Oracle{
		store: store,
		opts:  opts,
		live:  make([]bool, cfg.UserBlocks),
	}
	if opts.Mirror {
		m, err := newMirror(store)
		if err != nil {
			return nil, err
		}
		o.mirror = m
		store.Reconfigure(func(r *lss.Runtime) { r.AuditSink = m.observe(store) })
	}
	return o, nil
}

// Store returns the wrapped store (read-only inspection; drive traffic
// through the oracle).
func (o *Oracle) Store() *lss.Store { return o.store }

// MirrorArray exposes the byte mirror's array (nil without
// Options.Mirror) so fault tests can assert on degraded reads and
// rebuild progress.
func (o *Oracle) MirrorArray() *blockdev.DataArray {
	if o.mirror == nil {
		return nil
	}
	return o.mirror.data
}

// Checks reports how many cheap and full cross-checks have run.
func (o *Oracle) Checks() (cheap, full int64) { return o.checks, o.fullChecks }

// Write appends user blocks through the store and the model, then runs
// any due cross-checks.
func (o *Oracle) Write(lba int64, blocks int, now sim.Time) error {
	for i := 0; i < blocks; i++ {
		if err := o.store.WriteBlock(lba+int64(i), now); err != nil {
			return err
		}
		b := lba + int64(i)
		if !o.live[b] {
			o.live[b] = true
			o.liveCount++
		}
		o.users++
		if err := o.tick(); err != nil {
			return err
		}
	}
	return nil
}

// Read forwards a read (accounting only in both model and store).
func (o *Oracle) Read(lba int64, blocks int, now sim.Time) {
	o.store.Read(lba, blocks, now)
}

// Trim discards blocks through the store and the model.
func (o *Oracle) Trim(lba int64, blocks int, now sim.Time) error {
	if err := o.store.Trim(lba, blocks, now); err != nil {
		return err
	}
	for i := int64(0); i < int64(blocks); i++ {
		if o.live[lba+i] {
			o.live[lba+i] = false
			o.liveCount--
			o.trims++
		}
	}
	for i := 0; i < blocks; i++ {
		if err := o.tick(); err != nil {
			return err
		}
	}
	return nil
}

// Drain flushes the store's open chunks and runs the full cross-check.
func (o *Oracle) Drain(now sim.Time) error {
	o.store.Drain(now)
	return o.FullCheck()
}

// tick advances the cadence clock and runs due checks.
func (o *Oracle) tick() error {
	o.blocks++
	if o.opts.FullEvery > 0 && o.blocks%int64(o.opts.FullEvery) == 0 {
		return o.FullCheck()
	}
	if o.opts.CheckEvery > 0 && o.blocks%int64(o.opts.CheckEvery) == 0 {
		return o.Check()
	}
	return nil
}

// Check is the cheap cross-check: model counters against store
// metrics and the store's O(segments) live-block count.
func (o *Oracle) Check() error {
	o.checks++
	m := o.store.Metrics()
	if m.UserBlocks != o.users {
		return mismatchf("store accepted %d user blocks, model %d", m.UserBlocks, o.users)
	}
	if m.TrimmedBlocks != o.trims {
		return mismatchf("store trimmed %d live blocks, model %d", m.TrimmedBlocks, o.trims)
	}
	if got := o.store.LiveBlocks(); got != o.liveCount {
		return mismatchf("store live blocks %d, model %d", got, o.liveCount)
	}
	return nil
}

// FullCheck is the O(capacity) cross-check: per-LBA live-set equality,
// an independent per-segment valid/garbage recount from the mapping,
// the store's own invariants (including the victim index), and — with
// the mirror enabled — RAID parity and byte-level read-back of every
// durable live block.
func (o *Oracle) FullCheck() error {
	o.fullChecks++
	if err := o.Check(); err != nil {
		return err
	}
	cfg := o.store.Config()
	segBlocks := cfg.SegmentBlocks()
	recount := make([]int, o.store.TotalSegments())
	for lba := int64(0); lba < cfg.UserBlocks; lba++ {
		seg, slot, mapped := o.store.Location(lba)
		if mapped != o.live[lba] {
			return mismatchf("lba %d: store mapped=%v, model live=%v", lba, mapped, o.live[lba])
		}
		if !mapped {
			continue
		}
		info, ok := o.store.Slot(seg, slot)
		if !ok || info.Kind == lss.SlotPad || info.LBA != lba {
			return mismatchf("lba %d maps to segment %d slot %d holding %+v", lba, seg, slot, info)
		}
		if slot >= segBlocks {
			return mismatchf("lba %d maps past segment end (slot %d)", lba, slot)
		}
		recount[seg]++
	}
	for id := range recount {
		view, _ := o.store.Segment(id)
		if view.State == lss.SegmentFree {
			if recount[id] != 0 {
				return mismatchf("free segment %d holds %d mapped blocks", id, recount[id])
			}
			continue
		}
		if view.Valid != recount[id] {
			return mismatchf("segment %d: store valid=%d, oracle recount=%d (garbage %d vs %d)",
				id, view.Valid, recount[id], view.Written-view.Valid, view.Written-recount[id])
		}
	}
	if err := o.store.CheckInvariants(); err != nil {
		return fmt.Errorf("%w: store invariants: %v", ErrMismatch, err)
	}
	if o.mirror != nil {
		if err := o.mirror.verify(o.store); err != nil {
			return err
		}
	}
	return nil
}

// FailColumn fails an array column in the byte mirror and switches the
// store into degraded-mode GC, modelling a single-device failure in
// the middle of a replay. Requires the mirror.
func (o *Oracle) FailColumn(col int) error {
	if o.mirror == nil {
		return fmt.Errorf("checker: FailColumn requires Options.Mirror")
	}
	if err := o.mirror.data.FailColumn(col); err != nil {
		return err
	}
	o.store.Reconfigure(func(r *lss.Runtime) { r.Degraded = true })
	return nil
}

// RebuildStep advances the mirror's incremental rebuild; on completion
// the store leaves degraded mode. Requires the mirror.
func (o *Oracle) RebuildStep(maxChunks int) (rebuilt int, done bool, err error) {
	if o.mirror == nil {
		return 0, false, fmt.Errorf("checker: RebuildStep requires Options.Mirror")
	}
	rebuilt, done, err = o.mirror.data.RebuildStep(maxChunks)
	if err == nil && done {
		o.store.Reconfigure(func(r *lss.Runtime) { r.Degraded = false })
	}
	return rebuilt, done, err
}

// ReplayTrace drives the store with a dense trace through the oracle,
// mirroring trace.Replay's request decomposition, and finishes with
// Drain's full cross-check.
func (o *Oracle) ReplayTrace(t *trace.Trace) error {
	bs := int64(o.store.Config().BlockSize)
	for i := range t.Records {
		r := &t.Records[i]
		lba := r.Offset / bs
		blocks := int((r.Size + bs - 1) / bs)
		if blocks < 1 {
			blocks = 1
		}
		if r.Op == trace.OpRead {
			o.Read(lba, blocks, r.Time)
			continue
		}
		if err := o.Write(lba, blocks, r.Time); err != nil {
			return fmt.Errorf("oracle replay %s record %d: %w", t.Name, i, err)
		}
	}
	return o.Drain(o.store.Now() + sim.Second)
}

// RecoveredLoc is one entry of the independent recovery oracle.
type RecoveredLoc struct {
	Seg, Slot int
	Version   int64
}

// ExpectedRecovery computes, independently of lss.Recover, the mapping
// a crash at this instant must roll forward to: for every LBA, the
// highest-versioned durable (flushed) slot, primary or shadow. The
// crash-point property test sweeps random prefixes and asserts the
// recovered store's mapping equals this prediction exactly.
func ExpectedRecovery(s *lss.Store) map[int64]RecoveredLoc {
	out := make(map[int64]RecoveredLoc)
	for id := 0; id < s.TotalSegments(); id++ {
		if view, ok := s.Segment(id); !ok || view.State == lss.SegmentFree {
			// Free segments keep stale slot images but hold nothing
			// durable; Recover skips them in its roll-forward (a stale
			// shadow can outversion its own primary, never a newer write).
			continue
		}
		flushed := s.FlushedSlots(id)
		for slot := 0; slot < flushed; slot++ {
			info, ok := s.Slot(id, slot)
			if !ok || info.Kind == lss.SlotPad {
				continue
			}
			if best, seen := out[info.LBA]; !seen || info.Version > best.Version {
				out[info.LBA] = RecoveredLoc{Seg: id, Slot: slot, Version: info.Version}
			}
		}
	}
	return out
}

// CompareRecovered checks a recovered store's mapping against an
// ExpectedRecovery prediction taken just before the crash.
func CompareRecovered(recovered *lss.Store, want map[int64]RecoveredLoc) error {
	cfg := recovered.Config()
	for lba := int64(0); lba < cfg.UserBlocks; lba++ {
		seg, slot, mapped := recovered.Location(lba)
		exp, ok := want[lba]
		if mapped != ok {
			return mismatchf("recovery: lba %d mapped=%v, oracle expected %v", lba, mapped, ok)
		}
		if !mapped {
			continue
		}
		if seg != exp.Seg || slot != exp.Slot {
			return mismatchf("recovery: lba %d recovered to segment %d slot %d, oracle expected %d/%d (version %d)",
				lba, seg, slot, exp.Seg, exp.Slot, exp.Version)
		}
	}
	return nil
}
