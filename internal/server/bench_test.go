package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"adapt/internal/harness"
	"adapt/internal/lss"
	"adapt/internal/prototype"
)

// BenchmarkServerRoundtrip measures acknowledged 4 KiB writes over real
// loopback TCP: one iteration is one client write round-trip, spread
// across the tenant fleet. The batch=on/off pair exposes the cost and
// the padding benefit of chunk-aligned group commits at each tenant
// count.
func BenchmarkServerRoundtrip(b *testing.B) {
	for _, tenants := range []int{1, 8, 64} {
		for _, batch := range []bool{true, false} {
			b.Run(fmt.Sprintf("tenants=%d/batch=%v", tenants, batch), func(b *testing.B) {
				benchRoundtrip(b, tenants, batch)
			})
		}
	}
}

func benchRoundtrip(b *testing.B, tenants int, batch bool) {
	cfg := harness.StoreConfig(64<<10, lss.Greedy)
	pol, err := harness.BuildPolicy(harness.PolicyADAPT, cfg)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := prototype.NewEngine(prototype.EngineConfig{Store: cfg, Policy: pol})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(Config{Engine: eng, Volumes: tenants, Batch: batch, MaxInflight: 64})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	clients := make([]*Client, tenants)
	for t := range clients {
		c, err := Dial(ln.Addr().String(), uint32(t))
		if err != nil {
			b.Fatal(err)
		}
		clients[t] = c
	}
	payload := make([]byte, cfg.BlockSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	volBlocks := srv.VolumeBlocks()

	b.SetBytes(int64(cfg.BlockSize))
	b.ResetTimer()
	var wg sync.WaitGroup
	for t, c := range clients {
		n := b.N / tenants
		if t < b.N%tenants {
			n++
		}
		wg.Add(1)
		go func(c *Client, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := c.Write(int64(i)%volBlocks, payload); err != nil {
					b.Error(err)
					return
				}
			}
		}(c, n)
	}
	wg.Wait()
	b.StopTimer()

	for _, c := range clients {
		c.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		b.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
}
