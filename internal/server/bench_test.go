package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"adapt/internal/adaptcore"
	"adapt/internal/lss"
	"adapt/internal/prototype"
	"adapt/internal/telemetry"
)

// benchStoreConfig mirrors harness.StoreConfig for a 64 Ki-block
// store (the harness package now sits above this one in the import
// graph, so the benchmark can no longer borrow it).
func benchStoreConfig() lss.Config {
	return lss.Config{
		BlockSize:     4096,
		ChunkBlocks:   16,
		SegmentChunks: 16,
		DataColumns:   3,
		UserBlocks:    64 << 10,
		OverProvision: 0.15,
		Victim:        lss.Greedy,
	}
}

func benchPolicy(b *testing.B, cfg lss.Config) lss.Policy {
	b.Helper()
	return adaptcore.New(adaptcore.Config{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.SegmentBlocks(),
		ChunkBlocks:   cfg.ChunkBlocks,
		OverProvision: cfg.OverProvision,
	}, adaptcore.Options{SampleRate: 2048 / float64(cfg.UserBlocks)})
}

// BenchmarkServerRoundtrip measures acknowledged 4 KiB writes over real
// loopback TCP: one iteration is one client write round-trip, spread
// across the tenant fleet. The batch=on/off pair exposes the cost and
// the padding benefit of chunk-aligned group commits at each tenant
// count. The engine shards across GOMAXPROCS cores, so running with
// -cpu 1,2,4,8 measures the shard/group-commit scaling curve.
func BenchmarkServerRoundtrip(b *testing.B) {
	for _, tenants := range []int{1, 8, 64} {
		for _, batch := range []bool{true, false} {
			b.Run(fmt.Sprintf("tenants=%d/batch=%v", tenants, batch), func(b *testing.B) {
				benchRoundtrip(b, tenants, batch)
			})
		}
	}
}

func benchRoundtrip(b *testing.B, tenants int, batch bool) {
	cfg := benchStoreConfig()
	// Shards follow the -cpu value under test (NewSharded defaults to
	// runtime.GOMAXPROCS(0)).
	eng, err := prototype.NewSharded(prototype.ShardedConfig{
		Engine: prototype.EngineConfig{Store: cfg},
		PolicyFactory: func(shard int, scfg lss.Config) (lss.Policy, error) {
			return benchPolicy(b, scfg), nil
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(Config{Engine: eng, Volumes: tenants, Batch: batch, MaxInflight: 64})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	clients := make([]*Client, tenants)
	for t := range clients {
		c, err := Dial(ln.Addr().String(), uint32(t))
		if err != nil {
			b.Fatal(err)
		}
		clients[t] = c
	}
	payload := make([]byte, cfg.BlockSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	volBlocks := srv.VolumeBlocks()

	b.SetBytes(int64(cfg.BlockSize))
	b.ResetTimer()
	var wg sync.WaitGroup
	for t, c := range clients {
		n := b.N / tenants
		if t < b.N%tenants {
			n++
		}
		wg.Add(1)
		go func(c *Client, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := c.Write(int64(i)%volBlocks, payload); err != nil {
					b.Error(err)
					return
				}
			}
		}(c, n)
	}
	wg.Wait()
	b.StopTimer()

	for _, c := range clients {
		c.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		b.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTraceHotPath measures per-request tracing overhead on the
// serving path.
//
// The disabled case replays the exact guard sequence a request
// executes when tracing is off — one traceState nil check at span
// creation plus the span nil checks at decode, respond, admission,
// handler, and connection-writer hand-off. This is the cost every
// untraced deployment pays per request and must stay in the
// single-digit nanoseconds.
//
// The enabled case runs the full span lifecycle — pool checkout,
// field population, stage stamps, histogram observation, threshold
// check, pool return — with synthetic timestamps so the clock reads
// are excluded and only the tracing machinery is measured.
func BenchmarkTraceHotPath(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		var sink int64
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sp *telemetry.Span
			if benchTraceState != nil { // handleConn: span creation
				sp = benchTraceState.newSpan()
			}
			if sp != nil { // handleConn: populate after decode
				sp.MarkAt(telemetry.StageDecode, 1)
			}
			if sp != nil { // dispatch: admission stamp
				sp.MarkAt(telemetry.StageAdmission, 2)
			}
			if sp != nil { // handler: timed-variant selection
				sink++
			}
			if sp != nil { // respond closure: status copy
				sp.Status = 0
			}
			if sp != nil { // connWriter: pending-span append
				sink++
			}
		}
		if sink != 0 {
			b.Fatal("disabled path executed trace work")
		}
	})
	b.Run("enabled", func(b *testing.B) {
		ts := telemetry.New(telemetry.Options{})
		tr := newTraceState(TraceConfig{Enabled: true, Threshold: time.Second}, 1, ts)
		ring := telemetry.NewSpanRing(64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sp := tr.newSpan()
			sp.ID = uint64(i)
			sp.Volume = 0
			sp.Op = 1
			sp.Start = 100
			sp.MarkAt(telemetry.StageDecode, 110)
			sp.MarkAt(telemetry.StageAdmission, 120)
			sp.MarkAt(telemetry.StageLockWait, 150)
			sp.MarkAt(telemetry.StageCommit, 180)
			tr.finish(sp, 200, ring) // under threshold: back to the pool
		}
	})
}

// benchTraceState is deliberately a mutable package variable so the
// compiler cannot fold the disabled-path nil checks away.
var benchTraceState *traceState
