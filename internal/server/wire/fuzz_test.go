package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzWireDecode feeds hostile byte streams to every decoder in the
// package. Decoders must error out cleanly — no panics, no allocations
// beyond MaxFrame — and anything that does decode must re-encode to a
// frame that decodes back to the same message.
func FuzzWireDecode(f *testing.F) {
	// Well-formed frames.
	f.Add(AppendRequest(nil, &Request{Op: OpWrite, ID: 7, Volume: 1, LBA: 42, Count: 1, Payload: make([]byte, 32)}))
	f.Add(AppendRequest(nil, &Request{Op: OpStat, ID: 1}))
	f.Add(AppendResponse(nil, &Response{Op: OpRead, Status: StatusOK, ID: 9, Count: 1, Payload: make([]byte, 16)}))
	f.Add(AppendStats(nil, []Stat{{Name: "store_user_blocks", Value: 123}, {Name: "srv_backpressure", Value: -1}}))
	// Hostile: truncated frame.
	good := AppendRequest(nil, &Request{Op: OpTrim, ID: 3, Volume: 2, LBA: 99, Count: 4})
	f.Add(good[:len(good)-5])
	// Hostile: oversize length prefix.
	f.Add(binary.BigEndian.AppendUint32(nil, 1<<31))
	// Hostile: bad version (resealed checksum) and corrupt checksum.
	bad := append([]byte(nil), good...)
	bad[4] = 99
	binary.BigEndian.PutUint32(bad[4+28:4+32], crc32.Checksum(bad[4:4+28], castagnoli))
	f.Add(bad)
	bad2 := append([]byte(nil), good...)
	bad2[len(bad2)-1] ^= 0xff
	f.Add(bad2)
	// Back-to-back frames in one stream.
	f.Add(append(append([]byte(nil), good...), good...))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			req, err := ReadRequest(r)
			if err != nil {
				break
			}
			re := AppendRequest(nil, &req)
			got, err := DecodeRequest(re[4:])
			if err != nil {
				t.Fatalf("re-decode of re-encoded request failed: %v", err)
			}
			if got.Op != req.Op || got.ID != req.ID || got.LBA != req.LBA ||
				got.Count != req.Count || !bytes.Equal(got.Payload, req.Payload) {
				t.Fatalf("request roundtrip mismatch: %+v vs %+v", got, req)
			}
		}
		r = bytes.NewReader(data)
		for {
			resp, err := ReadResponse(r)
			if err != nil {
				break
			}
			re := AppendResponse(nil, &resp)
			got, err := DecodeResponse(re[4:])
			if err != nil {
				t.Fatalf("re-decode of re-encoded response failed: %v", err)
			}
			if got.Op != resp.Op || got.Status != resp.Status || got.ID != resp.ID ||
				!bytes.Equal(got.Payload, resp.Payload) {
				t.Fatalf("response roundtrip mismatch: %+v vs %+v", got, resp)
			}
		}
		if stats, err := DecodeStats(data); err == nil {
			re := AppendStats(nil, stats)
			again, err := DecodeStats(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded stats failed: %v", err)
			}
			if len(again) != len(stats) {
				t.Fatalf("stats roundtrip lost entries: %d vs %d", len(again), len(stats))
			}
		}
	})
}
