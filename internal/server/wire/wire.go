// Package wire defines the block service's compact binary protocol.
//
// Every message is one length-prefixed frame:
//
//	| u32 length | header | payload |
//
// The big-endian length covers header plus payload (not itself) and is
// bounded by MaxFrame, so a hostile prefix can never force a large
// allocation. Headers are fixed-size, carry a protocol version byte and
// a CRC32-C checksum over their own bytes, and echo a caller-chosen
// request ID so responses may complete out of order. Payload bytes
// (write data, read data, STAT counters, error text) are untouched by
// the checksum; the length prefix delimits them.
//
// Request header (32 bytes):
//
//	off  size  field
//	0    1     version (Version)
//	1    1     opcode (Op)
//	2    2     flags
//	4    8     request ID
//	12   4     volume ID
//	16   8     LBA (volume-relative block address)
//	24   4     block count
//	28   4     CRC32-C of bytes [0,28)
//
// Response header (20 bytes):
//
//	off  size  field
//	0    1     version
//	1    1     opcode (echoed)
//	2    1     status (Status)
//	3    1     reserved (0)
//	4    8     request ID (echoed)
//	12   4     block count of the payload (READ) or 0
//	16   4     CRC32-C of bytes [0,16)
//
// Decoders return errors wrapping ErrProtocol for every malformed
// input; they never panic and never allocate more than MaxFrame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Version is the protocol version emitted and accepted by this package.
const Version = 1

// Frame and payload bounds. MaxBlocks bounds the per-request block
// count; MaxFrame bounds a whole frame (a MaxBlocks write of 4 KiB
// blocks fits with room for the header).
const (
	MaxBlocks = 1 << 10
	MaxFrame  = MaxBlocks*4096 + 64
)

// Header sizes in bytes (excluding the u32 length prefix).
const (
	ReqHeaderLen  = 32
	RespHeaderLen = 20
)

// Op is a request opcode.
type Op uint8

// Request opcodes.
const (
	OpRead Op = iota + 1
	OpWrite
	OpTrim
	OpFlush
	OpStat
)

// String returns the opcode mnemonic.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpTrim:
		return "TRIM"
	case OpFlush:
		return "FLUSH"
	case OpStat:
		return "STAT"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

func (o Op) valid() bool { return o >= OpRead && o <= OpStat }

// Request flags.
const (
	// FlagNoBatch asks the server to bypass the write batcher and
	// commit this write immediately.
	FlagNoBatch uint16 = 1 << 0
	// FlagTrace opts this request into exemplar capture: when server
	// tracing is enabled its span is published to the exemplar ring
	// regardless of the latency threshold.
	FlagTrace uint16 = 1 << 1
)

// Status is a response status code.
type Status uint8

// Response statuses. Every non-OK response may carry a human-readable
// detail string as its payload.
const (
	StatusOK Status = iota
	StatusBadRequest
	StatusBadVolume
	StatusOutOfRange
	StatusBackpressure
	StatusShuttingDown
	StatusInternal
)

// String returns the status mnemonic.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusBadVolume:
		return "bad-volume"
	case StatusOutOfRange:
		return "out-of-range"
	case StatusBackpressure:
		return "backpressure"
	case StatusShuttingDown:
		return "shutting-down"
	case StatusInternal:
		return "internal"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Protocol errors. Every decode failure wraps ErrProtocol.
var (
	ErrProtocol    = errors.New("wire: protocol error")
	ErrTooLarge    = fmt.Errorf("%w: frame exceeds MaxFrame", ErrProtocol)
	ErrShortFrame  = fmt.Errorf("%w: frame shorter than header", ErrProtocol)
	ErrBadVersion  = fmt.Errorf("%w: unsupported protocol version", ErrProtocol)
	ErrBadOp       = fmt.Errorf("%w: unknown opcode", ErrProtocol)
	ErrBadChecksum = fmt.Errorf("%w: header checksum mismatch", ErrProtocol)
	ErrBadCount    = fmt.Errorf("%w: block count out of range", ErrProtocol)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Request is one decoded client request.
type Request struct {
	Op     Op
	Flags  uint16
	ID     uint64
	Volume uint32
	LBA    uint64
	Count  uint32
	// Payload is the write data (WRITE) and empty otherwise. Decoders
	// hand the caller an owned copy; it is never aliased to an internal
	// buffer.
	Payload []byte
}

// Response is one decoded server response.
type Response struct {
	Op     Op
	Status Status
	ID     uint64
	Count  uint32
	// Payload is read data (READ), encoded stats (STAT), or an error
	// detail string for non-OK statuses.
	Payload []byte
}

// AppendRequest appends req as a complete frame (length prefix
// included) to dst and returns the extended slice.
func AppendRequest(dst []byte, req *Request) []byte {
	n := uint32(ReqHeaderLen + len(req.Payload))
	dst = binary.BigEndian.AppendUint32(dst, n)
	h := len(dst)
	dst = append(dst, Version, byte(req.Op))
	dst = binary.BigEndian.AppendUint16(dst, req.Flags)
	dst = binary.BigEndian.AppendUint64(dst, req.ID)
	dst = binary.BigEndian.AppendUint32(dst, req.Volume)
	dst = binary.BigEndian.AppendUint64(dst, req.LBA)
	dst = binary.BigEndian.AppendUint32(dst, req.Count)
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst[h:], castagnoli))
	return append(dst, req.Payload...)
}

// AppendResponse appends resp as a complete frame (length prefix
// included) to dst and returns the extended slice.
func AppendResponse(dst []byte, resp *Response) []byte {
	n := uint32(RespHeaderLen + len(resp.Payload))
	dst = binary.BigEndian.AppendUint32(dst, n)
	h := len(dst)
	dst = append(dst, Version, byte(resp.Op), byte(resp.Status), 0)
	dst = binary.BigEndian.AppendUint64(dst, resp.ID)
	dst = binary.BigEndian.AppendUint32(dst, resp.Count)
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst[h:], castagnoli))
	return append(dst, resp.Payload...)
}

// DecodeRequest parses one request frame (without the length prefix).
// The returned payload is a copy; frame may be reused.
func DecodeRequest(frame []byte) (Request, error) {
	req, err := decodeRequest(frame)
	if err == nil && req.Payload != nil {
		req.Payload = append([]byte(nil), req.Payload...)
	}
	return req, err
}

// decodeRequest parses a frame with the payload aliasing frame's
// backing array — for callers that hand over frame ownership.
func decodeRequest(frame []byte) (Request, error) {
	if len(frame) > MaxFrame {
		return Request{}, ErrTooLarge
	}
	if len(frame) < ReqHeaderLen {
		return Request{}, ErrShortFrame
	}
	h := frame[:ReqHeaderLen]
	if got, want := binary.BigEndian.Uint32(h[28:32]), crc32.Checksum(h[:28], castagnoli); got != want {
		return Request{}, ErrBadChecksum
	}
	if h[0] != Version {
		return Request{}, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, h[0], Version)
	}
	req := Request{
		Op:     Op(h[1]),
		Flags:  binary.BigEndian.Uint16(h[2:4]),
		ID:     binary.BigEndian.Uint64(h[4:12]),
		Volume: binary.BigEndian.Uint32(h[12:16]),
		LBA:    binary.BigEndian.Uint64(h[16:24]),
		Count:  binary.BigEndian.Uint32(h[24:28]),
	}
	if !req.Op.valid() {
		return Request{}, fmt.Errorf("%w: %d", ErrBadOp, h[1])
	}
	if req.Count > MaxBlocks {
		return Request{}, fmt.Errorf("%w: %d > %d", ErrBadCount, req.Count, MaxBlocks)
	}
	if len(frame) > ReqHeaderLen {
		req.Payload = frame[ReqHeaderLen:]
	}
	return req, nil
}

// DecodeResponse parses one response frame (without the length
// prefix). The returned payload is a copy; frame may be reused.
func DecodeResponse(frame []byte) (Response, error) {
	resp, err := decodeResponse(frame)
	if err == nil && resp.Payload != nil {
		resp.Payload = append([]byte(nil), resp.Payload...)
	}
	return resp, err
}

// decodeResponse parses a frame with the payload aliasing frame's
// backing array — for callers that hand over frame ownership.
func decodeResponse(frame []byte) (Response, error) {
	if len(frame) > MaxFrame {
		return Response{}, ErrTooLarge
	}
	if len(frame) < RespHeaderLen {
		return Response{}, ErrShortFrame
	}
	h := frame[:RespHeaderLen]
	if got, want := binary.BigEndian.Uint32(h[16:20]), crc32.Checksum(h[:16], castagnoli); got != want {
		return Response{}, ErrBadChecksum
	}
	if h[0] != Version {
		return Response{}, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, h[0], Version)
	}
	resp := Response{
		Op:     Op(h[1]),
		Status: Status(h[2]),
		ID:     binary.BigEndian.Uint64(h[4:12]),
		Count:  binary.BigEndian.Uint32(h[12:16]),
	}
	if !resp.Op.valid() {
		return Response{}, fmt.Errorf("%w: %d", ErrBadOp, h[1])
	}
	if len(frame) > RespHeaderLen {
		resp.Payload = frame[RespHeaderLen:]
	}
	return resp, nil
}

// readFrame reads one length-prefixed frame body. The length prefix is
// validated against MaxFrame before any body allocation.
func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err // io.EOF passes through for clean connection close
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: frame length %d", ErrTooLarge, n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return frame, nil
}

// ReadFrame reads one length-prefixed frame body from r, returning the
// bytes after the prefix. A clean EOF before the first length byte is
// returned as io.EOF. Pair with DecodeRequestOwned to split frame
// arrival from decode — e.g. to timestamp the decode stage separately
// from network idle time.
func ReadFrame(r io.Reader) ([]byte, error) { return readFrame(r) }

// DecodeRequestOwned parses a request frame whose storage the caller
// hands over: the returned payload aliases frame (no copy). frame must
// not be reused afterwards.
func DecodeRequestOwned(frame []byte) (Request, error) {
	return decodeRequest(frame)
}

// ReadRequest reads and decodes one request frame from r. A clean EOF
// before the first length byte is returned as io.EOF. The returned
// payload owns the freshly-read frame's storage (no second copy).
func ReadRequest(r io.Reader) (Request, error) {
	frame, err := readFrame(r)
	if err != nil {
		return Request{}, err
	}
	return decodeRequest(frame)
}

// ReadResponse reads and decodes one response frame from r. The
// returned payload owns the freshly-read frame's storage.
func ReadResponse(r io.Reader) (Response, error) {
	frame, err := readFrame(r)
	if err != nil {
		return Response{}, err
	}
	return decodeResponse(frame)
}

// Stat is one named counter in a STAT response payload.
type Stat struct {
	Name  string
	Value int64
}

// maxStatName bounds a stat name on the wire.
const maxStatName = 256

// AppendStats encodes stats as a STAT payload: a u32 entry count, then
// per entry a u16 name length, the name bytes, and an i64 value.
func AppendStats(dst []byte, stats []Stat) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(stats)))
	for _, st := range stats {
		name := st.Name
		if len(name) > maxStatName {
			name = name[:maxStatName]
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(name)))
		dst = append(dst, name...)
		dst = binary.BigEndian.AppendUint64(dst, uint64(st.Value))
	}
	return dst
}

// DecodeStats parses a STAT payload. The entry count is validated
// against the payload size before any allocation.
func DecodeStats(b []byte) ([]Stat, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: stats payload too short", ErrProtocol)
	}
	n := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	// Each entry takes at least 2 (name length) + 8 (value) bytes.
	if uint64(n)*10 > uint64(len(b)) {
		return nil, fmt.Errorf("%w: stats count %d exceeds payload", ErrProtocol, n)
	}
	out := make([]Stat, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: truncated stat name length", ErrProtocol)
		}
		nameLen := int(binary.BigEndian.Uint16(b[:2]))
		b = b[2:]
		if nameLen > maxStatName {
			return nil, fmt.Errorf("%w: stat name length %d", ErrProtocol, nameLen)
		}
		if len(b) < nameLen+8 {
			return nil, fmt.Errorf("%w: truncated stat entry", ErrProtocol)
		}
		out = append(out, Stat{
			Name:  string(b[:nameLen]),
			Value: int64(binary.BigEndian.Uint64(b[nameLen : nameLen+8])),
		})
		b = b[nameLen+8:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after stats", ErrProtocol, len(b))
	}
	return out, nil
}
