package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

func TestRequestRoundtrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab, 0x5e}, 2048)
	reqs := []Request{
		{Op: OpWrite, Flags: FlagNoBatch, ID: 42, Volume: 7, LBA: 123456, Count: 1, Payload: payload},
		{Op: OpRead, ID: 1 << 60, Volume: 0, LBA: 0, Count: MaxBlocks},
		{Op: OpTrim, ID: 3, Volume: 2, LBA: 99, Count: 12},
		{Op: OpFlush, ID: 4, Volume: 1},
		{Op: OpStat, ID: 5},
	}
	var buf bytes.Buffer
	for i := range reqs {
		buf.Write(AppendRequest(nil, &reqs[i]))
	}
	for i := range reqs {
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		want := reqs[i]
		if got.Op != want.Op || got.Flags != want.Flags || got.ID != want.ID ||
			got.Volume != want.Volume || got.LBA != want.LBA || got.Count != want.Count ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("request %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadRequest(&buf); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestResponseRoundtrip(t *testing.T) {
	resps := []Response{
		{Op: OpRead, Status: StatusOK, ID: 9, Count: 2, Payload: []byte("datadata")},
		{Op: OpWrite, Status: StatusBackpressure, ID: 10, Payload: []byte("volume 3 inflight limit")},
		{Op: OpStat, Status: StatusOK, ID: 11, Payload: AppendStats(nil, []Stat{{Name: "x", Value: -7}})},
		{Op: OpFlush, Status: StatusShuttingDown, ID: 12},
	}
	var buf bytes.Buffer
	for i := range resps {
		buf.Write(AppendResponse(nil, &resps[i]))
	}
	for i := range resps {
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		want := resps[i]
		if got.Op != want.Op || got.Status != want.Status || got.ID != want.ID ||
			got.Count != want.Count || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("response %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestStatsRoundtrip(t *testing.T) {
	stats := []Stat{
		{Name: "store_user_blocks", Value: 123},
		{Name: "srv_backpressure", Value: 0},
		{Name: "neg", Value: -42},
	}
	got, err := DecodeStats(AppendStats(nil, stats))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(stats) {
		t.Fatalf("got %d stats, want %d", len(got), len(stats))
	}
	for i := range stats {
		if got[i] != stats[i] {
			t.Fatalf("stat %d: got %+v, want %+v", i, got[i], stats[i])
		}
	}
}

// corrupt returns frame with one byte flipped at off.
func corrupt(frame []byte, off int) []byte {
	out := append([]byte(nil), frame...)
	out[off] ^= 0x40
	return out
}

func TestHostileRequestFrames(t *testing.T) {
	good := AppendRequest(nil, &Request{Op: OpWrite, ID: 1, Volume: 2, LBA: 3, Count: 1, Payload: make([]byte, 64)})
	body := good[4:] // frame without length prefix

	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrShortFrame},
		{"truncated header", body[:ReqHeaderLen-5], ErrShortFrame},
		{"bad version", corrupt(body, 0), ErrBadChecksum}, // checksum covers the version byte
		{"bad opcode", corrupt(body, 1), ErrBadChecksum},
		{"corrupt checksum", corrupt(body, ReqHeaderLen-1), ErrBadChecksum},
		{"corrupt id", corrupt(body, 6), ErrBadChecksum},
		{"oversize", make([]byte, MaxFrame+1), ErrTooLarge},
	}
	for _, tc := range cases {
		if _, err := DecodeRequest(tc.frame); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// A re-checksummed bad version / opcode / count must fail on its own check.
	reseal := func(mutate func([]byte)) []byte {
		f := append([]byte(nil), body...)
		mutate(f)
		binary.BigEndian.PutUint32(f[28:32], crc32.Checksum(f[:28], castagnoli))
		return f
	}
	if _, err := DecodeRequest(reseal(func(f []byte) { f[0] = 99 })); !errors.Is(err, ErrBadVersion) {
		t.Errorf("resealed bad version: got %v", err)
	}
	if _, err := DecodeRequest(reseal(func(f []byte) { f[1] = 0 })); !errors.Is(err, ErrBadOp) {
		t.Errorf("resealed bad opcode: got %v", err)
	}
	if _, err := DecodeRequest(reseal(func(f []byte) {
		binary.BigEndian.PutUint32(f[24:28], MaxBlocks+1)
	})); !errors.Is(err, ErrBadCount) {
		t.Errorf("resealed bad count: got %v", err)
	}
}

func TestHostileLengthPrefix(t *testing.T) {
	// An oversize length prefix must be rejected before allocation.
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, uint32(1<<31))
	if _, err := ReadRequest(&buf); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize prefix: got %v, want ErrTooLarge", err)
	}
	// A truthful prefix with a truncated body is an unexpected EOF.
	buf.Reset()
	binary.Write(&buf, binary.BigEndian, uint32(ReqHeaderLen))
	buf.Write(make([]byte, 4))
	if _, err := ReadRequest(&buf); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestHostileStats(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"short", []byte{1, 2}},
		{"count exceeds payload", binary.BigEndian.AppendUint32(nil, 1<<30)},
		{"truncated entry", append(binary.BigEndian.AppendUint32(nil, 1), 0, 200)},
		{"trailing bytes", append(AppendStats(nil, []Stat{{Name: "a", Value: 1}}), 0xff)},
	}
	for _, tc := range cases {
		if _, err := DecodeStats(tc.b); !errors.Is(err, ErrProtocol) {
			t.Errorf("%s: got %v, want ErrProtocol", tc.name, err)
		}
	}
}
