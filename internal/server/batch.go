package server

import (
	"runtime"
	"time"

	"adapt/internal/prototype"
	"adapt/internal/telemetry"
)

// batchItem is one WRITE waiting in a volume's group commit.
type batchItem struct {
	lba     int64 // volume-relative
	blocks  int
	payload []byte
	sp      *telemetry.Span // trace span, nil when tracing is off
	done    func(err error)
}

// batcher coalesces one volume's small writes into chunk-aligned group
// commits: writes accumulate until they fill a whole array chunk (or
// more) or until the oldest has waited BatchTimeout — the serving-layer
// twin of the paper's SLA-driven padding deadline. A full batch lands
// in the store back-to-back under a single engine lock acquisition and
// timestamp, so the open chunk fills before the store's own SLA window
// can force zero padding; a timed-out partial batch commits small and
// leaves padding to the store, exactly as an unfilled chunk would on
// the array.
type batcher struct {
	vol       *volume
	eng       *prototype.Engine
	srv       *Server
	timeout   time.Duration
	maxBlocks int

	ch      chan batchItem
	flushCh chan chan struct{}
}

func newBatcher(srv *Server, vol *volume, timeout time.Duration, maxBlocks, depth int) *batcher {
	b := &batcher{
		vol:       vol,
		eng:       srv.eng,
		srv:       srv,
		timeout:   timeout,
		maxBlocks: maxBlocks,
		ch:        make(chan batchItem, depth),
		flushCh:   make(chan chan struct{}),
	}
	srv.batWG.Add(1)
	go func() {
		defer srv.batWG.Done()
		b.run()
	}()
	return b
}

// enqueue hands a write to the batcher. The item's done callback fires
// exactly once, after the group commit that includes it.
func (b *batcher) enqueue(it batchItem) { b.ch <- it }

// flush commits everything pending and returns once it is applied.
func (b *batcher) flush() {
	ack := make(chan struct{})
	b.flushCh <- ack
	<-ack
}

// quiesceYields bounds the yield-poll window after the submission
// stream goes quiet: once this many consecutive scheduler yields see
// no new write, the group commits early rather than waiting out the
// full deadline. Kernel timers are far too coarse for sub-millisecond
// group-commit deadlines (observed granularity >1 ms), so the batcher
// never parks on a timer in the hot path; in a closed-loop pipeline a
// quiet channel means every in-flight write has already joined the
// batch and waiting longer buys nothing.
const quiesceYields = 16

func (b *batcher) run() {
	var pending []batchItem
	var blocks int

	apply := func() {
		if len(pending) == 0 {
			return
		}
		b.commit(pending, blocks)
		pending = pending[:0]
		blocks = 0
	}

	// drainCh closes when the server shuts down; from then on every
	// write commits immediately so no ack waits out the group-commit
	// deadline during drain.
	drainCh := b.srv.drainCh
	immediate := false
	for {
		select {
		case it, ok := <-b.ch:
			if !ok {
				return // channel empty: nothing pending to drain
			}
			pending = append(pending, it)
			blocks += it.blocks
			if !immediate {
				closed := b.gather(&pending, &blocks)
				apply()
				if closed {
					return
				}
			} else {
				apply()
			}
		case ack := <-b.flushCh:
			// The barrier must cover writes already sitting in b.ch: the
			// conn reader enqueues a write before it can dispatch the
			// tenant's following FLUSH, but this select has no ordering
			// between the two channels.
			chClosed := b.drainQueued(&pending, &blocks)
			apply()
			close(ack)
			if chClosed {
				return
			}
		case <-drainCh:
			drainCh = nil // fire once; the select case disables itself
			immediate = true
		}
	}
}

// drainQueued moves every already-buffered write into the open batch
// without blocking. Returns true when b.ch closed.
func (b *batcher) drainQueued(pending *[]batchItem, blocks *int) (closed bool) {
	for {
		select {
		case it, ok := <-b.ch:
			if !ok {
				return true
			}
			*pending = append(*pending, it)
			*blocks += it.blocks
		default:
			return false
		}
	}
}

// gather grows the open batch until it fills maxBlocks, the submission
// stream quiesces, or the group-commit deadline passes — whichever
// comes first. Returns true when b.ch closed mid-gather.
func (b *batcher) gather(pending *[]batchItem, blocks *int) (closed bool) {
	deadline := time.Now().Add(b.timeout)
	idle := 0
	for *blocks < b.maxBlocks && idle < quiesceYields {
		select {
		case it, ok := <-b.ch:
			if !ok {
				return true
			}
			*pending = append(*pending, it)
			*blocks += it.blocks
			idle = 0
		default:
			if !time.Now().Before(deadline) {
				return false
			}
			runtime.Gosched()
			idle++
		}
	}
	return false
}

// commit applies one group commit: payload bytes land in the volume's
// data plane, then every write hits the store under one engine lock
// hold, then every waiter is acked.
func (b *batcher) commit(items []batchItem, blocks int) {
	ops := make([]prototype.BatchWrite, len(items))
	traced := false
	for i := range items {
		b.vol.writeData(items[i].lba, items[i].payload)
		ops[i] = prototype.BatchWrite{LBA: b.vol.base + items[i].lba, Blocks: items[i].blocks}
		traced = traced || items[i].sp != nil
	}
	var err error
	if traced {
		// The gather window ends here; the whole group commit shares one
		// engine timing, stamped onto every member's span.
		gatherEnd := b.eng.Now()
		for i := range items {
			items[i].sp.MarkAt(telemetry.StageBatch, gatherEnd)
		}
		var t prototype.OpTiming
		t, err = b.eng.WriteBatchTimed(ops)
		for i := range items {
			markEngine(items[i].sp, t)
		}
	} else {
		err = b.eng.WriteBatch(ops)
	}
	b.vol.batches.Add(1)
	b.vol.batchedWrites.Add(int64(len(items)))
	b.srv.met.batches.Inc()
	b.srv.met.batchedWrites.Add(int64(len(items)))
	b.srv.met.batchFill.Observe(int64(blocks))
	for i := range items {
		items[i].done(err)
	}
}
