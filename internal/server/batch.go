package server

import (
	"runtime"
	"sync/atomic"
	"time"

	"adapt/internal/prototype"
	"adapt/internal/telemetry"
)

// commitReq is one WRITE waiting in a shard's group commit: a node of
// the committer's lock-free writer list. The done callback fires
// exactly once, after the group commit that includes the write.
type commitReq struct {
	next    *commitReq
	vol     *volume
	lba     int64 // volume-relative
	blocks  int
	payload []byte
	sp      *telemetry.Span // trace span, nil when tracing is off
	done    func(err error)
}

// shardCommitter coalesces writes bound for one engine shard into
// chunk-aligned group commits with a lock-free leader/follower
// protocol: writers CAS their request onto the writer list and return;
// the writer whose push found the list empty becomes the leader,
// gathers until the batch fills a chunk (or the deadline/quiesce
// heuristics fire), claims the whole list with one atomic swap, and
// commits it under a single engine lock acquisition. Followers never
// touch the engine lock — they park in their connection's response
// path until the leader's done callback acks them.
//
// The invariant is that a non-empty list always has exactly one
// leader responsible for it: a pusher that finds the list empty spawns
// the leader, and the leader's claiming swap empties the list, so the
// next pusher spawns the next leader. Two leaders can overlap (one
// committing its claimed list while the next gathers), but they own
// disjoint requests and the shard's engine lock serializes the actual
// commits.
//
// Group sizing mirrors the paper's SLA-driven padding deadline, as the
// channel batcher before it did: a full chunk commits immediately, a
// partial batch commits small when the submission stream quiesces or
// the deadline passes, and the store pads what never fills.
type shardCommitter struct {
	srv       *Server
	shard     int
	timeout   time.Duration
	maxBlocks int

	// head is the LIFO writer list. pendingBlocks tracks blocks pushed
	// but not yet committed, for the leader's fill check; enq/committed
	// count requests for the FLUSH barrier; flushGen kicks a gathering
	// leader so a FLUSH never waits out a long deadline.
	head          atomic.Pointer[commitReq]
	pendingBlocks atomic.Int64
	enq           atomic.Int64
	committed     atomic.Int64
	flushGen      atomic.Int64
}

func newShardCommitter(srv *Server, shard int, timeout time.Duration, maxBlocks int) *shardCommitter {
	return &shardCommitter{srv: srv, shard: shard, timeout: timeout, maxBlocks: maxBlocks}
}

// enqueue pushes a write onto the writer list and spawns the leader if
// the list was empty. Lock-free: the only synchronization is the CAS.
func (c *shardCommitter) enqueue(r *commitReq) {
	c.enq.Add(1)
	c.pendingBlocks.Add(int64(r.blocks))
	for {
		old := c.head.Load()
		r.next = old
		if c.head.CompareAndSwap(old, r) {
			if old == nil {
				c.srv.batWG.Add(1)
				go c.lead()
			}
			return
		}
	}
}

// quiesceYields bounds the yield-poll window after the submission
// stream goes quiet: once this many consecutive scheduler yields see
// no new write, the group commits early rather than waiting out the
// full deadline. Kernel timers are far too coarse for sub-millisecond
// group-commit deadlines (observed granularity >1 ms), so the leader
// never parks on a timer; in a closed-loop pipeline a quiet list means
// every in-flight write has already joined and waiting buys nothing.
const quiesceYields = 16

// lead runs one leader turn: gather, claim, commit.
func (c *shardCommitter) lead() {
	defer c.srv.batWG.Done()
	c.gather()
	c.commitList(c.head.Swap(nil))
}

// gather waits for the batch to fill a chunk, bounded by the
// group-commit deadline, a quiesced submission stream, a FLUSH kick,
// or server drain — whichever comes first.
func (c *shardCommitter) gather() {
	if c.srv.draining.Load() {
		return
	}
	deadline := time.Now().Add(c.timeout)
	gen := c.flushGen.Load()
	seen := c.enq.Load()
	for idle := 0; idle < quiesceYields; {
		if c.pendingBlocks.Load() >= int64(c.maxBlocks) {
			return
		}
		if c.flushGen.Load() != gen || c.srv.draining.Load() {
			return
		}
		if !time.Now().Before(deadline) {
			return
		}
		runtime.Gosched()
		if cur := c.enq.Load(); cur != seen {
			seen, idle = cur, 0
		} else {
			idle++
		}
	}
}

// commitList applies one claimed writer list as a single group commit:
// payload bytes land in each volume's data plane, every write hits the
// engine back-to-back under one lock acquisition and timestamp, then
// every follower is acked.
func (c *shardCommitter) commitList(head *commitReq) {
	if head == nil {
		return
	}
	n := 0
	for r := head; r != nil; r = r.next {
		n++
	}
	// The CAS list is LIFO; reverse to arrival order so the commit
	// replays writes the way the wire delivered them.
	items := make([]*commitReq, n)
	i := n
	for r := head; r != nil; r = r.next {
		i--
		items[i] = r
	}
	ops := make([]prototype.BatchWrite, n)
	blocks := 0
	traced := false
	var werr error
	for i, r := range items {
		if e := r.vol.writeData(r.lba, r.payload); e != nil && werr == nil {
			werr = e
		}
		ops[i] = prototype.BatchWrite{LBA: r.vol.base + r.lba, Blocks: r.blocks}
		blocks += r.blocks
		traced = traced || r.sp != nil
	}
	var err error
	if traced {
		// The gather window ends here; the whole group commit shares one
		// engine timing, stamped onto every member's span.
		gatherEnd := c.srv.eng.Now()
		for _, r := range items {
			r.sp.MarkAt(telemetry.StageBatch, gatherEnd)
		}
		var t prototype.OpTiming
		t, err = c.srv.eng.WriteBatchTimed(ops)
		for _, r := range items {
			markEngine(r.sp, t)
		}
	} else {
		err = c.srv.eng.WriteBatch(ops)
	}
	// One group commit can carry several volumes' writes; each volume's
	// batch counter advances once per commit it joined, deduped by
	// stamping the commit sequence.
	seq := c.srv.commitSeq.Add(1)
	for _, r := range items {
		if r.vol.batchMark.Swap(seq) != seq {
			r.vol.batches.Add(1)
		}
		r.vol.batchedWrites.Add(1)
	}
	c.srv.met.batches.Inc()
	c.srv.met.batchedWrites.Add(int64(n))
	c.srv.met.batchFill.Observe(int64(blocks))
	if err == nil {
		err = werr
	}
	if err == nil {
		// Durability point of the group commit: each member volume's
		// backing file syncs once (syncData dedupes by dirty mark)
		// before any follower is acked.
		for _, r := range items {
			if e := r.vol.syncData(); e != nil {
				err = e
				break
			}
		}
	}
	for _, r := range items {
		r.done(err)
	}
	c.pendingBlocks.Add(-int64(blocks))
	c.committed.Add(int64(n))
}

// flush is the FLUSH barrier: every write enqueued before the call is
// committed when it returns. It kicks any gathering leader (so the
// barrier never waits out a group-commit deadline) and then spins on
// the committed counter; progress is guaranteed because a non-empty
// list always has a leader and a counted-but-unpushed write's own
// goroutine completes the push before parking.
func (c *shardCommitter) flush() {
	c.flushGen.Add(1)
	target := c.enq.Load()
	for c.committed.Load() < target {
		runtime.Gosched()
	}
}
