package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// volManifest pins the volume carve-up of a data directory. The server
// splits the engine's LBA space by Config.Volumes at boot, so reusing
// a directory under a different geometry would silently remap every
// tenant's blocks; the manifest turns that into a hard error.
type volManifest struct {
	Volumes    int   `json:"volumes"`
	VolBlocks  int64 `json:"vol_blocks"`
	BlockBytes int   `json:"block_bytes"`
}

const manifestName = "manifest.json"

// openVolumeFiles attaches a vol-N.dat backing file to every volume,
// creating the directory and manifest on first boot and verifying the
// manifest on reuse. On any error every file opened so far is closed.
func (s *Server) openVolumeFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("server: data dir: %w", err)
	}
	want := volManifest{
		Volumes:    len(s.vols),
		VolBlocks:  s.vols[0].blocks,
		BlockBytes: s.vols[0].blockBytes,
	}
	mpath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(mpath)
	switch {
	case err == nil:
		var got volManifest
		if jerr := json.Unmarshal(raw, &got); jerr != nil {
			return fmt.Errorf("server: corrupt %s: %w", mpath, jerr)
		}
		if got != want {
			return fmt.Errorf("server: %s geometry %+v does not match configured %+v", mpath, got, want)
		}
	case errors.Is(err, os.ErrNotExist):
		if werr := writeManifest(mpath, want); werr != nil {
			return werr
		}
	default:
		return fmt.Errorf("server: read %s: %w", mpath, err)
	}
	for _, v := range s.vols {
		f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("vol-%d.dat", v.id)), os.O_RDWR|os.O_CREATE, 0o644)
		if err == nil {
			err = v.attachFile(f)
			if err != nil {
				f.Close()
			}
		}
		if err != nil {
			s.closeVolumeFiles()
			return err
		}
	}
	return nil
}

// writeManifest creates the manifest atomically (tmp + rename + dir
// sync), so a crash mid-boot leaves either no manifest or a whole one.
func writeManifest(path string, m volManifest) error {
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("server: write manifest: %w", err)
	}
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: write manifest: %w", err)
	}
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// closeVolumeFiles syncs and closes every volume backing file,
// returning the first error.
func (s *Server) closeVolumeFiles() error {
	var first error
	for _, v := range s.vols {
		if err := v.closeFile(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
