package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/prototype"
	"adapt/internal/server/wire"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// testEngineTele is testEngine plus a dedicated telemetry set, so GC
// interference intervals and trace histograms are live.
func testEngineTele(t *testing.T, userBlocks int64) (*prototype.Engine, *telemetry.Set) {
	t.Helper()
	cfg := lss.Config{
		BlockSize:     testBlockBytes,
		ChunkBlocks:   8,
		SegmentChunks: 4,
		UserBlocks:    userBlocks,
		OverProvision: 0.25,
	}
	pol, err := placement.New(placement.NameSepGC, placement.Params{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.ChunkBlocks * cfg.SegmentChunks,
		ChunkBlocks:   cfg.ChunkBlocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := telemetry.New(telemetry.Options{})
	e, err := prototype.NewEngine(prototype.EngineConfig{
		Store:       cfg,
		Policy:      pol,
		ServiceTime: time.Microsecond,
		Telemetry:   ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, ts
}

// traceServer boots a traced server over loopback; every client request
// is forced into the exemplar ring via FlagTrace.
func traceServer(t *testing.T, batch bool) (*Server, *Client, func()) {
	t.Helper()
	eng, ts := testEngineTele(t, 4096)
	srv, err := New(Config{
		Engine:       eng,
		Volumes:      2,
		Batch:        batch,
		BatchTimeout: time.Millisecond,
		Telemetry:    ts,
		Trace:        TraceConfig{Enabled: true, Threshold: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := serve(t, srv)
	c := dial(t, addr, 1)
	c.SetTraceEvery(1)
	return srv, c, func() {
		stop()
		eng.Close()
	}
}

// waitExemplars polls until at least n exemplars are visible (span
// finalization happens after the response hits the socket, so the
// client can observe a completion slightly before the span publishes).
func waitExemplars(t *testing.T, srv *Server, n int) []Exemplar {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		exs := srv.TraceSnapshot(0, 1000)
		if len(exs) >= n {
			return exs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d exemplars, have %d", n, len(exs))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTraceEndToEnd(t *testing.T) {
	srv, c, stop := traceServer(t, true)
	defer stop()

	want := pattern(1, 3, 1)
	if err := c.Write(3, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got, err := c.Read(3, 1); err != nil || string(got) != string(want) {
		t.Fatalf("read: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	exs := waitExemplars(t, srv, 3)
	var sawWrite, sawRead, sawFlush bool
	for _, ex := range exs {
		sp := ex.Span
		if !sp.Forced {
			t.Errorf("span %d not marked forced", sp.ID)
		}
		if wire.Status(sp.Status) != wire.StatusOK {
			t.Errorf("span %d status %v", sp.ID, wire.Status(sp.Status))
		}
		if sp.TotalNS() <= 0 {
			t.Errorf("span %d total %d, want > 0", sp.ID, sp.TotalNS())
		}
		if sp.Stamp[telemetry.StageRespond] == 0 {
			t.Errorf("span %d missing respond stamp", sp.ID)
		}
		switch wire.Op(sp.Op) {
		case wire.OpWrite:
			sawWrite = true
			if sp.Volume != 1 || sp.LBA != 3 || sp.Count != 1 {
				t.Errorf("write span fields: %+v", sp)
			}
			// A batched write passes through gather and the timed engine
			// commit.
			if sp.Stamp[telemetry.StageBatch] == 0 || sp.Stamp[telemetry.StageCommit] == 0 {
				t.Errorf("write span missing batch/commit stamps: %v", sp.Stamp)
			}
		case wire.OpRead:
			sawRead = true
			if sp.Stamp[telemetry.StageCommit] == 0 {
				t.Errorf("read span missing commit stamp: %v", sp.Stamp)
			}
		case wire.OpFlush:
			sawFlush = true
		}
		if ex.Cause == "" {
			t.Errorf("span %d unattributed", sp.ID)
		}
	}
	if !sawWrite || !sawRead || !sawFlush {
		t.Errorf("ops seen: write=%v read=%v flush=%v", sawWrite, sawRead, sawFlush)
	}

	// The STAT table carries per-stage percentiles once spans finish.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["trace_respond_count"] < 3 {
		t.Errorf("trace_respond_count = %d, want >= 3", st["trace_respond_count"])
	}
	if st["trace_respond_p50_ns"] <= 0 {
		t.Errorf("trace_respond_p50_ns = %d, want > 0", st["trace_respond_p50_ns"])
	}
}

func TestTraceSnapshotDisabled(t *testing.T) {
	eng := testEngine(t, 4096, false, false)
	defer eng.Close()
	srv, err := New(Config{Engine: eng, Volumes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := srv.TraceSnapshot(0, 10); got != nil {
		t.Errorf("TraceSnapshot on untraced server = %v, want nil", got)
	}
}

func TestAttribute(t *testing.T) {
	gc := telemetry.Interval{Kind: telemetry.IntervalGC, ID: 42, Column: -1, Start: 100, End: 200}
	deg := telemetry.Interval{Kind: telemetry.IntervalDegraded, ID: 7, Column: 2, Start: 300, End: 400}
	ivs := []telemetry.Interval{gc, deg}

	span := func(start, end int64, stamps map[telemetry.Stage]int64) *telemetry.Span {
		sp := &telemetry.Span{Start: sim.Time(start)}
		for st, v := range stamps {
			sp.Stamp[st] = sim.Time(v)
		}
		sp.Stamp[telemetry.StageRespond] = sim.Time(end)
		return sp
	}

	// Backpressure beats everything.
	bp := span(100, 200, nil)
	bp.Status = uint8(wire.StatusBackpressure)
	if cause, _, _, _, _ := attribute(bp, ivs); cause != "backpressure" {
		t.Errorf("backpressure cause = %q", cause)
	}

	// GC overlap wins over a degraded window even when the degraded
	// overlap is larger.
	both := span(150, 400, nil)
	cause, id, _, _, ov := attribute(both, ivs)
	if cause != "gc" || id != 42 || ov != 50 {
		t.Errorf("gc-overlap: cause=%q id=%d ov=%d, want gc/42/50", cause, id, ov)
	}

	// Degraded-only overlap reports the interval's kind and column.
	donly := span(350, 450, nil)
	cause, id, col, _, _ := attribute(donly, ivs)
	if cause != "degraded" || id != 7 || col != 2 {
		t.Errorf("degraded: cause=%q id=%d col=%d", cause, id, col)
	}

	// No interference: the dominant stage is blamed.
	cases := []struct {
		stage telemetry.Stage
		want  string
	}{
		{telemetry.StageBatch, "batch-deadline"},
		{telemetry.StageAdmission, "admission"},
		{telemetry.StageLockWait, "engine-lock"},
		{telemetry.StageDecode, "wire"},
		{telemetry.StageCommit, "engine"},
	}
	for _, cse := range cases {
		sp := span(1000, 1110, map[telemetry.Stage]int64{cse.stage: 1100})
		if cause, _, _, _, _ := attribute(sp, nil); cause != cse.want {
			t.Errorf("dominant %v: cause = %q, want %q", cse.stage, cause, cse.want)
		}
	}
}

func TestTraceHandler(t *testing.T) {
	srv, c, stop := traceServer(t, false)
	defer stop()
	if err := c.Write(9, pattern(1, 9, 1)); err != nil {
		t.Fatal(err)
	}
	waitExemplars(t, srv, 1)
	h := srv.TraceHandler()

	do := func(method, target string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, target, nil))
		return rec
	}

	if rec := do(http.MethodPost, "/debug/trace"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST: status %d, want 405", rec.Code)
	}
	for _, bad := range []string{"/debug/trace?k=0", "/debug/trace?k=x", "/debug/trace?min_ns=-1", "/debug/trace?min_ns=x"} {
		if rec := do(http.MethodGet, bad); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", bad, rec.Code)
		}
	}

	rec := do(http.MethodGet, "/debug/trace?k=8")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty trace dump")
	}
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		for _, key := range []string{"id", "op", "status", "total_ns", "cause", "respond_ns"} {
			if _, ok := obj[key]; !ok {
				t.Errorf("line missing %q: %s", key, line)
			}
		}
	}

	// An over-the-top latency floor filters everything out.
	rec = do(http.MethodGet, "/debug/trace?min_ns=999999999999")
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "" {
		t.Errorf("high min_ns: status %d body %q", rec.Code, rec.Body.String())
	}

	// A server without tracing 404s.
	eng := testEngine(t, 4096, false, false)
	defer eng.Close()
	plain, err := New(Config{Engine: eng, Volumes: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	plain.TraceHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("untraced handler: status %d, want 404", rec.Code)
	}
}
