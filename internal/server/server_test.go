package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adapt/internal/fault"
	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/prototype"
)

// testBlockBytes keeps the volume data planes and the verification
// mirror tiny; the mirror needs BlockSize >= 17.
const testBlockBytes = 64

func testEngine(t *testing.T, userBlocks int64, verify, mirror bool) *prototype.Engine {
	t.Helper()
	cfg := lss.Config{
		BlockSize:     testBlockBytes,
		ChunkBlocks:   8,
		SegmentChunks: 4,
		UserBlocks:    userBlocks,
		OverProvision: 0.25,
	}
	pol, err := placement.New(placement.NameSepGC, placement.Params{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.ChunkBlocks * cfg.SegmentChunks,
		ChunkBlocks:   cfg.ChunkBlocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := prototype.NewEngine(prototype.EngineConfig{
		Store:        cfg,
		Policy:       pol,
		ServiceTime:  time.Microsecond,
		Verify:       verify,
		VerifyMirror: mirror,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// serve starts srv on a loopback listener and returns its address plus
// a stop function that shuts the server down and waits for Serve.
func serve(t *testing.T, srv *Server) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	return ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-served; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

func dial(t *testing.T, addr string, volume uint32) *Client {
	t.Helper()
	c, err := Dial(addr, volume)
	if err != nil {
		t.Fatal(err)
	}
	c.SetBlockBytes(testBlockBytes)
	t.Cleanup(func() { c.Close() })
	return c
}

// pattern fills one block deterministically from (volume, lba, version)
// so read-back verification needs no shared state.
func pattern(volume uint32, lba int64, version byte) []byte {
	b := make([]byte, testBlockBytes)
	for i := range b {
		b[i] = byte(int64(volume)*31+lba*7+int64(version)*13+int64(i)) | 1
	}
	return b
}

func TestServerBasicOps(t *testing.T) {
	eng := testEngine(t, 4096, false, false)
	defer eng.Close()
	srv, err := New(Config{Engine: eng, Volumes: 4, Batch: true, BatchTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := serve(t, srv)
	defer stop()
	c := dial(t, addr, 2)

	want := pattern(2, 17, 1)
	if err := c.Write(17, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := c.Read(17, 1)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read-back mismatch:\n got %x\nwant %x", got, want)
	}
	if err := c.WriteSync(17, pattern(2, 17, 2)); err != nil {
		t.Fatalf("unbatched write: %v", err)
	}
	if err := c.Trim(17, 1); err != nil {
		t.Fatalf("trim: %v", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats["geom_volumes"] != 4 || stats["geom_block_bytes"] != testBlockBytes {
		t.Fatalf("bad geometry in stats: %v", stats)
	}
	if stats["vol2_writes"] != 2 || stats["vol2_reads"] != 1 || stats["vol2_trims"] != 1 {
		t.Fatalf("bad vol2 counters: %v", stats)
	}

	// Error mapping: unknown volume, out-of-range LBA, short payload.
	bad := dial(t, addr, 99)
	if err := bad.Write(0, want); !errors.Is(err, ErrBadVolume) {
		t.Fatalf("bad volume: got %v", err)
	}
	if _, err := c.Read(1<<40, 1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range: got %v", err)
	}
	if err := c.Write(0, want[:testBlockBytes/2]); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("short payload: got %v", err)
	}
}

func TestServerBackpressure(t *testing.T) {
	eng := testEngine(t, 4096, false, false)
	defer eng.Close()
	srv, err := New(Config{Engine: eng, Volumes: 1, MaxInflight: 1, Batch: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := serve(t, srv)
	defer stop()
	c := dial(t, addr, 0)

	// Occupy the volume's only inflight slot, as a stalled op would.
	if !srv.vols[0].admit() {
		t.Fatal("slot should be free")
	}
	if err := c.Write(1, pattern(0, 1, 1)); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("write with full semaphore: got %v, want ErrBackpressure", err)
	}
	srv.vols[0].release()
	if err := c.Write(1, pattern(0, 1, 2)); err != nil {
		t.Fatalf("write after release: %v", err)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["srv_backpressure"] != 1 || stats["vol0_rejected"] != 1 {
		t.Fatalf("backpressure not counted: %v", stats)
	}
}

// TestServerShutdownAcksPending verifies graceful drain: every write
// in flight when Shutdown starts is committed and acked (zero lost
// acks), and late requests get a clean refusal instead of a hang.
func TestServerShutdownAcksPending(t *testing.T) {
	eng := testEngine(t, 4096, false, false)
	defer eng.Close()
	srv, err := New(Config{Engine: eng, Volumes: 1, Batch: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := serve(t, srv)
	c := dial(t, addr, 0)

	const parked = 4
	var wg sync.WaitGroup
	errs := make([]error, parked)
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Write(int64(i), pattern(0, int64(i), 1))
		}(i)
	}
	// Wait until all four occupy the batcher, then drain.
	deadline := time.Now().Add(2 * time.Second)
	for {
		stats, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stats["vol0_writes"] == parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes never reached the batcher")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("parked write %d lost its ack: %v", i, err)
		}
	}
	st := eng.Stats()
	if st.UserBlocks != parked {
		t.Fatalf("store saw %d blocks, want %d", st.UserBlocks, parked)
	}
	// A late client sees a clean refusal, not a hang.
	if err := c.Write(9, pattern(0, 9, 2)); err == nil {
		t.Fatal("write after shutdown should fail")
	}
}

// testShardedEngine builds a sharded verification engine over the same
// tiny geometry testEngine uses.
func testShardedEngine(t *testing.T, userBlocks int64, shards int, verify, mirror bool) *prototype.Sharded {
	t.Helper()
	cfg := lss.Config{
		BlockSize:     testBlockBytes,
		ChunkBlocks:   8,
		SegmentChunks: 4,
		UserBlocks:    userBlocks,
		OverProvision: 0.25,
	}
	e, err := prototype.NewSharded(prototype.ShardedConfig{
		Engine: prototype.EngineConfig{
			Store:        cfg,
			ServiceTime:  time.Microsecond,
			Verify:       verify,
			VerifyMirror: mirror,
		},
		Shards: shards,
		PolicyFactory: func(shard int, scfg lss.Config) (lss.Policy, error) {
			return placement.New(placement.NameSepGC, placement.Params{
				UserBlocks:    scfg.UserBlocks,
				SegmentBlocks: scfg.SegmentBlocks(),
				ChunkBlocks:   scfg.ChunkBlocks,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestServerE2EFaultRebuild is the end-to-end satellite: four tenants
// hammer a loopback server concurrently while a fault.Fixed schedule
// fails an array column mid-test and an online rebuild runs to
// completion under traffic. Every request is acked exactly once
// (retried on backpressure), read-backs verify payload bytes against
// per-worker expectations, and engine Close replays the checker
// oracle's full cross-check plus RAID parity and byte read-back.
func TestServerE2EFaultRebuild(t *testing.T) {
	runE2EFaultRebuild(t, testEngine(t, 8192, true, true))
}

// TestServerE2EShardedFaultRebuild runs the same mid-traffic fault and
// online rebuild against a 4-shard engine: the column failure must
// degrade every shard, the rebuild must bring them all back, and the
// per-shard oracles replay their full cross-checks at Close.
func TestServerE2EShardedFaultRebuild(t *testing.T) {
	runE2EFaultRebuild(t, testShardedEngine(t, 8192, 4, true, true))
}

func runE2EFaultRebuild(t *testing.T, eng prototype.Ingest) {
	srv, err := New(Config{
		Engine: eng, Volumes: 4, MaxInflight: 32,
		Batch: true, BatchTimeout: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, stop := serve(t, srv)

	const (
		tenants       = 4
		workersPerTen = 4
		opsPerWorker  = 300
	)
	var (
		opCount  atomic.Int64 // global acked-write counter, drives the fault plan
		acks     atomic.Int64
		verified atomic.Int64
	)
	plan := fault.Fixed(1, tenants*workersPerTen*opsPerWorker/2)

	// Fault injector: polls the op counter, fires the planned failure,
	// then rebuilds online while traffic continues.
	faultDone := make(chan struct{})
	go func() {
		defer close(faultDone)
		for {
			ev, ok := plan.Next()
			if !ok {
				return
			}
			if _, fired := plan.Fire(opCount.Load()); !fired {
				time.Sleep(time.Millisecond)
				continue
			}
			if err := eng.FailColumn(ev.Device); err != nil {
				t.Errorf("fail column: %v", err)
				return
			}
			if !eng.Degraded() {
				t.Error("engine not degraded after FailColumn")
			}
			for {
				_, done, err := eng.RebuildStep(32)
				if err != nil {
					t.Errorf("rebuild: %v", err)
					return
				}
				if done {
					return
				}
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for ten := 0; ten < tenants; ten++ {
		c := dial(t, addr, uint32(ten))
		span := srv.VolumeBlocks() / workersPerTen
		for w := 0; w < workersPerTen; w++ {
			wg.Add(1)
			go func(ten uint32, c *Client, base, span int64) {
				defer wg.Done()
				// written tracks this worker's own lba range; workers
				// never overlap, so acked writes must read back exactly.
				written := make(map[int64]byte)
				bo := fault.Backoff{}
				for i := 0; i < opsPerWorker; i++ {
					lba := base + int64(i*13)%span
					ver := byte(i)
					for attempt := 0; ; attempt++ {
						err := c.Write(lba, pattern(ten, lba, ver))
						if err == nil {
							break
						}
						if errors.Is(err, ErrBackpressure) {
							time.Sleep(bo.Delay(attempt))
							continue
						}
						t.Errorf("tenant %d write: %v", ten, err)
						return
					}
					written[lba] = ver
					opCount.Add(1)
					acks.Add(1)
					if i%5 == 0 {
						got, err := c.Read(lba, 1)
						if err != nil {
							t.Errorf("tenant %d read: %v", ten, err)
							return
						}
						if !bytes.Equal(got, pattern(ten, lba, written[lba])) {
							t.Errorf("tenant %d lba %d: read-back mismatch", ten, lba)
							return
						}
						verified.Add(1)
					}
					if i%97 == 42 {
						if err := c.Flush(); err != nil {
							t.Errorf("tenant %d flush: %v", ten, err)
							return
						}
					}
					if i%61 == 13 {
						drop := base + int64((i*7)%int(span))
						if err := c.Trim(drop, 1); err != nil {
							t.Errorf("tenant %d trim: %v", ten, err)
							return
						}
						delete(written, drop)
					}
				}
				// Final sweep: everything this worker still owns must
				// read back at its last acked version.
				if err := c.Flush(); err != nil {
					t.Errorf("tenant %d final flush: %v", ten, err)
					return
				}
				for lba, ver := range written {
					got, err := c.Read(lba, 1)
					if err != nil {
						t.Errorf("tenant %d final read: %v", ten, err)
						return
					}
					if !bytes.Equal(got, pattern(ten, lba, ver)) {
						t.Errorf("tenant %d lba %d: final read-back mismatch", ten, lba)
						return
					}
					verified.Add(1)
				}
			}(uint32(ten), c, int64(w)*span, span)
		}
	}
	wg.Wait()
	<-faultDone
	if t.Failed() {
		return
	}

	if eng.Degraded() {
		t.Fatal("rebuild should have completed under traffic")
	}
	want := int64(tenants * workersPerTen * opsPerWorker)
	if acks.Load() != want {
		t.Fatalf("acked %d writes, want %d (lost acks)", acks.Load(), want)
	}
	if verified.Load() == 0 {
		t.Fatal("no read-backs verified")
	}

	// STAT totals must match what the clients observed.
	c := dial(t, addr, 0)
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var volWrites int64
	for _, name := range []string{"vol0_writes", "vol1_writes", "vol2_writes", "vol3_writes"} {
		volWrites += stats[name]
	}
	if volWrites < want {
		t.Fatalf("server counted %d writes, clients acked %d", volWrites, want)
	}
	if stats["srv_batches"] == 0 || stats["srv_batched_writes"] == 0 {
		t.Fatalf("batching never engaged: %v", stats)
	}
	if n := eng.Shards(); n > 1 {
		if stats["geom_shards"] != int64(n) {
			t.Fatalf("geom_shards = %d, want %d", stats["geom_shards"], n)
		}
		var shardUser int64
		for i := 0; i < n; i++ {
			shardUser += stats[fmt.Sprintf("shard%d_user_blocks", i)]
		}
		if shardUser != stats["store_user_blocks"] {
			t.Fatalf("per-shard user blocks sum %d != aggregate %d",
				shardUser, stats["store_user_blocks"])
		}
	}

	stop()
	// Close replays the oracle's full cross-check: flat model, RAID
	// parity, and byte-accurate read-back of every durable block.
	if err := eng.Close(); err != nil {
		t.Fatalf("engine close (oracle full check): %v", err)
	}
}

// TestVolumeBlocksZeroValue pins the regression where VolumeBlocks on
// a Server holding no volumes indexed vols[0] and panicked: a
// zero-value (or half-constructed) Server must report 0 instead.
func TestVolumeBlocksZeroValue(t *testing.T) {
	var s Server
	if got := s.VolumeBlocks(); got != 0 {
		t.Fatalf("VolumeBlocks on empty server = %d, want 0", got)
	}
	if got := s.Volumes(); got != 0 {
		t.Fatalf("Volumes on empty server = %d, want 0", got)
	}
}
