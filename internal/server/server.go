// Package server is the network block-service layer: a TCP front-end
// that multiplexes many tenant volumes onto one shared ADAPT array.
// Each connection speaks the length-prefixed binary protocol from
// internal/server/wire (READ/WRITE/TRIM/FLUSH/STAT with request IDs
// for out-of-order completion). Per-tenant admission control bounds
// inflight ops with typed backpressure instead of unbounded queuing,
// and per-shard lock-free leader/follower group commits coalesce
// small writes into chunk-aligned batches whose deadline mirrors the
// paper's SLA-driven padding window. The package also provides the
// matching Go client (Client) used by cmd/adaptload and the tests.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/gcsched"
	"adapt/internal/prototype"
	"adapt/internal/server/wire"
	"adapt/internal/telemetry"
)

// Config describes a block service instance.
type Config struct {
	// Engine is the shared storage engine all volumes land on — a flat
	// *prototype.Engine or a *prototype.Sharded router. The server
	// drives it but does not own it: callers Close it after Shutdown.
	Engine prototype.Ingest
	// Volumes carves the engine's LBA space into this many equal tenant
	// volumes (volume IDs 0..Volumes-1).
	Volumes int
	// DataDir, when set, backs each volume's payload plane with a
	// vol-N.dat file in this directory: boot loads existing bytes,
	// every WRITE goes through to the file, and an fsync precedes the
	// ack (once per group commit on the batched path). A manifest.json
	// pins the volume geometry so a reboot with a different carve-up is
	// rejected instead of silently shearing tenants. Empty keeps the
	// data plane RAM-only, as before.
	DataDir string
	// MaxInflight bounds admitted inflight ops per volume; further
	// requests are rejected with StatusBackpressure (default 64).
	MaxInflight int
	// Batch enables per-shard group commit for WRITE requests.
	Batch bool
	// BatchTimeout is the group-commit deadline: the longest a batched
	// write may wait for its chunk to fill — the serving-layer
	// equivalent of the paper's aggregation (padding) SLA. Default: the
	// store's SLA window, read as wall time.
	BatchTimeout time.Duration
	// BatchBlocks is the group-commit size target in blocks (default:
	// the store's chunk size, so a full batch fills a whole chunk).
	BatchBlocks int
	// IdleTimeout closes a connection that sends no request for this
	// long (default 5m; negative disables).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write (default 30s; negative
	// disables).
	WriteTimeout time.Duration
	// Telemetry, when set, registers server instruments (connections,
	// per-opcode requests, backpressure, batching, bytes) on the same
	// set the engine uses.
	Telemetry *telemetry.Set
	// Trace configures per-request tracing and tail-latency
	// attribution; see TraceConfig.
	Trace TraceConfig
	// GCSched, when set, is the background GC pacer serving this
	// engine; the STAT opcode reports its counters. The server neither
	// owns nor drives it — the caller wires the pacer's P999 signal to
	// TailP999 and stops it after Shutdown.
	GCSched *gcsched.Controller
}

// metrics bundles the server's telemetry instruments; every field is
// nil (a no-op) when Config.Telemetry is unset.
type metrics struct {
	conns         *telemetry.Gauge
	reqs          [6]*telemetry.Counter // indexed by wire.Op
	backpressure  *telemetry.Counter
	batches       *telemetry.Counter
	batchedWrites *telemetry.Counter
	bytesIn       *telemetry.Counter
	bytesOut      *telemetry.Counter
	batchFill     *telemetry.Histogram
}

// Server is a multi-tenant block service over one storage engine.
type Server struct {
	cfg  Config
	eng  prototype.Ingest
	vols []*volume
	// committers holds one lock-free group committer per engine shard;
	// nil when batching is off. Writes route to the committer owning
	// their shard, so group commits stay shard-local and fill that
	// shard's open chunk.
	committers []*shardCommitter
	met        metrics
	// trace is the request-tracing runtime; nil when disabled, making
	// every tracing touchpoint on the request path a single nil check.
	trace *traceState

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	// drainCh closes when Shutdown starts.
	drainCh chan struct{}

	connWG sync.WaitGroup
	// batWG counts live group-commit leaders.
	batWG sync.WaitGroup

	requests  atomic.Int64
	responses atomic.Int64
	// commitSeq numbers group commits across all committers for the
	// per-volume batch-count dedupe.
	commitSeq atomic.Int64
}

// New builds a server over the engine. Volume geometry is fixed for the
// server's lifetime: the engine's LBA space is split into Config.Volumes
// equal volumes.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: nil engine")
	}
	if cfg.Volumes < 1 {
		return nil, errors.New("server: need at least one volume")
	}
	store := cfg.Engine.Config()
	volBlocks := store.UserBlocks / int64(cfg.Volumes)
	if volBlocks < 1 {
		return nil, fmt.Errorf("server: %d volumes over %d blocks leaves empty volumes",
			cfg.Volumes, store.UserBlocks)
	}
	if cfg.MaxInflight < 1 {
		cfg.MaxInflight = 64
	}
	if cfg.BatchBlocks < 1 {
		cfg.BatchBlocks = store.ChunkBlocks
	}
	if cfg.BatchTimeout <= 0 {
		cfg.BatchTimeout = time.Duration(store.SLAWindow)
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 5 * time.Minute
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		eng:     cfg.Engine,
		conns:   make(map[net.Conn]struct{}),
		drainCh: make(chan struct{}),
	}
	if ts := cfg.Telemetry; ts != nil {
		s.met.conns = ts.Registry.NewGauge(telemetry.MetricServerConns, "Open client connections")
		for _, op := range []wire.Op{wire.OpRead, wire.OpWrite, wire.OpTrim, wire.OpFlush, wire.OpStat} {
			s.met.reqs[op] = ts.Registry.NewCounter(
				fmt.Sprintf("%s{op=\"%s\"}", telemetry.MetricServerRequestsPrefix, op),
				"Requests received by opcode")
		}
		s.met.backpressure = ts.Registry.NewCounter(telemetry.MetricServerBackpressure,
			"Requests rejected by per-tenant admission control")
		s.met.batches = ts.Registry.NewCounter(telemetry.MetricServerBatches,
			"Group commits")
		s.met.batchedWrites = ts.Registry.NewCounter(telemetry.MetricServerBatchedWrites,
			"WRITE requests committed through group commit")
		s.met.bytesIn = ts.Registry.NewCounter(telemetry.MetricServerBytesIn,
			"WRITE payload bytes received")
		s.met.bytesOut = ts.Registry.NewCounter(telemetry.MetricServerBytesOut,
			"READ payload bytes sent")
		bounds := make([]int64, 0, 8)
		for b := int64(1); b <= int64(cfg.BatchBlocks); b *= 2 {
			bounds = append(bounds, b)
		}
		s.met.batchFill = ts.Registry.NewHistogram(telemetry.MetricServerBatchFill,
			"Blocks per group commit", bounds)
	}
	if cfg.Trace.Enabled {
		s.trace = newTraceState(cfg.Trace, cfg.Volumes, cfg.Telemetry)
	}
	s.vols = make([]*volume, cfg.Volumes)
	for i := range s.vols {
		s.vols[i] = newVolume(uint32(i), int64(i)*volBlocks, volBlocks, store.BlockSize, cfg.MaxInflight)
	}
	if cfg.DataDir != "" {
		if err := s.openVolumeFiles(cfg.DataDir); err != nil {
			return nil, err
		}
	}
	if cfg.Batch {
		s.committers = make([]*shardCommitter, cfg.Engine.Shards())
		for i := range s.committers {
			s.committers[i] = newShardCommitter(s, i, cfg.BatchTimeout, cfg.BatchBlocks)
		}
	}
	return s, nil
}

// Volumes returns the number of tenant volumes.
func (s *Server) Volumes() int { return len(s.vols) }

// VolumeBlocks returns the per-volume LBA count, 0 when the server
// holds no volumes (a zero-value or half-built Server must not panic).
func (s *Server) VolumeBlocks() int64 {
	if len(s.vols) == 0 {
		return 0
	}
	return s.vols[0].blocks
}

// Serve accepts connections on ln until Shutdown closes it. It always
// returns a nil error after a graceful Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		if s.draining.Load() {
			conn.SetReadDeadline(time.Now()) // drain immediately
		}
		s.mu.Unlock()
		s.met.conns.Add(1)
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown drains the server: new requests are refused with
// StatusShuttingDown, every already-received request is completed and
// acked, pending group commits are applied, and connections close. The
// engine is left open for the caller.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	close(s.drainCh)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		// Unblock readers parked on idle connections; in-flight work
		// still completes and is acked before the connection closes.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		// Every conn reader waits for its pending responses, and a
		// batched write responds only from its commit's done callback —
		// so once the readers exit, every enqueued write has committed
		// and no new leaders can spawn.
		s.connWG.Wait()
		s.batWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Every ack already carried its own fsync; this close is
		// bookkeeping, not the durability point.
		return s.closeVolumeFiles()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// handleConn runs one connection: a reader loop decoding requests and a
// writer goroutine serializing (possibly out-of-order) responses.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.met.conns.Add(-1)
		conn.Close()
	}()

	tr := s.trace
	var ring *telemetry.SpanRing
	if tr != nil {
		ring = tr.addRing()
		defer tr.retireRing(ring)
	}
	respCh := make(chan outFrame, 4*s.cfg.MaxInflight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.connWriter(conn, respCh, ring)
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	var pending sync.WaitGroup
	for {
		// Arm the idle deadline only when the next read will hit the
		// socket; requests already buffered don't reset idleness and
		// skip the per-op deadline bookkeeping.
		if s.cfg.IdleTimeout > 0 && br.Buffered() == 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		// Frame read and decode are split so the span clock starts at
		// frame arrival and the decode stage excludes network idle time.
		frame, err := wire.ReadFrame(br)
		if err != nil {
			break
		}
		var sp *telemetry.Span
		if tr != nil {
			sp = tr.newSpan()
			sp.Start = s.eng.Now()
		}
		req, err := wire.DecodeRequestOwned(frame)
		if err != nil {
			// The stream cannot be trusted past a protocol error, so the
			// connection drains and closes.
			if sp != nil {
				tr.drop(sp)
			}
			break
		}
		if sp != nil {
			sp.ID = req.ID
			sp.Volume = req.Volume
			sp.Op = uint8(req.Op)
			sp.LBA = req.LBA
			sp.Count = req.Count
			sp.Forced = req.Flags&wire.FlagTrace != 0
			sp.MarkAt(telemetry.StageDecode, s.eng.Now())
		}
		pending.Add(1)
		delivered := false
		respond := func(resp *wire.Response) {
			if delivered {
				panic("server: double response to one request")
			}
			delivered = true
			if sp != nil {
				sp.Status = uint8(resp.Status)
			}
			respCh <- outFrame{buf: wire.AppendResponse(nil, resp), sp: sp}
			pending.Done()
		}
		s.dispatch(req, sp, respond)
	}
	pending.Wait()
	close(respCh)
	<-writerDone
}

// outFrame pairs an encoded response with its span (nil when tracing
// is off), so the writer can finish the span after the socket write.
type outFrame struct {
	buf []byte
	sp  *telemetry.Span
}

// connWriter writes encoded response frames, flushing when the queue
// momentarily empties. After a write failure it keeps draining the
// channel so responders never block on a dead connection. Spans finish
// at flush time, after their bytes hit the socket.
func (s *Server) connWriter(conn net.Conn, respCh <-chan outFrame, ring *telemetry.SpanRing) {
	buf := make([]byte, 0, 64<<10)
	var spans []*telemetry.Span
	broken := false
	flush := func() {
		if !broken && len(buf) > 0 {
			if s.cfg.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			if _, err := conn.Write(buf); err != nil {
				broken = true
			}
		}
		buf = buf[:0]
		if len(spans) > 0 {
			now := s.eng.Now()
			for _, sp := range spans {
				s.trace.finish(sp, now, ring)
			}
			spans = spans[:0]
		}
	}
	for of := range respCh {
		if of.sp != nil {
			spans = append(spans, of.sp)
		}
		if broken {
			flush() // finish spans even on a dead connection
			continue
		}
		buf = append(buf, of.buf...)
		s.responses.Add(1)
		if len(respCh) == 0 || len(buf) >= 48<<10 {
			flush()
		}
	}
	flush()
}

// errResp builds a non-OK response carrying the detail as payload.
func errResp(req *wire.Request, status wire.Status, detail string) *wire.Response {
	return &wire.Response{Op: req.Op, Status: status, ID: req.ID, Payload: []byte(detail)}
}

func okResp(req *wire.Request) *wire.Response {
	return &wire.Response{Op: req.Op, Status: wire.StatusOK, ID: req.ID}
}

// dispatch routes one decoded request. respond must be called exactly
// once, possibly from another goroutine (batched writes). sp is the
// request's trace span, nil when tracing is off.
func (s *Server) dispatch(req wire.Request, sp *telemetry.Span, respond func(*wire.Response)) {
	s.requests.Add(1)
	s.met.reqs[req.Op].Inc()
	if s.draining.Load() {
		respond(errResp(&req, wire.StatusShuttingDown, "server draining"))
		return
	}
	if req.Op == wire.OpStat {
		respond(&wire.Response{
			Op: req.Op, Status: wire.StatusOK, ID: req.ID,
			Payload: wire.AppendStats(nil, s.stats()),
		})
		return
	}
	if req.Volume >= uint32(len(s.vols)) {
		respond(errResp(&req, wire.StatusBadVolume,
			fmt.Sprintf("volume %d of %d", req.Volume, len(s.vols))))
		return
	}
	vol := s.vols[req.Volume]
	if !vol.admit() {
		s.met.backpressure.Inc()
		respond(errResp(&req, wire.StatusBackpressure,
			fmt.Sprintf("volume %d inflight limit %d", vol.id, cap(vol.sem))))
		return
	}
	if sp != nil {
		sp.MarkAt(telemetry.StageAdmission, s.eng.Now())
	}
	finish := func(resp *wire.Response) {
		vol.release()
		respond(resp)
	}
	switch req.Op {
	case wire.OpWrite:
		s.handleWrite(vol, req, sp, finish)
	case wire.OpRead:
		s.handleRead(vol, req, sp, finish)
	case wire.OpTrim:
		s.handleTrim(vol, req, sp, finish)
	case wire.OpFlush:
		s.handleFlush(vol, req, sp, finish)
	default:
		finish(errResp(&req, wire.StatusBadRequest, "unhandled opcode"))
	}
}

func (s *Server) handleWrite(vol *volume, req wire.Request, sp *telemetry.Span, finish func(*wire.Response)) {
	if req.Count < 1 {
		finish(errResp(&req, wire.StatusBadRequest, "zero block count"))
		return
	}
	if !vol.inRange(req.LBA, req.Count) {
		finish(errResp(&req, wire.StatusOutOfRange,
			fmt.Sprintf("write [%d,%d) beyond %d blocks", req.LBA, req.LBA+uint64(req.Count), vol.blocks)))
		return
	}
	if want := int(req.Count) * vol.blockBytes; len(req.Payload) != want {
		finish(errResp(&req, wire.StatusBadRequest,
			fmt.Sprintf("payload %d bytes, want %d", len(req.Payload), want)))
		return
	}
	s.writeCore(vol, int64(req.LBA), req.Payload, req.Flags&wire.FlagNoBatch != 0, sp, func(err error) {
		if err != nil {
			finish(errResp(&req, wire.StatusInternal, err.Error()))
			return
		}
		finish(okResp(&req))
	})
}

func (s *Server) handleRead(vol *volume, req wire.Request, sp *telemetry.Span, finish func(*wire.Response)) {
	if req.Count < 1 {
		finish(errResp(&req, wire.StatusBadRequest, "zero block count"))
		return
	}
	if !vol.inRange(req.LBA, req.Count) {
		finish(errResp(&req, wire.StatusOutOfRange,
			fmt.Sprintf("read [%d,%d) beyond %d blocks", req.LBA, req.LBA+uint64(req.Count), vol.blocks)))
		return
	}
	payload, err := s.readCore(vol, int64(req.LBA), int(req.Count), sp)
	if err != nil {
		finish(errResp(&req, wire.StatusInternal, err.Error()))
		return
	}
	finish(&wire.Response{Op: req.Op, Status: wire.StatusOK, ID: req.ID, Count: req.Count, Payload: payload})
}

func (s *Server) handleTrim(vol *volume, req wire.Request, sp *telemetry.Span, finish func(*wire.Response)) {
	if req.Count < 1 {
		finish(errResp(&req, wire.StatusBadRequest, "zero block count"))
		return
	}
	if !vol.inRange(req.LBA, req.Count) {
		finish(errResp(&req, wire.StatusOutOfRange,
			fmt.Sprintf("trim [%d,%d) beyond %d blocks", req.LBA, req.LBA+uint64(req.Count), vol.blocks)))
		return
	}
	if err := s.trimCore(vol, int64(req.LBA), int(req.Count), sp); err != nil {
		finish(errResp(&req, wire.StatusInternal, err.Error()))
		return
	}
	finish(okResp(&req))
}

func (s *Server) handleFlush(vol *volume, req wire.Request, sp *telemetry.Span, finish func(*wire.Response)) {
	if err := s.flushCore(vol, sp); err != nil {
		finish(errResp(&req, wire.StatusInternal, err.Error()))
		return
	}
	finish(okResp(&req))
}

// stats assembles the STAT payload: geometry (so clients can
// self-configure), engine traffic accounting, server counters, and
// per-tenant totals.
func (s *Server) stats() []wire.Stat {
	cfg := s.eng.Config()
	est := s.eng.Stats()
	batch := int64(0)
	if s.cfg.Batch {
		batch = 1
	}
	degraded := int64(0)
	if s.eng.Degraded() {
		degraded = 1
	}
	out := []wire.Stat{
		{Name: "geom_volumes", Value: int64(len(s.vols))},
		{Name: "geom_vol_blocks", Value: s.vols[0].blocks},
		{Name: "geom_block_bytes", Value: int64(cfg.BlockSize)},
		{Name: "geom_chunk_blocks", Value: int64(cfg.ChunkBlocks)},
		{Name: "geom_batch", Value: batch},
		{Name: "store_user_blocks", Value: est.UserBlocks},
		{Name: "store_gc_blocks", Value: est.GCBlocks},
		{Name: "store_shadow_blocks", Value: est.ShadowBlocks},
		{Name: "store_padding_blocks", Value: est.PaddingBlocks},
		{Name: "store_padded_chunks", Value: est.PaddedChunks},
		{Name: "store_chunk_flushes", Value: est.ChunkFlushes},
		{Name: "store_parity_chunks", Value: est.ParityChunks},
		{Name: "store_read_blocks", Value: est.ReadBlocks},
		{Name: "store_trimmed_blocks", Value: est.TrimmedBlocks},
		{Name: "store_gc_cycles", Value: est.GCCycles},
		{Name: "store_gc_slices", Value: est.GCSlices},
		{Name: "store_gc_emergency_runs", Value: est.GCEmergencyRuns},
		{Name: "store_free_segments", Value: int64(est.FreeSegments)},
		{Name: "store_wa_milli", Value: int64(est.WA * 1000)},
		{Name: "store_eff_wa_milli", Value: int64(est.EffectiveWA * 1000)},
		{Name: "store_degraded", Value: degraded},
		{Name: "srv_requests", Value: s.requests.Load()},
		{Name: "srv_responses", Value: s.responses.Load()},
	}
	var backpressure, batches, batchedWrites int64
	for _, v := range s.vols {
		backpressure += v.rejected.Load()
		batches += v.batches.Load()
		batchedWrites += v.batchedWrites.Load()
	}
	out = append(out,
		wire.Stat{Name: "srv_backpressure", Value: backpressure},
		wire.Stat{Name: "srv_batches", Value: batches},
		wire.Stat{Name: "srv_batched_writes", Value: batchedWrites},
		wire.Stat{Name: "geom_shards", Value: int64(s.eng.Shards())},
	)
	if s.trace != nil {
		out = append(out, wire.Stat{Name: "srv_tail_p999_ns", Value: s.trace.tail.lastEstimateNS()})
	}
	if ds, ok := s.eng.DurableStats(); ok {
		out = append(out,
			wire.Stat{Name: "durable_synced_segments", Value: ds.SyncedSegments},
			wire.Stat{Name: "durable_fsyncs", Value: ds.Fsyncs},
			wire.Stat{Name: "durable_fsync_p50_ns", Value: ds.FsyncP50NS},
			wire.Stat{Name: "durable_fsync_p99_ns", Value: ds.FsyncP99NS},
			wire.Stat{Name: "durable_fsync_p999_ns", Value: ds.FsyncP999NS},
			wire.Stat{Name: "durable_checkpoints", Value: ds.Checkpoints},
			wire.Stat{Name: "durable_bytes_written", Value: ds.BytesWritten},
			wire.Stat{Name: "durable_recovered_segments", Value: ds.RecoveredSegments},
			wire.Stat{Name: "durable_recovered_blocks", Value: ds.RecoveredBlocks},
		)
	}
	if gs := s.cfg.GCSched; gs != nil {
		gst := gs.Stats()
		out = append(out,
			wire.Stat{Name: "gcsched_slices", Value: gst.Slices},
			wire.Stat{Name: "gcsched_units", Value: gst.Units},
			wire.Stat{Name: "gcsched_tail_skips", Value: gst.TailSkips},
			wire.Stat{Name: "gcsched_queue_skips", Value: gst.QueueSkips},
		)
	}
	if sstats := s.eng.ShardStats(); len(sstats) > 1 {
		for i, st := range sstats {
			p := fmt.Sprintf("shard%d_", i)
			out = append(out,
				wire.Stat{Name: p + "user_blocks", Value: st.UserBlocks},
				wire.Stat{Name: p + "gc_blocks", Value: st.GCBlocks},
				wire.Stat{Name: p + "gc_cycles", Value: st.GCCycles},
				wire.Stat{Name: p + "free_segments", Value: int64(st.FreeSegments)},
				wire.Stat{Name: p + "gc_gate_waits", Value: st.GCGateWaits},
				wire.Stat{Name: p + "gc_gate_wait_ns", Value: st.GCGateWaitNS},
			)
		}
	}
	for _, v := range s.vols {
		p := fmt.Sprintf("vol%d_", v.id)
		out = append(out,
			wire.Stat{Name: p + "writes", Value: v.writes.Load()},
			wire.Stat{Name: p + "write_blocks", Value: v.writeBlocks.Load()},
			wire.Stat{Name: p + "reads", Value: v.reads.Load()},
			wire.Stat{Name: p + "trims", Value: v.trims.Load()},
			wire.Stat{Name: p + "rejected", Value: v.rejected.Load()},
			wire.Stat{Name: p + "batches", Value: v.batches.Load()},
		)
	}
	if tr := s.trace; tr != nil && tr.stageHist[0] != nil {
		for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
			h := tr.stageHist[st]
			p := "trace_" + st.String() + "_"
			out = append(out,
				wire.Stat{Name: p + "count", Value: h.Count()},
				wire.Stat{Name: p + "p50_ns", Value: h.Quantile(0.5)},
				wire.Stat{Name: p + "p99_ns", Value: h.Quantile(0.99)},
				wire.Stat{Name: p + "p999_ns", Value: h.Quantile(0.999)},
			)
		}
	}
	return out
}
