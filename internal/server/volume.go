package server

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// volume is one tenant's block device: a contiguous slice of the shared
// array's LBA space, a RAM data plane holding the payload bytes (the
// lss store models placement and GC but never materializes data), a
// bounded-inflight admission semaphore, and per-tenant counters. With
// Config.DataDir set the data plane is additionally backed by a
// vol-N.dat file: writes go through to the file and an fsync lands
// before the ack, so an acked write survives a crash.
type volume struct {
	id         uint32
	base       int64 // first global LBA on the shared array
	blocks     int64 // volume-visible LBA count
	blockBytes int

	// sem bounds inflight admitted ops; a full semaphore rejects with
	// StatusBackpressure instead of queuing without bound.
	sem chan struct{}

	dataMu sync.RWMutex
	data   []byte

	// file is the durable backing file (nil without DataDir). dirty
	// marks unsynced writes so syncData can skip redundant fsyncs —
	// one group commit carrying many writes to a volume syncs it once.
	file  *os.File
	dirty atomic.Bool

	// Per-tenant stats, all atomics (read by STAT while ops run).
	writes, reads, trims, flushes atomic.Int64
	writeBlocks, readBlocks       atomic.Int64
	trimBlocks                    atomic.Int64
	rejected                      atomic.Int64
	batches, batchedWrites        atomic.Int64
	// batchMark holds the last group-commit sequence that counted this
	// volume in batches, so a commit carrying several of the volume's
	// writes increments the counter once.
	batchMark atomic.Int64
}

func newVolume(id uint32, base, blocks int64, blockBytes, maxInflight int) *volume {
	return &volume{
		id:         id,
		base:       base,
		blocks:     blocks,
		blockBytes: blockBytes,
		sem:        make(chan struct{}, maxInflight),
		data:       make([]byte, blocks*int64(blockBytes)),
	}
}

// admit tries to take one inflight slot; false means backpressure.
func (v *volume) admit() bool {
	select {
	case v.sem <- struct{}{}:
		return true
	default:
		v.rejected.Add(1)
		return false
	}
}

// release frees one inflight slot.
func (v *volume) release() { <-v.sem }

// inRange reports whether [lba, lba+count) is inside the volume.
func (v *volume) inRange(lba uint64, count uint32) bool {
	return lba < uint64(v.blocks) && uint64(count) <= uint64(v.blocks)-lba
}

// attachFile binds a backing file to the volume: existing bytes load
// into the RAM data plane (a shorter file — first boot, or a crash
// before the tail was extended — reads as zeros past its end, matching
// a block device's fresh-media semantics) and the file is sized to the
// full volume so later WriteAt calls never grow it.
func (v *volume) attachFile(f *os.File) error {
	if _, err := f.ReadAt(v.data, 0); err != nil && err != io.EOF {
		return fmt.Errorf("volume %d: load %s: %w", v.id, f.Name(), err)
	}
	if err := f.Truncate(int64(len(v.data))); err != nil {
		return fmt.Errorf("volume %d: size %s: %w", v.id, f.Name(), err)
	}
	v.file = f
	return nil
}

// writeData copies payload into the volume's data plane at the
// volume-relative lba, writing through to the backing file when one is
// attached. The file write happens outside dataMu: ReadAt never sees
// the file, and durability ordering is carried by the caller's
// syncData-before-ack, not by the mutex.
func (v *volume) writeData(lba int64, payload []byte) error {
	off := lba * int64(v.blockBytes)
	v.dataMu.Lock()
	copy(v.data[off:], payload)
	v.dataMu.Unlock()
	if v.file != nil {
		if _, err := v.file.WriteAt(payload, off); err != nil {
			return fmt.Errorf("volume %d: write-through: %w", v.id, err)
		}
		v.dirty.Store(true)
	}
	return nil
}

// syncData makes every completed writeData durable. The dirty swap
// lets a group commit touching one volume many times pay for a single
// fsync; a write that lands after the swap is synced by its own ack
// path. On fsync failure the dirty mark is restored so the volume
// never reports clean state it cannot prove.
func (v *volume) syncData() error {
	if v.file == nil || !v.dirty.Swap(false) {
		return nil
	}
	if err := v.file.Sync(); err != nil {
		v.dirty.Store(true)
		return fmt.Errorf("volume %d: fsync: %w", v.id, err)
	}
	return nil
}

// closeFile syncs and closes the backing file, if any.
func (v *volume) closeFile() error {
	if v.file == nil {
		return nil
	}
	serr := v.syncData()
	cerr := v.file.Close()
	v.file = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// readData returns a copy of blocks starting at the volume-relative
// lba.
func (v *volume) readData(lba int64, blocks int) []byte {
	off := lba * int64(v.blockBytes)
	n := int64(blocks) * int64(v.blockBytes)
	out := make([]byte, n)
	v.dataMu.RLock()
	copy(out, v.data[off:off+n])
	v.dataMu.RUnlock()
	return out
}
