package server

import (
	"sync"
	"sync/atomic"
)

// volume is one tenant's block device: a contiguous slice of the shared
// array's LBA space, a RAM data plane holding the payload bytes (the
// lss store models placement and GC but never materializes data), a
// bounded-inflight admission semaphore, and per-tenant counters.
type volume struct {
	id         uint32
	base       int64 // first global LBA on the shared array
	blocks     int64 // volume-visible LBA count
	blockBytes int

	// sem bounds inflight admitted ops; a full semaphore rejects with
	// StatusBackpressure instead of queuing without bound.
	sem chan struct{}

	dataMu sync.RWMutex
	data   []byte

	// Per-tenant stats, all atomics (read by STAT while ops run).
	writes, reads, trims, flushes atomic.Int64
	writeBlocks, readBlocks       atomic.Int64
	trimBlocks                    atomic.Int64
	rejected                      atomic.Int64
	batches, batchedWrites        atomic.Int64
	// batchMark holds the last group-commit sequence that counted this
	// volume in batches, so a commit carrying several of the volume's
	// writes increments the counter once.
	batchMark atomic.Int64
}

func newVolume(id uint32, base, blocks int64, blockBytes, maxInflight int) *volume {
	return &volume{
		id:         id,
		base:       base,
		blocks:     blocks,
		blockBytes: blockBytes,
		sem:        make(chan struct{}, maxInflight),
		data:       make([]byte, blocks*int64(blockBytes)),
	}
}

// admit tries to take one inflight slot; false means backpressure.
func (v *volume) admit() bool {
	select {
	case v.sem <- struct{}{}:
		return true
	default:
		v.rejected.Add(1)
		return false
	}
}

// release frees one inflight slot.
func (v *volume) release() { <-v.sem }

// inRange reports whether [lba, lba+count) is inside the volume.
func (v *volume) inRange(lba uint64, count uint32) bool {
	return lba < uint64(v.blocks) && uint64(count) <= uint64(v.blocks)-lba
}

// writeData copies payload into the volume's data plane at the
// volume-relative lba.
func (v *volume) writeData(lba int64, payload []byte) {
	off := lba * int64(v.blockBytes)
	v.dataMu.Lock()
	copy(v.data[off:], payload)
	v.dataMu.Unlock()
}

// readData returns a copy of blocks starting at the volume-relative
// lba.
func (v *volume) readData(lba int64, blocks int) []byte {
	off := lba * int64(v.blockBytes)
	n := int64(blocks) * int64(v.blockBytes)
	out := make([]byte, n)
	v.dataMu.RLock()
	copy(out, v.data[off:off+n])
	v.dataMu.RUnlock()
	return out
}
