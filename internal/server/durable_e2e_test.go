package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/prototype"
	"adapt/internal/segfile"
)

// The SIGKILL restart test runs the real process lifecycle: the test
// binary re-executes itself as a server process (TestDurableServerHelper
// below), the parent writes through the wire client and records every
// acked payload, kills the server with SIGKILL — no shutdown path, no
// flush — reboots it on the same data directory, and reads every
// recorded block back. An acked write that does not survive is a
// durability bug in the volume backing files or the segfile log.

// e2eVolumes and the engine geometry must be identical across boots;
// the manifest and the segfile geometry fingerprint both verify this.
const e2eVolumes = 2

func e2eServer(dir string) (*Server, *prototype.Engine, error) {
	cfg := lss.Config{
		BlockSize:     testBlockBytes,
		ChunkBlocks:   8,
		SegmentChunks: 4,
		UserBlocks:    4096,
		OverProvision: 0.25,
	}
	pol, err := placement.New(placement.NameSepGC, placement.Params{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.SegmentBlocks(),
		ChunkBlocks:   cfg.ChunkBlocks,
	})
	if err != nil {
		return nil, nil, err
	}
	eng, err := prototype.NewEngine(prototype.EngineConfig{
		Store:       cfg,
		Policy:      pol,
		ServiceTime: time.Microsecond,
		Durable: &segfile.Options{
			Dir:  filepath.Join(dir, "engine"),
			Sync: segfile.SyncAlways,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	srv, err := New(Config{
		Engine:       eng,
		Volumes:      e2eVolumes,
		DataDir:      filepath.Join(dir, "volumes"),
		Batch:        true,
		BatchTimeout: time.Millisecond,
	})
	if err != nil {
		eng.Close()
		return nil, nil, err
	}
	return srv, eng, nil
}

// TestDurableServerHelper is not a test: it is the server process the
// SIGKILL test re-executes. It boots on ADAPT_E2E_DIR, announces its
// address on stdout, and serves until the parent kills it.
func TestDurableServerHelper(t *testing.T) {
	dir := os.Getenv("ADAPT_E2E_DIR")
	if dir == "" {
		t.Skip("helper process for TestDurableSIGKILLRestart")
	}
	srv, _, err := e2eServer(dir)
	if err != nil {
		t.Fatalf("helper boot: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("helper listen: %v", err)
	}
	fmt.Fprintf(os.Stdout, "LISTEN %s\n", ln.Addr())
	_ = srv.Serve(ln) // runs until SIGKILL
}

// startHelper re-executes the test binary as a server process on dir
// and returns the running process plus its listen address.
func startHelper(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestDurableServerHelper$", "-test.count=1")
	cmd.Env = append(os.Environ(), "ADAPT_E2E_DIR="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
				addrCh <- a
				break
			}
		}
		close(addrCh)
		_, _ = io.Copy(io.Discard, stdout) // keep the pipe drained
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatal("helper exited without announcing an address")
		}
		return cmd, addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatal("helper did not announce an address in 30s")
	}
	panic("unreachable")
}

// TestDurableSIGKILLRestart writes acked blocks to a live server
// process, SIGKILLs it mid-flight, reboots on the same directory, and
// verifies every acked payload reads back byte-identical.
func TestDurableSIGKILLRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	dir := t.TempDir()

	cmd, addr := startHelper(t, dir)
	clients := make([]*Client, e2eVolumes)
	for v := range clients {
		clients[v] = dial(t, addr, uint32(v))
	}

	// shadow[volume][lba] is the version byte of the last ACKED write;
	// anything acked before the kill must survive it.
	shadow := make([]map[int64]byte, e2eVolumes)
	for v := range shadow {
		shadow[v] = make(map[int64]byte)
	}
	rng := rand.New(rand.NewSource(7))
	volBlocks := int64(4096 / e2eVolumes)
	for i := 0; i < 600; i++ {
		v := rng.Intn(e2eVolumes)
		lba := rng.Int63n(volBlocks)
		ver := byte(i%250 + 1)
		var err error
		if i%5 == 4 {
			err = clients[v].WriteSync(lba, pattern(uint32(v), lba, ver))
		} else {
			err = clients[v].Write(lba, pattern(uint32(v), lba, ver))
		}
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		shadow[v][lba] = ver
	}

	// The live process must be visibly paying for durability: STAT
	// carries the fsync histogram and a nonzero fsync count.
	preStats, err := clients[0].Stats()
	if err != nil {
		t.Fatalf("stats before kill: %v", err)
	}
	for _, key := range []string{"durable_fsyncs", "durable_fsync_p50_ns", "durable_fsync_p99_ns",
		"durable_fsync_p999_ns", "durable_synced_segments", "durable_checkpoints"} {
		if _, ok := preStats[key]; !ok {
			t.Fatalf("STAT missing %s: %v", key, preStats)
		}
	}
	if preStats["durable_fsyncs"] < 1 {
		t.Fatalf("engine acked writes without fsyncing: %v", preStats)
	}

	// SIGKILL: no drain, no flush, no deferred sync. Whatever the acks
	// promised must already be on disk.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_ = cmd.Wait()
	for _, c := range clients {
		c.Close()
	}

	cmd2, addr2 := startHelper(t, dir)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	for v := range shadow {
		c := dial(t, addr2, uint32(v))
		for lba, ver := range shadow[v] {
			got, err := c.Read(lba, 1)
			if err != nil {
				t.Fatalf("vol %d lba %d: read after restart: %v", v, lba, err)
			}
			if want := pattern(uint32(v), lba, ver); !bytes.Equal(got, want) {
				t.Fatalf("vol %d lba %d: acked write lost: got %x want %x", v, lba, got, want)
			}
		}
	}

	// The rebooted engine must have rolled its mapping forward from the
	// segfile log, and STAT must surface the durable instruments.
	c := dial(t, addr2, 0)
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats after restart: %v", err)
	}
	if stats["durable_recovered_segments"] < 1 || stats["durable_recovered_blocks"] < 1 {
		t.Fatalf("restarted engine recovered nothing: %v", stats)
	}
}
