package server

import (
	"fmt"
	"math/bits"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/prototype"
	"adapt/internal/server/wire"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// TraceConfig configures per-request tracing. When disabled the whole
// subsystem costs one nil check per request.
type TraceConfig struct {
	// Enabled turns on span capture for every request.
	Enabled bool
	// Threshold is the end-to-end latency above which a span is
	// published to the exemplar ring (default 500 µs). Requests carrying
	// wire.FlagTrace publish regardless.
	Threshold time.Duration
	// RingCap bounds each connection's exemplar ring (default 256).
	RingCap int
}

// traceState is the server's tracing runtime: a span pool, the
// per-connection exemplar rings, the per-stage/per-tenant latency
// histograms, and the interference-interval source for attribution.
type traceState struct {
	thresholdNS int64
	ringCap     int
	pool        sync.Pool
	itv         *telemetry.IntervalLog

	// stageHist/volHist/exemplars are nil (no-op) without telemetry.
	stageHist [telemetry.NumStages]*telemetry.Histogram
	volHist   []*telemetry.Histogram
	exemplars *telemetry.Counter

	// mu guards the live per-connection ring set; taken only at
	// connection open/close and snapshot time, never per request.
	mu      sync.Mutex
	rings   map[*telemetry.SpanRing]struct{}
	retired *telemetry.SpanRing

	// tail is the windowed end-to-end latency meter behind
	// Server.TailP999 — the GC pacer's feedback signal.
	tail tailMeter
}

// tailBuckets spans 1 ns to ~2^41 ns (~37 min) in log2 buckets.
const tailBuckets = 42

// tailMinSamples is the smallest window worth a fresh quantile; below
// it the meter keeps accumulating and answers with the last estimate.
const tailMinSamples = 32

// tailMeter estimates a *recent* latency quantile. The cumulative
// stage histograms converge over a run and stop reflecting the
// present, so the background-GC pacer — which needs to notice a tail
// excursion and back off within milliseconds — reads this instead:
// writers bump atomic log2 buckets, and each reader call computes the
// quantile over the window of observations since the previous call
// that consumed one.
type tailMeter struct {
	counts [tailBuckets]atomic.Int64

	mu    sync.Mutex
	prev  [tailBuckets]int64
	lastQ int64
}

// observe records one end-to-end latency. Safe for concurrent use.
func (t *tailMeter) observe(ns int64) {
	if ns < 0 {
		return
	}
	idx := bits.Len64(uint64(ns))
	if idx >= tailBuckets {
		idx = tailBuckets - 1
	}
	t.counts[idx].Add(1)
}

// quantileNS returns the q-quantile (upper bucket bound) of the
// observations since the last window consumption, or the previous
// estimate while the window is too thin to be meaningful.
func (t *tailMeter) quantileNS(q float64) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var cur [tailBuckets]int64
	var total int64
	for i := range cur {
		cur[i] = t.counts[i].Load()
		total += cur[i] - t.prev[i]
	}
	if total < tailMinSamples {
		return t.lastQ
	}
	rank := int64(float64(total)*q + 0.5)
	if rank > total {
		rank = total
	}
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range cur {
		seen += cur[i] - t.prev[i]
		if seen >= rank {
			t.prev = cur
			t.lastQ = int64(1) << uint(i) // upper bound: bucket i covers [2^(i-1), 2^i)
			return t.lastQ
		}
	}
	t.prev = cur
	return t.lastQ
}

// newTraceState builds the tracing runtime and registers its latency
// instruments (log-scale ns histograms, 1 µs .. ~2 s) when ts is set.
func newTraceState(cfg TraceConfig, vols int, ts *telemetry.Set) *traceState {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 500 * time.Microsecond
	}
	if cfg.RingCap <= 0 {
		cfg.RingCap = 256
	}
	tr := &traceState{
		thresholdNS: cfg.Threshold.Nanoseconds(),
		ringCap:     cfg.RingCap,
		pool:        sync.Pool{New: func() any { return new(telemetry.Span) }},
		rings:       make(map[*telemetry.SpanRing]struct{}),
		retired:     telemetry.NewSpanRing(4 * cfg.RingCap),
	}
	if ts != nil {
		tr.itv = ts.Intervals
		bounds := telemetry.Log2Bounds(1024, 1<<31)
		for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
			tr.stageHist[st] = ts.Registry.NewHistogram(
				fmt.Sprintf("%s{stage=\"%s\"}", telemetry.MetricServerStageLatencyPrefix, st),
				"Request stage latency in nanoseconds", bounds)
		}
		tr.volHist = make([]*telemetry.Histogram, vols)
		for i := range tr.volHist {
			tr.volHist[i] = ts.Registry.NewHistogram(
				fmt.Sprintf("%s{vol=\"%d\"}", telemetry.MetricServerRequestLatencyPrefix, i),
				"End-to-end request latency in nanoseconds", bounds)
		}
		tr.exemplars = ts.Registry.NewCounter(telemetry.MetricServerTraceExemplars,
			"Spans published to the exemplar ring")
	}
	return tr
}

// newSpan takes a zeroed span from the pool.
func (tr *traceState) newSpan() *telemetry.Span {
	return tr.pool.Get().(*telemetry.Span)
}

// drop returns an unpublished span to the pool.
func (tr *traceState) drop(sp *telemetry.Span) {
	sp.Reset()
	tr.pool.Put(sp)
}

// addRing registers a fresh per-connection exemplar ring.
func (tr *traceState) addRing() *telemetry.SpanRing {
	r := telemetry.NewSpanRing(tr.ringCap)
	tr.mu.Lock()
	tr.rings[r] = struct{}{}
	tr.mu.Unlock()
	return r
}

// retireRing moves a closing connection's exemplars into the retired
// ring so they survive the connection.
func (tr *traceState) retireRing(r *telemetry.SpanRing) {
	spans := r.Snapshot(nil)
	tr.mu.Lock()
	delete(tr.rings, r)
	tr.mu.Unlock()
	for _, sp := range spans {
		tr.retired.Publish(sp)
	}
}

// finish completes a span after its response hit the socket: stamps the
// respond stage, feeds the latency histograms, and either publishes the
// span as an exemplar (over threshold, or client-forced) or returns it
// to the pool.
func (tr *traceState) finish(sp *telemetry.Span, now sim.Time, ring *telemetry.SpanRing) {
	sp.MarkAt(telemetry.StageRespond, now)
	total := sp.TotalNS()
	tr.tail.observe(total)
	durs := sp.StageDurs()
	for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
		if durs[st] > 0 {
			tr.stageHist[st].Observe(durs[st])
		}
	}
	if int(sp.Volume) < len(tr.volHist) {
		tr.volHist[sp.Volume].Observe(total)
	}
	if sp.Forced || total >= tr.thresholdNS {
		tr.exemplars.Inc()
		ring.Publish(sp) // published spans are immutable; not pooled
		return
	}
	tr.drop(sp)
}

// markEngine transfers an engine OpTiming onto the span: lock wait,
// commit (store apply excluding device backpressure), and flush (time
// blocked on device queues, re-ordered to the stage tail).
func markEngine(sp *telemetry.Span, t prototype.OpTiming) {
	if sp == nil {
		return
	}
	sp.MarkAt(telemetry.StageLockWait, t.Locked)
	sp.MarkAt(telemetry.StageCommit, t.Done-sim.Time(t.SinkNS))
	if t.SinkNS > 0 {
		sp.MarkAt(telemetry.StageFlush, t.Done)
	}
}

// Exemplar is one attributed slow-request span.
type Exemplar struct {
	Span *telemetry.Span
	// Cause is the attributed dominant cause: "backpressure", "gc",
	// "degraded", "rebuild", "batch-deadline", "admission",
	// "engine-lock", "wire", or "engine".
	Cause string
	// CauseID is the GC cycle number or failure generation when the
	// cause is an interference interval, 0 otherwise.
	CauseID int64
	// Column is the interfering RAID column, -1 when not column-specific.
	Column int32
	// Shard is the engine shard the blame lands on: the interfering
	// interval's publishing shard, or the shard owning the request's
	// LBA when the cause is not an interference window. -1 when the
	// engine is unsharded.
	Shard int32
	// OverlapNS is how much of the span overlapped the blamed
	// interference interval.
	OverlapNS int64
}

// attribute tags a span with its dominant latency cause. Interference
// overlap (GC first, then degraded/rebuild windows) takes precedence;
// otherwise the slowest stage is blamed.
func attribute(sp *telemetry.Span, ivs []telemetry.Interval) (cause string, id int64, col, shard int32, overlapNS int64) {
	if wire.Status(sp.Status) == wire.StatusBackpressure {
		return "backpressure", 0, -1, -1, 0
	}
	a, b := sp.Start, sp.End()
	var gcBest, otherBest telemetry.Interval
	var gcOv, otherOv int64
	for _, iv := range ivs {
		ov := iv.Overlap(a, b)
		if ov <= 0 {
			continue
		}
		if iv.Kind == telemetry.IntervalGC {
			if ov > gcOv {
				gcOv, gcBest = ov, iv
			}
		} else if ov > otherOv {
			otherOv, otherBest = ov, iv
		}
	}
	if gcOv > 0 {
		return "gc", gcBest.ID, gcBest.Column, gcBest.Shard, gcOv
	}
	if otherOv > 0 {
		return otherBest.Kind.String(), otherBest.ID, otherBest.Column, otherBest.Shard, otherOv
	}
	durs := sp.StageDurs()
	worst := telemetry.StageDecode
	for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
		if durs[st] > durs[worst] {
			worst = st
		}
	}
	switch worst {
	case telemetry.StageBatch:
		return "batch-deadline", 0, -1, -1, 0
	case telemetry.StageAdmission:
		return "admission", 0, -1, -1, 0
	case telemetry.StageLockWait:
		return "engine-lock", 0, -1, -1, 0
	case telemetry.StageDecode, telemetry.StageRespond:
		return "wire", 0, -1, -1, 0
	default:
		return "engine", 0, -1, -1, 0
	}
}

// lastEstimateNS returns the most recent computed quantile without
// consuming the current window.
func (t *tailMeter) lastEstimateNS() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastQ
}

// TailP999 returns a windowed p999 of end-to-end request latency —
// the tail observed since the previous call, not since the server
// started. It is the feedback signal for the background GC pacer
// (gcsched.Config.P999) and consumes the window, so wire exactly one
// consumer; everything else should read the srv_tail_p999_ns STAT.
// Returns 0 while tracing is disabled or before enough samples arrive.
func (s *Server) TailP999() time.Duration {
	if s.trace == nil {
		return 0
	}
	return time.Duration(s.trace.tail.quantileNS(0.999))
}

// TraceSnapshot returns up to k attributed exemplars with end-to-end
// latency of at least minNS, slowest first, drawn from every live
// connection ring plus retired connections. Returns nil when tracing
// is disabled.
func (s *Server) TraceSnapshot(minNS int64, k int) []Exemplar {
	tr := s.trace
	if tr == nil {
		return nil
	}
	if k <= 0 {
		k = 32
	}
	var spans []*telemetry.Span
	tr.mu.Lock()
	for r := range tr.rings {
		spans = r.Snapshot(spans)
	}
	tr.mu.Unlock()
	spans = tr.retired.Snapshot(spans)
	kept := spans[:0]
	for _, sp := range spans {
		if sp.TotalNS() >= minNS {
			kept = append(kept, sp)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].TotalNS() > kept[j].TotalNS() })
	if len(kept) > k {
		kept = kept[:k]
	}
	ivs := tr.itv.Snapshot()
	sharded := s.eng.Shards() > 1
	out := make([]Exemplar, len(kept))
	for i, sp := range kept {
		ex := Exemplar{Span: sp}
		ex.Cause, ex.CauseID, ex.Column, ex.Shard, ex.OverlapNS = attribute(sp, ivs)
		if ex.Shard < 0 && sharded && int(sp.Volume) < len(s.vols) {
			// No interference window to blame: attribute the request to
			// the shard that served its LBA.
			ex.Shard = int32(s.eng.ShardOf(s.vols[sp.Volume].base + int64(sp.LBA)))
		}
		out[i] = ex
	}
	return out
}

// TraceHandler serves the exemplar dump at /debug/trace as NDJSON.
// Query parameters: k (max exemplars, default 32) and min_ns (latency
// floor, default 0).
func (s *Server) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if s.trace == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		k := 32
		if v := r.URL.Query().Get("k"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				http.Error(w, "bad k", http.StatusBadRequest)
				return
			}
			k = n
		}
		var minNS int64
		if v := r.URL.Query().Get("min_ns"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n < 0 {
				http.Error(w, "bad min_ns", http.StatusBadRequest)
				return
			}
			minNS = n
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, ex := range s.TraceSnapshot(minNS, k) {
			sp := ex.Span
			durs := sp.StageDurs()
			fmt.Fprintf(w, `{"id":%d,"vol":%d,"op":%q,"status":%q,"lba":%d,"blocks":%d,"forced":%v,"start_ns":%d,"total_ns":%d`,
				sp.ID, sp.Volume, wire.Op(sp.Op).String(), wire.Status(sp.Status).String(),
				sp.LBA, sp.Count, sp.Forced, int64(sp.Start), sp.TotalNS())
			for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
				fmt.Fprintf(w, `,"%s_ns":%d`, st, durs[st])
			}
			fmt.Fprintf(w, `,"cause":%q,"cause_id":%d,"column":%d,"shard":%d,"overlap_ns":%d}`+"\n",
				ex.Cause, ex.CauseID, ex.Column, ex.Shard, ex.OverlapNS)
		}
	})
}
