package server

import (
	"adapt/internal/prototype"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// VolumeBackend is the protocol-agnostic surface of the volume
// manager: everything a wire frontend needs to serve block requests
// against the tenant volumes — geometry, blocking admission, the block
// ops with their durability discipline (an acked write is fsync'd when
// a data dir is attached), and the span lifecycle for request tracing.
//
// *Server implements it, and both frontends ride the one
// implementation: the bespoke wire protocol (this package's
// handleConn) and the NBD frontend (internal/nbd) are peers over the
// same volumes, committers, admission semaphores, and trace runtime.
// Writes entering through any frontend coalesce into the same
// per-shard group commits.
//
// Ops return the package's typed sentinels (ErrBadVolume,
// ErrOutOfRange, ErrBadRequest, ErrShuttingDown) so each frontend can
// map failures onto its own wire status space.
type VolumeBackend interface {
	// Volumes is the tenant volume count; VolumeBlocks the per-volume
	// LBA count; BlockBytes the block size every op is denominated in.
	Volumes() int
	VolumeBlocks() int64
	BlockBytes() int

	// Now is the engine clock spans are stamped on.
	Now() sim.Time

	// Acquire takes one of vol's inflight slots, blocking until a slot
	// frees or the server drains (ErrShuttingDown). Each Acquire must
	// be paired with Release after the op's reply is on the wire.
	Acquire(vol uint32) error
	Release(vol uint32)

	// ReadBlocks returns a copy of blocks payload bytes starting at the
	// volume-relative lba, after the engine models the device read.
	ReadBlocks(vol uint32, lba int64, blocks int, sp *telemetry.Span) ([]byte, error)
	// WriteBlocks commits a chunk of block-aligned payload at the
	// volume-relative lba and calls done exactly once when the write is
	// acked — possibly from another goroutine, after the group commit
	// that carried it. An acked write is durable when the server runs
	// with a data dir (fsync-before-ack).
	WriteBlocks(vol uint32, lba int64, payload []byte, sp *telemetry.Span, done func(error))
	// TrimBlocks discards blocks starting at the volume-relative lba.
	TrimBlocks(vol uint32, lba int64, blocks int, sp *telemetry.Span) error
	// Flush is the write barrier: every write acked before the call is
	// durable when it returns (group commits forced, backing file
	// fsync'd).
	Flush(vol uint32, sp *telemetry.Span) error

	// NewSpan starts a request span stamped on the engine clock, or nil
	// when tracing is off (every span argument above is nil-safe).
	// FinishSpan completes it after the response bytes hit the socket,
	// publishing to ring when the span is exemplar-worthy. Rings come
	// from OpenSpanRing per connection and must be retired with
	// CloseSpanRing; both are nil-safe no-ops when tracing is off.
	NewSpan() *telemetry.Span
	FinishSpan(sp *telemetry.Span, ring *telemetry.SpanRing)
	DropSpan(sp *telemetry.Span)
	OpenSpanRing() *telemetry.SpanRing
	CloseSpanRing(r *telemetry.SpanRing)
}

// Server implements VolumeBackend; the compiler holds it to that.
var _ VolumeBackend = (*Server)(nil)

// BlockBytes returns the block size in bytes.
func (s *Server) BlockBytes() int { return s.eng.Config().BlockSize }

// Now returns the engine clock.
func (s *Server) Now() sim.Time { return s.eng.Now() }

// vol resolves a volume ID.
func (s *Server) vol(id uint32) (*volume, error) {
	if id >= uint32(len(s.vols)) {
		return nil, ErrBadVolume
	}
	return s.vols[id], nil
}

// Acquire blocks for one of vol's inflight slots. Unlike the wire
// frontend's fail-fast admit (which maps a full semaphore to
// StatusBackpressure), frontends without a backpressure vocabulary —
// NBD has none — park here and let TCP carry the pushback.
func (s *Server) Acquire(vol uint32) error {
	v, err := s.vol(vol)
	if err != nil {
		return err
	}
	select {
	case v.sem <- struct{}{}:
		if s.draining.Load() {
			<-v.sem
			return ErrShuttingDown
		}
		return nil
	case <-s.drainCh:
		return ErrShuttingDown
	}
}

// Release frees an Acquired slot.
func (s *Server) Release(vol uint32) {
	if v, err := s.vol(vol); err == nil {
		v.release()
	}
}

// ReadBlocks implements VolumeBackend over readCore.
func (s *Server) ReadBlocks(vol uint32, lba int64, blocks int, sp *telemetry.Span) ([]byte, error) {
	v, err := s.vol(vol)
	if err != nil {
		return nil, err
	}
	if blocks < 1 {
		return nil, ErrBadRequest
	}
	if lba < 0 || !v.inRange(uint64(lba), uint32(blocks)) {
		return nil, ErrOutOfRange
	}
	return s.readCore(v, lba, blocks, sp)
}

// WriteBlocks implements VolumeBackend over writeCore. The payload
// must be a whole number of blocks; done owns the payload's fate (it
// may be retained until the group commit fires).
func (s *Server) WriteBlocks(vol uint32, lba int64, payload []byte, sp *telemetry.Span, done func(error)) {
	v, err := s.vol(vol)
	if err != nil {
		done(err)
		return
	}
	blocks := len(payload) / v.blockBytes
	if blocks < 1 || len(payload)%v.blockBytes != 0 {
		done(ErrBadRequest)
		return
	}
	if lba < 0 || !v.inRange(uint64(lba), uint32(blocks)) {
		done(ErrOutOfRange)
		return
	}
	s.writeCore(v, lba, payload, false, sp, done)
}

// TrimBlocks implements VolumeBackend over trimCore.
func (s *Server) TrimBlocks(vol uint32, lba int64, blocks int, sp *telemetry.Span) error {
	v, err := s.vol(vol)
	if err != nil {
		return err
	}
	if blocks < 1 {
		return ErrBadRequest
	}
	if lba < 0 || !v.inRange(uint64(lba), uint32(blocks)) {
		return ErrOutOfRange
	}
	return s.trimCore(v, lba, blocks, sp)
}

// Flush implements VolumeBackend over flushCore.
func (s *Server) Flush(vol uint32, sp *telemetry.Span) error {
	v, err := s.vol(vol)
	if err != nil {
		return err
	}
	return s.flushCore(v, sp)
}

// NewSpan starts a span on the engine clock; nil when tracing is off.
func (s *Server) NewSpan() *telemetry.Span {
	if s.trace == nil {
		return nil
	}
	sp := s.trace.newSpan()
	sp.Start = s.eng.Now()
	return sp
}

// FinishSpan completes a span after its response hit the socket.
func (s *Server) FinishSpan(sp *telemetry.Span, ring *telemetry.SpanRing) {
	if s.trace == nil || sp == nil {
		return
	}
	s.trace.finish(sp, s.eng.Now(), ring)
}

// DropSpan discards an unpublished span (e.g. after a decode error).
func (s *Server) DropSpan(sp *telemetry.Span) {
	if s.trace == nil || sp == nil {
		return
	}
	s.trace.drop(sp)
}

// OpenSpanRing registers a per-connection exemplar ring; nil when
// tracing is off.
func (s *Server) OpenSpanRing() *telemetry.SpanRing {
	if s.trace == nil {
		return nil
	}
	return s.trace.addRing()
}

// CloseSpanRing retires a connection's ring, keeping its exemplars.
func (s *Server) CloseSpanRing(r *telemetry.SpanRing) {
	if s.trace == nil || r == nil {
		return
	}
	s.trace.retireRing(r)
}

// writeCore is the write path shared by every frontend: per-tenant
// accounting, then either the shard's group committer or the direct
// write-through + engine + fsync-before-ack path. done fires exactly
// once with the ack.
func (s *Server) writeCore(vol *volume, lba int64, payload []byte, noBatch bool, sp *telemetry.Span, done func(error)) {
	vol.writes.Add(1)
	vol.writeBlocks.Add(int64(len(payload) / vol.blockBytes))
	s.met.bytesIn.Add(int64(len(payload)))
	if s.committers != nil && !noBatch {
		c := s.committers[s.eng.ShardOf(vol.base+lba)]
		c.enqueue(&commitReq{
			vol:     vol,
			lba:     lba,
			blocks:  len(payload) / vol.blockBytes,
			payload: payload,
			sp:      sp,
			done:    done,
		})
		return
	}
	err := vol.writeData(lba, payload)
	if err == nil {
		if sp != nil {
			var t prototype.OpTiming
			t, err = s.eng.WriteTimed(vol.base+lba, len(payload)/vol.blockBytes)
			markEngine(sp, t)
		} else {
			err = s.eng.Write(vol.base+lba, len(payload)/vol.blockBytes)
		}
	}
	if err == nil {
		// The ack promises durability: the payload's fsync lands first.
		err = vol.syncData()
	}
	done(err)
}

// readCore is the read path shared by every frontend: engine-modelled
// device read, then a copy out of the volume's data plane.
func (s *Server) readCore(vol *volume, lba int64, blocks int, sp *telemetry.Span) ([]byte, error) {
	vol.reads.Add(1)
	vol.readBlocks.Add(int64(blocks))
	var err error
	if sp != nil {
		var t prototype.OpTiming
		t, err = s.eng.ReadTimed(vol.base+lba, blocks)
		markEngine(sp, t)
	} else {
		err = s.eng.Read(vol.base+lba, blocks)
	}
	if err != nil {
		return nil, err
	}
	payload := vol.readData(lba, blocks)
	s.met.bytesOut.Add(int64(len(payload)))
	return payload, nil
}

// trimCore is the trim path shared by every frontend.
func (s *Server) trimCore(vol *volume, lba int64, blocks int, sp *telemetry.Span) error {
	vol.trims.Add(1)
	vol.trimBlocks.Add(int64(blocks))
	if sp != nil {
		t, err := s.eng.TrimTimed(vol.base+lba, blocks)
		markEngine(sp, t)
		return err
	}
	return s.eng.Trim(vol.base+lba, blocks)
}

// flushCore is the flush barrier shared by every frontend: force every
// committer (a volume's writes can land on any shard's committer),
// then fsync the volume's backing file.
func (s *Server) flushCore(vol *volume, sp *telemetry.Span) error {
	vol.flushes.Add(1)
	if s.committers != nil {
		for _, c := range s.committers {
			c.flush()
		}
		if sp != nil {
			// FLUSH waits out the forced group commit; charge it to the
			// batch stage.
			sp.MarkAt(telemetry.StageBatch, s.eng.Now())
		}
	}
	// Belt over the per-ack suspenders: a FLUSH leaves the volume's
	// backing file clean even if a write-through raced the last sync.
	return vol.syncData()
}
