package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"adapt/internal/server/wire"
)

// Typed errors a Client maps non-OK response statuses onto. Callers
// branch with errors.Is; ErrBackpressure in particular is the retry
// signal a well-behaved tenant backs off on.
var (
	ErrBackpressure = errors.New("server: backpressure, retry later")
	ErrShuttingDown = errors.New("server: shutting down")
	ErrBadVolume    = errors.New("server: no such volume")
	ErrOutOfRange   = errors.New("server: lba range outside volume")
	ErrBadRequest   = errors.New("server: bad request")
	ErrRemote       = errors.New("server: internal remote error")
	ErrClientClosed = errors.New("server: client closed")
)

// statusErr wraps one of the sentinels with the server's detail text.
type statusErr struct {
	sentinel error
	detail   string
}

func (e *statusErr) Error() string {
	if e.detail == "" {
		return e.sentinel.Error()
	}
	return fmt.Sprintf("%v: %s", e.sentinel, e.detail)
}

func (e *statusErr) Unwrap() error { return e.sentinel }

func statusError(resp *wire.Response) error {
	var sentinel error
	switch resp.Status {
	case wire.StatusOK:
		return nil
	case wire.StatusBackpressure:
		sentinel = ErrBackpressure
	case wire.StatusShuttingDown:
		sentinel = ErrShuttingDown
	case wire.StatusBadVolume:
		sentinel = ErrBadVolume
	case wire.StatusOutOfRange:
		sentinel = ErrOutOfRange
	case wire.StatusBadRequest:
		sentinel = ErrBadRequest
	default:
		sentinel = ErrRemote
	}
	return &statusErr{sentinel: sentinel, detail: string(resp.Payload)}
}

// Client is one tenant's connection to the block service. It pipelines
// requests: calls from any goroutine are multiplexed over the single
// connection by request ID, and a reader goroutine routes (possibly
// out-of-order) completions back to the callers. All methods are safe
// for concurrent use.
type Client struct {
	conn   net.Conn
	volume uint32

	// blockBytes is the client's view of the server block size for
	// payload-length validation (0 means the 4096 default; set from
	// STAT geometry via SetBlockBytes otherwise).
	blockBytes atomic.Int64

	// traceEvery, when n > 0, sets wire.FlagTrace on every nth request
	// so the server captures its span as an exemplar unconditionally.
	traceEvery atomic.Int64

	nextID atomic.Uint64

	// wch feeds encoded request frames to the writer goroutine, which
	// coalesces frames from concurrent callers into single socket
	// writes (the client-side mirror of the server's response writer).
	// Frame buffers are pooled: the writer returns each to framePool
	// after copying it out.
	wch chan *[]byte

	pmu     sync.Mutex
	pending map[uint64]chan *wire.Response
	readErr error
	closed  bool

	done chan struct{}
}

// Dial connects a client for one volume of the service at addr.
func Dial(addr string, volume uint32) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, volume), nil
}

// NewClient wraps an established connection (used by tests over
// net.Pipe or an already-dialed conn). The client owns conn.
func NewClient(conn net.Conn, volume uint32) *Client {
	c := &Client{
		conn:    conn,
		volume:  volume,
		wch:     make(chan *[]byte, 64),
		pending: make(map[uint64]chan *wire.Response),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	go c.writeLoop()
	return c
}

// framePool recycles request frame buffers between roundtrip (encode)
// and writeLoop (copy to the socket buffer).
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// writeLoop drains queued request frames and writes them with as few
// socket writes as possible. On a write error it closes the connection,
// which fails every outstanding call through readLoop's teardown.
func (c *Client) writeLoop() {
	buf := make([]byte, 0, 64<<10)
	broken := false
	for {
		select {
		case frame := <-c.wch:
			buf = append(buf[:0], *frame...)
			framePool.Put(frame)
		coalesce:
			for len(buf) < 48<<10 {
				select {
				case f := <-c.wch:
					buf = append(buf, *f...)
					framePool.Put(f)
				default:
					break coalesce
				}
			}
			if !broken {
				if _, err := c.conn.Write(buf); err != nil {
					broken = true
					c.conn.Close()
				}
			}
		case <-c.done:
			return
		}
	}
}

// readLoop routes response frames to waiting callers by request ID.
func (c *Client) readLoop() {
	defer close(c.done)
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		resp, err := wire.ReadResponse(br)
		if err != nil {
			c.pmu.Lock()
			if c.readErr == nil {
				if c.closed {
					c.readErr = ErrClientClosed
				} else {
					c.readErr = fmt.Errorf("server: connection lost: %w", err)
				}
			}
			for id, ch := range c.pending {
				delete(c.pending, id)
				close(ch)
			}
			c.pmu.Unlock()
			return
		}
		c.pmu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.pmu.Unlock()
		if ch != nil {
			ch <- &resp
		}
	}
}

// roundtrip sends one request and waits for its completion.
func (c *Client) roundtrip(req *wire.Request) (*wire.Response, error) {
	req.ID = c.nextID.Add(1)
	req.Volume = c.volume
	if n := c.traceEvery.Load(); n > 0 && req.ID%uint64(n) == 0 {
		req.Flags |= wire.FlagTrace
	}
	ch := make(chan *wire.Response, 1)

	c.pmu.Lock()
	if c.closed || c.readErr != nil {
		err := c.readErr
		c.pmu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	c.pending[req.ID] = ch
	c.pmu.Unlock()

	frame := framePool.Get().(*[]byte)
	*frame = wire.AppendRequest((*frame)[:0], req)
	select {
	case c.wch <- frame:
	case <-c.done:
		c.pmu.Lock()
		err := c.readErr
		delete(c.pending, req.ID)
		c.pmu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}

	resp, ok := <-ch
	if !ok {
		c.pmu.Lock()
		err := c.readErr
		c.pmu.Unlock()
		if err == nil {
			err = ErrClientClosed
		}
		return nil, err
	}
	return resp, nil
}

// Write submits blocks of payload at the volume-relative lba, eligible
// for server-side batching.
func (c *Client) Write(lba int64, payload []byte) error {
	return c.write(lba, payload, 0)
}

// WriteSync writes bypassing group commit (FlagNoBatch): it commits
// individually, trading aggregation for the lowest commit latency.
func (c *Client) WriteSync(lba int64, payload []byte) error {
	return c.write(lba, payload, wire.FlagNoBatch)
}

func (c *Client) write(lba int64, payload []byte, flags uint16) error {
	blockBytes, err := c.blockCount(len(payload))
	if err != nil {
		return err
	}
	resp, err := c.roundtrip(&wire.Request{
		Op:      wire.OpWrite,
		Flags:   flags,
		LBA:     uint64(lba),
		Count:   blockBytes,
		Payload: payload,
	})
	if err != nil {
		return err
	}
	return statusError(resp)
}

// blockCount derives the wire block count for a payload. The protocol
// carries the count explicitly and the server re-validates payload
// length against its own geometry, so a stale client-side block size
// fails fast with StatusBadRequest rather than corrupting anything.
func (c *Client) blockCount(payloadLen int) (uint32, error) {
	bb := int(c.blockBytes.Load())
	if bb == 0 {
		bb = 4096
	}
	if payloadLen == 0 || payloadLen%bb != 0 {
		return 0, fmt.Errorf("%w: payload %d bytes not a multiple of %d-byte blocks",
			ErrBadRequest, payloadLen, bb)
	}
	return uint32(payloadLen / bb), nil
}

// Read returns blocks blocks starting at the volume-relative lba.
func (c *Client) Read(lba int64, blocks int) ([]byte, error) {
	resp, err := c.roundtrip(&wire.Request{
		Op:    wire.OpRead,
		LBA:   uint64(lba),
		Count: uint32(blocks),
	})
	if err != nil {
		return nil, err
	}
	if err := statusError(resp); err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// Trim discards blocks starting at the volume-relative lba.
func (c *Client) Trim(lba int64, blocks int) error {
	resp, err := c.roundtrip(&wire.Request{
		Op:    wire.OpTrim,
		LBA:   uint64(lba),
		Count: uint32(blocks),
	})
	if err != nil {
		return err
	}
	return statusError(resp)
}

// Flush forces the volume's pending group commit to the store and
// returns once it is applied.
func (c *Client) Flush() error {
	resp, err := c.roundtrip(&wire.Request{Op: wire.OpFlush})
	if err != nil {
		return err
	}
	return statusError(resp)
}

// Stats fetches the service's STAT table (geometry, engine accounting,
// per-tenant counters).
func (c *Client) Stats() (map[string]int64, error) {
	resp, err := c.roundtrip(&wire.Request{Op: wire.OpStat})
	if err != nil {
		return nil, err
	}
	if err := statusError(resp); err != nil {
		return nil, err
	}
	stats, err := wire.DecodeStats(resp.Payload)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(stats))
	for _, st := range stats {
		out[st.Name] = st.Value
	}
	return out, nil
}

// SetBlockBytes overrides the client's assumed block size (from STAT
// geometry) for payload-length validation.
func (c *Client) SetBlockBytes(n int) { c.blockBytes.Store(int64(n)) }

// SetTraceEvery opts every nth request into server-side exemplar
// capture (wire.FlagTrace); n <= 0 disables.
func (c *Client) SetTraceEvery(n int) { c.traceEvery.Store(int64(n)) }

// Close tears down the connection; outstanding calls fail with
// ErrClientClosed.
func (c *Client) Close() error {
	c.pmu.Lock()
	if c.closed {
		c.pmu.Unlock()
		return nil
	}
	c.closed = true
	c.pmu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}
