// The golden test lives in the external test package so it can
// register both frontends — internal/nbd imports internal/server, so
// an in-package test could not boot the NBD frontend without a cycle.
package server_test

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"adapt/internal/adaptcore"
	"adapt/internal/lss"
	"adapt/internal/nbd"
	"adapt/internal/prototype"
	"adapt/internal/segfile"
	"adapt/internal/server"
	"adapt/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// labelValue matches the ="N" part of an indexed metric family
// instance, e.g. lss_group_blocks_total{group="2"}.
var labelValue = regexp.MustCompile(`="[^"]*"`)

// TestMetricNamesGolden pins the serving stack's metric namespace: it
// boots the deepest stack (store + ADAPT policy + engine + traced
// server + NBD frontend, so every family that path can register does),
// normalizes indexed instances to one entry per family, and diffs
// against the committed golden list. (The proto_degraded_* fault
// families register only on prototype.Run's fault path and are pinned
// by its own tests.) A rename, addition, or removal anywhere in the
// stack fails here until the golden file — and with it DESIGN.md's
// metric table — is updated deliberately (go test ./internal/server
// -run MetricNames -update).
func TestMetricNamesGolden(t *testing.T) {
	cfg := lss.Config{
		BlockSize:     64,
		ChunkBlocks:   8,
		SegmentChunks: 4,
		UserBlocks:    4096,
		OverProvision: 0.25,
	}
	pol := adaptcore.New(adaptcore.Config{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.SegmentBlocks(),
		ChunkBlocks:   cfg.ChunkBlocks,
		OverProvision: cfg.OverProvision,
	}, adaptcore.Options{SampleRate: 0.5})
	ts := telemetry.New(telemetry.Options{})
	eng, err := prototype.NewEngine(prototype.EngineConfig{
		Store:       cfg,
		Policy:      pol,
		ServiceTime: time.Microsecond,
		Telemetry:   ts,
		// A durable backend registers the lss_durable_* families; the
		// golden pins them alongside the rest of the namespace.
		Durable: &segfile.Options{Dir: t.TempDir(), Sync: segfile.SyncOnSeal},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv, err := server.New(server.Config{
		Engine:    eng,
		Volumes:   2,
		Telemetry: ts,
		Trace:     server.TraceConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nbd.New(nbd.Config{Backend: srv, Telemetry: ts}); err != nil {
		t.Fatal(err)
	}

	seen := make(map[string]bool)
	var families []string
	for _, name := range ts.Registry.Names() {
		fam := labelValue.ReplaceAllString(name, "")
		if !seen[fam] {
			seen[fam] = true
			families = append(families, fam)
		}
	}
	sort.Strings(families)
	got := strings.Join(families, "\n") + "\n"

	goldenPath := filepath.Join("testdata", "metric_names.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric families drifted from %s (run with -update after syncing DESIGN.md):\ngot:\n%swant:\n%s",
			goldenPath, got, want)
	}
}
