// Package fenwick implements a Fenwick (binary indexed) tree over
// int64 counts. It is the order-statistic backbone of the reuse
// distance tracker ("distance tree" in the paper, §3.2): insertions,
// removals, and suffix counts in O(log n).
package fenwick

// Tree is a Fenwick tree over positions [0, n). The zero value is not
// usable; construct with New.
type Tree struct {
	tree  []int64
	n     int
	total int64
}

// New returns a tree covering positions [0, n).
func New(n int) *Tree {
	if n < 0 {
		panic("fenwick: negative size")
	}
	return &Tree{tree: make([]int64, n+1), n: n}
}

// Len returns the number of positions covered.
func (t *Tree) Len() int { return t.n }

// Total returns the sum over all positions.
func (t *Tree) Total() int64 { return t.total }

// Add adds delta at position i.
func (t *Tree) Add(i int, delta int64) {
	if i < 0 || i >= t.n {
		panic("fenwick: index out of range")
	}
	t.total += delta
	for i++; i <= t.n; i += i & (-i) {
		t.tree[i] += delta
	}
}

// PrefixSum returns the sum of positions [0, i]. PrefixSum(-1) is 0.
func (t *Tree) PrefixSum(i int) int64 {
	if i >= t.n {
		i = t.n - 1
	}
	var s int64
	for i++; i > 0; i -= i & (-i) {
		s += t.tree[i]
	}
	return s
}

// RangeSum returns the sum over [lo, hi] inclusive.
func (t *Tree) RangeSum(lo, hi int) int64 {
	if hi < lo {
		return 0
	}
	return t.PrefixSum(hi) - t.PrefixSum(lo-1)
}

// SuffixSum returns the sum over positions (i, n), i.e. strictly after i.
func (t *Tree) SuffixSum(i int) int64 {
	return t.total - t.PrefixSum(i)
}

// FindKth returns the smallest position p such that PrefixSum(p) >= k,
// for k in [1, Total()]. It returns -1 if no such position exists.
// All stored values must be non-negative for this to be meaningful.
func (t *Tree) FindKth(k int64) int {
	if k <= 0 || k > t.total {
		return -1
	}
	pos := 0
	// Highest power of two <= n.
	bit := 1
	for bit<<1 <= t.n {
		bit <<= 1
	}
	rem := k
	for ; bit > 0; bit >>= 1 {
		next := pos + bit
		if next <= t.n && t.tree[next] < rem {
			rem -= t.tree[next]
			pos = next
		}
	}
	if pos >= t.n {
		return -1
	}
	return pos // pos is 0-based: prefix through index pos reaches k
}
