package fenwick

import (
	"testing"
	"testing/quick"

	"adapt/internal/sim"
)

func TestEmpty(t *testing.T) {
	tr := New(0)
	if got := tr.PrefixSum(5); got != 0 {
		t.Fatalf("PrefixSum on empty tree = %d, want 0", got)
	}
	if got := tr.Total(); got != 0 {
		t.Fatalf("Total on empty tree = %d, want 0", got)
	}
	if got := tr.FindKth(1); got != -1 {
		t.Fatalf("FindKth on empty tree = %d, want -1", got)
	}
}

func TestBasicSums(t *testing.T) {
	tr := New(10)
	for i := 0; i < 10; i++ {
		tr.Add(i, int64(i+1)) // values 1..10
	}
	if got := tr.Total(); got != 55 {
		t.Fatalf("Total = %d, want 55", got)
	}
	if got := tr.PrefixSum(0); got != 1 {
		t.Fatalf("PrefixSum(0) = %d, want 1", got)
	}
	if got := tr.PrefixSum(9); got != 55 {
		t.Fatalf("PrefixSum(9) = %d, want 55", got)
	}
	if got := tr.PrefixSum(-1); got != 0 {
		t.Fatalf("PrefixSum(-1) = %d, want 0", got)
	}
	if got := tr.RangeSum(3, 5); got != 4+5+6 {
		t.Fatalf("RangeSum(3,5) = %d, want 15", got)
	}
	if got := tr.RangeSum(5, 3); got != 0 {
		t.Fatalf("RangeSum(5,3) = %d, want 0", got)
	}
	if got := tr.SuffixSum(7); got != 9+10 {
		t.Fatalf("SuffixSum(7) = %d, want 19", got)
	}
	if got := tr.SuffixSum(-1); got != 55 {
		t.Fatalf("SuffixSum(-1) = %d, want 55", got)
	}
}

func TestAddNegativeDelta(t *testing.T) {
	tr := New(4)
	tr.Add(2, 5)
	tr.Add(2, -5)
	if got := tr.Total(); got != 0 {
		t.Fatalf("Total after add/remove = %d, want 0", got)
	}
	if got := tr.PrefixSum(3); got != 0 {
		t.Fatalf("PrefixSum(3) = %d, want 0", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	tr := New(4)
	for _, idx := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", idx)
				}
			}()
			tr.Add(idx, 1)
		}()
	}
}

func TestFindKth(t *testing.T) {
	tr := New(8)
	// Occupied positions: 1, 3, 6 (count 1 each).
	for _, p := range []int{1, 3, 6} {
		tr.Add(p, 1)
	}
	cases := []struct {
		k    int64
		want int
	}{
		{1, 1}, {2, 3}, {3, 6}, {4, -1}, {0, -1},
	}
	for _, c := range cases {
		if got := tr.FindKth(c.k); got != c.want {
			t.Errorf("FindKth(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

// naive is the reference implementation for the property test.
type naive struct{ v []int64 }

func (n *naive) add(i int, d int64) { n.v[i] += d }
func (n *naive) prefix(i int) int64 {
	var s int64
	for j := 0; j <= i && j < len(n.v); j++ {
		s += n.v[j]
	}
	return s
}

func TestQuickAgainstNaive(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		const n = 64
		tr := New(n)
		ref := &naive{v: make([]int64, n)}
		rng := sim.NewRNG(seed)
		for _, op := range ops {
			i := int(op) % n
			d := rng.Int63n(21) - 10
			tr.Add(i, d)
			ref.add(i, d)
		}
		for i := -1; i < n; i++ {
			if tr.PrefixSum(i) != ref.prefix(i) {
				return false
			}
		}
		return tr.Total() == ref.prefix(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFindKthQuick(t *testing.T) {
	f := func(positions []uint16) bool {
		const n = 128
		tr := New(n)
		present := make(map[int]bool)
		for _, p := range positions {
			i := int(p) % n
			if !present[i] {
				present[i] = true
				tr.Add(i, 1)
			}
		}
		// Sorted occupied positions must match FindKth(1..count).
		var k int64
		for i := 0; i < n; i++ {
			if present[i] {
				k++
				if got := tr.FindKth(k); got != i {
					return false
				}
			}
		}
		return tr.FindKth(k+1) == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	tr := New(1 << 20)
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Add(rng.Intn(1<<20), 1)
	}
}

func BenchmarkPrefixSum(b *testing.B) {
	tr := New(1 << 20)
	rng := sim.NewRNG(1)
	for i := 0; i < 1<<16; i++ {
		tr.Add(rng.Intn(1<<20), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.PrefixSum(rng.Intn(1 << 20))
	}
}
