package adaptcore

import (
	"testing"

	"adapt/internal/lss"
	"adapt/internal/sim"
)

func testConfig() Config {
	return Config{UserBlocks: 4096, SegmentBlocks: 32, ChunkBlocks: 4, OverProvision: 0.25}
}

func testOptions() Options {
	return Options{SampleRate: 1, Ladder: 5, DemotePerFilter: 64}
}

func TestGroupLayout(t *testing.T) {
	p := New(testConfig(), testOptions())
	if p.Groups() != 6 {
		t.Fatalf("Groups = %d, want 6", p.Groups())
	}
	if p.Name() != "adapt" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestUserSeparationHotCold(t *testing.T) {
	p := New(testConfig(), testOptions())
	// First write: cold.
	if g := p.PlaceUser(1, 0, 100); g != GroupCold {
		t.Fatalf("first write in group %d, want cold", g)
	}
	// Quick rewrite: hot (threshold starts at UserBlocks/4 = 1024).
	if g := p.PlaceUser(1, 0, 110); g != GroupHot {
		t.Fatalf("quick rewrite in group %d, want hot", g)
	}
	// Rewrite far beyond the threshold: cold.
	if g := p.PlaceUser(1, 0, 110+4096); g != GroupCold {
		t.Fatalf("slow rewrite in group %d, want cold", g)
	}
}

func TestGCClasses(t *testing.T) {
	p := New(testConfig(), testOptions())
	tau := sim.WriteClock(p.Threshold())
	// Hot-origin blocks go to the first GC group regardless of age.
	if g := p.PlaceGC(5, GroupHot, 0, 0, 10*tau); g != FirstGCGroup {
		t.Fatalf("hot-origin GC block in group %d", g)
	}
	// Cold-origin blocks bin by age.
	p.PlaceUser(7, 0, 1000)
	cases := []struct {
		clock sim.WriteClock
		want  lss.GroupID
	}{
		{1000 + tau/2, FirstGCGroup + 1},
		{1000 + 2*tau, FirstGCGroup + 2},
		{1000 + 8*tau, FirstGCGroup + 3},
	}
	for _, c := range cases {
		if g := p.PlaceGC(7, GroupCold, 0, 0, c.clock); g != c.want {
			t.Errorf("age %d → group %d, want %d", int64(c.clock)-1000, g, c.want)
		}
	}
}

func TestProactiveDemotion(t *testing.T) {
	p := New(testConfig(), testOptions())
	const lba = 42
	target := FirstGCGroup + 1
	p.PlaceUser(lba, 0, 0)
	// Simulate the block repeatedly migrating back into the same GC
	// group: each repeat inserts into the discriminator. The cascade
	// epochs are small (DemotePerFilter=64), so fill epochs between
	// insertions to spread them over filters.
	for epoch := 0; epoch < 3; epoch++ {
		if g := p.PlaceGC(lba, target, 0, 0, sim.WriteClock(100+epoch)); g != target {
			t.Fatalf("migration placed in %d, want %d (age below threshold)", g, target)
		}
		for i := int64(0); i < 64; i++ {
			p.dm.onRepeatMigration(10000+i, target) // filler inserts
		}
	}
	// With score >= 2 epochs, a user write must demote directly.
	g := p.PlaceUser(lba, 0, 200)
	if g != target {
		t.Fatalf("user write in group %d, want proactive demotion to %d", g, target)
	}
	if p.Demotions() == 0 {
		t.Fatal("demotion counter not incremented")
	}
}

func TestDemotionDisabled(t *testing.T) {
	opts := testOptions()
	opts.DisableDemotion = true
	p := New(testConfig(), opts)
	const lba = 42
	target := FirstGCGroup + 1
	p.PlaceUser(lba, 0, 0)
	for epoch := 0; epoch < 4; epoch++ {
		p.PlaceGC(lba, target, 0, 0, sim.WriteClock(100+epoch))
	}
	if g := p.PlaceUser(lba, 0, 200); g != GroupHot {
		// age 200 < threshold 1024 → hot; it must NOT demote.
		t.Fatalf("disabled demotion still placed in group %d", g)
	}
}

func TestGhostSetBasics(t *testing.T) {
	g := newGhostSet(4, 4, 8)
	// Fill with distinct blocks: all first accesses go cold.
	for i := int64(0); i < 16; i++ {
		g.access(i, -1)
	}
	if g.written != 16 {
		t.Fatalf("written = %d", g.written)
	}
	// Re-access with small interval: hot group.
	g.access(0, 1)
	hotSegs := 0
	for _, seg := range g.segs {
		if seg.hot {
			hotSegs++
		}
	}
	if hotSegs == 0 {
		t.Fatal("no hot segment created for short-interval access")
	}
}

func TestGhostSetGCDiscards(t *testing.T) {
	g := newGhostSet(2, 4, 4)
	// Write far more than capacity; GC must trigger and discard.
	for i := int64(0); i < 200; i++ {
		g.access(i%50, -1)
	}
	if g.gcs == 0 {
		t.Fatal("ghost GC never triggered")
	}
	if len(g.segs) > g.maxSegs {
		t.Fatalf("ghost set over capacity: %d > %d", len(g.segs), g.maxSegs)
	}
	if g.wa() < 0 {
		t.Fatalf("negative ghost WA %f", g.wa())
	}
}

func TestGhostSetMappingConsistency(t *testing.T) {
	g := newGhostSet(8, 4, 6)
	rng := sim.NewRNG(5)
	for i := 0; i < 2000; i++ {
		g.access(rng.Int63n(40), rng.Int63n(20)-1)
	}
	// Every mapping entry must point at a live segment slot holding
	// the same LBA, and per-segment valid counts must agree.
	recount := make(map[*ghostSeg]int)
	for lba, loc := range g.mapping {
		if int(loc.slot) >= len(loc.seg.lbas) || loc.seg.lbas[loc.slot] != lba {
			t.Fatalf("mapping for %d points at wrong slot", lba)
		}
		recount[loc.seg]++
	}
	for _, seg := range g.segs {
		if seg.valid != recount[seg] {
			t.Fatalf("segment valid=%d recount=%d", seg.valid, recount[seg])
		}
	}
}

func TestThresholdAdaptationMovesThreshold(t *testing.T) {
	// Skewed stream: 20% of blocks take 90% of writes. The ghost
	// ladder should find a threshold and adopt it at least once.
	cfg := testConfig()
	opts := testOptions()
	p := New(cfg, opts)
	rng := sim.NewRNG(7)
	w := sim.WriteClock(0)
	for i := 0; i < 60000; i++ {
		var lba int64
		if rng.Float64() < 0.9 {
			lba = rng.Int63n(cfg.UserBlocks / 5)
		} else {
			lba = rng.Int63n(cfg.UserBlocks)
		}
		p.PlaceUser(lba, 0, w)
		w++
	}
	if p.Adoptions() == 0 {
		t.Fatal("ghost simulation never adopted a threshold")
	}
	if p.Threshold() <= 0 {
		t.Fatalf("non-positive threshold %f", p.Threshold())
	}
}

func TestAggregatorDecisions(t *testing.T) {
	a := newAggregator(GroupHot, GroupCold, 16)
	snaps := make([]lss.GroupSnapshot, NumGroups)
	for i := range snaps {
		snaps[i].Group = lss.GroupID(i)
		snaps[i].OpenFree = 16
	}
	// Hot timeout with 3 unpersisted blocks, cold group has space and
	// history of large paddings: shadow into cold.
	snaps[GroupHot].OpenUnpersisted = 3
	snaps[GroupHot].OpenPending = 3
	snaps[GroupCold].PaddingBlocks = 120
	snaps[GroupCold].PaddingEvents = 10 // avg pad 12 ≥ 3
	act := a.OnChunkTimeout(GroupHot, 0, snaps)
	if act.Kind != lss.ShadowInto || act.Target != GroupCold {
		t.Fatalf("expected ShadowInto cold, got %+v", act)
	}
	// Oversized hot pending (needs 14 > avg pad 12): decline, pad own
	// with cold as donor.
	snaps[GroupHot].OpenUnpersisted = 14
	act = a.OnChunkTimeout(GroupHot, 0, snaps)
	if act.Kind != lss.PadOwn || len(act.Donors) != 1 || act.Donors[0] != GroupCold {
		t.Fatalf("expected PadOwn with cold donor, got %+v", act)
	}
	// Cold timeout: hot donates into the padding space.
	act = a.OnChunkTimeout(GroupCold, 0, snaps)
	if act.Kind != lss.PadOwn || len(act.Donors) != 1 || act.Donors[0] != GroupHot {
		t.Fatalf("expected PadOwn with hot donor, got %+v", act)
	}
	// GC-group timeout: plain padding.
	act = a.OnChunkTimeout(FirstGCGroup, 0, snaps)
	if act.Kind != lss.PadOwn || act.Donors != nil {
		t.Fatalf("expected plain PadOwn for GC group, got %+v", act)
	}
}

func TestFootprintAccounting(t *testing.T) {
	p := New(testConfig(), testOptions())
	if p.Footprint() <= 0 {
		t.Fatal("ADAPT footprint must be positive")
	}
	if p.BaseFootprint() != 4096*8 {
		t.Fatalf("BaseFootprint = %d", p.BaseFootprint())
	}
	// Feeding writes grows the sampler/ghost footprint.
	before := p.Footprint()
	for i := int64(0); i < 2000; i++ {
		p.PlaceUser(i, 0, sim.WriteClock(i))
	}
	if p.Footprint() <= before {
		t.Fatal("footprint did not grow with tracked blocks")
	}
}

// TestADAPTDrivesStore runs the full policy against the real store on
// a sparse skewed workload and checks the machinery engages: shadow
// appends happen, padding is incurred but bounded, data survives.
func TestADAPTDrivesStore(t *testing.T) {
	cfg := lss.Config{
		UserBlocks:    4096,
		ChunkBlocks:   4,
		SegmentChunks: 8,
		OverProvision: 0.25,
		SLAWindow:     100 * sim.Microsecond,
	}
	p := New(Config{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.SegmentBlocks(),
		ChunkBlocks:   cfg.ChunkBlocks,
		OverProvision: cfg.OverProvision,
	}, Options{SampleRate: 0.5, Ladder: 5, DemotePerFilter: 256})
	s := lss.New(cfg, p)
	rng := sim.NewRNG(21)
	for i := int64(0); i < cfg.UserBlocks; i++ {
		if err := s.WriteBlock(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	now := sim.Time(0)
	for i := 0; i < int(cfg.UserBlocks)*8; i++ {
		// Sparse arrivals: half the gaps exceed the SLA window.
		now += sim.Time(rng.Int63n(300)) * sim.Microsecond
		var lba int64
		if rng.Float64() < 0.8 {
			lba = rng.Int63n(cfg.UserBlocks / 5)
		} else {
			lba = rng.Int63n(cfg.UserBlocks)
		}
		if err := s.WriteBlock(lba, now); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain(now + sim.Second)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := s.LiveBlocks(); got != cfg.UserBlocks {
		t.Fatalf("LiveBlocks = %d, want %d", got, cfg.UserBlocks)
	}
	m := s.Metrics()
	if m.WA() < 1 {
		t.Fatalf("WA = %f < 1", m.WA())
	}
	t.Logf("ADAPT on sparse skewed load: %s shadowGrants=%d demotions=%d adoptions=%d",
		m, p.ShadowGrants(), p.Demotions(), p.Adoptions())
}

// TestADAPTShadowReducesPadding compares ADAPT with and without
// cross-group aggregation on the same sparse workload: aggregation
// must not increase padding, and normally reduces it.
func TestADAPTShadowReducesPadding(t *testing.T) {
	run := func(disable bool) (*lss.Metrics, *Policy) {
		cfg := lss.Config{
			UserBlocks:    4096,
			ChunkBlocks:   4,
			SegmentChunks: 8,
			OverProvision: 0.25,
			SLAWindow:     100 * sim.Microsecond,
		}
		p := New(Config{
			UserBlocks:    cfg.UserBlocks,
			SegmentBlocks: cfg.SegmentBlocks(),
			ChunkBlocks:   cfg.ChunkBlocks,
			OverProvision: cfg.OverProvision,
		}, Options{SampleRate: 0.5, Ladder: 5, DemotePerFilter: 256, DisableAggregation: disable})
		s := lss.New(cfg, p)
		rng := sim.NewRNG(33)
		now := sim.Time(0)
		for i := 0; i < 30000; i++ {
			now += sim.Time(rng.Int63n(400)) * sim.Microsecond
			var lba int64
			if rng.Float64() < 0.7 {
				lba = rng.Int63n(cfg.UserBlocks / 8)
			} else {
				lba = rng.Int63n(cfg.UserBlocks)
			}
			if err := s.WriteBlock(lba, now); err != nil {
				t.Fatal(err)
			}
		}
		s.Drain(now + sim.Second)
		return s.Metrics(), p
	}
	with, pol := run(false)
	without, _ := run(true)
	if pol.ShadowGrants() == 0 {
		t.Fatal("aggregation never engaged on a sparse workload")
	}
	if with.PaddingBlocks > without.PaddingBlocks {
		t.Fatalf("aggregation increased padding: %d > %d",
			with.PaddingBlocks, without.PaddingBlocks)
	}
	t.Logf("padding with aggregation %d, without %d (shadow=%d)",
		with.PaddingBlocks, without.PaddingBlocks, with.ShadowBlocks)
}
