package adaptcore

import (
	"adapt/internal/bloom"
	"adapt/internal/lss"
)

// demoter implements proactive demotion placement (§3.4). Each
// GC-rewritten group owns a cascading discriminator (a FIFO ring of
// Bloom filters). During GC, valid blocks that migrate back into their
// origin GC group are inserted into that group's discriminator — such
// blocks demonstrably live about as long as that group's segments. On
// a user write, the re-access (RA) score of the LBA against each
// group's discriminator counts how many recent epochs re-confirmed the
// block's residency; a score at or above the threshold demotes the
// block straight into that GC group, skipping the user-written groups
// and the migrations it would otherwise take to get there.
type demoter struct {
	cascades  []*bloom.Cascade
	firstGC   lss.GroupID // GroupID of the first GC-rewritten group
	scoreMin  int
	lookups   int64
	demotions int64
}

// newDemoter builds discriminators for the GC groups
// [firstGC, firstGC+n).
func newDemoter(firstGC lss.GroupID, n, depth, perFilter, scoreMin int) *demoter {
	if depth < 1 {
		depth = 4
	}
	if perFilter < 16 {
		perFilter = 16
	}
	if scoreMin < 1 {
		scoreMin = 2
	}
	d := &demoter{
		cascades: make([]*bloom.Cascade, n),
		firstGC:  firstGC,
		scoreMin: scoreMin,
	}
	for i := range d.cascades {
		d.cascades[i] = bloom.NewCascade(depth, perFilter, 0.01)
	}
	return d
}

// onRepeatMigration records that GC migrated lba back into GC group g.
func (d *demoter) onRepeatMigration(lba int64, g lss.GroupID) {
	idx := int(g - d.firstGC)
	if idx < 0 || idx >= len(d.cascades) {
		return
	}
	d.cascades[idx].Insert(lba)
}

// check scores lba against every discriminator and returns the GC
// group to demote into, if any score reaches the threshold. Ties go to
// the colder (higher-indexed) group, whose segments live longest.
func (d *demoter) check(lba int64) (lss.GroupID, bool) {
	d.lookups++
	bestIdx, bestScore := -1, 0
	for i, c := range d.cascades {
		if s := c.Score(lba); s >= bestScore && s > 0 {
			bestIdx, bestScore = i, s
		}
	}
	if bestIdx >= 0 && bestScore >= d.scoreMin {
		d.demotions++
		return d.firstGC + lss.GroupID(bestIdx), true
	}
	return lss.NoGroup, false
}

// footprint returns the discriminators' memory use in bytes.
func (d *demoter) footprint() int64 {
	var n int64
	for _, c := range d.cascades {
		n += c.Footprint()
	}
	return n
}
