// Package adaptcore implements ADAPT (§3): density-aware threshold
// adaptation over ghost-set simulations, cross-group dynamic
// aggregation of sparse hot writes, and proactive demotion placement
// through cascading Bloom discriminators. The package provides an
// lss.Policy (plus the lss.Advisor and lss.SegmentObserver hooks) that
// drops into the same store as the baselines.
package adaptcore

// ghostLoc addresses a slot inside a ghost segment.
type ghostLoc struct {
	seg  *ghostSeg
	slot int32
}

// ghostSeg is an LBA-only segment: it records which sampled LBAs were
// appended, never their data.
type ghostSeg struct {
	lbas   []int64
	valid  int
	sealed bool
	hot    bool
}

// ghostSet simulates the user-written groups of the store under one
// candidate hot/cold threshold (§3.2). It tracks only sampled LBAs;
// segments are proportionally scaled by the sampling rate. GC discards
// valid blocks instead of rewriting them (in the real system they
// would migrate to GC-rewritten groups, leaving the user groups), and
// WA is the ratio of discarded to written blocks.
type ghostSet struct {
	threshold int64 // hot iff unique sampled interval < threshold
	segCap    int   // blocks per ghost segment
	maxSegs   int   // capacity limit that triggers ghost GC

	segs    []*ghostSeg  // live segments, in allocation order
	open    [2]*ghostSeg // open segment per group: 0 hot, 1 cold
	mapping map[int64]ghostLoc

	written   int64
	discarded int64
	gcs       int64
}

// newGhostSet builds a ghost set. segCap is the scaled segment size in
// sampled blocks; maxSegs bounds the ghost capacity (deriving from the
// real store's user-group share of capacity, scaled by the rate).
func newGhostSet(threshold int64, segCap, maxSegs int) *ghostSet {
	if segCap < 1 {
		segCap = 1
	}
	if maxSegs < 4 {
		maxSegs = 4
	}
	if threshold < 1 {
		threshold = 1
	}
	return &ghostSet{
		threshold: threshold,
		segCap:    segCap,
		maxSegs:   maxSegs,
		mapping:   make(map[int64]ghostLoc),
	}
}

// access records a sampled write with the given unique-interval (use
// a negative value for first accesses, which classify cold).
func (g *ghostSet) access(lba, interval int64) {
	grp := 1
	if interval >= 0 && interval < g.threshold {
		grp = 0
	}
	// Invalidate the previous location.
	if loc, ok := g.mapping[lba]; ok {
		loc.seg.valid--
	}
	seg := g.open[grp]
	if seg == nil || seg.sealed {
		seg = &ghostSeg{lbas: make([]int64, 0, g.segCap), hot: grp == 0}
		g.segs = append(g.segs, seg)
		g.open[grp] = seg
	}
	seg.lbas = append(seg.lbas, lba)
	g.mapping[lba] = ghostLoc{seg: seg, slot: int32(len(seg.lbas) - 1)}
	seg.valid++
	if len(seg.lbas) == g.segCap {
		seg.sealed = true
	}
	g.written++
	for len(g.segs) > g.maxSegs {
		if !g.gc() {
			break
		}
	}
}

// gc discards the sealed segment with the fewest valid blocks (greedy,
// matching the store's default) and counts its valid blocks as
// would-be migrations. Returns false if no sealed segment exists.
func (g *ghostSet) gc() bool {
	victim := -1
	best := g.segCap + 1
	for i, seg := range g.segs {
		if !seg.sealed {
			continue
		}
		if seg.valid < best {
			victim, best = i, seg.valid
		}
	}
	if victim < 0 {
		return false
	}
	seg := g.segs[victim]
	for slot, lba := range seg.lbas {
		loc, ok := g.mapping[lba]
		if ok && loc.seg == seg && loc.slot == int32(slot) {
			delete(g.mapping, lba)
			g.discarded++
		}
	}
	g.segs = append(g.segs[:victim], g.segs[victim+1:]...)
	g.gcs++
	return true
}

// wa returns the ghost WA measure: discarded valid blocks per written
// block (§3.2). Lower is better.
func (g *ghostSet) wa() float64 {
	if g.written == 0 {
		return 0
	}
	return float64(g.discarded) / float64(g.written)
}

// settled reports whether the set has experienced enough GC activity
// for its WA to be meaningful.
func (g *ghostSet) settled(minGCs int64) bool { return g.gcs >= minGCs }

// footprint estimates memory use: ≈20 bytes per simulated block
// (§4.4: LBA record plus index entry).
func (g *ghostSet) footprint() int64 {
	var blocks int64
	for _, seg := range g.segs {
		blocks += int64(len(seg.lbas))
	}
	return blocks*8 + int64(len(g.mapping))*48
}
