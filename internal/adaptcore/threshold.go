package adaptcore

import (
	"adapt/internal/sampling"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// thresholdAdapter implements density-aware threshold adaptation
// (§3.2): it spatially samples the user write stream, replays the
// sampled sub-stream through a ladder of ghost sets with candidate
// thresholds, and periodically adopts the threshold whose ghost WA is
// lowest, rescaled to real write-clock units.
type thresholdAdapter struct {
	sampler *sampling.Sampler
	sets    []*ghostSet

	rate    float64
	unit    int64 // threshold step = ghost segment capacity
	segCap  int
	maxSegs int
	ladder  int

	realThreshold float64 // hot/cold boundary in raw write-clock blocks
	expMode       bool    // exponential ladder vs linear refinement
	adoptions     int64
	writesSince   int64
	adoptEvery    int64
	minGCs        int64
	coldStart     bool // realThreshold still from the initial heuristic

	tracer *telemetry.Tracer // nil-safe adoption tracing
}

// newThresholdAdapter sizes the adapter from store geometry.
// capacityShare is the fraction of physical capacity the user-written
// groups are assumed to occupy (Observation 4: GC groups dominate).
func newThresholdAdapter(rate float64, ladder int, userBlocks int64, segBlocks int, overProvision, capacityShare float64) *thresholdAdapter {
	if ladder < 3 {
		ladder = 3
	}
	if rate <= 0 || rate > 1 {
		rate = 0.01
	}
	segCap := int(float64(segBlocks) * rate)
	if segCap < 1 {
		segCap = 1
	}
	maxSegs := int(float64(userBlocks) * rate * (1 + overProvision) * capacityShare / float64(segCap))
	if maxSegs < 8 {
		maxSegs = 8
	}
	ta := &thresholdAdapter{
		sampler:       sampling.NewSampler(rate),
		rate:          rate,
		unit:          int64(segCap),
		segCap:        segCap,
		maxSegs:       maxSegs,
		ladder:        ladder,
		realThreshold: float64(userBlocks) / 4, // cold-start heuristic
		expMode:       true,
		adoptEvery:    userBlocks / 10,
		minGCs:        4,
		coldStart:     true,
	}
	if ta.adoptEvery < 1 {
		ta.adoptEvery = 1
	}
	ta.buildLadder(ta.unit)
	return ta
}

// buildLadder constructs fresh ghost sets around center. In
// exponential mode thresholds double per rung starting at center; in
// linear mode they step by one unit around center.
func (ta *thresholdAdapter) buildLadder(center int64) {
	if center < 1 {
		center = 1
	}
	ta.sets = make([]*ghostSet, ta.ladder)
	half := ta.ladder / 2
	for i := range ta.sets {
		var t int64
		if ta.expMode {
			shift := i - half
			t = center
			for s := 0; s < shift; s++ {
				t *= 2
			}
			for s := 0; s > shift; s-- {
				t /= 2
			}
		} else {
			t = center + int64(i-half)*ta.unit
		}
		if t < 1 {
			t = 1
		}
		ta.sets[i] = newGhostSet(t, ta.segCap, ta.maxSegs)
	}
}

// offer feeds one user write into the sampler and ghost sets, and
// adopts a new threshold when the simulation is trustworthy (write
// volume over 10% of capacity, or every set's WA has stabilized).
func (ta *thresholdAdapter) offer(lba int64, now sim.Time) {
	s := ta.sampler.Offer(lba)
	if s.Sampled {
		iv := int64(-1)
		if !s.First {
			iv = s.UniqueSampled
		}
		for _, set := range ta.sets {
			set.access(lba, iv)
		}
	}
	ta.writesSince++
	settled := true
	for _, set := range ta.sets {
		if !set.settled(ta.minGCs) {
			settled = false
			break
		}
	}
	if settled || ta.writesSince >= ta.adoptEvery {
		ta.adopt(now)
	}
}

// adopt applies the best ghost configuration (§3.2, "updating
// threshold configuration") and re-spans the ladder.
func (ta *thresholdAdapter) adopt(now sim.Time) {
	ta.writesSince = 0
	best, any := 0, false
	for i, set := range ta.sets {
		if set.gcs == 0 {
			continue
		}
		if !any || set.wa() < ta.sets[best].wa() {
			best, any = i, true
		}
	}
	if !any {
		return // no GC signal yet: keep the current threshold
	}
	bestT := ta.sets[best].threshold
	// Scale sampled-unique units to real write-clock blocks: divide by
	// the rate, then convert unique intervals to raw intervals using
	// the sampler's measured duplicate ratio.
	ta.realThreshold = float64(bestT) / ta.rate * ta.sampler.RawPerUnique()
	ta.coldStart = false
	ta.adoptions++
	ta.tracer.Emit(telemetry.ThresholdAdapt(now, ta.realThreshold, ta.adoptions))

	// Monotone WA across the ladder means the optimum lies beyond the
	// window: keep (or return to) the exponential span to move fast.
	ta.expMode = ta.monotone() || best == 0 || best == len(ta.sets)-1
	ta.buildLadder(bestT)
}

// monotone reports whether ghost WA is strictly monotonic in the
// threshold across the ladder.
func (ta *thresholdAdapter) monotone() bool {
	inc, dec := true, true
	for i := 1; i < len(ta.sets); i++ {
		a, b := ta.sets[i-1].wa(), ta.sets[i].wa()
		if b < a {
			inc = false
		}
		if b > a {
			dec = false
		}
	}
	return inc || dec
}

// seedInitial sets the cold-start threshold from an observed hot-group
// segment lifespan (§3.2: "configure the initial threshold via the
// lifespan of segments in the hot group"). Ignored after the first
// ghost adoption.
func (ta *thresholdAdapter) seedInitial(lifespan float64) {
	if ta.coldStart && lifespan > 0 {
		ta.realThreshold = lifespan
	}
}

// threshold returns the current hot/cold boundary in raw write-clock
// blocks.
func (ta *thresholdAdapter) threshold() float64 { return ta.realThreshold }

// footprint returns the adapter's memory use in bytes.
func (ta *thresholdAdapter) footprint() int64 {
	n := ta.sampler.Footprint()
	for _, set := range ta.sets {
		n += set.footprint()
	}
	return n
}
