package adaptcore

import (
	"adapt/internal/lss"
	"adapt/internal/sim"
)

// aggregator implements cross-group dynamic aggregation (§3.3). On an
// SLA timeout of the hot user group's open chunk it decides whether to
// shadow-append the unpersisted hot blocks into the cold user group's
// open chunk (persisting them there and letting the originals
// accumulate lazily), and on a timeout of the cold group it offers the
// hot group's pending blocks as padding fillers.
type aggregator struct {
	hot, cold   lss.GroupID
	chunkBlocks int

	shadowGrants int64
	shadowDenies int64
}

func newAggregator(hot, cold lss.GroupID, chunkBlocks int) *aggregator {
	return &aggregator{hot: hot, cold: cold, chunkBlocks: chunkBlocks}
}

// avgPad returns the group's average padding size per padded chunk in
// blocks — the C_i statistic of Eq. (1) expressed as the complementary
// padding amount. Falls back to half a chunk with no history.
func (a *aggregator) avgPad(s lss.GroupSnapshot) float64 {
	if s.PaddingEvents == 0 {
		return float64(a.chunkBlocks) / 2
	}
	return float64(s.PaddingBlocks) / float64(s.PaddingEvents)
}

// OnChunkTimeout implements the decision logic invoked by the store's
// lss.Advisor hook (wired through Policy).
func (a *aggregator) OnChunkTimeout(g lss.GroupID, _ sim.Time, groups []lss.GroupSnapshot) lss.TimeoutAction {
	switch g {
	case a.hot:
		hot := groups[a.hot]
		cold := groups[a.cold]
		need := hot.OpenUnpersisted
		// Aggregation condition, three parts (§3.3):
		//  1. the cold chunk must absorb every unpersisted hot block
		//     (the store enforces capacity; we re-check to account),
		//  2. the cold chunk must hold pending blocks of its own —
		//     shadow copies displace padding only when they co-flush
		//     with real cold data; shadowing into an empty chunk pads
		//     exactly as much and duplicates the hot blocks for free,
		//  3. the aggregated bytes must not exceed the cold group's
		//     average padding size — beyond that, shadow copies would
		//     cost more array traffic than the padding they displace.
		// With an empty cold chunk, shadowing pads exactly as much as
		// padding the hot chunk would, but it keeps the hot chunk open
		// (hot segments stay dense); that trade only pays when the
		// duplicate traffic is small.
		cheapDup := need*4 <= a.chunkBlocks
		if need > 0 && need <= cold.OpenFree && (cold.OpenPending > 0 || cheapDup) &&
			float64(need) <= a.avgPad(cold) {
			a.shadowGrants++
			return lss.TimeoutAction{Kind: lss.ShadowInto, Target: a.cold}
		}
		a.shadowDenies++
		// Even when shadowing is not worthwhile, let the cold group's
		// pending blocks ride along in the hot chunk's padding space:
		// strictly less padding for the same flush.
		return lss.TimeoutAction{Kind: lss.PadOwn, Donors: []lss.GroupID{a.cold}}
	case a.cold:
		// The cold chunk is about to pad: fill the padding space with
		// the hot group's unpersisted pending blocks (shadow append in
		// the piggyback direction) — this is the "unused space in cold
		// groups" the paper's insight is built on.
		return lss.TimeoutAction{Kind: lss.PadOwn, Donors: []lss.GroupID{a.hot}}
	default:
		// GC-rewritten groups flush their own chunk; their traffic is
		// bulk and rarely pads (Observation 2).
		return lss.TimeoutAction{Kind: lss.PadOwn}
	}
}
