package adaptcore

import (
	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// Group layout (§3.1): six groups — two user-written, four
// GC-rewritten.
const (
	GroupHot     lss.GroupID = 0 // short-lived user writes
	GroupCold    lss.GroupID = 1 // long-lived user writes
	FirstGCGroup lss.GroupID = 2
	NumGCGroups              = 4
	NumGroups                = 6
)

// Config carries the store geometry ADAPT needs for sizing.
type Config struct {
	// UserBlocks is the user-visible LBA space in blocks.
	UserBlocks int64
	// SegmentBlocks is the segment size in blocks.
	SegmentBlocks int
	// ChunkBlocks is the array chunk size in blocks.
	ChunkBlocks int
	// OverProvision mirrors the store's spare-capacity fraction.
	OverProvision float64
}

// Options tunes the three ADAPT mechanisms. Zero values take
// defaults; the Disable* switches exist for the ablation benchmarks.
type Options struct {
	// SampleRate is the spatial sampling rate for threshold
	// adaptation (paper prototype: 0.001; simulator default 0.01 for
	// smaller volumes).
	SampleRate float64
	// Ladder is the number of concurrent ghost sets.
	Ladder int
	// GhostCapacityShare is the fraction of physical capacity assumed
	// to belong to the user-written groups in the ghost simulation.
	GhostCapacityShare float64
	// DemoteDepth and DemotePerFilter size each cascading
	// discriminator (filters in the FIFO ring, insertions per filter).
	DemoteDepth, DemotePerFilter int
	// DemoteScore is the RA score required to demote proactively.
	DemoteScore int
	// DisableAggregation turns off cross-group dynamic aggregation.
	DisableAggregation bool
	// DisableDemotion turns off proactive demotion placement.
	DisableDemotion bool
	// DisableAdaptation freezes the hot/cold threshold at the
	// cold-start heuristic.
	DisableAdaptation bool
}

func (o Options) withDefaults() Options {
	if o.SampleRate == 0 {
		o.SampleRate = 0.01
	}
	if o.Ladder == 0 {
		o.Ladder = 7
	}
	if o.GhostCapacityShare == 0 {
		o.GhostCapacityShare = 0.15
	}
	if o.DemoteDepth == 0 {
		o.DemoteDepth = 4
	}
	if o.DemoteScore == 0 {
		o.DemoteScore = 2
	}
	return o
}

// Policy is the ADAPT data-placement policy. It implements
// lss.Policy, lss.Advisor (cross-group aggregation), and
// lss.SegmentObserver (threshold cold start).
type Policy struct {
	opts      Options
	lastWrite []int64 // previous user-write clock per LBA, -1 unseen
	ta        *thresholdAdapter
	dm        *demoter
	agg       *aggregator

	demotedUser int64
	tracer      *telemetry.Tracer // nil-safe demotion tracing
}

// New constructs the ADAPT policy.
func New(cfg Config, opts Options) *Policy {
	if cfg.UserBlocks <= 0 {
		panic("adaptcore: UserBlocks must be positive")
	}
	if cfg.SegmentBlocks <= 0 {
		cfg.SegmentBlocks = 512
	}
	if cfg.ChunkBlocks <= 0 {
		cfg.ChunkBlocks = 16
	}
	if cfg.OverProvision <= 0 {
		cfg.OverProvision = 0.15
	}
	opts = opts.withDefaults()
	if opts.DemotePerFilter == 0 {
		// Scale discriminator epochs with the volume so the FIFO ring
		// rotates on recent history rather than accumulating the whole
		// run in one filter.
		opts.DemotePerFilter = int(cfg.UserBlocks / 16)
		if opts.DemotePerFilter < 256 {
			opts.DemotePerFilter = 256
		}
	}
	p := &Policy{
		opts:      opts,
		lastWrite: make([]int64, cfg.UserBlocks),
		ta: newThresholdAdapter(opts.SampleRate, opts.Ladder, cfg.UserBlocks,
			cfg.SegmentBlocks, cfg.OverProvision, opts.GhostCapacityShare),
		dm:  newDemoter(FirstGCGroup, NumGCGroups, opts.DemoteDepth, opts.DemotePerFilter, opts.DemoteScore),
		agg: newAggregator(GroupHot, GroupCold, cfg.ChunkBlocks),
	}
	for i := range p.lastWrite {
		p.lastWrite[i] = -1
	}
	return p
}

// SetTelemetry attaches telemetry to the policy: the adaptive
// threshold and the mechanism counters register as function-backed
// gauges, and threshold adoptions and proactive demotions are traced.
func (p *Policy) SetTelemetry(ts *telemetry.Set) {
	if ts == nil {
		p.tracer = nil
		p.ta.tracer = nil
		return
	}
	p.tracer = ts.Tracer
	p.ta.tracer = ts.Tracer
	reg := ts.Registry
	reg.NewFuncGauge(telemetry.MetricAdaptThreshold,
		"Hot/cold lifespan boundary in write-clock blocks", false,
		func() int64 { return int64(p.ta.threshold()) })
	reg.NewFuncGauge(telemetry.MetricAdaptAdoptions,
		"Ghost-simulation threshold adoptions", true,
		func() int64 { return p.ta.adoptions })
	reg.NewFuncGauge(telemetry.MetricAdaptDemotions,
		"User writes proactively demoted into GC groups", true,
		func() int64 { return p.dm.demotions })
	reg.NewFuncGauge(telemetry.MetricAdaptShadows,
		"Chunk timeouts resolved by cross-group shadow append", true,
		func() int64 { return p.agg.shadowGrants })
}

// Name implements lss.Policy.
func (*Policy) Name() string { return "adapt" }

// Groups implements lss.Policy.
func (*Policy) Groups() int { return NumGroups }

// Threshold returns the current hot/cold boundary in write-clock
// blocks.
func (p *Policy) Threshold() float64 { return p.ta.threshold() }

// Adoptions returns how many times the ghost simulation has updated
// the live threshold.
func (p *Policy) Adoptions() int64 { return p.ta.adoptions }

// Demotions returns how many user writes were proactively demoted.
func (p *Policy) Demotions() int64 { return p.dm.demotions }

// ShadowGrants returns how many hot-chunk timeouts were resolved by
// cross-group shadow append.
func (p *Policy) ShadowGrants() int64 { return p.agg.shadowGrants }

// PlaceUser implements lss.Policy: sample for threshold adaptation,
// try proactive demotion, then separate hot/cold by inferred lifespan
// against the adaptive threshold.
func (p *Policy) PlaceUser(lba int64, now sim.Time, w sim.WriteClock) lss.GroupID {
	if !p.opts.DisableAdaptation {
		p.ta.offer(lba, now)
	}
	prev := p.lastWrite[lba]
	p.lastWrite[lba] = int64(w)
	if !p.opts.DisableDemotion {
		if g, ok := p.dm.check(lba); ok {
			p.demotedUser++
			if p.tracer != nil {
				p.tracer.Emit(telemetry.Demote(now, int(g), lba))
			}
			return g
		}
	}
	if prev < 0 {
		return GroupCold // unseen blocks classify cold
	}
	if float64(int64(w)-prev) < p.ta.threshold() {
		return GroupHot
	}
	return GroupCold
}

// PlaceGC implements lss.Policy: hot-origin blocks stay in the
// youngest GC group; others bin by age against the threshold, like
// SepBIT's residual-lifespan estimate. Blocks that migrate back into
// their origin GC group feed that group's RA discriminator (§3.4).
func (p *Policy) PlaceGC(lba int64, from lss.GroupID, _, _ sim.WriteClock, w sim.WriteClock) lss.GroupID {
	target := p.gcClass(lba, from, w)
	if !p.opts.DisableDemotion && from >= FirstGCGroup && target == from {
		p.dm.onRepeatMigration(lba, from)
	}
	return target
}

func (p *Policy) gcClass(lba int64, from lss.GroupID, w sim.WriteClock) lss.GroupID {
	if from == GroupHot {
		return FirstGCGroup
	}
	tau := p.ta.threshold()
	var age float64
	if prev := p.lastWrite[lba]; prev >= 0 {
		age = float64(int64(w) - prev)
	}
	switch {
	case age < tau:
		return FirstGCGroup + 1
	case age < 4*tau:
		return FirstGCGroup + 2
	default:
		return FirstGCGroup + 3
	}
}

// OnChunkTimeout implements lss.Advisor by delegating to the
// cross-group aggregator.
func (p *Policy) OnChunkTimeout(g lss.GroupID, now sim.Time, groups []lss.GroupSnapshot) lss.TimeoutAction {
	if p.opts.DisableAggregation {
		return lss.TimeoutAction{Kind: lss.PadOwn}
	}
	return p.agg.OnChunkTimeout(g, now, groups)
}

// OnSegmentReclaimed implements lss.SegmentObserver: hot-group segment
// lifespans seed the threshold before the first ghost adoption.
func (p *Policy) OnSegmentReclaimed(g lss.GroupID, born, _, now sim.WriteClock, _, _ int) {
	if g == GroupHot {
		p.ta.seedInitial(float64(now - born))
	}
}

// Footprint returns the memory cost of ADAPT's extra machinery
// (sampler, ghost sets, discriminators) in bytes, excluding the
// per-LBA last-write table that lifespan baselines such as SepBIT
// also keep (see BaseFootprint).
func (p *Policy) Footprint() int64 {
	return p.ta.footprint() + p.dm.footprint()
}

// BaseFootprint returns the per-LBA metadata cost shared with
// lifespan-based baselines.
func (p *Policy) BaseFootprint() int64 { return int64(len(p.lastWrite)) * 8 }
