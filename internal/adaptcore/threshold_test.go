package adaptcore

import (
	"testing"

	"adapt/internal/sim"
)

func newTestAdapter() *thresholdAdapter {
	// rate 1 so every write is sampled; small ladder for readability.
	return newThresholdAdapter(1, 5, 4096, 32, 0.25, 0.15)
}

func TestLadderExponentialSpacing(t *testing.T) {
	ta := newTestAdapter()
	if !ta.expMode {
		t.Fatal("adapter must start in exponential mode")
	}
	for i := 1; i < len(ta.sets); i++ {
		a, b := ta.sets[i-1].threshold, ta.sets[i].threshold
		if b != 2*a && !(a == 1 && b == 1) {
			t.Fatalf("exponential ladder rung %d: %d then %d", i, a, b)
		}
	}
}

func TestLadderLinearSpacing(t *testing.T) {
	ta := newTestAdapter()
	ta.expMode = false
	ta.buildLadder(100)
	half := ta.ladder / 2
	for i, set := range ta.sets {
		want := int64(100) + int64(i-half)*ta.unit
		if want < 1 {
			want = 1
		}
		if set.threshold != want {
			t.Fatalf("linear rung %d threshold %d, want %d", i, set.threshold, want)
		}
	}
}

func TestLadderClampsToOne(t *testing.T) {
	ta := newTestAdapter()
	ta.expMode = false
	ta.buildLadder(1)
	for _, set := range ta.sets {
		if set.threshold < 1 {
			t.Fatalf("threshold %d below 1", set.threshold)
		}
	}
}

func TestMonotoneDetection(t *testing.T) {
	ta := newTestAdapter()
	// Fabricate monotone WA by writing/discard counters directly.
	for i, set := range ta.sets {
		set.written = 100
		set.discarded = int64(10 * (i + 1)) // increasing WA
	}
	if !ta.monotone() {
		t.Fatal("increasing WA not detected as monotone")
	}
	// Make it non-monotone: dip in the middle.
	ta.sets[2].discarded = 1
	if ta.monotone() {
		t.Fatal("valley misdetected as monotone")
	}
}

func TestAdoptKeepsThresholdWithoutGCSignal(t *testing.T) {
	ta := newTestAdapter()
	before := ta.threshold()
	ta.adopt(0) // no ghost set has run GC yet
	if ta.threshold() != before {
		t.Fatal("adopt moved the threshold without any GC signal")
	}
	if ta.adoptions != 0 {
		t.Fatal("adoption counted without signal")
	}
}

func TestSeedInitialOnlyDuringColdStart(t *testing.T) {
	ta := newTestAdapter()
	ta.seedInitial(777)
	if ta.threshold() != 777 {
		t.Fatalf("cold-start seed ignored: %f", ta.threshold())
	}
	// Force one adoption, then the seed must be ignored.
	ta.sets[1].written = 1000
	ta.sets[1].discarded = 1
	ta.sets[1].gcs = 1
	ta.adopt(0)
	after := ta.threshold()
	ta.seedInitial(123456)
	if ta.threshold() != after {
		t.Fatal("seedInitial overrode an adopted threshold")
	}
}

func TestAdoptPicksMinWASet(t *testing.T) {
	ta := newTestAdapter()
	for i, set := range ta.sets {
		set.written = 1000
		set.gcs = 5
		set.discarded = int64(100 + 50*abs(i-2)) // minimum at rung 2
	}
	wantT := ta.sets[2].threshold
	ta.adopt(0)
	if ta.adoptions != 1 {
		t.Fatalf("adoptions = %d", ta.adoptions)
	}
	// Real threshold = ghost threshold / rate × rawPerUnique (rate 1,
	// no pairs → rawPerUnique 1).
	if ta.threshold() != float64(wantT) {
		t.Fatalf("threshold %f, want %d", ta.threshold(), wantT)
	}
}

func TestAdoptionAtEdgeKeepsExponentialMode(t *testing.T) {
	ta := newTestAdapter()
	for i, set := range ta.sets {
		set.written = 1000
		set.gcs = 5
		set.discarded = int64(1000 - 100*i) // best at the top edge
	}
	ta.adopt(0)
	if !ta.expMode {
		t.Fatal("edge optimum must re-span exponentially")
	}
}

func TestAdoptionInteriorSwitchesToLinear(t *testing.T) {
	ta := newTestAdapter()
	for i, set := range ta.sets {
		set.written = 1000
		set.gcs = 5
		set.discarded = int64(100 + 200*abs(i-2)) // interior valley
	}
	ta.adopt(0)
	if ta.expMode {
		t.Fatal("interior non-monotone optimum must switch to linear refinement")
	}
}

func TestOfferDrivesAdoption(t *testing.T) {
	ta := newTestAdapter()
	rng := sim.NewRNG(2)
	// Skewed stream long enough to trip either adoption condition.
	for i := 0; i < 50000; i++ {
		var lba int64
		if rng.Float64() < 0.9 {
			lba = rng.Int63n(512)
		} else {
			lba = rng.Int63n(4096)
		}
		ta.offer(lba, 0)
	}
	if ta.adoptions == 0 {
		t.Fatal("no adoption after 50k skewed writes at rate 1")
	}
	if ta.threshold() <= 0 {
		t.Fatalf("threshold %f", ta.threshold())
	}
}

func TestGhostFootprintGrows(t *testing.T) {
	g := newGhostSet(8, 4, 16)
	before := g.footprint()
	for i := int64(0); i < 200; i++ {
		g.access(i%40, -1)
	}
	if g.footprint() <= before {
		t.Fatal("ghost footprint did not grow")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
