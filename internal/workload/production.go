package workload

import (
	"fmt"
	"math"

	"adapt/internal/sim"
	"adapt/internal/trace"
)

// Profile selects which production environment a synthesized suite
// imitates. The parameters are fit to the paper's published workload
// statistics (§2.3, Figure 2): sparse per-volume request rates
// (75–86% of volumes under 10 req/s, ~2% above 100 req/s), small
// writes (≈70–81% at or below 8 KiB), Tencent more skewed than
// Alibaba, MSRC read-intensive with a heavier large-write tail.
type Profile string

// Supported profiles.
const (
	ProfileAli     Profile = "ali"
	ProfileTencent Profile = "tencent"
	ProfileMSRC    Profile = "msrc"
)

// Profiles lists the three production profiles in evaluation order.
func Profiles() []Profile { return []Profile{ProfileAli, ProfileTencent, ProfileMSRC} }

// profileParams are the population-level distributions volumes are
// drawn from.
type profileParams struct {
	theta       float64   // zipfian skew center
	readRatio   float64   // fraction of read requests
	rateMedian  float64   // median volume request rate, req/s
	rateSigma   float64   // lognormal sigma for per-volume rates
	sizeWeights []float64 // write-size mixture over sizeClasses
	burstiness  float64   // 0..1, strength of on/off modulation
	clusterP    float64   // probability an arrival trails a micro-burst
	clusterLen  float64   // mean follower count per micro-burst
}

// sizeClasses are write sizes in 4 KiB blocks: 4K, 8K, 16K, 32K, 64K,
// 128K.
var sizeClasses = []int64{1, 2, 4, 8, 16, 32}

func params(p Profile) profileParams {
	switch p {
	case ProfileAli:
		return profileParams{
			theta: 0.90, readRatio: 0.45, rateMedian: 3.0, rateSigma: 1.7,
			sizeWeights: []float64{0.48, 0.27, 0.08, 0.06, 0.07, 0.04},
			burstiness:  0.5, clusterP: 0.75, clusterLen: 9,
		}
	case ProfileTencent:
		return profileParams{
			theta: 0.98, readRatio: 0.30, rateMedian: 2.5, rateSigma: 1.7,
			sizeWeights: []float64{0.55, 0.26, 0.08, 0.05, 0.04, 0.02},
			burstiness:  0.6, clusterP: 0.8, clusterLen: 10,
		}
	case ProfileMSRC:
		return profileParams{
			theta: 0.93, readRatio: 0.70, rateMedian: 4.0, rateSigma: 1.6,
			sizeWeights: []float64{0.42, 0.28, 0.06, 0.05, 0.12, 0.07},
			burstiness:  0.8, clusterP: 0.7, clusterLen: 8,
		}
	default:
		panic(fmt.Sprintf("workload: unknown profile %q", p))
	}
}

// Volume describes one synthesized volume. The description is cheap;
// Generate materializes the trace on demand.
type Volume struct {
	Name            string
	Profile         Profile
	FootprintBlocks int64   // distinct 4 KiB blocks
	Theta           float64 // zipfian skew
	ReadRatio       float64
	Rate            float64 // mean request rate, req/s
	WriteOps        int64   // write requests to generate
	Burstiness      float64
	Seed            uint64
	BlockSize       int64
}

// SuiteConfig controls suite synthesis.
type SuiteConfig struct {
	// Profile selects the production environment.
	Profile Profile
	// Volumes is the number of volumes (the paper samples 50).
	Volumes int
	// ScaleBlocks centers the per-volume footprint (log-uniform in
	// [Scale/2, 2×Scale]). Default 32 Ki blocks = 128 MiB.
	ScaleBlocks int64
	// OverwriteFactor sets write volume per volume: total written
	// blocks ≈ factor × footprint, enough to cycle GC. Default 5.
	OverwriteFactor float64
	// Seed selects the deterministic random stream.
	Seed uint64
}

// NewSuite draws per-volume parameters for a suite.
func NewSuite(cfg SuiteConfig) []Volume {
	if cfg.Volumes <= 0 {
		cfg.Volumes = 50
	}
	if cfg.ScaleBlocks <= 0 {
		cfg.ScaleBlocks = 32 << 10
	}
	if cfg.OverwriteFactor <= 0 {
		cfg.OverwriteFactor = 5
	}
	pp := params(cfg.Profile)
	rng := sim.NewRNG(cfg.Seed ^ hashProfile(cfg.Profile))
	vols := make([]Volume, cfg.Volumes)
	for i := range vols {
		vr := rng.Split()
		// Footprint: log-uniform around the scale.
		fp := float64(cfg.ScaleBlocks) * math.Pow(2, 2*vr.Float64()-1)
		// Rate: lognormal across volumes (Figure 2a sparsity).
		rate := pp.rateMedian * math.Exp(pp.rateSigma*vr.NormFloat64())
		if rate < 0.05 {
			rate = 0.05
		}
		if rate > 2000 {
			rate = 2000
		}
		theta := pp.theta + 0.05*(2*vr.Float64()-1)
		if theta >= 0.999 {
			theta = 0.999
		}
		avgBlocks := avgSize(pp.sizeWeights)
		writeOps := int64(cfg.OverwriteFactor * fp / avgBlocks)
		vols[i] = Volume{
			Name:            fmt.Sprintf("%s-vol%02d", cfg.Profile, i),
			Profile:         cfg.Profile,
			FootprintBlocks: int64(fp),
			Theta:           theta,
			ReadRatio:       pp.readRatio + 0.1*(2*vr.Float64()-1),
			Rate:            rate,
			WriteOps:        writeOps,
			Burstiness:      pp.burstiness,
			Seed:            vr.Uint64(),
			BlockSize:       4096,
		}
	}
	return vols
}

func avgSize(weights []float64) float64 {
	var s, w float64
	for i, p := range weights {
		s += p * float64(sizeClasses[i])
		w += p
	}
	return s / w
}

func hashProfile(p Profile) uint64 {
	var h uint64 = 1469598103934665603
	for _, c := range []byte(p) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// Generate materializes the volume as a block I/O trace. Arrivals are
// a Poisson process modulated by an on/off burst chain; write sizes
// follow the profile mixture; write locations are scrambled-zipfian
// over the footprint.
func (v Volume) Generate() *trace.Trace {
	if v.BlockSize <= 0 {
		v.BlockSize = 4096
	}
	rng := sim.NewRNG(v.Seed)
	pp := params(v.Profile)
	zw := NewZipf(rng.Split(), v.FootprintBlocks, v.Theta, true)
	zr := NewZipf(rng.Split(), v.FootprintBlocks, v.Theta, true)
	t := &trace.Trace{Name: v.Name}
	now := sim.Time(0)
	meanGap := sim.Time(float64(sim.Second) / v.Rate)
	burst := false
	var written int64
	var lastEnd int64 // block after the previous write, for runs
	// emit appends one request at the given time, bumping written for
	// writes. sequential selects run continuation (real traces: cold
	// sequential runs and hot update clumps, not independent draws).
	emit := func(at sim.Time, sequential bool) {
		if rng.Float64() < v.ReadRatio {
			lba := zr.Next()
			t.Records = append(t.Records, trace.Record{
				Time: at, Op: trace.OpRead,
				Offset: lba * v.BlockSize, Size: v.BlockSize * (1 + rng.Int63n(4)),
			})
			return
		}
		size := sizeClasses[pick(rng, pp.sizeWeights)]
		var lba int64
		if sequential {
			lba = lastEnd
		} else {
			lba = zw.Next()
		}
		if lba+size > v.FootprintBlocks {
			lba = v.FootprintBlocks - size
			if lba < 0 {
				lba, size = 0, v.FootprintBlocks
			}
		}
		lastEnd = lba + size
		t.Records = append(t.Records, trace.Record{
			Time: at, Op: trace.OpWrite,
			Offset: lba * v.BlockSize, Size: size * v.BlockSize,
		})
		written++
	}
	for written < v.WriteOps {
		// On/off modulation: bursts compress interarrivals 10×, idle
		// stretches them 3×. Toggle with small probability so burst
		// episodes span many requests.
		if rng.Float64() < 0.01 {
			burst = !burst
		}
		factor := 1.0
		if v.Burstiness > 0 {
			if burst {
				factor = 1 - 0.9*v.Burstiness
			} else {
				factor = 1 + 2*v.Burstiness
			}
		}
		now += sim.Time(rng.ExpFloat64() * float64(meanGap) * factor)
		emit(now, false)
		// Micro-burst clustering: real block traces arrive in clumps
		// (queue drains, sequential runs split across requests, hot
		// update flurries), which is what gives write coalescing
		// something to merge within the SLA window. Followers trail
		// the primary by tens of µs; a burst is either a sequential
		// run (cold data laid down once) or a clump of independent
		// updates.
		if pp.clusterP > 0 && rng.Float64() < pp.clusterP {
			at := now
			sequential := rng.Float64() < 0.5
			for written < v.WriteOps {
				at += sim.Time(rng.ExpFloat64() * float64(25*sim.Microsecond))
				emit(at, sequential)
				// Geometric continuation with mean clusterLen.
				if rng.Float64() < 1/pp.clusterLen {
					break
				}
			}
			if at > now {
				now = at
			}
		}
	}
	return t
}

// pick samples an index proportional to weights.
func pick(rng *sim.RNG, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}
