package workload

import (
	"math"
	"testing"

	"adapt/internal/sim"
	"adapt/internal/trace"
)

func TestZipfRange(t *testing.T) {
	rng := sim.NewRNG(1)
	z := NewZipf(rng, 1000, 0.99, true)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
	}
}

func TestZipfSkewConcentration(t *testing.T) {
	// With theta 0.99 (unscrambled), low keys dominate: the top 20% of
	// keys should receive well over half the draws.
	rng := sim.NewRNG(2)
	z := NewZipf(rng, 1000, 0.99, false)
	inTop := 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		if z.Next() < 200 {
			inTop++
		}
	}
	frac := float64(inTop) / draws
	if frac < 0.6 {
		t.Fatalf("top-20%% keys received %.2f of draws, want > 0.6", frac)
	}
}

func TestZipfUniformWhenThetaZero(t *testing.T) {
	rng := sim.NewRNG(3)
	z := NewZipf(rng, 10, 0, false)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("key %d frequency %.3f not uniform", i, frac)
		}
	}
}

func TestZipfScrambleSpreadsHotKeys(t *testing.T) {
	rng := sim.NewRNG(4)
	z := NewZipf(rng, 1000, 0.99, true)
	counts := make(map[int64]int)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	// Find the hottest key: with scrambling it should usually NOT be
	// key 0..2 (it is hashed somewhere else in the space).
	hot, hotC := int64(-1), 0
	for k, c := range counts {
		if c > hotC {
			hot, hotC = k, c
		}
	}
	if hot < 3 {
		t.Logf("note: hottest key scrambled to %d (possible but unlikely)", hot)
	}
	if hotC < 1000 {
		t.Fatalf("scrambled zipf lost skew: hottest key drew only %d", hotC)
	}
}

func TestZipfDeterminism(t *testing.T) {
	a := NewZipf(sim.NewRNG(9), 500, 0.9, true)
	b := NewZipf(sim.NewRNG(9), 500, 0.9, true)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestGenerateYCSB(t *testing.T) {
	tr := Generate(YCSBConfig{
		Blocks: 1000, Writes: 5000, Fill: true,
		Theta: 0.99, MeanGap: 10 * sim.Microsecond, Seed: 1,
	})
	writes := tr.Writes()
	if writes != 6000 { // 1000 fill + 5000 updates
		t.Fatalf("writes = %d, want 6000", writes)
	}
	// Timestamps must be non-decreasing.
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].Time < tr.Records[i-1].Time {
			t.Fatal("timestamps not monotonic")
		}
	}
}

func TestGenerateYCSBReads(t *testing.T) {
	tr := Generate(YCSBConfig{
		Blocks: 1000, Writes: 2000, Theta: 0.5,
		ReadRatio: 0.5, MeanGap: sim.Microsecond, Seed: 2,
	})
	if got := tr.Writes(); got != 2000 {
		t.Fatalf("writes = %d, want exactly 2000", got)
	}
	reads := len(tr.Records) - tr.Writes()
	if reads < 1000 || reads > 3500 {
		t.Fatalf("reads = %d, want ≈ 2000 at ratio 0.5", reads)
	}
}

func TestGenerateYCSBMeanGap(t *testing.T) {
	gap := 200 * sim.Microsecond
	tr := Generate(YCSBConfig{Blocks: 100, Writes: 20000, Theta: 0, MeanGap: gap, Seed: 3})
	dur := tr.Duration()
	got := float64(dur) / float64(len(tr.Records)-1)
	want := float64(gap)
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("mean gap %.0fns, want ≈ %.0fns", got, want)
	}
}

func TestSuiteVolumeCount(t *testing.T) {
	vols := NewSuite(SuiteConfig{Profile: ProfileAli, Volumes: 20, Seed: 1})
	if len(vols) != 20 {
		t.Fatalf("%d volumes, want 20", len(vols))
	}
	for _, v := range vols {
		if v.FootprintBlocks <= 0 || v.WriteOps <= 0 || v.Rate <= 0 {
			t.Fatalf("degenerate volume %+v", v)
		}
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a := NewSuite(SuiteConfig{Profile: ProfileTencent, Volumes: 5, Seed: 7})
	b := NewSuite(SuiteConfig{Profile: ProfileTencent, Volumes: 5, Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("volume %d differs across same-seed suites", i)
		}
	}
	ta := a[0].Generate()
	tb := b[0].Generate()
	if len(ta.Records) != len(tb.Records) {
		t.Fatal("generated traces differ across same-seed suites")
	}
}

func TestSuiteRateDistributionIsSparse(t *testing.T) {
	// Figure 2a: most volumes below 10 req/s, few above 100 req/s.
	vols := NewSuite(SuiteConfig{Profile: ProfileAli, Volumes: 400, Seed: 5})
	below10, above100 := 0, 0
	for _, v := range vols {
		if v.Rate < 10 {
			below10++
		}
		if v.Rate > 100 {
			above100++
		}
	}
	fb, fa := float64(below10)/400, float64(above100)/400
	if fb < 0.6 {
		t.Fatalf("only %.2f of volumes under 10 req/s, want sparse population", fb)
	}
	if fa > 0.1 {
		t.Fatalf("%.2f of volumes above 100 req/s, want rare", fa)
	}
}

func TestVolumeGenerateShape(t *testing.T) {
	vols := NewSuite(SuiteConfig{Profile: ProfileMSRC, Volumes: 1, ScaleBlocks: 4096, Seed: 11})
	v := vols[0]
	tr := v.Generate()
	if got := int64(tr.Writes()); got != v.WriteOps {
		t.Fatalf("writes = %d, want %d", got, v.WriteOps)
	}
	// All accesses must stay inside the footprint.
	for _, r := range tr.Records {
		if r.Offset < 0 || r.Op == trace.OpWrite && r.Offset+r.Size > v.FootprintBlocks*v.BlockSize {
			t.Fatalf("record outside footprint: %+v", r)
		}
	}
	// MSRC is read-intensive: reads should outnumber writes.
	reads := len(tr.Records) - tr.Writes()
	if reads <= tr.Writes()/2 {
		t.Fatalf("MSRC volume not read-heavy: %d reads vs %d writes", reads, tr.Writes())
	}
	// Timestamps monotonic.
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].Time < tr.Records[i-1].Time {
			t.Fatal("timestamps not monotonic")
		}
	}
}

func TestWriteSizeMixture(t *testing.T) {
	// Figure 2b: most writes ≤ 8 KiB for the Ali profile.
	vols := NewSuite(SuiteConfig{Profile: ProfileAli, Volumes: 4, ScaleBlocks: 8192, Seed: 13})
	small, total := 0, 0
	for _, v := range vols {
		tr := v.Generate()
		for _, r := range tr.Records {
			if r.Op != trace.OpWrite {
				continue
			}
			total++
			if r.Size <= 8192 {
				small++
			}
		}
	}
	if frac := float64(small) / float64(total); frac < 0.6 || frac > 0.9 {
		t.Fatalf("≤8KiB write fraction %.2f, want ≈ 0.75", frac)
	}
}

func TestProfilesListed(t *testing.T) {
	if len(Profiles()) != 3 {
		t.Fatal("expected 3 profiles")
	}
	for _, p := range Profiles() {
		_ = params(p) // must not panic
	}
}
