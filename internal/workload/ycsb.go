package workload

import (
	"adapt/internal/sim"
	"adapt/internal/trace"
)

// YCSBConfig describes a YCSB-A style update-heavy workload over a
// block device (§4.3): zipfian updates over Blocks records with
// exponential interarrival times.
type YCSBConfig struct {
	// Blocks is the record space (one 4 KiB block per record).
	Blocks int64
	// Writes is the number of update operations to generate, after
	// the initial sequential fill (the fill is generated only when
	// Fill is true).
	Writes int64
	// Fill prepends a dense sequential write of every block.
	Fill bool
	// Theta is the zipfian constant (0 = uniform; YCSB default 0.99).
	Theta float64
	// MeanGap is the mean interarrival time. Light traffic in the
	// paper means gaps above the 100 µs SLA window; heavy means
	// below.
	MeanGap sim.Time
	// ReadRatio in [0,1) interleaves reads (YCSB-A uses 0.5; the
	// simulator's placement path only reacts to writes).
	ReadRatio float64
	// BlockSize in bytes; default 4096.
	BlockSize int64
	// Seed selects the deterministic random stream.
	Seed uint64
}

// Generate materializes the workload as a trace.
func Generate(cfg YCSBConfig) *trace.Trace {
	if cfg.Blocks <= 0 {
		panic("workload: Blocks must be positive")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4096
	}
	if cfg.MeanGap <= 0 {
		cfg.MeanGap = 10 * sim.Microsecond
	}
	rng := sim.NewRNG(cfg.Seed)
	z := NewZipf(rng.Split(), cfg.Blocks, cfg.Theta, true)
	t := &trace.Trace{Name: "ycsb-a"}
	now := sim.Time(0)
	if cfg.Fill {
		for lba := int64(0); lba < cfg.Blocks; lba++ {
			t.Records = append(t.Records, trace.Record{
				Time: now, Op: trace.OpWrite,
				Offset: lba * cfg.BlockSize, Size: cfg.BlockSize,
			})
		}
	}
	for written := int64(0); written < cfg.Writes; {
		now += sim.Time(rng.ExpFloat64() * float64(cfg.MeanGap))
		op := trace.OpWrite
		if cfg.ReadRatio > 0 && rng.Float64() < cfg.ReadRatio {
			op = trace.OpRead
		} else {
			written++
		}
		lba := z.Next()
		t.Records = append(t.Records, trace.Record{
			Time: now, Op: op,
			Offset: lba * cfg.BlockSize, Size: cfg.BlockSize,
		})
	}
	return t
}
