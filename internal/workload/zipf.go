// Package workload synthesizes the request streams the paper
// evaluates: YCSB-style update-heavy zipfian workloads with
// controllable access density and skew (§4.3), and multi-volume
// production suites whose per-volume request rates, write sizes, and
// skew distributions match the published statistics of the Alibaba,
// Tencent, and MSR-Cambridge traces (§2.3, Figure 2).
package workload

import (
	"math"

	"adapt/internal/sim"
)

// Zipf generates zipfian-distributed values over [0, n) using the
// Gray et al. algorithm (the one YCSB uses), with optional scrambling
// so that popularity is spread over the key space instead of
// concentrating on low keys.
type Zipf struct {
	rng      *sim.RNG
	n        int64
	theta    float64
	alpha    float64
	zetan    float64
	zeta2    float64
	eta      float64
	scramble bool
}

// NewZipf builds a zipfian generator over [0, n) with skew theta in
// [0, 1). theta = 0 degenerates to uniform; YCSB default is 0.99.
func NewZipf(rng *sim.RNG, n int64, theta float64, scramble bool) *Zipf {
	if n <= 0 {
		panic("workload: zipf over empty range")
	}
	if theta < 0 {
		theta = 0
	}
	if theta >= 1 {
		theta = 0.999
	}
	z := &Zipf{rng: rng, n: n, theta: theta, scramble: scramble}
	z.zetan = zetaStatic(n, theta)
	z.zeta2 = zetaStatic(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	var sum float64
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns the next zipfian value in [0, n).
func (z *Zipf) Next() int64 {
	if z.theta == 0 {
		return z.rng.Int63n(z.n)
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	var v int64
	switch {
	case uz < 1:
		v = 0
	case uz < 1+math.Pow(0.5, z.theta):
		v = 1
	default:
		v = int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if v < 0 {
		v = 0
	}
	if v >= z.n {
		v = z.n - 1
	}
	if z.scramble {
		v = scramble(v) % z.n
	}
	return v
}

// scramble is a 64-bit finalizer hash restricted to non-negative
// outputs, matching YCSB's "scrambled zipfian" idea.
func scramble(v int64) int64 {
	x := uint64(v)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x >> 1)
}
