package fault

import (
	"testing"
	"time"
)

// Native fuzz targets for the failure-schedule generator and the retry
// backoff: schedules must stay ordered, bounded, and in device range
// for any parameters, and delays must stay positive and capped for any
// configuration.

// FuzzPlanFire fuzzes MTBF schedule generation and consumption.
// Inputs are clamped into sane ranges (the generator's contract);
// within them, events must be strictly increasing in op, bounded by
// the horizon, uniform-range devices, and Fire must hand them out in
// order exactly once.
func FuzzPlanFire(f *testing.F) {
	f.Add(uint64(1), int64(100), 4, int64(10000))
	f.Add(uint64(42), int64(1), 1, int64(50))
	f.Add(uint64(7), int64(999), 8, int64(99999))
	f.Fuzz(func(t *testing.T, seed uint64, mean int64, devices int, horizon int64) {
		if mean < 0 {
			mean = -mean
		}
		mean = 1 + mean%1000
		if devices < 0 {
			devices = -devices
		}
		devices = 1 + devices%8
		if horizon < 0 {
			horizon = -horizon
		}
		horizon %= 100000

		p := MTBF(seed, mean, devices, horizon)
		events := p.Events()
		last := int64(0)
		for i, e := range events {
			if e.Op <= last {
				t.Fatalf("event %d op %d not after previous %d", i, e.Op, last)
			}
			if e.Op > horizon {
				t.Fatalf("event %d op %d beyond horizon %d", i, e.Op, horizon)
			}
			if e.Device < 0 || e.Device >= devices {
				t.Fatalf("event %d device %d out of [0,%d)", i, e.Device, devices)
			}
			last = e.Op
		}
		// Determinism: the same arguments reproduce the same schedule.
		q := MTBF(seed, mean, devices, horizon).Events()
		if len(q) != len(events) {
			t.Fatalf("regenerated schedule has %d events, want %d", len(q), len(events))
		}
		// Consume with a monotone op counter: every event fires exactly
		// once, in order.
		fired := 0
		for op := int64(0); op <= horizon; op++ {
			if e, ok := p.Fire(op); ok {
				if e != events[fired] {
					t.Fatalf("fired %+v, want %+v", e, events[fired])
				}
				fired++
				// A second poll at the same op must not re-fire it.
				if e2, ok2 := p.Fire(op); ok2 && e2 == e {
					t.Fatalf("event %+v fired twice", e)
				}
				op-- // allow multiple events planned within one op gap
			}
		}
		if fired != len(events) {
			t.Fatalf("fired %d of %d events by the horizon", fired, len(events))
		}
	})
}

// FuzzBackoffDelay fuzzes the capped exponential backoff: for any
// configuration and attempt number the delay must be positive and
// never exceed the effective cap.
func FuzzBackoffDelay(f *testing.F) {
	f.Add(int64(0), int64(0), 0)
	f.Add(int64(50_000), int64(5_000_000), 10)
	f.Add(int64(1<<60), int64(1), 1000)
	f.Add(int64(-1), int64(-1), -5)
	f.Fuzz(func(t *testing.T, base, cap int64, attempt int) {
		b := Backoff{Base: time.Duration(base), Cap: time.Duration(cap)}
		effCap := b.Cap
		if effCap <= 0 {
			effCap = 5 * time.Millisecond
		}
		d := b.Delay(attempt)
		if d <= 0 {
			t.Fatalf("Backoff{%d,%d}.Delay(%d) = %v, want positive", base, cap, attempt, d)
		}
		if d > effCap {
			t.Fatalf("Backoff{%d,%d}.Delay(%d) = %v exceeds cap %v", base, cap, attempt, d, effCap)
		}
		// Replays are deterministic.
		if d2 := b.Delay(attempt); d2 != d {
			t.Fatalf("Delay(%d) unstable: %v then %v", attempt, d, d2)
		}
	})
}
