// Package fault provides the failure-planning and retry-pacing
// building blocks of the degraded-mode experiments: deterministic and
// MTBF-seeded device failure schedules consumed by the prototype's
// injector, and the capped exponential backoff used when a device
// queue refuses an operation within its timeout.
//
// A Plan is a deterministic, replayable sequence of failure events
// keyed on the user-operation counter, so a run with the same seed
// fails the same device at the same op every time. The package has no
// clock of its own; callers decide what "op" means (the prototype uses
// the measured-phase user-op counter).
package fault

import (
	"fmt"
	"math"
	"time"

	"adapt/internal/sim"
)

// Event is one planned device failure.
type Event struct {
	// Op is the user-operation count at which the failure fires; the
	// first op has count 1.
	Op int64
	// Device is the array column to fail.
	Device int
}

// Plan is an ordered failure schedule. Events are consumed front to
// back via Fire; Plan itself is not safe for concurrent use (the
// prototype serializes consumption through its injector).
type Plan struct {
	events []Event
	next   int
}

// Fixed returns a plan with a single failure: device fails when the
// op counter reaches op. A non-positive op or negative device yields
// an empty plan (no failures).
func Fixed(device int, op int64) *Plan {
	if op <= 0 || device < 0 {
		return &Plan{}
	}
	return &Plan{events: []Event{{Op: op, Device: device}}}
}

// MTBF returns a plan whose inter-failure gaps are exponentially
// distributed with the given mean (in ops), drawn from a seeded
// generator, with the failing device uniform over devices columns.
// Events are generated up to horizon ops. The schedule is fully
// determined by its arguments.
func MTBF(seed uint64, meanOps int64, devices int, horizon int64) *Plan {
	p := &Plan{}
	if meanOps <= 0 || devices < 1 || horizon <= 0 {
		return p
	}
	rng := sim.NewRNG(seed)
	at := int64(0)
	for {
		// Inverse-CDF exponential draw; 1-U keeps the argument of Log
		// strictly positive.
		gap := int64(-float64(meanOps) * math.Log(1-rng.Float64()))
		if gap < 1 {
			gap = 1
		}
		at += gap
		if at > horizon {
			return p
		}
		p.events = append(p.events, Event{Op: at, Device: rng.Intn(devices)})
	}
}

// Events returns the remaining (unfired) schedule.
func (p *Plan) Events() []Event {
	out := make([]Event, len(p.events)-p.next)
	copy(out, p.events[p.next:])
	return out
}

// Next returns the next unfired event without consuming it.
func (p *Plan) Next() (Event, bool) {
	if p == nil || p.next >= len(p.events) {
		return Event{}, false
	}
	return p.events[p.next], true
}

// Fire consumes and returns the next event if its op has been
// reached. Callers poll it with their running op counter; an event
// missed by a counter jump still fires at the next poll.
func (p *Plan) Fire(op int64) (Event, bool) {
	if p == nil || p.next >= len(p.events) {
		return Event{}, false
	}
	e := p.events[p.next]
	if op < e.Op {
		return Event{}, false
	}
	p.next++
	return e, true
}

// String summarizes the remaining schedule.
func (p *Plan) String() string {
	if p == nil || p.next >= len(p.events) {
		return "fault: no failures planned"
	}
	return fmt.Sprintf("fault: %d failure(s), next device %d at op %d",
		len(p.events)-p.next, p.events[p.next].Device, p.events[p.next].Op)
}

// Backoff computes capped exponential retry delays: attempt 0 waits
// Base, each further attempt doubles, never exceeding Cap. The zero
// value takes the defaults (50 µs base, 5 ms cap).
type Backoff struct {
	Base time.Duration
	Cap  time.Duration
}

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 50 * time.Microsecond
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 5 * time.Millisecond
	}
	if attempt < 0 {
		attempt = 0
	}
	// Shifting past 62 bits would overflow; the cap applies long before.
	if attempt > 30 {
		return cap
	}
	d := base << uint(attempt)
	if d > cap || d < base {
		return cap
	}
	return d
}
