package fault

import (
	"testing"
	"time"
)

func TestFixedPlanFiresOnce(t *testing.T) {
	p := Fixed(2, 100)
	if _, ok := p.Fire(99); ok {
		t.Fatal("fired before its op")
	}
	e, ok := p.Fire(100)
	if !ok || e.Device != 2 || e.Op != 100 {
		t.Fatalf("Fire(100) = %+v, %v", e, ok)
	}
	if _, ok := p.Fire(1 << 30); ok {
		t.Fatal("fixed plan fired twice")
	}
}

func TestFixedPlanLateCounterStillFires(t *testing.T) {
	p := Fixed(0, 10)
	// A counter that jumps past the op must still trigger the event.
	if e, ok := p.Fire(500); !ok || e.Op != 10 {
		t.Fatalf("Fire(500) = %+v, %v", e, ok)
	}
}

func TestFixedPlanRejectsBadInput(t *testing.T) {
	for _, p := range []*Plan{Fixed(-1, 10), Fixed(0, 0), Fixed(3, -5)} {
		if _, ok := p.Next(); ok {
			t.Fatalf("invalid plan has events: %s", p)
		}
	}
}

func TestMTBFDeterministicAndOrdered(t *testing.T) {
	a := MTBF(7, 1000, 4, 50000)
	b := MTBF(7, 1000, 4, 50000)
	ea, eb := a.Events(), b.Events()
	if len(ea) == 0 {
		t.Fatal("MTBF plan generated no events over 50× the mean")
	}
	if len(ea) != len(eb) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(ea), len(eb))
	}
	prev := int64(0)
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed diverged at %d: %+v vs %+v", i, ea[i], eb[i])
		}
		if ea[i].Op <= prev {
			t.Fatalf("events not strictly increasing: %+v after op %d", ea[i], prev)
		}
		prev = ea[i].Op
		if ea[i].Device < 0 || ea[i].Device >= 4 {
			t.Fatalf("device out of range: %+v", ea[i])
		}
		if ea[i].Op > 50000 {
			t.Fatalf("event beyond horizon: %+v", ea[i])
		}
	}
	// Mean gap should be within a factor of two of the configured MTBF
	// for this many samples.
	mean := float64(prev) / float64(len(ea))
	if mean < 500 || mean > 2000 {
		t.Fatalf("mean inter-failure gap %.0f ops, want ≈1000", mean)
	}
}

func TestMTBFEmptyOnBadInput(t *testing.T) {
	for _, p := range []*Plan{MTBF(1, 0, 4, 100), MTBF(1, 10, 0, 100), MTBF(1, 10, 4, 0)} {
		if len(p.Events()) != 0 {
			t.Fatal("invalid MTBF plan has events")
		}
	}
}

func TestBackoffCapsAndGrows(t *testing.T) {
	b := Backoff{Base: 100 * time.Microsecond, Cap: time.Millisecond}
	if d := b.Delay(0); d != 100*time.Microsecond {
		t.Fatalf("Delay(0) = %v", d)
	}
	if d := b.Delay(1); d != 200*time.Microsecond {
		t.Fatalf("Delay(1) = %v", d)
	}
	if d := b.Delay(3); d != 800*time.Microsecond {
		t.Fatalf("Delay(3) = %v", d)
	}
	for _, attempt := range []int{4, 10, 40, 1 << 20} {
		if d := b.Delay(attempt); d != time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want cap", attempt, d)
		}
	}
	if d := (Backoff{}).Delay(0); d != 50*time.Microsecond {
		t.Fatalf("zero-value base = %v", d)
	}
	if d := (Backoff{}).Delay(63); d != 5*time.Millisecond {
		t.Fatalf("zero-value cap = %v", d)
	}
}
