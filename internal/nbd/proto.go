package nbd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file is the NBD wire vocabulary — the constants from the
// protocol document (https://github.com/NetworkBlockDevice/nbd/blob/
// master/doc/proto.md) plus the bounded decoders for everything the
// server reads off the socket. Decoders never trust a peer-supplied
// length: every allocation is capped, and malformed input returns an
// error wrapping ErrProtocol instead of panicking. The fuzz targets
// (FuzzNBDHandshake, FuzzNBDRequest) hold them to that.

// ErrProtocol wraps every malformed-input error from the decoders.
var ErrProtocol = errors.New("nbd: protocol error")

// Handshake magics: the server greeting is NBDMAGIC + IHAVEOPT, and
// every client option re-states IHAVEOPT.
const (
	nbdMagic = 0x4e42444d41474943 // "NBDMAGIC"
	optMagic = 0x49484156454f5054 // "IHAVEOPT"
	repMagic = 0x3e889045565a9    // option reply magic
)

// Transmission magics.
const (
	requestMagic     = 0x25609513
	simpleReplyMagic = 0x67446698
)

// Handshake flags (server→client, u16) and client flags (u32).
const (
	flagFixedNewstyle = 1 << 0
	flagNoZeroes      = 1 << 1

	clientFlagFixedNewstyle = 1 << 0
	clientFlagNoZeroes      = 1 << 1
)

// Option types (client→server during negotiation).
const (
	optExportName      = 1
	optAbort           = 2
	optList            = 3
	optStartTLS        = 5
	optInfo            = 6
	optGo              = 7
	optStructuredReply = 8
)

// Option reply types (server→client).
const (
	repAck    = 1
	repServer = 2
	repInfo   = 3

	repErrBit     = uint32(1) << 31
	repErrUnsup   = repErrBit | 1
	repErrPolicy  = repErrBit | 2
	repErrInvalid = repErrBit | 3
	repErrUnknown = repErrBit | 6
)

// NBD_INFO information types inside NBD_OPT_INFO/GO.
const (
	infoExport    = 0
	infoName      = 1
	infoBlockSize = 3
)

// Per-export transmission flags (u16).
const (
	tflagHasFlags        = 1 << 0
	tflagReadOnly        = 1 << 1
	tflagSendFlush       = 1 << 2
	tflagSendFUA         = 1 << 3
	tflagRotational      = 1 << 4
	tflagSendTrim        = 1 << 5
	tflagSendWriteZeroes = 1 << 6
	tflagCanMultiConn    = 1 << 8
)

// Transmission commands (u16).
const (
	cmdRead        = 0
	cmdWrite       = 1
	cmdDisc        = 2
	cmdFlush       = 3
	cmdTrim        = 4
	cmdCache       = 5
	cmdWriteZeroes = 6
)

// Per-command flags (u16).
const (
	cmdFlagFUA    = 1 << 0
	cmdFlagNoHole = 1 << 1
)

// Transmission error numbers (u32, a subset of errno).
const (
	nbdEPERM     = 1
	nbdEIO       = 5
	nbdEINVAL    = 22
	nbdENOSPC    = 28
	nbdEOVERFLOW = 75
	nbdESHUTDOWN = 108
)

// cmdName returns the command mnemonic for metrics and errors.
func cmdName(cmd uint16) string {
	switch cmd {
	case cmdRead:
		return "read"
	case cmdWrite:
		return "write"
	case cmdDisc:
		return "disc"
	case cmdFlush:
		return "flush"
	case cmdTrim:
		return "trim"
	case cmdCache:
		return "cache"
	case cmdWriteZeroes:
		return "write_zeroes"
	default:
		return fmt.Sprintf("cmd(%d)", cmd)
	}
}

// maxOptionLen bounds a single negotiation option's data (the spec
// caps strings at 4096; INFO/GO carry a name plus a short info list).
const maxOptionLen = 8 << 10

// DefaultMaxRequestBytes bounds one transmission request's payload
// (WRITE data in, READ data out, WRITE_ZEROES extent) unless the
// server configures its own cap; it is advertised as the maximum block
// size during negotiation, so a conforming client never trips it.
const DefaultMaxRequestBytes = 8 << 20

// option is one decoded negotiation option.
type option struct {
	typ  uint32
	data []byte
}

// readOption decodes one client option: IHAVEOPT magic, option type,
// length, data. The length is bounded by maxOptionLen before any
// allocation.
func readOption(r io.Reader) (option, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return option{}, err
	}
	if binary.BigEndian.Uint64(hdr[0:8]) != optMagic {
		return option{}, fmt.Errorf("%w: bad option magic %#x", ErrProtocol, binary.BigEndian.Uint64(hdr[0:8]))
	}
	o := option{typ: binary.BigEndian.Uint32(hdr[8:12])}
	n := binary.BigEndian.Uint32(hdr[12:16])
	if n > maxOptionLen {
		return option{}, fmt.Errorf("%w: option %d data %d bytes exceeds %d", ErrProtocol, o.typ, n, maxOptionLen)
	}
	if n > 0 {
		o.data = make([]byte, n)
		if _, err := io.ReadFull(r, o.data); err != nil {
			return option{}, err
		}
	}
	return o, nil
}

// parseInfoPayload decodes the NBD_OPT_INFO / NBD_OPT_GO option data:
// a u32 export-name length, the name, a u16 count of information
// requests, and that many u16 information types.
func parseInfoPayload(data []byte) (name string, infos []uint16, err error) {
	if len(data) < 6 {
		return "", nil, fmt.Errorf("%w: INFO/GO payload %d bytes", ErrProtocol, len(data))
	}
	nameLen := binary.BigEndian.Uint32(data[0:4])
	if int64(nameLen) > int64(len(data)-6) {
		return "", nil, fmt.Errorf("%w: INFO/GO name length %d exceeds payload", ErrProtocol, nameLen)
	}
	name = string(data[4 : 4+nameLen])
	rest := data[4+nameLen:]
	n := int(binary.BigEndian.Uint16(rest[0:2]))
	rest = rest[2:]
	if len(rest) != 2*n {
		return "", nil, fmt.Errorf("%w: INFO/GO carries %d info bytes, want %d", ErrProtocol, len(rest), 2*n)
	}
	infos = make([]uint16, n)
	for i := range infos {
		infos[i] = binary.BigEndian.Uint16(rest[2*i:])
	}
	return name, infos, nil
}

// request is one decoded transmission request header. Payload bytes
// (WRITE) are read separately, bounded by the server's request cap.
type request struct {
	flags  uint16
	cmd    uint16
	handle uint64
	offset uint64
	length uint32
}

// readRequest decodes one transmission request header (28 bytes).
func readRequest(r io.Reader) (request, error) {
	var hdr [28]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return request{}, err
	}
	if m := binary.BigEndian.Uint32(hdr[0:4]); m != requestMagic {
		return request{}, fmt.Errorf("%w: bad request magic %#x", ErrProtocol, m)
	}
	return request{
		flags:  binary.BigEndian.Uint16(hdr[4:6]),
		cmd:    binary.BigEndian.Uint16(hdr[6:8]),
		handle: binary.BigEndian.Uint64(hdr[8:16]),
		offset: binary.BigEndian.Uint64(hdr[16:24]),
		length: binary.BigEndian.Uint32(hdr[24:28]),
	}, nil
}

// appendU16/32/64 are the big-endian encode helpers shared by the
// server and the nbdtest client.
func appendU16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

// appendOptionReply encodes one negotiation reply frame.
func appendOptionReply(b []byte, opt, typ uint32, data []byte) []byte {
	b = appendU64(b, repMagic)
	b = appendU32(b, opt)
	b = appendU32(b, typ)
	b = appendU32(b, uint32(len(data)))
	return append(b, data...)
}

// appendSimpleReply encodes one transmission reply header; READ data
// follows separately.
func appendSimpleReply(b []byte, errno uint32, handle uint64) []byte {
	b = appendU32(b, simpleReplyMagic)
	b = appendU32(b, errno)
	return appendU64(b, handle)
}
