package nbd

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"adapt/internal/server"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// fuzzBackend is a minimal in-memory VolumeBackend so the handshake
// fuzzer can build a Server without booting an engine. The handshake
// never touches the data plane, so the ops are stubs.
type fuzzBackend struct {
	data []byte
}

func (f *fuzzBackend) Volumes() int        { return 3 }
func (f *fuzzBackend) VolumeBlocks() int64 { return 128 }
func (f *fuzzBackend) BlockBytes() int     { return 64 }
func (f *fuzzBackend) Now() sim.Time       { return 0 }

func (f *fuzzBackend) Acquire(vol uint32) error { return nil }
func (f *fuzzBackend) Release(vol uint32)       {}

func (f *fuzzBackend) ReadBlocks(vol uint32, lba int64, blocks int, sp *telemetry.Span) ([]byte, error) {
	return make([]byte, blocks*f.BlockBytes()), nil
}

func (f *fuzzBackend) WriteBlocks(vol uint32, lba int64, payload []byte, sp *telemetry.Span, done func(error)) {
	done(nil)
}

func (f *fuzzBackend) TrimBlocks(vol uint32, lba int64, blocks int, sp *telemetry.Span) error {
	return nil
}

func (f *fuzzBackend) Flush(vol uint32, sp *telemetry.Span) error { return nil }

func (f *fuzzBackend) NewSpan() *telemetry.Span                            { return nil }
func (f *fuzzBackend) FinishSpan(sp *telemetry.Span, r *telemetry.SpanRing) {}
func (f *fuzzBackend) DropSpan(sp *telemetry.Span)                         {}
func (f *fuzzBackend) OpenSpanRing() *telemetry.SpanRing                   { return nil }
func (f *fuzzBackend) CloseSpanRing(r *telemetry.SpanRing)                 {}

var _ server.VolumeBackend = (*fuzzBackend)(nil)

func fuzzServer(tb testing.TB) *Server {
	tb.Helper()
	s, err := New(Config{Backend: &fuzzBackend{}})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// handshakeBytes assembles a client→server handshake byte stream:
// client flags followed by zero or more options.
func handshakeBytes(flags uint32, opts ...[]byte) []byte {
	out := binary.BigEndian.AppendUint32(nil, flags)
	for _, o := range opts {
		out = append(out, o...)
	}
	return out
}

// optFrame assembles one option frame.
func optFrame(typ uint32, payload []byte) []byte {
	out := binary.BigEndian.AppendUint64(nil, optMagic)
	out = binary.BigEndian.AppendUint32(out, typ)
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// goPayload assembles an NBD_OPT_GO / NBD_OPT_INFO payload.
func goPayload(name string, infos ...uint16) []byte {
	out := binary.BigEndian.AppendUint32(nil, uint32(len(name)))
	out = append(out, name...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(infos)))
	for _, in := range infos {
		out = binary.BigEndian.AppendUint16(out, in)
	}
	return out
}

// FuzzNBDHandshake feeds arbitrary bytes to the server side of the
// newstyle fixed negotiation. The server must never panic and never
// allocate proportionally to attacker-claimed lengths; errors and
// error replies are the expected outcome for garbage.
func FuzzNBDHandshake(f *testing.F) {
	// Well-formed conversations.
	f.Add(handshakeBytes(clientFlagFixedNewstyle, optFrame(optGo, goPayload("vol0", infoBlockSize))))
	f.Add(handshakeBytes(clientFlagFixedNewstyle|clientFlagNoZeroes,
		optFrame(optList, nil), optFrame(optInfo, goPayload("vol1")), optFrame(optGo, goPayload(""))))
	f.Add(handshakeBytes(clientFlagFixedNewstyle, optFrame(optExportName, []byte("vol2"))))
	f.Add(handshakeBytes(clientFlagFixedNewstyle, optFrame(optAbort, nil)))
	// Torn and hostile variants.
	f.Add(handshakeBytes(clientFlagFixedNewstyle, optFrame(optGo, goPayload("vol0"))[:12]))
	f.Add(handshakeBytes(0))
	f.Add(handshakeBytes(^uint32(0), optFrame(optGo, goPayload("vol0"))))
	f.Add(handshakeBytes(clientFlagFixedNewstyle, optFrame(optGo, binary.BigEndian.AppendUint32(nil, 1<<30))))
	f.Add(handshakeBytes(clientFlagFixedNewstyle, optFrame(99, bytes.Repeat([]byte{7}, 300))))
	f.Add([]byte{})

	s := fuzzServer(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		vol, err := s.handshake(rw{bytes.NewReader(data), io.Discard})
		if err == nil && vol >= uint32(s.volumes) {
			t.Fatalf("handshake admitted out-of-range volume %d", vol)
		}
	})
}

// FuzzNBDRequest feeds arbitrary bytes to the bounded transmission and
// option decoders. None may panic, and none may allocate based on an
// unvalidated length field.
func FuzzNBDRequest(f *testing.F) {
	// A valid WRITE request header.
	req := binary.BigEndian.AppendUint32(nil, requestMagic)
	req = binary.BigEndian.AppendUint16(req, cmdFlagFUA)
	req = binary.BigEndian.AppendUint16(req, cmdWrite)
	req = binary.BigEndian.AppendUint64(req, 0xdeadbeef)
	req = binary.BigEndian.AppendUint64(req, 4096)
	req = binary.BigEndian.AppendUint32(req, 512)
	f.Add(req)
	// Bad magic.
	f.Add(bytes.Repeat([]byte{0x25}, 28))
	// Oversized claimed length.
	huge := binary.BigEndian.AppendUint32(nil, requestMagic)
	huge = binary.BigEndian.AppendUint16(huge, 0)
	huge = binary.BigEndian.AppendUint16(huge, cmdRead)
	huge = binary.BigEndian.AppendUint64(huge, 1)
	huge = binary.BigEndian.AppendUint64(huge, 0)
	huge = binary.BigEndian.AppendUint32(huge, ^uint32(0))
	f.Add(huge)
	// Torn header.
	f.Add(req[:13])
	// Option frames reuse the same corpus entries through readOption.
	f.Add(optFrame(optGo, goPayload("vol0", infoBlockSize, infoName)))
	f.Add(optFrame(optList, bytes.Repeat([]byte{1}, 64)))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := readRequest(bytes.NewReader(data)); err == nil {
			_ = cmdName(req.cmd)
		}
		if o, err := readOption(bytes.NewReader(data)); err == nil {
			if len(o.data) > maxOptionLen {
				t.Fatalf("option %d payload %d exceeds cap %d", o.typ, len(o.data), maxOptionLen)
			}
			if name, infos, perr := parseInfoPayload(o.data); perr == nil {
				if len(name) > maxOptionLen || len(infos) > maxOptionLen {
					t.Fatal("info payload fields exceed option cap")
				}
			}
		}
	})
}
