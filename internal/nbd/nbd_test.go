package nbd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"adapt/internal/lss"
	"adapt/internal/nbd/nbdtest"
	"adapt/internal/placement"
	"adapt/internal/prototype"
	"adapt/internal/server"
)

// testBlockBytes keeps the volume data planes tiny while leaving room
// for ragged-edge merges on both sides of a block.
const testBlockBytes = 64

// stackConfig shapes one test stack.
type stackConfig struct {
	userBlocks int64
	volumes    int
	shards     int // 0: flat engine
	batch      bool
	trace      bool
	mirror     bool // oracle + RAID mirror: enables FailColumn/RebuildStep
	dataDir    string
}

// stack is a full serving stack: engine → volume manager → NBD
// frontend on a loopback listener.
type stack struct {
	eng  prototype.Ingest
	srv  *server.Server
	nbd  *Server
	addr string
}

func policyParams(cfg lss.Config) placement.Params {
	return placement.Params{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.ChunkBlocks * cfg.SegmentChunks,
		ChunkBlocks:   cfg.ChunkBlocks,
	}
}

func newStack(t testing.TB, sc stackConfig) *stack {
	t.Helper()
	cfg := lss.Config{
		BlockSize:     testBlockBytes,
		ChunkBlocks:   8,
		SegmentChunks: 4,
		UserBlocks:    sc.userBlocks,
		OverProvision: 0.25,
	}
	var eng prototype.Ingest
	if sc.shards > 0 {
		e, err := prototype.NewSharded(prototype.ShardedConfig{
			Engine: prototype.EngineConfig{
				Store:        cfg,
				ServiceTime:  time.Microsecond,
				Verify:       sc.mirror,
				VerifyMirror: sc.mirror,
			},
			Shards: sc.shards,
			PolicyFactory: func(shard int, scfg lss.Config) (lss.Policy, error) {
				return placement.New(placement.NameSepGC, policyParams(scfg))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		eng = e
	} else {
		pol, err := placement.New(placement.NameSepGC, policyParams(cfg))
		if err != nil {
			t.Fatal(err)
		}
		e, err := prototype.NewEngine(prototype.EngineConfig{
			Store:        cfg,
			Policy:       pol,
			ServiceTime:  time.Microsecond,
			Verify:       sc.mirror,
			VerifyMirror: sc.mirror,
		})
		if err != nil {
			t.Fatal(err)
		}
		eng = e
	}
	srv, err := server.New(server.Config{
		Engine:       eng,
		Volumes:      sc.volumes,
		DataDir:      sc.dataDir,
		Batch:        sc.batch,
		BatchTimeout: time.Millisecond,
		Trace:        server.TraceConfig{Enabled: sc.trace},
	})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	nsrv, err := New(Config{Backend: srv})
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- nsrv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := nsrv.Shutdown(ctx); err != nil {
			t.Errorf("nbd shutdown: %v", err)
		}
		if err := <-served; err != nil {
			t.Errorf("nbd serve: %v", err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
		if err := eng.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	})
	return &stack{eng: eng, srv: srv, nbd: nsrv, addr: ln.Addr().String()}
}

func dialExport(t testing.TB, addr, export string) *nbdtest.Client {
	t.Helper()
	c, err := nbdtest.Dial(addr, export)
	if err != nil {
		t.Fatalf("dial %q: %v", export, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestNBDListGoInfo(t *testing.T) {
	st := newStack(t, stackConfig{userBlocks: 4096, volumes: 3, batch: true})

	names, err := nbdtest.List(st.addr)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	want := []string{"vol0", "vol1", "vol2"}
	if len(names) != len(want) {
		t.Fatalf("exports %v, want %v", names, want)
	}
	for i, n := range names {
		if n != want[i] {
			t.Fatalf("exports %v, want %v", names, want)
		}
	}

	c := dialExport(t, st.addr, "vol1")
	info := c.Info()
	wantSize := uint64(st.srv.VolumeBlocks()) * testBlockBytes
	if info.Size != wantSize {
		t.Fatalf("export size %d, want %d", info.Size, wantSize)
	}
	if info.MinBlock != 1 || info.PreferredBlock != testBlockBytes {
		t.Fatalf("block sizes min=%d preferred=%d, want 1/%d", info.MinBlock, info.PreferredBlock, testBlockBytes)
	}
	for _, fl := range []uint16{nbdtest.TFlagHasFlags, nbdtest.TFlagSendFlush, nbdtest.TFlagSendFUA,
		nbdtest.TFlagSendTrim, nbdtest.TFlagSendWriteZeroes, nbdtest.TFlagCanMultiConn} {
		if info.Flags&fl == 0 {
			t.Fatalf("transmission flags %#x missing %#x", info.Flags, fl)
		}
	}
	if info.Flags&nbdtest.TFlagReadOnly != 0 {
		t.Fatalf("export unexpectedly read-only (flags %#x)", info.Flags)
	}

	// The default (empty) export is vol0.
	d := dialExport(t, st.addr, "")
	if d.Info().Size != wantSize {
		t.Fatalf("default export size %d, want %d", d.Info().Size, wantSize)
	}

	// Unknown exports are refused without killing the listener.
	if _, err := nbdtest.Dial(st.addr, "no-such-export"); err == nil {
		t.Fatal("GO for unknown export succeeded")
	}
}

// TestNBDMixedWorkloadReadback drives one export with a seeded mix of
// aligned and unaligned writes, write-zeroes, trims, flushes, and
// reads, mirroring every mutation into a flat shadow buffer, then
// verifies the device byte-for-byte.
func TestNBDMixedWorkloadReadback(t *testing.T) {
	st := newStack(t, stackConfig{userBlocks: 4096, volumes: 2, batch: true})
	c := dialExport(t, st.addr, "vol1")
	size := c.Info().Size
	shadow := make([]byte, size)
	rng := rand.New(rand.NewSource(42))

	randSpan := func() (uint64, uint32) {
		off := uint64(rng.Int63n(int64(size)))
		maxLen := size - off
		if maxLen > 4*testBlockBytes {
			maxLen = 4 * testBlockBytes
		}
		return off, uint32(1 + rng.Int63n(int64(maxLen)))
	}
	for i := 0; i < 2000; i++ {
		off, n := randSpan()
		switch op := rng.Intn(10); {
		case op < 5: // write, mostly unaligned
			data := make([]byte, n)
			rng.Read(data)
			var flags uint16
			if rng.Intn(4) == 0 {
				flags = nbdtest.FlagFUA
			}
			if err := c.Write(off, data, flags); err != nil {
				t.Fatalf("op %d: write(%d,%d): %v", i, off, n, err)
			}
			copy(shadow[off:], data)
		case op < 6:
			if err := c.WriteZeroes(off, n, 0); err != nil {
				t.Fatalf("op %d: write_zeroes(%d,%d): %v", i, off, n, err)
			}
			for j := uint64(0); j < uint64(n); j++ {
				shadow[off+j] = 0
			}
		case op < 7:
			// Trim is advisory and must not change what reads return
			// (the data plane keeps the bytes); shadow is untouched.
			if err := c.Trim(off, n); err != nil {
				t.Fatalf("op %d: trim(%d,%d): %v", i, off, n, err)
			}
		case op < 8:
			if err := c.Flush(); err != nil {
				t.Fatalf("op %d: flush: %v", i, err)
			}
		default:
			got, err := c.Read(off, n)
			if err != nil {
				t.Fatalf("op %d: read(%d,%d): %v", i, off, n, err)
			}
			if !bytes.Equal(got, shadow[off:off+uint64(n)]) {
				t.Fatalf("op %d: read(%d,%d) diverged from shadow", i, off, n)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < size; off += 8 * testBlockBytes {
		n := uint32(8 * testBlockBytes)
		if size-off < uint64(n) {
			n = uint32(size - off)
		}
		got, err := c.Read(off, n)
		if err != nil {
			t.Fatalf("readback at %d: %v", off, err)
		}
		if !bytes.Equal(got, shadow[off:off+uint64(n)]) {
			t.Fatalf("readback at %d diverged from shadow", off)
		}
	}
}

// TestNBDMultiConn checks NBD_FLAG_CAN_MULTI_CONN semantics: writes
// acked on one connection are visible (and, after one connection's
// flush, durable) on another.
func TestNBDMultiConn(t *testing.T) {
	st := newStack(t, stackConfig{userBlocks: 4096, volumes: 1, batch: true, shards: 2})
	a := dialExport(t, st.addr, "vol0")
	b := dialExport(t, st.addr, "vol0")

	var wg sync.WaitGroup
	for w, c := range []*nbdtest.Client{a, b} {
		wg.Add(1)
		go func(w int, c *nbdtest.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := uint64(w) * 1024 * testBlockBytes
			for i := 0; i < 200; i++ {
				off := base + uint64(rng.Intn(1000*testBlockBytes))
				data := make([]byte, 1+rng.Intn(3*testBlockBytes))
				for j := range data {
					data[j] = byte(w + 1)
				}
				if err := c.Write(off, data, 0); err != nil {
					t.Errorf("worker %d write: %v", w, err)
					return
				}
			}
		}(w, c)
	}
	wg.Wait()
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	// Deterministic cross-connection visibility: write on a, read on b.
	pat := bytes.Repeat([]byte{0xab}, 3*testBlockBytes/2)
	if err := a.Write(7, pat, 0); err != nil {
		t.Fatal(err)
	}
	got, err := b.Read(7, uint32(len(pat)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pat) {
		t.Fatal("write on conn A not visible on conn B")
	}
}

// TestNBDFailColumnRebuild keeps a mixed workload running while a RAID
// column fails mid-traffic and is rebuilt, then verifies readback.
func TestNBDFailColumnRebuild(t *testing.T) {
	st := newStack(t, stackConfig{userBlocks: 8192, volumes: 2, batch: true, shards: 2, mirror: true})
	const workers = 4
	var mu sync.Mutex // guards shadows
	shadows := [2][]byte{}
	var size uint64
	{
		c := dialExport(t, st.addr, "vol0")
		size = c.Info().Size
	}
	shadows[0] = make([]byte, size)
	shadows[1] = make([]byte, size)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vol := w % 2
			c, err := nbdtest.Dial(st.addr, ExportName(vol))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				off := uint64(rng.Int63n(int64(size)))
				n := uint32(1 + rng.Int63n(2*testBlockBytes))
				if uint64(n) > size-off {
					n = uint32(size - off)
				}
				data := make([]byte, n)
				rng.Read(data)
				// The shadow must record exactly what the device acked,
				// so the lock spans ack and mirror update (writers to
				// the same volume serialize; that loses interleaving,
				// not coverage).
				mu.Lock()
				err := c.Write(off, data, 0)
				if err == nil {
					copy(shadows[vol][off:], data)
				}
				mu.Unlock()
				if err != nil {
					errCh <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				if i%16 == 0 {
					if _, err := c.Read(off, n); err != nil {
						errCh <- fmt.Errorf("worker %d read: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	time.Sleep(30 * time.Millisecond)
	if err := st.eng.FailColumn(1); err != nil {
		t.Fatalf("fail column: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	for {
		_, done, err := st.eng.RebuildStep(64)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		if done {
			break
		}
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	if st.eng.Degraded() {
		t.Fatal("engine still degraded after full rebuild")
	}

	for vol := 0; vol < 2; vol++ {
		c := dialExport(t, st.addr, ExportName(vol))
		for off := uint64(0); off < size; off += 16 * testBlockBytes {
			n := uint32(16 * testBlockBytes)
			if size-off < uint64(n) {
				n = uint32(size - off)
			}
			got, err := c.Read(off, n)
			if err != nil {
				t.Fatalf("vol %d readback at %d: %v", vol, off, err)
			}
			if !bytes.Equal(got, shadows[vol][off:off+uint64(n)]) {
				t.Fatalf("vol %d readback at %d diverged after fail+rebuild", vol, off)
			}
		}
	}
}

// TestNBDShutdownDrains checks that Shutdown completes in-flight
// requests and later requests fail cleanly with ESHUTDOWN semantics
// (the connection closes or errors, but never hangs).
func TestNBDShutdownDrains(t *testing.T) {
	st := newStack(t, stackConfig{userBlocks: 4096, volumes: 1, batch: true})
	c := dialExport(t, st.addr, "vol0")
	data := bytes.Repeat([]byte{9}, testBlockBytes)
	if err := c.Write(0, data, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := st.nbd.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := c.Write(testBlockBytes, data, 0); err == nil {
		t.Fatal("write after shutdown succeeded")
	}
	// New connections are refused.
	if _, err := nbdtest.Dial(st.addr, "vol0"); err == nil {
		t.Fatal("dial after shutdown succeeded")
	}
}

// TestNBDRequestValidation exercises the transmission-phase error
// paths a hostile or buggy client can reach without killing the
// session.
func TestNBDRequestValidation(t *testing.T) {
	st := newStack(t, stackConfig{userBlocks: 4096, volumes: 1, batch: false})
	c := dialExport(t, st.addr, "vol0")
	size := c.Info().Size

	if _, err := c.Read(size, 1); !errors.As(err, new(nbdtest.Errno)) {
		t.Fatalf("read past end: %v", err)
	}
	if err := c.Write(size-1, []byte{1, 2}, 0); !errors.As(err, new(nbdtest.Errno)) {
		t.Fatalf("write past end: %v", err)
	}
	if _, err := c.Read(0, 0); !errors.As(err, new(nbdtest.Errno)) {
		t.Fatalf("zero-length read: %v", err)
	}
	if err := c.WriteZeroes(0, uint32(DefaultMaxRequestBytes)+1, 0); !errors.As(err, new(nbdtest.Errno)) {
		t.Fatalf("oversized write_zeroes: %v", err)
	}
	// The session survives all of the above.
	if err := c.Write(0, []byte{1}, 0); err != nil {
		t.Fatalf("session did not survive error replies: %v", err)
	}
}
