package nbd

import (
	"adapt/internal/telemetry"
)

// The alignment layer: NBD addresses bytes, the engine addresses
// blocks. Reads widen to the covering block range and slice the
// answer. Aligned writes pass straight through to the backend (and
// its group committers). Unaligned writes become read-modify-write
// cycles: the ragged head/tail blocks are read, the new bytes merged,
// and the covering range written back as one block-aligned write —
// serialized per volume so two RMW cycles cannot interleave their
// read and write halves. Trims shrink to the fully-covered interior
// (a trim is advisory, so dropping ragged edges is correct);
// write-zeroes reuses the write path with a zero payload, so zeroes
// always read back as zeroes.
//
// Every caller has already validated offset+length against the export
// size and the request cap, so the arithmetic here cannot overflow:
// offsets fit in int64 because export size = VolumeBlocks × BlockBytes
// does.

// blockSpan returns the covering block range [start, end) of the byte
// span [off, off+length).
func (s *Server) blockSpan(off uint64, length uint32) (start, end int64) {
	b := uint64(s.blockBytes)
	start = int64(off / b)
	end = int64((off + uint64(length) + b - 1) / b)
	return start, end
}

// readSpan reads the byte span [off, off+length).
func (s *Server) readSpan(vol uint32, off uint64, length uint32, sp *telemetry.Span) ([]byte, error) {
	start, end := s.blockSpan(off, length)
	buf, err := s.b.ReadBlocks(vol, start, int(end-start), sp)
	if err != nil {
		return nil, err
	}
	head := off - uint64(start)*uint64(s.blockBytes)
	return buf[head : head+uint64(length)], nil
}

// writeSpan writes data at byte offset off, calling done exactly once
// with the ack. The aligned fast path hands the payload to the
// backend untouched; ragged edges take the RMW slow path.
func (s *Server) writeSpan(vol uint32, off uint64, data []byte, sp *telemetry.Span, done func(error)) {
	b := uint64(s.blockBytes)
	if off%b == 0 && uint64(len(data))%b == 0 {
		s.b.WriteBlocks(vol, int64(off/b), data, sp, done)
		return
	}
	s.met.rmwWrites.Inc()
	start, end := s.blockSpan(off, uint32(len(data)))
	mu := &s.rmw[vol]
	mu.Lock()
	buf := make([]byte, (end-start)*int64(b))
	// Fill the ragged head and tail blocks with their current bytes
	// before overlaying the new data. One read suffices when the span
	// lives inside a single block.
	raggedHead := off%b != 0
	raggedTail := (off+uint64(len(data)))%b != 0
	if raggedHead || raggedTail {
		if end-start == 1 {
			old, err := s.b.ReadBlocks(vol, start, 1, sp)
			if err != nil {
				mu.Unlock()
				done(err)
				return
			}
			copy(buf, old)
		} else {
			if raggedHead {
				old, err := s.b.ReadBlocks(vol, start, 1, sp)
				if err != nil {
					mu.Unlock()
					done(err)
					return
				}
				copy(buf, old)
			}
			if raggedTail {
				old, err := s.b.ReadBlocks(vol, end-1, 1, sp)
				if err != nil {
					mu.Unlock()
					done(err)
					return
				}
				copy(buf[(end-1-start)*int64(b):], old)
			}
		}
	}
	copy(buf[off-uint64(start)*b:], data)
	s.b.WriteBlocks(vol, start, buf, sp, func(err error) {
		mu.Unlock()
		done(err)
	})
}

// trimSpan trims the blocks fully covered by [off, off+length). A
// ragged edge is simply kept — NBD_CMD_TRIM is advisory, and the
// engine's trim granularity is the block.
func (s *Server) trimSpan(vol uint32, off uint64, length uint32, sp *telemetry.Span) error {
	b := uint64(s.blockBytes)
	first := int64((off + b - 1) / b)
	past := int64((off + uint64(length)) / b)
	if past <= first {
		return nil
	}
	return s.b.TrimBlocks(vol, first, int(past-first), sp)
}
