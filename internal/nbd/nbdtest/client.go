// Package nbdtest is a pure-Go NBD client speaking the newstyle fixed
// handshake and the transmission phase — enough protocol to stand in
// for nbd-client/qemu in environments where the kernel nbd module is
// unavailable (CI containers). The e2e tests, cmd/nbdload, and the
// nbd-smoke make target all drive the server through it.
//
// A Client is one NBD connection and is not safe for concurrent use;
// callers wanting parallelism open several connections (which also
// exercises the server's multi-conn support).
package nbdtest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
)

// Protocol constants, mirrored from the server (kept separate on
// purpose: a shared definition would let one side's typo cancel the
// other's).
const (
	nbdMagic = 0x4e42444d41474943
	optMagic = 0x49484156454f5054
	repMagic = 0x3e889045565a9

	requestMagic     = 0x25609513
	simpleReplyMagic = 0x67446698

	flagFixedNewstyle = 1 << 0
	flagNoZeroes      = 1 << 1

	clientFlagFixedNewstyle = 1 << 0
	clientFlagNoZeroes      = 1 << 1

	optExportName = 1
	optAbort      = 2
	optList       = 3
	optInfo       = 6
	optGo         = 7

	repAck    = 1
	repServer = 2
	repInfo   = 3
	repErrBit = uint32(1) << 31

	infoExport    = 0
	infoName      = 1
	infoBlockSize = 3

	cmdRead        = 0
	cmdWrite       = 1
	cmdDisc        = 2
	cmdFlush       = 3
	cmdTrim        = 4
	cmdWriteZeroes = 6

	// FlagFUA is the per-command force-unit-access flag.
	FlagFUA = 1 << 0
)

// Transmission flag bits, exported for assertions in tests.
const (
	TFlagHasFlags        = 1 << 0
	TFlagReadOnly        = 1 << 1
	TFlagSendFlush       = 1 << 2
	TFlagSendFUA         = 1 << 3
	TFlagSendTrim        = 1 << 5
	TFlagSendWriteZeroes = 1 << 6
	TFlagCanMultiConn    = 1 << 8
)

// Errno is a non-zero NBD reply error.
type Errno uint32

func (e Errno) Error() string {
	switch e {
	case 1:
		return "nbd: EPERM"
	case 5:
		return "nbd: EIO"
	case 22:
		return "nbd: EINVAL"
	case 28:
		return "nbd: ENOSPC"
	case 75:
		return "nbd: EOVERFLOW"
	case 108:
		return "nbd: ESHUTDOWN"
	default:
		return fmt.Sprintf("nbd: errno %d", uint32(e))
	}
}

// Info is the negotiated export description.
type Info struct {
	Size           uint64
	Flags          uint16
	MinBlock       uint32
	PreferredBlock uint32
	MaxBlock       uint32
}

// Client is one NBD connection in the transmission phase.
type Client struct {
	conn   net.Conn
	br     *bufio.Reader
	info   Info
	handle uint64
}

// greet consumes the server greeting and sends the client flags.
func greet(conn net.Conn, br *bufio.Reader) error {
	var hdr [18]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("greeting: %w", err)
	}
	if binary.BigEndian.Uint64(hdr[0:8]) != nbdMagic || binary.BigEndian.Uint64(hdr[8:16]) != optMagic {
		return errors.New("not an NBD newstyle server")
	}
	hsFlags := binary.BigEndian.Uint16(hdr[16:18])
	if hsFlags&flagFixedNewstyle == 0 {
		return errors.New("server lacks fixed newstyle")
	}
	cf := uint32(clientFlagFixedNewstyle)
	if hsFlags&flagNoZeroes != 0 {
		cf |= clientFlagNoZeroes
	}
	return writeAll(conn, binary.BigEndian.AppendUint32(nil, cf))
}

// sendOption writes one negotiation option.
func sendOption(conn net.Conn, typ uint32, data []byte) error {
	buf := binary.BigEndian.AppendUint64(nil, optMagic)
	buf = binary.BigEndian.AppendUint32(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(data)))
	return writeAll(conn, append(buf, data...))
}

// optReply is one decoded negotiation reply.
type optReply struct {
	opt  uint32
	typ  uint32
	data []byte
}

// maxReplyLen bounds a negotiation reply body.
const maxReplyLen = 1 << 20

func readOptReply(br *bufio.Reader) (optReply, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return optReply{}, err
	}
	if binary.BigEndian.Uint64(hdr[0:8]) != repMagic {
		return optReply{}, errors.New("bad option reply magic")
	}
	r := optReply{
		opt: binary.BigEndian.Uint32(hdr[8:12]),
		typ: binary.BigEndian.Uint32(hdr[12:16]),
	}
	n := binary.BigEndian.Uint32(hdr[16:20])
	if n > maxReplyLen {
		return optReply{}, fmt.Errorf("oversized option reply (%d bytes)", n)
	}
	if n > 0 {
		r.data = make([]byte, n)
		if _, err := io.ReadFull(br, r.data); err != nil {
			return optReply{}, err
		}
	}
	return r, nil
}

func writeAll(conn net.Conn, buf []byte) error {
	_, err := conn.Write(buf)
	return err
}

// Dial connects to an NBD server and negotiates the named export via
// NBD_OPT_GO ("" selects the default export).
func Dial(addr, export string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := attach(conn, export)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// attach negotiates export over an established connection.
func attach(conn net.Conn, export string) (*Client, error) {
	br := bufio.NewReaderSize(conn, 64<<10)
	if err := greet(conn, br); err != nil {
		return nil, err
	}
	payload := binary.BigEndian.AppendUint32(nil, uint32(len(export)))
	payload = append(payload, export...)
	payload = binary.BigEndian.AppendUint16(payload, 1)
	payload = binary.BigEndian.AppendUint16(payload, infoBlockSize)
	if err := sendOption(conn, optGo, payload); err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: br}
	for {
		rep, err := readOptReply(br)
		if err != nil {
			return nil, err
		}
		if rep.opt != optGo {
			return nil, fmt.Errorf("reply for option %d, want GO", rep.opt)
		}
		switch rep.typ {
		case repAck:
			if c.info.Size == 0 {
				return nil, errors.New("GO acked without NBD_INFO_EXPORT")
			}
			return c, nil
		case repInfo:
			if len(rep.data) < 2 {
				return nil, errors.New("short info reply")
			}
			switch binary.BigEndian.Uint16(rep.data[0:2]) {
			case infoExport:
				if len(rep.data) != 12 {
					return nil, fmt.Errorf("NBD_INFO_EXPORT is %d bytes, want 12", len(rep.data))
				}
				c.info.Size = binary.BigEndian.Uint64(rep.data[2:10])
				c.info.Flags = binary.BigEndian.Uint16(rep.data[10:12])
			case infoBlockSize:
				if len(rep.data) != 14 {
					return nil, fmt.Errorf("NBD_INFO_BLOCK_SIZE is %d bytes, want 14", len(rep.data))
				}
				c.info.MinBlock = binary.BigEndian.Uint32(rep.data[2:6])
				c.info.PreferredBlock = binary.BigEndian.Uint32(rep.data[6:10])
				c.info.MaxBlock = binary.BigEndian.Uint32(rep.data[10:14])
			}
		default:
			if rep.typ&repErrBit != 0 {
				return nil, fmt.Errorf("GO refused (reply %#x): %s", rep.typ, rep.data)
			}
			return nil, fmt.Errorf("unexpected GO reply type %#x", rep.typ)
		}
	}
}

// List returns the server's export names over a throwaway connection.
func List(addr string) ([]string, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	if err := greet(conn, br); err != nil {
		return nil, err
	}
	if err := sendOption(conn, optList, nil); err != nil {
		return nil, err
	}
	var names []string
	for {
		rep, err := readOptReply(br)
		if err != nil {
			return nil, err
		}
		switch rep.typ {
		case repServer:
			if len(rep.data) < 4 {
				return nil, errors.New("short LIST entry")
			}
			n := binary.BigEndian.Uint32(rep.data[0:4])
			if int64(n) > int64(len(rep.data)-4) {
				return nil, errors.New("LIST entry name overruns reply")
			}
			names = append(names, string(rep.data[4:4+n]))
		case repAck:
			// Polite teardown; the server may close first, so errors
			// past this point are immaterial.
			_ = sendOption(conn, optAbort, nil)
			return names, nil
		default:
			return nil, fmt.Errorf("LIST refused (reply %#x): %s", rep.typ, rep.data)
		}
	}
}

// Info returns the negotiated export description.
func (c *Client) Info() Info { return c.info }

// roundtrip sends one request and reads its simple reply (plus
// readLen payload bytes on success).
func (c *Client) roundtrip(cmd, flags uint16, off uint64, length uint32, payload []byte, readLen uint32) ([]byte, error) {
	c.handle++
	hdr := binary.BigEndian.AppendUint32(nil, requestMagic)
	hdr = binary.BigEndian.AppendUint16(hdr, flags)
	hdr = binary.BigEndian.AppendUint16(hdr, cmd)
	hdr = binary.BigEndian.AppendUint64(hdr, c.handle)
	hdr = binary.BigEndian.AppendUint64(hdr, off)
	hdr = binary.BigEndian.AppendUint32(hdr, length)
	if err := writeAll(c.conn, append(hdr, payload...)); err != nil {
		return nil, err
	}
	var rep [16]byte
	if _, err := io.ReadFull(c.br, rep[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(rep[0:4]) != simpleReplyMagic {
		return nil, errors.New("bad simple reply magic")
	}
	if h := binary.BigEndian.Uint64(rep[8:16]); h != c.handle {
		return nil, fmt.Errorf("reply handle %d, want %d", h, c.handle)
	}
	if errno := binary.BigEndian.Uint32(rep[4:8]); errno != 0 {
		return nil, Errno(errno)
	}
	if readLen == 0 {
		return nil, nil
	}
	data := make([]byte, readLen)
	if _, err := io.ReadFull(c.br, data); err != nil {
		return nil, err
	}
	return data, nil
}

// Read reads length bytes at off.
func (c *Client) Read(off uint64, length uint32) ([]byte, error) {
	return c.roundtrip(cmdRead, 0, off, length, nil, length)
}

// Write writes data at off; flags may carry FlagFUA.
func (c *Client) Write(off uint64, data []byte, flags uint16) error {
	_, err := c.roundtrip(cmdWrite, flags, off, uint32(len(data)), data, 0)
	return err
}

// WriteZeroes zeroes length bytes at off.
func (c *Client) WriteZeroes(off uint64, length uint32, flags uint16) error {
	_, err := c.roundtrip(cmdWriteZeroes, flags, off, length, nil, 0)
	return err
}

// Trim discards length bytes at off (advisory).
func (c *Client) Trim(off uint64, length uint32) error {
	_, err := c.roundtrip(cmdTrim, 0, off, length, nil, 0)
	return err
}

// Flush is the write barrier.
func (c *Client) Flush() error {
	_, err := c.roundtrip(cmdFlush, 0, 0, 0, nil, 0)
	return err
}

// Close sends DISC (best effort) and closes the connection.
func (c *Client) Close() error {
	hdr := binary.BigEndian.AppendUint32(nil, requestMagic)
	hdr = binary.BigEndian.AppendUint16(hdr, 0)
	hdr = binary.BigEndian.AppendUint16(hdr, cmdDisc)
	hdr = binary.BigEndian.AppendUint64(hdr, c.handle+1)
	hdr = binary.BigEndian.AppendUint64(hdr, 0)
	hdr = binary.BigEndian.AppendUint32(hdr, 0)
	_ = writeAll(c.conn, hdr)
	return c.conn.Close()
}
