package nbd

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"adapt/internal/nbd/nbdtest"
)

// readAll drains the whole export in fixed-size chunks.
func readAll(c *nbdtest.Client, size uint64, step uint32) ([]byte, error) {
	out := make([]byte, 0, size)
	for off := uint64(0); off < size; off += uint64(step) {
		n := step
		if size-off < uint64(n) {
			n = uint32(size - off)
		}
		buf, err := c.Read(off, n)
		if err != nil {
			return nil, fmt.Errorf("read at %d: %w", off, err)
		}
		out = append(out, buf...)
	}
	return out, nil
}

// TestAlignBlockSpanArithmetic pins the pure offset arithmetic of the
// alignment layer against a brute-force model.
func TestAlignBlockSpanArithmetic(t *testing.T) {
	s := &Server{blockBytes: testBlockBytes}
	for off := uint64(0); off < 3*testBlockBytes; off++ {
		for length := uint32(1); length <= 2*testBlockBytes; length++ {
			start, end := s.blockSpan(off, length)
			// Brute force: which blocks does [off, off+length) touch?
			wantStart := int64(off) / testBlockBytes
			wantEnd := (int64(off) + int64(length) + testBlockBytes - 1) / testBlockBytes
			if start != wantStart || end != wantEnd {
				t.Fatalf("blockSpan(%d,%d) = [%d,%d), want [%d,%d)", off, length, start, end, wantStart, wantEnd)
			}
			// And the trim interior must be the fully-covered subset.
			first := (int64(off) + testBlockBytes - 1) / testBlockBytes
			past := (int64(off) + int64(length)) / testBlockBytes
			for b := start; b < end; b++ {
				covered := int64(off) <= b*testBlockBytes && (b+1)*testBlockBytes <= int64(off)+int64(length)
				inTrim := b >= first && b < past
				if covered != inTrim {
					t.Fatalf("trim interior of (%d,%d): block %d covered=%v inTrim=%v", off, length, b, covered, inTrim)
				}
			}
		}
	}
}

// TestAlignPropertyShadow is the satellite property test: any sequence
// of unaligned NBD writes and reads is byte-equivalent to the same
// sequence applied to a flat shadow buffer — including spans that
// cross chunk boundaries (8 blocks) and shard boundaries (the 4-shard
// engine splits one volume's LBA space into 4 contiguous slices).
func TestAlignPropertyShadow(t *testing.T) {
	const (
		shards      = 4
		userBlocks  = 4096
		chunkBytes  = 8 * testBlockBytes
		shardBlocks = userBlocks / shards
		shardBytes  = shardBlocks * testBlockBytes
	)
	st := newStack(t, stackConfig{userBlocks: userBlocks, volumes: 1, shards: shards, batch: true})
	size := uint64(st.srv.VolumeBlocks()) * testBlockBytes
	if size != userBlocks*testBlockBytes {
		t.Fatalf("one volume over the whole engine: size %d, want %d", size, userBlocks*testBlockBytes)
	}

	// Interesting byte offsets: every chunk boundary and shard boundary
	// (±1, ±17), so spans straddle them from both sides.
	var hot []uint64
	for _, base := range []uint64{chunkBytes, shardBytes, 2 * shardBytes, 3 * shardBytes} {
		for _, d := range []int64{-17, -1, 0, 1, 17} {
			hot = append(hot, uint64(int64(base)+d))
		}
	}

	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			c := dialExport(t, st.addr, "vol0")
			rng := rand.New(rand.NewSource(seed))
			shadow := make([]byte, size)
			// The engine's state persists across subtests (one shared
			// stack), so start from a known image.
			if err := c.WriteZeroes(0, uint32(size), 0); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 1500; i++ {
				var off uint64
				if rng.Intn(2) == 0 {
					off = hot[rng.Intn(len(hot))] + uint64(rng.Intn(7))
				} else {
					off = uint64(rng.Int63n(int64(size)))
				}
				maxLen := size - off
				// Long enough to cross a chunk (and at a shard edge, the
				// shard boundary) in one request.
				if maxLen > 3*chunkBytes {
					maxLen = 3 * chunkBytes
				}
				n := uint32(1 + rng.Int63n(int64(maxLen)))
				if rng.Intn(3) == 0 {
					got, err := c.Read(off, n)
					if err != nil {
						t.Fatalf("op %d: read(%d,%d): %v", i, off, n, err)
					}
					if !bytes.Equal(got, shadow[off:off+uint64(n)]) {
						t.Fatalf("op %d: read(%d,%d) diverged from shadow", i, off, n)
					}
					continue
				}
				data := make([]byte, n)
				rng.Read(data)
				if err := c.Write(off, data, 0); err != nil {
					t.Fatalf("op %d: write(%d,%d): %v", i, off, n, err)
				}
				copy(shadow[off:], data)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			got, err := readAll(c, size, 32*testBlockBytes)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, shadow) {
				for i := range got {
					if got[i] != shadow[i] {
						t.Fatalf("final image diverges at byte %d (block %d, shard %d)",
							i, i/testBlockBytes, i/shardBytes)
					}
				}
			}
		})
	}
}

func BenchmarkNBDRoundtrip(b *testing.B) {
	st := newStack(b, stackConfig{userBlocks: 65536, volumes: 1, shards: 4, batch: true})
	c := dialExport(b, st.addr, "vol0")
	size := c.Info().Size

	for _, bc := range []struct {
		name    string
		bytes   int
		aligned bool
		write   bool
	}{
		{"write-4KiB-aligned", 4096, true, true},
		{"write-4KiB-unaligned", 4096, false, true},
		{"read-4KiB-aligned", 4096, true, false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			data := make([]byte, bc.bytes)
			rng.Read(data)
			b.SetBytes(int64(bc.bytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := uint64(rng.Int63n(int64(size)-int64(bc.bytes)-testBlockBytes)) &^ (testBlockBytes - 1)
				if !bc.aligned {
					off += 7
				}
				if bc.write {
					if err := c.Write(off, data, 0); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := c.Read(off, uint32(bc.bytes)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
