package nbd

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adapt/internal/lss"
	"adapt/internal/nbd/nbdtest"
	"adapt/internal/placement"
	"adapt/internal/prototype"
	"adapt/internal/segfile"
	"adapt/internal/server"
)

// The NBD SIGKILL restart test runs the real process lifecycle over
// the NBD wire: the test binary re-executes itself as a server process
// (TestNBDDurableHelper below) serving NBD over a durable stack
// (segfile engine log + file-backed volume data planes), the parent
// writes through the NBD client and records every acked payload —
// including unaligned writes that took the RMW path — kills the server
// with SIGKILL, reboots it on the same data directory, and reads every
// recorded span back. An NBD-acked write that does not survive is a
// durability bug.

const nbdE2EVolumes = 2

func nbdE2EStack(dir string) (*server.Server, *Server, *prototype.Engine, error) {
	cfg := lss.Config{
		BlockSize:     testBlockBytes,
		ChunkBlocks:   8,
		SegmentChunks: 4,
		UserBlocks:    4096,
		OverProvision: 0.25,
	}
	pol, err := placement.New(placement.NameSepGC, policyParams(cfg))
	if err != nil {
		return nil, nil, nil, err
	}
	eng, err := prototype.NewEngine(prototype.EngineConfig{
		Store:       cfg,
		Policy:      pol,
		ServiceTime: time.Microsecond,
		Durable: &segfile.Options{
			Dir:  filepath.Join(dir, "engine"),
			Sync: segfile.SyncAlways,
		},
	})
	if err != nil {
		return nil, nil, nil, err
	}
	srv, err := server.New(server.Config{
		Engine:       eng,
		Volumes:      nbdE2EVolumes,
		DataDir:      filepath.Join(dir, "volumes"),
		Batch:        true,
		BatchTimeout: time.Millisecond,
	})
	if err != nil {
		eng.Close()
		return nil, nil, nil, err
	}
	nsrv, err := New(Config{Backend: srv})
	if err != nil {
		eng.Close()
		return nil, nil, nil, err
	}
	return srv, nsrv, eng, nil
}

// TestNBDDurableHelper is not a test: it is the server process the
// SIGKILL test re-executes. It boots on ADAPT_NBD_E2E_DIR, announces
// its NBD address on stdout, and serves until the parent kills it.
func TestNBDDurableHelper(t *testing.T) {
	dir := os.Getenv("ADAPT_NBD_E2E_DIR")
	if dir == "" {
		t.Skip("helper process for TestNBDDurableSIGKILLRestart")
	}
	_, nsrv, _, err := nbdE2EStack(dir)
	if err != nil {
		t.Fatalf("helper boot: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("helper listen: %v", err)
	}
	fmt.Fprintf(os.Stdout, "LISTEN %s\n", ln.Addr())
	_ = nsrv.Serve(ln) // runs until SIGKILL
}

func startNBDHelper(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestNBDDurableHelper$", "-test.count=1")
	cmd.Env = append(os.Environ(), "ADAPT_NBD_E2E_DIR="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "LISTEN "); ok {
				addrCh <- a
				break
			}
		}
		close(addrCh)
		_, _ = io.Copy(io.Discard, stdout)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatal("helper exited without announcing an address")
		}
		return cmd, addr
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatal("helper did not announce an address in 30s")
	}
	panic("unreachable")
}

// TestNBDDurableSIGKILLRestart writes byte spans over NBD to a live
// server process, SIGKILLs it with no shutdown path, reboots on the
// same data directory, and verifies every acked span reads back
// byte-identical over a fresh NBD connection.
func TestNBDDurableSIGKILLRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real server processes")
	}
	dir := t.TempDir()

	cmd, addr := startNBDHelper(t, dir)
	clients := make([]*nbdtest.Client, nbdE2EVolumes)
	for v := range clients {
		c, err := nbdtest.Dial(addr, ExportName(v))
		if err != nil {
			t.Fatalf("dial vol%d: %v", v, err)
		}
		clients[v] = c
	}
	size := clients[0].Info().Size

	// spans[volume] records every acked byte span, latest-wins via
	// replay order. Mix of aligned and unaligned (RMW) writes, some
	// FUA, periodic explicit flushes — every one of them is acked, so
	// every one of them must survive the kill.
	type span struct {
		off  uint64
		data []byte
	}
	spans := make([][]span, nbdE2EVolumes)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		v := rng.Intn(nbdE2EVolumes)
		off := uint64(rng.Int63n(int64(size)))
		maxLen := size - off
		if maxLen > 3*testBlockBytes {
			maxLen = 3 * testBlockBytes
		}
		data := make([]byte, 1+rng.Int63n(int64(maxLen)))
		rng.Read(data)
		var flags uint16
		if i%5 == 4 {
			flags = nbdtest.FlagFUA
		}
		if err := clients[v].Write(off, data, flags); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if i%50 == 49 {
			if err := clients[v].Flush(); err != nil {
				t.Fatalf("flush %d: %v", i, err)
			}
		}
		spans[v] = append(spans[v], span{off, data})
	}

	// SIGKILL: no drain, no flush. Whatever the NBD acks promised must
	// already be on disk.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_ = cmd.Wait()
	for _, c := range clients {
		c.Close()
	}

	cmd2, addr2 := startNBDHelper(t, dir)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	for v := range spans {
		c, err := nbdtest.Dial(addr2, ExportName(v))
		if err != nil {
			t.Fatalf("dial vol%d after restart: %v", v, err)
		}
		// Replay the acked spans into a shadow image, then compare the
		// whole device: replay order resolves overlaps exactly as the
		// serialized writes did.
		shadow := make([]byte, size)
		live, err := readAll(c, size, 64*testBlockBytes)
		if err != nil {
			t.Fatalf("vol %d readback: %v", v, err)
		}
		// Only bytes some acked span touched are pinned; copy untouched
		// bytes from the live image so the comparison checks exactly
		// the acked writes.
		copy(shadow, live)
		for _, s := range spans[v] {
			copy(shadow[s.off:], s.data)
		}
		if !bytes.Equal(live, shadow) {
			for i := range live {
				if live[i] != shadow[i] {
					t.Fatalf("vol %d: acked write lost at byte %d (block %d): got %#x want %#x",
						v, i, i/testBlockBytes, live[i], shadow[i])
				}
			}
		}
		c.Close()
	}
}
