// Package nbd exports the server's tenant volumes over the standard
// Network Block Device protocol, so real initiators — the Linux kernel
// via nbd-client, qemu/qemu-nbd, fio's nbd ioengine, or the in-repo
// pure-Go client (nbdtest) — can attach a volume as an ordinary block
// device and drive the ADAPT engine with real kernel I/O streams.
//
// The server implements the newstyle *fixed* handshake (NBD_OPT_LIST,
// NBD_OPT_INFO, NBD_OPT_GO with export name and block-size info, plus
// the legacy NBD_OPT_EXPORT_NAME) and the transmission phase with
// NBD_CMD_READ, WRITE, FLUSH, TRIM, WRITE_ZEROES, and DISC. Each
// tenant volume is one export, named "vol0".."volN-1" (the empty
// default export maps to vol0).
//
// It is a second frontend over the same volume manager as the bespoke
// wire protocol: both ride server.VolumeBackend, so NBD writes
// coalesce into the same per-shard group commits, obey the same
// per-tenant admission bounds (NBD has no backpressure vocabulary, so
// admission blocks instead of rejecting), and inherit the
// fsync-before-ack durability discipline — which is exactly the FUA
// contract, so NBD_FLAG_SEND_FUA is advertised and every acked write
// already satisfies it. Because a flush on any connection forces every
// committer and an ack already implies durability, the export is safe
// for NBD_FLAG_CAN_MULTI_CONN and several connections may share one
// export.
//
// NBD addresses bytes while the engine addresses blocks; the alignment
// layer (align.go) translates, turning ragged request edges into
// read-modify-write cycles the bespoke frontend never needed.
package nbd

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/server"
	"adapt/internal/server/wire"
	"adapt/internal/telemetry"
)

// Config describes an NBD frontend.
type Config struct {
	// Backend is the volume manager to export; typically the
	// *server.Server also serving the bespoke protocol.
	Backend server.VolumeBackend
	// MaxRequestBytes bounds one request's payload and is advertised
	// as the maximum block size (default DefaultMaxRequestBytes).
	MaxRequestBytes int
	// WriteTimeout bounds each response write (default 30s; negative
	// disables).
	WriteTimeout time.Duration
	// Telemetry, when set, registers the nbd_* instruments.
	Telemetry *telemetry.Set
}

// metrics bundles the NBD instruments; nil fields are no-ops.
type metrics struct {
	conns      *telemetry.Gauge
	handshakes *telemetry.Counter
	reqs       [7]*telemetry.Counter // indexed by command
	bytesIn    *telemetry.Counter
	bytesOut   *telemetry.Counter
	rmwWrites  *telemetry.Counter
	errors     *telemetry.Counter
}

// Server serves the NBD protocol over one VolumeBackend.
type Server struct {
	cfg Config
	b   server.VolumeBackend
	met metrics

	blockBytes int
	volBlocks  int64
	volumes    int

	// rmw serializes read-modify-write cycles per volume so two
	// unaligned writes to the same block cannot interleave their read
	// and write halves (overlapping *aligned* concurrent writes remain
	// undefined, as on any block device).
	rmw []sync.Mutex

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	drainCh  chan struct{}
	connWG   sync.WaitGroup
}

// New builds an NBD frontend over the backend.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("nbd: nil backend")
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = DefaultMaxRequestBytes
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	b := cfg.Backend
	if b.Volumes() < 1 || b.VolumeBlocks() < 1 || b.BlockBytes() < 1 {
		return nil, fmt.Errorf("nbd: backend exports no volumes (%d volumes × %d blocks)",
			b.Volumes(), b.VolumeBlocks())
	}
	if cfg.MaxRequestBytes < b.BlockBytes() {
		return nil, fmt.Errorf("nbd: max request %d bytes below block size %d",
			cfg.MaxRequestBytes, b.BlockBytes())
	}
	s := &Server{
		cfg:        cfg,
		b:          b,
		blockBytes: b.BlockBytes(),
		volBlocks:  b.VolumeBlocks(),
		volumes:    b.Volumes(),
		rmw:        make([]sync.Mutex, b.Volumes()),
		conns:      make(map[net.Conn]struct{}),
		drainCh:    make(chan struct{}),
	}
	if ts := cfg.Telemetry; ts != nil {
		s.met.conns = ts.Registry.NewGauge(telemetry.MetricNBDConns, "Open NBD connections")
		s.met.handshakes = ts.Registry.NewCounter(telemetry.MetricNBDHandshakes,
			"Completed NBD handshakes (transmission phase entered)")
		for _, cmd := range []uint16{cmdRead, cmdWrite, cmdDisc, cmdFlush, cmdTrim, cmdWriteZeroes} {
			s.met.reqs[cmd] = ts.Registry.NewCounter(
				fmt.Sprintf("%s{cmd=\"%s\"}", telemetry.MetricNBDRequestsPrefix, cmdName(cmd)),
				"NBD transmission requests by command")
		}
		s.met.bytesIn = ts.Registry.NewCounter(telemetry.MetricNBDBytesIn, "NBD WRITE payload bytes received")
		s.met.bytesOut = ts.Registry.NewCounter(telemetry.MetricNBDBytesOut, "NBD READ payload bytes sent")
		s.met.rmwWrites = ts.Registry.NewCounter(telemetry.MetricNBDRMWWrites,
			"Unaligned NBD writes served with a read-modify-write cycle")
		s.met.errors = ts.Registry.NewCounter(telemetry.MetricNBDErrors, "NBD error replies")
	}
	return s, nil
}

// ExportName returns the export name of volume vol.
func ExportName(vol int) string { return fmt.Sprintf("vol%d", vol) }

// exportSize is the byte size of every export.
func (s *Server) exportSize() uint64 { return uint64(s.volBlocks) * uint64(s.blockBytes) }

// resolveExport maps an export name to a volume; "" is the default
// export (vol0).
func (s *Server) resolveExport(name string) (uint32, bool) {
	if name == "" {
		return 0, true
	}
	var vol int
	if _, err := fmt.Sscanf(name, "vol%d", &vol); err != nil || name != ExportName(vol) {
		return 0, false
	}
	if vol < 0 || vol >= s.volumes {
		return 0, false
	}
	return uint32(vol), true
}

// transmissionFlags is the per-export flag set: writes, flush, FUA
// (subsumed by fsync-before-ack), trim, write-zeroes, multi-conn.
func (s *Server) transmissionFlags() uint16 {
	return tflagHasFlags | tflagSendFlush | tflagSendFUA |
		tflagSendTrim | tflagSendWriteZeroes | tflagCanMultiConn
}

// Serve accepts NBD connections on ln until Shutdown closes it. It
// returns nil after a graceful Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		if s.draining.Load() {
			conn.SetReadDeadline(time.Now())
		}
		s.mu.Unlock()
		s.met.conns.Add(1)
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

// Shutdown drains the NBD frontend: in-flight requests complete and
// are acked, then connections close. The backend stays open. Call it
// before draining the backend itself, so pending NBD writes can still
// commit.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	close(s.drainCh)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// errAborted marks a clean client-requested negotiation end
// (NBD_OPT_ABORT): close the connection without a transmission phase.
var errAborted = errors.New("nbd: negotiation aborted by client")

// serveConn runs one connection: handshake, then transmission.
func (s *Server) serveConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.met.conns.Add(-1)
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, 64<<10)
	vol, err := s.handshake(rw{br, conn})
	if err != nil {
		return
	}
	s.met.handshakes.Inc()
	s.transmit(conn, br, vol)
}

// rw pairs the connection's buffered reader with its raw writer for
// the synchronous handshake phase.
type rw struct {
	io.Reader
	io.Writer
}

// handshake runs the newstyle fixed negotiation and returns the volume
// the client committed to (NBD_OPT_GO or NBD_OPT_EXPORT_NAME). It is
// written against io.ReadWriter so the fuzz harness can drive it from
// a byte slice.
func (s *Server) handshake(c io.ReadWriter) (uint32, error) {
	// Greeting: NBDMAGIC, IHAVEOPT, handshake flags.
	greet := appendU64(nil, nbdMagic)
	greet = appendU64(greet, optMagic)
	greet = appendU16(greet, flagFixedNewstyle|flagNoZeroes)
	if _, err := c.Write(greet); err != nil {
		return 0, err
	}
	var cf [4]byte
	if _, err := io.ReadFull(c, cf[:]); err != nil {
		return 0, err
	}
	clientFlags := uint32(cf[0])<<24 | uint32(cf[1])<<16 | uint32(cf[2])<<8 | uint32(cf[3])
	if clientFlags&clientFlagFixedNewstyle == 0 {
		return 0, fmt.Errorf("%w: client rejects fixed newstyle (flags %#x)", ErrProtocol, clientFlags)
	}
	noZeroes := clientFlags&clientFlagNoZeroes != 0
	if clientFlags&^uint32(clientFlagFixedNewstyle|clientFlagNoZeroes) != 0 {
		return 0, fmt.Errorf("%w: unknown client flags %#x", ErrProtocol, clientFlags)
	}

	for {
		opt, err := readOption(c)
		if err != nil {
			return 0, err
		}
		switch opt.typ {
		case optList:
			if len(opt.data) != 0 {
				if err := s.optionErr(c, opt.typ, repErrInvalid, "LIST carries no data"); err != nil {
					return 0, err
				}
				continue
			}
			var buf []byte
			for v := 0; v < s.volumes; v++ {
				name := ExportName(v)
				entry := appendU32(nil, uint32(len(name)))
				entry = append(entry, name...)
				buf = appendOptionReply(buf, opt.typ, repServer, entry)
			}
			buf = appendOptionReply(buf, opt.typ, repAck, nil)
			if _, err := c.Write(buf); err != nil {
				return 0, err
			}

		case optInfo, optGo:
			name, infos, perr := parseInfoPayload(opt.data)
			if perr != nil {
				if err := s.optionErr(c, opt.typ, repErrInvalid, perr.Error()); err != nil {
					return 0, err
				}
				continue
			}
			vol, ok := s.resolveExport(name)
			if !ok {
				if err := s.optionErr(c, opt.typ, repErrUnknown, fmt.Sprintf("no export %q", name)); err != nil {
					return 0, err
				}
				continue
			}
			wantName := false
			for _, inf := range infos {
				if inf == infoName {
					wantName = true
				}
			}
			var buf []byte
			// NBD_INFO_EXPORT is mandatory; block size is always
			// volunteered so initiators learn the preferred (engine
			// block) and maximum (request cap) sizes.
			exp := appendU16(nil, infoExport)
			exp = appendU64(exp, s.exportSize())
			exp = appendU16(exp, s.transmissionFlags())
			buf = appendOptionReply(buf, opt.typ, repInfo, exp)
			bs := appendU16(nil, infoBlockSize)
			bs = appendU32(bs, 1) // minimum: the alignment layer absorbs ragged edges
			bs = appendU32(bs, uint32(s.blockBytes))
			bs = appendU32(bs, uint32(s.cfg.MaxRequestBytes))
			buf = appendOptionReply(buf, opt.typ, repInfo, bs)
			if wantName {
				resolved := ExportName(int(vol))
				nm := appendU16(nil, infoName)
				nm = append(nm, resolved...)
				buf = appendOptionReply(buf, opt.typ, repInfo, nm)
			}
			buf = appendOptionReply(buf, opt.typ, repAck, nil)
			if _, err := c.Write(buf); err != nil {
				return 0, err
			}
			if opt.typ == optGo {
				return vol, nil
			}

		case optExportName:
			// Legacy committal option: no error reply is possible, so an
			// unknown export terminates the session (per spec).
			vol, ok := s.resolveExport(string(opt.data))
			if !ok {
				return 0, fmt.Errorf("%w: EXPORT_NAME %q unknown", ErrProtocol, string(opt.data))
			}
			buf := appendU64(nil, s.exportSize())
			buf = appendU16(buf, s.transmissionFlags())
			if !noZeroes {
				buf = append(buf, make([]byte, 124)...)
			}
			if _, err := c.Write(buf); err != nil {
				return 0, err
			}
			return vol, nil

		case optAbort:
			// Acked, then the connection closes without transmission.
			if _, err := c.Write(appendOptionReply(nil, opt.typ, repAck, nil)); err != nil {
				return 0, err
			}
			return 0, errAborted

		default:
			// STARTTLS, STRUCTURED_REPLY, META_CONTEXT, and anything newer.
			if err := s.optionErr(c, opt.typ, repErrUnsup, "unsupported option"); err != nil {
				return 0, err
			}
		}
	}
}

// optionErr sends one negotiation error reply with a human-readable
// message payload.
func (s *Server) optionErr(c io.Writer, opt, typ uint32, msg string) error {
	s.met.errors.Inc()
	_, err := c.Write(appendOptionReply(nil, opt, typ, []byte(msg)))
	return err
}

// outFrame pairs one encoded reply with its span.
type outFrame struct {
	buf []byte
	sp  *telemetry.Span
}

// transmit serves the transmission phase on one connection: a reader
// loop decoding and dispatching requests, and a writer goroutine
// serializing (possibly out-of-order) replies. Mirrors the bespoke
// frontend's connection anatomy so both frontends drain identically.
func (s *Server) transmit(conn net.Conn, br io.Reader, vol uint32) {
	ring := s.b.OpenSpanRing()
	defer s.b.CloseSpanRing(ring)
	respCh := make(chan outFrame, 64)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.connWriter(conn, respCh, ring)
	}()

	var pending sync.WaitGroup
	for {
		req, err := readRequest(br)
		if err != nil {
			break
		}
		sp := s.b.NewSpan()
		var payload []byte
		if req.cmd == cmdWrite && req.length > 0 {
			if int64(req.length) > int64(s.cfg.MaxRequestBytes) {
				// The unread payload poisons the stream; reply and close.
				s.met.errors.Inc()
				s.b.DropSpan(sp)
				respCh <- outFrame{buf: appendSimpleReply(nil, nbdEOVERFLOW, req.handle)}
				break
			}
			payload = make([]byte, req.length)
			if _, err := io.ReadFull(br, payload); err != nil {
				s.b.DropSpan(sp)
				break
			}
		}
		if sp != nil {
			sp.ID = req.handle
			sp.Volume = vol
			sp.Op = uint8(nbdOpToWire(req.cmd))
			sp.LBA = req.offset / uint64(s.blockBytes)
			sp.Count = req.length / uint32(s.blockBytes)
			sp.MarkAt(telemetry.StageDecode, s.b.Now())
		}
		if req.cmd == cmdDisc {
			s.countCmd(cmdDisc)
			s.b.DropSpan(sp)
			break
		}
		pending.Add(1)
		delivered := false
		reply := func(errno uint32, data []byte) {
			if delivered {
				panic("nbd: double reply to one request")
			}
			delivered = true
			if errno != 0 {
				s.met.errors.Inc()
			}
			if sp != nil {
				sp.Status = uint8(errnoToStatus(errno))
			}
			buf := appendSimpleReply(nil, errno, req.handle)
			buf = append(buf, data...)
			respCh <- outFrame{buf: buf, sp: sp}
			pending.Done()
		}
		s.dispatch(vol, req, payload, sp, reply)
	}
	pending.Wait()
	close(respCh)
	<-writerDone
}

// connWriter writes encoded replies, flushing when the queue
// momentarily empties; after a write failure it drains the channel so
// responders never block. Spans finish after their bytes hit the
// socket.
func (s *Server) connWriter(conn net.Conn, respCh <-chan outFrame, ring *telemetry.SpanRing) {
	buf := make([]byte, 0, 64<<10)
	var spans []*telemetry.Span
	broken := false
	flush := func() {
		if !broken && len(buf) > 0 {
			if s.cfg.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			if _, err := conn.Write(buf); err != nil {
				broken = true
			}
		}
		buf = buf[:0]
		for _, sp := range spans {
			s.b.FinishSpan(sp, ring)
		}
		spans = spans[:0]
	}
	for of := range respCh {
		if of.sp != nil {
			spans = append(spans, of.sp)
		}
		if broken {
			flush()
			continue
		}
		buf = append(buf, of.buf...)
		if len(respCh) == 0 || len(buf) >= 48<<10 {
			flush()
		}
	}
	flush()
}

// countCmd bumps the per-command request counter.
func (s *Server) countCmd(cmd uint16) {
	if int(cmd) < len(s.met.reqs) {
		s.met.reqs[cmd].Inc()
	}
}

// dispatch validates and executes one transmission request. reply must
// be called exactly once, possibly from another goroutine (batched
// writes ack from the group commit's done callback).
func (s *Server) dispatch(vol uint32, req request, payload []byte, sp *telemetry.Span, reply func(errno uint32, data []byte)) {
	s.countCmd(req.cmd)
	size := s.exportSize()
	switch req.cmd {
	case cmdRead, cmdWrite, cmdTrim, cmdWriteZeroes:
		if req.length == 0 {
			reply(nbdEINVAL, nil)
			return
		}
		if int64(req.length) > int64(s.cfg.MaxRequestBytes) {
			reply(nbdEOVERFLOW, nil)
			return
		}
		if req.offset > size || uint64(req.length) > size-req.offset {
			// Beyond-end writes are ENOSPC per the spec; reads EINVAL.
			if req.cmd == cmdWrite || req.cmd == cmdWriteZeroes {
				reply(nbdENOSPC, nil)
			} else {
				reply(nbdEINVAL, nil)
			}
			return
		}
	case cmdFlush:
		if req.offset != 0 || req.length != 0 {
			reply(nbdEINVAL, nil)
			return
		}
	default:
		reply(nbdEINVAL, nil)
		return
	}

	if err := s.b.Acquire(vol); err != nil {
		reply(mapErr(err), nil)
		return
	}
	if sp != nil {
		sp.MarkAt(telemetry.StageAdmission, s.b.Now())
	}
	finish := func(errno uint32, data []byte) {
		s.b.Release(vol)
		reply(errno, data)
	}
	switch req.cmd {
	case cmdRead:
		data, err := s.readSpan(vol, req.offset, req.length, sp)
		if err != nil {
			finish(mapErr(err), nil)
			return
		}
		s.met.bytesOut.Add(int64(len(data)))
		finish(0, data)
	case cmdWrite:
		s.met.bytesIn.Add(int64(len(payload)))
		s.writeSpan(vol, req.offset, payload, sp, func(err error) {
			finish(mapErr(err), nil)
		})
	case cmdWriteZeroes:
		// NBD_CMD_FLAG_NO_HOLE is advisory — zeroes are written either
		// way, which trivially satisfies it.
		s.writeSpan(vol, req.offset, make([]byte, req.length), sp, func(err error) {
			finish(mapErr(err), nil)
		})
	case cmdTrim:
		finish(mapErr(s.trimSpan(vol, req.offset, req.length, sp)), nil)
	case cmdFlush:
		finish(mapErr(s.b.Flush(vol, sp)), nil)
	}
}

// mapErr converts a backend error to an NBD errno.
func mapErr(err error) uint32 {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, server.ErrShuttingDown):
		return nbdESHUTDOWN
	case errors.Is(err, server.ErrOutOfRange), errors.Is(err, server.ErrBadRequest),
		errors.Is(err, server.ErrBadVolume):
		return nbdEINVAL
	default:
		return nbdEIO
	}
}

// nbdOpToWire maps an NBD command to the wire opcode vocabulary so
// spans from both frontends render uniformly in /debug/trace and share
// the per-stage histograms.
func nbdOpToWire(cmd uint16) wire.Op {
	switch cmd {
	case cmdRead:
		return wire.OpRead
	case cmdWrite, cmdWriteZeroes:
		return wire.OpWrite
	case cmdTrim:
		return wire.OpTrim
	case cmdFlush:
		return wire.OpFlush
	default:
		return 0
	}
}

// errnoToStatus maps an NBD errno to the wire status vocabulary for
// span rendering.
func errnoToStatus(errno uint32) wire.Status {
	switch errno {
	case 0:
		return wire.StatusOK
	case nbdESHUTDOWN:
		return wire.StatusShuttingDown
	case nbdEINVAL, nbdEOVERFLOW:
		return wire.StatusBadRequest
	case nbdENOSPC:
		return wire.StatusOutOfRange
	default:
		return wire.StatusInternal
	}
}
