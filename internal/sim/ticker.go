package sim

// Ticker generates fixed-interval deadlines on the simulated clock. It
// is the virtual-time analogue of time.Ticker for code that must fire
// at regular boundaries of a trace replay (the telemetry recorder's
// window grid). The zero Ticker is unusable; construct with NewTicker.
type Ticker struct {
	next  Time
	every Time
}

// NewTicker returns a ticker whose first deadline is start+every.
func NewTicker(start, every Time) Ticker {
	if every <= 0 {
		every = 1
	}
	return Ticker{next: start + every, every: every}
}

// Due reports whether the next deadline has been reached at now.
func (t *Ticker) Due(now Time) bool { return now >= t.next }

// Next returns the pending deadline.
func (t *Ticker) Next() Time { return t.next }

// Every returns the interval.
func (t *Ticker) Every() Time { return t.every }

// Advance moves to the immediately following deadline.
func (t *Ticker) Advance() { t.next += t.every }

// FastForward skips deadlines so that the pending one is the first
// boundary strictly after now, preserving grid alignment. A no-op when
// the pending deadline is already in the future.
func (t *Ticker) FastForward(now Time) {
	if now >= t.next {
		t.next += ((now-t.next)/t.every + 1) * t.every
	}
}
