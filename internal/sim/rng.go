package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). Every stochastic component in
// the repository draws from an explicitly seeded RNG so that every
// experiment is exactly reproducible; the host math/rand global state
// is never used.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// Avoid the all-zero state, which xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Int63n returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n called with non-positive n")
	}
	// Lemire-style rejection keeps the distribution exactly uniform.
	max := uint64(1)<<63 - 1
	bound := max - max%uint64(n)
	for {
		v := r.Uint64() >> 1
		if v < bound {
			return int64(v % uint64(n))
		}
	}
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int { return int(r.Int63n(int64(n))) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * sqrt(-2*ln(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -ln(u)
		}
	}
}

// Split derives an independent child generator; useful for giving each
// synthetic volume its own stream without coupling to draw order.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func sqrt(x float64) float64 { return math.Sqrt(x) }
func ln(x float64) float64   { return math.Log(x) }
