package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
		{90 * Minute, "1.50h"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds = %v, want 1.5", got)
	}
}

func TestByteSize(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512B"},
		{64 << 10, "64.00KiB"},
		{3 << 20, "3.00MiB"},
		{5 << 30, "5.00GiB"},
		{2 << 40, "2.00TiB"},
	}
	for _, c := range cases {
		if got := ByteSize(c.n); got != c.want {
			t.Errorf("ByteSize(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestInt63nRange(t *testing.T) {
	f := func(seed uint64, nRaw uint32) bool {
		n := int64(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInt63nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	NewRNG(1).Int63n(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(7)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ≈ 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ≈ 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(10)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ≈ 1", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Split()
	// Child must not replay the parent's stream.
	p, c := NewRNG(5), child
	match := 0
	for i := 0; i < 100; i++ {
		if p.Uint64() == c.Uint64() {
			match++
		}
	}
	if match > 2 {
		t.Fatalf("child replays parent stream: %d/100 matches", match)
	}
}

func TestTimeStringNotEmpty(t *testing.T) {
	for _, tt := range []Time{0, 1, Microsecond, Second, Hour} {
		if strings.TrimSpace(tt.String()) == "" {
			t.Fatalf("empty String() for %d", int64(tt))
		}
	}
}
