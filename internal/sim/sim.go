// Package sim provides the simulation primitives shared by the
// log-structured store, the placement policies, and the experiment
// harness: a nanosecond wall clock, a write-volume virtual clock, and
// byte-size helpers.
//
// Two notions of time coexist in this codebase, mirroring the paper:
//
//   - Time is simulated wall-clock time in nanoseconds, driven by trace
//     timestamps. It controls only arrival density and the SLA padding
//     window.
//   - WriteClock counts user blocks written so far. All hotness,
//     lifespan, and age computations in the placement policies use the
//     write clock, which is the standard "write volume" virtual time
//     from log-structured storage literature (SepBIT, MiDA).
package sim

import "fmt"

// Time is simulated wall-clock time in nanoseconds since the start of a
// replay. It is never read from the host clock.
type Time int64

// Common durations in simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Hour:
		return fmt.Sprintf("%.2fh", float64(t)/float64(Hour))
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// WriteClock is virtual time measured in user blocks written. A block
// written at write-clock w1 and overwritten at w2 has lifespan w2-w1.
type WriteClock int64

// ByteSize formats a byte count with binary units, e.g. "64KiB".
func ByteSize(n int64) string {
	const (
		kib = 1 << 10
		mib = 1 << 20
		gib = 1 << 30
		tib = 1 << 40
	)
	switch {
	case n >= tib:
		return fmt.Sprintf("%.2fTiB", float64(n)/tib)
	case n >= gib:
		return fmt.Sprintf("%.2fGiB", float64(n)/gib)
	case n >= mib:
		return fmt.Sprintf("%.2fMiB", float64(n)/mib)
	case n >= kib:
		return fmt.Sprintf("%.2fKiB", float64(n)/kib)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
