package sim

import "testing"

func TestTickerBasics(t *testing.T) {
	tk := NewTicker(0, 10)
	if tk.Next() != 10 || tk.Every() != 10 {
		t.Fatalf("next=%v every=%v, want 10/10", tk.Next(), tk.Every())
	}
	if tk.Due(9) {
		t.Fatal("due before first deadline")
	}
	if !tk.Due(10) {
		t.Fatal("not due at the deadline")
	}
	tk.Advance()
	if tk.Next() != 20 {
		t.Fatalf("next after advance = %v, want 20", tk.Next())
	}
}

func TestTickerFastForward(t *testing.T) {
	tk := NewTicker(0, 10)
	tk.FastForward(57)
	// The next deadline must be the smallest grid boundary strictly
	// after now, keeping boundaries multiples of the interval.
	if tk.Next() != 60 {
		t.Fatalf("next = %v, want 60", tk.Next())
	}
	tk.FastForward(59) // not due: no change
	if tk.Next() != 60 {
		t.Fatalf("next = %v after idle fast-forward, want 60", tk.Next())
	}
	tk.FastForward(60) // exactly on the boundary: move past it
	if tk.Next() != 70 {
		t.Fatalf("next = %v, want 70", tk.Next())
	}
}

func TestTickerNonZeroStart(t *testing.T) {
	tk := NewTicker(100, 25)
	if tk.Next() != 125 {
		t.Fatalf("next = %v, want 125", tk.Next())
	}
	tk.FastForward(1000)
	if tk.Next() != 1025 {
		t.Fatalf("next = %v, want 1025 (grid anchored at 100)", tk.Next())
	}
}
