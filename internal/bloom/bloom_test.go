package bloom

import (
	"testing"
	"testing/quick"

	"adapt/internal/sim"
)

func TestNoFalseNegatives(t *testing.T) {
	f := NewFilter(1000, 0.01)
	for i := int64(0); i < 1000; i++ {
		f.Insert(i * 7919)
	}
	for i := int64(0); i < 1000; i++ {
		if !f.Contains(i * 7919) {
			t.Fatalf("false negative for key %d", i*7919)
		}
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	f := NewFilter(10000, 0.01)
	for i := int64(0); i < 10000; i++ {
		f.Insert(i)
	}
	fp := 0
	const probes = 20000
	for i := int64(0); i < probes; i++ {
		if f.Contains(1_000_000 + i) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 {
		t.Fatalf("false positive rate %.4f exceeds 3%% (target 1%%)", rate)
	}
}

func TestNoFalseNegativesQuick(t *testing.T) {
	check := func(keys []int64) bool {
		f := NewFilter(len(keys)+1, 0.01)
		for _, k := range keys {
			f.Insert(k)
		}
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	f := NewFilter(10, 0.01)
	f.Insert(1)
	if f.Count() != 1 {
		t.Fatalf("Count = %d, want 1", f.Count())
	}
	f.Reset()
	if f.Count() != 0 {
		t.Fatalf("Count after reset = %d, want 0", f.Count())
	}
	if f.Contains(1) {
		t.Fatal("filter still contains key after Reset")
	}
}

func TestFullBudget(t *testing.T) {
	f := NewFilter(3, 0.01)
	for i := int64(0); i < 3; i++ {
		if f.Full() {
			t.Fatalf("filter full after %d insertions, budget 3", i)
		}
		f.Insert(i)
	}
	if !f.Full() {
		t.Fatal("filter not full after budget insertions")
	}
}

func TestDegenerateParams(t *testing.T) {
	// Zero/negative n and out-of-range fpp must not panic.
	f := NewFilter(0, -1)
	f.Insert(5)
	if !f.Contains(5) {
		t.Fatal("degenerate filter lost a key")
	}
}

func TestCascadeScoreCountsEpochs(t *testing.T) {
	c := NewCascade(4, 2, 0.001)
	// Insert key 42 into three consecutive epochs; fill each epoch.
	for epoch := 0; epoch < 3; epoch++ {
		c.Insert(42)
		c.Insert(int64(1000 + epoch)) // filler to complete the epoch
	}
	if got := c.Score(42); got != 3 {
		t.Fatalf("Score(42) = %d, want 3", got)
	}
	if got := c.Score(999999); got != 0 {
		t.Fatalf("Score(unknown) = %d, want 0", got)
	}
}

func TestCascadeFIFOEviction(t *testing.T) {
	c := NewCascade(2, 1, 0.001)
	c.Insert(1) // epoch 0
	c.Insert(2) // epoch 1 (epoch 0 still live)
	c.Insert(3) // epoch 0 recycled; key 1 forgotten
	if c.Score(1) != 0 {
		t.Fatalf("evicted key still scored: %d", c.Score(1))
	}
	if c.Score(3) != 1 {
		t.Fatalf("Score(3) = %d, want 1", c.Score(3))
	}
}

func TestCascadeScoreNeverExceedsDepth(t *testing.T) {
	c := NewCascade(3, 4, 0.01)
	rng := sim.NewRNG(3)
	for i := 0; i < 100; i++ {
		c.Insert(rng.Int63n(8))
	}
	for k := int64(0); k < 8; k++ {
		if s := c.Score(k); s < 0 || s > c.Depth() {
			t.Fatalf("Score(%d) = %d out of range [0,%d]", k, s, c.Depth())
		}
	}
}

func TestFootprintPositive(t *testing.T) {
	if NewFilter(100, 0.01).Footprint() <= 0 {
		t.Fatal("filter footprint must be positive")
	}
	if NewCascade(4, 100, 0.01).Footprint() <= 0 {
		t.Fatal("cascade footprint must be positive")
	}
}

func BenchmarkInsert(b *testing.B) {
	f := NewFilter(1<<20, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Insert(int64(i))
	}
}

func BenchmarkCascadeScore(b *testing.B) {
	c := NewCascade(4, 1<<16, 0.01)
	for i := int64(0); i < 1<<16; i++ {
		c.Insert(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Score(int64(i))
	}
}
