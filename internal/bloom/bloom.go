// Package bloom provides a Bloom filter and the cascading discriminator
// used by ADAPT's proactive demotion placement (§3.4). The
// discriminator is a FIFO ring of fixed-capacity Bloom filters: lookups
// return how many of the filters contain a key (the "re-access score"),
// and the oldest filter is evicted when the newest fills up, bounding
// memory.
package bloom

import "math"

// Filter is a standard Bloom filter over int64 keys using double
// hashing (Kirsch–Mitzenmacher) on a splitmix64-derived pair.
type Filter struct {
	bits   []uint64
	nbits  uint64
	k      int
	count  int
	budget int
}

// NewFilter sizes a filter for n expected insertions at the given
// false-positive probability.
func NewFilter(n int, fpp float64) *Filter {
	if n < 1 {
		n = 1
	}
	if fpp <= 0 || fpp >= 1 {
		fpp = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fpp) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Filter{
		bits:   make([]uint64, (m+63)/64),
		nbits:  (m + 63) / 64 * 64,
		k:      k,
		budget: n,
	}
}

func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (f *Filter) hashes(key int64) (uint64, uint64) {
	h1 := mix(uint64(key))
	h2 := mix(h1) | 1 // odd increment to cover all positions
	return h1, h2
}

// Insert adds key to the filter.
func (f *Filter) Insert(key int64) {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.count++
}

// Contains reports whether key may have been inserted. False positives
// are possible; false negatives are not.
func (f *Filter) Contains(key int64) bool {
	h1, h2 := f.hashes(key)
	for i := 0; i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.nbits
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of insertions so far.
func (f *Filter) Count() int { return f.count }

// Full reports whether the filter has used its insertion budget.
func (f *Filter) Full() bool { return f.count >= f.budget }

// Reset clears all bits and the insertion count.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.count = 0
}

// Footprint returns the filter's memory use in bytes.
func (f *Filter) Footprint() int64 { return int64(len(f.bits)) * 8 }

// Cascade is the cascading discriminator: a FIFO ring of depth Bloom
// filters. Insertions go to the newest filter; when it fills, the
// oldest filter is recycled. Score(key) counts how many live filters
// contain the key, approximating how many recent epochs re-accessed it.
type Cascade struct {
	filters []*Filter
	head    int // index of the newest filter
	live    int // how many filters have received any insertions
}

// NewCascade builds a discriminator of depth filters, each sized for
// perFilter insertions at fpp.
func NewCascade(depth, perFilter int, fpp float64) *Cascade {
	if depth < 1 {
		depth = 1
	}
	c := &Cascade{filters: make([]*Filter, depth)}
	for i := range c.filters {
		c.filters[i] = NewFilter(perFilter, fpp)
	}
	c.live = 1
	return c
}

// Insert records key in the newest filter, rotating the ring when the
// newest filter is full (the oldest epoch is forgotten).
func (c *Cascade) Insert(key int64) {
	f := c.filters[c.head]
	if f.Full() {
		c.head = (c.head + 1) % len(c.filters)
		f = c.filters[c.head]
		f.Reset()
		if c.live < len(c.filters) {
			c.live++
		}
	}
	f.Insert(key)
}

// Score returns the number of filters that contain key (0..depth).
func (c *Cascade) Score(key int64) int {
	s := 0
	for i := 0; i < c.live; i++ {
		idx := (c.head - i + len(c.filters)) % len(c.filters)
		if c.filters[idx].Contains(key) {
			s++
		}
	}
	return s
}

// Depth returns the number of filters in the cascade.
func (c *Cascade) Depth() int { return len(c.filters) }

// Footprint returns the cascade's memory use in bytes.
func (c *Cascade) Footprint() int64 {
	var n int64
	for _, f := range c.filters {
		n += f.Footprint()
	}
	return n
}
