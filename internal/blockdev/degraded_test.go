package blockdev

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"adapt/internal/sim"
)

// fillStripes writes n random stripes and returns the data chunks per
// stripe, regenerated deterministically from seed.
func fillStripes(d *DataArray, seed uint64, n, cols, chunkBytes int) [][][]byte {
	rng := sim.NewRNG(seed)
	out := make([][][]byte, n)
	for r := 0; r < n; r++ {
		stripe := make([][]byte, cols)
		for i := range stripe {
			stripe[i] = make([]byte, chunkBytes)
			for j := range stripe[i] {
				stripe[i][j] = byte(rng.Uint64())
			}
		}
		out[r] = stripe
		if err := d.WriteStripe(stripe); err != nil {
			panic(err)
		}
	}
	return out
}

// TestDataArrayDegradedReadProperty is the degraded-mode property
// test: for EVERY choice of failed column, every data chunk — written
// before or after the failure — reads back byte-identical through the
// degraded path, and the incremental rebuild restores the column
// exactly.
func TestDataArrayDegradedReadProperty(t *testing.T) {
	const cols, chunkBytes = 3, 32
	f := func(seed uint64, preRows, postRows, burst uint8) bool {
		pre := int(preRows%6) + 1
		post := int(postRows % 4)
		step := int(burst%3) + 1
		for failCol := 0; failCol <= cols; failCol++ {
			d := NewDataArray(cols, chunkBytes)
			want := fillStripes(d, seed, pre, cols, chunkBytes)
			if err := d.FailColumn(failCol); err != nil {
				t.Logf("FailColumn(%d): %v", failCol, err)
				return false
			}
			// Degraded writes land survivor + spare copies.
			want = append(want, fillStripes(d, seed+1, post, cols, chunkBytes)...)

			check := func(stage string) bool {
				for r := range want {
					for i := 0; i < cols; i++ {
						got, err := d.ReadChunk(int64(r), i)
						if err != nil {
							t.Logf("col %d %s: ReadChunk(%d,%d): %v", failCol, stage, r, i, err)
							return false
						}
						if !bytes.Equal(got, want[r][i]) {
							t.Logf("col %d %s: chunk (%d,%d) mismatch", failCol, stage, r, i)
							return false
						}
					}
				}
				return true
			}
			if !check("degraded") {
				return false
			}
			if d.DegradedReads() == 0 && failCol != int(d.rows)%(cols+1) && pre > 0 {
				// At least one pre-failure data read of the failed column
				// must have gone through reconstruction — unless the failed
				// column held only parity for every stripe read, which
				// cannot happen across ≥cols+1 reads of rotating parity.
				if pre*cols > cols+1 {
					t.Logf("col %d: no degraded reads recorded", failCol)
					return false
				}
			}
			// Incremental rebuild in small bursts with progress moving
			// monotonically to completion.
			prevDone := int64(-1)
			for {
				done, total := d.RebuildProgress()
				if done < prevDone {
					t.Logf("col %d: rebuild cursor moved backwards", failCol)
					return false
				}
				prevDone = done
				_, finished, err := d.RebuildStep(step)
				if err != nil {
					t.Logf("col %d: RebuildStep: %v", failCol, err)
					return false
				}
				if finished {
					break
				}
				if total == 0 {
					t.Logf("col %d: zero total while unfinished", failCol)
					return false
				}
			}
			if d.FailedColumn() != -1 {
				t.Logf("col %d: still failed after rebuild", failCol)
				return false
			}
			// Post-rebuild reads hit the disks directly and stay identical.
			before := d.DegradedReads()
			if !check("rebuilt") {
				return false
			}
			if d.DegradedReads() != before {
				t.Logf("col %d: degraded reads after rebuild completed", failCol)
				return false
			}
			// The restored column must XOR-verify against the others.
			for r := int64(0); r < d.Rows(); r++ {
				rec, err := d.ReconstructColumn(r, failCol)
				if err != nil {
					t.Logf("col %d: post-rebuild reconstruct: %v", failCol, err)
					return false
				}
				if !bytes.Equal(rec, d.disks[failCol][r]) {
					t.Logf("col %d: restored column fails parity check at row %d", failCol, r)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDataArrayDoubleFaultRejected(t *testing.T) {
	d := NewDataArray(3, 16)
	fillStripes(d, 9, 3, 3, 16)
	if err := d.FailColumn(1); err != nil {
		t.Fatal(err)
	}
	if err := d.FailColumn(2); !errors.Is(err, ErrDoubleFault) {
		t.Fatalf("second failure: %v, want ErrDoubleFault", err)
	}
	if _, err := d.ReconstructColumn(0, 2); !errors.Is(err, ErrDoubleFault) {
		t.Fatalf("reconstructing a second column: %v, want ErrDoubleFault", err)
	}
	if err := d.FailColumn(7); !errors.Is(err, ErrBadStripe) {
		t.Fatalf("out-of-range column: %v", err)
	}
}

func TestDataArrayRebuildAccounting(t *testing.T) {
	d := NewDataArray(3, 16)
	fillStripes(d, 3, 8, 3, 16)
	if err := d.FailColumn(0); err != nil {
		t.Fatal(err)
	}
	// Two degraded stripes arrive mid-failure: their failed-column
	// chunks land in the spare and must not be re-reconstructed.
	fillStripes(d, 4, 2, 3, 16)
	var rebuilt int
	for {
		n, done, err := d.RebuildStep(3)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt += n
		if done {
			break
		}
	}
	if rebuilt != 8 {
		t.Fatalf("rebuilt %d chunks, want 8 (pre-failure rows only)", rebuilt)
	}
	if d.RebuiltChunks() != 8 {
		t.Fatalf("RebuiltChunks = %d", d.RebuiltChunks())
	}
	// Healthy array: RebuildStep is a completed no-op.
	if n, done, err := d.RebuildStep(1); n != 0 || !done || err != nil {
		t.Fatalf("healthy RebuildStep = (%d,%v,%v)", n, done, err)
	}
	if _, _, err := (&DataArray{failed: 0, chunkBytes: 1, dataColumns: 1, disks: make([][][]byte, 2)}).RebuildStep(0); err == nil {
		t.Fatal("non-positive burst accepted")
	}
}
