package blockdev

import (
	"bytes"
	"errors"
	"testing"
)

// Double-fault and rebuild-interruption edge cases: RAID-5 survives
// exactly one failed column, so every second fault — of the same
// column, a different column, or a reconstruction of a column other
// than the failed one — must be rejected with ErrDoubleFault, and a
// rebuild interrupted by traffic must still restore the column
// byte-exactly.

// TestDoubleFaultDuringRebuild fails a column, advances the rebuild
// only partway, and then attempts every flavor of second fault: all
// must report ErrDoubleFault and none may disturb the rebuild, which
// afterwards completes to a byte-identical column.
func TestDoubleFaultDuringRebuild(t *testing.T) {
	const cols, chunkBytes, rows = 3, 32, 24
	d := NewDataArray(cols, chunkBytes)
	want := fillStripes(d, 11, rows, cols, chunkBytes)

	if err := d.FailColumn(1); err != nil {
		t.Fatal(err)
	}
	if _, done, err := d.RebuildStep(rows / 3); err != nil || done {
		t.Fatalf("partial rebuild: done=%v err=%v", done, err)
	}

	// Same column again, a different column, and reconstructing a
	// healthy column while another is lost: all double faults.
	if err := d.FailColumn(1); !errors.Is(err, ErrDoubleFault) {
		t.Fatalf("re-failing the failed column: %v, want ErrDoubleFault", err)
	}
	for col := 0; col <= cols; col++ {
		if col == 1 {
			continue
		}
		if err := d.FailColumn(col); !errors.Is(err, ErrDoubleFault) {
			t.Fatalf("second fault on column %d: %v, want ErrDoubleFault", col, err)
		}
		if _, err := d.ReconstructColumn(0, col); !errors.Is(err, ErrDoubleFault) {
			t.Fatalf("reconstructing healthy column %d while %d is failed: %v, want ErrDoubleFault",
				col, d.FailedColumn(), err)
		}
	}
	if got := d.FailedColumn(); got != 1 {
		t.Fatalf("rejected faults moved the failed column to %d", got)
	}

	// The interrupted rebuild resumes where it left off and finishes.
	for {
		_, done, err := d.RebuildStep(2)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if d.FailedColumn() != -1 {
		t.Fatal("array still degraded after rebuild completed")
	}
	verifyStripes(t, d, want)
	if err := d.CheckParity(); err != nil {
		t.Fatal(err)
	}

	// With the column restored, the array survives a fresh (single)
	// fault again — the spare fully replaced the dead disk.
	if err := d.FailColumn(2); err != nil {
		t.Fatalf("fault after recovery: %v", err)
	}
	verifyStripes(t, d, want) // degraded reads reconstruct column 2
	if d.DegradedReads() == 0 {
		t.Fatal("degraded reads not counted after second-generation fault")
	}
}

// TestRebuildInterruptedByWrites interleaves rebuild steps with new
// stripes: post-failure writes land on the spare directly (never
// needing reconstruction), pre-failure rows rebuild incrementally, and
// the final column is byte-identical to an array that never failed.
func TestRebuildInterruptedByWrites(t *testing.T) {
	const cols, chunkBytes, preRows = 3, 32, 16
	d := NewDataArray(cols, chunkBytes)
	want := fillStripes(d, 23, preRows, cols, chunkBytes)

	if err := d.FailColumn(0); err != nil {
		t.Fatal(err)
	}
	// Alternate one-row rebuild steps with fresh writes until the
	// rebuild has caught up with a moving target.
	for i := 0; d.FailedColumn() >= 0; i++ {
		want = append(want, fillStripes(d, uint64(100+i), 1, cols, chunkBytes)...)
		if _, _, err := d.RebuildStep(1); err != nil {
			t.Fatal(err)
		}
		if done, total := d.RebuildProgress(); d.FailedColumn() >= 0 && done > total {
			t.Fatalf("rebuild cursor %d beyond %d rows", done, total)
		}
	}
	verifyStripes(t, d, want)
	if err := d.CheckParity(); err != nil {
		t.Fatal(err)
	}
	if d.RebuiltChunks() == 0 {
		t.Fatal("rebuild reconstructed nothing; pre-failure rows were lost")
	}
	// A healthy array treats further rebuild steps as no-ops.
	if n, done, err := d.RebuildStep(8); n != 0 || !done || err != nil {
		t.Fatalf("RebuildStep on healthy array = (%d, %v, %v), want (0, true, nil)", n, done, err)
	}
}

// TestRebuildStepValidation rejects non-positive step budgets on a
// degraded array instead of spinning forever.
func TestRebuildStepValidation(t *testing.T) {
	d := NewDataArray(2, 16)
	fillStripes(d, 5, 4, 2, 16)
	if err := d.FailColumn(0); err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{0, -3} {
		if _, _, err := d.RebuildStep(step); err == nil {
			t.Fatalf("RebuildStep(%d) accepted", step)
		}
	}
}

// verifyStripes reads every data chunk back and compares it to the
// stripes as written — the byte mirror for these tests.
func verifyStripes(t *testing.T, d *DataArray, want [][][]byte) {
	t.Helper()
	for row := range want {
		for idx, chunk := range want[row] {
			got, err := d.ReadChunk(int64(row), idx)
			if err != nil {
				t.Fatalf("row %d idx %d: %v", row, idx, err)
			}
			if !bytes.Equal(got, chunk) {
				t.Fatalf("row %d idx %d reads back wrong bytes", row, idx)
			}
		}
	}
}
