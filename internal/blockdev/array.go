// Package blockdev models the SSD array beneath the log-structured
// store. Two models are provided:
//
//   - Array: a fast accounting-only model used by the trace-driven
//     simulator. It tracks data/padding/parity chunk traffic and
//     per-column balance at chunk granularity (the array's minimum
//     write unit, §2.2).
//   - DataArray: a byte-accurate in-memory RAID-5 array with real XOR
//     parity and single-column reconstruction, used by the prototype
//     and by the parity property tests.
package blockdev

import (
	"errors"
	"fmt"
)

// Array is the accounting model of a RAID-5 SSD array. Chunks are
// appended round-robin across data columns; every DataColumns data
// chunks complete a stripe and generate one parity chunk on a rotating
// parity column (left-symmetric layout).
type Array struct {
	dataColumns int
	chunkBytes  int64

	dataChunks   int64
	parityChunks int64
	dataBytes    int64 // payload bytes (user + GC + shadow)
	padBytes     int64 // zero padding bytes

	colWrites  []int64 // chunk writes per physical column (data+parity)
	stripeFill int     // data chunks in the currently forming stripe
	nextCol    int     // next data column (among non-parity positions)
	parityRow  int64   // stripe counter, determines parity column
}

// NewArray builds an accounting array with dataColumns data columns
// (total columns = dataColumns+1 including parity) and the given chunk
// size in bytes.
func NewArray(dataColumns int, chunkBytes int64) *Array {
	if dataColumns < 1 {
		panic("blockdev: need at least one data column")
	}
	if chunkBytes <= 0 {
		panic("blockdev: chunk size must be positive")
	}
	return &Array{
		dataColumns: dataColumns,
		chunkBytes:  chunkBytes,
		colWrites:   make([]int64, dataColumns+1),
	}
}

// DataColumns returns the number of data columns per stripe.
func (a *Array) DataColumns() int { return a.dataColumns }

// ChunkBytes returns the chunk size in bytes.
func (a *Array) ChunkBytes() int64 { return a.chunkBytes }

// WriteChunk records one chunk write containing payloadBytes of real
// data and padBytes of zero padding. payloadBytes+padBytes must equal
// the chunk size: the array only accepts full chunks (partial writes
// have already been padded by the log-structured layer).
func (a *Array) WriteChunk(payloadBytes, padBytes int64) {
	if payloadBytes+padBytes != a.chunkBytes {
		panic(fmt.Sprintf("blockdev: chunk write of %d+%d bytes, want %d",
			payloadBytes, padBytes, a.chunkBytes))
	}
	a.dataChunks++
	a.dataBytes += payloadBytes
	a.padBytes += padBytes

	// Left-symmetric RAID-5: parity column rotates per stripe.
	parityCol := int(a.parityRow % int64(a.dataColumns+1))
	col := a.nextCol
	if col >= parityCol {
		col++ // skip the parity position
	}
	a.colWrites[col]++
	a.stripeFill++
	a.nextCol++
	if a.stripeFill == a.dataColumns {
		a.parityChunks++
		a.colWrites[parityCol]++
		a.stripeFill = 0
		a.nextCol = 0
		a.parityRow++
	}
}

// DataChunks returns the number of data chunks written.
func (a *Array) DataChunks() int64 { return a.dataChunks }

// ParityChunks returns the number of parity chunks written.
func (a *Array) ParityChunks() int64 { return a.parityChunks }

// PayloadBytes returns real payload bytes written (excludes padding).
func (a *Array) PayloadBytes() int64 { return a.dataBytes }

// PaddingBytes returns zero-padding bytes written.
func (a *Array) PaddingBytes() int64 { return a.padBytes }

// TotalBytes returns all bytes written to the array including padding
// and parity.
func (a *Array) TotalBytes() int64 {
	return (a.dataChunks + a.parityChunks) * a.chunkBytes
}

// ColumnWrites returns a copy of per-column chunk-write counters.
func (a *Array) ColumnWrites() []int64 {
	out := make([]int64, len(a.colWrites))
	copy(out, a.colWrites)
	return out
}

// ErrBadStripe is returned by DataArray operations on malformed input.
var ErrBadStripe = errors.New("blockdev: malformed stripe")

// ErrDoubleFault is returned when an operation would require data
// from two simultaneously unavailable columns — the failure mode
// RAID-5 cannot survive.
var ErrDoubleFault = errors.New("blockdev: double column fault exceeds RAID-5 redundancy")

// DataArray is a byte-accurate in-memory RAID-5 array. It stores full
// stripes (DataColumns data chunks plus one XOR parity chunk, rotating
// parity position) and can reconstruct any single lost column. One
// column may be marked failed: its contents are discarded, reads of it
// are served by XOR reconstruction from the survivors (degraded
// reads), and an incremental rebuild restores the column onto a spare
// stripe by stripe.
type DataArray struct {
	dataColumns int
	chunkBytes  int
	// disks[col] is the sequence of chunks written to that column.
	// Entries of a failed column are nil until the rebuild completes.
	disks [][][]byte
	rows  int64

	// failed is the failed column, or -1 when healthy.
	failed int
	// spare accumulates the replacement contents of the failed column:
	// rebuild fills pre-failure rows by reconstruction, WriteStripe
	// fills post-failure rows directly (no reconstruction needed).
	spare [][]byte
	// rebuildCursor is the next row the incremental rebuild will visit.
	rebuildCursor int64
	degradedReads int64
	rebuiltChunks int64
}

// NewDataArray builds a byte-accurate array.
func NewDataArray(dataColumns, chunkBytes int) *DataArray {
	if dataColumns < 1 || chunkBytes <= 0 {
		panic("blockdev: invalid DataArray geometry")
	}
	return &DataArray{
		dataColumns: dataColumns,
		chunkBytes:  chunkBytes,
		disks:       make([][][]byte, dataColumns+1),
		failed:      -1,
	}
}

// ChunkBytes returns the chunk size in bytes.
func (d *DataArray) ChunkBytes() int { return d.chunkBytes }

// Rows returns the number of stripes written.
func (d *DataArray) Rows() int64 { return d.rows }

// WriteStripe stores one full stripe of DataColumns chunks, computing
// and storing XOR parity on the rotating parity column. Each chunk
// must be exactly ChunkBytes long. The chunks are copied.
func (d *DataArray) WriteStripe(chunks [][]byte) error {
	if len(chunks) != d.dataColumns {
		return fmt.Errorf("%w: %d chunks, want %d", ErrBadStripe, len(chunks), d.dataColumns)
	}
	for _, c := range chunks {
		if len(c) != d.chunkBytes {
			return fmt.Errorf("%w: chunk of %d bytes, want %d", ErrBadStripe, len(c), d.chunkBytes)
		}
	}
	parity := make([]byte, d.chunkBytes)
	for _, c := range chunks {
		for i, b := range c {
			parity[i] ^= b
		}
	}
	parityCol := int(d.rows % int64(d.dataColumns+1))
	ci := 0
	for col := 0; col <= d.dataColumns; col++ {
		var payload []byte
		if col == parityCol {
			payload = parity
		} else {
			payload = append([]byte(nil), chunks[ci]...)
			ci++
		}
		if col == d.failed {
			// The failed disk cannot store the chunk; the spare takes it
			// directly, so post-failure rows never need reconstruction.
			d.disks[col] = append(d.disks[col], nil)
			d.spare = append(d.spare, payload)
		} else {
			d.disks[col] = append(d.disks[col], payload)
		}
	}
	d.rows++
	return nil
}

// FailColumn marks col as failed, discarding its contents. A second
// concurrent failure returns ErrDoubleFault (RAID-5 survives one).
func (d *DataArray) FailColumn(col int) error {
	if col < 0 || col > d.dataColumns {
		return fmt.Errorf("%w: column %d", ErrBadStripe, col)
	}
	if d.failed >= 0 {
		return fmt.Errorf("%w: column %d already failed", ErrDoubleFault, d.failed)
	}
	d.failed = col
	for i := range d.disks[col] {
		d.disks[col][i] = nil
	}
	d.spare = make([][]byte, d.rows)
	d.rebuildCursor = 0
	return nil
}

// FailedColumn returns the failed column index, or -1 when healthy.
func (d *DataArray) FailedColumn() int { return d.failed }

// DegradedReads returns how many chunk reads were served by XOR
// reconstruction because their column was failed and not yet rebuilt.
func (d *DataArray) DegradedReads() int64 { return d.degradedReads }

// RebuiltChunks returns how many chunks the rebuild reconstructed.
func (d *DataArray) RebuiltChunks() int64 { return d.rebuiltChunks }

// RebuildProgress reports the incremental rebuild position: rows the
// rebuild cursor has passed and the total rows it must cover. Both are
// zero on a healthy array.
func (d *DataArray) RebuildProgress() (done, total int64) {
	if d.failed < 0 {
		return 0, 0
	}
	return d.rebuildCursor, d.rows
}

// reconstruct XORs all surviving columns of row into a new chunk —
// the contents of the one missing column.
func (d *DataArray) reconstruct(row int64, lostCol int) []byte {
	out := make([]byte, d.chunkBytes)
	for col := 0; col <= d.dataColumns; col++ {
		if col == lostCol {
			continue
		}
		for i, b := range d.disks[col][row] {
			out[i] ^= b
		}
	}
	return out
}

// spareChunk returns the failed column's content for row from the
// spare, reconstructing (and recording a degraded read) when the
// rebuild has not reached the row yet.
func (d *DataArray) spareChunk(row int64) []byte {
	if c := d.spare[row]; c != nil {
		return c
	}
	d.degradedReads++
	return d.reconstruct(row, d.failed)
}

// RebuildStep advances the incremental rebuild by at most maxChunks
// reconstructions, walking rows in order onto the spare. It returns
// how many chunks were actually reconstructed (rows already present
// in the spare cost nothing) and whether the rebuild is complete;
// completion swaps the spare in and returns the array to healthy. On
// a healthy array it reports (0, true, nil).
func (d *DataArray) RebuildStep(maxChunks int) (rebuilt int, done bool, err error) {
	if d.failed < 0 {
		return 0, true, nil
	}
	if maxChunks < 1 {
		return 0, false, fmt.Errorf("%w: rebuild step of %d chunks", ErrBadStripe, maxChunks)
	}
	for d.rebuildCursor < d.rows && rebuilt < maxChunks {
		row := d.rebuildCursor
		if d.spare[row] == nil {
			d.spare[row] = d.reconstruct(row, d.failed)
			rebuilt++
			d.rebuiltChunks++
		}
		d.rebuildCursor++
	}
	if d.rebuildCursor < d.rows {
		return rebuilt, false, nil
	}
	// Rebuild complete: the spare becomes the column.
	copy(d.disks[d.failed], d.spare)
	d.failed = -1
	d.spare = nil
	d.rebuildCursor = 0
	return rebuilt, true, nil
}

// ReadChunk returns the idx-th data chunk of stripe row (0-based,
// skipping the parity column). When the chunk's column is failed the
// read is served from the spare or, before the rebuild reaches the
// row, by degraded XOR reconstruction.
func (d *DataArray) ReadChunk(row int64, idx int) ([]byte, error) {
	if row < 0 || row >= d.rows || idx < 0 || idx >= d.dataColumns {
		return nil, fmt.Errorf("%w: row %d idx %d", ErrBadStripe, row, idx)
	}
	parityCol := int(row % int64(d.dataColumns+1))
	col := idx
	if col >= parityCol {
		col++
	}
	if col == d.failed {
		return d.spareChunk(row), nil
	}
	return d.disks[col][row], nil
}

// CheckParity verifies that every stripe XORs to zero across all
// columns — the invariant XOR parity must maintain through writes,
// failures, and rebuilds. On a degraded array the failed column's
// contribution comes from the spare when the rebuild (or a
// post-failure write) has filled the row; rows whose failed-column
// content is still unknown are vacuously consistent and are skipped.
// It is O(rows × columns × chunk) and exists for the correctness
// checker, not the data path.
func (d *DataArray) CheckParity() error {
	acc := make([]byte, d.chunkBytes)
	for row := int64(0); row < d.rows; row++ {
		for i := range acc {
			acc[i] = 0
		}
		known := true
		for col := 0; col <= d.dataColumns; col++ {
			chunk := d.disks[col][row]
			if col == d.failed {
				chunk = d.spare[row]
			}
			if chunk == nil {
				known = false
				break
			}
			for i, b := range chunk {
				acc[i] ^= b
			}
		}
		if !known {
			continue
		}
		for i, b := range acc {
			if b != 0 {
				return fmt.Errorf("%w: row %d parity mismatch at byte %d", ErrBadStripe, row, i)
			}
		}
	}
	return nil
}

// ReconstructColumn recomputes the contents of a lost column for the
// given stripe row by XOR of all surviving columns — the RAID-5
// recovery path. With a failed column, only that column can be
// reconstructed; asking for any other is a double fault.
func (d *DataArray) ReconstructColumn(row int64, lostCol int) ([]byte, error) {
	if row < 0 || row >= d.rows || lostCol < 0 || lostCol > d.dataColumns {
		return nil, fmt.Errorf("%w: row %d col %d", ErrBadStripe, row, lostCol)
	}
	if d.failed >= 0 && lostCol != d.failed {
		return nil, fmt.Errorf("%w: column %d failed, cannot also lose %d", ErrDoubleFault, d.failed, lostCol)
	}
	if lostCol == d.failed {
		return d.spareChunk(row), nil
	}
	return d.reconstruct(row, lostCol), nil
}
