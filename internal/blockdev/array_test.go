package blockdev

import (
	"bytes"
	"testing"
	"testing/quick"

	"adapt/internal/sim"
)

func TestArrayAccounting(t *testing.T) {
	a := NewArray(3, 64<<10)
	for i := 0; i < 6; i++ {
		a.WriteChunk(64<<10, 0)
	}
	if a.DataChunks() != 6 {
		t.Fatalf("DataChunks = %d, want 6", a.DataChunks())
	}
	if a.ParityChunks() != 2 {
		t.Fatalf("ParityChunks = %d, want 2 (two full stripes)", a.ParityChunks())
	}
	if a.TotalBytes() != 8*64<<10 {
		t.Fatalf("TotalBytes = %d", a.TotalBytes())
	}
}

func TestArrayPadding(t *testing.T) {
	a := NewArray(3, 64<<10)
	a.WriteChunk(16<<10, 48<<10)
	if a.PayloadBytes() != 16<<10 || a.PaddingBytes() != 48<<10 {
		t.Fatalf("payload=%d pad=%d", a.PayloadBytes(), a.PaddingBytes())
	}
}

func TestArrayRejectsPartialChunk(t *testing.T) {
	a := NewArray(3, 64<<10)
	defer func() {
		if recover() == nil {
			t.Fatal("short chunk write did not panic")
		}
	}()
	a.WriteChunk(10, 10)
}

func TestArrayColumnBalance(t *testing.T) {
	a := NewArray(3, 4096)
	const stripes = 1000
	for i := 0; i < stripes*3; i++ {
		a.WriteChunk(4096, 0)
	}
	cols := a.ColumnWrites()
	var total int64
	for _, c := range cols {
		total += c
	}
	if total != stripes*4 {
		t.Fatalf("total column writes = %d, want %d", total, stripes*4)
	}
	// Rotating parity must keep all columns within a small band.
	for i, c := range cols {
		if c < stripes*9/10 || c > stripes*11/10 {
			t.Fatalf("column %d unbalanced: %d of %d stripes", i, c, stripes)
		}
	}
}

func TestArrayParityPerStripe(t *testing.T) {
	a := NewArray(4, 4096)
	for i := 0; i < 10; i++ {
		a.WriteChunk(4096, 0)
	}
	// 10 data chunks with D=4 → 2 complete stripes → 2 parity chunks.
	if a.ParityChunks() != 2 {
		t.Fatalf("ParityChunks = %d, want 2", a.ParityChunks())
	}
}

func TestDataArrayRoundTrip(t *testing.T) {
	d := NewDataArray(3, 64)
	rng := sim.NewRNG(1)
	stripe := make([][]byte, 3)
	for i := range stripe {
		stripe[i] = make([]byte, 64)
		for j := range stripe[i] {
			stripe[i][j] = byte(rng.Uint64())
		}
	}
	if err := d.WriteStripe(stripe); err != nil {
		t.Fatal(err)
	}
	for i := range stripe {
		got, err := d.ReadChunk(0, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, stripe[i]) {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
}

func TestDataArrayRejectsBadStripes(t *testing.T) {
	d := NewDataArray(3, 64)
	if err := d.WriteStripe(make([][]byte, 2)); err == nil {
		t.Fatal("wrong chunk count accepted")
	}
	bad := [][]byte{make([]byte, 64), make([]byte, 64), make([]byte, 10)}
	if err := d.WriteStripe(bad); err == nil {
		t.Fatal("short chunk accepted")
	}
	if _, err := d.ReadChunk(5, 0); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := d.ReconstructColumn(0, 0); err == nil {
		t.Fatal("reconstruct on empty array accepted")
	}
}

// TestDataArrayReconstruction is the RAID-5 recovery property test:
// losing any single column of any stripe is recoverable by XOR.
func TestDataArrayReconstruction(t *testing.T) {
	f := func(seed uint64, rows uint8) bool {
		d := NewDataArray(3, 32)
		rng := sim.NewRNG(seed)
		n := int(rows%8) + 1
		original := make([][][]byte, n)
		for r := 0; r < n; r++ {
			stripe := make([][]byte, 3)
			for i := range stripe {
				stripe[i] = make([]byte, 32)
				for j := range stripe[i] {
					stripe[i][j] = byte(rng.Uint64())
				}
			}
			original[r] = stripe
			if err := d.WriteStripe(stripe); err != nil {
				return false
			}
		}
		for r := 0; r < n; r++ {
			for lost := 0; lost <= 3; lost++ {
				rec, err := d.ReconstructColumn(int64(r), lost)
				if err != nil {
					return false
				}
				// The reconstructed column must equal what was stored there.
				if !bytes.Equal(rec, d.disks[lost][r]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkArrayWriteChunk(b *testing.B) {
	a := NewArray(3, 64<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.WriteChunk(64<<10, 0)
	}
}
