// Package prototype is the concurrent counterpart of the trace-driven
// simulator, mirroring the paper's prototype experiments (§4.4):
// client goroutines issue zipfian 4 KiB writes through a shared
// log-structured store; every chunk flush is dispatched to a
// bandwidth-modelled SSD in a RAID-5 layout (rotating parity) through
// bounded per-device queues, so GC and padding traffic compete with
// user writes for device time exactly as on the real array. Device
// service is modelled with a virtual-time throttle rather than
// per-operation sleeps, keeping the benchmark fast while preserving
// the bandwidth ceiling.
package prototype

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
	"adapt/internal/workload"
)

// Config describes one prototype run.
type Config struct {
	// Store is the store geometry (chunk size, capacity, SLA window).
	Store lss.Config
	// Policy is the placement policy instance to drive.
	Policy lss.Policy
	// Clients is the number of writer goroutines.
	Clients int
	// Ops is the total number of 4 KiB user writes across clients.
	Ops int64
	// Theta is the zipfian skew of the update stream (YCSB-A: 0.99).
	Theta float64
	// Fill writes every block sequentially before the measured phase,
	// so the update stream runs at full utilization (GC active), as
	// the paper's prototype does after loading.
	Fill bool
	// ReadRatio interleaves reads at this fraction of operations
	// (YCSB-A: 0.5). Reads consume device time (ReadServiceTime per
	// chunk-sized access) on a random column, competing with writes.
	ReadRatio float64
	// ReadServiceTime is the device time per read (default half the
	// write service time: reads skip the program/parity path).
	ReadServiceTime time.Duration
	// ServiceTime is the modelled device time per chunk write
	// (≈ chunk size / per-SSD bandwidth).
	ServiceTime time.Duration
	// QueueDepth bounds each device's queue (paper: I/O depth 8).
	QueueDepth int
	// Seed drives the zipfian streams.
	Seed uint64
	// GCSliceUnits is the per-operation background-GC budget when
	// Store.BackgroundGC is set (default 32): each client op donates one
	// bounded GCStep slice under the store lock, so collection overlaps
	// the run instead of stalling single writes for whole cycles. Ignored
	// without BackgroundGC.
	GCSliceUnits int
	// Telemetry, when set, attaches live instrumentation: the store's
	// canonical metrics and events, plus per-device busy time, queue
	// depth, and chunk counters. The recorder windows on the run's
	// wall-derived clock (time since start). Nil disables telemetry at
	// zero hot-path cost.
	Telemetry *telemetry.Set
	// Fault arms the fault injector: a device failure mid-run, degraded
	// reads, throttled GC, and a bandwidth-stealing rebuild. The zero
	// value keeps the run healthy.
	Fault FaultConfig
}

// Result summarizes a prototype run.
type Result struct {
	OpsPerSec     float64
	Elapsed       time.Duration
	WA            float64
	EffectiveWA   float64
	PaddingRatio  float64
	ChunksWritten int64
	ParityChunks  int64

	UserBlocks, GCBlocks, ShadowBlocks, PaddingBlocks int64

	// Fault-run accounting; FailedDevice is -1 when the run stayed
	// healthy and Phases is nil unless the injector was armed.
	FailedDevice  int
	FailedAtOp    int64
	DegradedReads int64
	RebuildChunks int64
	LostChunks    int64
	QueueRetries  int64
	Phases        []PhaseStats
}

type chunkJob struct {
	payload int64
	pad     int64
	read    bool
}

// device models one SSD: a bounded queue drained by a worker that
// accrues the configured service time per chunk and throttles to it.
type device struct {
	ch      chan chunkJob
	written int64

	// Telemetry instruments; nil (no-op) when telemetry is disabled.
	busyNS *telemetry.Counter
	chunks *telemetry.Counter
}

// Run executes the prototype experiment.
func Run(cfg Config) (Result, error) {
	if cfg.Clients < 1 {
		return Result{}, fmt.Errorf("prototype: need at least one client")
	}
	if cfg.Ops < 1 {
		return Result{}, fmt.Errorf("prototype: need at least one op")
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 8
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = 50 * time.Microsecond
	}
	if cfg.ReadServiceTime <= 0 {
		cfg.ReadServiceTime = cfg.ServiceTime / 2
	}
	geo := cfg.Store.GeometryDefaults()
	ncols := geo.DataColumns + 1
	fr, err := newFaultRun(&cfg, ncols)
	if err != nil {
		return Result{}, err
	}

	devices := make([]*device, ncols)
	for i := range devices {
		devices[i] = &device{ch: make(chan chunkJob, cfg.QueueDepth)}
	}
	var deps lss.Deps
	if ts := cfg.Telemetry; ts != nil {
		fr.registerTelemetry(ts)
		deps.Telemetry = ts
		if p, ok := cfg.Policy.(interface {
			SetTelemetry(*telemetry.Set)
		}); ok {
			p.SetTelemetry(ts)
		}
		for i, d := range devices {
			d.busyNS = ts.Registry.NewCounter(
				fmt.Sprintf("%s{device=\"%d\"}", telemetry.MetricDeviceBusyPrefix, i),
				"Modelled device service time consumed")
			d.chunks = ts.Registry.NewCounter(
				fmt.Sprintf("%s{device=\"%d\"}", telemetry.MetricDeviceChunksPrefix, i),
				"Chunk operations serviced")
			ch := d.ch
			ts.Registry.NewFuncGauge(
				fmt.Sprintf("%s{device=\"%d\"}", telemetry.MetricDeviceQueuePrefix, i),
				"Queued chunk operations", false,
				func() int64 { return int64(len(ch)) })
		}
	}
	start := time.Now()
	var devWG sync.WaitGroup
	for _, d := range devices {
		devWG.Add(1)
		go func(d *device) {
			defer devWG.Done()
			var virtual time.Duration
			for job := range d.ch {
				if job.read {
					virtual += cfg.ReadServiceTime
					d.busyNS.Add(int64(cfg.ReadServiceTime))
				} else {
					virtual += cfg.ServiceTime
					d.busyNS.Add(int64(cfg.ServiceTime))
				}
				d.chunks.Inc()
				d.written++
				// Throttle to the modelled bandwidth, sleeping only
				// when the debt is large enough for the OS timer.
				if lag := virtual - time.Since(start); lag > 2*time.Millisecond {
					time.Sleep(lag)
				}
			}
		}(d)
	}

	// The sink runs under the store lock; a full device queue applies
	// backpressure to every writer, exactly like a saturated array.
	// Routing goes through the fault runtime so chunks bound for a
	// failed column are dropped and counted instead of queued.
	var stripeFill int
	var parityRow int64
	var parityChunks int64
	chunkBytes := geo.ChunkBytes()
	deps.Sink = func(w lss.ChunkWrite) {
		parityCol := int(parityRow % int64(ncols))
		col := stripeFill
		if col >= parityCol {
			col++
		}
		fr.placeChunk(devices, col, chunkJob{payload: w.PayloadBytes, pad: w.PadBytes})
		stripeFill++
		if stripeFill == ncols-1 {
			fr.placeChunk(devices, parityCol, chunkJob{payload: chunkBytes})
			parityChunks++
			stripeFill = 0
			parityRow++
		}
	}
	store := lss.New(cfg.Store, cfg.Policy, deps)
	bgStep := 0
	if cfg.Store.BackgroundGC {
		bgStep = cfg.GCSliceUnits
		if bgStep <= 0 {
			bgStep = 32
		}
	}

	if cfg.Fill {
		for lba := int64(0); lba < cfg.Store.UserBlocks; lba++ {
			if err := store.WriteBlock(lba, sim.Time(time.Since(start))); err != nil {
				return Result{}, err
			}
			if bgStep > 0 {
				store.GCStep(bgStep)
			}
		}
	}
	var mu sync.Mutex
	targets := faultTargets{mu: &mu, stores: []*lss.Store{store}}
	measureStart := time.Now()
	if fr != nil {
		fr.enterPhaseLocked(PhaseHealthy, targets.snap())
	}

	var issued atomic.Int64
	var clientWG sync.WaitGroup
	clientsDone := make(chan struct{})
	var rebuildWG sync.WaitGroup
	if fr != nil {
		rebuildWG.Add(1)
		go func() {
			defer rebuildWG.Done()
			if fr.waitForRebuild(&issued, clientsDone) {
				fr.rebuild(devices, targets, start, int64(store.Config().ChunkBytes()))
			}
		}()
	}
	for c := 0; c < cfg.Clients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			rng := sim.NewRNG(cfg.Seed + uint64(c)*7919)
			z := workload.NewZipf(rng, cfg.Store.UserBlocks, cfg.Theta, true)
			var latNS [numPhases][]float64
			var phaseOps [numPhases]int64
			for {
				op := issued.Add(1)
				if op > cfg.Ops {
					break
				}
				if fr != nil && op == fr.failOp {
					fr.fail(targets, sim.Time(time.Since(start)))
				}
				lba := z.Next()
				var p Phase
				var t0 time.Time
				if fr != nil {
					p = Phase(fr.phase.Load())
					t0 = time.Now()
				}
				if cfg.ReadRatio > 0 && rng.Float64() < cfg.ReadRatio {
					// Reads bypass the log but occupy a column. A read
					// aimed at the failed column fans out to every
					// survivor instead: the XOR reconstruction path.
					mu.Lock()
					store.Read(lba, 1, sim.Time(time.Since(start)))
					if bgStep > 0 {
						store.GCStep(bgStep)
					}
					mu.Unlock()
					target := rng.Intn(len(devices))
					if fr.degradedTarget(target) {
						fr.degReads.Add(1)
						for col, d := range devices {
							if col != fr.failDev {
								fr.dispatch(d, chunkJob{read: true})
							}
						}
					} else {
						fr.dispatch(devices[target], chunkJob{read: true})
					}
				} else {
					mu.Lock()
					err := store.WriteBlock(lba, sim.Time(time.Since(start)))
					if err == nil && bgStep > 0 {
						store.GCStep(bgStep)
					}
					mu.Unlock()
					if err != nil {
						panic(err) // LBAs are generated in range; this is a bug
					}
				}
				if fr != nil {
					latNS[p] = append(latNS[p], float64(time.Since(t0)))
					phaseOps[p]++
				}
			}
			if fr != nil {
				fr.collect(latNS, phaseOps)
			}
		}(c)
	}
	clientWG.Wait()
	close(clientsDone)
	rebuildWG.Wait()
	measureEnd := time.Now() // phase accounting stops before the drain
	mu.Lock()
	for bgStep > 0 && store.GCActive() {
		store.GCStep(1 << 30) // settle in-flight GC before the drain
	}
	store.Drain(sim.Time(time.Since(start)))
	mu.Unlock()
	for _, d := range devices {
		close(d.ch)
	}
	devWG.Wait()
	elapsed := time.Since(measureStart)

	m := store.Metrics()
	res := Result{
		Elapsed:       elapsed,
		WA:            m.WA(),
		EffectiveWA:   m.EffectiveWA(),
		PaddingRatio:  m.PaddingRatio(),
		ChunksWritten: store.Array().DataChunks(),
		ParityChunks:  parityChunks,
		UserBlocks:    m.UserBlocks,
		GCBlocks:      m.GCBlocks,
		ShadowBlocks:  m.ShadowBlocks,
		PaddingBlocks: m.PaddingBlocks,
		FailedDevice:  -1,
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(cfg.Ops) / elapsed.Seconds()
	}
	if fr != nil {
		fr.finish(&res, measureEnd, m)
		if err := store.CheckInvariants(); err != nil {
			return res, fmt.Errorf("prototype: post-fault invariant check: %w", err)
		}
	}
	return res, nil
}

// FootprintReporter is implemented by policies that can report their
// metadata memory cost.
type FootprintReporter interface {
	Footprint() int64
}

// Footprint returns a policy's reported metadata bytes, or 0 if the
// policy does not report one.
func Footprint(p lss.Policy) int64 {
	if f, ok := p.(FootprintReporter); ok {
		return f.Footprint()
	}
	return 0
}
