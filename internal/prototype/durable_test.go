package prototype

import (
	"strings"
	"testing"
	"time"

	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/segfile"
)

func durableCfg() lss.Config {
	return lss.Config{
		BlockSize:     64,
		ChunkBlocks:   8,
		SegmentChunks: 4,
		UserBlocks:    4096,
		OverProvision: 0.25,
	}
}

func durablePolicy(t *testing.T, cfg lss.Config) lss.Policy {
	t.Helper()
	pol, err := placement.New(placement.NameSepGC, placement.Params{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.SegmentBlocks(),
		ChunkBlocks:   cfg.ChunkBlocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func durableEngine(t *testing.T, dir string) *Engine {
	t.Helper()
	cfg := durableCfg()
	e, err := NewEngine(EngineConfig{
		Store:       cfg,
		Policy:      durablePolicy(t, cfg),
		ServiceTime: time.Microsecond,
		Durable:     &segfile.Options{Dir: dir, Sync: segfile.SyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineDurableRoundTrip writes through a durable engine, closes
// it, and reopens the same directory: the second boot must adopt the
// recovered store instead of a fresh fill, and report what it rolled
// forward.
func TestEngineDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir)
	if e.Recovered() {
		t.Fatal("fresh directory reported as recovered")
	}
	for i := int64(0); i < 600; i++ {
		if err := e.Write(i%512, 1); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	ds, ok := e.DurableStats()
	if !ok {
		t.Fatal("durable engine reports no DurableStats")
	}
	if ds.Fsyncs == 0 || ds.BytesWritten == 0 {
		t.Fatalf("no durable traffic recorded: %+v", ds)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	e2 := durableEngine(t, dir)
	defer e2.Close()
	if !e2.Recovered() {
		t.Fatal("second boot did not recover the on-disk log")
	}
	ds2, _ := e2.DurableStats()
	if ds2.RecoveredSegments == 0 || ds2.RecoveredBlocks == 0 {
		t.Fatalf("recovery rolled nothing forward: %+v", ds2)
	}
	// The recovered store keeps serving: appends land on the same log.
	for i := int64(0); i < 64; i++ {
		if err := e2.Write(i, 1); err != nil {
			t.Fatalf("post-recovery write %d: %v", i, err)
		}
	}
}

// TestEngineDurableVerifyRejectsRecovered pins the documented
// restriction: Verify's shadow mirror starts empty, so adopting a
// recovered (non-empty) store under it must fail loudly.
func TestEngineDurableVerifyRejectsRecovered(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir)
	for i := int64(0); i < 600; i++ {
		if err := e.Write(i%512, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := durableCfg()
	_, err := NewEngine(EngineConfig{
		Store:       cfg,
		Policy:      durablePolicy(t, cfg),
		ServiceTime: time.Microsecond,
		Verify:      true,
		Durable:     &segfile.Options{Dir: dir, Sync: segfile.SyncAlways},
	})
	if err == nil || !strings.Contains(err.Error(), "Verify") {
		t.Fatalf("Verify over recovered data: got %v, want rejection", err)
	}
}

// TestShardedDurableRoundTrip runs the same cycle through the sharded
// router: each shard gets its own subdirectory, and a reboot recovers
// every shard.
func TestShardedDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	build := func() *Sharded {
		cfg := durableCfg()
		s, err := NewSharded(ShardedConfig{
			Engine: EngineConfig{
				Store:       cfg,
				ServiceTime: time.Microsecond,
				Durable:     &segfile.Options{Dir: dir, Sync: segfile.SyncAlways},
			},
			Shards: 2,
			PolicyFactory: func(shard int, scfg lss.Config) (lss.Policy, error) {
				return placement.New(placement.NameSepGC, placement.Params{
					UserBlocks:    scfg.UserBlocks,
					SegmentBlocks: scfg.SegmentBlocks(),
					ChunkBlocks:   scfg.ChunkBlocks,
				})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := build()
	for i := int64(0); i < 1200; i++ {
		if err := s.Write(i%4000, 1); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2 := build()
	defer s2.Close()
	if !s2.Recovered() {
		t.Fatal("sharded reboot did not recover")
	}
	ds, ok := s2.DurableStats()
	if !ok || ds.RecoveredSegments == 0 {
		t.Fatalf("sharded recovery stats: ok=%v %+v", ok, ds)
	}
}

// TestShardedDurableRequiresDir pins the sharded precondition: per-
// shard subdirectories need a root path, so an FS-injected Options
// without Dir is rejected up front.
func TestShardedDurableRequiresDir(t *testing.T) {
	cfg := durableCfg()
	_, err := NewSharded(ShardedConfig{
		Engine: EngineConfig{
			Store:       cfg,
			ServiceTime: time.Microsecond,
			Durable:     &segfile.Options{FS: segfile.NewMemFS()},
		},
		Shards: 2,
		PolicyFactory: func(shard int, scfg lss.Config) (lss.Policy, error) {
			return placement.New(placement.NameSepGC, placement.Params{
				UserBlocks:    scfg.UserBlocks,
				SegmentBlocks: scfg.SegmentBlocks(),
				ChunkBlocks:   scfg.ChunkBlocks,
			})
		},
	})
	if err == nil || !strings.Contains(err.Error(), "Dir") {
		t.Fatalf("sharded durable without Dir: got %v, want rejection", err)
	}
}
