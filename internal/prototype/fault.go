package prototype

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/fault"
	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/stats"
	"adapt/internal/telemetry"
)

// FaultConfig arms the prototype's fault injector. The zero value
// disables it; setting FailAtOp (with FailDevice) schedules one
// deterministic failure, setting MTBFOps instead draws the failure
// from a seeded exponential schedule over the run's op horizon.
type FaultConfig struct {
	// FailDevice is the array column to fail (0-based, parity column
	// included) when FailAtOp is set.
	FailDevice int
	// FailAtOp fires the failure when the measured user-op counter
	// reaches this value (first op = 1). Zero disables the fixed plan.
	FailAtOp int64
	// MTBFOps, when positive, replaces the fixed plan with a seeded
	// exponential failure schedule with this mean (in ops); the first
	// event inside the run's op horizon becomes the failure. A schedule
	// with no event inside the horizon leaves the run healthy.
	MTBFOps int64
	// RebuildDelayOps is how many further user ops pass between the
	// failure and the start of the rebuild (detection + spare swap-in
	// time, expressed in load units so it scales with the run).
	RebuildDelayOps int64
	// RebuildBurst is how many chunks each rebuild round pushes through
	// the device queues before re-checking the watermark (default 8).
	RebuildBurst int
	// QueueTimeout bounds one queue-send attempt before it counts as a
	// retry (default 2ms).
	QueueTimeout time.Duration
	// RetryMax is how many timed-out attempts precede the final
	// blocking send; operations are never dropped (default 5).
	RetryMax int
	// BackoffBase and BackoffCap shape the capped exponential backoff
	// between retries (defaults 50µs / 5ms, see fault.Backoff).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// DegradedGCWatermark is the rebuild-progress fraction below which
	// the store runs throttled degraded-mode GC. Zero takes the default
	// 0.5; must be at most 1.
	DegradedGCWatermark float64
}

// Enabled reports whether the injector is armed.
func (f FaultConfig) Enabled() bool { return f.FailAtOp > 0 || f.MTBFOps > 0 }

// Phase is one stage of a fault run's lifecycle.
type Phase int

// Fault-run phases in order.
const (
	PhaseHealthy Phase = iota
	PhaseDegraded
	PhaseRebuilding
	PhaseRebuilt
	numPhases
)

// String names the phase as used in experiment tables.
func (p Phase) String() string {
	switch p {
	case PhaseHealthy:
		return "healthy"
	case PhaseDegraded:
		return "degraded"
	case PhaseRebuilding:
		return "rebuilding"
	case PhaseRebuilt:
		return "rebuilt"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// PhaseStats summarizes one phase of a fault run.
type PhaseStats struct {
	Phase     Phase
	Ops       int64
	Elapsed   time.Duration
	OpsPerSec float64
	// WA is the write amplification of traffic issued during the phase
	// (delta of user+GC blocks over delta of user blocks).
	WA float64
	// P99 is the 99th-percentile client-observed op latency: the time
	// from op start to the store accepting the write (or read) and its
	// chunk traffic entering the device queues.
	P99 time.Duration
}

// trafficSnap is the part of the store metrics a phase boundary needs.
type trafficSnap struct {
	user, gc int64
}

// faultTargets is the set of stores one physical column failure
// degrades, behind the locker that serializes access to them. A column
// is shared hardware: the flat prototype passes its single run store,
// a sharded deployment passes every shard store — shards partition the
// LBA space, not the columns, so a failed column degrades all of them.
type faultTargets struct {
	mu     sync.Locker
	stores []*lss.Store
}

// snap sums the traffic counters across the target stores. Caller
// holds the locker (or has exclusive access).
func (t faultTargets) snap() trafficSnap {
	var s trafficSnap
	for _, st := range t.stores {
		m := st.Metrics()
		s.user += m.UserBlocks
		s.gc += m.GCBlocks
	}
	return s
}

// setDegraded flips degraded-mode GC on every target store. Caller
// holds the locker.
func (t faultTargets) setDegraded(v bool) {
	for _, st := range t.stores {
		st.Reconfigure(func(r *lss.Runtime) { r.Degraded = v })
	}
}

// faultRun is the per-run state of the fault injector. A nil *faultRun
// is the healthy fast path: dispatch degenerates to a plain channel
// send and every probe reports "no failure".
type faultRun struct {
	cfg     FaultConfig
	backoff fault.Backoff

	failDev int
	failOp  int64

	// phase is the lifecycle stage, written only inside enterPhaseLocked
	// (under the run mutex) and read lock-free by clients and the sink.
	phase atomic.Int32

	// Guarded by the run mutex (the same one serializing store access):
	colChunks    []int64 // chunks physically placed per column
	rebuildTotal int64   // colChunks[failDev] frozen at failure
	entered      [numPhases]bool
	startT       [numPhases]time.Time
	snaps        [numPhases]trafficSnap

	degReads atomic.Int64
	lost     atomic.Int64
	rebuilt  atomic.Int64
	retries  atomic.Int64

	tracer    *telemetry.Tracer
	retryHist *telemetry.Histogram

	// collectMu guards the merged per-phase latency samples and op
	// counts that clients contribute when they finish.
	collectMu sync.Mutex
	latNS     [numPhases][]float64
	phaseOps  [numPhases]int64
}

// newFaultRun validates the fault configuration and resolves the
// failure plan to a single (device, op) pair. It returns (nil, nil)
// when the injector is disabled or the MTBF schedule stays quiet
// within the run's horizon.
func newFaultRun(cfg *Config, ncols int) (*faultRun, error) {
	f := cfg.Fault
	if !f.Enabled() {
		return nil, nil
	}
	if f.DegradedGCWatermark < 0 || f.DegradedGCWatermark > 1 {
		return nil, fmt.Errorf("prototype: degraded GC watermark %v outside [0,1]", f.DegradedGCWatermark)
	}
	if f.DegradedGCWatermark == 0 {
		f.DegradedGCWatermark = 0.5
	}
	if f.RebuildBurst < 1 {
		f.RebuildBurst = 8
	}
	if f.QueueTimeout <= 0 {
		f.QueueTimeout = 2 * time.Millisecond
	}
	if f.RetryMax < 1 {
		f.RetryMax = 5
	}
	if f.RebuildDelayOps < 0 {
		return nil, fmt.Errorf("prototype: negative rebuild delay %d", f.RebuildDelayOps)
	}
	var failDev int
	var failOp int64
	if f.MTBFOps > 0 {
		// Offset the seed so the failure draw is independent of the
		// clients' zipfian streams.
		plan := fault.MTBF(cfg.Seed+0x9e3779b97f4a7c15, f.MTBFOps, ncols, cfg.Ops)
		ev, ok := plan.Next()
		if !ok {
			return nil, nil
		}
		failDev, failOp = ev.Device, ev.Op
	} else {
		failDev, failOp = f.FailDevice, f.FailAtOp
		if failDev < 0 || failDev >= ncols {
			return nil, fmt.Errorf("prototype: fail device %d outside array of %d columns", failDev, ncols)
		}
		if failOp > cfg.Ops {
			return nil, fmt.Errorf("prototype: fail op %d beyond run of %d ops", failOp, cfg.Ops)
		}
	}
	return &faultRun{
		cfg:       f,
		backoff:   fault.Backoff{Base: f.BackoffBase, Cap: f.BackoffCap},
		failDev:   failDev,
		failOp:    failOp,
		colChunks: make([]int64, ncols),
	}, nil
}

// registerTelemetry exposes the injector's counters and the retry
// histogram on the run's registry.
func (fr *faultRun) registerTelemetry(ts *telemetry.Set) {
	if fr == nil || ts == nil {
		return
	}
	fr.tracer = ts.Tracer
	reg := ts.Registry
	reg.NewFuncGauge(telemetry.MetricDegradedReads,
		"Reads served by XOR reconstruction fan-out", true,
		func() int64 { return fr.degReads.Load() })
	reg.NewFuncGauge(telemetry.MetricRebuildChunks,
		"Chunks the rebuild pushed through the device queues", true,
		func() int64 { return fr.rebuilt.Load() })
	reg.NewFuncGauge(telemetry.MetricLostChunks,
		"Chunk writes dropped on the failed column", true,
		func() int64 { return fr.lost.Load() })
	reg.NewFuncGauge(telemetry.MetricQueueRetries,
		"Queue sends that timed out and retried after backoff", true,
		func() int64 { return fr.retries.Load() })
	fr.retryHist = reg.NewHistogram(telemetry.MetricRetryHistogram,
		"Retries per dispatched device operation", []int64{0, 1, 2, 4, 8})
}

// failureActive reports whether the failed column is currently
// unavailable (failed and not yet fully rebuilt). Nil-safe.
func (fr *faultRun) failureActive() bool {
	if fr == nil {
		return false
	}
	p := Phase(fr.phase.Load())
	return p == PhaseDegraded || p == PhaseRebuilding
}

// degradedTarget reports whether a read aimed at col must fan out to
// the survivors. Nil-safe.
func (fr *faultRun) degradedTarget(col int) bool {
	return fr.failureActive() && col == fr.failDev
}

// enterPhaseLocked records a phase boundary: traffic snapshot, wall
// time, and the lock-free phase flag. Caller holds the run mutex.
func (fr *faultRun) enterPhaseLocked(p Phase, s trafficSnap) {
	fr.snaps[p] = s
	fr.startT[p] = time.Now()
	fr.entered[p] = true
	fr.phase.Store(int32(p))
}

// fail fires the planned failure: freezes the rebuild total, flips
// every target store into degraded-mode GC, and enters PhaseDegraded.
// Exactly one client calls it (the one whose op counter hits failOp).
func (fr *faultRun) fail(t faultTargets, now sim.Time) {
	t.mu.Lock()
	fr.rebuildTotal = fr.colChunks[fr.failDev]
	t.setDegraded(true)
	fr.enterPhaseLocked(PhaseDegraded, t.snap())
	t.mu.Unlock()
	fr.tracer.Emit(telemetry.DeviceFailed(now, fr.failDev, fr.failOp))
}

// dispatch sends a job to a device queue. With a nil receiver it is a
// plain blocking send (the healthy fast path). Armed, it first tries a
// non-blocking send, then QueueTimeout-bounded attempts separated by
// capped exponential backoff, and after RetryMax retries falls back to
// a blocking send — device operations are delayed, never dropped.
func (fr *faultRun) dispatch(d *device, job chunkJob) {
	if fr == nil {
		d.ch <- job
		return
	}
	select {
	case d.ch <- job:
		fr.retryHist.Observe(0)
		return
	default:
	}
	var retries int64
	for {
		t := time.NewTimer(fr.cfg.QueueTimeout)
		select {
		case d.ch <- job:
			t.Stop()
			fr.retryHist.Observe(retries)
			return
		case <-t.C:
		}
		retries++
		fr.retries.Add(1)
		if retries >= int64(fr.cfg.RetryMax) {
			d.ch <- job
			fr.retryHist.Observe(retries)
			return
		}
		time.Sleep(fr.backoff.Delay(int(retries) - 1))
	}
}

// placeChunk routes one chunk of the sink's stripe to its column.
// While the failure is active, chunks for the failed column are
// dropped and counted lost (on a real array their content is implied
// by parity; here the spare takes post-failure rows directly, so they
// never enter the rebuild). Caller holds the run mutex.
func (fr *faultRun) placeChunk(devices []*device, col int, job chunkJob) {
	if fr == nil {
		devices[col].ch <- job
		return
	}
	if col == fr.failDev && fr.failureActive() {
		fr.lost.Add(1)
		return
	}
	fr.colChunks[col]++
	fr.dispatch(devices[col], job)
}

// waitForRebuild blocks until the failure has fired and the configured
// op delay has elapsed (or the clients finished first). It reports
// whether a rebuild is actually needed.
func (fr *faultRun) waitForRebuild(issued *atomic.Int64, clientsDone <-chan struct{}) bool {
	trigger := fr.failOp + fr.cfg.RebuildDelayOps
	for {
		if fr.phase.Load() >= int32(PhaseDegraded) && issued.Load() >= trigger {
			return true
		}
		select {
		case <-clientsDone:
			// Clients drained before the delay elapsed; rebuild anyway if
			// the failure fired, otherwise there is nothing to do.
			return fr.phase.Load() >= int32(PhaseDegraded)
		default:
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// rebuild walks the failed column chunk by chunk, dispatching one
// reconstruction read on every surviving column plus the spare write
// through the same bounded queues user traffic uses — rebuild I/O
// steals real modelled bandwidth. Once progress passes the watermark
// the stores leave degraded-mode GC; completion enters PhaseRebuilt.
func (fr *faultRun) rebuild(devices []*device, t faultTargets, start time.Time, chunkBytes int64) {
	t.mu.Lock()
	total := fr.rebuildTotal
	fr.enterPhaseLocked(PhaseRebuilding, t.snap())
	t.mu.Unlock()
	fr.tracer.Emit(telemetry.RebuildStart(sim.Time(time.Since(start)), fr.failDev, total))

	cleared := false
	var done int64
	for done < total {
		n := int64(fr.cfg.RebuildBurst)
		if total-done < n {
			n = total - done
		}
		for i := int64(0); i < n; i++ {
			for col, d := range devices {
				if col == fr.failDev {
					continue
				}
				fr.dispatch(d, chunkJob{read: true})
			}
			fr.dispatch(devices[fr.failDev], chunkJob{payload: chunkBytes})
		}
		done += n
		fr.rebuilt.Add(n)
		if !cleared && float64(done) >= fr.cfg.DegradedGCWatermark*float64(total) {
			t.mu.Lock()
			t.setDegraded(false)
			t.mu.Unlock()
			cleared = true
		}
	}
	t.mu.Lock()
	t.setDegraded(false)
	fr.enterPhaseLocked(PhaseRebuilt, t.snap())
	t.mu.Unlock()
	fr.tracer.Emit(telemetry.RebuildEnd(sim.Time(time.Since(start)), fr.failDev, total))
}

// collect merges one client's per-phase latency samples and op counts.
func (fr *faultRun) collect(latNS [numPhases][]float64, ops [numPhases]int64) {
	fr.collectMu.Lock()
	for p := range latNS {
		fr.latNS[p] = append(fr.latNS[p], latNS[p]...)
		fr.phaseOps[p] += ops[p]
	}
	fr.collectMu.Unlock()
}

// finish folds the injector's accounting into the run result: the
// per-phase throughput/WA/P99 table and the fault counters.
func (fr *faultRun) finish(res *Result, end time.Time, final *lss.Metrics) {
	res.FailedDevice = fr.failDev
	res.FailedAtOp = fr.failOp
	res.DegradedReads = fr.degReads.Load()
	res.RebuildChunks = fr.rebuilt.Load()
	res.LostChunks = fr.lost.Load()
	res.QueueRetries = fr.retries.Load()
	endSnap := trafficSnap{user: final.UserBlocks, gc: final.GCBlocks}
	for p := Phase(0); p < numPhases; p++ {
		if !fr.entered[p] {
			continue
		}
		stop, snap := end, endSnap
		for q := p + 1; q < numPhases; q++ {
			if fr.entered[q] {
				stop, snap = fr.startT[q], fr.snaps[q]
				break
			}
		}
		ps := PhaseStats{
			Phase:   p,
			Ops:     fr.phaseOps[p],
			Elapsed: stop.Sub(fr.startT[p]),
		}
		if ps.Elapsed > 0 {
			ps.OpsPerSec = float64(ps.Ops) / ps.Elapsed.Seconds()
		}
		if du := snap.user - fr.snaps[p].user; du > 0 {
			ps.WA = float64(du+snap.gc-fr.snaps[p].gc) / float64(du)
		} else {
			ps.WA = 1
		}
		if samples := fr.latNS[p]; len(samples) > 0 {
			ps.P99 = time.Duration(stats.Percentile(samples, 99))
		}
		res.Phases = append(res.Phases, ps)
	}
}
