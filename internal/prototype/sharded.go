package prototype

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/lss"
	"adapt/internal/segfile"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// PolicyFactory builds the placement policy for one shard. cfg is the
// shard store's geometry (UserBlocks already cut down to the shard's
// slice); each shard must get its own policy instance because policies
// hold per-store state.
type PolicyFactory func(shard int, cfg lss.Config) (lss.Policy, error)

// ShardedConfig describes a sharded ingest engine.
type ShardedConfig struct {
	// Engine carries the store geometry, device model, and telemetry
	// shared by every shard. Engine.Store.UserBlocks is the aggregate
	// LBA space; Engine.Policy is ignored in favour of PolicyFactory.
	Engine EngineConfig
	// Shards is the shard count (default runtime.GOMAXPROCS(0)).
	Shards int
	// PolicyFactory builds each shard's placement policy. Required.
	PolicyFactory PolicyFactory
}

// Sharded partitions the LBA space into contiguous per-core slices,
// each owned by an independent Engine (own lss.Store, own lock, own
// victim index, own GC watermarks) over one shared device array — the
// shards split the address space, not the hardware. It implements
// Ingest, so the network server and harness drive it exactly like the
// flat Engine.
//
// Cross-shard coordination is deliberately minimal:
//
//   - GC desynchronization: a one-token gate serializes GC cycles
//     across shards so no two shards hammer the same physical columns
//     with relocation traffic simultaneously (the paper's GC interferes
//     with foreground I/O through exactly that path). Shards count the
//     time they wait in GCGateWaits/GCGateWaitNS.
//   - Telemetry windows: shard stores never drive the shared recorder
//     (a tick refreshes every store-reading gauge on the set), so the
//     router runs one ticker goroutine that takes all shard locks in
//     order and advances the recorder on the shared clock.
type Sharded struct {
	shards      []*Engine
	bases       []int64 // first global LBA of each shard
	sizes       []int64 // blocks owned by each shard
	shardBlocks int64   // blocks per shard (last shard absorbs remainder)
	cfg         lss.Config
	devs        *deviceArray
	ts          *telemetry.Set

	gate       chan struct{} // 1-token GC scheduler
	gateWaits  []atomic.Int64
	gateWaitNS []atomic.Int64

	tickStop chan struct{}
	tickDone chan struct{}

	closeOnce sync.Once
	closeErr  error
}

// NewSharded builds a sharded ingest engine. The caller must Close it.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	n := cfg.Shards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if cfg.PolicyFactory == nil {
		return nil, fmt.Errorf("prototype: sharded engine requires a PolicyFactory")
	}
	ecfg := cfg.Engine.withDefaults()
	if ecfg.VerifyMirror && !ecfg.Verify {
		return nil, fmt.Errorf("prototype: VerifyMirror requires Verify")
	}
	// The partition must exist before any policy (and thus any store)
	// does, so default the group-independent geometry here; each shard
	// store re-runs the same defaulting on its slice.
	geo := ecfg.Store.GeometryDefaults()
	if int64(n) > geo.UserBlocks/int64(geo.ChunkBlocks) {
		return nil, fmt.Errorf("prototype: %d shards over %d blocks leaves sub-chunk shards", n, geo.UserBlocks)
	}

	s := &Sharded{
		shards:      make([]*Engine, 0, n),
		bases:       make([]int64, n),
		sizes:       make([]int64, n),
		shardBlocks: geo.UserBlocks / int64(n),
		cfg:         geo,
		gate:        make(chan struct{}, 1),
		gateWaits:   make([]atomic.Int64, n),
		gateWaitNS:  make([]atomic.Int64, n),
		tickStop:    make(chan struct{}),
		tickDone:    make(chan struct{}),
	}
	s.devs = newDeviceArray(geo.DataColumns+1, ecfg.QueueDepth, ecfg.ServiceTime, ecfg.ReadServiceTime)
	s.ts = ecfg.Telemetry
	if s.ts != nil {
		s.devs.registerTelemetry(s.ts)
	}

	fill := ecfg.Fill
	for i := 0; i < n; i++ {
		s.bases[i] = int64(i) * s.shardBlocks
		s.sizes[i] = s.shardBlocks
		if i == n-1 {
			s.sizes[i] = geo.UserBlocks - s.bases[i]
		}
		scfg := ecfg
		scfg.Fill = false // filled in parallel below
		scfg.Store = geo
		scfg.Store.UserBlocks = s.sizes[i]
		if ecfg.Durable != nil {
			if ecfg.Durable.Dir == "" {
				s.teardown()
				return nil, fmt.Errorf("prototype: sharded durable backend requires Options.Dir (one subdirectory per shard)")
			}
			dopts := *ecfg.Durable
			dopts.Dir = filepath.Join(ecfg.Durable.Dir, fmt.Sprintf("shard-%d", i))
			scfg.Durable = &dopts
		}
		pol, err := cfg.PolicyFactory(i, scfg.Store)
		if err != nil {
			s.teardown()
			return nil, fmt.Errorf("prototype: shard %d policy: %w", i, err)
		}
		scfg.Policy = pol
		eng, err := newEngineOn(scfg, s.devs, i, false, s.gateFor(i))
		if err != nil {
			s.teardown()
			return nil, fmt.Errorf("prototype: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, eng)
	}

	if fill {
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i, eng := range s.shards {
			if eng.Recovered() {
				// The shard rolled forward from its durable directory;
				// refilling would overwrite the recovered state.
				continue
			}
			wg.Add(1)
			go func(i int, eng *Engine) {
				defer wg.Done()
				for lba := int64(0); lba < s.sizes[i]; lba++ {
					if err := eng.Write(lba, 1); err != nil {
						errs[i] = err
						return
					}
				}
			}(i, eng)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				s.teardown()
				return nil, fmt.Errorf("prototype: shard %d fill: %w", i, err)
			}
		}
	}

	if s.ts != nil && s.ts.Recorder != nil {
		go s.runTicker()
	} else {
		close(s.tickDone)
	}
	return s, nil
}

// gateFor builds the cross-shard GC admission gate for one shard,
// wired through the store's construction Deps: a synchronous GC cycle
// must hold the single token for its duration, so at most one shard
// relocates segments at a time and the device columns never see two
// shards' GC traffic stacked. Under background GC the store ignores
// the gate — the pacer itself serializes slices across shards.
func (s *Sharded) gateFor(i int) func() (release func()) {
	return func() (release func()) {
		select {
		case s.gate <- struct{}{}:
		default:
			t0 := time.Now()
			s.gate <- struct{}{}
			s.gateWaits[i].Add(1)
			s.gateWaitNS[i].Add(time.Since(t0).Nanoseconds())
		}
		return func() { <-s.gate }
	}
}

// runTicker advances the shared recorder on the wall-derived clock.
// A tick refreshes every function gauge on the set, and those gauges
// read raw store fields, so the ticker holds every shard lock (taken
// in shard order; it is the only multi-lock holder, so order alone
// rules out deadlock).
func (s *Sharded) runTicker() {
	defer close(s.tickDone)
	iv := time.Duration(s.ts.Recorder.Interval())
	if iv <= 0 {
		iv = 10 * time.Millisecond
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-s.tickStop:
			return
		case <-t.C:
			s.lockAll()
			s.ts.Recorder.TickTo(s.devs.now())
			s.unlockAll()
		}
	}
}

func (s *Sharded) lockAll() {
	for _, e := range s.shards {
		e.mu.Lock()
	}
}

func (s *Sharded) unlockAll() {
	for _, e := range s.shards {
		e.mu.Unlock()
	}
}

// teardown closes whatever construction managed to start.
func (s *Sharded) teardown() {
	for _, e := range s.shards {
		e.abort()
	}
	s.devs.close()
}

// Config returns the aggregate geometry: the defaulted store config
// with UserBlocks spanning the whole sharded LBA space.
func (s *Sharded) Config() lss.Config { return s.cfg }

// Now returns the shared wall-derived simulated time.
func (s *Sharded) Now() sim.Time { return s.devs.now() }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.shards) }

// GCShards returns each shard engine as an independent GC-stepping
// target; the pacer serializes slices across them, which is the
// background-mode replacement for the one-token gate.
func (s *Sharded) GCShards() []GCShard {
	out := make([]GCShard, len(s.shards))
	for i, e := range s.shards {
		out[i] = e
	}
	return out
}

// QueueFill reports the fill fraction of the most backlogged column of
// the shared device array.
func (s *Sharded) QueueFill() float64 { return s.devs.queueFill() }

// ShardOf maps a global LBA to its owning shard.
func (s *Sharded) ShardOf(lba int64) int {
	if lba < 0 {
		return 0
	}
	i := int(lba / s.shardBlocks)
	if i >= len(s.shards) {
		i = len(s.shards) - 1
	}
	return i
}

// eachShard splits the global range [lba, lba+blocks) into per-shard
// local ranges and invokes fn for each, in ascending shard order.
func (s *Sharded) eachShard(lba int64, blocks int, fn func(sh int, local int64, n int) error) error {
	for blocks > 0 {
		sh := s.ShardOf(lba)
		end := s.bases[sh] + s.sizes[sh]
		n := blocks
		if rest := end - lba; int64(n) > rest {
			n = int(rest)
		}
		if n <= 0 { // out of range: let the owning store reject it
			n = blocks
		}
		if err := fn(sh, lba-s.bases[sh], n); err != nil {
			return err
		}
		lba += int64(n)
		blocks -= n
	}
	return nil
}

// Write appends blocks starting at the global lba, splitting across
// shard boundaries as needed.
func (s *Sharded) Write(lba int64, blocks int) error {
	return s.eachShard(lba, blocks, func(sh int, local int64, n int) error {
		return s.shards[sh].Write(local, n)
	})
}

// Read accounts a user read.
func (s *Sharded) Read(lba int64, blocks int) error {
	return s.eachShard(lba, blocks, func(sh int, local int64, n int) error {
		return s.shards[sh].Read(local, n)
	})
}

// Trim discards blocks.
func (s *Sharded) Trim(lba int64, blocks int) error {
	return s.eachShard(lba, blocks, func(sh int, local int64, n int) error {
		return s.shards[sh].Trim(local, n)
	})
}

// mergeTiming folds one sub-op's timing into the whole-op view: first
// Enter/Locked, last Done, backpressure summed.
func mergeTiming(dst *OpTiming, t OpTiming, first bool) {
	if first {
		dst.Enter = t.Enter
		dst.Locked = t.Locked
	}
	dst.Done = t.Done
	dst.SinkNS += t.SinkNS
}

// WriteTimed is Write plus a timing breakdown spanning every touched
// shard.
func (s *Sharded) WriteTimed(lba int64, blocks int) (OpTiming, error) {
	var out OpTiming
	first := true
	err := s.eachShard(lba, blocks, func(sh int, local int64, n int) error {
		t, err := s.shards[sh].WriteTimed(local, n)
		mergeTiming(&out, t, first)
		first = false
		return err
	})
	return out, err
}

// ReadTimed is Read plus a timing breakdown.
func (s *Sharded) ReadTimed(lba int64, blocks int) (OpTiming, error) {
	var out OpTiming
	first := true
	err := s.eachShard(lba, blocks, func(sh int, local int64, n int) error {
		t, err := s.shards[sh].ReadTimed(local, n)
		mergeTiming(&out, t, first)
		first = false
		return err
	})
	return out, err
}

// TrimTimed is Trim plus a timing breakdown.
func (s *Sharded) TrimTimed(lba int64, blocks int) (OpTiming, error) {
	var out OpTiming
	first := true
	err := s.eachShard(lba, blocks, func(sh int, local int64, n int) error {
		t, err := s.shards[sh].TrimTimed(local, n)
		mergeTiming(&out, t, first)
		first = false
		return err
	})
	return out, err
}

// bucketBatch splits a global-LBA batch into per-shard local batches.
// The common case — a committer that already batches per shard — hits
// the single-bucket fast path and allocates one translated slice.
func (s *Sharded) bucketBatch(ops []BatchWrite) map[int][]BatchWrite {
	buckets := make(map[int][]BatchWrite, 1)
	for _, op := range ops {
		s.eachShard(op.LBA, op.Blocks, func(sh int, local int64, n int) error {
			buckets[sh] = append(buckets[sh], BatchWrite{LBA: local, Blocks: n})
			return nil
		})
	}
	return buckets
}

// WriteBatch applies a group commit. Ops owned by one shard land
// back-to-back under that shard's single lock acquisition; a mixed
// batch is split per shard (each sub-batch keeps the group-commit
// chunk-fill property within its shard).
func (s *Sharded) WriteBatch(ops []BatchWrite) error {
	for sh, sub := range s.bucketBatch(ops) {
		if err := s.shards[sh].WriteBatch(sub); err != nil {
			return err
		}
	}
	return nil
}

// WriteBatchTimed is WriteBatch plus a merged timing breakdown.
func (s *Sharded) WriteBatchTimed(ops []BatchWrite) (OpTiming, error) {
	var out OpTiming
	first := true
	for sh, sub := range s.bucketBatch(ops) {
		t, err := s.shards[sh].WriteBatchTimed(sub)
		mergeTiming(&out, t, first)
		first = false
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// FailColumn fails one physical array column. The column is shared
// hardware, so the failure degrades every shard: the fan-out stops at
// the first error (the shards already degraded stay degraded — the
// caller sees the error and the array is in a genuinely mixed state
// only if the mirror rejected the column, which the first shard
// catches before any state changes).
func (s *Sharded) FailColumn(col int) error {
	for _, e := range s.shards {
		if err := e.FailColumn(col); err != nil {
			return err
		}
	}
	return nil
}

// RebuildStep spreads the chunk budget over the shards' rebuilds in
// shard order; done reports whether every shard's rebuild finished.
func (s *Sharded) RebuildStep(maxChunks int) (rebuilt int, done bool, err error) {
	done = true
	for _, e := range s.shards {
		budget := maxChunks - rebuilt
		if budget <= 0 {
			return rebuilt, false, nil
		}
		n, d, err := e.RebuildStep(budget)
		rebuilt += n
		if err != nil {
			return rebuilt, false, err
		}
		if !d {
			done = false
		}
	}
	return rebuilt, done, nil
}

// Degraded reports whether any shard runs degraded-mode GC.
func (s *Sharded) Degraded() bool {
	for _, e := range s.shards {
		if e.Degraded() {
			return true
		}
	}
	return false
}

// ShardStats returns one snapshot per shard, GC gate waits included.
func (s *Sharded) ShardStats() []EngineStats {
	out := make([]EngineStats, len(s.shards))
	for i, e := range s.shards {
		st := e.Stats()
		st.GCGateWaits = s.gateWaits[i].Load()
		st.GCGateWaitNS = s.gateWaitNS[i].Load()
		out[i] = st
	}
	return out
}

// Stats aggregates the shard snapshots; the ratio fields are recomputed
// from the summed traffic so they match what one flat store would
// report for the same block counts.
func (s *Sharded) Stats() EngineStats {
	var agg EngineStats
	for _, st := range s.ShardStats() {
		agg.UserBlocks += st.UserBlocks
		agg.GCBlocks += st.GCBlocks
		agg.ShadowBlocks += st.ShadowBlocks
		agg.PaddingBlocks += st.PaddingBlocks
		agg.ReadBlocks += st.ReadBlocks
		agg.TrimmedBlocks += st.TrimmedBlocks
		agg.PaddedChunks += st.PaddedChunks
		agg.ChunkFlushes += st.ChunkFlushes
		agg.ParityChunks += st.ParityChunks
		agg.GCCycles += st.GCCycles
		agg.FreeSegments += st.FreeSegments
		agg.GCGateWaits += st.GCGateWaits
		agg.GCGateWaitNS += st.GCGateWaitNS
		agg.GCSlices += st.GCSlices
		agg.GCEmergencyRuns += st.GCEmergencyRuns
	}
	agg.WA = 1
	agg.EffectiveWA = 1
	total := agg.UserBlocks + agg.GCBlocks + agg.ShadowBlocks + agg.PaddingBlocks
	if agg.UserBlocks > 0 {
		agg.WA = float64(agg.UserBlocks+agg.GCBlocks) / float64(agg.UserBlocks)
		agg.EffectiveWA = float64(total) / float64(agg.UserBlocks)
	}
	if total > 0 {
		agg.PaddingRatio = float64(agg.PaddingBlocks) / float64(total)
	}
	return agg
}

// DurableStats sums the shard backends' counters (tail quantiles take
// the worst shard); ok is false when no shard has a durable backend.
func (s *Sharded) DurableStats() (segfile.Stats, bool) {
	var agg segfile.Stats
	ok := false
	for _, e := range s.shards {
		st, has := e.DurableStats()
		if !has {
			continue
		}
		ok = true
		agg.SyncedSegments += st.SyncedSegments
		agg.Fsyncs += st.Fsyncs
		agg.Checkpoints += st.Checkpoints
		agg.BytesWritten += st.BytesWritten
		agg.RecoveredSegments += st.RecoveredSegments
		agg.RecoveredBlocks += st.RecoveredBlocks
		agg.TornRecords += st.TornRecords
		agg.CorruptFiles += st.CorruptFiles
		if st.FsyncP50NS > agg.FsyncP50NS {
			agg.FsyncP50NS = st.FsyncP50NS
		}
		if st.FsyncP99NS > agg.FsyncP99NS {
			agg.FsyncP99NS = st.FsyncP99NS
		}
		if st.FsyncP999NS > agg.FsyncP999NS {
			agg.FsyncP999NS = st.FsyncP999NS
		}
	}
	return agg, ok
}

// Recovered reports whether any shard rolled forward from its durable
// directory.
func (s *Sharded) Recovered() bool {
	for _, e := range s.shards {
		if e.Recovered() {
			return true
		}
	}
	return false
}

// Shard returns the i'th shard engine — the differential and recovery
// tests inspect shard stores directly.
func (s *Sharded) Shard(i int) *Engine { return s.shards[i] }

// ShardBase returns the first global LBA owned by shard i.
func (s *Sharded) ShardBase(i int) int64 { return s.bases[i] }

// Drain pads and flushes every shard's open chunks (and runs the full
// oracle cross-check per shard when verification is on).
func (s *Sharded) Drain() error {
	for i, e := range s.shards {
		if err := e.Drain(); err != nil {
			return fmt.Errorf("prototype: shard %d drain: %w", i, err)
		}
	}
	return nil
}

// Close stops the recorder ticker, closes every shard (draining and
// invariant-checking each store), finalizes the shared recorder, and
// stops the device workers.
func (s *Sharded) Close() error {
	s.closeOnce.Do(func() {
		close(s.tickStop)
		<-s.tickDone
		for i, e := range s.shards {
			if err := e.Close(); err != nil && s.closeErr == nil {
				s.closeErr = fmt.Errorf("prototype: shard %d close: %w", i, err)
			}
		}
		if s.ts != nil && s.ts.Recorder != nil {
			// Every shard is closed (no mutators left), so finishing the
			// recorder — which refreshes all store-reading gauges — is safe
			// without the shard locks.
			s.ts.Recorder.Finish(s.devs.now())
		}
		s.devs.close()
	})
	return s.closeErr
}

var _ Ingest = (*Sharded)(nil)
var _ Ingest = (*Engine)(nil)
