package prototype

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// TestPrototypeRace runs concurrent clients with telemetry attached
// while a scraper goroutine continuously snapshots the registry,
// recorder, and tracer — the live-introspection pattern of the debug
// HTTP endpoint. Run under -race it proves the concurrency contract:
// atomic counters, cached function gauges, and the mutex-guarded
// recorder/tracer never race with the store's writers.
func TestPrototypeRace(t *testing.T) {
	ts := telemetry.New(telemetry.Options{
		WindowInterval: sim.Time(time.Millisecond),
		EventCapacity:  1024,
	})
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		for !stop.Load() {
			buf.Reset()
			if err := ts.Registry.WriteProm(&buf); err != nil {
				t.Error(err)
				return
			}
			buf.Reset()
			if err := ts.Tracer.WriteJSONL(&buf); err != nil {
				t.Error(err)
				return
			}
			buf.Reset()
			if err := telemetry.WriteWindowsJSONL(&buf, ts.Recorder.Windows()); err != nil {
				t.Error(err)
				return
			}
			ts.Recorder.Dropped()
			ts.Tracer.Len()
		}
	}()

	res, err := Run(Config{
		Store:       protoStoreConfig(),
		Policy:      protoPolicy(t),
		Clients:     8,
		Ops:         20000,
		Theta:       0.99,
		Fill:        true,
		ReadRatio:   0.2,
		ServiceTime: time.Microsecond,
		QueueDepth:  8,
		Seed:        11,
		Telemetry:   ts,
	})
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsPerSec <= 0 {
		t.Fatal("no throughput")
	}
	// The attached set must agree with the run result on totals.
	ws := ts.Recorder.Windows()
	if len(ws) == 0 {
		t.Fatal("no telemetry windows recorded")
	}
	last := &ws[len(ws)-1]
	if v, _ := last.Value(telemetry.MetricUserBlocks); v != res.UserBlocks {
		t.Fatalf("telemetry user blocks %d, run reported %d", v, res.UserBlocks)
	}
	if v, _ := last.Value(telemetry.MetricPaddingBlocks); v != res.PaddingBlocks {
		t.Fatalf("telemetry padding blocks %d, run reported %d", v, res.PaddingBlocks)
	}
	// Per-device instruments registered and accumulated.
	var busy int64
	for _, in := range ts.Registry.Scalars() {
		if telemetry.LabelValue(in.Name(), "device") != "" && in.Cumulative() {
			busy += in.Load()
		}
	}
	if busy == 0 {
		t.Fatal("per-device counters never accumulated")
	}
	if ts.Tracer.Len() == 0 {
		t.Fatal("no events traced")
	}
}
