package prototype

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/sim"
	"adapt/internal/workload"
)

// shardedTestConfig is a tiny geometry that keeps GC active: 8-block
// chunks, 4-chunk segments, 25% spare.
func shardedTestConfig(userBlocks int64) lss.Config {
	return lss.Config{
		BlockSize:     64,
		ChunkBlocks:   8,
		SegmentChunks: 4,
		UserBlocks:    userBlocks,
		OverProvision: 0.25,
	}
}

func sepGCFactory(t *testing.T) PolicyFactory {
	t.Helper()
	return func(shard int, cfg lss.Config) (lss.Policy, error) {
		return placement.New(placement.NameSepGC, placement.Params{
			UserBlocks:    cfg.UserBlocks,
			SegmentBlocks: cfg.SegmentBlocks(),
			ChunkBlocks:   cfg.ChunkBlocks,
		})
	}
}

func newTestSharded(t *testing.T, userBlocks int64, shards int, verify, mirror, fill bool) *Sharded {
	t.Helper()
	s, err := NewSharded(ShardedConfig{
		Engine: EngineConfig{
			Store:        shardedTestConfig(userBlocks),
			ServiceTime:  time.Microsecond,
			Fill:         fill,
			Verify:       verify,
			VerifyMirror: mirror,
		},
		Shards:        shards,
		PolicyFactory: sepGCFactory(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// zipfOp is one step of the deterministic differential trace.
type zipfOp struct {
	lba    int64
	blocks int
	trim   bool
}

// zipfTrace builds a deterministic 100k-op zipfian trace of writes and
// trims over the full LBA space, boundary-crossing ranges included.
func zipfTrace(seed uint64, userBlocks int64, n int) []zipfOp {
	rng := sim.NewRNG(seed)
	z := workload.NewZipf(rng, userBlocks, 0.99, true)
	ops := make([]zipfOp, n)
	for i := range ops {
		lba := z.Next()
		blocks := 1 + int(rng.Intn(4))
		if rest := userBlocks - lba; int64(blocks) > rest {
			blocks = int(rest)
		}
		ops[i] = zipfOp{lba: lba, blocks: blocks, trim: rng.Intn(5) == 0}
	}
	return ops
}

// applyTrace replays a trace against any engine.
func applyTrace(t *testing.T, eng Ingest, ops []zipfOp) {
	t.Helper()
	for i, op := range ops {
		var err error
		if op.trim {
			err = eng.Trim(op.lba, op.blocks)
		} else {
			err = eng.Write(op.lba, op.blocks)
		}
		if err != nil {
			t.Fatalf("op %d (%+v): %v", i, op, err)
		}
	}
}

// liveness returns the per-LBA liveness bitmap of an engine. The
// physical location of a block differs between a flat and a sharded
// engine (independent logs, independent GC), but whether an LBA is
// live depends only on the write/trim history — the differential
// invariant the router must preserve.
func liveness(eng Ingest, userBlocks int64) []bool {
	out := make([]bool, userBlocks)
	switch e := eng.(type) {
	case *Engine:
		for lba := int64(0); lba < userBlocks; lba++ {
			_, _, out[lba] = e.store.Location(lba)
		}
	case *Sharded:
		for lba := int64(0); lba < userBlocks; lba++ {
			sh := e.ShardOf(lba)
			_, _, out[lba] = e.shards[sh].store.Location(lba - e.bases[sh])
		}
	}
	return out
}

// TestShardedDifferentialZipfian replays one seeded 100k-op zipfian
// trace against a flat engine and a 4-shard engine and requires the
// identical per-LBA final state. The sharded run carries the checker
// oracle, so every shard is also cross-checked against the reference
// model during the replay and in full at Close.
func TestShardedDifferentialZipfian(t *testing.T) {
	const userBlocks = 8192
	ops := zipfTrace(0xad457, userBlocks, 100_000)

	flat := func() *Engine {
		pol, err := sepGCFactory(t)(0, shardedTestConfig(userBlocks).GeometryDefaults())
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(EngineConfig{
			Store:       shardedTestConfig(userBlocks),
			Policy:      pol,
			ServiceTime: time.Microsecond,
			Fill:        true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}()
	sharded := newTestSharded(t, userBlocks, 4, true, false, true)

	applyTrace(t, flat, ops)
	applyTrace(t, sharded, ops)
	if err := flat.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Drain(); err != nil {
		t.Fatal(err)
	}

	flatLive := liveness(flat, userBlocks)
	shardLive := liveness(sharded, userBlocks)
	diffs := 0
	for lba := range flatLive {
		if flatLive[lba] != shardLive[lba] {
			diffs++
			if diffs <= 5 {
				t.Errorf("lba %d: flat live=%v sharded live=%v", lba, flatLive[lba], shardLive[lba])
			}
		}
	}
	if diffs > 0 {
		t.Fatalf("%d of %d LBAs diverge between flat and sharded", diffs, userBlocks)
	}

	// The aggregate view must match the flat engine's user traffic
	// exactly: routing must neither drop nor duplicate blocks.
	fs, ss := flat.Stats(), sharded.Stats()
	if fs.UserBlocks != ss.UserBlocks || fs.TrimmedBlocks != ss.TrimmedBlocks {
		t.Fatalf("traffic diverges: flat user=%d trim=%d, sharded user=%d trim=%d",
			fs.UserBlocks, fs.TrimmedBlocks, ss.UserBlocks, ss.TrimmedBlocks)
	}

	if err := flat.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRecoveryPerShard crash-recovers each shard independently:
// checkpoint every shard store, recover each into a fresh store, and
// require per-shard invariants plus an identical live set.
func TestShardedRecoveryPerShard(t *testing.T) {
	const userBlocks = 4096
	s := newTestSharded(t, userBlocks, 4, false, false, true)
	defer s.Close()

	applyTrace(t, s, zipfTrace(0xfeed, userBlocks, 20_000))
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}

	for i, eng := range s.shards {
		var buf bytes.Buffer
		if err := eng.store.WriteCheckpoint(&buf); err != nil {
			t.Fatalf("shard %d checkpoint: %v", i, err)
		}
		pol, err := sepGCFactory(t)(i, eng.store.Config())
		if err != nil {
			t.Fatal(err)
		}
		rec, err := lss.Recover(&buf, eng.store.Config(), pol)
		if err != nil {
			t.Fatalf("shard %d recover: %v", i, err)
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("shard %d recovered invariants: %v", i, err)
		}
		// Every block live before the crash must be live after recovery.
		// The converse is weaker: the checkpoint carries no trim journal,
		// so a trimmed block whose last durable copy still sits in a
		// sealed segment rolls forward again (documented crash semantics
		// of the segment-summary format).
		for lba := int64(0); lba < s.sizes[i]; lba++ {
			_, _, wantLive := eng.store.Location(lba)
			_, _, gotLive := rec.Location(lba)
			if wantLive && !gotLive {
				t.Fatalf("shard %d lba %d: lost after recovery", i, lba)
			}
		}
	}
}

// TestShardedConcurrentFault hammers a mirrored 4-shard engine from
// eight goroutines while a column fails and rebuilds mid-traffic —
// the -race exercise for the router, the GC gate, and the fault
// fan-out across shards.
func TestShardedConcurrentFault(t *testing.T) {
	const userBlocks = 4096
	s := newTestSharded(t, userBlocks, 4, true, true, true)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(g)*7919 + 3)
			z := workload.NewZipf(rng, userBlocks, 0.99, true)
			for i := 0; i < 3000; i++ {
				lba := z.Next()
				switch rng.Intn(10) {
				case 0:
					if err := s.Trim(lba, 1); err != nil {
						t.Errorf("goroutine %d trim: %v", g, err)
						return
					}
				case 1:
					if err := s.Read(lba, 1); err != nil {
						t.Errorf("goroutine %d read: %v", g, err)
						return
					}
				default:
					n := 1 + int(rng.Intn(3))
					if rest := userBlocks - lba; int64(n) > rest {
						n = int(rest)
					}
					if err := s.Write(lba, n); err != nil {
						t.Errorf("goroutine %d write: %v", g, err)
						return
					}
				}
			}
		}(g)
	}

	// Fail a column mid-traffic, then rebuild online. Every shard must
	// degrade and every shard must come back.
	time.Sleep(2 * time.Millisecond)
	if err := s.FailColumn(1); err != nil {
		t.Fatalf("fail column: %v", err)
	}
	if !s.Degraded() {
		t.Fatal("not degraded after FailColumn")
	}
	for _, e := range s.shards {
		if !e.Degraded() {
			t.Fatal("a shard stayed healthy through a shared-column failure")
		}
	}
	for {
		_, done, err := s.RebuildStep(64)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		if done {
			break
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if s.Degraded() {
		t.Fatal("still degraded after full rebuild")
	}

	st := s.Stats()
	if st.UserBlocks == 0 {
		t.Fatal("no traffic accounted")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close (per-shard oracle full check): %v", err)
	}
}

// TestShardedRouting pins the partition arithmetic: contiguous slices,
// remainder to the last shard, boundary-crossing ops split correctly.
func TestShardedRouting(t *testing.T) {
	const userBlocks = 4100 // not divisible by 4: last shard gets +4
	s := newTestSharded(t, userBlocks, 4, false, false, false)
	defer s.Close()

	if got := s.Shards(); got != 4 {
		t.Fatalf("Shards() = %d", got)
	}
	if s.shardBlocks != userBlocks/4 {
		t.Fatalf("shardBlocks = %d, want %d", s.shardBlocks, userBlocks/4)
	}
	if last := s.sizes[3]; last != userBlocks-3*(userBlocks/4) {
		t.Fatalf("last shard size = %d", last)
	}
	for _, tc := range []struct {
		lba  int64
		want int
	}{
		{0, 0}, {s.shardBlocks - 1, 0}, {s.shardBlocks, 1},
		{userBlocks - 1, 3}, {3 * s.shardBlocks, 3},
	} {
		if got := s.ShardOf(tc.lba); got != tc.want {
			t.Errorf("ShardOf(%d) = %d, want %d", tc.lba, got, tc.want)
		}
	}

	// A write crossing the shard 0/1 boundary must land in both shards.
	cross := s.shardBlocks - 2
	if err := s.Write(cross, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off < 4; off++ {
		lba := cross + off
		sh := s.ShardOf(lba)
		if _, _, live := s.shards[sh].store.Location(lba - s.bases[sh]); !live {
			t.Errorf("lba %d (shard %d) not live after boundary write", lba, sh)
		}
	}

	// The aggregate config spans the whole space.
	if got := s.Config().UserBlocks; got != userBlocks {
		t.Fatalf("Config().UserBlocks = %d, want %d", got, userBlocks)
	}
	if st := s.Stats(); st.UserBlocks != 4 {
		t.Fatalf("aggregate UserBlocks = %d, want 4", st.UserBlocks)
	}
}

// TestShardedStatsShape checks ShardStats arity and the WriteBatch
// bucketing across shards.
func TestShardedStatsShape(t *testing.T) {
	const userBlocks = 4096
	s := newTestSharded(t, userBlocks, 4, false, false, false)
	defer s.Close()

	// One batch touching every shard.
	var ops []BatchWrite
	for i := 0; i < 4; i++ {
		ops = append(ops, BatchWrite{LBA: s.bases[i], Blocks: 2})
	}
	if err := s.WriteBatch(ops); err != nil {
		t.Fatal(err)
	}
	sst := s.ShardStats()
	if len(sst) != 4 {
		t.Fatalf("ShardStats len = %d", len(sst))
	}
	for i, st := range sst {
		if st.UserBlocks != 2 {
			t.Fatalf("shard %d UserBlocks = %d, want 2 (batch mis-bucketed: %+v)", i, st.UserBlocks, sst)
		}
	}
	if _, err := s.WriteBatchTimed([]BatchWrite{{LBA: 0, Blocks: 1}}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.UserBlocks != 9 {
		t.Fatalf("aggregate UserBlocks = %d, want 9", st.UserBlocks)
	}
}
