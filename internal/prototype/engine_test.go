package prototype

import (
	"sync"
	"testing"
	"time"

	"adapt/internal/lss"
	"adapt/internal/placement"
)

func testEngine(t *testing.T, verify, mirror bool) *Engine {
	t.Helper()
	cfg := lss.Config{
		BlockSize:     64, // keep the mirror's RAM footprint tiny
		ChunkBlocks:   8,
		SegmentChunks: 4,
		UserBlocks:    4096,
		OverProvision: 0.25,
	}
	pol, err := placement.New(placement.NameSepGC, placement.Params{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.ChunkBlocks * cfg.SegmentChunks,
		ChunkBlocks:   cfg.ChunkBlocks,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(EngineConfig{
		Store:        cfg,
		Policy:       pol,
		ServiceTime:  time.Microsecond,
		Verify:       verify,
		VerifyMirror: mirror,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineConcurrentIngest(t *testing.T) {
	e := testEngine(t, true, false)
	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 1024
			for i := 0; i < 4000; i++ {
				lba := base + int64(i%1024)
				if err := e.Write(lba, 1); err != nil {
					t.Error(err)
					return
				}
				if i%7 == 0 {
					if err := e.Read(lba, 1); err != nil {
						t.Error(err)
						return
					}
				}
				if i%97 == 0 {
					if err := e.Trim(base+int64((i+13)%1024), 2); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := e.Stats()
	if st.UserBlocks != writers*4000 {
		t.Fatalf("user blocks %d, want %d", st.UserBlocks, writers*4000)
	}
	if st.GCCycles == 0 {
		t.Fatalf("expected GC activity at full utilization, got none: %+v", st)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close (oracle full check): %v", err)
	}
	if err := e.Write(0, 1); err != ErrEngineClosed {
		t.Fatalf("write after close: got %v, want ErrEngineClosed", err)
	}
}

func TestEngineBatchFillsChunks(t *testing.T) {
	e := testEngine(t, false, false)
	chunk := e.Config().ChunkBlocks
	ops := make([]BatchWrite, chunk)
	for r := 0; r < 64; r++ {
		for i := range ops {
			ops[i] = BatchWrite{LBA: int64((r*chunk + i) % 4096), Blocks: 1}
		}
		if err := e.WriteBatch(ops); err != nil {
			t.Fatal(err)
		}
		// Real interarrival gap: without batching each of these writes
		// would have aged past the 100 µs SLA window alone.
		time.Sleep(200 * time.Microsecond)
	}
	st := e.Stats()
	if st.PaddingBlocks != 0 {
		t.Fatalf("chunk-aligned batches should never pad before drain, got %d padding blocks", st.PaddingBlocks)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineFaultAndRebuild(t *testing.T) {
	e := testEngine(t, true, true)
	for i := int64(0); i < 4096; i++ {
		if err := e.Write(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FailColumn(1); err != nil {
		t.Fatal(err)
	}
	if !e.Degraded() {
		t.Fatal("store should run degraded GC after FailColumn")
	}
	for i := int64(0); i < 4096; i += 3 {
		if err := e.Write(i, 1); err != nil {
			t.Fatalf("degraded write: %v", err)
		}
	}
	for {
		_, done, err := e.RebuildStep(64)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		if done {
			break
		}
	}
	if e.Degraded() {
		t.Fatal("rebuild completion should clear degraded mode")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close (mirror parity + read-back): %v", err)
	}
}
