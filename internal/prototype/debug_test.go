package prototype

import (
	"testing"
	"time"

	"adapt/internal/adaptcore"
	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/sim"
)

// TestTrafficDecomposition logs the per-policy traffic split under the
// Figure 12a regime so regressions in the prototype's competitive
// behaviour are visible in -v output.
func TestTrafficDecomposition(t *testing.T) {
	if testing.Short() {
		t.Skip("decomposition run is slow")
	}
	const blocks = 16 << 10
	cfg := lss.Config{
		BlockSize:     4096,
		ChunkBlocks:   16,
		SegmentChunks: 4,
		DataColumns:   3,
		UserBlocks:    blocks,
		OverProvision: 0.15,
		SLAWindow:     100 * sim.Microsecond,
	}
	mk := func(name string) lss.Policy {
		if name == "adapt" {
			return adaptcore.New(adaptcore.Config{
				UserBlocks:    blocks,
				SegmentBlocks: cfg.SegmentBlocks(),
				ChunkBlocks:   cfg.ChunkBlocks,
				OverProvision: cfg.OverProvision,
			}, adaptcore.Options{SampleRate: 0.125})
		}
		p, err := placement.New(name, placement.Params{
			UserBlocks:    blocks,
			SegmentBlocks: cfg.SegmentBlocks(),
			ChunkBlocks:   cfg.ChunkBlocks,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, name := range []string{"sepgc", "sepbit", "adapt"} {
		res, err := Run(Config{
			Store:       cfg,
			Policy:      mk(name),
			Clients:     4,
			Ops:         8 * blocks,
			Theta:       0.99,
			Fill:        true,
			ServiceTime: 20 * time.Microsecond,
			QueueDepth:  8,
			Seed:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-8s ops/s=%.0f gcWA=%.3f effWA=%.3f user=%d gc=%d shadow=%d pad=%d",
			name, res.OpsPerSec, res.WA, res.EffectiveWA,
			res.UserBlocks, res.GCBlocks, res.ShadowBlocks, res.PaddingBlocks)
	}
}
