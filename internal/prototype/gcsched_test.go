package prototype

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adapt/internal/lss"
)

func backgroundTestConfig(userBlocks int64) lss.Config {
	cfg := shardedTestConfig(userBlocks)
	cfg.BackgroundGC = true
	return cfg
}

// applyTraceStepped replays a trace with deterministic background-GC
// pacing: every operation is followed by one bounded slice on every
// shard, the per-op analogue of the wall-clock pacer.
func applyTraceStepped(t *testing.T, eng Ingest, ops []zipfOp) {
	t.Helper()
	shards := eng.GCShards()
	for i, op := range ops {
		var err error
		if op.trim {
			err = eng.Trim(op.lba, op.blocks)
		} else {
			err = eng.Write(op.lba, op.blocks)
		}
		if err != nil {
			t.Fatalf("op %d (%+v): %v", i, op, err)
		}
		for _, gs := range shards {
			gs.GCStep(8)
		}
	}
}

// TestBackgroundGCDifferentialZipfian is the flat-vs-sharded
// differential with background GC enabled on both sides: one seeded
// zipfian trace, per-op paced slices instead of synchronous cycles,
// and the identical per-LBA final state required. The sharded run
// carries the checker oracle throughout.
func TestBackgroundGCDifferentialZipfian(t *testing.T) {
	const userBlocks = 8192
	ops := zipfTrace(0xbd457, userBlocks, 60_000)

	flat := func() *Engine {
		pol, err := sepGCFactory(t)(0, backgroundTestConfig(userBlocks).GeometryDefaults())
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(EngineConfig{
			Store:       backgroundTestConfig(userBlocks),
			Policy:      pol,
			ServiceTime: time.Microsecond,
			Fill:        true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}()
	sharded, err := NewSharded(ShardedConfig{
		Engine: EngineConfig{
			Store:       backgroundTestConfig(userBlocks),
			ServiceTime: time.Microsecond,
			Fill:        true,
			Verify:      true,
		},
		Shards:        4,
		PolicyFactory: sepGCFactory(t),
	})
	if err != nil {
		t.Fatal(err)
	}

	applyTraceStepped(t, flat, ops)
	applyTraceStepped(t, sharded, ops)
	if err := flat.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Drain(); err != nil {
		t.Fatal(err)
	}

	flatLive := liveness(flat, userBlocks)
	shardLive := liveness(sharded, userBlocks)
	diffs := 0
	for lba := range flatLive {
		if flatLive[lba] != shardLive[lba] {
			diffs++
			if diffs <= 5 {
				t.Errorf("lba %d: flat live=%v sharded live=%v", lba, flatLive[lba], shardLive[lba])
			}
		}
	}
	if diffs > 0 {
		t.Fatalf("%d of %d LBAs diverge between flat and sharded under background GC", diffs, userBlocks)
	}
	fs, ss := flat.Stats(), sharded.Stats()
	if fs.UserBlocks != ss.UserBlocks || fs.TrimmedBlocks != ss.TrimmedBlocks {
		t.Fatalf("traffic diverges: flat user=%d trim=%d, sharded user=%d trim=%d",
			fs.UserBlocks, fs.TrimmedBlocks, ss.UserBlocks, ss.TrimmedBlocks)
	}
	if fs.GCSlices == 0 || ss.GCSlices == 0 {
		t.Fatalf("background GC never paced: flat slices=%d sharded slices=%d", fs.GCSlices, ss.GCSlices)
	}
	if err := flat.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBackgroundGCConcurrentDegraded is the -race regression for the
// degraded-toggle-versus-in-flight-GC fix: concurrent writers, an
// asynchronous pacer buying slices through the GCShard surface, and a
// fault loop failing a column and rebuilding it — all against one
// engine with the mirror-backed oracle attached. Before GC became a
// preemptible state machine with mode latching at victim-batch
// boundaries, this interleaving could flip the relocation target of a
// cycle already in flight.
func TestBackgroundGCConcurrentDegraded(t *testing.T) {
	cfg := backgroundTestConfig(4096)
	pol, err := sepGCFactory(t)(0, cfg.GeometryDefaults())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(EngineConfig{
		Store:        cfg,
		Policy:       pol,
		ServiceTime:  time.Microsecond,
		Verify:       true,
		VerifyMirror: true,
		Fill:         true,
	})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the pacer
		defer wg.Done()
		shards := e.GCShards()
		for !stop.Load() {
			for _, gs := range shards {
				if gs.GCNeeded() {
					gs.GCStep(16)
				}
			}
			e.QueueFill() // lock-free signal read races with everything
		}
	}()
	const writers = 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w) * 1024
			for i := 0; i < 3000; i++ {
				if err := e.Write(base+int64(i%1024), 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for round := 0; round < 3; round++ {
		if err := e.FailColumn(1); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // let writers and pacer run degraded
		for {
			_, done, err := e.RebuildStep(64)
			if err != nil {
				t.Fatalf("rebuild round %d: %v", round, err)
			}
			if done {
				break
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if e.Degraded() {
		t.Fatal("rebuild completion should clear degraded mode")
	}
	st := e.Stats()
	if st.GCSlices == 0 {
		t.Fatal("pacer never bought a slice")
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close (mirror parity + read-back): %v", err)
	}
}

// TestGCSchedSurfaceShape pins the pacer-facing surface: shard counts,
// urgency and queue-fill ranges, and trivial stepping on an idle store.
func TestGCSchedSurfaceShape(t *testing.T) {
	e := testEngine(t, false, false)
	defer e.Close()
	if got := len(e.GCShards()); got != 1 {
		t.Fatalf("flat engine exposes %d GC shards, want 1", got)
	}
	if u := e.GCUrgency(); u != 0 {
		t.Fatalf("fresh store urgency %v, want 0", u)
	}
	if f := e.QueueFill(); f < 0 || f > 1 {
		t.Fatalf("queue fill %v outside [0,1]", f)
	}
	if !e.GCStep(8) {
		t.Fatal("idle store must report GC done")
	}

	s := newTestSharded(t, 4096, 4, false, false, false)
	defer s.Close()
	if got := len(s.GCShards()); got != s.Shards() {
		t.Fatalf("sharded engine exposes %d GC shards, want %d", got, s.Shards())
	}
	if f := s.QueueFill(); f < 0 || f > 1 {
		t.Fatalf("sharded queue fill %v outside [0,1]", f)
	}
}
