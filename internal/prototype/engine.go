package prototype

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"adapt/internal/checker"
	"adapt/internal/lss"
	"adapt/internal/segfile"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// Ingest is the request-facing engine API: everything the network
// server and the harness need to drive traffic, implemented by both
// the flat Engine (one store, one lock) and the Sharded router (one
// store per core). All methods are safe for concurrent use.
type Ingest interface {
	// Config returns the aggregate store geometry (UserBlocks covers
	// the whole LBA space even when sharded).
	Config() lss.Config
	// Now returns the engine's wall-derived simulated time.
	Now() sim.Time

	Write(lba int64, blocks int) error
	WriteTimed(lba int64, blocks int) (OpTiming, error)
	WriteBatch(ops []BatchWrite) error
	WriteBatchTimed(ops []BatchWrite) (OpTiming, error)
	Read(lba int64, blocks int) error
	ReadTimed(lba int64, blocks int) (OpTiming, error)
	Trim(lba int64, blocks int) error
	TrimTimed(lba int64, blocks int) (OpTiming, error)

	FailColumn(col int) error
	RebuildStep(maxChunks int) (rebuilt int, done bool, err error)
	Degraded() bool

	Stats() EngineStats
	// ShardStats returns per-shard snapshots (one entry for a flat
	// engine), for per-shard attribution in the serving layer.
	ShardStats() []EngineStats
	// Shards returns the shard count (1 for a flat engine).
	Shards() int
	// ShardOf maps a global LBA to the shard that owns it (always 0
	// for a flat engine).
	ShardOf(lba int64) int

	// GCShards returns the background-GC stepping surface of every
	// shard (one entry for a flat engine), for an external pacer when
	// the stores run with Config.BackgroundGC.
	GCShards() []GCShard
	// QueueFill reports the fill fraction of the most backlogged device
	// queue (0 empty, 1 full) — the pacer's backpressure signal. Safe
	// without any engine lock.
	QueueFill() float64

	// DurableStats returns the durable-backend counters (summed across
	// shards, tail quantiles taken as the worst shard) and whether a
	// durable backend is attached at all.
	DurableStats() (segfile.Stats, bool)

	Drain() error
	Close() error
}

// GCShard is one shard's background-GC stepping surface: the pacer
// polls need and urgency, then buys bounded slices of relocation work.
// Every method takes the shard's own lock, so a slice excludes user
// operations on that shard only for its duration.
type GCShard interface {
	// GCNeeded reports pending GC work: an in-flight (paused) cycle or
	// a free pool at or below the low watermark.
	GCNeeded() bool
	// GCUrgency is the distance-to-watermark signal: 0 at the high
	// watermark, 1 at the low watermark, above 1 approaching the
	// emergency floor.
	GCUrgency() float64
	// GCStep runs up to budget relocation units and reports whether no
	// cycle remains in flight.
	GCStep(budget int) bool
}

// deviceArray models the physical SSD array: per-column bounded
// queues drained by workers that accrue the configured service time
// per chunk and throttle to the modelled bandwidth. One deviceArray
// backs one flat engine or every shard of a sharded engine — shards
// partition the LBA space, not the hardware.
type deviceArray struct {
	devices      []*device
	wg           sync.WaitGroup
	start        time.Time
	readService  time.Duration
	writeService time.Duration
	closeOnce    sync.Once
}

func newDeviceArray(ncols, queueDepth int, writeService, readService time.Duration) *deviceArray {
	da := &deviceArray{
		devices:      make([]*device, ncols),
		start:        time.Now(),
		readService:  readService,
		writeService: writeService,
	}
	for i := range da.devices {
		da.devices[i] = &device{ch: make(chan chunkJob, queueDepth)}
	}
	for _, d := range da.devices {
		da.wg.Add(1)
		go func(d *device) {
			defer da.wg.Done()
			var virtual time.Duration
			for job := range d.ch {
				if job.read {
					virtual += da.readService
					d.busyNS.Add(int64(da.readService))
				} else {
					virtual += da.writeService
					d.busyNS.Add(int64(da.writeService))
				}
				d.chunks.Inc()
				d.written++
				// Throttle to the modelled bandwidth, sleeping only
				// when the debt is large enough for the OS timer.
				// The granule trades timer pressure for tail
				// fidelity: sleeping off a large debt in one go
				// quantizes every enqueue stall behind it to the full
				// sleep, which would put a multi-millisecond floor
				// under the serving layer's p999 that no GC
				// scheduling could get beneath.
				if lag := virtual - time.Since(da.start); lag > 200*time.Microsecond {
					time.Sleep(lag)
				}
			}
		}(d)
	}
	return da
}

// now is the array's wall-derived simulated clock, shared by every
// engine on it so interference intervals and spans align.
func (da *deviceArray) now() sim.Time { return sim.Time(time.Since(da.start)) }

// registerTelemetry exposes per-device counters and queue gauges.
// Call at most once per array (the owner does).
func (da *deviceArray) registerTelemetry(ts *telemetry.Set) {
	for i, d := range da.devices {
		d.busyNS = ts.Registry.NewCounter(
			fmt.Sprintf("%s{device=\"%d\"}", telemetry.MetricDeviceBusyPrefix, i),
			"Modelled device service time consumed")
		d.chunks = ts.Registry.NewCounter(
			fmt.Sprintf("%s{device=\"%d\"}", telemetry.MetricDeviceChunksPrefix, i),
			"Chunk operations serviced")
		ch := d.ch
		ts.Registry.NewFuncGauge(
			fmt.Sprintf("%s{device=\"%d\"}", telemetry.MetricDeviceQueuePrefix, i),
			"Queued chunk operations", false,
			func() int64 { return int64(len(ch)) })
	}
}

// queueFill reports the fill fraction of the most backlogged column's
// queue. Channel length is safe to read concurrently, so this needs no
// lock — it is a pacing heuristic, not a synchronized snapshot.
func (da *deviceArray) queueFill() float64 {
	var worst float64
	for _, d := range da.devices {
		if f := float64(len(d.ch)) / float64(cap(d.ch)); f > worst {
			worst = f
		}
	}
	return worst
}

// close shuts the device queues and waits for the workers. Safe to
// call once; callers must guarantee no further sends.
func (da *deviceArray) close() {
	da.closeOnce.Do(func() {
		for _, d := range da.devices {
			close(d.ch)
		}
	})
	da.wg.Wait()
}

// Engine is the ingest API for external request sources: it wraps the
// log-structured store and the bandwidth-modelled device array behind a
// mutex so network servers (internal/server) and other live producers
// can drive the same RAID-5 pipeline that Run exercises with its
// internal clients. Simulated time is wall-derived (time since array
// start), so the store's SLA-window padding runs against real request
// interarrival gaps.
//
// All methods are safe for concurrent use. Chunk flushes dispatch to
// bounded per-device queues under the engine lock, so a saturated
// device applies backpressure to every producer, exactly as in Run.
//
// An Engine is either standalone (NewEngine: it owns its device
// array, shard id -1) or one shard of a Sharded router (the router
// owns the shared array and the shard sees a private slice of the
// LBA space).
type Engine struct {
	mu     sync.Mutex
	store  *lss.Store
	oracle *checker.Oracle
	rng    *sim.RNG

	devs     *deviceArray
	ownsDevs bool
	shard    int32 // -1 standalone, else the shard id
	ncols    int

	stripeFill   int
	parityRow    int64
	parityChunks int64

	// durable is the file-backed segment backend, nil for a pure
	// in-memory engine; recovered marks that construction rolled the
	// store forward from it instead of starting empty.
	durable   *segfile.Store
	recovered bool

	// Request-tracing state (all guarded by mu). timing arms per-op
	// accounting of time blocked on device queues; sinkNS accumulates
	// it for the op in flight. itv receives degraded-mode interference
	// intervals; degradedTok is the open interval, 0 when healthy.
	timing      bool
	sinkNS      int64
	itv         *telemetry.IntervalLog
	degradedTok int64
	failGen     int64

	closed bool
}

// EngineConfig describes an ingest engine.
type EngineConfig struct {
	// Store is the store geometry (chunk size, capacity, SLA window).
	Store lss.Config
	// Policy is the placement policy instance to drive.
	Policy lss.Policy
	// ServiceTime is the modelled device time per chunk write (default
	// 50 µs ≈ 64 KiB chunks at 1.3 GB/s per SSD).
	ServiceTime time.Duration
	// ReadServiceTime is the device time per chunk read (default half
	// the write service time).
	ReadServiceTime time.Duration
	// QueueDepth bounds each device's queue (default 8).
	QueueDepth int
	// Fill writes every block sequentially before the engine is
	// returned, so subsequent traffic runs at full utilization with GC
	// active, as the paper's prototype does after loading.
	Fill bool
	// Telemetry, when set, attaches live instrumentation (store metrics
	// and events plus per-device counters). The Set must be dedicated to
	// this engine: instrument names would collide otherwise.
	Telemetry *telemetry.Set
	// Verify attaches the correctness oracle from internal/checker: all
	// traffic is cross-checked against the flat reference model at the
	// oracle's default cadence, and Close runs the full O(capacity)
	// cross-check.
	Verify bool
	// VerifyMirror additionally maintains the byte-accurate RAID mirror
	// (requires Verify and BlockSize >= 17); it enables FailColumn and
	// RebuildStep, and full checks then verify XOR parity plus read-back
	// of every durable block. Memory grows with chunks written — meant
	// for tests, not long-running servers.
	VerifyMirror bool
	// Durable, when set, persists the store through a file-backed
	// segment log (internal/segfile): every flushed chunk, seal, and
	// reclaim is written through before acknowledgement per the
	// configured sync discipline, and construction recovers any state
	// the directory already holds (skipping Fill for a recovered
	// store). The engine completes the options itself — Geometry,
	// Telemetry, and shard labels are overwritten from the engine
	// configuration. Verify cannot adopt a recovered store: combining
	// it with a non-empty directory is a construction error.
	Durable *segfile.Options
}

// ErrEngineClosed is returned by operations on a closed engine.
var ErrEngineClosed = errors.New("prototype: engine closed")

// BatchWrite is one write of a batched group commit.
type BatchWrite struct {
	LBA    int64
	Blocks int
}

// withDefaults fills the device-model defaults shared by the flat and
// sharded constructors.
func (cfg EngineConfig) withDefaults() EngineConfig {
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 8
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = 50 * time.Microsecond
	}
	if cfg.ReadServiceTime <= 0 {
		cfg.ReadServiceTime = cfg.ServiceTime / 2
	}
	return cfg
}

// NewEngine builds and starts a standalone ingest engine. The caller
// must Close it to drain open chunks and stop the device workers.
// Direct construction is for this module's own tooling; everything
// else should go through the public adapt.NewEngine, which shares the
// simulator's configuration validation (typed policy names, GCSched
// floors as errors instead of panics).
func NewEngine(cfg EngineConfig) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.VerifyMirror && !cfg.Verify {
		return nil, fmt.Errorf("prototype: VerifyMirror requires Verify")
	}
	return newEngineOn(cfg, nil, -1, true, nil)
}

// newEngineOn builds an engine over an existing device array (nil:
// create a private one from the store geometry). shard is -1 for a
// standalone engine; owns marks the engine as the array's owner (it
// registers device telemetry and closes the array). gate, if non-nil,
// is the cross-shard GC admission gate wired into the store's Deps.
func newEngineOn(cfg EngineConfig, da *deviceArray, shard int, owns bool, gate func() (release func())) (*Engine, error) {
	geo := cfg.Store.GeometryDefaults()
	if da == nil {
		da = newDeviceArray(geo.DataColumns+1, cfg.QueueDepth, cfg.ServiceTime, cfg.ReadServiceTime)
	}
	e := &Engine{
		rng:      sim.NewRNG(0xe116 + uint64(shard+1)*0x9e37),
		devs:     da,
		ownsDevs: owns,
		shard:    int32(shard),
		ncols:    geo.DataColumns + 1,
	}
	// The sink runs under the engine lock (the store is only entered
	// with it held); RAID-5 rotation matches Run's. Each shard rotates
	// its own stripe cursor over the shared columns.
	chunkBytes := geo.ChunkBytes()
	deps := lss.Deps{
		GCGate: gate,
		Sink: func(w lss.ChunkWrite) {
			parityCol := int(e.parityRow % int64(e.ncols))
			col := e.stripeFill
			if col >= parityCol {
				col++
			}
			e.sinkSend(e.devs.devices[col], chunkJob{payload: w.PayloadBytes, pad: w.PadBytes})
			e.stripeFill++
			if e.stripeFill == e.ncols-1 {
				e.sinkSend(e.devs.devices[parityCol], chunkJob{payload: chunkBytes})
				e.parityChunks++
				e.stripeFill = 0
				e.parityRow++
			}
		},
	}
	if shard >= 0 {
		deps.Sharded, deps.Shard = true, shard
	}
	if ts := cfg.Telemetry; ts != nil {
		deps.Telemetry = ts
		// The store's own clock freezes at the op timestamp for the
		// duration of a synchronous GC cycle; interference intervals
		// need real elapsed time, so give it the wall-derived clock.
		deps.Clock = da.now
		e.itv = ts.Intervals
		if shard < 0 {
			// Policy instruments register under fixed names, so only a
			// standalone engine (one policy on the set) may wire them.
			if p, ok := cfg.Policy.(interface {
				SetTelemetry(*telemetry.Set)
			}); ok {
				p.SetTelemetry(ts)
			}
		}
		if owns {
			da.registerTelemetry(ts)
		}
	}
	if cfg.Durable != nil {
		dopts := *cfg.Durable
		dopts.Geometry = geo
		dopts.Telemetry = cfg.Telemetry
		dopts.Sharded, dopts.Shard = shard >= 0, shard
		sf, err := segfile.Open(dopts)
		if err != nil {
			e.abort()
			return nil, fmt.Errorf("prototype: durable backend: %w", err)
		}
		e.durable = sf
		deps.Durable = sf
		if sf.HasData() {
			if cfg.Verify {
				e.abort()
				return nil, fmt.Errorf("prototype: Verify cannot adopt a recovered store; start from an empty data directory")
			}
			store, _, err := sf.Recover(cfg.Store, cfg.Policy, deps)
			if err != nil {
				e.abort()
				return nil, fmt.Errorf("prototype: durable recovery: %w", err)
			}
			e.store = store
			e.recovered = true
		}
	}
	if e.store == nil {
		e.store = lss.New(cfg.Store, cfg.Policy, deps)
	}
	if cfg.Verify {
		o, err := checker.New(e.store, checker.Options{Mirror: cfg.VerifyMirror})
		if err != nil {
			e.abort()
			return nil, err
		}
		e.oracle = o
	}
	if cfg.Fill && !e.recovered {
		for lba := int64(0); lba < e.store.Config().UserBlocks; lba++ {
			if err := e.Write(lba, 1); err != nil {
				e.abort()
				return nil, fmt.Errorf("prototype: engine fill: %w", err)
			}
		}
	}
	return e, nil
}

// Recovered reports whether construction rolled the store forward from
// a durable backend instead of starting empty.
func (e *Engine) Recovered() bool { return e.recovered }

// DurableStats returns the durable-backend counters; ok is false for a
// pure in-memory engine.
func (e *Engine) DurableStats() (segfile.Stats, bool) {
	if e.durable == nil {
		return segfile.Stats{}, false
	}
	return e.durable.Stats(), true
}

// abort stops the engine (and, if it owns them, the device workers)
// without draining the store — used when construction fails after the
// workers started.
func (e *Engine) abort() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	if e.ownsDevs {
		e.devs.close()
	}
	if e.durable != nil {
		_ = e.durable.Close()
	}
}

// Config returns the store's effective (defaulted) configuration.
func (e *Engine) Config() lss.Config { return e.store.Config() }

// Now returns the engine's wall-derived simulated time.
func (e *Engine) Now() sim.Time { return e.devs.now() }

// Shards returns 1: a standalone engine is a single shard.
func (e *Engine) Shards() int { return 1 }

// ShardOf always returns 0 on a standalone engine.
func (e *Engine) ShardOf(lba int64) int { return 0 }

// ShardStats returns the single-shard snapshot.
func (e *Engine) ShardStats() []EngineStats { return []EngineStats{e.Stats()} }

// GCShards returns the engine itself: a flat engine is its own single
// GC-stepping shard.
func (e *Engine) GCShards() []GCShard { return []GCShard{e} }

// QueueFill reports the fill fraction of the most backlogged device
// queue.
func (e *Engine) QueueFill() float64 { return e.devs.queueFill() }

// GCNeeded implements GCShard.
func (e *Engine) GCNeeded() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return !e.closed && e.store.GCNeeded()
}

// GCUrgency implements GCShard.
func (e *Engine) GCUrgency() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.GCUrgency()
}

// GCStep implements GCShard.
func (e *Engine) GCStep(budget int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return true
	}
	return e.store.GCStep(budget)
}

// sinkSend dispatches a chunk job onto a device queue. Caller holds
// e.mu. When an op is being timed, time blocked on a full queue is
// accumulated into sinkNS; the non-blocking fast path costs nothing.
func (e *Engine) sinkSend(d *device, job chunkJob) {
	if !e.timing {
		d.ch <- job
		return
	}
	select {
	case d.ch <- job:
	default:
		t0 := time.Now()
		d.ch <- job
		e.sinkNS += time.Since(t0).Nanoseconds()
	}
}

// OpTiming is the per-op timing breakdown the Timed engine variants
// return for request tracing. All stamps are on the engine clock.
type OpTiming struct {
	// Enter is the clock at method entry, before taking the engine
	// lock; Locked is the clock once the lock was acquired, so
	// Locked-Enter is the lock wait.
	Enter, Locked sim.Time
	// Done is the clock at completion (store apply plus any device
	// dispatch finished).
	Done sim.Time
	// SinkNS is how long the op was blocked dispatching onto full
	// device queues — device backpressure, a subset of Done-Locked.
	SinkNS int64
}

// timeBegin arms sink accounting for one op. Caller holds e.mu.
func (e *Engine) timeBegin() {
	e.timing = true
	e.sinkNS = 0
}

// timeEnd disarms sink accounting and fills the trailing stamps.
// Caller holds e.mu.
func (e *Engine) timeEnd(t *OpTiming) {
	t.SinkNS = e.sinkNS
	e.timing = false
	t.Done = e.Now()
}

// Write appends blocks user-written blocks starting at lba.
func (e *Engine) Write(lba int64, blocks int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	return e.writeLocked(lba, blocks)
}

// WriteBatch applies a group commit: every write lands back-to-back
// under one lock acquisition and one timestamp, so a chunk-aligned
// batch fills whole chunks before the SLA window can force padding.
func (e *Engine) WriteBatch(ops []BatchWrite) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	for _, op := range ops {
		if err := e.writeLocked(op.LBA, op.Blocks); err != nil {
			return err
		}
	}
	return nil
}

// WriteTimed is Write plus an OpTiming breakdown (lock wait, commit,
// device backpressure) for request tracing.
func (e *Engine) WriteTimed(lba int64, blocks int) (OpTiming, error) {
	t := OpTiming{Enter: e.Now()}
	e.mu.Lock()
	defer e.mu.Unlock()
	t.Locked = e.Now()
	if e.closed {
		t.Done = t.Locked
		return t, ErrEngineClosed
	}
	e.timeBegin()
	err := e.writeLocked(lba, blocks)
	e.timeEnd(&t)
	return t, err
}

// WriteBatchTimed is WriteBatch plus an OpTiming breakdown covering
// the whole group commit.
func (e *Engine) WriteBatchTimed(ops []BatchWrite) (OpTiming, error) {
	t := OpTiming{Enter: e.Now()}
	e.mu.Lock()
	defer e.mu.Unlock()
	t.Locked = e.Now()
	if e.closed {
		t.Done = t.Locked
		return t, ErrEngineClosed
	}
	e.timeBegin()
	var err error
	for _, op := range ops {
		if err = e.writeLocked(op.LBA, op.Blocks); err != nil {
			break
		}
	}
	e.timeEnd(&t)
	return t, err
}

func (e *Engine) writeLocked(lba int64, blocks int) error {
	now := e.Now()
	if e.oracle != nil {
		return e.oracle.Write(lba, blocks, now)
	}
	return e.store.Write(lba, blocks, now)
}

// Read accounts a user read and consumes modelled device read time on
// one column (the store never materializes data bytes; callers keep
// payloads in their own data plane).
func (e *Engine) Read(lba int64, blocks int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	now := e.Now()
	if e.oracle != nil {
		e.oracle.Read(lba, blocks, now)
	} else {
		e.store.Read(lba, blocks, now)
	}
	e.sinkSend(e.devs.devices[e.rng.Intn(len(e.devs.devices))], chunkJob{read: true})
	return nil
}

// ReadTimed is Read plus an OpTiming breakdown.
func (e *Engine) ReadTimed(lba int64, blocks int) (OpTiming, error) {
	t := OpTiming{Enter: e.Now()}
	e.mu.Lock()
	defer e.mu.Unlock()
	t.Locked = e.Now()
	if e.closed {
		t.Done = t.Locked
		return t, ErrEngineClosed
	}
	e.timeBegin()
	now := e.Now()
	if e.oracle != nil {
		e.oracle.Read(lba, blocks, now)
	} else {
		e.store.Read(lba, blocks, now)
	}
	e.sinkSend(e.devs.devices[e.rng.Intn(len(e.devs.devices))], chunkJob{read: true})
	e.timeEnd(&t)
	return t, nil
}

// TrimTimed is Trim plus an OpTiming breakdown.
func (e *Engine) TrimTimed(lba int64, blocks int) (OpTiming, error) {
	t := OpTiming{Enter: e.Now()}
	e.mu.Lock()
	defer e.mu.Unlock()
	t.Locked = e.Now()
	if e.closed {
		t.Done = t.Locked
		return t, ErrEngineClosed
	}
	e.timeBegin()
	now := e.Now()
	var err error
	if e.oracle != nil {
		err = e.oracle.Trim(lba, blocks, now)
	} else {
		err = e.store.Trim(lba, blocks, now)
	}
	e.timeEnd(&t)
	return t, err
}

// Trim discards blocks (TRIM/UNMAP).
func (e *Engine) Trim(lba int64, blocks int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	now := e.Now()
	if e.oracle != nil {
		return e.oracle.Trim(lba, blocks, now)
	}
	return e.store.Trim(lba, blocks, now)
}

// FailColumn fails one array column in the verification mirror and
// switches the store into degraded-mode GC. Requires VerifyMirror.
func (e *Engine) FailColumn(col int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	if e.oracle == nil {
		return fmt.Errorf("prototype: FailColumn requires EngineConfig.Verify with VerifyMirror")
	}
	if err := e.oracle.FailColumn(col); err != nil {
		return err
	}
	e.failGen++
	e.itv.Close(e.degradedTok, e.Now()) // a prior failure's window, if any
	e.degradedTok = e.itv.Open(telemetry.IntervalDegraded, e.failGen, int32(col), e.shard, e.Now())
	return nil
}

// RebuildStep advances the mirror's incremental rebuild by at most
// maxChunks; when the rebuild completes the store leaves degraded mode.
// Requires VerifyMirror.
func (e *Engine) RebuildStep(maxChunks int) (rebuilt int, done bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, false, ErrEngineClosed
	}
	if e.oracle == nil {
		return 0, false, fmt.Errorf("prototype: RebuildStep requires EngineConfig.Verify with VerifyMirror")
	}
	rebuilt, done, err = e.oracle.RebuildStep(maxChunks)
	if err == nil && done && e.degradedTok != 0 {
		e.itv.Close(e.degradedTok, e.Now())
		e.degradedTok = 0
	}
	return rebuilt, done, err
}

// Degraded reports whether the store is running degraded-mode GC.
func (e *Engine) Degraded() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.store.Degraded()
}

// EngineStats is a point-in-time snapshot of the engine's traffic
// accounting.
type EngineStats struct {
	UserBlocks, GCBlocks, ShadowBlocks, PaddingBlocks int64
	ReadBlocks, TrimmedBlocks                         int64
	// PaddedChunks counts chunk flushes that carried any zero padding —
	// the counter the batching ON/OFF comparison watches.
	PaddedChunks int64
	ChunkFlushes int64
	ParityChunks int64
	GCCycles     int64
	FreeSegments int
	WA           float64
	EffectiveWA  float64
	PaddingRatio float64
	// GCGateWaits/GCGateWaitNS count GC cycles that had to wait for the
	// cross-shard scheduler token, and the total time they waited.
	// Always zero on a flat engine.
	GCGateWaits  int64
	GCGateWaitNS int64
	// GCSlices counts externally paced GC executions; GCEmergencyRuns
	// counts background-mode allocations that hit the emergency floor
	// and collected synchronously. Both zero without BackgroundGC.
	GCSlices        int64
	GCEmergencyRuns int64
}

// Stats returns a snapshot of the engine's accounting.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statsLocked()
}

func (e *Engine) statsLocked() EngineStats {
	m := e.store.Metrics()
	st := EngineStats{
		UserBlocks:      m.UserBlocks,
		GCBlocks:        m.GCBlocks,
		ShadowBlocks:    m.ShadowBlocks,
		PaddingBlocks:   m.PaddingBlocks,
		ReadBlocks:      m.ReadBlocks,
		TrimmedBlocks:   m.TrimmedBlocks,
		ParityChunks:    e.parityChunks,
		GCCycles:        m.GCCycles,
		GCSlices:        m.GCSlices,
		GCEmergencyRuns: m.GCEmergencyRuns,
		FreeSegments:    e.store.FreeSegments(),
		WA:              m.WA(),
		EffectiveWA:     m.EffectiveWA(),
		PaddingRatio:    m.PaddingRatio(),
	}
	for i := range m.PerGroup {
		st.PaddedChunks += m.PerGroup[i].PaddingEvents
		st.ChunkFlushes += m.PerGroup[i].ChunkFlushes
	}
	return st
}

// Drain pads and flushes every open chunk. With Verify it also runs the
// oracle's full O(capacity) cross-check (and, with VerifyMirror, RAID
// parity plus byte read-back).
func (e *Engine) Drain() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	return e.drainLocked()
}

func (e *Engine) drainLocked() error {
	now := e.Now()
	if e.oracle != nil {
		return e.oracle.Drain(now)
	}
	e.store.Drain(now)
	return nil
}

// Close drains the store, stops the device workers (when this engine
// owns them), and (with Verify) runs the final full cross-check. The
// engine rejects all traffic afterwards.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	err := e.drainLocked()
	e.closed = true
	e.mu.Unlock()
	if e.ownsDevs {
		e.devs.close()
	}
	if e.durable != nil {
		// Drain above already checkpointed through the DurableLog hook;
		// this syncs any remaining dirty tail and releases the handles.
		if derr := e.durable.Close(); err == nil && derr != nil {
			err = fmt.Errorf("prototype: durable close: %w", derr)
		}
	}
	if ierr := e.store.CheckInvariants(); err == nil && ierr != nil {
		err = fmt.Errorf("prototype: engine close invariants: %w", ierr)
	}
	return err
}
