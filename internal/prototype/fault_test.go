package prototype

import (
	"testing"
	"time"

	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// TestRunFaultRebuildCompletes injects a device failure mid-run and
// checks the full lifecycle: the run enters every phase, the rebuild
// pushes the failed column's chunks through the device queues, and the
// store survives with its invariants clean (Run verifies them after a
// fault run and returns the error). Run under -race this also proves
// the injector's concurrency contract.
func TestRunFaultRebuildCompletes(t *testing.T) {
	// The ring must hold the whole run: chunk-flush traffic would
	// otherwise overwrite the three lifecycle events asserted below.
	ts := telemetry.New(telemetry.Options{
		WindowInterval: sim.Time(time.Millisecond),
		EventCapacity:  1 << 17,
	})
	res, err := Run(Config{
		Store:       protoStoreConfig(),
		Policy:      protoPolicy(t),
		Clients:     4,
		Ops:         20000,
		Theta:       0.99,
		Fill:        true,
		ReadRatio:   0.2,
		ServiceTime: time.Microsecond,
		QueueDepth:  8,
		Seed:        21,
		Telemetry:   ts,
		Fault: FaultConfig{
			FailDevice:      1,
			FailAtOp:        5000,
			RebuildDelayOps: 2000,
			RebuildBurst:    16,
			QueueTimeout:    200 * time.Microsecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedDevice != 1 || res.FailedAtOp != 5000 {
		t.Fatalf("failure not recorded: device %d op %d", res.FailedDevice, res.FailedAtOp)
	}
	if res.RebuildChunks == 0 {
		t.Fatal("rebuild moved no chunks")
	}
	entered := map[Phase]PhaseStats{}
	for _, ps := range res.Phases {
		entered[ps.Phase] = ps
	}
	for _, p := range []Phase{PhaseHealthy, PhaseDegraded, PhaseRebuilding, PhaseRebuilt} {
		if _, ok := entered[p]; !ok {
			t.Fatalf("phase %v missing from %v", p, res.Phases)
		}
	}
	if entered[PhaseHealthy].Ops == 0 || entered[PhaseDegraded].Ops == 0 {
		t.Fatalf("no ops attributed to early phases: %+v", res.Phases)
	}
	var ops int64
	for _, ps := range res.Phases {
		ops += ps.Ops
	}
	if ops != 20000 {
		t.Fatalf("phase ops sum to %d, want 20000", ops)
	}
	// Fill + 5000 ops put chunks on every column, so losing one mid-run
	// must both drop writes and reconstruct reads.
	if res.LostChunks == 0 {
		t.Fatal("no writes dropped on the failed column")
	}
	if res.DegradedReads == 0 {
		t.Fatal("no degraded reads despite ReadRatio > 0")
	}
	// The failure lifecycle must be visible in the trace.
	var failed, rstart, rend bool
	for _, e := range ts.Tracer.Events() {
		switch e.Type {
		case telemetry.EvDeviceFailed:
			failed = true
		case telemetry.EvRebuildStart:
			rstart = true
		case telemetry.EvRebuildEnd:
			rend = true
		}
	}
	if !failed || !rstart || !rend {
		t.Fatalf("trace missing lifecycle events: failed=%v start=%v end=%v", failed, rstart, rend)
	}
}

// TestRunFaultMTBF drives the seeded exponential schedule: the same
// seed must fail the same device at the same op, and the run must
// still complete cleanly.
func TestRunFaultMTBF(t *testing.T) {
	run := func() Result {
		res, err := Run(Config{
			Store:       protoStoreConfig(),
			Policy:      protoPolicy(t),
			Clients:     2,
			Ops:         10000,
			Theta:       0.9,
			ServiceTime: time.Microsecond,
			QueueDepth:  8,
			Seed:        5,
			Fault:       FaultConfig{MTBFOps: 4000},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.FailedDevice < 0 {
		t.Skip("MTBF schedule quiet within horizon for this seed")
	}
	if a.FailedDevice != b.FailedDevice || a.FailedAtOp != b.FailedAtOp {
		t.Fatalf("MTBF failure not deterministic: (%d,%d) vs (%d,%d)",
			a.FailedDevice, a.FailedAtOp, b.FailedDevice, b.FailedAtOp)
	}
	if a.RebuildChunks == 0 {
		t.Fatal("rebuild moved no chunks")
	}
}

// TestRunFaultRejectsBadConfig checks injector validation surfaces as
// errors instead of firing nonsense failures.
func TestRunFaultRejectsBadConfig(t *testing.T) {
	base := func() Config {
		return Config{
			Store:       protoStoreConfig(),
			Policy:      protoPolicy(t),
			Clients:     1,
			Ops:         100,
			ServiceTime: time.Microsecond,
			Seed:        1,
		}
	}
	cfg := base()
	cfg.Fault = FaultConfig{FailDevice: 99, FailAtOp: 10}
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range device accepted")
	}
	cfg = base()
	cfg.Fault = FaultConfig{FailDevice: 0, FailAtOp: 1000}
	if _, err := Run(cfg); err == nil {
		t.Fatal("fail op beyond the run accepted")
	}
	cfg = base()
	cfg.Fault = FaultConfig{FailDevice: 0, FailAtOp: 10, DegradedGCWatermark: 1.5}
	if _, err := Run(cfg); err == nil {
		t.Fatal("watermark above 1 accepted")
	}
	cfg = base()
	cfg.Fault = FaultConfig{FailDevice: 0, FailAtOp: 10, RebuildDelayOps: -1}
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative rebuild delay accepted")
	}
}
