package prototype

import (
	"testing"
	"time"

	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/sim"
)

func protoStoreConfig() lss.Config {
	return lss.Config{
		BlockSize:     4096,
		ChunkBlocks:   8,
		SegmentChunks: 8,
		DataColumns:   3,
		UserBlocks:    8 << 10,
		OverProvision: 0.2,
		SLAWindow:     100 * sim.Microsecond,
	}
}

func protoPolicy(t *testing.T) lss.Policy {
	t.Helper()
	p, err := placement.New("sepgc", placement.Params{UserBlocks: 8 << 10, SegmentBlocks: 64, ChunkBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunCompletesAllOps(t *testing.T) {
	res, err := Run(Config{
		Store:       protoStoreConfig(),
		Policy:      protoPolicy(t),
		Clients:     4,
		Ops:         20000,
		Theta:       0.99,
		ServiceTime: time.Microsecond,
		QueueDepth:  8,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsPerSec <= 0 {
		t.Fatal("zero throughput")
	}
	if res.WA < 1 {
		t.Fatalf("WA %f < 1", res.WA)
	}
	if res.ChunksWritten == 0 {
		t.Fatal("no chunks reached the devices")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Store: protoStoreConfig(), Policy: protoPolicy(t), Clients: 0, Ops: 10}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := Run(Config{Store: protoStoreConfig(), Policy: protoPolicy(t), Clients: 1, Ops: 0}); err == nil {
		t.Fatal("zero ops accepted")
	}
}

func TestBandwidthCeiling(t *testing.T) {
	// With a large service time the device model must throttle
	// throughput: chunks = ops/chunkBlocks (plus GC), each costing
	// ServiceTime spread over 3 data columns.
	svc := 200 * time.Microsecond
	const ops = 6000
	res, err := Run(Config{
		Store:       protoStoreConfig(),
		Policy:      protoPolicy(t),
		Clients:     4,
		Ops:         ops,
		Theta:       0.5,
		ServiceTime: svc,
		QueueDepth:  4,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound on elapsed: data chunks spread over data columns.
	minChunks := res.ChunksWritten / 3
	minElapsed := time.Duration(minChunks) * svc
	if res.Elapsed < minElapsed/2 {
		t.Fatalf("elapsed %v beat the bandwidth model floor %v", res.Elapsed, minElapsed)
	}
}

func TestMoreClientsDoNotLoseOps(t *testing.T) {
	for _, clients := range []int{1, 2, 8} {
		res, err := Run(Config{
			Store:       protoStoreConfig(),
			Policy:      protoPolicy(t),
			Clients:     clients,
			Ops:         5000,
			Theta:       0.9,
			ServiceTime: time.Microsecond,
			QueueDepth:  8,
			Seed:        3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.OpsPerSec <= 0 {
			t.Fatalf("%d clients: no throughput", clients)
		}
	}
}

func TestFootprintHelper(t *testing.T) {
	p := protoPolicy(t)
	if Footprint(p) != 0 {
		t.Fatal("sepgc should report zero footprint")
	}
	sb, err := placement.New("sepbit", placement.Params{UserBlocks: 1024, SegmentBlocks: 64, ChunkBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if Footprint(sb) != 1024*8 {
		t.Fatalf("sepbit footprint = %d", Footprint(sb))
	}
}
