package placement

import (
	"adapt/internal/lss"
	"adapt/internal/sim"
)

// MiDA [Park et al., APSys'21] classifies block lifetime by migration
// count: every GC migration moves a block one group colder, and user
// updates pull it one group hotter. Unlike SepGC-style designs, user
// and GC writes share all groups — a block's user rewrite lands in the
// group its migration history has earned, which is why the paper
// observes user traffic (and padding) spread across every MiDA group.
type MiDA struct {
	migs []int8
	n    int8
}

// NewMiDA returns a MiDA policy with n migration-count groups.
func NewMiDA(p Params, n int) *MiDA {
	p = p.validate()
	if n < 2 {
		n = 2
	}
	return &MiDA{migs: make([]int8, p.UserBlocks), n: int8(n)}
}

// Name implements lss.Policy.
func (*MiDA) Name() string { return NameMiDA }

// Groups implements lss.Policy.
func (m *MiDA) Groups() int { return int(m.n) }

// PlaceUser places the block according to its current migration count
// and credits the update by decrementing the count (an updated block
// proved livelier than its migration history suggested).
func (m *MiDA) PlaceUser(lba int64, _ sim.Time, _ sim.WriteClock) lss.GroupID {
	c := m.migs[lba]
	g := lss.GroupID(c)
	if c > 0 {
		m.migs[lba] = c - 1
	}
	return g
}

// PlaceGC increments the migration count and moves the block one
// group colder.
func (m *MiDA) PlaceGC(lba int64, _ lss.GroupID, _, _, _ sim.WriteClock) lss.GroupID {
	c := m.migs[lba]
	if c < m.n-1 {
		c++
	}
	m.migs[lba] = c
	return lss.GroupID(c)
}
