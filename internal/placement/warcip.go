package placement

import (
	"math"

	"adapt/internal/lss"
	"adapt/internal/sim"
)

// WARCIP [Yang, Pei & Yang, SYSTOR'19] clusters user-written pages by
// rewrite interval with an online k-means in log space, so pages with
// similar update cadence share a segment group. GC rewrites go to one
// dedicated group, per the paper's five-user-groups-plus-one
// configuration.
type WARCIP struct {
	k         int
	lastWrite []int64 // write clock of previous write, -1 if unseen
	centroids []float64
	counts    []int64
	maxLog    float64
}

// NewWARCIP returns a WARCIP policy with k user clusters plus one GC
// group.
func NewWARCIP(p Params, k int) *WARCIP {
	p = p.validate()
	if k < 2 {
		k = 2
	}
	w := &WARCIP{
		k:         k,
		lastWrite: make([]int64, p.UserBlocks),
		centroids: make([]float64, k),
		counts:    make([]int64, k),
		maxLog:    math.Log2(float64(p.UserBlocks) + 1),
	}
	for i := range w.lastWrite {
		w.lastWrite[i] = -1
	}
	// Spread the initial centroids across the plausible interval range
	// so clusters specialize quickly.
	for i := 0; i < k; i++ {
		w.centroids[i] = w.maxLog * float64(i+1) / float64(k+1)
	}
	return w
}

// Name implements lss.Policy.
func (*WARCIP) Name() string { return NameWARCIP }

// Groups implements lss.Policy.
func (w *WARCIP) Groups() int { return w.k + 1 }

// PlaceUser assigns the block to the cluster whose centroid is nearest
// to log2 of its rewrite interval, then nudges the centroid toward the
// observation (online k-means).
func (w *WARCIP) PlaceUser(lba int64, _ sim.Time, clock sim.WriteClock) lss.GroupID {
	var x float64
	if prev := w.lastWrite[lba]; prev >= 0 {
		x = math.Log2(float64(int64(clock)-prev) + 1)
	} else {
		// First write: assume the longest interval (cold until proven
		// hot), as WARCIP does for unknown pages.
		x = w.maxLog
	}
	w.lastWrite[lba] = int64(clock)
	best, bestDist := 0, math.Inf(1)
	for i, c := range w.centroids {
		d := math.Abs(c - x)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	w.counts[best]++
	// Decaying learning rate with a floor so centroids keep tracking
	// workload drift.
	lr := 1.0 / float64(w.counts[best])
	if lr < 0.001 {
		lr = 0.001
	}
	w.centroids[best] += lr * (x - w.centroids[best])
	return lss.GroupID(best)
}

// PlaceGC sends every GC rewrite to the dedicated GC group.
func (w *WARCIP) PlaceGC(int64, lss.GroupID, sim.WriteClock, sim.WriteClock, sim.WriteClock) lss.GroupID {
	return lss.GroupID(w.k)
}

// Centroids exposes the current cluster centers (log2 interval) for
// tests and diagnostics.
func (w *WARCIP) Centroids() []float64 {
	out := make([]float64, len(w.centroids))
	copy(out, w.centroids)
	return out
}
