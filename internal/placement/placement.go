// Package placement implements the five baseline data-placement
// strategies the paper evaluates ADAPT against (§4.1): SepGC, DAC,
// WARCIP, MiDA, and SepBIT. Each is an lss.Policy; ADAPT itself lives
// in internal/adaptcore.
//
// All policies index per-block state by LBA in dense arrays sized from
// Params.UserBlocks, and measure time on the user write clock (blocks
// written), the standard virtual time for lifespan estimation.
package placement

import (
	"fmt"

	"adapt/internal/lss"
)

// Params carries store geometry that policies need for sizing state
// and choosing thresholds.
type Params struct {
	// UserBlocks is the user-visible LBA space in blocks.
	UserBlocks int64
	// SegmentBlocks is the segment size in blocks.
	SegmentBlocks int
	// ChunkBlocks is the array chunk size in blocks.
	ChunkBlocks int
}

func (p Params) validate() Params {
	if p.UserBlocks <= 0 {
		panic("placement: UserBlocks must be positive")
	}
	if p.SegmentBlocks <= 0 {
		p.SegmentBlocks = 512
	}
	if p.ChunkBlocks <= 0 {
		p.ChunkBlocks = 16
	}
	return p
}

// Names of the baseline policies, as used by New.
const (
	NameSepGC  = "sepgc"
	NameDAC    = "dac"
	NameWARCIP = "warcip"
	NameMiDA   = "mida"
	NameSepBIT = "sepbit"
)

// BaselineNames lists all baseline policy names in evaluation order.
func BaselineNames() []string {
	return []string{NameSepGC, NameDAC, NameWARCIP, NameMiDA, NameSepBIT}
}

// New constructs a baseline policy by name with the paper's default
// group configuration.
func New(name string, p Params) (lss.Policy, error) {
	switch name {
	case NameSepGC:
		return NewSepGC(p), nil
	case NameDAC:
		return NewDAC(p, 5), nil
	case NameWARCIP:
		return NewWARCIP(p, 5), nil
	case NameMiDA:
		return NewMiDA(p, 8), nil
	case NameSepBIT:
		return NewSepBIT(p), nil
	default:
		return nil, fmt.Errorf("placement: unknown policy %q", name)
	}
}
