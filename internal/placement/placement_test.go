package placement

import (
	"testing"

	"adapt/internal/lss"
	"adapt/internal/sim"
)

func testParams() Params {
	return Params{UserBlocks: 4096, SegmentBlocks: 32, ChunkBlocks: 4}
}

func TestNewByName(t *testing.T) {
	for _, name := range BaselineNames() {
		p, err := New(name, testParams())
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
		if p.Groups() < 2 {
			t.Errorf("policy %q has %d groups", name, p.Groups())
		}
	}
	if _, err := New("nonsense", testParams()); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestExpectedGroupCounts(t *testing.T) {
	cases := map[string]int{
		NameSepGC:  2,
		NameDAC:    5,
		NameWARCIP: 6, // 5 user + 1 GC
		NameMiDA:   8,
		NameSepBIT: 6, // 2 user + 4 GC
	}
	for name, want := range cases {
		p, err := New(name, testParams())
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Groups(); got != want {
			t.Errorf("%s groups = %d, want %d", name, got, want)
		}
	}
}

func TestSepGCSeparation(t *testing.T) {
	p := NewSepGC(testParams())
	if g := p.PlaceUser(1, 0, 0); g != 0 {
		t.Fatalf("user block in group %d, want 0", g)
	}
	if g := p.PlaceGC(1, 0, 0, 0, 0); g != 1 {
		t.Fatalf("GC block in group %d, want 1", g)
	}
}

func TestDACPromotionDemotion(t *testing.T) {
	p := NewDAC(testParams(), 5)
	// Repeated updates promote to the hottest group and saturate.
	var g lss.GroupID
	for i := 0; i < 10; i++ {
		g = p.PlaceUser(7, 0, 0)
	}
	if g != 4 {
		t.Fatalf("hot block in group %d, want 4", g)
	}
	// GC migrations demote back down and saturate at 0.
	for i := 0; i < 10; i++ {
		g = p.PlaceGC(7, g, 0, 0, 0)
	}
	if g != 0 {
		t.Fatalf("cold block in group %d, want 0", g)
	}
}

func TestMiDAMigrationCounting(t *testing.T) {
	p := NewMiDA(testParams(), 8)
	if g := p.PlaceUser(3, 0, 0); g != 0 {
		t.Fatalf("first write in group %d, want 0", g)
	}
	// Three migrations: the block climbs three groups.
	for i := 1; i <= 3; i++ {
		if g := p.PlaceGC(3, 0, 0, 0, 0); int(g) != i {
			t.Fatalf("migration %d placed in group %d", i, g)
		}
	}
	// A user update lands in the earned group and credits one level.
	if g := p.PlaceUser(3, 0, 0); g != 3 {
		t.Fatalf("update placed in group %d, want 3", g)
	}
	if g := p.PlaceUser(3, 0, 0); g != 2 {
		t.Fatalf("second update placed in group %d, want 2", g)
	}
	// Saturation at the coldest group.
	for i := 0; i < 20; i++ {
		p.PlaceGC(3, 0, 0, 0, 0)
	}
	if g := p.PlaceGC(3, 0, 0, 0, 0); g != 7 {
		t.Fatalf("saturated at group %d, want 7", g)
	}
}

func TestWARCIPClustersByInterval(t *testing.T) {
	p := NewWARCIP(testParams(), 5)
	// Block A rewrites every ~2 clock ticks, block B every ~1000:
	// after training they must land in different clusters.
	clock := sim.WriteClock(0)
	var ga, gb lss.GroupID
	for i := 0; i < 400; i++ {
		ga = p.PlaceUser(1, 0, clock)
		clock += 2
		if i%500 == 499 {
			gb = p.PlaceUser(2, 0, clock)
		}
	}
	for i := 0; i < 20; i++ {
		gb = p.PlaceUser(2, 0, clock)
		clock += 1000
	}
	if ga == gb {
		t.Fatalf("hot and cold pages share cluster %d", ga)
	}
	// GC writes always use the dedicated group.
	if g := p.PlaceGC(1, ga, 0, 0, clock); g != 5 {
		t.Fatalf("GC block in group %d, want 5", g)
	}
}

func TestWARCIPFirstWriteIsColdest(t *testing.T) {
	p := NewWARCIP(testParams(), 5)
	g := p.PlaceUser(9, 0, 0)
	// The first write uses the max-interval assumption: nearest cluster
	// to maxLog must be the highest centroid.
	cs := p.Centroids()
	best := 0
	for i := range cs {
		if cs[i] > cs[best] {
			best = i
		}
	}
	if int(g) != best {
		t.Fatalf("first write in group %d, want coldest cluster %d", g, best)
	}
}

func TestSepBITUserSeparation(t *testing.T) {
	p := NewSepBIT(testParams())
	// First-ever write: cold group.
	if g := p.PlaceUser(1, 0, 100); g != 1 {
		t.Fatalf("first write in group %d, want 1", g)
	}
	// Quick rewrite: inferred short-lived, hot group.
	if g := p.PlaceUser(1, 0, 110); g != 0 {
		t.Fatalf("quick rewrite in group %d, want 0", g)
	}
	// Rewrite after more than the threshold: cold.
	far := sim.WriteClock(110 + int64(p.Threshold()) + 1)
	if g := p.PlaceUser(1, 0, far); g != 1 {
		t.Fatalf("slow rewrite in group %d, want 1", g)
	}
}

func TestSepBITThresholdAdaptsToGC(t *testing.T) {
	p := NewSepBIT(testParams())
	init := p.Threshold()
	// Reclaimed group-0 segments with lifespan 50 drag τ toward 50.
	for i := 0; i < 50; i++ {
		p.OnSegmentReclaimed(0, 0, 40, 50, 0, 32)
	}
	if p.Threshold() >= init || p.Threshold() > 60 {
		t.Fatalf("threshold %v did not converge toward 50 (init %v)", p.Threshold(), init)
	}
	// Non-group-0 reclaims must not move τ.
	before := p.Threshold()
	p.OnSegmentReclaimed(3, 0, 0, 1000000, 0, 32)
	if p.Threshold() != before {
		t.Fatal("group-3 reclaim moved the BIT threshold")
	}
}

func TestSepBITGCAgeClasses(t *testing.T) {
	p := NewSepBIT(testParams())
	// Pin the threshold via one GC sample of lifespan 100.
	p.OnSegmentReclaimed(0, 0, 0, 100, 0, 32)
	if p.Threshold() != 100 {
		t.Fatalf("threshold = %v, want 100", p.Threshold())
	}
	// Blocks from the hot user group always go to group 2.
	if g := p.PlaceGC(1, 0, 0, 0, 500); g != 2 {
		t.Fatalf("hot-origin GC block in group %d, want 2", g)
	}
	// Age-based classes for cold-origin blocks.
	p.PlaceUser(5, 0, 1000) // lastWrite = 1000
	cases := []struct {
		clock sim.WriteClock
		want  lss.GroupID
	}{
		{1050, 3}, // age 50 < τ
		{1300, 4}, // τ <= 300 < 4τ
		{2500, 5}, // 4τ <= 1500
		{9000, 5}, // >= 16τ clamps to the coldest GC group
	}
	for _, c := range cases {
		if g := p.PlaceGC(5, 1, 0, 0, c.clock); g != c.want {
			t.Errorf("PlaceGC at clock %d → group %d, want %d", c.clock, g, c.want)
		}
	}
}

// TestPoliciesDriveStore replays a skewed workload through every
// baseline atop the real store and checks basic sanity: data survives,
// invariants hold, WA is finite and ≥ 1.
func TestPoliciesDriveStore(t *testing.T) {
	for _, name := range BaselineNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			cfg := lss.Config{
				UserBlocks:    4096,
				ChunkBlocks:   4,
				SegmentChunks: 8,
				OverProvision: 0.25,
			}
			pol, err := New(name, Params{
				UserBlocks:    cfg.UserBlocks,
				SegmentBlocks: cfg.SegmentBlocks(),
				ChunkBlocks:   cfg.ChunkBlocks,
			})
			if err != nil {
				t.Fatal(err)
			}
			s := lss.New(cfg, pol)
			rng := sim.NewRNG(42)
			for i := int64(0); i < cfg.UserBlocks; i++ {
				if err := s.WriteBlock(i, 0); err != nil {
					t.Fatal(err)
				}
			}
			now := sim.Time(0)
			for i := 0; i < int(cfg.UserBlocks)*8; i++ {
				now += 10 * sim.Microsecond
				var lba int64
				if rng.Float64() < 0.8 {
					lba = rng.Int63n(cfg.UserBlocks / 5)
				} else {
					lba = rng.Int63n(cfg.UserBlocks)
				}
				if err := s.WriteBlock(lba, now); err != nil {
					t.Fatal(err)
				}
			}
			s.Drain(now + sim.Second)
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if got := s.LiveBlocks(); got != cfg.UserBlocks {
				t.Fatalf("LiveBlocks = %d, want %d", got, cfg.UserBlocks)
			}
			wa := s.Metrics().WA()
			if wa < 1 || wa > 20 {
				t.Fatalf("implausible WA %.3f", wa)
			}
		})
	}
}
