package placement

// Footprint methods report each policy's metadata memory cost in
// bytes; the prototype memory experiment (Figure 12b) compares them
// against ADAPT's.

// Footprint returns SepGC's metadata cost: none.
func (*SepGC) Footprint() int64 { return 0 }

// Footprint returns DAC's per-block temperature level table.
func (d *DAC) Footprint() int64 { return int64(len(d.levels)) }

// Footprint returns MiDA's per-block migration-count table.
func (m *MiDA) Footprint() int64 { return int64(len(m.migs)) }

// Footprint returns WARCIP's per-block last-write table plus cluster
// state.
func (w *WARCIP) Footprint() int64 {
	return int64(len(w.lastWrite))*8 + int64(len(w.centroids))*16
}

// Footprint returns SepBIT's per-block last-write table.
func (s *SepBIT) Footprint() int64 { return int64(len(s.lastWrite)) * 8 }
