package placement

import (
	"adapt/internal/lss"
	"adapt/internal/sim"
)

// SepBIT [Wang et al., FAST'22] separates blocks by inferred block
// invalidation time (BIT). User-written blocks whose previous version
// lived shorter than the threshold are inferred short-lived and go to
// group 0; the rest go to group 1. GC-rewritten blocks are spread over
// four groups (2–5) by age-based residual-lifespan estimation with
// exponentially growing boundaries (τ, 4τ, 16τ). The threshold τ is
// the average lifespan of group-0 segments reclaimed by GC, maintained
// as an exponential moving average via the SegmentObserver hook.
type SepBIT struct {
	lastWrite []int64 // write clock of previous user write, -1 if unseen
	threshold float64
	samples   int64
}

// NewSepBIT returns a SepBIT policy with the paper's 2+4 group layout.
func NewSepBIT(p Params) *SepBIT {
	p = p.validate()
	s := &SepBIT{
		lastWrite: make([]int64, p.UserBlocks),
		// Cold start: one full overwrite cycle. Everything with a known
		// shorter lifespan classifies hot until GC feedback arrives.
		threshold: float64(p.UserBlocks),
	}
	for i := range s.lastWrite {
		s.lastWrite[i] = -1
	}
	return s
}

// Name implements lss.Policy.
func (*SepBIT) Name() string { return NameSepBIT }

// Groups implements lss.Policy.
func (*SepBIT) Groups() int { return 6 }

// Threshold exposes the current hot/cold boundary (write-clock units).
func (s *SepBIT) Threshold() float64 { return s.threshold }

// PlaceUser infers the new version's lifespan from the previous
// version's and separates hot (group 0) from cold (group 1).
func (s *SepBIT) PlaceUser(lba int64, _ sim.Time, clock sim.WriteClock) lss.GroupID {
	prev := s.lastWrite[lba]
	s.lastWrite[lba] = int64(clock)
	if prev < 0 {
		return 1 // never seen: assume cold
	}
	if float64(int64(clock)-prev) < s.threshold {
		return 0
	}
	return 1
}

// PlaceGC estimates residual lifespan from age: blocks collected out
// of the hot user group are still likely short-lived (group 2); other
// blocks are binned by age against τ, 4τ, 16τ (groups 3–5).
func (s *SepBIT) PlaceGC(lba int64, from lss.GroupID, _, _ sim.WriteClock, clock sim.WriteClock) lss.GroupID {
	if from == 0 {
		return 2
	}
	var age float64
	if prev := s.lastWrite[lba]; prev >= 0 {
		age = float64(int64(clock) - prev)
	}
	switch {
	case age < s.threshold:
		return 3
	case age < 4*s.threshold:
		return 4
	case age < 16*s.threshold:
		return 5
	default:
		return 5
	}
}

// OnSegmentReclaimed implements lss.SegmentObserver: reclaimed group-0
// segments update the BIT threshold with their observed lifespan.
func (s *SepBIT) OnSegmentReclaimed(g lss.GroupID, born, _, now sim.WriteClock, _, _ int) {
	if g != 0 {
		return
	}
	life := float64(now - born)
	if life <= 0 {
		return
	}
	s.samples++
	const alpha = 0.125
	if s.samples == 1 {
		s.threshold = life
		return
	}
	s.threshold += alpha * (life - s.threshold)
}
