package placement

import (
	"adapt/internal/lss"
	"adapt/internal/sim"
)

// DAC is Dynamic dAta Clustering [Chiang, Lee & Chang, SP&E'99]: data
// blocks move between temperature regions, promoted one level on every
// user update and demoted one level when garbage collection migrates
// them. Group n-1 is hottest, group 0 coldest. User and GC writes
// share the same groups (no user/GC decoupling), matching the paper's
// five-group configuration.
type DAC struct {
	levels []int8
	n      int8
}

// NewDAC returns a DAC policy with n temperature groups.
func NewDAC(p Params, n int) *DAC {
	p = p.validate()
	if n < 2 {
		n = 2
	}
	return &DAC{levels: make([]int8, p.UserBlocks), n: int8(n)}
}

// Name implements lss.Policy.
func (*DAC) Name() string { return NameDAC }

// Groups implements lss.Policy.
func (d *DAC) Groups() int { return int(d.n) }

// PlaceUser promotes the block one temperature level.
func (d *DAC) PlaceUser(lba int64, _ sim.Time, _ sim.WriteClock) lss.GroupID {
	l := d.levels[lba]
	if l < d.n-1 {
		l++
	}
	d.levels[lba] = l
	return lss.GroupID(l)
}

// PlaceGC demotes the block one temperature level: surviving a GC pass
// is evidence of coldness.
func (d *DAC) PlaceGC(lba int64, _ lss.GroupID, _, _, _ sim.WriteClock) lss.GroupID {
	l := d.levels[lba]
	if l > 0 {
		l--
	}
	d.levels[lba] = l
	return lss.GroupID(l)
}
