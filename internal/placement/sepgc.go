package placement

import (
	"adapt/internal/lss"
	"adapt/internal/sim"
)

// SepGC separates user-written blocks from GC-rewritten blocks into
// two groups [Van Houdt, PEVA'14] — the baseline strategy widely
// adopted in key-value stores (HashKV). Group 0 receives all user
// writes, group 1 all GC rewrites.
type SepGC struct{}

// NewSepGC returns the SepGC policy.
func NewSepGC(p Params) *SepGC {
	p.validate()
	return &SepGC{}
}

// Name implements lss.Policy.
func (*SepGC) Name() string { return NameSepGC }

// Groups implements lss.Policy.
func (*SepGC) Groups() int { return 2 }

// PlaceUser implements lss.Policy.
func (*SepGC) PlaceUser(int64, sim.Time, sim.WriteClock) lss.GroupID { return 0 }

// PlaceGC implements lss.Policy.
func (*SepGC) PlaceGC(int64, lss.GroupID, sim.WriteClock, sim.WriteClock, sim.WriteClock) lss.GroupID {
	return 1
}
