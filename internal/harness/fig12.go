package harness

import (
	"fmt"
	"strings"
	"time"

	"adapt/internal/adaptcore"
	"adapt/internal/placement"
	"adapt/internal/prototype"
	"adapt/internal/sim"
	"adapt/internal/stats"
	"adapt/internal/workload"
)

// Fig12Options sizes the prototype experiments.
type Fig12Options struct {
	// ClientCounts mirrors the paper's 1/4/8 client sweep.
	ClientCounts []int
	// Blocks is the store size; keep it small relative to Ops so GC
	// competes with user traffic for device bandwidth (the effect the
	// figure demonstrates).
	Blocks int64
	// Ops is the total user writes per run.
	Ops int64
	// ServiceTime is the modelled per-chunk device time; it must be
	// large enough that runs are device-bound, not CPU-bound.
	ServiceTime time.Duration
	// MemoryBlocks are the store sizes for the memory comparison.
	MemoryBlocks []int64
	// MemoryWarmOps populates sampler/ghost state before measuring.
	MemoryWarmOps int64
}

// DefaultFig12Options returns a configuration sized for the given
// scale.
func DefaultFig12Options(sc Scale) Fig12Options {
	return Fig12Options{
		ClientCounts:  []int{1, 4, 8},
		Blocks:        sc.YCSBBlocks,
		Ops:           8 * sc.YCSBBlocks,
		ServiceTime:   50 * time.Microsecond,
		MemoryBlocks:  []int64{sc.YCSBBlocks / 4, sc.YCSBBlocks, sc.YCSBBlocks * 4},
		MemoryWarmOps: sc.YCSBBlocks,
	}
}

// Fig12aRow is one bar of Figure 12a.
type Fig12aRow struct {
	Policy    string
	Clients   int
	OpsPerSec float64
	WA        float64
}

// Fig12bRow is one point of Figure 12b: the memory footprint of
// SepBIT versus ADAPT at one store size.
type Fig12bRow struct {
	Blocks      int64
	SepBITBytes int64
	ADAPTBytes  int64 // shared per-LBA table + sampler + ghosts + discriminators
	OverheadPct float64
}

// Fig12Result holds both panels.
type Fig12Result struct {
	Throughput []Fig12aRow
	Memory     []Fig12bRow
}

// Fig12 runs the prototype throughput sweep (12a) and the memory
// comparison against SepBIT (12b).
func Fig12(sc Scale, policies []string, opts Fig12Options) (*Fig12Result, error) {
	out := &Fig12Result{}
	if opts.Blocks <= 0 {
		opts.Blocks = sc.YCSBBlocks / 4
	}
	for _, clients := range opts.ClientCounts {
		for _, polName := range policies {
			cfg := StoreConfig(opts.Blocks, 0)
			cfg.SLAWindow = 100 * sim.Microsecond
			pol, err := BuildPolicy(polName, cfg)
			if err != nil {
				return nil, err
			}
			res, err := prototype.Run(prototype.Config{
				Store:       cfg,
				Policy:      pol,
				Clients:     clients,
				Ops:         opts.Ops,
				Theta:       0.99,
				Fill:        true,
				ServiceTime: opts.ServiceTime,
				QueueDepth:  8,
				Seed:        sc.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("fig12a %s/%d: %w", polName, clients, err)
			}
			out.Throughput = append(out.Throughput, Fig12aRow{
				Policy: polName, Clients: clients,
				OpsPerSec: res.OpsPerSec, WA: res.WA,
			})
		}
	}

	for _, blocks := range opts.MemoryBlocks {
		cfg := StoreConfig(blocks, 0)
		sep := placement.NewSepBIT(placement.Params{
			UserBlocks:    blocks,
			SegmentBlocks: cfg.SegmentBlocks(),
			ChunkBlocks:   cfg.ChunkBlocks,
		})
		adaptPol, err := BuildPolicy(PolicyADAPT, cfg)
		if err != nil {
			return nil, err
		}
		ap := adaptPol.(*adaptcore.Policy)
		// Warm both policies with the same zipfian stream so dynamic
		// structures (sampler, ghost sets) carry realistic state.
		rng := sim.NewRNG(sc.Seed)
		z := workload.NewZipf(rng, blocks, 0.99, true)
		for i := int64(0); i < opts.MemoryWarmOps; i++ {
			lba := z.Next()
			sep.PlaceUser(lba, 0, sim.WriteClock(i))
			ap.PlaceUser(lba, 0, sim.WriteClock(i))
		}
		sepBytes := sep.Footprint()
		adaptBytes := ap.BaseFootprint() + ap.Footprint()
		row := Fig12bRow{Blocks: blocks, SepBITBytes: sepBytes, ADAPTBytes: adaptBytes}
		if sepBytes > 0 {
			row.OverheadPct = 100 * float64(adaptBytes-sepBytes) / float64(sepBytes)
		}
		out.Memory = append(out.Memory, row)
	}
	return out, nil
}

// Render prints both Figure 12 panels.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 12a — prototype throughput (YCSB-A)\n")
	tb := stats.NewTable("clients", "policy", "ops/s", "WA")
	for _, row := range r.Throughput {
		tb.AddRow(row.Clients, row.Policy, row.OpsPerSec, row.WA)
	}
	b.WriteString(tb.String())
	b.WriteString("Figure 12b — memory footprint vs SepBIT\n")
	tb = stats.NewTable("blocks", "sepbit", "adapt", "overhead%")
	for _, row := range r.Memory {
		tb.AddRow(row.Blocks, sim.ByteSize(row.SepBITBytes), sim.ByteSize(row.ADAPTBytes), row.OverheadPct)
	}
	b.WriteString(tb.String())
	return b.String()
}
