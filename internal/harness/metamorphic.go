package harness

import (
	"fmt"

	"adapt/internal/checker"
	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/trace"
	"adapt/internal/workload"
)

// Metamorphic and differential harness. Three families of relations:
//
//   - Oracle differential: every placement policy replayed against the
//     internal/checker reference model with the byte mirror attached —
//     live sets, garbage counts, parity, and read-back all cross-checked,
//     optionally through a mid-trace device failure and rebuild.
//   - Metamorphic trace variants: perturbed traces (adjacent commuting
//     writes exchanged, seeds shifted) whose outputs must preserve
//     invariants — identical final live sets for reorderings, GC write
//     amplification within tolerance for seed shifts.
//   - Victim-sequence differential: the incremental victim index versus
//     the legacy scan-and-sort selector, byte-identical reclaim
//     sequences for deterministic victim policies under all six
//     placement policies, including a degraded-mode stretch.

// DiffOptions sizes an oracle-backed differential run.
type DiffOptions struct {
	// Blocks is the LBA space; Writes the number of zipfian updates
	// appended after a dense fill. Defaults: 16 Ki blocks, 128 Ki writes.
	Blocks, Writes int64
	// Theta is the zipfian skew (default 0.99).
	Theta float64
	// Seed drives trace synthesis.
	Seed uint64
	// Victim selects the GC victim policy.
	Victim lss.VictimPolicy
	// CheckEvery/FullEvery are the oracle cadences (checker.Options).
	CheckEvery, FullEvery int
	// FailAtOp, when positive, fails array column FailColumn after that
	// record and rebuilds incrementally while the replay continues.
	FailAtOp   int
	FailColumn int
	// RebuildChunks bounds each incremental rebuild step (default 8,
	// every 64 records while degraded).
	RebuildChunks int
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.Blocks == 0 {
		o.Blocks = 16 << 10
	}
	if o.Writes == 0 {
		o.Writes = 128 << 10
	}
	if o.Theta == 0 {
		o.Theta = 0.99
	}
	if o.RebuildChunks == 0 {
		o.RebuildChunks = 8
	}
	return o
}

// DiffConfig is StoreConfig shrunk for the oracle's byte mirror: 32-byte
// blocks keep the mirrored array at a few megabytes over a whole run
// while leaving the block-count geometry (and so placement and GC
// behavior) untouched.
func DiffConfig(userBlocks int64, victim lss.VictimPolicy) lss.Config {
	cfg := StoreConfig(userBlocks, victim)
	cfg.BlockSize = 32
	cfg.ChunkBlocks = 4
	cfg.SegmentChunks = 8
	return cfg
}

// DiffTrace synthesizes the zipfian update stream the differential runs
// share, at DiffConfig's block size.
func DiffTrace(opt DiffOptions) *trace.Trace {
	opt = opt.withDefaults()
	return workload.Generate(workload.YCSBConfig{
		Blocks:    opt.Blocks,
		Writes:    opt.Writes,
		Fill:      true,
		Theta:     opt.Theta,
		BlockSize: 32,
		Seed:      opt.Seed,
	})
}

// DiffResult summarizes one oracle-backed differential replay.
type DiffResult struct {
	Policy                  string
	Ops                     int
	CheapChecks, FullChecks int64
	GCWA                    float64
	DegradedReads           int64
	RebuiltChunks           int64
}

// DiffPolicy replays tr through the named placement policy with the
// full reference-model oracle (byte mirror included) attached. Any
// divergence — live sets, garbage counts, parity, read-back — comes
// back as an error wrapping checker.ErrMismatch.
func DiffPolicy(policy string, tr *trace.Trace, opt DiffOptions) (DiffResult, error) {
	opt = opt.withDefaults()
	cfg := DiffConfig(opt.Blocks, opt.Victim)
	pol, err := BuildPolicy(policy, cfg)
	if err != nil {
		return DiffResult{}, fmt.Errorf("differential %s: %w", policy, err)
	}
	o, err := checker.New(lss.New(cfg, pol), checker.Options{
		Mirror:     true,
		CheckEvery: opt.CheckEvery,
		FullEvery:  opt.FullEvery,
	})
	if err != nil {
		return DiffResult{}, fmt.Errorf("differential %s: %w", policy, err)
	}
	bs := int64(cfg.BlockSize)
	degraded := false
	for i := range tr.Records {
		r := &tr.Records[i]
		lba := r.Offset / bs
		blocks := int((r.Size + bs - 1) / bs)
		if blocks < 1 {
			blocks = 1
		}
		if r.Op == trace.OpRead {
			o.Read(lba, blocks, r.Time)
		} else if err := o.Write(lba, blocks, r.Time); err != nil {
			return DiffResult{}, fmt.Errorf("differential %s record %d: %w", policy, i, err)
		}
		if opt.FailAtOp > 0 && i == opt.FailAtOp {
			if err := o.FailColumn(opt.FailColumn); err != nil {
				return DiffResult{}, fmt.Errorf("differential %s: fail column: %w", policy, err)
			}
			degraded = true
		}
		if degraded && i%64 == 0 {
			_, done, err := o.RebuildStep(opt.RebuildChunks)
			if err != nil {
				return DiffResult{}, fmt.Errorf("differential %s: rebuild: %w", policy, err)
			}
			degraded = !done
		}
	}
	for degraded {
		_, done, err := o.RebuildStep(1 << 12)
		if err != nil {
			return DiffResult{}, fmt.Errorf("differential %s: rebuild: %w", policy, err)
		}
		degraded = !done
	}
	if err := o.Drain(o.Store().Now() + sim.Second); err != nil {
		return DiffResult{}, fmt.Errorf("differential %s: final audit: %w", policy, err)
	}
	res := DiffResult{Policy: policy, Ops: len(tr.Records), GCWA: o.Store().Metrics().WA()}
	res.CheapChecks, res.FullChecks = o.Checks()
	if arr := o.MirrorArray(); arr != nil {
		res.DegradedReads = arr.DegradedReads()
		res.RebuiltChunks = arr.RebuiltChunks()
	}
	return res, nil
}

// DiffPolicies runs DiffPolicy for every placement policy on one shared
// trace, returning per-policy summaries; the first divergence aborts.
func DiffPolicies(opt DiffOptions) ([]DiffResult, error) {
	tr := DiffTrace(opt)
	var out []DiffResult
	for _, policy := range PolicyNames() {
		res, err := DiffPolicy(policy, tr, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// LiveSet returns the store's mapped LBAs in ascending order.
func LiveSet(s *lss.Store) []int64 {
	var out []int64
	for lba := int64(0); lba < s.Config().UserBlocks; lba++ {
		if _, _, ok := s.Location(lba); ok {
			out = append(out, lba)
		}
	}
	return out
}

// ReorderDisjointWrites returns a copy of tr with up to swaps random
// adjacent pairs of commuting records exchanged: both writes, touching
// disjoint block ranges at the given block size. Arrival timestamps
// stay in place — only the payloads commute — so the variant is a valid
// trace whose final per-LBA state is identical to the original's.
// Metamorphic relation: any policy replaying the variant must end with
// the same live set and accept the same number of user blocks.
func ReorderDisjointWrites(tr *trace.Trace, blockSize int64, seed uint64, swaps int) *trace.Trace {
	out := &trace.Trace{
		Name:    tr.Name + "+reorder",
		Records: append([]trace.Record(nil), tr.Records...),
	}
	n := len(out.Records)
	if n < 2 {
		return out
	}
	rng := sim.NewRNG(seed)
	blockSpan := func(r *trace.Record) (lo, hi int64) {
		lo = r.Offset / blockSize
		blocks := (r.Size + blockSize - 1) / blockSize
		if blocks < 1 {
			blocks = 1
		}
		return lo, lo + blocks
	}
	for k := 0; k < swaps; k++ {
		i := int(rng.Uint64() % uint64(n-1))
		a, b := &out.Records[i], &out.Records[i+1]
		if a.Op != trace.OpWrite || b.Op != trace.OpWrite {
			continue
		}
		alo, ahi := blockSpan(a)
		blo, bhi := blockSpan(b)
		if alo < bhi && blo < ahi {
			continue // overlapping ranges do not commute
		}
		a.Offset, b.Offset = b.Offset, a.Offset
		a.Size, b.Size = b.Size, a.Size
	}
	return out
}

// VictimSequence replays tr through the named placement policy and
// returns every reclaimed victim segment id in reclaim order. The store
// runs in degraded mode (GC throttled to the low watermark) for records
// in [degradeFrom, degradeTo) when degradeTo > degradeFrom, so the
// differential also covers the fault path's victim selection. The
// legacy-vs-index differential replays the same trace twice with
// cfg.LegacyVictimScan flipped and compares the sequences.
func VictimSequence(policy string, cfg lss.Config, tr *trace.Trace, degradeFrom, degradeTo int) ([]int, error) {
	pol, err := BuildPolicy(policy, cfg)
	if err != nil {
		return nil, fmt.Errorf("victim sequence %s: %w", policy, err)
	}
	var seq []int
	s := lss.New(cfg, pol, lss.Deps{
		ReclaimObserver: func(id int) { seq = append(seq, id) },
	})
	bs := int64(cfg.BlockSize)
	for i := range tr.Records {
		if degradeTo > degradeFrom {
			if i == degradeFrom {
				s.Reconfigure(func(r *lss.Runtime) { r.Degraded = true })
			}
			if i == degradeTo {
				s.Reconfigure(func(r *lss.Runtime) { r.Degraded = false })
			}
		}
		r := &tr.Records[i]
		lba := r.Offset / bs
		blocks := int((r.Size + bs - 1) / bs)
		if blocks < 1 {
			blocks = 1
		}
		if r.Op == trace.OpRead {
			s.Read(lba, blocks, r.Time)
			continue
		}
		for j := 0; j < blocks; j++ {
			if err := s.WriteBlock(lba+int64(j), r.Time); err != nil {
				return nil, fmt.Errorf("victim sequence %s record %d: %w", policy, i, err)
			}
		}
	}
	s.Drain(s.Now() + sim.Second)
	return seq, nil
}
