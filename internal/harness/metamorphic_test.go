package harness

import (
	"testing"

	"adapt/internal/lss"
	"adapt/internal/trace"
)

func diffTestOptions(t *testing.T) DiffOptions {
	opt := DiffOptions{Seed: 1}
	if testing.Short() {
		opt.Blocks = 4 << 10
		opt.Writes = 16 << 10
	}
	return opt.withDefaults()
}

// TestDifferentialAllPolicies is the headline differential: all six
// placement policies replayed against the reference model (byte mirror
// included) on a shared 100k+ operation zipfian trace, zero mismatches
// tolerated.
func TestDifferentialAllPolicies(t *testing.T) {
	opt := diffTestOptions(t)
	if !testing.Short() && opt.Blocks+opt.Writes < 100_000 {
		t.Fatalf("trace too small for the acceptance run: %d ops", opt.Blocks+opt.Writes)
	}
	results, err := DiffPolicies(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(PolicyNames()) {
		t.Fatalf("ran %d policies, want %d", len(results), len(PolicyNames()))
	}
	for _, res := range results {
		if res.GCWA <= 1 {
			t.Errorf("%s: GC never ran (WA %.3f); the differential exercised nothing", res.Policy, res.GCWA)
		}
		if res.CheapChecks == 0 || res.FullChecks == 0 {
			t.Errorf("%s: oracle checks did not run: cheap=%d full=%d", res.Policy, res.CheapChecks, res.FullChecks)
		}
	}
}

// TestDifferentialMidTraceFault repeats the differential for ADAPT with
// a device failure a third of the way in and an incremental rebuild
// racing the remaining trace: parity, degraded reconstruction, and
// post-rebuild read-back all must stay clean.
func TestDifferentialMidTraceFault(t *testing.T) {
	opt := diffTestOptions(t)
	tr := DiffTrace(opt)
	opt.FailAtOp = len(tr.Records) / 3
	opt.FailColumn = 2
	res, err := DiffPolicy(PolicyADAPT, tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.RebuiltChunks == 0 {
		t.Fatal("rebuild reconstructed nothing; the fault path was not exercised")
	}
}

// TestReorderedTraceSameLiveSet checks the commuting-writes metamorphic
// relation: exchanging adjacent writes to disjoint block ranges must
// leave every policy's final live set and accepted write count
// unchanged.
func TestReorderedTraceSameLiveSet(t *testing.T) {
	opt := DiffOptions{Blocks: 4 << 10, Writes: 16 << 10, Seed: 3}.withDefaults()
	base := DiffTrace(opt)
	variant := ReorderDisjointWrites(base, 32, 17, 4096)
	changed := 0
	for i := range base.Records {
		if base.Records[i].Offset != variant.Records[i].Offset {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("reordering changed nothing; the relation is vacuous")
	}
	for _, policy := range PolicyNames() {
		run := func(tr *trace.Trace) *lss.Store {
			t.Helper()
			cfg := DiffConfig(opt.Blocks, lss.Greedy)
			pol, err := BuildPolicy(policy, cfg)
			if err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			s := lss.New(cfg, pol)
			if err := trace.Replay(s, tr); err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			return s
		}
		a, b := run(base), run(variant)
		if a.Metrics().UserBlocks != b.Metrics().UserBlocks {
			t.Fatalf("%s: reordered trace accepted %d user blocks, original %d",
				policy, b.Metrics().UserBlocks, a.Metrics().UserBlocks)
		}
		la, lb := LiveSet(a), LiveSet(b)
		if len(la) != len(lb) {
			t.Fatalf("%s: live set size %d vs %d after reorder", policy, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("%s: live sets diverge at %d: %d vs %d", policy, i, la[i], lb[i])
			}
		}
	}
}

// TestSeedShiftWATolerance checks the seed-perturbation relation: the
// same workload shape under a different random seed must land within a
// loose GC-WA tolerance — placement quality is a property of the
// distribution, not the sample.
func TestSeedShiftWATolerance(t *testing.T) {
	opt := DiffOptions{Blocks: 4 << 10, Writes: 32 << 10, Seed: 5}.withDefaults()
	for _, policy := range PolicyNames() {
		was := make([]float64, 0, 2)
		for _, seed := range []uint64{5, 6} {
			o := opt
			o.Seed = seed
			cfg := DiffConfig(o.Blocks, lss.Greedy)
			pol, err := BuildPolicy(policy, cfg)
			if err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			s := lss.New(cfg, pol)
			if err := trace.Replay(s, DiffTrace(o)); err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			was = append(was, s.Metrics().WA())
		}
		ratio := was[0] / was[1]
		if ratio < 0.7 || ratio > 1.4 {
			t.Errorf("%s: GC-WA %.3f vs %.3f across seeds (ratio %.2f) exceeds tolerance",
				policy, was[0], was[1], ratio)
		}
	}
}

// TestVictimSequenceLegacyIndexAllPolicies extends the PR 2 victim
// differential to every placement policy: the incremental victim index
// and the legacy scan-and-sort selector must reclaim byte-identical
// victim sequences for the deterministic victim policies, including a
// degraded-mode stretch in the middle third of the trace.
func TestVictimSequenceLegacyIndexAllPolicies(t *testing.T) {
	opt := DiffOptions{Blocks: 4 << 10, Writes: 24 << 10, Seed: 9}.withDefaults()
	tr := DiffTrace(opt)
	n := len(tr.Records)
	for _, victim := range []lss.VictimPolicy{lss.Greedy, lss.CostBenefit} {
		for _, policy := range PolicyNames() {
			for _, degraded := range []bool{false, true} {
				from, to := 0, 0
				if degraded {
					from, to = n/3, 2*n/3
				}
				cfg := DiffConfig(opt.Blocks, victim)
				idx, err := VictimSequence(policy, cfg, tr, from, to)
				if err != nil {
					t.Fatal(err)
				}
				cfg.LegacyVictimScan = true
				legacy, err := VictimSequence(policy, cfg, tr, from, to)
				if err != nil {
					t.Fatal(err)
				}
				if len(idx) == 0 {
					t.Fatalf("%s/%s: no segments reclaimed; differential is vacuous", policy, victim)
				}
				if len(idx) != len(legacy) {
					t.Fatalf("%s/%s degraded=%v: index reclaimed %d victims, legacy %d",
						policy, victim, degraded, len(idx), len(legacy))
				}
				for i := range idx {
					if idx[i] != legacy[i] {
						t.Fatalf("%s/%s degraded=%v: victim %d differs: index=%d legacy=%d",
							policy, victim, degraded, i, idx[i], legacy[i])
					}
				}
			}
		}
	}
}
