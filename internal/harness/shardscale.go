package harness

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"adapt/internal/lss"
	"adapt/internal/prototype"
	"adapt/internal/sim"
	"adapt/internal/workload"
)

// ShardScaleOptions sizes the shard-scaling experiment: a fixed fleet
// of writer goroutines hammers the sharded engine at each shard count
// so the throughput curve isolates engine-lock contention from device
// time (the modelled device is made essentially free).
type ShardScaleOptions struct {
	// Shards lists the shard counts to sweep (default 1, 2, 4).
	Shards []int
	// Workers is the concurrent writer goroutine count (default 8).
	Workers int
	// OpsPerWorker is single-block writes issued by each worker.
	OpsPerWorker int
	// UserBlocks sizes the array.
	UserBlocks int64
}

// DefaultShardScaleOptions derives experiment sizing from the scale.
func DefaultShardScaleOptions(sc Scale) ShardScaleOptions {
	return ShardScaleOptions{
		Shards:       []int{1, 2, 4},
		Workers:      8,
		OpsPerWorker: int(sc.YCSBWrites) / 8,
		UserBlocks:   sc.YCSBBlocks,
	}
}

// ShardScaleRow is the measured throughput at one shard count.
type ShardScaleRow struct {
	Shards    int
	Ops       int64
	Elapsed   time.Duration
	OpsPerSec float64
	// Speedup is OpsPerSec relative to the first (1-shard) row.
	Speedup float64
	// GateWaits counts GC cycles that blocked on the cross-shard
	// scheduler token; GateWaitNS is the total time they waited.
	GateWaits  int64
	GateWaitNS int64
	WA         float64
}

// ShardScaleResult holds the sweep.
type ShardScaleResult struct {
	Workers int
	Rows    []ShardScaleRow
}

// Render prints a paper-style table.
func (r ShardScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — shard scaling (%d writers, zipfian 0.99)\n", r.Workers)
	fmt.Fprintf(&b, "%8s %12s %12s %10s %8s %10s %8s\n",
		"shards", "ops", "elapsed", "ops/s", "speedup", "gate-waits", "WA")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12d %12v %10.0f %7.2fx %10d %8.3f\n",
			row.Shards, row.Ops, row.Elapsed.Round(time.Millisecond),
			row.OpsPerSec, row.Speedup, row.GateWaits, row.WA)
	}
	return b.String()
}

// ExpShardScale sweeps the sharded engine across shard counts under a
// fixed concurrent writer fleet. Unlike the figure experiments this
// measures wall-clock throughput, so results depend on the host's
// core count; the qualitative claim is that throughput grows with
// shards until it hits the core budget.
func ExpShardScale(sc Scale, opt ShardScaleOptions) (ShardScaleResult, error) {
	if len(opt.Shards) == 0 {
		opt.Shards = []int{1, 2, 4}
	}
	if opt.Workers <= 0 {
		opt.Workers = 8
	}
	if opt.OpsPerWorker <= 0 {
		opt.OpsPerWorker = 16 << 10
	}
	if opt.UserBlocks <= 0 {
		opt.UserBlocks = sc.YCSBBlocks
	}
	res := ShardScaleResult{Workers: opt.Workers}
	cfg := StoreConfig(opt.UserBlocks, lss.Greedy)
	for _, shards := range opt.Shards {
		eng, err := prototype.NewSharded(prototype.ShardedConfig{
			Engine: prototype.EngineConfig{
				Store: cfg,
				// Keep the modelled device out of the way so the sweep
				// measures engine-lock and group-commit contention.
				ServiceTime: time.Microsecond,
			},
			Shards: shards,
			PolicyFactory: func(shard int, scfg lss.Config) (lss.Policy, error) {
				return BuildPolicy(PolicyADAPT, scfg)
			},
		})
		if err != nil {
			return ShardScaleResult{}, err
		}
		var wg sync.WaitGroup
		errs := make([]error, opt.Workers)
		start := time.Now()
		for w := 0; w < opt.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := sim.NewRNG(sc.Seed*1_000_003 + uint64(w))
				z := workload.NewZipf(rng, opt.UserBlocks, 0.99, true)
				for i := 0; i < opt.OpsPerWorker; i++ {
					if err := eng.Write(z.Next(), 1); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := eng.Stats()
		if err := eng.Close(); err != nil {
			return ShardScaleResult{}, err
		}
		for _, err := range errs {
			if err != nil {
				return ShardScaleResult{}, err
			}
		}
		ops := int64(opt.Workers) * int64(opt.OpsPerWorker)
		row := ShardScaleRow{
			Shards:     shards,
			Ops:        ops,
			Elapsed:    elapsed,
			OpsPerSec:  float64(ops) / elapsed.Seconds(),
			GateWaits:  st.GCGateWaits,
			GateWaitNS: st.GCGateWaitNS,
			WA:         st.WA,
		}
		if len(res.Rows) == 0 {
			row.Speedup = 1
		} else {
			row.Speedup = row.OpsPerSec / res.Rows[0].OpsPerSec
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
