package harness

import (
	"fmt"
	"strings"

	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/stats"
	"adapt/internal/trace"
	"adapt/internal/workload"
)

// Extension experiments beyond the paper's figures: sensitivity of the
// padding/WA trade-off to the array chunk size (the paper fixes 64 KiB,
// the Linux mdraid default) and to the SLA coalescing window (the
// paper fixes Pangu's 100 µs), plus victim-policy comparisons across
// the related-work Greedy variants.

// ExtCell is one cell of an extension sweep.
type ExtCell struct {
	Policy  string
	Setting string
	WA      float64 // padding-inclusive
	GCWA    float64
	PadRat  float64
}

func runExtCell(policy, setting string, cfg lss.Config, tr *trace.Trace) (ExtCell, error) {
	pol, err := BuildPolicy(policy, cfg)
	if err != nil {
		return ExtCell{}, fmt.Errorf("ext cell %s policy %s: %w", setting, policy, err)
	}
	store := lss.New(cfg, pol)
	if err := trace.Replay(store, tr); err != nil {
		return ExtCell{}, fmt.Errorf("ext cell %s policy %s: %w", setting, policy, err)
	}
	m := store.Metrics()
	return ExtCell{
		Policy:  policy,
		Setting: setting,
		WA:      m.EffectiveWA(),
		GCWA:    m.WA(),
		PadRat:  m.PaddingRatio(),
	}, nil
}

// ExpChunkSize sweeps the array chunk size: larger chunks mean larger
// error-correction units (paper §2.2) but more padding under sparse
// writes — the granularity-mismatch trade-off that motivates ADAPT.
func ExpChunkSize(sc Scale, policies []string) ([]ExtCell, error) {
	tr := workload.Generate(workload.YCSBConfig{
		Blocks:  sc.YCSBBlocks,
		Writes:  sc.YCSBWrites,
		Fill:    true,
		Theta:   0.99,
		MeanGap: 60 * sim.Microsecond,
		Seed:    sc.Seed,
	})
	var out []ExtCell
	for _, chunkKiB := range []int{16, 32, 64, 128} {
		for _, pol := range policies {
			cfg := StoreConfig(sc.YCSBBlocks, lss.Greedy)
			// Hold the segment size in blocks constant while the chunk
			// size varies, so only the coalescing granularity changes.
			segBlocks := cfg.SegmentBlocks()
			cfg.ChunkBlocks = chunkKiB * 1024 / cfg.BlockSize
			cfg.SegmentChunks = segBlocks / cfg.ChunkBlocks
			if cfg.SegmentChunks < 2 {
				cfg.SegmentChunks = 2
			}
			cell, err := runExtCell(pol, fmt.Sprintf("chunk=%dKiB", chunkKiB), cfg, tr)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// ExpSLAWindow sweeps the coalescing deadline: longer windows gather
// more blocks per chunk at the cost of write latency.
func ExpSLAWindow(sc Scale, policies []string) ([]ExtCell, error) {
	tr := workload.Generate(workload.YCSBConfig{
		Blocks:  sc.YCSBBlocks,
		Writes:  sc.YCSBWrites,
		Fill:    true,
		Theta:   0.99,
		MeanGap: 60 * sim.Microsecond,
		Seed:    sc.Seed,
	})
	var out []ExtCell
	for _, winUS := range []int{20, 50, 100, 200, 500} {
		for _, pol := range policies {
			cfg := StoreConfig(sc.YCSBBlocks, lss.Greedy)
			cfg.SLAWindow = sim.Time(winUS) * sim.Microsecond
			cell, err := runExtCell(pol, fmt.Sprintf("sla=%dus", winUS), cfg, tr)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// ExpVictims compares all victim-selection policies under one
// placement policy.
func ExpVictims(sc Scale, policies []string) ([]ExtCell, error) {
	tr := workload.Generate(workload.YCSBConfig{
		Blocks:  sc.YCSBBlocks,
		Writes:  sc.YCSBWrites,
		Fill:    true,
		Theta:   0.99,
		MeanGap: 60 * sim.Microsecond,
		Seed:    sc.Seed,
	})
	victims := []lss.VictimPolicy{
		lss.Greedy, lss.CostBenefit, lss.DChoices, lss.WindowedGreedy, lss.RandomGreedy,
	}
	var out []ExtCell
	for _, v := range victims {
		for _, pol := range policies {
			cfg := StoreConfig(sc.YCSBBlocks, v)
			cell, err := runExtCell(pol, v.String(), cfg, tr)
			if err != nil {
				return nil, err
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// RenderExt prints an extension sweep table.
func RenderExt(title string, cells []ExtCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	tb := stats.NewTable("setting", "policy", "WA", "gcWA", "pad ratio")
	for _, c := range cells {
		tb.AddRow(c.Setting, c.Policy, c.WA, c.GCWA, c.PadRat)
	}
	b.WriteString(tb.String())
	return b.String()
}

// LatencyCell is one row of the persistence-latency experiment.
type LatencyCell struct {
	Policy     string
	MeanUS     float64
	P99US      float64
	Violations int64
}

// ExpLatency measures user-block persistence latency per policy on a
// medium-density YCSB-A stream. The SLA window bounds every sample by
// construction; the distribution below it shows how long writes sit in
// open chunks: schemes that split user writes across more groups hold
// blocks longer, and ADAPT's lazy-append hot chunks push hot blocks to
// the deadline while shadow copies keep them durable.
func ExpLatency(sc Scale, policies []string) ([]LatencyCell, error) {
	tr := workload.Generate(workload.YCSBConfig{
		Blocks:  sc.YCSBBlocks,
		Writes:  sc.YCSBWrites,
		Fill:    true,
		Theta:   0.99,
		MeanGap: 60 * sim.Microsecond,
		Seed:    sc.Seed,
	})
	var out []LatencyCell
	for _, pol := range policies {
		cfg := StoreConfig(sc.YCSBBlocks, lss.Greedy)
		p, err := BuildPolicy(pol, cfg)
		if err != nil {
			return nil, err
		}
		store := lss.New(cfg, p)
		if err := trace.Replay(store, tr); err != nil {
			return nil, fmt.Errorf("latency %s: %w", pol, err)
		}
		l := store.Metrics().Latency
		out = append(out, LatencyCell{
			Policy:     pol,
			MeanUS:     float64(l.Mean()) / float64(sim.Microsecond),
			P99US:      float64(l.Quantile(0.99)) / float64(sim.Microsecond),
			Violations: l.Violations,
		})
	}
	return out, nil
}

// RenderLatency prints the latency experiment table.
func RenderLatency(cells []LatencyCell) string {
	var b strings.Builder
	b.WriteString("Extension — persistence latency under the 100 µs SLA (YCSB-A, medium density)\n")
	tb := stats.NewTable("policy", "mean µs", "p99 µs", "violations")
	for _, c := range cells {
		tb.AddRow(c.Policy, c.MeanUS, c.P99US, c.Violations)
	}
	b.WriteString(tb.String())
	return b.String()
}
