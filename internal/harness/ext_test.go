package harness

import (
	"strings"
	"testing"
)

func TestExpStreams(t *testing.T) {
	sc := tinyScale()
	rows, err := ExpStreams(sc, []string{"sepgc", PolicyADAPT})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SingleWA < 1 || r.MultiWA < 1 {
			t.Fatalf("%s device WA below 1: %+v", r.Policy, r)
		}
		// Group→stream mapping must not hurt in-device WA.
		if r.MultiWA > r.SingleWA*1.02 {
			t.Fatalf("%s: multi-stream WA %.3f worse than single %.3f",
				r.Policy, r.MultiWA, r.SingleWA)
		}
	}
	if out := RenderStreams(rows); !strings.Contains(out, "multiStreamWA") {
		t.Error("render broken")
	}
}

func TestExpChunkSize(t *testing.T) {
	sc := tinyScale()
	cells, err := ExpChunkSize(sc, []string{"sepgc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("%d cells", len(cells))
	}
	// Larger chunks pad more under the same (sparse-ish) workload.
	first, last := cells[0], cells[len(cells)-1]
	if last.PadRat < first.PadRat {
		t.Fatalf("128KiB chunks pad less (%.3f) than 16KiB (%.3f)",
			last.PadRat, first.PadRat)
	}
	if out := RenderExt("t", cells); !strings.Contains(out, "chunk=16KiB") {
		t.Error("render broken")
	}
}

func TestExpSLAWindow(t *testing.T) {
	sc := tinyScale()
	cells, err := ExpSLAWindow(sc, []string{"sepgc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("%d cells", len(cells))
	}
	// A longer window can only reduce padding.
	if cells[len(cells)-1].PadRat > cells[0].PadRat+1e-9 {
		t.Fatalf("500us window pads more (%.3f) than 20us (%.3f)",
			cells[len(cells)-1].PadRat, cells[0].PadRat)
	}
}

func TestExpVictims(t *testing.T) {
	sc := tinyScale()
	cells, err := ExpVictims(sc, []string{"sepgc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("%d cells", len(cells))
	}
	byVictim := map[string]ExtCell{}
	for _, c := range cells {
		byVictim[c.Setting] = c
	}
	// Informed selection beats random on a skewed workload.
	if byVictim["greedy"].GCWA >= byVictim["random-greedy"].GCWA {
		t.Fatalf("greedy GC WA %.3f not better than random %.3f",
			byVictim["greedy"].GCWA, byVictim["random-greedy"].GCWA)
	}
}

func TestExpLatency(t *testing.T) {
	sc := tinyScale()
	cells, err := ExpLatency(sc, []string{"sepgc", PolicyADAPT})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("%d cells", len(cells))
	}
	for _, c := range cells {
		if c.MeanUS <= 0 || c.MeanUS > 100 {
			t.Fatalf("%s mean latency %.1fµs outside the SLA window", c.Policy, c.MeanUS)
		}
		// Violations can only come from the final drain: bounded by the
		// number of groups times the chunk size.
		if c.Violations > 6*16 {
			t.Fatalf("%s has %d violations — SLA machinery broken", c.Policy, c.Violations)
		}
	}
	if out := RenderLatency(cells); !strings.Contains(out, "p99") {
		t.Error("render broken")
	}
}
