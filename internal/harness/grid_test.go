package harness

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"adapt/internal/lss"
	"adapt/internal/trace"
	"adapt/internal/workload"
)

// TestRunGridAbortsPromptlyOnError: a failing cell must stop the grid
// after at most the jobs already in flight, not after every remaining
// job has run (the old unbuffered feed kept pushing jobs to workers
// until the queue drained).
func TestRunGridAbortsPromptlyOnError(t *testing.T) {
	orig := runTraceFn
	defer func() { runTraceFn = orig }()
	var calls atomic.Int64
	runTraceFn = func(policy string, tr *trace.Trace, userBlocks int64, victim lss.VictimPolicy) (RunResult, error) {
		if calls.Add(1) == 1 {
			return RunResult{}, errors.New("injected failure")
		}
		time.Sleep(2 * time.Millisecond)
		return RunResult{}, nil
	}
	sc := tinyScale()
	sc.Volumes = 8
	victims := []lss.VictimPolicy{lss.Greedy, lss.CostBenefit, lss.DChoices, lss.WindowedGreedy, lss.RandomGreedy}
	policies := []string{"sepgc", "mida", "sepbit", PolicyADAPT}
	jobs := int64(sc.Volumes * len(victims) * len(policies))
	_, err := RunGrid(sc, []workload.Profile{workload.ProfileAli}, victims, policies)
	if err == nil {
		t.Fatal("failing cell did not surface an error")
	}
	if !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("unexpected error: %v", err)
	}
	workers := int64(runtime.NumCPU())
	if workers > jobs {
		workers = jobs
	}
	// The failing call is the first to run; every other worker can have
	// at most one job in flight when the abort lands, plus a narrow
	// window to grab one more before observing done.
	if got := calls.Load(); got > 2*workers {
		t.Fatalf("grid ran %d jobs after an early failure (%d workers, %d jobs total)", got, workers, jobs)
	}
}

// TestRunGridStoresEveryCell guards the lock-free result stores: every
// slot of the grid must be filled after a clean run.
func TestRunGridStoresEveryCell(t *testing.T) {
	sc := tinyScale()
	grid, err := RunGrid(sc,
		[]workload.Profile{workload.ProfileMSRC},
		[]lss.VictimPolicy{lss.Greedy},
		[]string{"sepgc", PolicyADAPT})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"sepgc", PolicyADAPT} {
		runs := grid.Runs[workload.ProfileMSRC][lss.Greedy][pol]
		if len(runs) != sc.Volumes {
			t.Fatalf("%s: %d runs, want %d", pol, len(runs), sc.Volumes)
		}
		for i, r := range runs {
			if r.UserBlocks == 0 {
				t.Fatalf("%s volume %d never stored a result", pol, i)
			}
		}
	}
}
