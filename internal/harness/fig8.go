package harness

import (
	"fmt"
	"strings"

	"adapt/internal/lss"
	"adapt/internal/stats"
	"adapt/internal/workload"
)

// Fig8Row is one bar of Figure 8: a policy's overall WA plus the
// per-volume WA distribution under one suite and victim policy.
type Fig8Row struct {
	Profile   workload.Profile
	Victim    lss.VictimPolicy
	Policy    string
	OverallWA float64 // padding-inclusive, the paper's headline metric
	GCOnlyWA  float64 // (user+GC)/user, isolating GC efficiency
	PerVolume stats.FiveNum
}

// Fig8 renders the Figure 8 data from a computed grid.
func Fig8(g *Grid) []Fig8Row {
	var rows []Fig8Row
	for _, p := range g.Profiles {
		for _, v := range g.Victims {
			for _, pol := range g.Policies {
				rows = append(rows, Fig8Row{
					Profile:   p,
					Victim:    v,
					Policy:    pol,
					OverallWA: g.OverallWA(p, v, pol),
					GCOnlyWA:  g.OverallGCWA(p, v, pol),
					PerVolume: stats.Summarize(g.VolumeWAs(p, v, pol)),
				})
			}
		}
	}
	return rows
}

// Fig8Reductions reports ADAPT's overall-WA reduction versus each
// baseline — the headline percentages of §4.2.
func Fig8Reductions(g *Grid, p workload.Profile, v lss.VictimPolicy) map[string]float64 {
	adapt := g.OverallWA(p, v, PolicyADAPT)
	out := make(map[string]float64)
	for _, pol := range g.Policies {
		if pol == PolicyADAPT {
			continue
		}
		base := g.OverallWA(p, v, pol)
		if base > 0 {
			out[pol] = 100 * (base - adapt) / base
		}
	}
	return out
}

// RenderFig8 prints the full Figure 8 table.
func RenderFig8(rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString("Figure 8 — GC efficiency: overall WA and per-volume distribution\n")
	tb := stats.NewTable("suite", "victim", "policy", "overallWA", "gcWA", "median", "q1", "q3", "max", "outliers")
	for _, r := range rows {
		tb.AddRow(string(r.Profile), r.Victim.String(), r.Policy, r.OverallWA, r.GCOnlyWA,
			r.PerVolume.Median, r.PerVolume.Q1, r.PerVolume.Q3, r.PerVolume.Max,
			len(r.PerVolume.Outliers))
	}
	b.WriteString(tb.String())
	return b.String()
}

// Fig9Row is one series of Figure 9: the CDF of per-volume padding
// traffic ratios for one policy.
type Fig9Row struct {
	Profile workload.Profile
	Victim  lss.VictimPolicy
	Policy  string
	CDF     *stats.CDF
	// FracUnder25 is the fraction of volumes whose padding ratio stays
	// below 25% — the comparison the paper quotes for the Ali suite.
	FracUnder25 float64
}

// Fig9 renders Figure 9's padding CDFs from the grid.
func Fig9(g *Grid) []Fig9Row {
	var rows []Fig9Row
	for _, p := range g.Profiles {
		for _, v := range g.Victims {
			for _, pol := range g.Policies {
				ratios := g.VolumePaddingRatios(p, v, pol)
				cdf := stats.NewCDF(ratios)
				rows = append(rows, Fig9Row{
					Profile:     p,
					Victim:      v,
					Policy:      pol,
					CDF:         cdf,
					FracUnder25: cdf.At(0.25),
				})
			}
		}
	}
	return rows
}

// RenderFig9 prints the Figure 9 summary.
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString("Figure 9 — padding traffic ratio CDFs (per volume)\n")
	tb := stats.NewTable("suite", "victim", "policy", "p50 pad%", "p90 pad%", "max pad%", "vol<25%")
	for _, r := range rows {
		tb.AddRow(string(r.Profile), r.Victim.String(), r.Policy,
			100*r.CDF.Quantile(0.5), 100*r.CDF.Quantile(0.9), 100*r.CDF.Quantile(1),
			fmt.Sprintf("%.0f%%", 100*r.FracUnder25))
	}
	b.WriteString(tb.String())
	return b.String()
}

// Fig10Point is one volume in Figure 10's scatter: ADAPT's padding
// reduction versus its WA reduction relative to a baseline.
type Fig10Point struct {
	Volume           string
	PaddingReduction float64 // percent
	WAReduction      float64 // percent
}

// Fig10Result is the scatter against one baseline plus the
// correlation coefficient.
type Fig10Result struct {
	Baseline string
	Points   []Fig10Point
	Pearson  float64
}

// Fig10 computes the padding-vs-WA reduction correlation on the Ali
// suite with Greedy selection, comparing ADAPT against the two other
// lifespan-inference baselines (MiDA and SepBIT), as the paper does.
func Fig10(g *Grid) []Fig10Result {
	const profile = workload.ProfileAli
	const victim = lss.Greedy
	adaptRuns := g.Runs[profile][victim][PolicyADAPT]
	var out []Fig10Result
	for _, base := range []string{"mida", "sepbit"} {
		baseRuns, ok := g.Runs[profile][victim][base]
		if !ok {
			continue
		}
		res := Fig10Result{Baseline: base}
		var xs, ys []float64
		for i := range adaptRuns {
			a, b := adaptRuns[i], baseRuns[i]
			if b.PaddingBlocks == 0 || b.WA <= 0 {
				continue
			}
			padRed := 100 * float64(b.PaddingBlocks-a.PaddingBlocks) / float64(b.PaddingBlocks)
			waRed := 100 * (b.EffectiveWA - a.EffectiveWA) / b.EffectiveWA
			res.Points = append(res.Points, Fig10Point{
				Volume: a.Volume, PaddingReduction: padRed, WAReduction: waRed,
			})
			xs = append(xs, padRed)
			ys = append(ys, waRed)
		}
		res.Pearson = stats.Pearson(xs, ys)
		out = append(out, res)
	}
	return out
}

// RenderFig10 prints the correlation summary.
func RenderFig10(results []Fig10Result) string {
	var b strings.Builder
	b.WriteString("Figure 10 — padding reduction vs WA reduction (ADAPT vs baseline, Ali/Greedy)\n")
	tb := stats.NewTable("baseline", "volumes", "pearson r", "mean padRed%", "mean waRed%")
	for _, r := range results {
		var px, py float64
		for _, pt := range r.Points {
			px += pt.PaddingReduction
			py += pt.WAReduction
		}
		n := float64(len(r.Points))
		if n > 0 {
			px /= n
			py /= n
		}
		tb.AddRow(r.Baseline, len(r.Points), r.Pearson, px, py)
	}
	b.WriteString(tb.String())
	return b.String()
}
