package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/stats"
	"adapt/internal/workload"
)

// DensityLevel names the traffic intensities of Figure 11 (left).
type DensityLevel struct {
	Name    string
	MeanGap sim.Time
}

// DensityLevels returns the paper's light/medium/heavy intensities:
// light gaps exceed the 100 µs SLA window, heavy gaps are far below.
func DensityLevels() []DensityLevel {
	return []DensityLevel{
		{"light", 300 * sim.Microsecond},
		{"medium", 60 * sim.Microsecond},
		// Heavy must be dense enough that even a 6-way group split
		// fills 16-block chunks within the 100 µs window, which is
		// what lets every scheme escape padding (§4.3).
		{"heavy", 500 * sim.Nanosecond},
	}
}

// Fig11Cell is one point of Figure 11: a policy's WA under one
// workload setting.
type Fig11Cell struct {
	Policy  string
	Setting string
	WA      float64
	PadRat  float64
}

// Fig11Result holds both sweeps.
type Fig11Result struct {
	Density []Fig11Cell // WA vs access density (YCSB-A, θ=0.99)
	Skew    []Fig11Cell // WA vs zipfian α (medium density)
}

// Fig11 runs the sensitivity analysis: YCSB-A update-heavy workloads
// with the Greedy victim policy, sweeping access density and zipfian
// skew (§4.3).
func Fig11(sc Scale, policies []string) (*Fig11Result, error) {
	out := &Fig11Result{}
	type job struct {
		policy  string
		setting string
		gap     sim.Time
		theta   float64
		dest    *[]Fig11Cell
	}
	var jobs []job
	for _, lvl := range DensityLevels() {
		for _, pol := range policies {
			jobs = append(jobs, job{pol, lvl.Name, lvl.MeanGap, 0.99, &out.Density})
		}
	}
	for _, alpha := range []float64{0, 0.3, 0.6, 0.9, 0.99} {
		for _, pol := range policies {
			jobs = append(jobs, job{pol, fmt.Sprintf("a=%.2f", alpha), 60 * sim.Microsecond, alpha, &out.Skew})
		}
	}

	results := make([]Fig11Cell, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tr := workload.Generate(workload.YCSBConfig{
				Blocks:  sc.YCSBBlocks,
				Writes:  sc.YCSBWrites,
				Fill:    true,
				Theta:   j.theta,
				MeanGap: j.gap,
				Seed:    sc.Seed,
			})
			res, err := RunTrace(j.policy, tr, sc.YCSBBlocks, lss.Greedy)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = Fig11Cell{Policy: j.policy, Setting: j.setting, WA: res.EffectiveWA, PadRat: res.PaddingRatio}
		}(i, j)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fig11 %s/%s: %w", jobs[i].policy, jobs[i].setting, err)
		}
	}
	for i, j := range jobs {
		*j.dest = append(*j.dest, results[i])
	}
	return out, nil
}

// Render prints Figure 11 tables.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 11 — sensitivity: WA vs access density (left) and skew (right)\n")
	render := func(title string, cells []Fig11Cell) {
		fmt.Fprintf(&b, "%s:\n", title)
		tb := stats.NewTable("setting", "policy", "WA", "pad ratio")
		for _, c := range cells {
			tb.AddRow(c.Setting, c.Policy, c.WA, c.PadRat)
		}
		b.WriteString(tb.String())
	}
	render("access density (YCSB-A θ=0.99)", r.Density)
	render("workload skewness (medium density)", r.Skew)
	return b.String()
}
