package harness

import "testing"

// TestGCSchedModelAcceptance is the gate behind `make gcsched-smoke`:
// on the deterministic virtual-clock model (real stores, real pacer),
// background-paced GC must cut the client-observed p999 by at least
// 30% against the synchronous watermark baseline without giving up
// more than 2% write amplification, for every placement policy, at the
// experiment's default high-utilization operating point.
func TestGCSchedModelAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("model acceptance sweep is not a -short test")
	}
	sc := SmallScale()
	opts := DefaultGCSchedOptions(sc)
	for _, pol := range []string{"sepgc", "sepbit", PolicyADAPT} {
		syncRow, err := runGCSchedModel(sc, pol, opts, false)
		if err != nil {
			t.Fatalf("%s sync: %v", pol, err)
		}
		bgRow, err := runGCSchedModel(sc, pol, opts, true)
		if err != nil {
			t.Fatalf("%s background: %v", pol, err)
		}
		if syncRow.P999 <= 0 || syncRow.WA <= 1 {
			t.Fatalf("%s sync baseline is vacuous: %+v", pol, syncRow)
		}
		t.Logf("%s: p999 %v -> %v, WA %.3f -> %.3f, emergencies %d",
			pol, syncRow.P999, bgRow.P999, syncRow.WA, bgRow.WA, bgRow.EmergencyRuns)
		if float64(bgRow.P999) > 0.7*float64(syncRow.P999) {
			t.Errorf("%s: background p999 %v is not >=30%% below sync %v",
				pol, bgRow.P999, syncRow.P999)
		}
		if bgRow.WA > 1.02*syncRow.WA {
			t.Errorf("%s: background WA %.3f regresses >2%% over sync %.3f",
				pol, bgRow.WA, syncRow.WA)
		}
		if bgRow.EmergencyRuns > 2 {
			t.Errorf("%s: %d emergency cycles under paced GC; the pacer is not keeping up",
				pol, bgRow.EmergencyRuns)
		}
	}
}
