package harness

import (
	"fmt"
	"runtime"
	"sync"

	"adapt/internal/lss"
	"adapt/internal/workload"
)

// Grid holds the full experiment grid behind Figures 8–10: every
// (suite, victim policy, placement policy, volume) run.
type Grid struct {
	Scale    Scale
	Profiles []workload.Profile
	Victims  []lss.VictimPolicy
	Policies []string
	// Runs[profile][victim][policy] is one RunResult per volume.
	Runs map[workload.Profile]map[lss.VictimPolicy]map[string][]RunResult
}

// RunGrid executes the grid, parallelizing across independent runs.
func RunGrid(sc Scale, profiles []workload.Profile, victims []lss.VictimPolicy, policies []string) (*Grid, error) {
	g := &Grid{
		Scale:    sc,
		Profiles: profiles,
		Victims:  victims,
		Policies: policies,
		Runs:     make(map[workload.Profile]map[lss.VictimPolicy]map[string][]RunResult),
	}
	for _, p := range profiles {
		g.Runs[p] = make(map[lss.VictimPolicy]map[string][]RunResult)
		for _, v := range victims {
			g.Runs[p][v] = make(map[string][]RunResult)
			for _, pol := range policies {
				g.Runs[p][v][pol] = make([]RunResult, sc.Volumes)
			}
		}
	}

	type job struct {
		profile workload.Profile
		victim  lss.VictimPolicy
		policy  string
		volIdx  int
		vol     workload.Volume
	}
	var jobs []job
	for _, p := range profiles {
		suite := sc.Suite(p)
		for i, vol := range suite {
			for _, v := range victims {
				for _, pol := range policies {
					jobs = append(jobs, job{p, v, pol, i, vol})
				}
			}
		}
	}

	workers := runtime.NumCPU()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}
	// The channel is buffered with every job up front (no feeder
	// goroutine to block), so when a cell fails the remaining workers
	// drain their current job and stop at done — the error surfaces
	// promptly instead of after the whole grid.
	jobCh := make(chan job, len(jobs))
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	errCh := make(chan error, len(jobs))
	done := make(chan struct{})
	var stop sync.Once
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				select {
				case <-done:
					return
				default:
				}
				tr := j.vol.Generate()
				res, err := runTraceFn(j.policy, tr, j.vol.FootprintBlocks, j.victim)
				if err != nil {
					errCh <- fmt.Errorf("%s/%s/%s vol %d: %w",
						j.profile, j.victim, j.policy, j.volIdx, err)
					stop.Do(func() { close(done) })
					return
				}
				// Each job owns its Runs[p][v][pol][volIdx] slot
				// exclusively, so results are stored without locking.
				g.Runs[j.profile][j.victim][j.policy][j.volIdx] = res
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}
	return g, nil
}

// runTraceFn is RunTrace, swappable by tests to verify RunGrid's
// early-abort behavior.
var runTraceFn = RunTrace

// OverallWA aggregates a policy's write amplification across a suite
// as total array block traffic (user + GC rewrites + shadow copies +
// zero padding) over total user traffic — the paper's "overall WA"
// bar. Padding is included because the array writes it like any other
// data; §1 calls this the "actual write amplification ratio", and
// Figure 10's padding↔WA correlation only exists under this
// definition.
func (g *Grid) OverallWA(p workload.Profile, v lss.VictimPolicy, policy string) float64 {
	var user, total int64
	for _, r := range g.Runs[p][v][policy] {
		user += r.UserBlocks
		total += r.UserBlocks + r.GCBlocks + r.ShadowBlocks + r.PaddingBlocks
	}
	if user == 0 {
		return 1
	}
	return float64(total) / float64(user)
}

// OverallGCWA aggregates the GC-only write amplification
// ((user+GC)/user), the secondary metric that isolates garbage
// collection efficiency from padding.
func (g *Grid) OverallGCWA(p workload.Profile, v lss.VictimPolicy, policy string) float64 {
	var user, gc int64
	for _, r := range g.Runs[p][v][policy] {
		user += r.UserBlocks
		gc += r.GCBlocks
	}
	if user == 0 {
		return 1
	}
	return float64(user+gc) / float64(user)
}

// VolumeWAs returns the per-volume padding-inclusive WA distribution
// (the boxplots of Figure 8).
func (g *Grid) VolumeWAs(p workload.Profile, v lss.VictimPolicy, policy string) []float64 {
	runs := g.Runs[p][v][policy]
	out := make([]float64, len(runs))
	for i, r := range runs {
		out[i] = r.EffectiveWA
	}
	return out
}

// VolumePaddingRatios returns per-volume padding traffic ratios (the
// CDFs of Figure 9).
func (g *Grid) VolumePaddingRatios(p workload.Profile, v lss.VictimPolicy, policy string) []float64 {
	runs := g.Runs[p][v][policy]
	out := make([]float64, len(runs))
	for i, r := range runs {
		out[i] = r.PaddingRatio
	}
	return out
}
