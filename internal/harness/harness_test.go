package harness

import (
	"strings"
	"testing"
	"time"

	"adapt/internal/lss"
	"adapt/internal/workload"
)

// tinyScale keeps harness tests fast while still cycling GC.
func tinyScale() Scale {
	return Scale{
		Volumes:         3,
		VolumeBlocks:    4 << 10,
		OverwriteFactor: 3,
		YCSBBlocks:      4 << 10,
		YCSBWrites:      24 << 10,
		Seed:            1,
	}
}

func TestPolicyNamesIncludeADAPT(t *testing.T) {
	names := PolicyNames()
	if len(names) != 6 {
		t.Fatalf("%d policies, want 6", len(names))
	}
	if names[len(names)-1] != PolicyADAPT {
		t.Fatalf("last policy %q, want adapt", names[len(names)-1])
	}
}

func TestBuildPolicyAll(t *testing.T) {
	cfg := StoreConfig(8<<10, lss.Greedy)
	for _, name := range PolicyNames() {
		p, err := BuildPolicy(name, cfg)
		if err != nil {
			t.Fatalf("BuildPolicy(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy %q reports %q", name, p.Name())
		}
	}
	if _, err := BuildPolicy("bogus", cfg); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestStoreConfigScalesSegments(t *testing.T) {
	small := StoreConfig(4<<10, lss.Greedy)
	big := StoreConfig(1<<20, lss.Greedy)
	if small.SegmentChunks >= big.SegmentChunks {
		t.Fatalf("segment scaling wrong: %d vs %d", small.SegmentChunks, big.SegmentChunks)
	}
	if small.ChunkBlocks != 16 || small.BlockSize != 4096 {
		t.Fatal("paper geometry changed")
	}
}

func TestRunTraceProducesSaneResult(t *testing.T) {
	sc := tinyScale()
	vol := sc.Suite(workload.ProfileAli)[0]
	tr := vol.Generate()
	res, err := RunTrace("sepgc", tr, vol.FootprintBlocks, lss.Greedy)
	if err != nil {
		t.Fatal(err)
	}
	if res.WA < 1 || res.WA > 20 {
		t.Fatalf("implausible WA %f", res.WA)
	}
	if res.PaddingRatio < 0 || res.PaddingRatio >= 1 {
		t.Fatalf("implausible padding ratio %f", res.PaddingRatio)
	}
	if res.UserBlocks == 0 {
		t.Fatal("no user traffic recorded")
	}
}

func TestFig2Shapes(t *testing.T) {
	sc := tinyScale()
	sc.Volumes = 8
	results := Fig2(sc, workload.Profiles())
	if len(results) != 3 {
		t.Fatalf("%d profiles", len(results))
	}
	for _, r := range results {
		if r.RateCDF.Len() != 8 {
			t.Fatalf("%s: rate CDF over %d volumes", r.Profile, r.RateCDF.Len())
		}
		if r.FracWritesLE8KiB < 0.5 {
			t.Errorf("%s: small-write fraction %.2f too low", r.Profile, r.FracWritesLE8KiB)
		}
		if out := r.Render(); !strings.Contains(out, "Figure 2") {
			t.Error("render missing header")
		}
	}
}

func TestFig3ObservationsHold(t *testing.T) {
	sc := tinyScale()
	results, err := Fig3(sc, []string{"sepgc", "mida"})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig3Result{}
	for _, r := range results {
		byName[r.Policy] = r
	}
	sep := byName["sepgc"]
	// Observation 2: SepGC padding concentrates in the user group (0).
	if g1 := sep.Groups[1]; g1.PaddingBlocks > sep.Groups[0].PaddingBlocks/10+1 {
		t.Errorf("GC group padding %d not ≪ user group padding %d",
			g1.PaddingBlocks, sep.Groups[0].PaddingBlocks)
	}
	// Observation 3: MiDA spreads user writes across multiple groups.
	if byName["mida"].UserGroupCount() < 2 {
		t.Error("MiDA user writes confined to one group")
	}
	if out := sep.Render(); !strings.Contains(out, "sepgc") {
		t.Error("render missing policy name")
	}
}

func TestGridAndFig8910(t *testing.T) {
	sc := tinyScale()
	grid, err := RunGrid(sc,
		[]workload.Profile{workload.ProfileAli},
		[]lss.VictimPolicy{lss.Greedy},
		[]string{"sepgc", "mida", "sepbit", PolicyADAPT})
	if err != nil {
		t.Fatal(err)
	}
	rows := Fig8(grid)
	if len(rows) != 4 {
		t.Fatalf("%d fig8 rows", len(rows))
	}
	for _, r := range rows {
		if r.OverallWA < 1 {
			t.Fatalf("%s WA %f < 1", r.Policy, r.OverallWA)
		}
	}
	if out := RenderFig8(rows); !strings.Contains(out, "adapt") {
		t.Error("fig8 render missing adapt")
	}

	f9 := Fig9(grid)
	for _, r := range f9 {
		if r.CDF.Len() != sc.Volumes {
			t.Fatalf("fig9 CDF has %d points", r.CDF.Len())
		}
	}
	if out := RenderFig9(f9); !strings.Contains(out, "Figure 9") {
		t.Error("fig9 render broken")
	}

	f10 := Fig10(grid)
	if len(f10) != 2 {
		t.Fatalf("%d fig10 baselines", len(f10))
	}
	for _, r := range f10 {
		if len(r.Points) == 0 {
			t.Fatalf("fig10 %s has no points", r.Baseline)
		}
	}
	if out := RenderFig10(f10); !strings.Contains(out, "pearson") {
		t.Error("fig10 render broken")
	}

	// The headline claim at tiny scale: ADAPT's overall WA must not be
	// the worst, and reductions versus at least one baseline positive.
	reds := Fig8Reductions(grid, workload.ProfileAli, lss.Greedy)
	anyPositive := false
	for _, v := range reds {
		if v > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Errorf("ADAPT reduced WA against no baseline: %v", reds)
	}
}

func TestFig11RunsAllCells(t *testing.T) {
	sc := tinyScale()
	res, err := Fig11(sc, []string{"sepgc", PolicyADAPT})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Density) != 3*2 {
		t.Fatalf("%d density cells", len(res.Density))
	}
	if len(res.Skew) != 5*2 {
		t.Fatalf("%d skew cells", len(res.Skew))
	}
	if out := res.Render(); !strings.Contains(out, "sensitivity") {
		t.Error("fig11 render broken")
	}
	// Density monotonicity for a given policy: heavy traffic must not
	// produce more padding than light traffic.
	byKey := map[string]Fig11Cell{}
	for _, c := range res.Density {
		byKey[c.Policy+"/"+c.Setting] = c
	}
	for _, pol := range []string{"sepgc", PolicyADAPT} {
		light, heavy := byKey[pol+"/light"], byKey[pol+"/heavy"]
		if heavy.PadRat > light.PadRat+1e-9 {
			t.Errorf("%s: heavy pad ratio %.3f exceeds light %.3f",
				pol, heavy.PadRat, light.PadRat)
		}
	}
}

func TestFig12SmallRun(t *testing.T) {
	sc := tinyScale()
	opts := Fig12Options{
		ClientCounts:  []int{1, 2},
		Ops:           8 << 10,
		ServiceTime:   2 * time.Microsecond,
		MemoryBlocks:  []int64{4 << 10, 16 << 10},
		MemoryWarmOps: 8 << 10,
	}
	res, err := Fig12(sc, []string{"sepbit", PolicyADAPT}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Throughput) != 4 {
		t.Fatalf("%d throughput rows", len(res.Throughput))
	}
	for _, r := range res.Throughput {
		if r.OpsPerSec <= 0 {
			t.Fatalf("%s/%d: zero throughput", r.Policy, r.Clients)
		}
	}
	if len(res.Memory) != 2 {
		t.Fatalf("%d memory rows", len(res.Memory))
	}
	for _, r := range res.Memory {
		if r.ADAPTBytes <= r.SepBITBytes {
			t.Fatalf("ADAPT memory %d not above SepBIT %d (sampler+ghosts missing?)",
				r.ADAPTBytes, r.SepBITBytes)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Figure 12a") {
		t.Error("fig12 render broken")
	}
}
