package harness

import (
	"fmt"
	"sort"
	"strings"

	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
	"adapt/internal/trace"
	"adapt/internal/workload"
)

// TelemetryRun replays the YCSB-A sensitivity workload (medium
// density, zipfian 0.99) through one policy with telemetry attached
// and returns the populated set alongside the usual run summary. The
// recorder windows on trace time; the tracer holds the tail of the
// GC/flush/padding event stream.
func TelemetryRun(sc Scale, policy string, opts telemetry.Options) (*telemetry.Set, RunResult, error) {
	tr := workload.Generate(workload.YCSBConfig{
		Blocks:  sc.YCSBBlocks,
		Writes:  sc.YCSBWrites,
		Fill:    true,
		Theta:   0.99,
		MeanGap: 60 * sim.Microsecond,
		Seed:    sc.Seed,
	})
	cfg := StoreConfig(sc.YCSBBlocks, lss.Greedy)
	pol, err := BuildPolicy(policy, cfg)
	if err != nil {
		return nil, RunResult{}, err
	}
	ts := telemetry.New(opts)
	store := lss.New(cfg, pol, lss.Deps{Telemetry: ts})
	if p, ok := pol.(interface {
		SetTelemetry(*telemetry.Set)
	}); ok {
		p.SetTelemetry(ts)
	}
	if err := trace.Replay(store, tr); err != nil {
		return nil, RunResult{}, fmt.Errorf("telemetry run %s: %w", policy, err)
	}
	m := store.Metrics()
	pg := make([]lss.GroupMetrics, len(m.PerGroup))
	copy(pg, m.PerGroup)
	return ts, RunResult{
		Policy:            policy,
		Victim:            lss.Greedy,
		Volume:            tr.Name,
		WA:                m.WA(),
		EffectiveWA:       m.EffectiveWA(),
		PaddingRatio:      m.PaddingRatio(),
		UserBlocks:        m.UserBlocks,
		GCBlocks:          m.GCBlocks,
		ShadowBlocks:      m.ShadowBlocks,
		PaddingBlocks:     m.PaddingBlocks,
		SegmentsReclaimed: m.SegmentsReclaimed,
		PerGroup:          pg,
	}, nil
}

// RenderWindows renders a time-series table from recorder windows (or
// windows replayed from a JSONL dump): per-window write mix, derived
// WA, effective WA, padding ratio, and GC activity.
func RenderWindows(title string, ws []telemetry.Window) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s %12s %12s %8s %8s %8s %8s %6s %7s %6s %5s\n",
		"win", "start(ms)", "end(ms)", "user", "gc", "shadow", "pad", "wa", "eff-wa", "pad%", "gcs")
	delta := func(w *telemetry.Window, name string) int64 {
		v, _ := w.Delta(name)
		return v
	}
	var user, gc, shadow, pad, gcs int64
	for i := range ws {
		w := &ws[i]
		d := telemetry.Derive(w)
		fmt.Fprintf(&b, "%-6d %12.2f %12.2f %8d %8d %8d %8d %6.2f %7.2f %5.1f%% %5d\n",
			w.Index,
			float64(w.Start)/float64(sim.Millisecond),
			float64(w.End)/float64(sim.Millisecond),
			delta(w, telemetry.MetricUserBlocks),
			delta(w, telemetry.MetricGCBlocks),
			delta(w, telemetry.MetricShadowBlocks),
			delta(w, telemetry.MetricPaddingBlocks),
			d.WA, d.EffectiveWA, 100*d.PaddingRatio, d.GCCycles)
		user += delta(w, telemetry.MetricUserBlocks)
		gc += delta(w, telemetry.MetricGCBlocks)
		shadow += delta(w, telemetry.MetricShadowBlocks)
		pad += delta(w, telemetry.MetricPaddingBlocks)
		gcs += d.GCCycles
	}
	// Integrate the windows back into run totals: the sums must agree
	// with the end-of-run Metrics (the telemetry tests assert this).
	total := telemetry.Window{
		Names: []string{
			telemetry.MetricGCBlocks, telemetry.MetricPaddingBlocks,
			telemetry.MetricShadowBlocks, telemetry.MetricUserBlocks,
		},
		Deltas: []int64{gc, pad, shadow, user},
	}
	d := telemetry.Derive(&total)
	fmt.Fprintf(&b, "%-6s %12s %12s %8d %8d %8d %8d %6.2f %7.2f %5.1f%% %5d\n",
		"total", "", "", user, gc, shadow, pad, d.WA, d.EffectiveWA, 100*d.PaddingRatio, gcs)
	return b.String()
}

// RenderEventSummary renders per-type counts of the traced events,
// noting how many older events the bounded ring dropped.
func RenderEventSummary(tr *telemetry.Tracer) string {
	if tr == nil {
		return "telemetry: no tracer attached\n"
	}
	events := tr.Events()
	counts := make(map[telemetry.EventType]int)
	for i := range events {
		counts[events[i].Type]++
	}
	types := make([]telemetry.EventType, 0, len(counts))
	for t := range counts {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "events retained: %d (dropped %d oldest)\n", len(events), tr.Dropped())
	for _, t := range types {
		fmt.Fprintf(&b, "  %-16s %d\n", t, counts[t])
	}
	return b.String()
}
