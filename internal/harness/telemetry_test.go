package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// TestTelemetryIntegratesToRunTotals is the telemetry acceptance
// check: the per-window deltas of a telemetry-enabled run — exported
// to JSONL and read back — must sum exactly to the end-of-run Metrics
// totals, and the WA/padding ratio recomputed from those sums must
// match the store's own derivations.
func TestTelemetryIntegratesToRunTotals(t *testing.T) {
	sc := SmallScale()
	sc.YCSBWrites = 32 << 10 // keep the test quick; GC still activates
	ts, res, err := TelemetryRun(sc, PolicyADAPT, telemetry.Options{
		WindowInterval: 10 * sim.Millisecond,
		MaxWindows:     1 << 20, // keep every window so the sums are total
	})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Recorder.Dropped() != 0 {
		t.Fatalf("windows dropped (%d): bound too small for the run", ts.Recorder.Dropped())
	}
	ws := ts.Recorder.Windows()
	if len(ws) < 10 {
		t.Fatalf("only %d windows; expected a real time-series", len(ws))
	}

	// Round-trip through the JSONL exporter, as the harness would.
	var buf bytes.Buffer
	if err := telemetry.WriteWindowsJSONL(&buf, ws); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadWindowsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}

	sum := func(name string) int64 {
		var s int64
		for i := range back {
			d, _ := back[i].Delta(name)
			s += d
		}
		return s
	}
	checks := []struct {
		name string
		want int64
	}{
		{telemetry.MetricUserBlocks, res.UserBlocks},
		{telemetry.MetricGCBlocks, res.GCBlocks},
		{telemetry.MetricShadowBlocks, res.ShadowBlocks},
		{telemetry.MetricPaddingBlocks, res.PaddingBlocks},
		{telemetry.MetricSegmentsReclaimed, res.SegmentsReclaimed},
	}
	for _, c := range checks {
		if got := sum(c.name); got != c.want {
			t.Errorf("Σ windows %s = %d, run total %d", c.name, got, c.want)
		}
	}

	// The ratios recomputed from integrated windows must agree with the
	// store's own end-of-run derivations.
	user := float64(sum(telemetry.MetricUserBlocks))
	gc := float64(sum(telemetry.MetricGCBlocks))
	all := user + gc + float64(sum(telemetry.MetricShadowBlocks)) + float64(sum(telemetry.MetricPaddingBlocks))
	if wa := (user + gc) / user; math.Abs(wa-res.WA) > 1e-9 {
		t.Errorf("integrated WA %.6f, run WA %.6f", wa, res.WA)
	}
	if eff := all / user; math.Abs(eff-res.EffectiveWA) > 1e-9 {
		t.Errorf("integrated effective WA %.6f, run %.6f", eff, res.EffectiveWA)
	}
	if pr := float64(sum(telemetry.MetricPaddingBlocks)) / all; math.Abs(pr-res.PaddingRatio) > 1e-9 {
		t.Errorf("integrated padding ratio %.6f, run %.6f", pr, res.PaddingRatio)
	}

	// The last window's cumulative values are the run totals directly.
	last := &back[len(back)-1]
	if v, _ := last.Value(telemetry.MetricUserBlocks); v != res.UserBlocks {
		t.Errorf("final cumulative user blocks %d, want %d", v, res.UserBlocks)
	}

	// Windows must be disjoint and ordered on the trace clock.
	for i := 1; i < len(back); i++ {
		if back[i].Start < back[i-1].End {
			t.Fatalf("window %d overlaps previous: [%v,%v) after [%v,%v)",
				i, back[i].Start, back[i].End, back[i-1].Start, back[i-1].End)
		}
	}

	// The event stream saw GC both start and finish, and the ADAPT
	// policy traced at least one threshold adoption.
	var starts, ends, adapts int
	for _, e := range ts.Tracer.Events() {
		switch e.Type {
		case telemetry.EvGCStart:
			starts++
		case telemetry.EvGCEnd:
			ends++
		case telemetry.EvThresholdAdapt:
			adapts++
		}
	}
	if starts == 0 || starts != ends {
		t.Errorf("gc events unbalanced: %d starts, %d ends", starts, ends)
	}
	if res.GCBlocks == 0 {
		t.Error("run produced no GC traffic; test workload too small")
	}
}

func TestRenderWindowsAndEvents(t *testing.T) {
	sc := SmallScale()
	sc.YCSBWrites = 8 << 10
	ts, _, err := TelemetryRun(sc, "sepgc", telemetry.Options{WindowInterval: 20 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderWindows("test", ts.Recorder.Windows())
	if !strings.Contains(out, "eff-wa") || !strings.Contains(out, "total") {
		t.Fatalf("table missing header or total row:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines < 4 {
		t.Fatalf("suspiciously short table (%d lines):\n%s", lines, out)
	}
	ev := RenderEventSummary(ts.Tracer)
	if !strings.Contains(ev, "chunk_flush") || !strings.Contains(ev, "events retained") {
		t.Fatalf("event summary incomplete:\n%s", ev)
	}
	if got := RenderEventSummary(nil); !strings.Contains(got, "no tracer") {
		t.Fatalf("nil tracer rendering: %q", got)
	}
}
