package harness

import (
	"fmt"
	"strings"
	"time"

	"adapt/internal/prototype"
	"adapt/internal/sim"
	"adapt/internal/stats"
)

// FaultOptions sizes the degraded-mode prototype experiment: one run
// per policy with a device failure partway through, so each run passes
// through the healthy, degraded, rebuilding, and rebuilt phases.
type FaultOptions struct {
	// Blocks is the store footprint; Ops the user writes per run.
	Blocks int64
	Ops    int64
	// Clients is the writer-goroutine count.
	Clients int
	// ReadRatio interleaves reads, which is what makes degraded reads
	// (reconstruction fan-out) visible.
	ReadRatio float64
	// ServiceTime is the modelled per-chunk device time.
	ServiceTime time.Duration
	// FailDevice is the column killed in every run; FailAtFrac places
	// the failure at this fraction of Ops and RebuildDelayFrac delays
	// the rebuild by that further fraction.
	FailDevice       int
	FailAtFrac       float64
	RebuildDelayFrac float64
	// QueueTimeout bounds one queue-send attempt before retry/backoff.
	QueueTimeout time.Duration
}

// DefaultFaultOptions sizes the experiment for the given scale: the
// failure fires a third of the way in and the rebuild starts after a
// further 15% of the run, leaving room for every phase to accumulate
// ops.
func DefaultFaultOptions(sc Scale) FaultOptions {
	return FaultOptions{
		Blocks:           sc.YCSBBlocks / 4,
		Ops:              2 * sc.YCSBBlocks,
		Clients:          4,
		ReadRatio:        0.2,
		ServiceTime:      5 * time.Microsecond,
		FailDevice:       1,
		FailAtFrac:       0.33,
		RebuildDelayFrac: 0.15,
		QueueTimeout:     500 * time.Microsecond,
	}
}

// FaultRow is one policy × phase cell of the degraded-mode table.
type FaultRow struct {
	Policy    string
	Phase     prototype.Phase
	Ops       int64
	OpsPerSec float64
	WA        float64
	P99       time.Duration
}

// FaultCounters aggregates one policy's fault-path accounting.
type FaultCounters struct {
	Policy        string
	DegradedReads int64
	RebuildChunks int64
	LostChunks    int64
	QueueRetries  int64
}

// FaultResult holds the degraded-mode experiment output.
type FaultResult struct {
	Rows     []FaultRow
	Counters []FaultCounters
}

// ExpFault runs the fault-injection experiment: every policy suffers
// the same device failure at the same op, and the per-phase
// throughput, write amplification, and P99 latency are tabulated
// against the healthy phase of the same run.
func ExpFault(sc Scale, policies []string, opts FaultOptions) (*FaultResult, error) {
	if opts.Blocks <= 0 {
		opts.Blocks = sc.YCSBBlocks / 4
	}
	if opts.Ops <= 0 {
		opts.Ops = 2 * sc.YCSBBlocks
	}
	failOp := int64(opts.FailAtFrac * float64(opts.Ops))
	if failOp < 1 {
		failOp = 1
	}
	out := &FaultResult{}
	for _, polName := range policies {
		cfg := StoreConfig(opts.Blocks, 0)
		cfg.SLAWindow = 100 * sim.Microsecond
		pol, err := BuildPolicy(polName, cfg)
		if err != nil {
			return nil, err
		}
		res, err := prototype.Run(prototype.Config{
			Store:       cfg,
			Policy:      pol,
			Clients:     opts.Clients,
			Ops:         opts.Ops,
			Theta:       0.99,
			Fill:        true,
			ReadRatio:   opts.ReadRatio,
			ServiceTime: opts.ServiceTime,
			QueueDepth:  8,
			Seed:        sc.Seed,
			Fault: prototype.FaultConfig{
				FailDevice:      opts.FailDevice,
				FailAtOp:        failOp,
				RebuildDelayOps: int64(opts.RebuildDelayFrac * float64(opts.Ops)),
				QueueTimeout:    opts.QueueTimeout,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("fault %s: %w", polName, err)
		}
		for _, ps := range res.Phases {
			out.Rows = append(out.Rows, FaultRow{
				Policy:    polName,
				Phase:     ps.Phase,
				Ops:       ps.Ops,
				OpsPerSec: ps.OpsPerSec,
				WA:        ps.WA,
				P99:       ps.P99,
			})
		}
		out.Counters = append(out.Counters, FaultCounters{
			Policy:        polName,
			DegradedReads: res.DegradedReads,
			RebuildChunks: res.RebuildChunks,
			LostChunks:    res.LostChunks,
			QueueRetries:  res.QueueRetries,
		})
	}
	return out, nil
}

// Render prints the per-phase table and the fault counters.
func (r *FaultResult) Render() string {
	var b strings.Builder
	b.WriteString("Fault injection — per-phase prototype performance (YCSB-A)\n")
	tb := stats.NewTable("policy", "phase", "ops", "ops/s", "WA", "p99")
	for _, row := range r.Rows {
		tb.AddRow(row.Policy, row.Phase.String(), row.Ops, row.OpsPerSec, row.WA,
			row.P99.Round(time.Microsecond))
	}
	b.WriteString(tb.String())
	b.WriteString("Fault counters per policy\n")
	tb = stats.NewTable("policy", "degraded-reads", "rebuild-chunks", "lost-chunks", "queue-retries")
	for _, c := range r.Counters {
		tb.AddRow(c.Policy, c.DegradedReads, c.RebuildChunks, c.LostChunks, c.QueueRetries)
	}
	b.WriteString(tb.String())
	return b.String()
}
