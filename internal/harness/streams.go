package harness

import (
	"fmt"
	"strings"

	"adapt/internal/ftl"
	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/stats"
	"adapt/internal/trace"
	"adapt/internal/workload"
)

// StreamsRow reports the in-device write amplification of one policy
// with and without group→stream mapping (§3.1's multi-stream claim).
type StreamsRow struct {
	Policy       string
	SingleWA     float64 // all chunks on one stream
	MultiWA      float64 // one stream per group
	ReductionPct float64
}

// ExpStreams replays a YCSB-A workload through each policy twice —
// once feeding a single-stream SSD model, once with groups mapped to
// device streams one-to-one — and reports the device-internal WA.
// Chunk writes address the device at the array's physical segment
// locations, so segment reuse produces page invalidations exactly as
// the real device would see them.
func ExpStreams(sc Scale, policies []string) ([]StreamsRow, error) {
	rows := make([]StreamsRow, 0, len(policies))
	for _, polName := range policies {
		waOf := func(multi bool) (float64, error) {
			cfg := StoreConfig(sc.YCSBBlocks, lss.Greedy)
			pol, err := BuildPolicy(polName, cfg)
			if err != nil {
				return 0, err
			}
			store := lss.New(cfg, pol)
			segPages := int64(cfg.SegmentBlocks())
			streams := 1
			if multi {
				streams = pol.Groups()
			}
			dev := ftl.NewDevice(ftl.Config{
				UserPages:     int64(store.TotalSegments()) * segPages,
				PagesPerBlock: 256,
				OverProvision: 0.07,
				Streams:       streams,
			})
			var sinkErr error
			store.Reconfigure(func(r *lss.Runtime) {
				r.Sink = func(w lss.ChunkWrite) {
					base := int64(w.Segment)*segPages + int64(w.Chunk)*int64(cfg.ChunkBlocks)
					for p := int64(0); p < int64(cfg.ChunkBlocks); p++ {
						if err := dev.Write(base+p, int(w.Group)); err != nil && sinkErr == nil {
							sinkErr = err
						}
					}
				}
			})
			tr := workload.Generate(workload.YCSBConfig{
				Blocks:  sc.YCSBBlocks,
				Writes:  sc.YCSBWrites,
				Fill:    true,
				Theta:   0.99,
				MeanGap: 60 * sim.Microsecond,
				Seed:    sc.Seed,
			})
			for i := range tr.Records {
				r := &tr.Records[i]
				if r.Op != trace.OpWrite {
					continue
				}
				lba := r.Offset / int64(cfg.BlockSize)
				blocks := int((r.Size + int64(cfg.BlockSize) - 1) / int64(cfg.BlockSize))
				if err := store.Write(lba, blocks, r.Time); err != nil {
					return 0, err
				}
			}
			store.Drain(store.Now() + sim.Second)
			if sinkErr != nil {
				return 0, sinkErr
			}
			return dev.Metrics().WA(), nil
		}
		single, err := waOf(false)
		if err != nil {
			return nil, fmt.Errorf("streams %s single: %w", polName, err)
		}
		multi, err := waOf(true)
		if err != nil {
			return nil, fmt.Errorf("streams %s multi: %w", polName, err)
		}
		row := StreamsRow{Policy: polName, SingleWA: single, MultiWA: multi}
		if single > 0 {
			row.ReductionPct = 100 * (single - multi) / single
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderStreams prints the multi-stream experiment table.
func RenderStreams(rows []StreamsRow) string {
	var b strings.Builder
	b.WriteString("Extension — in-device WA with group→stream mapping (§3.1)\n")
	tb := stats.NewTable("policy", "singleStreamWA", "multiStreamWA", "reduction%")
	for _, r := range rows {
		tb.AddRow(r.Policy, r.SingleWA, r.MultiWA, r.ReductionPct)
	}
	b.WriteString(tb.String())
	return b.String()
}
