package harness

import (
	"fmt"
	"strings"

	"adapt/internal/lss"
	"adapt/internal/stats"
	"adapt/internal/workload"
)

// Fig3Group is the traffic breakdown of one group under one policy.
type Fig3Group struct {
	Group         int
	UserBlocks    int64
	GCBlocks      int64
	ShadowBlocks  int64
	PaddingBlocks int64
	Sealed        int64 // group size proxy: segments sealed
}

// Total returns the group's total block traffic.
func (g Fig3Group) Total() int64 {
	return g.UserBlocks + g.GCBlocks + g.ShadowBlocks + g.PaddingBlocks
}

// Fig3Result is Figure 3 for one policy: per-group write-traffic
// distribution (a) and group sizes (b), aggregated over the suite.
type Fig3Result struct {
	Policy string
	Groups []Fig3Group
}

// Fig3 replays the Alibaba-profile suite (the paper's motivation
// analysis) with the Greedy victim policy and reports per-group
// traffic splits and sizes for each placement policy.
func Fig3(sc Scale, policies []string) ([]Fig3Result, error) {
	suite := sc.Suite(workload.ProfileAli)
	out := make([]Fig3Result, 0, len(policies))
	for _, pol := range policies {
		var groups []Fig3Group
		for _, vol := range suite {
			tr := vol.Generate()
			res, err := RunTrace(pol, tr, vol.FootprintBlocks, lss.Greedy)
			if err != nil {
				return nil, err
			}
			if groups == nil {
				groups = make([]Fig3Group, len(res.PerGroup))
				for i := range groups {
					groups[i].Group = i
				}
			}
			for i, gm := range res.PerGroup {
				groups[i].UserBlocks += gm.UserBlocks
				groups[i].GCBlocks += gm.GCBlocks
				groups[i].ShadowBlocks += gm.ShadowBlocks
				groups[i].PaddingBlocks += gm.PaddingBlocks
				groups[i].Sealed += gm.Sealed
			}
		}
		out = append(out, Fig3Result{Policy: pol, Groups: groups})
	}
	return out, nil
}

// PaddingShareOfTotal returns padding traffic as a fraction of the
// policy's total write volume (the estimate used in Observation 3).
func (r Fig3Result) PaddingShareOfTotal() float64 {
	var pad, total int64
	for _, g := range r.Groups {
		pad += g.PaddingBlocks
		total += g.Total()
	}
	if total == 0 {
		return 0
	}
	return float64(pad) / float64(total)
}

// UserGroupCount returns how many groups received user writes — the
// paper's Observation 3 links this to padding overhead.
func (r Fig3Result) UserGroupCount() int {
	n := 0
	for _, g := range r.Groups {
		if g.UserBlocks > 0 {
			n++
		}
	}
	return n
}

// GCGroupCapacityShare returns the fraction of sealed segments that
// belong to groups dominated by GC traffic (Observation 4).
func (r Fig3Result) GCGroupCapacityShare() float64 {
	var gcSealed, total int64
	for _, g := range r.Groups {
		total += g.Sealed
		if g.GCBlocks > g.UserBlocks {
			gcSealed += g.Sealed
		}
	}
	if total == 0 {
		return 0
	}
	return float64(gcSealed) / float64(total)
}

// Render prints Figure 3 style tables.
func (r Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — %s: per-group traffic and sizes (Ali profile, Greedy)\n", r.Policy)
	tb := stats.NewTable("group", "user%", "gc%", "shadow%", "padding%", "blocks", "segments")
	for _, g := range r.Groups {
		tot := g.Total()
		pct := func(x int64) float64 {
			if tot == 0 {
				return 0
			}
			return 100 * float64(x) / float64(tot)
		}
		tb.AddRow(g.Group, pct(g.UserBlocks), pct(g.GCBlocks), pct(g.ShadowBlocks),
			pct(g.PaddingBlocks), tot, g.Sealed)
	}
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "padding share of total traffic: %.1f%%  user groups: %d  GC capacity share: %.1f%%\n",
		100*r.PaddingShareOfTotal(), r.UserGroupCount(), 100*r.GCGroupCapacityShare())
	return b.String()
}
