package harness

import (
	"fmt"
	"strings"

	"adapt/internal/stats"
	"adapt/internal/trace"
	"adapt/internal/workload"
)

// Fig2Result characterizes a workload suite: the cumulative
// distributions of per-volume request rate (Figure 2a) and of write
// request size (Figure 2b), plus the headline fractions the paper
// quotes in Observation 1.
type Fig2Result struct {
	Profile workload.Profile

	RateCDF      *stats.CDF // per-volume mean request rate (req/s)
	WriteSizeCDF *stats.CDF // per-write request size (KiB)

	FracVolumesUnder10 float64 // volumes below 10 req/s
	FracVolumesOver100 float64 // volumes above 100 req/s
	FracWritesLE8KiB   float64 // writes no larger than 8 KiB
	FracWritesGT32KiB  float64 // writes above 32 KiB
	Volumes            int
	Writes             int
}

// Fig2 synthesizes each profile's suite and computes Figure 2's
// distributions from the generated traces.
func Fig2(sc Scale, profiles []workload.Profile) []Fig2Result {
	out := make([]Fig2Result, 0, len(profiles))
	for _, p := range profiles {
		suite := sc.Suite(p)
		var rates []float64
		var sizes []float64
		under10, over100 := 0, 0
		le8, gt32 := 0, 0
		for _, vol := range suite {
			tr := vol.Generate()
			st := tr.Analyze(vol.BlockSize)
			rates = append(rates, st.ReqPerSec)
			if st.ReqPerSec < 10 {
				under10++
			}
			if st.ReqPerSec > 100 {
				over100++
			}
			for _, r := range tr.Records {
				if r.Op != trace.OpWrite {
					continue
				}
				sizes = append(sizes, float64(r.Size)/1024)
				if r.Size <= 8<<10 {
					le8++
				}
				if r.Size > 32<<10 {
					gt32++
				}
			}
		}
		res := Fig2Result{
			Profile:      p,
			RateCDF:      stats.NewCDF(rates),
			WriteSizeCDF: stats.NewCDF(sizes),
			Volumes:      len(suite),
			Writes:       len(sizes),
		}
		if len(suite) > 0 {
			res.FracVolumesUnder10 = float64(under10) / float64(len(suite))
			res.FracVolumesOver100 = float64(over100) / float64(len(suite))
		}
		if len(sizes) > 0 {
			res.FracWritesLE8KiB = float64(le8) / float64(len(sizes))
			res.FracWritesGT32KiB = float64(gt32) / float64(len(sizes))
		}
		out = append(out, res)
	}
	return out
}

// Render prints the Figure 2 summary table and CDF series.
func (r Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — workload characterization: %s (%d volumes, %d writes)\n",
		r.Profile, r.Volumes, r.Writes)
	fmt.Fprintf(&b, "  volumes < 10 req/s: %.1f%%   volumes > 100 req/s: %.1f%%\n",
		100*r.FracVolumesUnder10, 100*r.FracVolumesOver100)
	fmt.Fprintf(&b, "  writes ≤ 8 KiB: %.1f%%   writes > 32 KiB: %.1f%%\n",
		100*r.FracWritesLE8KiB, 100*r.FracWritesGT32KiB)
	tb := stats.NewTable("percentile", "req/s", "write KiB")
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		tb.AddRow(fmt.Sprintf("p%.0f", q*100), r.RateCDF.Quantile(q), r.WriteSizeCDF.Quantile(q))
	}
	b.WriteString(tb.String())
	return b.String()
}
