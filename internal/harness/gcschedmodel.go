package harness

import (
	"fmt"
	"math"
	"sort"
	"time"

	"adapt/internal/gcsched"
	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/stats"
	"adapt/internal/workload"
)

// The modelled half of the gcsched experiment: a deterministic
// virtual-clock replay of the same sync-versus-background comparison
// the live serving stack runs in wall time. The stores and the pacer
// are the real implementations — real watermark triggers, real victim
// selection, real micro-slice pacing, real emergency floor — only the
// clock and the engine lock are modelled, so the tail numbers are
// exactly reproducible instead of riding on host scheduling noise.
//
// The lock model is a single server: ops and GC slices serialize on
// it in virtual time. The only GC cost charged inline is the honest
// one — the chunk *read* half of each relocation (the rewritten chunk
// is dispatched to a device queue asynchronously, exactly as the
// prototype engine does), plus a fixed per-op critical section. A
// synchronous watermark cycle therefore stalls the triggering op (and
// everything queued behind it) for its whole relocation read bill,
// while a paced run bounds any single lock hold to one micro-slice:
// the pacer yields the lock as soon as an op arrives.

// gcModel is the shared virtual-clock state the pacer's shard wrapper
// needs to charge its slices against.
type gcModel struct {
	busy    sim.Time // lock free-at cursor
	tickAt  sim.Time // virtual time of the tick being processed
	cutoff  sim.Time // next op arrival: slices past this yield
	perUnit sim.Time // inline cost of one relocation work unit
	epsilon sim.Time // cost of a slice that only scanned
}

// modelShard adapts a real store to gcsched.Shard, advancing the
// virtual lock cursor by the relocation work each micro-slice did.
type modelShard struct {
	store *lss.Store
	m     *gcModel
}

func (ms *modelShard) GCNeeded() bool     { return ms.store.GCNeeded() }
func (ms *modelShard) GCUrgency() float64 { return ms.store.GCUrgency() }
func (ms *modelShard) GCStep(budget int) bool {
	// An op has arrived and the lock cursor already covers it: yield
	// the rest of this tick's budget (the Gosched in the pacer loop).
	// Urgent slices don't yield — the real pacer completes its whole
	// urgency-scaled budget with writers interleaving between
	// micro-slices, and below the low watermark that budget is the only
	// thing standing between the writers and an emergency cycle.
	if ms.m.busy >= ms.m.cutoff && ms.store.GCUrgency() < 1 {
		return true
	}
	before := ms.store.Metrics().GCBlocks
	done := ms.store.GCStep(budget)
	moved := ms.store.Metrics().GCBlocks - before
	start := ms.m.tickAt
	if ms.m.busy > start {
		start = ms.m.busy
	}
	cost := ms.m.epsilon
	if moved > 0 {
		cost = sim.Time(moved) * ms.m.perUnit
	}
	ms.m.busy = start + cost
	return done
}

// runGCSchedModel replays one (policy, mode) cell on the virtual
// clock and returns the same row shape as the live run.
func runGCSchedModel(sc Scale, polName string, opts GCSchedOptions, background bool) (GCSchedRow, error) {
	cfg := StoreConfig(opts.Blocks, 0)
	cfg.BackgroundGC = background
	pol, err := BuildPolicy(polName, cfg)
	if err != nil {
		return GCSchedRow{}, err
	}
	store := lss.New(cfg, pol)

	// Inline relocation cost: the chunk read of each relocated chunk,
	// amortized per block; the rewrite is an async device dispatch.
	readService := sim.Time(opts.ServiceTime.Nanoseconds()) / 2
	m := &gcModel{
		perUnit: readService / sim.Time(cfg.ChunkBlocks),
		epsilon: sim.Time(1 * time.Microsecond),
	}
	const opBase = sim.Time(2 * time.Microsecond) // per-op critical section
	interval := sim.Time(opts.Interval.Nanoseconds())
	sliceStep := opts.SliceUnits

	// chargeWrite runs one user write and returns its inline cost:
	// the critical section plus any GC the store ran inside the call —
	// a synchronous watermark cycle, or the emergency floor under
	// background pacing. Both are measured off the real metrics.
	chargeWrite := func(lba int64, now sim.Time) (sim.Time, error) {
		before := store.Metrics().GCBlocks
		if err := store.WriteBlock(lba, now); err != nil {
			return 0, err
		}
		cost := opBase
		if moved := store.Metrics().GCBlocks - before; moved > 0 {
			cost += sim.Time(moved) * m.perUnit
		}
		return cost, nil
	}

	// Fill sequentially so GC is live from the first measured op,
	// pacing the background store the way the prototype's fill loop
	// does.
	now := sim.Time(0)
	for lba := int64(0); lba < opts.Blocks; lba++ {
		if _, err := chargeWrite(lba, now); err != nil {
			return GCSchedRow{}, fmt.Errorf("fill: %w", err)
		}
		if background {
			store.GCStep(sliceStep)
		}
		now += sim.Time(time.Microsecond)
	}
	base := *store.Metrics() // measured-phase baseline (copy)

	// The pacer over the model shard. Its tail signal is the max over a
	// sliding window of recent op latencies — the deterministic analogue
	// of the serving layer's windowed p999: spikes age out after the
	// window instead of lingering, and the signal is honest about
	// feedback lag.
	var ctl *gcsched.Controller
	const tailWindow = 1024
	tailRing := make([]float64, 0, tailWindow)
	tailAt := 0
	tailEst := float64(0)
	recordTail := func(lat float64) {
		if len(tailRing) < tailWindow {
			tailRing = append(tailRing, lat)
		} else {
			tailRing[tailAt] = lat
			tailAt = (tailAt + 1) % tailWindow
		}
		if lat >= tailEst {
			tailEst = lat
			return
		}
		// The previous max may have aged out; recompute lazily only then.
		tailEst = 0
		for _, l := range tailRing {
			if l > tailEst {
				tailEst = l
			}
		}
	}
	if background {
		gcfg := gcsched.Config{
			Interval:   opts.Interval,
			SliceUnits: opts.SliceUnits,
		}
		if opts.TargetP999 > 0 {
			gcfg.TargetP999 = opts.TargetP999
			gcfg.P999 = func() time.Duration { return time.Duration(tailEst) }
		}
		ctl, err = gcsched.New(gcfg, []gcsched.Shard{&modelShard{store: store, m: m}})
		if err != nil {
			return GCSchedRow{}, err
		}
	}

	// Closed-loop workers on the virtual clock.
	nWorkers := opts.Tenants * opts.Workers
	think := float64(opts.ThinkTime.Nanoseconds())
	rng := sim.NewRNG(sc.Seed ^ 0x9c5ced)
	zipf := workload.NewZipf(rng, opts.Blocks, opts.Theta, true)
	arrival := make([]sim.Time, nWorkers)
	for w := range arrival {
		arrival[w] = now + sim.Time(w)*sim.Time(50*time.Microsecond)
	}
	m.busy = now
	nextTick := now + interval
	totalOps := nWorkers * opts.OpsPerWorker
	lats := make([]float64, 0, totalOps)
	for len(lats) < totalOps {
		// Next arrival across the closed loop.
		w := 0
		for i := 1; i < nWorkers; i++ {
			if arrival[i] < arrival[w] {
				w = i
			}
		}
		at := arrival[w]
		// Run the pacer ticks due before this op. A tick whose slices
		// already pushed the lock cursor past the arrival yields (the
		// op holds the next lock acquisition).
		if ctl != nil {
			m.cutoff = at
			for nextTick <= at {
				m.tickAt = nextTick
				if m.busy < at {
					ctl.Tick()
				}
				nextTick += interval
			}
		}
		start := at
		if m.busy > start {
			start = m.busy
		}
		var cost sim.Time
		if rng.Float64() < opts.WriteFrac {
			c, err := chargeWrite(zipf.Next(), start)
			if err != nil {
				return GCSchedRow{}, err
			}
			cost = c
		} else {
			store.Read(zipf.Next(), 1, start)
			cost = opBase
		}
		m.busy = start + cost
		lat := float64(m.busy - at)
		lats = append(lats, lat)
		recordTail(lat)
		gap := float64(0) // exponential think gap
		if think > 0 {
			gap = think * expDraw(rng)
		}
		arrival[w] = m.busy + sim.Time(gap)
	}
	// Settle the in-flight cycle so both modes account whole cycles.
	if background {
		for store.GCActive() {
			store.GCStep(1 << 30)
		}
	}

	mode := "sync"
	if background {
		mode = "background"
	}
	row := GCSchedRow{Policy: polName, Mode: mode, Ops: int64(len(lats))}
	sort.Float64s(lats)
	row.P50 = time.Duration(stats.SortedPercentile(lats, 50))
	row.P99 = time.Duration(stats.SortedPercentile(lats, 99))
	row.P999 = time.Duration(stats.SortedPercentile(lats, 99.9))
	mt := store.Metrics()
	if du := mt.UserBlocks - base.UserBlocks; du > 0 {
		row.WA = float64(du+mt.GCBlocks-base.GCBlocks) / float64(du)
	}
	row.GCCycles = mt.GCCycles - base.GCCycles
	row.GCSlices = mt.GCSlices - base.GCSlices
	row.EmergencyRuns = mt.GCEmergencyRuns - base.GCEmergencyRuns
	if ctl != nil {
		cs := ctl.Stats()
		row.PacerSlices = cs.Slices
		row.TailSkips = cs.TailSkips
		row.QueueSkips = cs.QueueSkips
	}
	return row, nil
}

// expDraw is a unit-mean exponential draw.
func expDraw(rng *sim.RNG) float64 {
	u := rng.Float64()
	if u >= 1 {
		u = 0.9999999
	}
	return -math.Log(1 - u)
}
