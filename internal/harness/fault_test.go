package harness

import (
	"strings"
	"testing"

	"adapt/internal/prototype"
)

func TestExpFaultCoversPhases(t *testing.T) {
	sc := SmallScale()
	policies := []string{"sepgc", PolicyADAPT}
	res, err := ExpFault(sc, policies, DefaultFaultOptions(sc))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Counters) != len(policies) {
		t.Fatalf("counters for %d policies, want %d", len(res.Counters), len(policies))
	}
	phases := map[string]map[prototype.Phase]bool{}
	for _, row := range res.Rows {
		if phases[row.Policy] == nil {
			phases[row.Policy] = map[prototype.Phase]bool{}
		}
		phases[row.Policy][row.Phase] = true
		if row.Ops < 0 || row.OpsPerSec < 0 || row.WA < 1 {
			t.Fatalf("implausible row %+v", row)
		}
	}
	for _, pol := range policies {
		for _, p := range []prototype.Phase{prototype.PhaseHealthy, prototype.PhaseDegraded, prototype.PhaseRebuilding} {
			if !phases[pol][p] {
				t.Fatalf("policy %s missing phase %v: %v", pol, p, res.Rows)
			}
		}
	}
	for _, c := range res.Counters {
		if c.RebuildChunks == 0 {
			t.Fatalf("policy %s rebuilt no chunks", c.Policy)
		}
		if c.DegradedReads == 0 {
			t.Fatalf("policy %s served no degraded reads", c.Policy)
		}
	}
	out := res.Render()
	for _, frag := range []string{"healthy", "degraded", "rebuilding", "rebuild-chunks", PolicyADAPT} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}
