package harness

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"adapt/internal/fault"
	"adapt/internal/prototype"
	"adapt/internal/server"
	"adapt/internal/sim"
	"adapt/internal/stats"
	"adapt/internal/telemetry"
	"adapt/internal/workload"
)

// TailTraceOptions sizes the tail-latency attribution experiment: one
// full serving stack (engine + network server + closed-loop tenants)
// per policy, with request tracing enabled so every client-observed
// op window can be checked against the GC interference intervals the
// store publishes.
type TailTraceOptions struct {
	// Blocks is the store footprint; the engine pre-fills it so GC is
	// active from the first op.
	Blocks int64
	// Tenants is the volume/connection count; Workers the closed-loop
	// pipelined workers per tenant.
	Tenants int
	Workers int
	// Duration is the measured wall-clock window per policy.
	Duration time.Duration
	// WriteFrac and Theta shape the workload (zipfian over each
	// volume's LBA space).
	WriteFrac float64
	Theta     float64
	// ServiceTime is the modelled per-chunk device time.
	ServiceTime time.Duration
}

// DefaultTailTraceOptions sizes the experiment for the given scale:
// a quarter of the YCSB footprint, write-heavy so GC churns, and a
// window long enough for dozens of GC cycles per policy.
func DefaultTailTraceOptions(sc Scale) TailTraceOptions {
	return TailTraceOptions{
		Blocks:      sc.YCSBBlocks / 4,
		Tenants:     4,
		Workers:     4,
		Duration:    1500 * time.Millisecond,
		WriteFrac:   0.9,
		Theta:       0.99,
		ServiceTime: 5 * time.Microsecond,
	}
}

// TailTraceRow is one policy's tail-attribution summary.
type TailTraceRow struct {
	Policy string
	// Ops is the completed client op count; P50/P99/P999 are
	// client-observed latencies.
	Ops  int64
	P50  time.Duration
	P99  time.Duration
	P999 time.Duration
	// GCCycles and GCBusyFrac describe the interference source: cycle
	// count and the fraction of the run the store spent inside GC.
	GCCycles   int64
	GCBusyFrac float64
	// SlowOps is the op count at or above P999; SlowGCFrac the
	// fraction of those whose lifetime overlapped a GC cycle, and
	// AllGCFrac the same fraction over every op — the gap between the
	// two is GC's disproportionate share of the tail.
	SlowOps    int64
	SlowGCFrac float64
	AllGCFrac  float64
}

// TailTraceResult holds the experiment output.
type TailTraceResult struct {
	Opts TailTraceOptions
	Rows []TailTraceRow
}

// opRecord is one completed client op on the engine clock: the window
// [Start, End] is compared against GC intervals from the same clock.
type opRecord struct {
	start, end sim.Time
}

// ExpTailTrace boots the full serving stack once per policy — engine,
// batching network server with tracing enabled, closed-loop zipfian
// tenants over loopback TCP — and attributes the client-observed P999
// tail to GC by overlapping each slow op's lifetime with the GC
// interference intervals the store published on the shared clock.
func ExpTailTrace(sc Scale, policies []string, opts TailTraceOptions) (*TailTraceResult, error) {
	if opts.Blocks <= 0 {
		opts.Blocks = sc.YCSBBlocks / 4
	}
	if opts.Tenants <= 0 {
		opts.Tenants = 4
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	out := &TailTraceResult{Opts: opts}
	for _, polName := range policies {
		row, err := runTailTrace(sc, polName, opts)
		if err != nil {
			return nil, fmt.Errorf("tailtrace %s: %w", polName, err)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func runTailTrace(sc Scale, polName string, opts TailTraceOptions) (TailTraceRow, error) {
	cfg := StoreConfig(opts.Blocks, 0)
	pol, err := BuildPolicy(polName, cfg)
	if err != nil {
		return TailTraceRow{}, err
	}
	// The interval ring must hold every GC cycle of the run: a
	// write-heavy window can exceed the default 4096 and evictions
	// would silently drop attribution for early ops.
	ts := telemetry.New(telemetry.Options{EventCapacity: 1 << 16})
	eng, err := prototype.NewEngine(prototype.EngineConfig{
		Store:       cfg,
		Policy:      pol,
		ServiceTime: opts.ServiceTime,
		Fill:        true,
		Telemetry:   ts,
	})
	if err != nil {
		return TailTraceRow{}, err
	}
	defer eng.Close()
	fillEnd := eng.Now() // exclude fill-phase GC from attribution

	srv, err := server.New(server.Config{
		Engine:    eng,
		Volumes:   opts.Tenants,
		Batch:     true,
		Telemetry: ts,
		Trace:     server.TraceConfig{Enabled: true},
	})
	if err != nil {
		return TailTraceRow{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return TailTraceRow{}, err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	span := srv.VolumeBlocks()
	payloadBytes := int(cfg.BlockSize)
	records := make([][]opRecord, opts.Tenants*opts.Workers)
	var wg sync.WaitGroup
	var runErr error
	var errOnce sync.Once
	deadline := time.Now().Add(opts.Duration)
	for t := 0; t < opts.Tenants; t++ {
		c, err := server.Dial(ln.Addr().String(), uint32(t))
		if err != nil {
			ln.Close()
			return TailTraceRow{}, err
		}
		c.SetBlockBytes(payloadBytes)
		defer c.Close()
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(c *server.Client, recs *[]opRecord, seed uint64) {
				defer wg.Done()
				rng := sim.NewRNG(seed)
				zipf := workload.NewZipf(rng, span, opts.Theta, true)
				payload := make([]byte, payloadBytes)
				for i := range payload {
					payload[i] = byte(rng.Intn(256))
				}
				bo := fault.Backoff{}
				for time.Now().Before(deadline) {
					lba := zipf.Next()
					write := rng.Float64() < opts.WriteFrac
					t0 := eng.Now()
					var err error
					for attempt := 0; ; attempt++ {
						if write {
							err = c.Write(lba, payload)
						} else {
							_, err = c.Read(lba, 1)
						}
						if !errors.Is(err, server.ErrBackpressure) {
							break
						}
						time.Sleep(bo.Delay(attempt))
					}
					if err != nil {
						errOnce.Do(func() { runErr = err })
						return
					}
					*recs = append(*recs, opRecord{start: t0, end: eng.Now()})
				}
			}(c, &records[t*opts.Workers+w], sc.Seed+uint64(t*1000+w))
		}
	}
	wg.Wait()
	runEnd := eng.Now()
	ln.Close()
	<-served
	if runErr != nil {
		return TailTraceRow{}, runErr
	}

	// GC intervals on the engine clock, fill phase excluded; intervals
	// still open at run end are clamped by Overlap itself.
	var gcs []telemetry.Interval
	var gcBusy int64
	for _, iv := range ts.Intervals.Snapshot() {
		if iv.Kind != telemetry.IntervalGC || iv.End <= fillEnd {
			continue
		}
		gcs = append(gcs, iv)
		gcBusy += iv.Overlap(fillEnd, runEnd)
	}

	var all []opRecord
	for _, rs := range records {
		all = append(all, rs...)
	}
	if len(all) == 0 {
		return TailTraceRow{Policy: polName}, nil
	}
	lats := make([]float64, len(all))
	for i, r := range all {
		lats[i] = float64(r.end - r.start)
	}
	sort.Float64s(lats)
	p999 := stats.SortedPercentile(lats, 99.9)

	overlapsGC := func(r opRecord) bool {
		for _, iv := range gcs {
			if iv.Overlap(r.start, r.end) > 0 {
				return true
			}
		}
		return false
	}
	var slow, slowGC, allGC int64
	for _, r := range all {
		hit := overlapsGC(r)
		if hit {
			allGC++
		}
		if float64(r.end-r.start) >= p999 {
			slow++
			if hit {
				slowGC++
			}
		}
	}

	row := TailTraceRow{
		Policy:   polName,
		Ops:      int64(len(all)),
		P50:      time.Duration(stats.SortedPercentile(lats, 50)),
		P99:      time.Duration(stats.SortedPercentile(lats, 99)),
		P999:     time.Duration(p999),
		GCCycles: int64(len(gcs)),
		SlowOps:  slow,
	}
	if wall := int64(runEnd - fillEnd); wall > 0 {
		row.GCBusyFrac = float64(gcBusy) / float64(wall)
	}
	if slow > 0 {
		row.SlowGCFrac = float64(slowGC) / float64(slow)
	}
	row.AllGCFrac = float64(allGC) / float64(len(all))
	return row, nil
}

// Render prints the per-policy tail-attribution table.
func (r *TailTraceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tail-latency attribution — GC's share of the client P999 (%d tenants × %d workers, %.0f%% writes, %v)\n",
		r.Opts.Tenants, r.Opts.Workers, 100*r.Opts.WriteFrac, r.Opts.Duration)
	tb := stats.NewTable("policy", "ops", "p50", "p99", "p999",
		"gc-cycles", "gc-busy", "p999-ops", "p999∩gc", "all∩gc")
	for _, row := range r.Rows {
		tb.AddRow(row.Policy, row.Ops,
			row.P50.Round(time.Microsecond),
			row.P99.Round(time.Microsecond),
			row.P999.Round(time.Microsecond),
			row.GCCycles,
			fmt.Sprintf("%.1f%%", 100*row.GCBusyFrac),
			row.SlowOps,
			fmt.Sprintf("%.1f%%", 100*row.SlowGCFrac),
			fmt.Sprintf("%.1f%%", 100*row.AllGCFrac))
	}
	b.WriteString(tb.String())
	b.WriteString("p999∩gc: fraction of ops at/above the P999 whose lifetime overlapped a GC cycle; all∩gc: same over every op.\n")
	return b.String()
}
