package harness

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"adapt/internal/fault"
	"adapt/internal/gcsched"
	"adapt/internal/prototype"
	"adapt/internal/server"
	"adapt/internal/sim"
	"adapt/internal/stats"
	"adapt/internal/workload"
)

// GCSchedOptions sizes the tail-latency-aware GC scheduling
// experiment: the same serving stack and closed-loop load as the
// tail-attribution experiment, run twice per policy — once with the
// classic synchronous watermark GC, once with background GC paced by
// the gcsched controller — so the client-observed tail and the write
// amplification can be compared directly.
type GCSchedOptions struct {
	// Blocks is the store footprint; the engine pre-fills it so GC is
	// active from the first op.
	Blocks int64
	// Tenants is the volume/connection count; Workers the closed-loop
	// pipelined workers per tenant.
	Tenants int
	Workers int
	// OpsPerWorker fixes each worker's op count, so the sync and
	// background runs see identical traffic and their write
	// amplification is directly comparable.
	OpsPerWorker int
	// Duration is a hard wall-clock cap per mode in case a run wedges.
	Duration time.Duration
	// WriteFrac and Theta shape the workload.
	WriteFrac float64
	Theta     float64
	// ServiceTime is the modelled per-chunk device time.
	ServiceTime time.Duration
	// ThinkTime is each worker's mean inter-op gap (exponentially
	// distributed). It sets the operating point: zero means a fully
	// saturated closed loop where GC work displaces foreground work
	// one-for-one and scheduling cannot help; the default leaves the
	// array at high-but-not-total utilization, the regime the paper's
	// tail comparison targets.
	ThinkTime time.Duration
	// SliceUnits is the pacer's per-slice relocation budget.
	SliceUnits int
	// Interval is the pacer tick.
	Interval time.Duration
	// TargetP999, when positive, arms the tail-latency backoff signal
	// (the server's traced p999 feeds the controller).
	TargetP999 time.Duration
}

// DefaultGCSchedOptions sizes the experiment for the given scale:
// write-heavy at full utilization so synchronous GC stalls dominate
// the tail, and a pacer tick fast enough to keep small stores off the
// emergency floor.
func DefaultGCSchedOptions(sc Scale) GCSchedOptions {
	return GCSchedOptions{
		// 4× the YCSB footprint: segments are then large enough
		// (StoreConfig scales them with capacity) that one synchronous
		// watermark cycle relocates tens of chunks inline — the
		// stop-the-world stall the pacer exists to break up.
		Blocks:       sc.YCSBBlocks * 4,
		Tenants:      2,
		Workers:      4,
		OpsPerWorker: 4000,
		Duration:     60 * time.Second,
		WriteFrac:    0.9,
		Theta:        0.8,
		ServiceTime:  time.Millisecond,
		ThinkTime:    300 * time.Microsecond,
		SliceUnits:   32,
		Interval:     50 * time.Microsecond,
		TargetP999:   2 * time.Millisecond,
	}
}

// GCSchedRow is one (policy, mode) cell of the comparison.
type GCSchedRow struct {
	Policy string
	// Mode is "sync" or "background".
	Mode string
	// Ops is the completed client op count; P50/P99/P999 are
	// client-observed latencies on the engine clock.
	Ops  int64
	P50  time.Duration
	P99  time.Duration
	P999 time.Duration
	// WA is the measured-phase write amplification (fill excluded).
	WA float64
	// GCCycles/GCSlices/EmergencyRuns are measured-phase store GC
	// counters; the pacer fields are the controller's own totals
	// (background mode only).
	GCCycles      int64
	GCSlices      int64
	EmergencyRuns int64
	PacerSlices   int64
	TailSkips     int64
	QueueSkips    int64
	// TailCauses summarizes the attributed dominant causes of the
	// slowest traced exemplars (count by cause, descending).
	TailCauses string
}

// GCSchedResult holds the experiment output: the deterministic
// virtual-clock comparison (Model) and the live serving-stack run
// (Rows). The model rows are exactly reproducible and carry the
// headline numbers; the live rows demonstrate the same effect through
// the full TCP stack, subject to host scheduling noise.
type GCSchedResult struct {
	Opts  GCSchedOptions
	Model []GCSchedRow
	Rows  []GCSchedRow
}

// ExpGCSched runs the synchronous-versus-background GC comparison for
// each policy: identical stack, identical load, only the GC scheduling
// mode differs.
func ExpGCSched(sc Scale, policies []string, opts GCSchedOptions) (*GCSchedResult, error) {
	if opts.Blocks <= 0 {
		opts.Blocks = sc.YCSBBlocks / 4
	}
	if opts.Tenants <= 0 {
		opts.Tenants = 4
	}
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.OpsPerWorker <= 0 {
		opts.OpsPerWorker = 2000
	}
	if opts.Duration <= 0 {
		opts.Duration = 30 * time.Second
	}
	if opts.SliceUnits <= 0 {
		opts.SliceUnits = 32
	}
	if opts.Interval <= 0 {
		opts.Interval = 200 * time.Microsecond
	}
	out := &GCSchedResult{Opts: opts}
	for _, polName := range policies {
		for _, background := range []bool{false, true} {
			row, err := runGCSchedModel(sc, polName, opts, background)
			if err != nil {
				return nil, fmt.Errorf("gcsched model %s (background=%v): %w", polName, background, err)
			}
			out.Model = append(out.Model, row)
		}
	}
	for _, polName := range policies {
		for _, background := range []bool{false, true} {
			row, err := runGCSchedMode(sc, polName, opts, background)
			if err != nil {
				return nil, fmt.Errorf("gcsched %s (background=%v): %w", polName, background, err)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func runGCSchedMode(sc Scale, polName string, opts GCSchedOptions, background bool) (GCSchedRow, error) {
	cfg := StoreConfig(opts.Blocks, 0)
	cfg.BackgroundGC = background
	pol, err := BuildPolicy(polName, cfg)
	if err != nil {
		return GCSchedRow{}, err
	}
	eng, err := prototype.NewEngine(prototype.EngineConfig{
		Store:       cfg,
		Policy:      pol,
		ServiceTime: opts.ServiceTime,
		Fill:        true,
	})
	if err != nil {
		return GCSchedRow{}, err
	}
	defer eng.Close()
	if background {
		// The fill loop ran without a pacer, so the background store
		// ends it near the emergency floor. Settle the pool to the high
		// watermark before the baseline snapshot, or the measured phase
		// would be charged for rebuilding the fill phase's deficit and
		// the WA comparison against sync would be skewed.
		for _, sh := range eng.GCShards() {
			for sh.GCNeeded() {
				sh.GCStep(1 << 20)
			}
		}
	}
	st0 := eng.Stats() // fill-phase baseline

	var ctl *gcsched.Controller
	var srv *server.Server
	srvCfg := server.Config{
		Engine:  eng,
		Volumes: opts.Tenants,
		// No group commit: the batch window would floor both modes'
		// tails and hide the GC stall this experiment measures.
		// Trace in both modes so the sync baseline carries the same
		// instrumentation overhead as the paced run it is compared to.
		Trace: server.TraceConfig{Enabled: true},
	}
	if background {
		gcfg := gcsched.Config{
			Interval:   opts.Interval,
			SliceUnits: opts.SliceUnits,
			QueueFill:  eng.QueueFill,
		}
		if opts.TargetP999 > 0 {
			gcfg.TargetP999 = opts.TargetP999
			// srv is assigned below, before ctl.Start spawns the only
			// reader of this closure.
			gcfg.P999 = func() time.Duration { return srv.TailP999() }
		}
		shards := eng.GCShards()
		sh := make([]gcsched.Shard, len(shards))
		for i, s := range shards {
			sh[i] = s
		}
		ctl, err = gcsched.New(gcfg, sh)
		if err != nil {
			return GCSchedRow{}, err
		}
		srvCfg.GCSched = ctl
	}
	srv, err = server.New(srvCfg)
	if err != nil {
		return GCSchedRow{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return GCSchedRow{}, err
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	if ctl != nil {
		ctl.Start()
	}

	span := srv.VolumeBlocks()
	payloadBytes := int(cfg.BlockSize)
	records := make([][]opRecord, opts.Tenants*opts.Workers)
	var wg sync.WaitGroup
	var runErr error
	var errOnce sync.Once
	deadline := time.Now().Add(opts.Duration)
	for t := 0; t < opts.Tenants; t++ {
		c, err := server.Dial(ln.Addr().String(), uint32(t))
		if err != nil {
			ln.Close()
			if ctl != nil {
				ctl.Stop()
			}
			return GCSchedRow{}, err
		}
		c.SetBlockBytes(payloadBytes)
		defer c.Close()
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(c *server.Client, recs *[]opRecord, seed uint64) {
				defer wg.Done()
				rng := sim.NewRNG(seed)
				zipf := workload.NewZipf(rng, span, opts.Theta, true)
				payload := make([]byte, payloadBytes)
				for i := range payload {
					payload[i] = byte(rng.Intn(256))
				}
				bo := fault.Backoff{}
				for n := 0; n < opts.OpsPerWorker && time.Now().Before(deadline); n++ {
					if opts.ThinkTime > 0 {
						// Exponential think time: bursty arrivals at a
						// controlled mean utilization.
						gap := -math.Log(1-rng.Float64()) * float64(opts.ThinkTime)
						time.Sleep(time.Duration(gap))
					}
					lba := zipf.Next()
					write := rng.Float64() < opts.WriteFrac
					t0 := eng.Now()
					var err error
					for attempt := 0; ; attempt++ {
						if write {
							err = c.Write(lba, payload)
						} else {
							_, err = c.Read(lba, 1)
						}
						if !errors.Is(err, server.ErrBackpressure) {
							break
						}
						time.Sleep(bo.Delay(attempt))
					}
					if err != nil {
						errOnce.Do(func() { runErr = err })
						return
					}
					*recs = append(*recs, opRecord{start: t0, end: eng.Now()})
				}
			}(c, &records[t*opts.Workers+w], sc.Seed+uint64(t*1000+w))
		}
	}
	wg.Wait()
	if ctl != nil {
		ctl.Stop()
	}
	// Attribute the slowest traced requests before tearing the
	// connections down, while the per-connection span rings are live.
	causes := map[string]int{}
	for _, ex := range srv.TraceSnapshot(int64(time.Millisecond), 64) {
		causes[ex.Cause]++
	}
	ln.Close()
	<-served
	if runErr != nil {
		return GCSchedRow{}, runErr
	}

	var all []opRecord
	for _, rs := range records {
		all = append(all, rs...)
	}
	mode := "sync"
	if background {
		mode = "background"
	}
	row := GCSchedRow{Policy: polName, Mode: mode, Ops: int64(len(all))}
	if len(all) == 0 {
		return row, nil
	}
	lats := make([]float64, len(all))
	for i, r := range all {
		lats[i] = float64(r.end - r.start)
	}
	sort.Float64s(lats)
	row.P50 = time.Duration(stats.SortedPercentile(lats, 50))
	row.P99 = time.Duration(stats.SortedPercentile(lats, 99))
	row.P999 = time.Duration(stats.SortedPercentile(lats, 99.9))

	st1 := eng.Stats()
	du := st1.UserBlocks - st0.UserBlocks
	dg := st1.GCBlocks - st0.GCBlocks
	if du > 0 {
		row.WA = float64(du+dg) / float64(du)
	}
	row.GCCycles = st1.GCCycles - st0.GCCycles
	row.GCSlices = st1.GCSlices - st0.GCSlices
	row.EmergencyRuns = st1.GCEmergencyRuns - st0.GCEmergencyRuns
	if ctl != nil {
		cs := ctl.Stats()
		row.PacerSlices = cs.Slices
		row.TailSkips = cs.TailSkips
		row.QueueSkips = cs.QueueSkips
	}
	type kv struct {
		cause string
		n     int
	}
	var ranked []kv
	for c, n := range causes {
		ranked = append(ranked, kv{c, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].cause < ranked[j].cause
	})
	var parts []string
	for _, e := range ranked {
		parts = append(parts, fmt.Sprintf("%s×%d", e.cause, e.n))
	}
	row.TailCauses = strings.Join(parts, " ")
	return row, nil
}

// GCSchedDeltas summarizes one policy's sync-versus-background pair:
// the relative p999 change and the relative WA change, both in
// percent (negative p999 means the background tail is lower).
type GCSchedDeltas struct {
	Policy  string
	P999Pct float64
	WAPct   float64
}

// Deltas computes the per-policy headline numbers for a row set laid
// out as (sync, background) pairs.
func GCSchedPairDeltas(rows []GCSchedRow) []GCSchedDeltas {
	var out []GCSchedDeltas
	for i := 0; i+1 < len(rows); i += 2 {
		syncRow, bgRow := rows[i], rows[i+1]
		if syncRow.Policy != bgRow.Policy || syncRow.P999 == 0 {
			continue
		}
		d := GCSchedDeltas{Policy: syncRow.Policy}
		d.P999Pct = 100 * (float64(bgRow.P999)/float64(syncRow.P999) - 1)
		if syncRow.WA > 0 {
			d.WAPct = 100 * (bgRow.WA/syncRow.WA - 1)
		}
		out = append(out, d)
	}
	return out
}

func renderGCSchedRows(b *strings.Builder, rows []GCSchedRow, causes bool) {
	cols := []string{"policy", "mode", "ops", "p50", "p99", "p999", "WA",
		"gc-cycles", "gc-slices", "emergency", "pacer", "tail-skip", "queue-skip"}
	if causes {
		cols = append(cols, "tail-causes")
	}
	tb := stats.NewTable(cols...)
	for _, row := range rows {
		cells := []any{row.Policy, row.Mode, row.Ops,
			row.P50.Round(time.Microsecond),
			row.P99.Round(time.Microsecond),
			row.P999.Round(time.Microsecond),
			fmt.Sprintf("%.3f", row.WA),
			row.GCCycles, row.GCSlices, row.EmergencyRuns,
			row.PacerSlices, row.TailSkips, row.QueueSkips}
		if causes {
			cells = append(cells, row.TailCauses)
		}
		tb.AddRow(cells...)
	}
	b.WriteString(tb.String())
	for _, d := range GCSchedPairDeltas(rows) {
		fmt.Fprintf(b, "%s: p999 %+.1f%% (background vs sync), WA %+.2f%%\n",
			d.Policy, d.P999Pct, d.WAPct)
	}
}

// Render prints the sync-versus-background comparison: the
// deterministic virtual-clock table first (headline numbers), then
// the live serving-stack run.
func (r *GCSchedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tail-latency-aware GC — synchronous vs background-paced (%d tenants × %d workers × %d ops, %.0f%% writes, think %v, slice %d units)\n",
		r.Opts.Tenants, r.Opts.Workers, r.Opts.OpsPerWorker, 100*r.Opts.WriteFrac, r.Opts.ThinkTime, r.Opts.SliceUnits)
	if len(r.Model) > 0 {
		b.WriteString("\nModelled tail (deterministic virtual clock, real stores and pacer):\n")
		renderGCSchedRows(&b, r.Model, false)
	}
	if len(r.Rows) > 0 {
		b.WriteString("\nLive serving stack (wall clock — subject to host scheduling noise):\n")
		renderGCSchedRows(&b, r.Rows, true)
	}
	return b.String()
}
