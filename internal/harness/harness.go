// Package harness reproduces every figure of the paper's evaluation
// (§4): it synthesizes the workload suites, drives the trace-driven
// simulator across all six placement policies and both GC victim
// policies, and renders paper-style tables and CDF series. Each FigN
// function regenerates the data behind the corresponding figure.
package harness

import (
	"fmt"

	"adapt/internal/adaptcore"
	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/trace"
	"adapt/internal/workload"
)

// PolicyADAPT is the name of the paper's contribution in results.
const PolicyADAPT = "adapt"

// PolicyNames returns all six policies in the paper's presentation
// order (five baselines, then ADAPT).
func PolicyNames() []string {
	return append(placement.BaselineNames(), PolicyADAPT)
}

// Scale sizes the experiments. The paper's full scale (50 volumes,
// 1 M-block YCSB fills) takes minutes; Small keeps unit tests and
// testing.B iterations fast while preserving every qualitative
// relationship.
type Scale struct {
	// Volumes per production suite (paper: 50).
	Volumes int
	// VolumeBlocks centers the per-volume footprint in 4 KiB blocks.
	VolumeBlocks int64
	// OverwriteFactor is write volume per volume relative to footprint.
	OverwriteFactor float64
	// YCSBBlocks and YCSBWrites size the sensitivity experiments
	// (paper: 1 M blocks filled, 10 M writes).
	YCSBBlocks, YCSBWrites int64
	// Seed drives all synthesis.
	Seed uint64
}

// SmallScale is used by tests and testing.B benchmarks.
func SmallScale() Scale {
	return Scale{
		Volumes:         6,
		VolumeBlocks:    8 << 10,
		OverwriteFactor: 4,
		YCSBBlocks:      16 << 10,
		YCSBWrites:      128 << 10,
		Seed:            1,
	}
}

// FullScale approximates the paper's configuration.
func FullScale() Scale {
	return Scale{
		Volumes:         50,
		VolumeBlocks:    32 << 10,
		OverwriteFactor: 5,
		YCSBBlocks:      1 << 20,
		YCSBWrites:      10 << 20,
		Seed:            1,
	}
}

// StoreConfig derives simulator geometry for a volume of the given
// footprint: 4 KiB blocks, 64 KiB chunks, Pangu's 100 µs SLA window,
// 4-SSD RAID-5, and a segment size scaled so every volume has enough
// segments for meaningful GC.
func StoreConfig(userBlocks int64, victim lss.VictimPolicy) lss.Config {
	const chunkBlocks = 16
	// Keep at least ~256 segments so that per-group open segments and
	// the GC watermark cushion stay a small fraction of capacity; the
	// effective spare then tracks OverProvision at every scale.
	segChunks := int(userBlocks / chunkBlocks / 256)
	if segChunks < 2 {
		segChunks = 2
	}
	if segChunks > 32 {
		segChunks = 32
	}
	return lss.Config{
		BlockSize:     4096,
		ChunkBlocks:   chunkBlocks,
		SegmentChunks: segChunks,
		DataColumns:   3,
		UserBlocks:    userBlocks,
		OverProvision: 0.15,
		Victim:        victim,
	}
}

// BuildPolicy constructs a policy by name for the given store
// geometry. ADAPT's sampling rate is scaled to keep a few thousand
// sampled blocks regardless of volume size.
func BuildPolicy(name string, cfg lss.Config) (lss.Policy, error) {
	if name == PolicyADAPT {
		rate := 2048 / float64(cfg.UserBlocks)
		if rate > 0.5 {
			rate = 0.5
		}
		if rate < 0.002 {
			rate = 0.002
		}
		return adaptcore.New(adaptcore.Config{
			UserBlocks:    cfg.UserBlocks,
			SegmentBlocks: cfg.SegmentBlocks(),
			ChunkBlocks:   cfg.ChunkBlocks,
			OverProvision: cfg.OverProvision,
		}, adaptcore.Options{SampleRate: rate}), nil
	}
	return placement.New(name, placement.Params{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.SegmentBlocks(),
		ChunkBlocks:   cfg.ChunkBlocks,
	})
}

// RunResult summarizes one policy run over one trace.
type RunResult struct {
	Policy string
	Victim lss.VictimPolicy
	Volume string

	WA           float64
	EffectiveWA  float64
	PaddingRatio float64

	UserBlocks, GCBlocks, ShadowBlocks, PaddingBlocks int64
	SegmentsReclaimed                                 int64
	PerGroup                                          []lss.GroupMetrics
}

// RunTrace replays tr (already dense in [0, userBlocks)) through the
// named policy and returns the traffic summary.
func RunTrace(policy string, tr *trace.Trace, userBlocks int64, victim lss.VictimPolicy) (RunResult, error) {
	cfg := StoreConfig(userBlocks, victim)
	pol, err := BuildPolicy(policy, cfg)
	if err != nil {
		return RunResult{}, err
	}
	store := lss.New(cfg, pol)
	if err := trace.Replay(store, tr); err != nil {
		return RunResult{}, fmt.Errorf("policy %s: %w", policy, err)
	}
	m := store.Metrics()
	pg := make([]lss.GroupMetrics, len(m.PerGroup))
	copy(pg, m.PerGroup)
	return RunResult{
		Policy:            policy,
		Victim:            victim,
		Volume:            tr.Name,
		WA:                m.WA(),
		EffectiveWA:       m.EffectiveWA(),
		PaddingRatio:      m.PaddingRatio(),
		UserBlocks:        m.UserBlocks,
		GCBlocks:          m.GCBlocks,
		ShadowBlocks:      m.ShadowBlocks,
		PaddingBlocks:     m.PaddingBlocks,
		SegmentsReclaimed: m.SegmentsReclaimed,
		PerGroup:          pg,
	}, nil
}

// Suite returns the synthesized volume descriptors for a profile at
// the given scale.
func (sc Scale) Suite(p workload.Profile) []workload.Volume {
	return workload.NewSuite(workload.SuiteConfig{
		Profile:         p,
		Volumes:         sc.Volumes,
		ScaleBlocks:     sc.VolumeBlocks,
		OverwriteFactor: sc.OverwriteFactor,
		Seed:            sc.Seed,
	})
}
