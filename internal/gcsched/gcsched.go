// Package gcsched paces background garbage collection. The stores run
// with lss.Config.BackgroundGC, so watermark pressure no longer runs a
// stop-the-world cycle inline with an allocation; instead a single
// controller goroutine buys bounded slices of relocation work from the
// neediest shard, backing off while the serving layer's live tail
// latency or the device queues say foreground traffic needs the
// columns more.
//
// Three live signals drive each decision:
//
//   - urgency: each shard's distance to its GC watermarks
//     (0 at the high watermark, 1 at the low one). The neediest shard
//     is scheduled; the slice budget scales with its urgency.
//   - device queue fill: the most backlogged column's bounded sink
//     queue. A nearly full queue means GC chunk writes would displace
//     foreground flushes head-on, so non-urgent slices wait.
//   - serving-layer p999: a windowed tail quantile from the request
//     tracer. While it exceeds the target, non-urgent slices wait.
//
// The controller is deliberately serial: one slice anywhere in the
// system at a time, so no two shards relocate simultaneously and no
// stripe ever sees two GC-busy columns — the background-mode
// replacement for the synchronous path's one-token cross-shard gate.
// Correctness never depends on the pacer: if it falls behind (or never
// runs), each store runs an emergency synchronous cycle when its free
// pool hits the hard floor.
package gcsched

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"adapt/internal/telemetry"
)

// Shard is one independently steppable GC domain (a prototype engine
// shard). Implementations lock their own store for the duration of
// each call.
type Shard interface {
	GCNeeded() bool
	GCUrgency() float64
	GCStep(budget int) bool
}

// Config tunes the pacer. Zero values take defaults.
type Config struct {
	// Interval is the pacing tick (default 2ms). Each tick makes at
	// most one scheduling decision and buys at most one slice.
	Interval time.Duration
	// SliceUnits is the relocation budget of a tick at urgency 1.0, in
	// GC work units (one unit ≈ one victim chunk scanned or one block
	// relocated; default 32). The effective budget scales linearly with
	// urgency, clamped to [SliceUnits/4, 4*SliceUnits].
	SliceUnits int
	// MicroSlice bounds one store-lock hold (default 8 units): a tick's
	// budget is bought as a sequence of micro-slices with separate lock
	// acquisitions, so foreground writes interleave between them and the
	// worst-case wait behind background GC is one micro-slice, not one
	// tick budget.
	MicroSlice int
	// TargetP999 backs off non-urgent slices while the observed tail
	// exceeds it (default 0: no tail feedback).
	TargetP999 time.Duration
	// P999 supplies the live tail latency (required when TargetP999 is
	// set).
	P999 func() time.Duration
	// QueueHighFill backs off non-urgent slices while QueueFill exceeds
	// it (default 0.75).
	QueueHighFill float64
	// VetoUrgency bounds the backoff signals' authority (default 0.5):
	// once the neediest shard's urgency reaches it, tail and queue
	// vetoes no longer defer the slice. Deferral is a positive feedback
	// loop — deferred GC drains the pool, an emergency cycle at the
	// floor spikes the very tail signal that caused the deferral — so
	// the veto must lose its vote with half the watermark cushion still
	// unspent, not at the low watermark when the cushion is gone.
	VetoUrgency float64
	// QueueFill supplies the worst device-queue fill fraction (nil: no
	// queue feedback).
	QueueFill func() float64
	// Telemetry, when set, registers the pacer's counters.
	Telemetry *telemetry.Set
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.Interval == 0 {
		cfg.Interval = 2 * time.Millisecond
	}
	if cfg.Interval < 0 {
		return cfg, fmt.Errorf("gcsched: negative interval %v", cfg.Interval)
	}
	if cfg.SliceUnits == 0 {
		cfg.SliceUnits = 32
	}
	if cfg.SliceUnits < 0 {
		return cfg, fmt.Errorf("gcsched: negative slice budget %d", cfg.SliceUnits)
	}
	if cfg.MicroSlice == 0 {
		cfg.MicroSlice = 8
	}
	if cfg.MicroSlice < 0 {
		return cfg, fmt.Errorf("gcsched: negative micro-slice %d", cfg.MicroSlice)
	}
	if cfg.TargetP999 < 0 {
		return cfg, fmt.Errorf("gcsched: negative p999 target %v", cfg.TargetP999)
	}
	if cfg.TargetP999 > 0 && cfg.P999 == nil {
		return cfg, fmt.Errorf("gcsched: TargetP999 set without a P999 source")
	}
	if cfg.QueueHighFill == 0 {
		cfg.QueueHighFill = 0.75
	}
	if cfg.QueueHighFill < 0 || cfg.QueueHighFill > 1 {
		return cfg, fmt.Errorf("gcsched: queue fill threshold %.2f outside [0,1]", cfg.QueueHighFill)
	}
	if cfg.VetoUrgency == 0 {
		cfg.VetoUrgency = 0.5
	}
	if cfg.VetoUrgency < 0 {
		return cfg, fmt.Errorf("gcsched: negative veto urgency %.2f", cfg.VetoUrgency)
	}
	return cfg, nil
}

// Stats is a point-in-time snapshot of the pacer's counters.
type Stats struct {
	// Slices is the number of GC slices bought; Units the total
	// relocation budget handed out with them.
	Slices, Units int64
	// TailSkips and QueueSkips count ticks where a needy shard existed
	// but the tail-latency or queue-fill signal deferred it.
	TailSkips, QueueSkips int64
	// IdleTicks counts ticks with no shard needing GC.
	IdleTicks int64
}

// Controller is the background GC pacer. Construct with New, then
// either Start a pacing goroutine or drive Tick directly (tests).
type Controller struct {
	cfg    Config
	shards []Shard

	slices     atomic.Int64
	units      atomic.Int64
	tailSkips  atomic.Int64
	queueSkips atomic.Int64
	idleTicks  atomic.Int64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New validates cfg and builds a controller over the given shards.
func New(cfg Config, shards []Shard) (*Controller, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("gcsched: no shards")
	}
	c := &Controller{
		cfg:    cfg,
		shards: shards,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if ts := cfg.Telemetry; ts != nil {
		type counter struct {
			name, help string
			v          *atomic.Int64
		}
		for _, m := range []counter{
			{telemetry.MetricGCSchedSlices, "GC slices bought by the pacer", &c.slices},
			{telemetry.MetricGCSchedUnits, "Relocation budget handed out by the pacer", &c.units},
			{telemetry.MetricGCSchedTailSkips, "Slices deferred by the tail-latency signal", &c.tailSkips},
			{telemetry.MetricGCSchedQueueSkips, "Slices deferred by the queue-fill signal", &c.queueSkips},
		} {
			v := m.v
			ts.Registry.NewFuncGauge(m.name, m.help, true, v.Load)
		}
	}
	return c, nil
}

// Start launches the pacing goroutine. Stop it with Stop.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		go func() {
			defer close(c.done)
			t := time.NewTicker(c.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-c.stop:
					return
				case <-t.C:
					c.Tick()
				}
			}
		}()
	})
}

// Stop halts the pacing goroutine and waits for it. Safe to call
// without Start and more than once.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.startOnce.Do(func() { close(c.done) })
	<-c.done
}

// Tick makes one scheduling decision: pick the neediest shard, consult
// the backoff signals, and buy at most one urgency-scaled slice. It
// returns true if a slice ran. Exported so tests (and the simulator's
// per-op stepping) can drive the pacer deterministically without the
// goroutine.
func (c *Controller) Tick() bool {
	best, bestU := -1, 0.0
	for i, sh := range c.shards {
		if !sh.GCNeeded() {
			continue
		}
		if u := sh.GCUrgency(); best < 0 || u > bestU {
			best, bestU = i, u
		}
	}
	if best < 0 {
		c.idleTicks.Add(1)
		return false
	}
	// The backoff signals only get a veto while the neediest shard is
	// still comfortably above its watermark cushion's midpoint. Past
	// VetoUrgency the slice runs regardless — better a paced slice now
	// than an emergency stop-the-world cycle at the floor, which would
	// spike the very tail signal that deferred the pacing.
	if bestU < c.cfg.VetoUrgency {
		if c.cfg.TargetP999 > 0 && c.cfg.P999() > c.cfg.TargetP999 {
			c.tailSkips.Add(1)
			return false
		}
		if c.cfg.QueueFill != nil && c.cfg.QueueFill() > c.cfg.QueueHighFill {
			c.queueSkips.Add(1)
			return false
		}
	}
	scale := bestU
	if scale < 0.25 {
		scale = 0.25
	}
	if scale > 4 {
		scale = 4
	}
	budget := int(float64(c.cfg.SliceUnits) * scale)
	if budget < 1 {
		budget = 1
	}
	// Buy the budget as micro-slices: each GCStep is its own lock
	// acquisition on the shard, so a foreground write waits at most one
	// micro-slice even when an urgent tick buys 4× the base budget. The
	// Gosched between slices matters: without it the hot loop re-locks
	// before a blocked writer is rescheduled (Go mutexes barge), and the
	// micro-slicing buys nothing.
	sh := c.shards[best]
	for spent := 0; spent < budget; {
		step := c.cfg.MicroSlice
		if rest := budget - spent; step > rest {
			step = rest
		}
		done := sh.GCStep(step)
		spent += step
		c.slices.Add(1)
		c.units.Add(int64(step))
		if done {
			break
		}
		runtime.Gosched()
	}
	return true
}

// Stats snapshots the pacer counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Slices:     c.slices.Load(),
		Units:      c.units.Load(),
		TailSkips:  c.tailSkips.Load(),
		QueueSkips: c.queueSkips.Load(),
		IdleTicks:  c.idleTicks.Load(),
	}
}
