package gcsched

import (
	"sync"
	"testing"
	"time"
)

// fakeShard scripts one GC domain: fixed urgency, a countdown of
// pending work, and a record of the budgets it was handed.
type fakeShard struct {
	mu      sync.Mutex
	urgency float64
	pending int
	budgets []int
}

func (f *fakeShard) GCNeeded() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pending > 0
}

func (f *fakeShard) GCUrgency() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.urgency
}

func (f *fakeShard) GCStep(budget int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budgets = append(f.budgets, budget)
	f.pending -= budget
	return f.pending <= 0
}

func TestTickPicksNeediestShard(t *testing.T) {
	calm := &fakeShard{urgency: 0.2, pending: 100}
	needy := &fakeShard{urgency: 0.9, pending: 100}
	idle := &fakeShard{urgency: 0, pending: 0}
	c, err := New(Config{SliceUnits: 10}, []Shard{calm, needy, idle})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Tick() {
		t.Fatal("tick with needy shards bought nothing")
	}
	if len(needy.budgets) == 0 || len(calm.budgets) != 0 {
		t.Fatalf("wrong shard scheduled: needy=%v calm=%v", needy.budgets, calm.budgets)
	}
	// Budget scales with urgency (10 × 0.9 = 9), bought as micro-slices
	// of at most 8 units each.
	if got := sum(needy.budgets); got != 9 {
		t.Fatalf("tick budget %d (%v), want 9", got, needy.budgets)
	}
	for _, b := range needy.budgets {
		if b > 8 {
			t.Fatalf("micro-slice %d exceeds the 8-unit lock-hold bound", b)
		}
	}
	st := c.Stats()
	if st.Slices != int64(len(needy.budgets)) || st.Units != 9 {
		t.Fatalf("stats %+v, want %d slices of 9 total units", st, len(needy.budgets))
	}
}

func TestTickIdleWhenNothingNeeded(t *testing.T) {
	c, err := New(Config{}, []Shard{&fakeShard{}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Tick() {
		t.Fatal("idle tick bought a slice")
	}
	if st := c.Stats(); st.IdleTicks != 1 || st.Slices != 0 {
		t.Fatalf("stats %+v, want one idle tick", st)
	}
}

func TestBackoffSignalsDeferNonUrgentSlices(t *testing.T) {
	sh := &fakeShard{urgency: 0.3, pending: 1000} // below the veto band

	tail := time.Duration(0)
	fill := 0.0
	c, err := New(Config{
		SliceUnits: 8,
		TargetP999: time.Millisecond,
		P999:       func() time.Duration { return tail },
		QueueFill:  func() float64 { return fill },
	}, []Shard{sh})
	if err != nil {
		t.Fatal(err)
	}
	tail = 2 * time.Millisecond // tail over target: defer
	if c.Tick() {
		t.Fatal("slice ran despite tail over target")
	}
	tail = 0
	fill = 0.9 // queue over threshold: defer
	if c.Tick() {
		t.Fatal("slice ran despite full queue")
	}
	fill = 0.1
	if !c.Tick() {
		t.Fatal("healthy signals still deferred the slice")
	}
	st := c.Stats()
	if st.TailSkips != 1 || st.QueueSkips != 1 || st.Slices != 1 {
		t.Fatalf("stats %+v, want 1 tail skip, 1 queue skip, 1 slice", st)
	}
}

func TestUrgencyBypassesBackoff(t *testing.T) {
	// Past the veto band (default 0.5) the backoff signals lose their
	// vote: half the watermark cushion spent is already too close to an
	// emergency cycle to keep deferring.
	for _, urgency := range []float64{0.5, 1.5} {
		sh := &fakeShard{urgency: urgency, pending: 1000}
		c, err := New(Config{
			SliceUnits: 8,
			TargetP999: time.Millisecond,
			P999:       func() time.Duration { return time.Hour },
			QueueFill:  func() float64 { return 1.0 },
		}, []Shard{sh})
		if err != nil {
			t.Fatal(err)
		}
		if !c.Tick() {
			t.Fatalf("shard at urgency %v deferred by backoff signals", urgency)
		}
		want := int(8 * urgency)
		if got := sum(sh.budgets); got != want {
			t.Fatalf("urgency %v: tick budget %d (%v), want %d", urgency, got, sh.budgets, want)
		}
	}
}

func sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

func TestBudgetScaleClamps(t *testing.T) {
	low := &fakeShard{urgency: 0.01, pending: 1000}
	c, err := New(Config{SliceUnits: 100}, []Shard{low})
	if err != nil {
		t.Fatal(err)
	}
	c.Tick()
	if got := sum(low.budgets); got != 25 { // clamped to SliceUnits/4
		t.Fatalf("low-urgency budget %d, want 25", got)
	}
	high := &fakeShard{urgency: 50, pending: 10000}
	c2, err := New(Config{SliceUnits: 100}, []Shard{high})
	if err != nil {
		t.Fatal(err)
	}
	c2.Tick()
	if got := sum(high.budgets); got != 400 { // clamped to 4×SliceUnits
		t.Fatalf("high-urgency budget %d, want 400", got)
	}
	for _, b := range high.budgets {
		if b > 8 {
			t.Fatalf("micro-slice %d exceeds the 8-unit lock-hold bound", b)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Interval: -time.Second},
		{SliceUnits: -1},
		{TargetP999: -time.Second},
		{TargetP999: time.Second}, // no P999 source
		{QueueHighFill: 1.5},
		{QueueHighFill: -0.5},
		{VetoUrgency: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, []Shard{&fakeShard{}}); err == nil {
			t.Errorf("case %d: bad config %+v accepted", i, cfg)
		}
	}
	if _, err := New(Config{}, nil); err == nil {
		t.Error("controller with no shards accepted")
	}
}

func TestStartStopDrainsPendingWork(t *testing.T) {
	sh := &fakeShard{urgency: 2, pending: 500}
	c, err := New(Config{Interval: 100 * time.Microsecond, SliceUnits: 32}, []Shard{sh})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	deadline := time.Now().Add(5 * time.Second)
	for sh.GCNeeded() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	if sh.GCNeeded() {
		t.Fatal("pacer goroutine never drained the pending work")
	}
	if st := c.Stats(); st.Slices == 0 {
		t.Fatalf("stats %+v, want slices > 0", st)
	}
}

func TestStopWithoutStart(t *testing.T) {
	c, err := New(Config{}, []Shard{&fakeShard{}})
	if err != nil {
		t.Fatal(err)
	}
	c.Stop() // must not hang or panic
}
