// Package sampling implements the SHARDS-style spatial sampler used by
// ADAPT's density-aware threshold adaptation (§3.2). Request blocks are
// sampled uniformly by hashing their LBA; sampled blocks feed a
// distance tree that yields unique-block access intervals, which are
// scaled by the sampling rate to estimate real intervals. Per §4.4 the
// sampler costs ≈ 44 bytes per tracked block.
package sampling

import "adapt/internal/distance"

// Sample is the outcome of offering one block write to the sampler.
type Sample struct {
	// Sampled reports whether the block passed the spatial filter.
	Sampled bool
	// First reports whether this is the first sampled access to the LBA.
	First bool
	// UniqueInterval is the estimated number of distinct blocks written
	// between the two most recent writes of this LBA, already scaled to
	// the full (unsampled) stream. Valid only when Sampled && !First.
	UniqueInterval int64
	// RawInterval is the estimated number of block writes (with
	// duplicates) between the two most recent writes of this LBA,
	// scaled to the full stream. Valid only when Sampled && !First.
	RawInterval int64
	// UniqueSampled is the unscaled reuse distance within the sampled
	// sub-stream — the native unit of ghost-set thresholds. Valid only
	// when Sampled && !First.
	UniqueSampled int64
}

// Sampler spatially samples a write stream and reports access
// intervals for the sampled sub-stream.
type Sampler struct {
	rate      float64
	threshold uint64 // sampled iff hash(lba) < threshold
	tree      *distance.Tracker
	lastSeq   map[int64]int64 // sampled LBA -> sampled-stream seq of last access
	seq       int64           // sampled accesses so far
	offered   int64           // total accesses offered
	rawSum    float64         // sum of raw sampled intervals (for ratio)
	uniqSum   float64         // sum of unique sampled intervals
	nPairs    int64
}

// NewSampler returns a sampler with the given rate in (0, 1].
func NewSampler(rate float64) *Sampler {
	if rate <= 0 {
		rate = 0.001
	}
	if rate > 1 {
		rate = 1
	}
	var threshold uint64
	if rate >= 1 {
		threshold = ^uint64(0)
	} else {
		threshold = uint64(rate * float64(^uint64(0)))
	}
	return &Sampler{
		rate:      rate,
		threshold: threshold,
		tree:      distance.NewTracker(1024),
		lastSeq:   make(map[int64]int64),
	}
}

// Rate returns the configured sampling rate.
func (s *Sampler) Rate() float64 { return s.rate }

func hashLBA(lba int64) uint64 {
	x := uint64(lba)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Sampled reports whether lba passes the spatial filter, without
// recording an access.
func (s *Sampler) Sampled(lba int64) bool {
	return hashLBA(lba) < s.threshold
}

// Offer presents one block write to the sampler.
func (s *Sampler) Offer(lba int64) Sample {
	s.offered++
	if !s.Sampled(lba) {
		return Sample{}
	}
	scale := 1.0 / s.rate
	d := s.tree.Access(lba)
	prev, seen := s.lastSeq[lba]
	s.lastSeq[lba] = s.seq
	s.seq++
	if !seen || d == distance.Infinite {
		return Sample{Sampled: true, First: true}
	}
	rawSampled := s.seq - 1 - prev
	s.rawSum += float64(rawSampled)
	s.uniqSum += float64(d)
	s.nPairs++
	return Sample{
		Sampled:        true,
		UniqueInterval: int64(float64(d) * scale),
		RawInterval:    int64(float64(rawSampled) * scale),
		UniqueSampled:  d,
	}
}

// UniqueBlocks estimates the number of distinct blocks in the full
// stream from the sampled sub-stream.
func (s *Sampler) UniqueBlocks() int64 {
	return int64(float64(s.tree.Unique()) / s.rate)
}

// RawPerUnique returns the average ratio of raw interval to unique
// interval over all sampled reuse pairs; 1 when no duplicates have
// been observed. Threshold adaptation uses it to convert ghost-set
// thresholds (unique-block units) into real write-clock units.
func (s *Sampler) RawPerUnique() float64 {
	if s.nPairs == 0 || s.uniqSum == 0 {
		return 1
	}
	r := s.rawSum / s.uniqSum
	if r < 1 {
		return 1
	}
	return r
}

// Offered returns the total number of accesses offered.
func (s *Sampler) Offered() int64 { return s.offered }

// SampledCount returns the number of accesses that passed the filter.
func (s *Sampler) SampledCount() int64 { return s.seq }

// Footprint estimates memory use in bytes. The paper reports ≈ 44
// bytes per sampled block for the sampling module; our map entry plus
// the distance-tree record is in the same regime.
func (s *Sampler) Footprint() int64 {
	return s.tree.Footprint() + int64(len(s.lastSeq))*44
}
