package sampling

import (
	"math"
	"testing"

	"adapt/internal/sim"
)

func TestFullRateSamplesEverything(t *testing.T) {
	s := NewSampler(1)
	for i := int64(0); i < 100; i++ {
		res := s.Offer(i)
		if !res.Sampled {
			t.Fatalf("rate-1 sampler rejected lba %d", i)
		}
		if !res.First {
			t.Fatalf("first access to lba %d not flagged First", i)
		}
	}
	if s.SampledCount() != 100 {
		t.Fatalf("SampledCount = %d, want 100", s.SampledCount())
	}
}

func TestIntervalAtFullRate(t *testing.T) {
	s := NewSampler(1)
	// Write 0,1,2,...,9 then 0 again: unique interval 9, raw interval 10.
	for i := int64(0); i < 10; i++ {
		s.Offer(i)
	}
	res := s.Offer(0)
	if res.First {
		t.Fatal("re-access flagged as First")
	}
	if res.UniqueInterval != 9 {
		t.Fatalf("UniqueInterval = %d, want 9", res.UniqueInterval)
	}
	if res.RawInterval != 10 {
		t.Fatalf("RawInterval = %d, want 10", res.RawInterval)
	}
}

func TestSamplingRateApproximation(t *testing.T) {
	const rate = 0.1
	s := NewSampler(rate)
	n := int64(200000)
	for i := int64(0); i < n; i++ {
		s.Offer(i)
	}
	got := float64(s.SampledCount()) / float64(n)
	if math.Abs(got-rate) > 0.01 {
		t.Fatalf("empirical sampling rate %.4f, want ≈ %.2f", got, rate)
	}
	// Unique-block estimate should be near n (all distinct).
	est := float64(s.UniqueBlocks())
	if math.Abs(est-float64(n))/float64(n) > 0.1 {
		t.Fatalf("UniqueBlocks estimate %.0f, want ≈ %d", est, n)
	}
}

func TestSamplingIsDeterministicPerLBA(t *testing.T) {
	s := NewSampler(0.25)
	for lba := int64(0); lba < 1000; lba++ {
		a, b := s.Sampled(lba), s.Sampled(lba)
		if a != b {
			t.Fatalf("Sampled(%d) not deterministic", lba)
		}
	}
}

func TestScaledIntervals(t *testing.T) {
	// At rate 0.5 a sampled raw interval d estimates a real interval of
	// about 2d. Build a stream where every sampled block repeats with a
	// fixed gap in the *sampled* sub-stream.
	s := NewSampler(0.5)
	var sampled []int64
	for lba := int64(0); len(sampled) < 20; lba++ {
		if s.Sampled(lba) {
			sampled = append(sampled, lba)
		}
	}
	for _, l := range sampled {
		s.Offer(l)
	}
	res := s.Offer(sampled[0])
	wantRaw := int64(float64(len(sampled)) / 0.5)
	if res.RawInterval != wantRaw {
		t.Fatalf("RawInterval = %d, want %d", res.RawInterval, wantRaw)
	}
}

func TestRawPerUniqueWithDuplicates(t *testing.T) {
	s := NewSampler(1)
	// Pattern: a b b b a — raw interval 4, unique interval 1 → ratio 4.
	s.Offer(1)
	s.Offer(2)
	s.Offer(2)
	s.Offer(2)
	s.Offer(1)
	// That access contributes raw=4, unique=1; b's re-accesses
	// contribute raw=1,unique=0 twice (unique sum unchanged).
	if r := s.RawPerUnique(); r < 1.5 {
		t.Fatalf("RawPerUnique = %.2f, want > 1.5 for duplicate-heavy stream", r)
	}
}

func TestRawPerUniqueDefaultsToOne(t *testing.T) {
	s := NewSampler(1)
	if r := s.RawPerUnique(); r != 1 {
		t.Fatalf("RawPerUnique with no pairs = %.2f, want 1", r)
	}
}

func TestDegenerateRates(t *testing.T) {
	for _, r := range []float64{-1, 0, 2} {
		s := NewSampler(r)
		if s.Rate() <= 0 || s.Rate() > 1 {
			t.Fatalf("rate %f not clamped: %f", r, s.Rate())
		}
	}
}

func TestFootprintScalesWithSampledBlocks(t *testing.T) {
	s := NewSampler(1)
	before := s.Footprint()
	for i := int64(0); i < 1000; i++ {
		s.Offer(i)
	}
	if s.Footprint() <= before {
		t.Fatal("footprint did not grow with sampled blocks")
	}
}

func BenchmarkOffer(b *testing.B) {
	s := NewSampler(0.01)
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Offer(rng.Int63n(1 << 22))
	}
}
