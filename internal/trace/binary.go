package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"adapt/internal/sim"
)

// Binary trace format: a magic header followed by delta-encoded varint
// records. Synthesized volume suites are stored in this format; it is
// roughly 6× smaller than CSV and loss-free.
//
//	header: "ADPTRC01" | varint name length | name bytes | varint count
//	record: varint Δtime(ns) | byte op | varint offset | varint size
var binMagic = []byte("ADPTRC01")

// ErrBadFormat reports a malformed binary trace.
var ErrBadFormat = errors.New("trace: bad binary format")

// WriteBinary encodes t to w.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Records))); err != nil {
		return err
	}
	var prev sim.Time
	for _, r := range t.Records {
		d := r.Time - prev
		if d < 0 {
			return fmt.Errorf("trace: unsorted records (WriteBinary requires time order)")
		}
		prev = r.Time
		if err := putUvarint(uint64(d)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(r.Op)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Offset)); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Size)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if string(head) != string(binMagic) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: name length: %v", ErrBadFormat, err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("%w: name length %d", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrBadFormat, err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: record count: %v", ErrBadFormat, err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("%w: record count %d", ErrBadFormat, count)
	}
	t := &Trace{Name: string(name), Records: make([]Record, 0, count)}
	var now sim.Time
	for i := uint64(0); i < count; i++ {
		d, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d time: %v", ErrBadFormat, i, err)
		}
		op, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: record %d op: %v", ErrBadFormat, i, err)
		}
		off, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d offset: %v", ErrBadFormat, i, err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d size: %v", ErrBadFormat, i, err)
		}
		now += sim.Time(d)
		t.Records = append(t.Records, Record{
			Time: now, Op: Op(op), Offset: int64(off), Size: int64(size),
		})
	}
	return t, nil
}
