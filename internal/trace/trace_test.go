package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"adapt/internal/lss"
	"adapt/internal/sim"
)

func TestParseMSR(t *testing.T) {
	src := strings.Join([]string{
		"128166372003061629,usr,0,Write,0,4096,100",
		"128166372013061629,usr,0,Read,8192,8192,50",
		"128166372023061629,usr,0,write,16384,4096,80",
	}, "\n")
	tr, err := ParseMSR(strings.NewReader(src), "msr-test")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 3 {
		t.Fatalf("%d records, want 3", len(tr.Records))
	}
	if tr.Records[0].Time != 0 {
		t.Fatalf("first record not rebased: %v", tr.Records[0].Time)
	}
	// 10^7 filetime ticks = 1 second.
	if tr.Records[1].Time != sim.Second {
		t.Fatalf("second record at %v, want 1s", tr.Records[1].Time)
	}
	if tr.Records[1].Op != OpRead || tr.Records[2].Op != OpWrite {
		t.Fatal("op parsing wrong (case-insensitivity)")
	}
	if tr.Records[2].Offset != 16384 {
		t.Fatalf("offset = %d", tr.Records[2].Offset)
	}
}

func TestParseMSRRejectsGarbage(t *testing.T) {
	if _, err := ParseMSR(strings.NewReader("not,a,trace"), "x"); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := ParseMSR(strings.NewReader("a,b,c,Write,1,2,3"), "x"); err == nil {
		t.Fatal("bad timestamp accepted")
	}
}

func TestParseAli(t *testing.T) {
	src := "3,W,1024,4096,1000000\n3,R,0,512,1500000\n"
	tr, err := ParseAli(strings.NewReader(src), "ali-test")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("%d records", len(tr.Records))
	}
	if tr.Records[0].Op != OpWrite || tr.Records[1].Op != OpRead {
		t.Fatal("ops wrong")
	}
	if tr.Records[1].Time != 500*sim.Millisecond {
		t.Fatalf("time = %v, want 500ms", tr.Records[1].Time)
	}
}

func TestParseTencent(t *testing.T) {
	src := "1538323200,8,8,1,1283\n1538323201,16,1,0,1283\n"
	tr, err := ParseTencent(strings.NewReader(src), "tc-test")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Records[0].Offset != 8*512 || tr.Records[0].Size != 8*512 {
		t.Fatalf("sector conversion wrong: %+v", tr.Records[0])
	}
	if tr.Records[0].Op != OpWrite || tr.Records[1].Op != OpRead {
		t.Fatal("ioType parsing wrong")
	}
	if tr.Records[1].Time != sim.Second {
		t.Fatalf("time = %v", tr.Records[1].Time)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := &Trace{Name: "rt", Records: []Record{
		{Time: 0, Op: OpWrite, Offset: 4096, Size: 8192},
		{Time: 100, Op: OpRead, Offset: 0, Size: 4096},
		{Time: 5000, Op: OpWrite, Offset: 1 << 30, Size: 65536},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || len(got.Records) != len(orig.Records) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range orig.Records {
		if got.Records[i] != orig.Records[i] {
			t.Fatalf("record %d: %+v != %+v", i, got.Records[i], orig.Records[i])
		}
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(times []uint32, sizes []uint16) bool {
		tr := &Trace{Name: "q"}
		now := sim.Time(0)
		for i := range times {
			now += sim.Time(times[i])
			size := int64(4096)
			if len(sizes) > 0 {
				size = int64(sizes[i%len(sizes)])*512 + 512
			}
			tr.Records = append(tr.Records, Record{
				Time: now, Op: Op(i % 2), Offset: int64(i) * 4096, Size: size,
			})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("JUNKJUNK")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	tr := &Trace{Name: "x", Records: []Record{{Time: 1, Op: OpWrite, Offset: 0, Size: 4096}}}
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestBinaryRejectsUnsorted(t *testing.T) {
	tr := &Trace{Name: "x", Records: []Record{
		{Time: 100, Op: OpWrite, Offset: 0, Size: 4096},
		{Time: 50, Op: OpWrite, Offset: 0, Size: 4096},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err == nil {
		t.Fatal("unsorted trace accepted")
	}
}

func TestDensify(t *testing.T) {
	tr := &Trace{Name: "d", Records: []Record{
		{Time: 0, Op: OpWrite, Offset: 1 << 30, Size: 8192}, // blocks X, X+1
		{Time: 1, Op: OpWrite, Offset: 1 << 40, Size: 4096}, // far block Y
		{Time: 2, Op: OpWrite, Offset: 1 << 30, Size: 4096}, // block X again
	}}
	dense, blocks := tr.Densify(4096)
	if blocks != 3 {
		t.Fatalf("dense blocks = %d, want 3", blocks)
	}
	if dense.Records[0].Offset != 0 || dense.Records[0].Size != 8192 {
		t.Fatalf("first record not remapped contiguously: %+v", dense.Records[0])
	}
	if dense.Records[1].Offset != 2*4096 {
		t.Fatalf("second record offset = %d", dense.Records[1].Offset)
	}
	// Repeat access maps to the same dense block.
	if dense.Records[2].Offset != 0 {
		t.Fatalf("repeat access remapped to %d", dense.Records[2].Offset)
	}
}

func TestAnalyze(t *testing.T) {
	tr := &Trace{Name: "a", Records: []Record{
		{Time: 0, Op: OpWrite, Offset: 0, Size: 4096},
		{Time: sim.Second, Op: OpWrite, Offset: 4096, Size: 8192},
		{Time: 2 * sim.Second, Op: OpRead, Offset: 0, Size: 4096},
	}}
	s := tr.Analyze(4096)
	if s.Writes != 2 || s.Reads != 1 {
		t.Fatalf("writes/reads = %d/%d", s.Writes, s.Reads)
	}
	if s.ReqPerSec != 1.5 {
		t.Fatalf("ReqPerSec = %v, want 1.5", s.ReqPerSec)
	}
	if s.AvgWriteKiB != 6 {
		t.Fatalf("AvgWriteKiB = %v, want 6", s.AvgWriteKiB)
	}
	if s.FootprintKiB != 12 {
		t.Fatalf("FootprintKiB = %v, want 12 (3 blocks)", s.FootprintKiB)
	}
}

type userOnly struct{}

func (userOnly) Name() string { return "user-only" }
func (userOnly) Groups() int  { return 2 }
func (userOnly) PlaceUser(int64, sim.Time, sim.WriteClock) lss.GroupID {
	return 0
}
func (userOnly) PlaceGC(int64, lss.GroupID, sim.WriteClock, sim.WriteClock, sim.WriteClock) lss.GroupID {
	return 1
}

func TestReplayDrivesStore(t *testing.T) {
	tr := &Trace{Name: "r"}
	now := sim.Time(0)
	for i := 0; i < 2000; i++ {
		now += 10 * sim.Microsecond
		tr.Records = append(tr.Records, Record{
			Time: now, Op: OpWrite,
			Offset: int64(i%500) * 4096, Size: 4096,
		})
	}
	cfg := lss.Config{UserBlocks: 512, ChunkBlocks: 4, SegmentChunks: 8, OverProvision: 0.25}
	s := lss.New(cfg, userOnly{})
	if err := Replay(s, tr); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().UserBlocks; got != 2000 {
		t.Fatalf("UserBlocks = %d, want 2000", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayRejectsOutOfRange(t *testing.T) {
	tr := &Trace{Name: "bad", Records: []Record{
		{Time: 0, Op: OpWrite, Offset: 1 << 40, Size: 4096},
	}}
	cfg := lss.Config{UserBlocks: 512, ChunkBlocks: 4, SegmentChunks: 8, OverProvision: 0.25}
	s := lss.New(cfg, userOnly{})
	if err := Replay(s, tr); err == nil {
		t.Fatal("out-of-range replay accepted")
	}
}

func TestSortByTime(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Time: 30}, {Time: 10}, {Time: 20},
	}}
	tr.SortByTime()
	if tr.Records[0].Time != 10 || tr.Records[2].Time != 30 {
		t.Fatalf("not sorted: %+v", tr.Records)
	}
}
