package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"adapt/internal/sim"
)

// ParseMSR reads an MSR-Cambridge CSV trace:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is a Windows filetime (100 ns ticks since 1601); times are
// rebased to the first record. Type is "Read" or "Write".
func ParseMSR(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	sc := newScanner(r)
	var base int64 = -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 6 {
			return nil, fmt.Errorf("msr %s: short line %q", name, line)
		}
		ts, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("msr %s: bad timestamp %q", name, f[0])
		}
		off, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("msr %s: bad offset %q", name, f[4])
		}
		size, err := strconv.ParseInt(f[5], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("msr %s: bad size %q", name, f[5])
		}
		if base < 0 {
			base = ts
		}
		op := OpRead
		if strings.EqualFold(strings.TrimSpace(f[3]), "write") {
			op = OpWrite
		}
		t.Records = append(t.Records, Record{
			Time:   sim.Time((ts - base) * 100), // filetime tick = 100 ns
			Op:     op,
			Offset: off,
			Size:   size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseAli reads an Alibaba cloud block storage CSV trace:
//
//	device_id,opcode,offset,length,timestamp
//
// offset/length in bytes, timestamp in microseconds, opcode R/W.
func ParseAli(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	sc := newScanner(r)
	var base int64 = -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 5 {
			return nil, fmt.Errorf("ali %s: short line %q", name, line)
		}
		off, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ali %s: bad offset %q", name, f[2])
		}
		size, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ali %s: bad length %q", name, f[3])
		}
		ts, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("ali %s: bad timestamp %q", name, f[4])
		}
		if base < 0 {
			base = ts
		}
		op := OpRead
		if strings.EqualFold(strings.TrimSpace(f[1]), "w") {
			op = OpWrite
		}
		t.Records = append(t.Records, Record{
			Time:   sim.Time(ts-base) * sim.Microsecond,
			Op:     op,
			Offset: off,
			Size:   size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseTencent reads a Tencent CBS CSV trace:
//
//	timestamp,offset,size,ioType,volumeID
//
// timestamp in seconds, offset and size in 512-byte sectors, ioType 0
// for read and 1 for write.
func ParseTencent(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	sc := newScanner(r)
	var base int64 = -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) < 4 {
			return nil, fmt.Errorf("tencent %s: short line %q", name, line)
		}
		ts, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tencent %s: bad timestamp %q", name, f[0])
		}
		off, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tencent %s: bad offset %q", name, f[1])
		}
		size, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tencent %s: bad size %q", name, f[2])
		}
		if base < 0 {
			base = ts
		}
		op := OpRead
		if strings.TrimSpace(f[3]) == "1" {
			op = OpWrite
		}
		t.Records = append(t.Records, Record{
			Time:   sim.Time(ts-base) * sim.Second,
			Op:     op,
			Offset: off * 512,
			Size:   size * 512,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return sc
}
