package trace

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets: parsers and the binary decoder must never panic on
// arbitrary input — they either parse or return an error.

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid trace and some corruptions.
	var buf bytes.Buffer
	tr := &Trace{Name: "seed", Records: []Record{
		{Time: 0, Op: OpWrite, Offset: 4096, Size: 4096},
		{Time: 100, Op: OpRead, Offset: 0, Size: 8192},
	}}
	if err := WriteBinary(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("ADPTRC01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil trace without error")
		}
	})
}

func FuzzParseMSR(f *testing.F) {
	f.Add("128166372003061629,usr,0,Write,0,4096,100")
	f.Add("garbage")
	f.Add("a,b,c,d,e,f,g")
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseMSR(strings.NewReader(line), "fuzz")
		if err == nil && tr == nil {
			t.Fatal("nil trace without error")
		}
	})
}

func FuzzParseAli(f *testing.F) {
	f.Add("3,W,1024,4096,1000000")
	f.Add(",,,,")
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseAli(strings.NewReader(line), "fuzz")
		if err == nil && tr == nil {
			t.Fatal("nil trace without error")
		}
	})
}

func FuzzParseTencent(f *testing.F) {
	f.Add("1538323200,8,8,1,1283")
	f.Add("-1,-2,-3,9,x")
	f.Fuzz(func(t *testing.T, line string) {
		tr, err := ParseTencent(strings.NewReader(line), "fuzz")
		if err == nil && tr == nil {
			t.Fatal("nil trace without error")
		}
	})
}
