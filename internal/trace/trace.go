// Package trace defines the block I/O trace model used throughout the
// repository, parsers for the three public trace formats the paper
// evaluates (MSR-Cambridge, Alibaba cloud block storage, Tencent CBS),
// a compact binary format for synthesized traces, and a replayer that
// drives an lss.Store.
package trace

import (
	"fmt"
	"sort"

	"adapt/internal/lss"
	"adapt/internal/sim"
)

// Op is the request type.
type Op uint8

// Request operations.
const (
	OpRead Op = iota
	OpWrite
)

// String returns "R" or "W".
func (o Op) String() string {
	if o == OpWrite {
		return "W"
	}
	return "R"
}

// Record is one block I/O request. Offset and Size are in bytes;
// Time is relative to the trace start.
type Record struct {
	Time   sim.Time
	Op     Op
	Offset int64
	Size   int64
}

// Trace is an ordered request sequence for a single volume.
type Trace struct {
	Name    string
	Records []Record
}

// Duration returns the time span covered by the trace.
func (t *Trace) Duration() sim.Time {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].Time - t.Records[0].Time
}

// Writes returns the number of write records.
func (t *Trace) Writes() int {
	n := 0
	for _, r := range t.Records {
		if r.Op == OpWrite {
			n++
		}
	}
	return n
}

// WriteBytes returns total bytes written.
func (t *Trace) WriteBytes() int64 {
	var n int64
	for _, r := range t.Records {
		if r.Op == OpWrite {
			n += r.Size
		}
	}
	return n
}

// SortByTime orders records by timestamp (stable), as replay requires.
func (t *Trace) SortByTime() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].Time < t.Records[j].Time
	})
}

// Stats summarizes a trace for workload characterization (Figure 2).
type Stats struct {
	Requests     int
	Writes       int
	Reads        int
	Duration     sim.Time
	ReqPerSec    float64 // average request rate
	AvgWriteKiB  float64 // mean write request size in KiB
	FootprintKiB int64   // distinct 4 KiB blocks touched by writes, in KiB
}

// Analyze computes summary statistics with the given block size.
func (t *Trace) Analyze(blockSize int64) Stats {
	if blockSize <= 0 {
		blockSize = 4096
	}
	s := Stats{Requests: len(t.Records), Duration: t.Duration()}
	var writeBytes int64
	seen := make(map[int64]struct{})
	for _, r := range t.Records {
		if r.Op == OpWrite {
			s.Writes++
			writeBytes += r.Size
			for b := r.Offset / blockSize; b <= (r.Offset+r.Size-1)/blockSize; b++ {
				seen[b] = struct{}{}
			}
		} else {
			s.Reads++
		}
	}
	if d := s.Duration.Seconds(); d > 0 {
		s.ReqPerSec = float64(s.Requests) / d
	}
	if s.Writes > 0 {
		s.AvgWriteKiB = float64(writeBytes) / float64(s.Writes) / 1024
	}
	s.FootprintKiB = int64(len(seen)) * blockSize / 1024
	return s
}

// Densify remaps the write footprint onto a dense block address space
// of the given block size, returning the remapped trace (offsets
// become block-aligned against the dense space) and the number of
// dense blocks. Replay against an lss.Store requires a bounded LBA
// space; production traces address sparse TiB-scale ranges.
func (t *Trace) Densify(blockSize int64) (*Trace, int64) {
	if blockSize <= 0 {
		blockSize = 4096
	}
	remap := make(map[int64]int64)
	next := int64(0)
	lookup := func(b int64) int64 {
		if d, ok := remap[b]; ok {
			return d
		}
		remap[b] = next
		next++
		return next - 1
	}
	out := &Trace{Name: t.Name, Records: make([]Record, 0, len(t.Records))}
	for _, r := range t.Records {
		first := r.Offset / blockSize
		last := (r.Offset + r.Size - 1) / blockSize
		if r.Size <= 0 {
			last = first
		}
		// Remap each covered block; contiguous runs stay contiguous on
		// first touch, so most requests remain single-extent. Split
		// non-contiguous remappings into per-block records.
		start := lookup(first)
		run := int64(1)
		for b := first + 1; b <= last; b++ {
			d := lookup(b)
			if d == start+run {
				run++
				continue
			}
			out.Records = append(out.Records, Record{
				Time: r.Time, Op: r.Op, Offset: start * blockSize, Size: run * blockSize,
			})
			start, run = d, 1
		}
		out.Records = append(out.Records, Record{
			Time: r.Time, Op: r.Op, Offset: start * blockSize, Size: run * blockSize,
		})
	}
	return out, next
}

// Replay drives an lss.Store with the trace. The trace must already be
// densified to fit the store's LBA space. Reads are forwarded for
// accounting; writes are placed block by block. Replay calls Drain at
// the end so padding accounting is complete.
func Replay(s *lss.Store, t *Trace) error {
	bs := int64(s.Config().BlockSize)
	for i := range t.Records {
		r := &t.Records[i]
		lba := r.Offset / bs
		blocks := int((r.Size + bs - 1) / bs)
		if blocks < 1 {
			blocks = 1
		}
		if r.Op == OpRead {
			s.Read(lba, blocks, r.Time)
			continue
		}
		if err := s.Write(lba, blocks, r.Time); err != nil {
			return fmt.Errorf("replay %s record %d: %w", t.Name, i, err)
		}
	}
	s.Drain(s.Now() + sim.Second)
	return nil
}
