package ftl

import (
	"testing"

	"adapt/internal/sim"
)

func devCfg(streams int) Config {
	return Config{
		UserPages:     8 << 10,
		PagesPerBlock: 32,
		OverProvision: 0.15,
		Streams:       streams,
	}
}

func TestWriteAndMap(t *testing.T) {
	d := NewDevice(devCfg(1))
	if err := d.Write(5, 0); err != nil {
		t.Fatal(err)
	}
	if d.Metrics().HostPages != 1 {
		t.Fatalf("HostPages = %d", d.Metrics().HostPages)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBadPageRejected(t *testing.T) {
	d := NewDevice(devCfg(1))
	if err := d.Write(-1, 0); err == nil {
		t.Fatal("negative lpn accepted")
	}
	if err := d.Write(1<<40, 0); err == nil {
		t.Fatal("oversized lpn accepted")
	}
}

func TestStreamClamping(t *testing.T) {
	d := NewDevice(devCfg(2))
	// Out-of-range streams must clamp, not panic.
	if err := d.Write(1, 99); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(2, -1); err != nil {
		t.Fatal(err)
	}
}

func TestGCRunsAndPreservesPages(t *testing.T) {
	d := NewDevice(devCfg(1))
	rng := sim.NewRNG(1)
	for i := int64(0); i < 8<<10; i++ {
		if err := d.Write(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6*8<<10; i++ {
		if err := d.Write(rng.Int63n(8<<10), 0); err != nil {
			t.Fatal(err)
		}
	}
	m := d.Metrics()
	if m.Erases == 0 || m.MigratedPages == 0 {
		t.Fatalf("device GC inactive: %+v", m)
	}
	if m.WA() <= 1 {
		t.Fatalf("WA = %f", m.WA())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOverwriteCheapGC(t *testing.T) {
	// Strictly sequential overwrites invalidate whole erase blocks:
	// migrations should be almost zero.
	d := NewDevice(devCfg(1))
	for round := 0; round < 5; round++ {
		for i := int64(0); i < 8<<10; i++ {
			if err := d.Write(i, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := d.Metrics()
	if frac := float64(m.MigratedPages) / float64(m.HostPages); frac > 0.02 {
		t.Fatalf("sequential overwrite migrated %.2f%% of pages", 100*frac)
	}
}

// TestMultiStreamReducesWA is the §3.1 claim: separating hot and cold
// traffic into different streams lowers in-device WA versus mixing
// them into one stream.
func TestMultiStreamReducesWA(t *testing.T) {
	run := func(streams int) float64 {
		d := NewDevice(devCfg(streams))
		rng := sim.NewRNG(9)
		hotCut := int64(8<<10) / 5
		// Fill.
		for i := int64(0); i < 8<<10; i++ {
			if err := d.Write(i, 0); err != nil {
				t.Fatal(err)
			}
		}
		// 90% of writes hit the hot fifth of the space; hot traffic is
		// tagged to stream 1 when the device has streams.
		for i := 0; i < 8*8<<10; i++ {
			var lpn int64
			stream := 0
			if rng.Float64() < 0.9 {
				lpn = rng.Int63n(hotCut)
				if streams > 1 {
					stream = 1
				}
			} else {
				lpn = rng.Int63n(8 << 10)
			}
			if err := d.Write(lpn, stream); err != nil {
				t.Fatal(err)
			}
		}
		return d.Metrics().WA()
	}
	single := run(1)
	multi := run(2)
	if multi > single {
		t.Fatalf("multi-stream WA %.3f worse than single %.3f", multi, single)
	}
}

func TestWearImbalanceBounded(t *testing.T) {
	d := NewDevice(devCfg(1))
	rng := sim.NewRNG(2)
	for i := int64(0); i < 8<<10; i++ {
		d.Write(i, 0)
	}
	for i := 0; i < 10*8<<10; i++ {
		d.Write(rng.Int63n(8<<10), 0)
	}
	if wi := d.WearImbalance(); wi > 20 {
		t.Fatalf("wear imbalance %.1f implausibly high", wi)
	}
}

func TestDegenerateConfigs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero UserPages accepted")
		}
	}()
	NewDevice(Config{})
}

func BenchmarkDeviceWrite(b *testing.B) {
	d := NewDevice(Config{UserPages: 1 << 18, PagesPerBlock: 128, OverProvision: 0.2})
	rng := sim.NewRNG(1)
	for i := int64(0); i < 1<<18; i++ {
		d.Write(i, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(rng.Int63n(1<<18), 0)
	}
}
