// Package ftl models the inside of one SSD: a page-mapped flash
// translation layer with erase blocks, multi-stream write frontiers,
// greedy device-level garbage collection, and wear accounting. The
// paper notes (§3.1) that ADAPT "can leverage SSDs' multi-stream
// capability to reduce in-device WA by mapping groups to streams
// one-to-one"; this substrate lets the repository measure that claim:
// replaying the same chunk stream with and without stream tags shows
// how much internal write amplification the group separation removes.
package ftl

import (
	"errors"
	"fmt"
)

// Config describes the device geometry.
type Config struct {
	// PageBytes is the flash page size (default 4096).
	PageBytes int
	// PagesPerBlock is the erase-block size in pages (default 64).
	PagesPerBlock int
	// UserPages is the exported logical capacity in pages.
	UserPages int64
	// OverProvision is the physical spare fraction (default 0.10).
	OverProvision float64
	// Streams is the number of write streams the device accepts
	// (default 1; multi-stream devices expose 8–16).
	Streams int
	// GCLowWater triggers device GC when free blocks drop to it.
	GCLowWater int
}

func (c Config) withDefaults() Config {
	if c.PageBytes == 0 {
		c.PageBytes = 4096
	}
	if c.PagesPerBlock == 0 {
		c.PagesPerBlock = 64
	}
	if c.UserPages <= 0 {
		panic("ftl: UserPages must be positive")
	}
	if c.OverProvision == 0 {
		c.OverProvision = 0.10
	}
	if c.OverProvision < 0.02 {
		panic("ftl: over-provisioning below 2% cannot sustain GC")
	}
	if c.Streams < 1 {
		c.Streams = 1
	}
	if c.GCLowWater == 0 {
		c.GCLowWater = c.Streams + 2
	}
	return c
}

type eraseBlock struct {
	id      int
	pages   []int64 // slot -> lpn, -1 for GC-stream slack
	written int
	valid   int
	free    bool
	erases  int64
	stream  int
}

// Device is a page-mapped multi-stream SSD model. Not safe for
// concurrent use.
type Device struct {
	cfg    Config
	blocks []*eraseBlock
	freeL  []int
	active []*eraseBlock // per user stream
	gcOpen *eraseBlock   // write frontier for GC migrations
	maps   []int64       // lpn -> block*pagesPerBlock + slot, -1
	inGC   bool

	hostPages     int64
	migratedPages int64
	erases        int64
	gcRuns        int64
}

// NewDevice builds a device.
func NewDevice(cfg Config) *Device {
	cfg = cfg.withDefaults()
	phys := int64(float64(cfg.UserPages) * (1 + cfg.OverProvision))
	nblocks := int(phys)/cfg.PagesPerBlock + cfg.Streams + cfg.GCLowWater + 3
	d := &Device{
		cfg:    cfg,
		blocks: make([]*eraseBlock, nblocks),
		active: make([]*eraseBlock, cfg.Streams),
		maps:   make([]int64, cfg.UserPages),
	}
	for i := range d.blocks {
		d.blocks[i] = &eraseBlock{
			id:    i,
			pages: make([]int64, cfg.PagesPerBlock),
			free:  true,
		}
	}
	for i := nblocks - 1; i >= 0; i-- {
		d.freeL = append(d.freeL, i)
	}
	for i := range d.maps {
		d.maps[i] = -1
	}
	return d
}

// ErrBadPage reports an out-of-range logical page number.
var ErrBadPage = errors.New("ftl: logical page out of range")

// Write stores one logical page through the given stream. Streams
// outside [0, Streams) are clamped to stream 0, letting callers feed a
// single-stream device with tagged traffic unchanged.
func (d *Device) Write(lpn int64, stream int) error {
	if lpn < 0 || lpn >= d.cfg.UserPages {
		return fmt.Errorf("%w: %d", ErrBadPage, lpn)
	}
	if stream < 0 || stream >= d.cfg.Streams {
		stream = 0
	}
	d.hostPages++
	d.program(lpn, stream, false)
	return nil
}

// program appends the page to the stream frontier (or the GC frontier
// when migrating).
func (d *Device) program(lpn int64, stream int, migration bool) {
	var blk *eraseBlock
	if migration {
		if d.gcOpen == nil || d.gcOpen.written == d.cfg.PagesPerBlock {
			d.gcOpen = d.allocBlock(-1)
		}
		blk = d.gcOpen
	} else {
		if d.active[stream] == nil || d.active[stream].written == d.cfg.PagesPerBlock {
			d.active[stream] = d.allocBlock(stream)
		}
		blk = d.active[stream]
	}
	if old := d.maps[lpn]; old >= 0 {
		d.blocks[old/int64(d.cfg.PagesPerBlock)].valid--
	}
	slot := blk.written
	blk.pages[slot] = lpn
	blk.written++
	blk.valid++
	d.maps[lpn] = int64(blk.id)*int64(d.cfg.PagesPerBlock) + int64(slot)
}

func (d *Device) allocBlock(stream int) *eraseBlock {
	if !d.inGC && len(d.freeL) <= d.cfg.GCLowWater {
		d.gc()
	}
	if len(d.freeL) == 0 {
		panic("ftl: device out of free blocks")
	}
	id := d.freeL[len(d.freeL)-1]
	d.freeL = d.freeL[:len(d.freeL)-1]
	blk := d.blocks[id]
	blk.free = false
	blk.written = 0
	blk.valid = 0
	blk.stream = stream
	return blk
}

// gc reclaims erase blocks greedily until above the low watermark.
func (d *Device) gc() {
	d.inGC = true
	defer func() { d.inGC = false }()
	d.gcRuns++
	for len(d.freeL) <= d.cfg.GCLowWater+2 {
		victim := d.pickVictim()
		if victim == nil {
			return
		}
		base := int64(victim.id) * int64(d.cfg.PagesPerBlock)
		for slot := 0; slot < victim.written; slot++ {
			lpn := victim.pages[slot]
			if lpn < 0 || d.maps[lpn] != base+int64(slot) {
				continue
			}
			d.migratedPages++
			d.program(lpn, 0, true)
		}
		victim.free = true
		victim.erases++
		d.erases++
		d.freeL = append(d.freeL, victim.id)
	}
}

// pickVictim selects the fullest-garbage sealed block.
func (d *Device) pickVictim() *eraseBlock {
	var best *eraseBlock
	for _, blk := range d.blocks {
		if blk.free || blk.written < d.cfg.PagesPerBlock {
			continue // free or still a write frontier
		}
		if blk == d.gcOpen {
			continue
		}
		if blk.valid >= blk.written {
			continue
		}
		if best == nil || blk.valid < best.valid {
			best = blk
		}
	}
	return best
}

// Metrics of the device so far.
type Metrics struct {
	HostPages     int64
	MigratedPages int64
	Erases        int64
	GCRuns        int64
}

// Metrics returns a snapshot.
func (d *Device) Metrics() Metrics {
	return Metrics{
		HostPages:     d.hostPages,
		MigratedPages: d.migratedPages,
		Erases:        d.erases,
		GCRuns:        d.gcRuns,
	}
}

// WA is the device-internal write amplification:
// (host + migrated) / host pages.
func (m Metrics) WA() float64 {
	if m.HostPages == 0 {
		return 1
	}
	return float64(m.HostPages+m.MigratedPages) / float64(m.HostPages)
}

// WearImbalance reports max/mean erase count across blocks — a rough
// wear-leveling indicator.
func (d *Device) WearImbalance() float64 {
	var max, sum int64
	n := 0
	for _, blk := range d.blocks {
		sum += blk.erases
		if blk.erases > max {
			max = blk.erases
		}
		n++
	}
	if sum == 0 {
		return 1
	}
	mean := float64(sum) / float64(n)
	return float64(max) / mean
}

// CheckInvariants verifies mapping/valid-count consistency.
func (d *Device) CheckInvariants() error {
	recount := make([]int, len(d.blocks))
	var mapped int64
	for lpn, loc := range d.maps {
		if loc < 0 {
			continue
		}
		mapped++
		b := int(loc / int64(d.cfg.PagesPerBlock))
		s := int(loc % int64(d.cfg.PagesPerBlock))
		blk := d.blocks[b]
		if blk.free {
			return fmt.Errorf("lpn %d maps into free block %d", lpn, b)
		}
		if s >= blk.written || blk.pages[s] != int64(lpn) {
			return fmt.Errorf("lpn %d maps to wrong slot", lpn)
		}
		recount[b]++
	}
	var valid int64
	for i, blk := range d.blocks {
		if blk.free {
			continue
		}
		if blk.valid != recount[i] {
			return fmt.Errorf("block %d valid=%d recount=%d", i, blk.valid, recount[i])
		}
		valid += int64(blk.valid)
	}
	if valid != mapped {
		return fmt.Errorf("valid %d != mapped %d", valid, mapped)
	}
	return nil
}
