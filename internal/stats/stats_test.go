package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"adapt/internal/sim"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !almostEq(got, 5, 1e-9) {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5, 1e-9) {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if got := Stddev(xs); !almostEq(got, math.Sqrt(32.0/7.0), 1e-9) {
		t.Fatalf("Stddev = %v", got)
	}
	if got := Stddev([]float64{1}); got != 0 {
		t.Fatalf("Stddev single = %v, want 0", got)
	}
}

func TestSummarizeAndOutliers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 100}
	f := Summarize(xs)
	if f.Min != 1 || f.Max != 100 {
		t.Fatalf("min/max wrong: %+v", f)
	}
	if len(f.Outliers) != 1 || f.Outliers[0] != 100 {
		t.Fatalf("expected 100 as the single outlier, got %v", f.Outliers)
	}
	if !strings.Contains(f.String(), "outliers=1") {
		t.Fatalf("String() missing outlier count: %s", f.String())
	}
}

func TestSummarizeOrderInvariant(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		a := Summarize(xs)
		rev := make([]float64, len(xs))
		for i, x := range xs {
			rev[len(xs)-1-i] = x
		}
		b := Summarize(rev)
		return a.Min == b.Min && a.Median == b.Median && a.Max == b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v, want 0", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Fatalf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %v, want 2", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) = %v, want 4", got)
	}
	pts := c.Points(4)
	if len(pts) != 4 || pts[3][1] != 1 {
		t.Fatalf("Points = %v", pts)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64, probes []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		prevX, prevY := math.Inf(-1), 0.0
		for _, p := range probes {
			if math.IsNaN(p) || math.IsInf(p, 0) {
				continue
			}
			if p < prevX {
				continue
			}
			y := c.At(p)
			if y < prevY {
				return false
			}
			prevX, prevY = p, y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-9) {
		t.Fatalf("Pearson perfect positive = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-9) {
		t.Fatalf("Pearson perfect negative = %v", got)
	}
	if !math.IsNaN(Pearson(xs, []float64{1, 1, 1, 1, 1})) {
		t.Fatal("Pearson with zero variance should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Fatal("Pearson with one pair should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // underflow
	h.Add(50) // overflow
	if h.Count() != 12 {
		t.Fatalf("Count = %d, want 12", h.Count())
	}
	if h.Bin(0) != 1 || h.Bin(9) != 1 {
		t.Fatalf("bin counts wrong: %d %d", h.Bin(0), h.Bin(9))
	}
	if got := h.FractionBelow(5); !almostEq(got, 6.0/12, 1e-9) {
		// 5 in-range values below 5 plus the underflow.
		t.Fatalf("FractionBelow(5) = %v, want 0.5", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("scheme", "WA")
	tb.AddRow("ADAPT", 1.234)
	tb.AddRow("SepBIT", 1.5)
	out := tb.String()
	if !strings.Contains(out, "ADAPT") || !strings.Contains(out, "1.234") {
		t.Fatalf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestQuantilePercentileAgreement(t *testing.T) {
	rng := sim.NewRNG(11)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	c := NewCDF(xs)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		v := c.Quantile(q)
		// CDF at the quantile must be >= q and tight within one sample.
		if c.At(v) < q {
			t.Fatalf("At(Quantile(%v)) = %v < %v", q, c.At(v), q)
		}
	}
}
