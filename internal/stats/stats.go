// Package stats provides the summary statistics used by the experiment
// harness: percentiles, five-number (boxplot) summaries, empirical
// CDFs, histograms, Pearson correlation, and ASCII table rendering in
// the style of the paper's figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns NaN for empty input.
// It copies and sorts; callers that already hold sorted data should
// use SortedPercentile.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return SortedPercentile(s, p)
}

// SortedPercentile is Percentile over already-sorted input: no copy,
// no sort, O(1). The caller must have sorted s ascending.
func SortedPercentile(s []float64, p float64) float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the sample standard deviation (n-1 denominator).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// FiveNum is a boxplot summary.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
	Outliers                 []float64 // beyond 1.5×IQR whiskers
}

// Summarize computes the boxplot summary of xs. It sorts a copy once
// and takes every quartile from it via SortedPercentile.
func Summarize(xs []float64) FiveNum {
	if len(xs) == 0 {
		nan := math.NaN()
		return FiveNum{nan, nan, nan, nan, nan, nil}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	f := FiveNum{
		Min:    s[0],
		Q1:     SortedPercentile(s, 25),
		Median: SortedPercentile(s, 50),
		Q3:     SortedPercentile(s, 75),
		Max:    s[len(s)-1],
	}
	iqr := f.Q3 - f.Q1
	lo, hi := f.Q1-1.5*iqr, f.Q3+1.5*iqr
	for _, x := range xs {
		if x < lo || x > hi {
			f.Outliers = append(f.Outliers, x)
		}
	}
	return f
}

// String renders the summary compactly.
func (f FiveNum) String() string {
	return fmt.Sprintf("min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f outliers=%d",
		f.Min, f.Q1, f.Median, f.Q3, f.Max, len(f.Outliers))
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P(X <= x) in [0, 1].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	// Count of samples <= x via binary search.
	n := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(c.sorted))
}

// Quantile returns the smallest sample value v with At(v) >= q.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// Points renders the CDF as n evenly spaced (value, fraction) pairs,
// suitable for plotting a figure series.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 1; i <= n; i++ {
		q := float64(i) / float64(n)
		out = append(out, [2]float64{c.Quantile(q), q})
	}
	return out
}

// Pearson returns the Pearson correlation coefficient of paired
// samples, or NaN if fewer than two pairs or zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Histogram is a fixed-bin histogram over [lo, hi).
type Histogram struct {
	lo, hi float64
	bins   []int64
	under  int64
	over   int64
	count  int64
	sum    float64
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.count++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
		if i >= len(h.bins) {
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the mean of all observations.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.count)
}

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.bins[i] }

// FractionBelow returns the fraction of observations < x (bin
// granularity; under/overflow included).
func (h *Histogram) FractionBelow(x float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	if x <= h.lo {
		return float64(h.under) / float64(h.count)
	}
	n := h.under
	binW := (h.hi - h.lo) / float64(len(h.bins))
	for i, c := range h.bins {
		upper := h.lo + float64(i+1)*binW
		if upper <= x {
			n += c
		}
	}
	return float64(n) / float64(h.count)
}

// Table renders aligned ASCII tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
