package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler exposes a telemetry set over HTTP for live introspection:
//
//	/metrics      Prometheus text exposition of the registry
//	/events.jsonl the tracer ring buffer as JSONL
//	/series.jsonl the recorded time-series windows as JSONL
//	/series.csv   the same windows as CSV
//	/debug/pprof/ the standard Go profiler endpoints
//
// All endpoints are safe to scrape while a run is in progress;
// function-backed gauges serve the value from the last recorder tick.
func Handler(s *Set) http.Handler { return HandlerWith(s, nil) }

// HandlerWith is Handler plus caller-supplied routes (e.g. the block
// server's /debug/trace exemplar dump) mounted on the same mux. Extra
// patterns must not collide with the built-in ones.
func HandlerWith(s *Set, extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "adapt telemetry\n\n/metrics\n/events.jsonl\n/series.jsonl\n/series.csv\n/debug/pprof/\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.Registry.WriteProm(w)
	})
	mux.HandleFunc("/events.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = s.Tracer.WriteJSONL(w)
	})
	mux.HandleFunc("/series.jsonl", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteWindowsJSONL(w, s.Recorder.Windows())
	})
	mux.HandleFunc("/series.csv", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/csv")
		_ = WriteWindowsCSV(w, s.Recorder.Windows())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range extra {
		mux.Handle(pattern, h)
	}
	return mux
}

// Serve starts a debug HTTP server for the set on addr in the
// background and returns the server plus the bound address (useful
// with a ":0" listener). extra routes, if any, mount alongside the
// built-in endpoints. The caller owns shutdown via server.Close.
func Serve(addr string, s *Set, extra map[string]http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: HandlerWith(s, extra)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
