package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"adapt/internal/sim"
)

// Derived holds the per-window quantities the paper's evaluation
// reasons about over time, computed from a window's canonical metric
// deltas.
type Derived struct {
	// WA is the window's GC write amplification: (Δuser+Δgc)/Δuser.
	// Windows with no user writes report 0.
	WA float64 `json:"wa"`
	// EffectiveWA additionally charges shadow and padding traffic.
	EffectiveWA float64 `json:"eff_wa"`
	// PaddingRatio is Δpad over all Δblock traffic in the window.
	PaddingRatio float64 `json:"pad_ratio"`
	// GCCycles and SegmentsReclaimed are window deltas.
	GCCycles          int64 `json:"gc_cycles"`
	SegmentsReclaimed int64 `json:"segments_reclaimed"`
	// GCCyclesPerSec is the GC activation rate over the window.
	GCCyclesPerSec float64 `json:"gc_cycles_per_s"`
	// GroupShare maps group label -> share of the window's block
	// traffic landing in that group (per-group utilization).
	GroupShare map[string]float64 `json:"group_share,omitempty"`
	// DeviceUtil maps device label -> busy time / window duration
	// (per-device utilization, prototype runs only).
	DeviceUtil map[string]float64 `json:"device_util,omitempty"`
}

// Derive computes the window's derived quantities.
func Derive(w *Window) Derived {
	user, _ := w.Delta(MetricUserBlocks)
	gc, _ := w.Delta(MetricGCBlocks)
	shadow, _ := w.Delta(MetricShadowBlocks)
	pad, _ := w.Delta(MetricPaddingBlocks)
	var d Derived
	total := user + gc + shadow + pad
	if user > 0 {
		d.WA = float64(user+gc) / float64(user)
		d.EffectiveWA = float64(total) / float64(user)
	}
	if total > 0 {
		d.PaddingRatio = float64(pad) / float64(total)
	}
	d.GCCycles, _ = w.Delta(MetricGCCycles)
	d.SegmentsReclaimed, _ = w.Delta(MetricSegmentsReclaimed)
	if dur := w.Duration(); dur > 0 {
		d.GCCyclesPerSec = float64(d.GCCycles) / dur.Seconds()
		for i, name := range w.Names {
			if promBase(name) == MetricDeviceBusyPrefix {
				if d.DeviceUtil == nil {
					d.DeviceUtil = make(map[string]float64)
				}
				d.DeviceUtil[LabelValue(name, "device")] = float64(w.Deltas[i]) / float64(dur)
			}
		}
	}
	if total > 0 {
		for i, name := range w.Names {
			if promBase(name) == MetricGroupBlocksPrefix {
				if d.GroupShare == nil {
					d.GroupShare = make(map[string]float64)
				}
				d.GroupShare[LabelValue(name, "group")] = float64(w.Deltas[i]) / float64(total)
			}
		}
	}
	return d
}

// windowJSON is the JSONL wire form of a window.
type windowJSON struct {
	Index   int64            `json:"window"`
	StartNS int64            `json:"start_ns"`
	EndNS   int64            `json:"end_ns"`
	Deltas  map[string]int64 `json:"deltas"`
	Values  map[string]int64 `json:"values"`
	Derived *Derived         `json:"derived,omitempty"`
}

// WriteWindowsJSONL writes the windows as one JSON object per line,
// each carrying cumulative values, per-window deltas, and the derived
// per-window WA/padding/GC quantities.
func WriteWindowsJSONL(w io.Writer, windows []Window) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range windows {
		win := &windows[i]
		row := windowJSON{
			Index:   win.Index,
			StartNS: int64(win.Start),
			EndNS:   int64(win.End),
			Deltas:  make(map[string]int64, len(win.Names)),
			Values:  make(map[string]int64, len(win.Names)),
		}
		for j, name := range win.Names {
			row.Deltas[name] = win.Deltas[j]
			row.Values[name] = win.Values[j]
		}
		d := Derive(win)
		row.Derived = &d
		if err := enc.Encode(&row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWindowsJSONL parses a dump written by WriteWindowsJSONL back
// into windows, so a recorded time-series can be replayed into the
// harness's stats tables offline.
func ReadWindowsJSONL(r io.Reader) ([]Window, error) {
	dec := json.NewDecoder(r)
	var out []Window
	for {
		var row windowJSON
		if err := dec.Decode(&row); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: window %d: %w", len(out), err)
		}
		names := make([]string, 0, len(row.Deltas))
		for name := range row.Deltas {
			names = append(names, name)
		}
		sort.Strings(names)
		w := Window{
			Index:  row.Index,
			Start:  sim.Time(row.StartNS),
			End:    sim.Time(row.EndNS),
			Names:  names,
			Values: make([]int64, len(names)),
			Deltas: make([]int64, len(names)),
		}
		for i, name := range names {
			w.Deltas[i] = row.Deltas[name]
			w.Values[i] = row.Values[name]
		}
		out = append(out, w)
	}
	return out, nil
}

// WriteWindowsCSV writes the windows as CSV: fixed derived columns
// followed by one delta column per scalar metric (union of names
// across windows, first-seen order).
func WriteWindowsCSV(w io.Writer, windows []Window) error {
	var names []string
	seen := make(map[string]bool)
	for i := range windows {
		for _, n := range windows[i].Names {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "window,start_ns,end_ns,wa,eff_wa,pad_ratio,gc_cycles,segments_reclaimed")
	for _, n := range names {
		fmt.Fprintf(bw, ",%q", n)
	}
	fmt.Fprintln(bw)
	for i := range windows {
		win := &windows[i]
		d := Derive(win)
		fmt.Fprintf(bw, "%d,%d,%d,%.6f,%.6f,%.6f,%d,%d",
			win.Index, int64(win.Start), int64(win.End),
			d.WA, d.EffectiveWA, d.PaddingRatio, d.GCCycles, d.SegmentsReclaimed)
		for _, n := range names {
			v, _ := win.Delta(n)
			fmt.Fprintf(bw, ",%d", v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
