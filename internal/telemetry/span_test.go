package telemetry

import (
	"sync"
	"testing"

	"adapt/internal/sim"
)

func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	sp.MarkAt(StageCommit, 10) // must not panic
	if sp.End() != 0 || sp.TotalNS() != 0 {
		t.Errorf("nil span End=%d TotalNS=%d, want 0,0", sp.End(), sp.TotalNS())
	}
	if d := sp.StageDurs(); d != ([NumStages]int64{}) {
		t.Errorf("nil span StageDurs = %v, want zeros", d)
	}
	var ring *SpanRing
	ring.Publish(&Span{})
	if ring.Published() != 0 {
		t.Error("nil ring Published != 0")
	}
	if got := ring.Snapshot(nil); got != nil {
		t.Errorf("nil ring Snapshot = %v, want nil", got)
	}
}

func TestSpanStageDurs(t *testing.T) {
	sp := &Span{Start: 100}
	sp.MarkAt(StageDecode, 110)
	// Admission and Batch skipped (e.g. a read).
	sp.MarkAt(StageLockWait, 150)
	sp.MarkAt(StageCommit, 180)
	sp.MarkAt(StageRespond, 200)

	durs := sp.StageDurs()
	want := [NumStages]int64{
		StageDecode:   10,
		StageLockWait: 40, // since decode's stamp, skipping the zeros
		StageCommit:   30,
		StageRespond:  20,
	}
	if durs != want {
		t.Errorf("StageDurs = %v, want %v", durs, want)
	}
	if sp.End() != 200 {
		t.Errorf("End = %d, want 200", sp.End())
	}
	if sp.TotalNS() != 100 {
		t.Errorf("TotalNS = %d, want 100", sp.TotalNS())
	}

	sp.Reset()
	if sp.TotalNS() != 0 || sp.Stamp[StageCommit] != 0 {
		t.Error("Reset left state behind")
	}
}

func TestStageStrings(t *testing.T) {
	want := []string{"decode", "admission", "batch", "lockwait", "commit", "flush", "respond"}
	for st := Stage(0); st < NumStages; st++ {
		if st.String() != want[st] {
			t.Errorf("Stage(%d).String() = %q, want %q", st, st.String(), want[st])
		}
	}
}

func TestSpanRingWrapAndSnapshot(t *testing.T) {
	r := NewSpanRing(4)
	for i := 1; i <= 6; i++ {
		r.Publish(&Span{ID: uint64(i)})
	}
	if r.Published() != 6 {
		t.Fatalf("Published = %d, want 6", r.Published())
	}
	got := r.Snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(got))
	}
	// IDs 1 and 2 were overwritten; 3..6 remain, oldest first.
	for i, sp := range got {
		if want := uint64(i + 3); sp.ID != want {
			t.Errorf("slot %d: ID = %d, want %d", i, sp.ID, want)
		}
	}
}

func TestSpanRingConcurrent(t *testing.T) {
	r := NewSpanRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Publish(&Span{ID: uint64(g*1000 + i), Start: 1})
			}
		}(g)
	}
	// Concurrent snapshots must not race or crash.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			for _, sp := range r.Snapshot(nil) {
				if sp.Start != 1 {
					t.Error("observed partially published span")
					return
				}
			}
		}
	}()
	wg.Wait()
	if r.Published() != 8000 {
		t.Errorf("Published = %d, want 8000", r.Published())
	}
}

func TestLog2Bounds(t *testing.T) {
	got := Log2Bounds(1024, 8192)
	want := []int64{1024, 2048, 4096, 8192}
	if len(got) != len(want) {
		t.Fatalf("Log2Bounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Log2Bounds = %v, want %v", got, want)
		}
	}
	if b := Log2Bounds(0, 4); b[0] != 1 {
		t.Errorf("lo clamped: got %v", b)
	}
}

func TestHistogramQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("q_test", "", []int64{10, 100, 1000})
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram Quantile != 0")
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram Quantile != 0")
	}
	// 90 observations in the first bucket, 9 in the second, 1 overflow.
	for i := 0; i < 90; i++ {
		h.Observe(5)
	}
	for i := 0; i < 9; i++ {
		h.Observe(50)
	}
	h.Observe(5000)
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %d, want 10", got)
	}
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("p99 = %d, want 100", got)
	}
	// The overflow observation reports the last finite bound.
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
}

func TestIntervalOverlap(t *testing.T) {
	iv := Interval{Start: 100, End: 200}
	cases := []struct {
		a, b sim.Time
		want int64
	}{
		{0, 50, 0},     // before
		{250, 300, 0},  // after
		{0, 150, 50},   // tail of [a,b] overlaps head of iv
		{150, 300, 50}, // head of [a,b] overlaps tail of iv
		{120, 180, 60}, // inside
		{0, 300, 100},  // containing
	}
	for _, c := range cases {
		if got := iv.Overlap(c.a, c.b); got != c.want {
			t.Errorf("Overlap(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	open := Interval{Start: 100} // End == 0: still open
	if got := open.Overlap(150, 300); got != 150 {
		t.Errorf("open Overlap = %d, want 150", got)
	}
}

func TestIntervalLog(t *testing.T) {
	var nilLog *IntervalLog
	nilLog.Add(Interval{})
	nilLog.Close(nilLog.Open(IntervalGC, 1, -1, -1, 0), 10)
	if nilLog.Snapshot() != nil || nilLog.Total() != 0 {
		t.Error("nil IntervalLog not inert")
	}

	l := NewIntervalLog(3)
	l.Add(Interval{Kind: IntervalGC, ID: 1, Start: 10, End: 20})
	tok := l.Open(IntervalDegraded, 7, 2, -1, 30)
	snap := l.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d, want 2 (1 closed + 1 open)", len(snap))
	}
	if snap[1].Kind != IntervalDegraded || snap[1].End != 0 {
		t.Errorf("open interval = %+v", snap[1])
	}
	l.Close(tok, 40)
	l.Close(tok, 50)  // double close ignored
	l.Close(9999, 50) // unknown token ignored
	if got := l.Total(); got != 2 {
		t.Errorf("Total = %d, want 2", got)
	}
	// Overflow the 3-slot ring: oldest closed interval evicted.
	l.Add(Interval{Kind: IntervalGC, ID: 2, Start: 50, End: 60})
	l.Add(Interval{Kind: IntervalGC, ID: 3, Start: 60, End: 70})
	snap = l.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	if snap[0].Kind != IntervalDegraded {
		t.Errorf("oldest retained = %+v, want the degraded interval", snap[0])
	}
	if snap[2].ID != 3 {
		t.Errorf("newest = %+v, want GC cycle 3", snap[2])
	}
}

func TestIntervalKindString(t *testing.T) {
	for k, want := range map[IntervalKind]string{
		IntervalGC: "gc", IntervalDegraded: "degraded", IntervalRebuild: "rebuild", 99: "interval",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
