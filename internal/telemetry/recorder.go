package telemetry

import (
	"sync"

	"adapt/internal/sim"
)

// Canonical metric names the store and prototype register, which the
// per-window derivations and exporters key on. Per-group and
// per-device families embed their index as a {label="N"} suffix.
const (
	MetricUserBlocks        = "lss_user_blocks_total"
	MetricGCBlocks          = "lss_gc_blocks_total"
	MetricShadowBlocks      = "lss_shadow_blocks_total"
	MetricPaddingBlocks     = "lss_padding_blocks_total"
	MetricReadBlocks        = "lss_read_blocks_total"
	MetricTrimmedBlocks     = "lss_trimmed_blocks_total"
	MetricGCCycles          = "lss_gc_cycles_total"
	MetricGCThrottled       = "lss_gc_throttled_cycles_total"
	MetricSegmentsReclaimed = "lss_segments_reclaimed_total"
	MetricGCScanned         = "lss_gc_scanned_blocks_total"
	MetricGCSlices          = "lss_gc_slices_total"
	MetricGCEmergency       = "lss_gc_emergency_runs_total"

	MetricGCSchedSlices     = "gcsched_slices_total"
	MetricGCSchedUnits      = "gcsched_units_total"
	MetricGCSchedTailSkips  = "gcsched_tail_skips_total"
	MetricGCSchedQueueSkips = "gcsched_queue_skips_total"
	MetricChunkFlushes      = "lss_chunk_flushes_total"
	MetricFreeSegments      = "lss_free_segments"

	// Durable-backend (internal/segfile) instrumentation.
	MetricDurableSyncedSegments    = "lss_durable_synced_segments_total"
	MetricDurableFsyncs            = "lss_durable_fsyncs_total"
	MetricDurableBytes             = "lss_durable_bytes_total"
	MetricDurableCheckpoints       = "lss_durable_checkpoints_total"
	MetricDurableFsyncHistogram    = "lss_durable_fsync_ns"
	MetricDurableRecoveredSegments = "lss_durable_recovered_segments"
	MetricDurableRecoveredBlocks   = "lss_durable_recovered_blocks"
	MetricDurableTornRecords       = "lss_durable_torn_records"

	MetricSLAViolations = "lss_sla_violations_total"

	// MetricGroupBlocksPrefix is the per-group total-traffic family:
	// lss_group_blocks_total{group="N"}.
	MetricGroupBlocksPrefix = "lss_group_blocks_total"
	// MetricGroupPaddingPrefix is the per-group padding-traffic family:
	// lss_group_padding_blocks_total{group="N"}.
	MetricGroupPaddingPrefix = "lss_group_padding_blocks_total"
	// MetricChunkPadHistogram is the padding-blocks-per-chunk-flush
	// histogram.
	MetricChunkPadHistogram = "lss_chunk_pad_blocks"
	// MetricDeviceBusyPrefix is the prototype's per-device busy-time
	// family: proto_device_busy_ns_total{device="N"}.
	MetricDeviceBusyPrefix = "proto_device_busy_ns_total"
	// MetricDeviceQueuePrefix is the per-device queue-depth family.
	MetricDeviceQueuePrefix = "proto_device_queue_depth"
	// MetricDeviceChunksPrefix is the per-device chunk-count family.
	MetricDeviceChunksPrefix = "proto_device_chunks_total"

	// Fault-subsystem counters (prototype degraded mode).
	// MetricDegradedReads counts reads served by XOR reconstruction
	// fan-out because their column was failed.
	MetricDegradedReads = "proto_degraded_reads_total"
	// MetricRebuildChunks counts chunks the rebuild pushed through the
	// device queues onto the spare.
	MetricRebuildChunks = "proto_rebuild_chunks_total"
	// MetricLostChunks counts chunk writes dropped on the failed
	// column (reconstructable from parity until the rebuild lands).
	MetricLostChunks = "proto_lost_chunks_total"
	// MetricQueueRetries counts dispatches that timed out on a full
	// device queue and retried after backoff.
	MetricQueueRetries = "proto_queue_retries_total"
	// MetricRetryHistogram is the histogram of retry attempts per
	// dispatched operation.
	MetricRetryHistogram = "proto_dispatch_retry_attempts"

	MetricAdaptThreshold = "adapt_threshold_blocks"
	MetricAdaptAdoptions = "adapt_threshold_adoptions_total"
	MetricAdaptDemotions = "adapt_demotions_total"
	MetricAdaptShadows   = "adapt_shadow_grants_total"

	// Block-service (internal/server) counters.
	// MetricServerConns is the open client connection gauge.
	MetricServerConns = "srv_connections_open"
	// MetricServerRequestsPrefix is the per-opcode request family:
	// srv_requests_total{op="WRITE"}.
	MetricServerRequestsPrefix = "srv_requests_total"
	// MetricServerBackpressure counts requests rejected by per-tenant
	// admission control.
	MetricServerBackpressure = "srv_backpressure_total"
	// MetricServerBatches counts write-batcher group commits.
	MetricServerBatches = "srv_batches_total"
	// MetricServerBatchedWrites counts WRITE requests committed through
	// the batcher (the rest committed individually).
	MetricServerBatchedWrites = "srv_batched_writes_total"
	// MetricServerBatchFill is the histogram of blocks per group commit.
	MetricServerBatchFill = "srv_batch_fill_blocks"
	// MetricServerBytesIn / MetricServerBytesOut count wire payload
	// bytes received in WRITE requests and sent in READ responses.
	MetricServerBytesIn  = "srv_bytes_in_total"
	MetricServerBytesOut = "srv_bytes_out_total"

	// Request-tracing families (registered only when tracing is on).
	// MetricServerStageLatencyPrefix is the per-stage latency
	// histogram family: srv_stage_latency_ns{stage="commit"}.
	MetricServerStageLatencyPrefix = "srv_stage_latency_ns"
	// MetricServerRequestLatencyPrefix is the per-tenant end-to-end
	// latency histogram family: srv_request_latency_ns{vol="0"}.
	MetricServerRequestLatencyPrefix = "srv_request_latency_ns"
	// MetricServerTraceExemplars counts spans published to the
	// exemplar ring (over-threshold or client-forced).
	MetricServerTraceExemplars = "srv_trace_exemplars_total"

	// NBD frontend (internal/nbd) families.
	// MetricNBDConns is the open NBD connection gauge.
	MetricNBDConns = "nbd_connections_open"
	// MetricNBDHandshakes counts completed handshakes (connections
	// that reached the transmission phase).
	MetricNBDHandshakes = "nbd_handshakes_total"
	// MetricNBDRequestsPrefix is the per-command request family:
	// nbd_requests_total{cmd="write"}.
	MetricNBDRequestsPrefix = "nbd_requests_total"
	// MetricNBDBytesIn / MetricNBDBytesOut count NBD WRITE payload
	// bytes received and READ payload bytes sent.
	MetricNBDBytesIn  = "nbd_bytes_in_total"
	MetricNBDBytesOut = "nbd_bytes_out_total"
	// MetricNBDRMWWrites counts unaligned writes served with a
	// read-modify-write cycle by the alignment layer.
	MetricNBDRMWWrites = "nbd_rmw_writes_total"
	// MetricNBDErrors counts NBD error replies (negotiation and
	// transmission).
	MetricNBDErrors = "nbd_errors_total"
)

// Window is one closed time-series window: the cumulative value of
// every scalar instrument at the window end, plus the change across
// the window (for gauges the "delta" is the end-of-window sample).
// Names, Values, and Deltas are parallel; Names shares backing with
// the recorder and must be treated as read-only.
type Window struct {
	Index int64    `json:"window"`
	Start sim.Time `json:"start_ns"`
	End   sim.Time `json:"end_ns"`

	Names  []string `json:"-"`
	Values []int64  `json:"-"`
	Deltas []int64  `json:"-"`
}

// Value returns the cumulative value of a metric at the window end.
func (w *Window) Value(name string) (int64, bool) {
	for i, n := range w.Names {
		if n == name {
			return w.Values[i], true
		}
	}
	return 0, false
}

// Delta returns the metric's change across the window (the sampled
// value for gauges).
func (w *Window) Delta(name string) (int64, bool) {
	for i, n := range w.Names {
		if n == name {
			return w.Deltas[i], true
		}
	}
	return 0, false
}

// Duration returns the window width.
func (w *Window) Duration() sim.Time { return w.End - w.Start }

// Recorder snapshots every scalar instrument of a registry at a fixed
// interval of simulated time and keeps a bounded ring of windows.
//
// TickTo must be called from the single thread that owns the
// instrumented state (the store calls it inside advance, under the
// store lock in concurrent use); Windows and the exporters may be
// called concurrently with ticking.
type Recorder struct {
	reg      *Registry
	interval sim.Time
	max      int

	mu       sync.Mutex
	ticker   sim.Ticker
	started  bool
	index    int64
	scalars  []Instrument
	names    []string
	prev     []int64
	windows  []Window
	dropped  int64
	finished bool
}

// NewRecorder creates a recorder over reg with the given window width
// and history bound.
func NewRecorder(reg *Registry, interval sim.Time, maxWindows int) *Recorder {
	if interval <= 0 {
		interval = 10 * sim.Millisecond
	}
	if maxWindows <= 0 {
		maxWindows = 4096
	}
	return &Recorder{reg: reg, interval: interval, max: maxWindows}
}

// Interval returns the window width.
func (r *Recorder) Interval() sim.Time {
	if r == nil {
		return 0
	}
	return r.interval
}

// TickTo advances the recorder to the current simulated time, closing
// any window whose boundary has passed. Nil-safe; the fast path when
// no boundary passed is one comparison.
func (r *Recorder) TickTo(now sim.Time) {
	if r == nil {
		return
	}
	if r.started && !r.ticker.Due(now) {
		return
	}
	r.tick(now)
}

func (r *Recorder) tick(now sim.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		// The first event anchors the window grid at time zero so that
		// window boundaries are multiples of the interval.
		r.ticker = sim.NewTicker(0, r.interval)
		r.ticker.FastForward(now)
		r.started = true
		return
	}
	if !r.ticker.Due(now) {
		return // another caller closed the boundary first
	}
	// All activity since the previous snapshot lands in the first
	// window being closed; later elapsed windows would be empty, so the
	// ticker fast-forwards over them instead of emitting zeros.
	end := r.ticker.Next()
	r.close(end)
	r.ticker.Advance()
	r.ticker.FastForward(now)
}

// Finish closes the partial window ending at now, capturing tail
// activity after the last boundary. Call once when a run completes
// (Store.Drain does). Nil-safe and idempotent for an unchanged clock.
func (r *Recorder) Finish(now sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		r.ticker = sim.NewTicker(0, r.interval)
		r.started = true
	}
	if r.ticker.Due(now) {
		r.close(r.ticker.Next())
		r.ticker.Advance()
		r.ticker.FastForward(now)
	}
	if len(r.windows) > 0 && now <= r.windows[len(r.windows)-1].End {
		return
	}
	if now <= 0 {
		return
	}
	r.close(now)
}

// close snapshots the registry and appends the window ending at end.
// Caller holds r.mu.
func (r *Recorder) close(end sim.Time) {
	r.reg.Refresh()
	scalars := r.reg.Scalars()
	// Instruments register append-only, so a longer list extends the
	// previous one; new instruments delta from zero.
	if len(scalars) > len(r.scalars) {
		for _, in := range scalars[len(r.scalars):] {
			r.names = append(r.names, in.Name())
			r.prev = append(r.prev, 0)
		}
		r.scalars = scalars
	}
	start := r.ticker.Next() - r.interval
	if len(r.windows) > 0 && r.windows[len(r.windows)-1].End > start {
		start = r.windows[len(r.windows)-1].End
	}
	w := Window{
		Index:  r.index,
		Start:  start,
		End:    end,
		Names:  r.names[:len(r.scalars)],
		Values: make([]int64, len(r.scalars)),
		Deltas: make([]int64, len(r.scalars)),
	}
	for i, in := range r.scalars {
		v := in.Load()
		w.Values[i] = v
		if in.Cumulative() {
			w.Deltas[i] = v - r.prev[i]
		} else {
			w.Deltas[i] = v
		}
		r.prev[i] = v
	}
	r.index++
	r.windows = append(r.windows, w)
	if len(r.windows) > r.max {
		n := copy(r.windows, r.windows[len(r.windows)-r.max:])
		r.windows = r.windows[:n]
		r.dropped++
	}
}

// Windows returns the recorded windows, oldest first.
func (r *Recorder) Windows() []Window {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Window(nil), r.windows...)
}

// Dropped returns how many windows were evicted by the history bound.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
