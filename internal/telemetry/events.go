package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sync"

	"adapt/internal/sim"
)

// EventType identifies a traced event.
type EventType uint8

// Event types emitted by the store, the ADAPT policy, and recovery.
const (
	EvGCStart        EventType = 1 + iota // GC cycle begins; Free = free segments
	EvGCEnd                               // GC cycle ends; Reclaimed/Migrated/Scanned victim stats
	EvSegmentSeal                         // segment sealed; Valid = live blocks at seal
	EvChunkFlush                          // chunk flushed; Payload/Pad block counts
	EvPadFlush                            // padded flush; Pad blocks + Reason
	EvThresholdAdapt                      // ADAPT adopted a new hot/cold threshold
	EvDemote                              // ADAPT proactively demoted a user write
	EvRecovery                            // store rebuilt from a checkpoint
	EvDeviceFailed                        // array column failed; A = op count at failure
	EvRebuildStart                        // spare rebuild began; A = chunks to rebuild
	EvRebuildEnd                          // spare rebuild completed; A = chunks rebuilt
)

// String returns the JSONL type tag.
func (t EventType) String() string {
	switch t {
	case EvGCStart:
		return "gc_start"
	case EvGCEnd:
		return "gc_end"
	case EvSegmentSeal:
		return "segment_seal"
	case EvChunkFlush:
		return "chunk_flush"
	case EvPadFlush:
		return "pad_flush"
	case EvThresholdAdapt:
		return "threshold_adapt"
	case EvDemote:
		return "demote"
	case EvRecovery:
		return "recovery"
	case EvDeviceFailed:
		return "device_failed"
	case EvRebuildStart:
		return "rebuild_start"
	case EvRebuildEnd:
		return "rebuild_end"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// FlushReason says why a padded flush happened.
type FlushReason uint8

// Padded-flush reasons.
const (
	FlushSLA    FlushReason = iota // SLA deadline expired
	FlushShadow                    // target flush of a shadow append
	FlushDrain                     // end-of-run drain
)

// String returns the JSONL reason tag.
func (f FlushReason) String() string {
	switch f {
	case FlushSLA:
		return "sla"
	case FlushShadow:
		return "shadow"
	case FlushDrain:
		return "drain"
	default:
		return fmt.Sprintf("reason(%d)", int(f))
	}
}

// Event is one traced occurrence. The struct is flat and fixed-size so
// the tracer ring never allocates; fields beyond Seq/Time/Type are
// typed per event (see the constructors) and zero when unused.
type Event struct {
	Seq  int64
	Time sim.Time
	Type EventType

	Group   int32
	Segment int32
	A, B, C int64
	F       float64
}

// GCStart traces the beginning of a GC cycle.
func GCStart(now sim.Time, freeSegments int) Event {
	return Event{Time: now, Type: EvGCStart, A: int64(freeSegments)}
}

// GCEnd traces the end of a GC cycle with its victim statistics.
func GCEnd(now sim.Time, reclaimed, migrated, scanned int64) Event {
	return Event{Time: now, Type: EvGCEnd, A: reclaimed, B: migrated, C: scanned}
}

// SegmentSeal traces a segment seal.
func SegmentSeal(now sim.Time, group, segment, valid int) Event {
	return Event{Time: now, Type: EvSegmentSeal, Group: int32(group), Segment: int32(segment), A: int64(valid)}
}

// ChunkFlush traces one chunk write with its padding share.
func ChunkFlush(now sim.Time, group, segment, chunk int, payloadBlocks, padBlocks int) Event {
	return Event{Time: now, Type: EvChunkFlush, Group: int32(group), Segment: int32(segment),
		A: int64(chunk), B: int64(payloadBlocks), C: int64(padBlocks)}
}

// PadFlush traces a padded (partial-chunk) flush and why it happened.
func PadFlush(now sim.Time, group, padBlocks int, reason FlushReason) Event {
	return Event{Time: now, Type: EvPadFlush, Group: int32(group), A: int64(padBlocks), B: int64(reason)}
}

// ThresholdAdapt traces an ADAPT threshold adoption.
func ThresholdAdapt(now sim.Time, threshold float64, adoptions int64) Event {
	return Event{Time: now, Type: EvThresholdAdapt, F: threshold, A: adoptions}
}

// Demote traces a proactive demotion of a user write into a GC group.
func Demote(now sim.Time, group int, lba int64) Event {
	return Event{Time: now, Type: EvDemote, Group: int32(group), A: lba}
}

// Recovery traces a store rebuild from a checkpoint.
func Recovery(now sim.Time, segments int, liveBlocks int64) Event {
	return Event{Time: now, Type: EvRecovery, A: int64(segments), B: liveBlocks}
}

// DeviceFailed traces an array column failure. Segment carries the
// device (column) index; A is the user-op count at the failure.
func DeviceFailed(now sim.Time, device int, op int64) Event {
	return Event{Time: now, Type: EvDeviceFailed, Segment: int32(device), A: op}
}

// RebuildStart traces the beginning of a spare rebuild with its
// planned chunk count.
func RebuildStart(now sim.Time, device int, chunks int64) Event {
	return Event{Time: now, Type: EvRebuildStart, Segment: int32(device), A: chunks}
}

// RebuildEnd traces a completed spare rebuild.
func RebuildEnd(now sim.Time, device int, chunks int64) Event {
	return Event{Time: now, Type: EvRebuildEnd, Segment: int32(device), A: chunks}
}

// Tracer is a bounded ring buffer of events. Emit is mutex-guarded and
// allocation-free; when the ring is full the oldest events are
// overwritten.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	seq     int64
	dropped int64
}

// NewTracer creates a tracer holding up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit records an event, assigning its sequence number. Nil-safe.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = t.seq
	t.buf[t.seq%int64(len(t.buf))] = e
	t.seq++
	if t.seq > int64(len(t.buf)) {
		t.dropped = t.seq - int64(len(t.buf))
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq
	if n > int64(len(t.buf)) {
		n = int64(len(t.buf))
	}
	return int(n)
}

// Dropped returns how many events were overwritten by the ring bound.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.seq
	first := int64(0)
	if n > int64(len(t.buf)) {
		first = n - int64(len(t.buf))
	}
	out := make([]Event, 0, n-first)
	for s := first; s < n; s++ {
		out = append(out, t.buf[s%int64(len(t.buf))])
	}
	return out
}

// WriteJSONL writes the buffered events as one JSON object per line,
// with per-type field names matching the documented event schema.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, e := range t.Events() {
		if err := writeEventJSON(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeEventJSON(w io.Writer, e Event) error {
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p(`{"seq":%d,"t_ns":%d,"type":%q`, e.Seq, int64(e.Time), e.Type.String())
	switch e.Type {
	case EvGCStart:
		p(`,"free_segments":%d`, e.A)
	case EvGCEnd:
		p(`,"reclaimed":%d,"migrated":%d,"scanned":%d`, e.A, e.B, e.C)
	case EvSegmentSeal:
		p(`,"group":%d,"segment":%d,"valid":%d`, e.Group, e.Segment, e.A)
	case EvChunkFlush:
		p(`,"group":%d,"segment":%d,"chunk":%d,"payload_blocks":%d,"pad_blocks":%d`,
			e.Group, e.Segment, e.A, e.B, e.C)
	case EvPadFlush:
		p(`,"group":%d,"pad_blocks":%d,"reason":%q`, e.Group, e.A, FlushReason(e.B).String())
	case EvThresholdAdapt:
		p(`,"threshold":%g,"adoptions":%d`, e.F, e.A)
	case EvDemote:
		p(`,"group":%d,"lba":%d`, e.Group, e.A)
	case EvRecovery:
		p(`,"segments":%d,"live_blocks":%d`, e.A, e.B)
	case EvDeviceFailed:
		p(`,"device":%d,"op":%d`, e.Segment, e.A)
	case EvRebuildStart, EvRebuildEnd:
		p(`,"device":%d,"chunks":%d`, e.Segment, e.A)
	default:
		p(`,"group":%d,"segment":%d,"a":%d,"b":%d,"c":%d,"f":%g`,
			e.Group, e.Segment, e.A, e.B, e.C, e.F)
	}
	p("}\n")
	return err
}
