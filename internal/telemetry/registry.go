package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies an instrument for exposition.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Instrument is a named scalar metric. Histograms are registered
// separately and do not implement Instrument.
type Instrument interface {
	Name() string
	Help() string
	Kind() Kind
	// Cumulative reports whether the value is monotonically
	// accumulated, so that the recorder should emit per-window deltas
	// (counters and counter-like function gauges) rather than samples.
	Cumulative() bool
	// Load returns the current value. For function gauges this is the
	// value cached at the last Refresh.
	Load() int64
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Name implements Instrument.
func (c *Counter) Name() string { return c.name }

// Help implements Instrument.
func (c *Counter) Help() string { return c.help }

// Kind implements Instrument.
func (c *Counter) Kind() Kind { return KindCounter }

// Cumulative implements Instrument.
func (c *Counter) Cumulative() bool { return true }

// Add increments the counter by d. Nil-safe.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Load implements Instrument. Nil-safe.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic point-in-time value.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Name implements Instrument.
func (g *Gauge) Name() string { return g.name }

// Help implements Instrument.
func (g *Gauge) Help() string { return g.help }

// Kind implements Instrument.
func (g *Gauge) Kind() Kind { return KindGauge }

// Cumulative implements Instrument.
func (g *Gauge) Cumulative() bool { return false }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d. Nil-safe.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load implements Instrument. Nil-safe.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FuncGauge reads owner state through a callback. The callback runs
// only during Refresh, which the owner must serialize with its own
// mutations (the store refreshes under its lock at recorder ticks);
// concurrent readers see the cached value, so live exposition never
// races with the owner.
type FuncGauge struct {
	name, help string
	cumulative bool
	fn         func() int64
	cached     atomic.Int64
}

// Name implements Instrument.
func (f *FuncGauge) Name() string { return f.name }

// Help implements Instrument.
func (f *FuncGauge) Help() string { return f.help }

// Kind implements Instrument.
func (f *FuncGauge) Kind() Kind {
	if f.cumulative {
		return KindCounter
	}
	return KindGauge
}

// Cumulative implements Instrument.
func (f *FuncGauge) Cumulative() bool { return f.cumulative }

// Refresh re-reads the callback into the cache.
func (f *FuncGauge) Refresh() { f.cached.Store(f.fn()) }

// Load implements Instrument.
func (f *FuncGauge) Load() int64 { return f.cached.Load() }

// Histogram is a fixed-bucket histogram with atomic counts. Bucket i
// counts observations v <= Bounds[i]; one overflow bucket counts the
// rest.
type Histogram struct {
	name, help string
	bounds     []int64
	buckets    []atomic.Int64 // len(bounds)+1, last is overflow
	count      atomic.Int64
	sum        atomic.Int64
}

// Name returns the histogram name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value. Nil-safe and allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket returns the count of observations <= Bounds[i], or the
// overflow count for i == len(Bounds).
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i].Load() }

// Bounds returns the upper bucket bounds.
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Registry holds named instruments in registration order.
type Registry struct {
	mu      sync.Mutex
	scalars []Instrument
	hists   []*Histogram
	names   map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(name string) {
	if r.names[name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.names[name] = true
}

// NewCounter registers and returns an atomic counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	c := &Counter{name: name, help: help}
	r.scalars = append(r.scalars, c)
	return c
}

// NewGauge registers and returns an atomic gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	g := &Gauge{name: name, help: help}
	r.scalars = append(r.scalars, g)
	return g
}

// NewFuncGauge registers a function-backed gauge. cumulative marks
// counter-like values the recorder should delta per window. See the
// FuncGauge concurrency contract.
func (r *Registry) NewFuncGauge(name, help string, cumulative bool, fn func() int64) *FuncGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	f := &FuncGauge{name: name, help: help, cumulative: cumulative, fn: fn}
	f.Refresh()
	r.scalars = append(r.scalars, f)
	return f
}

// NewHistogram registers a fixed-bucket histogram with the given upper
// bucket bounds (ascending).
func (r *Registry) NewHistogram(name, help string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name)
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		name:    name,
		help:    help,
		bounds:  append([]int64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists = append(r.hists, h)
	return h
}

// Refresh re-reads every function gauge. The caller must hold whatever
// lock protects the state the gauge callbacks read.
func (r *Registry) Refresh() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, in := range r.scalars {
		if f, ok := in.(*FuncGauge); ok {
			f.Refresh()
		}
	}
}

// Scalars returns the scalar instruments in registration order.
func (r *Registry) Scalars() []Instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Instrument(nil), r.scalars...)
}

// Histograms returns the registered histograms in registration order.
func (r *Registry) Histograms() []*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Histogram(nil), r.hists...)
}

// Names returns every registered metric name (scalars and histograms),
// sorted. Used by audits that pin the metric surface to a golden list.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.names))
	for n := range r.names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteProm renders Prometheus text exposition format. Function gauges
// expose the value cached at their last Refresh (recorder tick).
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	scalars := append([]Instrument(nil), r.scalars...)
	hists := append([]*Histogram(nil), r.hists...)
	r.mu.Unlock()
	for _, in := range scalars {
		base := promBase(in.Name())
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
			base, in.Help(), base, in.Kind(), in.Name(), in.Load()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		base := promBase(h.name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", base, h.help, base); err != nil {
			return err
		}
		var cum int64
		for i, b := range h.bounds {
			cum += h.Bucket(i)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.name, b, cum); err != nil {
				return err
			}
		}
		cum += h.Bucket(len(h.bounds))
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			h.name, cum, h.name, h.Sum(), h.name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// promBase strips a {label="..."} suffix from a metric name: labelled
// instruments are registered as name{label="v"} strings, and the HELP
// and TYPE lines refer to the base family name.
func promBase(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// LabelValue extracts the value of a {key="value"} label embedded in a
// metric name, or "" when absent.
func LabelValue(name, key string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	rest := name[i+1 : len(name)-1]
	for _, part := range strings.Split(rest, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) == 2 && kv[0] == key {
			return strings.Trim(kv[1], `"`)
		}
	}
	return ""
}
