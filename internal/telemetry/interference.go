package telemetry

import (
	"sync"

	"adapt/internal/sim"
)

// IntervalKind classifies an interference interval.
type IntervalKind uint8

// Interference sources that can delay foreground requests.
const (
	// IntervalGC is a log-structured-store GC cycle.
	IntervalGC IntervalKind = iota
	// IntervalDegraded is a window where a RAID column is failed and
	// reads on it pay reconstruction fan-out.
	IntervalDegraded
	// IntervalRebuild is a background rebuild pass onto a spare.
	IntervalRebuild
)

func (k IntervalKind) String() string {
	switch k {
	case IntervalGC:
		return "gc"
	case IntervalDegraded:
		return "degraded"
	case IntervalRebuild:
		return "rebuild"
	default:
		return "interval"
	}
}

// Interval is one interference window on the shared clock. End == 0
// means the interval is still open (e.g. a column failed and not yet
// rebuilt).
type Interval struct {
	Kind   IntervalKind
	ID     int64 // GC cycle number, or failure generation
	Column int32 // RAID column, -1 when not column-specific
	Shard  int32 // engine shard that published the window, -1 unsharded
	Start  sim.Time
	End    sim.Time
}

// Overlap returns the length of the intersection of the interval with
// [a, b], in nanoseconds. Open intervals extend to b.
func (iv Interval) Overlap(a, b sim.Time) int64 {
	end := iv.End
	if end == 0 || end > b {
		end = b
	}
	start := iv.Start
	if start < a {
		start = a
	}
	if end <= start {
		return 0
	}
	return int64(end - start)
}

// IntervalLog records interference intervals for post-hoc attribution
// of slow requests. Closed intervals live in a bounded ring (oldest
// evicted first); open intervals are tracked by token until closed.
// Publication is infrequent (per GC cycle, per fault transition), so a
// mutex suffices. All methods are nil-safe.
type IntervalLog struct {
	mu      sync.Mutex
	ring    []Interval
	head    int // next write position
	full    bool
	open    map[int64]Interval
	nextTok int64
	total   int64
}

// NewIntervalLog creates a log keeping up to capacity closed intervals.
func NewIntervalLog(capacity int) *IntervalLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &IntervalLog{ring: make([]Interval, capacity), open: make(map[int64]Interval)}
}

// Add records a closed interval. Nil-safe.
func (l *IntervalLog) Add(iv Interval) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.push(iv)
}

func (l *IntervalLog) push(iv Interval) {
	l.ring[l.head] = iv
	l.head++
	l.total++
	if l.head == len(l.ring) {
		l.head = 0
		l.full = true
	}
}

// Open starts an open-ended interval and returns a token for Close.
// Nil-safe; returns 0 on a nil log (Close ignores token 0 gracefully).
func (l *IntervalLog) Open(kind IntervalKind, id int64, column, shard int32, start sim.Time) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextTok++
	tok := l.nextTok
	l.open[tok] = Interval{Kind: kind, ID: id, Column: column, Shard: shard, Start: start}
	return tok
}

// Close ends the open interval identified by tok at end, moving it to
// the closed ring. Unknown tokens are ignored. Nil-safe.
func (l *IntervalLog) Close(tok int64, end sim.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	iv, ok := l.open[tok]
	if !ok {
		return
	}
	delete(l.open, tok)
	iv.End = end
	l.push(iv)
}

// Snapshot returns the retained closed intervals (oldest first)
// followed by any open intervals. Nil-safe.
func (l *IntervalLog) Snapshot() []Interval {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Interval
	if l.full {
		out = append(out, l.ring[l.head:]...)
	}
	out = append(out, l.ring[:l.head]...)
	for _, iv := range l.open {
		out = append(out, iv)
	}
	return out
}

// Total returns the number of closed intervals ever recorded.
func (l *IntervalLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
