package telemetry

import (
	"fmt"
	"sync/atomic"

	"adapt/internal/sim"
)

// Stage names one segment of a request's journey through the serving
// stack. Stages are ordered: a span stamps the *end* of each stage it
// passes through, and per-stage durations derive from consecutive
// stamps (a zero stamp means the stage was skipped, e.g. Batch for an
// unbatched write).
type Stage uint8

// The request stage taxonomy, in pipeline order.
const (
	// StageDecode: frame CRC check and header parse.
	StageDecode Stage = iota
	// StageAdmission: per-tenant admission control (semaphore take).
	StageAdmission
	// StageBatch: waiting in the write batcher's group-commit gather
	// window (or, for FLUSH, waiting for the forced commit).
	StageBatch
	// StageLockWait: waiting for the engine lock.
	StageLockWait
	// StageCommit: applying the op in the store under the engine lock,
	// excluding time blocked on device queues.
	StageCommit
	// StageFlush: blocked dispatching chunk/read jobs onto the bounded
	// device queues (device backpressure).
	StageFlush
	// StageRespond: queued behind the connection writer plus the socket
	// write.
	StageRespond

	// NumStages is the stage count; arrays indexed by Stage use it.
	NumStages
)

// String returns the stage tag used in metric labels, STAT keys, and
// /debug/trace JSON.
func (st Stage) String() string {
	switch st {
	case StageDecode:
		return "decode"
	case StageAdmission:
		return "admission"
	case StageBatch:
		return "batch"
	case StageLockWait:
		return "lockwait"
	case StageCommit:
		return "commit"
	case StageFlush:
		return "flush"
	case StageRespond:
		return "respond"
	default:
		return fmt.Sprintf("stage(%d)", int(st))
	}
}

// Span records one request's passage through the named stages. All
// timestamps are on the owner's simulated clock (wall-derived in the
// engine), so spans are directly comparable with tracer events and
// interference intervals. A span is written by the request's handling
// goroutines (hand-offs are channel-sequenced) and becomes immutable
// once published to a SpanRing.
//
// All methods are nil-safe: a nil *Span is the disabled-tracing
// fast path and costs one branch.
type Span struct {
	ID     uint64
	Volume uint32
	Op     uint8
	Status uint8
	// Forced marks a span opted into exemplar capture by the client
	// (wire.FlagTrace): it is published regardless of the threshold.
	Forced bool
	LBA    uint64
	Count  uint32

	// Start is the clock at frame arrival (after the socket read,
	// before decode).
	Start sim.Time
	// Stamp[s] is the clock at the end of stage s; zero means the stage
	// was skipped.
	Stamp [NumStages]sim.Time
}

// MarkAt stamps the end of stage st. Nil-safe.
func (sp *Span) MarkAt(st Stage, now sim.Time) {
	if sp != nil {
		sp.Stamp[st] = now
	}
}

// End returns the last stamped time (the span's completion).
func (sp *Span) End() sim.Time {
	if sp == nil {
		return 0
	}
	for st := NumStages; st > 0; st-- {
		if t := sp.Stamp[st-1]; t != 0 {
			return t
		}
	}
	return sp.Start
}

// TotalNS returns the span's end-to-end latency in nanoseconds.
func (sp *Span) TotalNS() int64 {
	if sp == nil {
		return 0
	}
	return int64(sp.End() - sp.Start)
}

// StageDurs returns the per-stage durations in nanoseconds: each
// stamped stage's time since the previous stamped stage (or Start).
// Skipped stages are zero.
func (sp *Span) StageDurs() [NumStages]int64 {
	var out [NumStages]int64
	if sp == nil {
		return out
	}
	prev := sp.Start
	for st := Stage(0); st < NumStages; st++ {
		if t := sp.Stamp[st]; t != 0 {
			out[st] = int64(t - prev)
			prev = t
		}
	}
	return out
}

// Reset clears the span for pool reuse.
func (sp *Span) Reset() { *sp = Span{} }

// SpanRing is a bounded lock-free ring of published exemplar spans.
// Publish claims a slot with one atomic add and installs the span with
// one atomic pointer store; concurrent publishers and snapshotters
// never block each other. When the ring is full the oldest exemplars
// are overwritten. A published span must not be mutated afterwards.
type SpanRing struct {
	slots []atomic.Pointer[Span]
	seq   atomic.Uint64
}

// NewSpanRing creates a ring holding up to capacity exemplars.
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = 256
	}
	return &SpanRing{slots: make([]atomic.Pointer[Span], capacity)}
}

// Publish installs sp as the newest exemplar. Nil-safe on both sides.
func (r *SpanRing) Publish(sp *Span) {
	if r == nil || sp == nil {
		return
	}
	i := r.seq.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(sp)
}

// Published returns the number of spans ever published.
func (r *SpanRing) Published() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Snapshot appends the currently buffered exemplars to dst and returns
// the extended slice. Order is approximately oldest-first; under
// concurrent publication a slot may be observed empty or fresher than
// its neighbours, which is fine for exemplar dumps.
func (r *SpanRing) Snapshot(dst []*Span) []*Span {
	if r == nil {
		return dst
	}
	n := r.seq.Load()
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	first := r.seq.Load() - n
	for i := first; i < first+n; i++ {
		if sp := r.slots[i%uint64(len(r.slots))].Load(); sp != nil {
			dst = append(dst, sp)
		}
	}
	return dst
}

// Log2Bounds returns power-of-two histogram bounds from lo to hi
// inclusive (each bound doubling) — the log-scale (HDR-style) bucket
// layout the per-stage latency histograms use, giving constant relative
// error across six decades of latency for a few dozen buckets.
func Log2Bounds(lo, hi int64) []int64 {
	if lo < 1 {
		lo = 1
	}
	var out []int64
	for b := lo; b <= hi && b > 0; b *= 2 {
		out = append(out, b)
	}
	return out
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]) of
// the observed distribution: the upper bound of the bucket where the
// cumulative count crosses q. Overflow observations report the last
// finite bound. Nil-safe; returns 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if cum >= target {
			return b
		}
	}
	return h.bounds[len(h.bounds)-1]
}
