package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"adapt/internal/sim"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var rec *Recorder
	var tr *Tracer
	c.Add(5)
	c.Inc()
	g.Set(3)
	g.Add(1)
	h.Observe(9)
	rec.TickTo(sim.Second)
	rec.Finish(sim.Second)
	tr.Emit(GCStart(0, 1))
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || tr.Len() != 0 {
		t.Fatal("nil instruments must be inert no-ops")
	}
	if rec.Windows() != nil || tr.Events() != nil {
		t.Fatal("nil accessors must return empty")
	}
}

func TestRegistryInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c_total", "a counter")
	g := reg.NewGauge("g", "a gauge")
	v := int64(7)
	fg := reg.NewFuncGauge("fg_total", "func gauge", true, func() int64 { return v })
	c.Add(3)
	g.Set(-2)
	if c.Load() != 3 || g.Load() != -2 {
		t.Fatalf("counter/gauge loads: %d %d", c.Load(), g.Load())
	}
	if fg.Load() != 7 {
		t.Fatalf("func gauge should cache at registration: %d", fg.Load())
	}
	v = 11
	if fg.Load() != 7 {
		t.Fatal("func gauge must not re-read before Refresh")
	}
	reg.Refresh()
	if fg.Load() != 11 {
		t.Fatalf("func gauge after Refresh = %d, want 11", fg.Load())
	}
	if !c.Cumulative() || g.Cumulative() || !fg.Cumulative() {
		t.Fatal("cumulative flags wrong")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name must panic")
		}
	}()
	reg.NewCounter("c_total", "dup")
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("pad_blocks", "padding per flush", []int64{0, 2, 8})
	for _, v := range []int64{0, 0, 1, 2, 5, 9, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1, 2} // <=0, <=2, <=8, overflow
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 7 || h.Sum() != 117 {
		t.Fatalf("count=%d sum=%d, want 7/117", h.Count(), h.Sum())
	}
}

func TestRecorderWindows(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("x_total", "")
	g := reg.NewGauge("depth", "")
	rec := NewRecorder(reg, 10*sim.Millisecond, 0)

	rec.TickTo(0) // anchors the grid
	c.Add(5)
	g.Set(2)
	rec.TickTo(3 * sim.Millisecond) // same window: no close
	if len(rec.Windows()) != 0 {
		t.Fatal("window closed early")
	}
	rec.TickTo(12 * sim.Millisecond) // crosses the 10 ms boundary
	c.Add(7)
	g.Set(9)
	// Long silence: all activity since the last tick lands in one
	// window; the empty interior windows are skipped, not emitted.
	rec.TickTo(57 * sim.Millisecond)
	rec.Finish(61 * sim.Millisecond) // due boundary, then partial tail

	ws := rec.Windows()
	if len(ws) != 4 {
		t.Fatalf("got %d windows, want 4: %+v", len(ws), ws)
	}
	if ws[0].Start != 0 || ws[0].End != 10*sim.Millisecond {
		t.Fatalf("window 0 spans [%v, %v)", ws[0].Start, ws[0].End)
	}
	if d, _ := ws[0].Delta("x_total"); d != 5 {
		t.Fatalf("window 0 delta = %d, want 5", d)
	}
	if d, _ := ws[0].Delta("depth"); d != 2 {
		t.Fatalf("window 0 gauge sample = %d, want 2", d)
	}
	// The activity between 12 ms and 57 ms lands in the first window
	// closed after it ([10, 20)); the empty 20–50 ms stretch is skipped.
	if ws[1].Start != 10*sim.Millisecond || ws[1].End != 20*sim.Millisecond {
		t.Fatalf("window 1 spans [%v, %v), want [10ms, 20ms)", ws[1].Start, ws[1].End)
	}
	if d, _ := ws[1].Delta("x_total"); d != 7 {
		t.Fatalf("window 1 delta = %d, want 7", d)
	}
	// Finish closes the boundary window that became due since the last
	// tick, then the partial tail up to now.
	if ws[2].Start != 50*sim.Millisecond || ws[2].End != 60*sim.Millisecond {
		t.Fatalf("window 2 spans [%v, %v), want [50ms, 60ms)", ws[2].Start, ws[2].End)
	}
	if ws[3].Start != 60*sim.Millisecond || ws[3].End != 61*sim.Millisecond {
		t.Fatalf("tail window spans [%v, %v), want [60ms, 61ms)", ws[3].Start, ws[3].End)
	}
	if v, _ := ws[3].Value("x_total"); v != 12 {
		t.Fatalf("tail cumulative = %d, want 12", v)
	}
	// Finish is idempotent for an unchanged clock.
	rec.Finish(61 * sim.Millisecond)
	if got := len(rec.Windows()); got != 4 {
		t.Fatalf("second Finish added windows: %d", got)
	}
	// Delta sums must integrate to the cumulative total.
	var sum int64
	for i := range ws {
		d, _ := ws[i].Delta("x_total")
		sum += d
	}
	if sum != c.Load() {
		t.Fatalf("delta sum %d != counter %d", sum, c.Load())
	}
}

func TestRecorderRingBound(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("x_total", "")
	rec := NewRecorder(reg, sim.Millisecond, 4)
	rec.TickTo(0)
	for i := 1; i <= 10; i++ {
		c.Inc()
		rec.TickTo(sim.Time(i) * sim.Millisecond)
	}
	ws := rec.Windows()
	if len(ws) != 4 {
		t.Fatalf("ring holds %d windows, want 4", len(ws))
	}
	if rec.Dropped() == 0 {
		t.Fatal("expected dropped windows")
	}
	if ws[0].Index+3 != ws[3].Index {
		t.Fatalf("ring not contiguous: %d..%d", ws[0].Index, ws[3].Index)
	}
}

func TestRecorderLateRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewCounter("a_total", "")
	rec := NewRecorder(reg, sim.Millisecond, 0)
	rec.TickTo(0)
	a.Add(2)
	rec.TickTo(sim.Millisecond + 1)
	// A second instrument appears mid-run (e.g. prototype device gauges
	// attach after the store's): it must delta from zero.
	b := reg.NewCounter("b_total", "")
	b.Add(9)
	rec.TickTo(2*sim.Millisecond + 1)
	ws := rec.Windows()
	if len(ws) != 2 {
		t.Fatalf("%d windows, want 2", len(ws))
	}
	if _, ok := ws[0].Delta("b_total"); ok {
		t.Fatal("first window must not know the late instrument")
	}
	if d, _ := ws[1].Delta("b_total"); d != 9 {
		t.Fatalf("late instrument delta = %d, want 9", d)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(GCStart(sim.Time(i), i))
	}
	if tr.Len() != 4 || tr.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 4/2", tr.Len(), tr.Dropped())
	}
	ev := tr.Events()
	if ev[0].Seq != 2 || ev[3].Seq != 5 {
		t.Fatalf("ring window [%d, %d], want [2, 5]", ev[0].Seq, ev[3].Seq)
	}
}

func TestEventJSONLSchema(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(GCStart(1, 7))
	tr.Emit(GCEnd(2, 3, 40, 100))
	tr.Emit(SegmentSeal(3, 1, 12, 500))
	tr.Emit(ChunkFlush(4, 0, 12, 3, 14, 2))
	tr.Emit(PadFlush(5, 0, 2, FlushSLA))
	tr.Emit(ThresholdAdapt(6, 4096.5, 2))
	tr.Emit(Demote(7, 3, 99))
	tr.Emit(Recovery(8, 5, 1234))
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("%d lines, want 8", len(lines))
	}
	want := []string{
		`"type":"gc_start","free_segments":7`,
		`"type":"gc_end","reclaimed":3,"migrated":40,"scanned":100`,
		`"type":"segment_seal","group":1,"segment":12,"valid":500`,
		`"type":"chunk_flush","group":0,"segment":12,"chunk":3,"payload_blocks":14,"pad_blocks":2`,
		`"type":"pad_flush","group":0,"pad_blocks":2,"reason":"sla"`,
		`"type":"threshold_adapt","threshold":4096.5,"adoptions":2`,
		`"type":"demote","group":3,"lba":99`,
		`"type":"recovery","segments":5,"live_blocks":1234`,
	}
	for i, frag := range want {
		if !strings.Contains(lines[i], frag) {
			t.Errorf("line %d = %s\n  missing %s", i, lines[i], frag)
		}
	}
}

func TestWindowsJSONLRoundTrip(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("lss_user_blocks_total", "")
	gc := reg.NewCounter("lss_gc_blocks_total", "")
	rec := NewRecorder(reg, sim.Millisecond, 0)
	rec.TickTo(0)
	c.Add(100)
	gc.Add(20)
	rec.TickTo(sim.Millisecond + 1)
	c.Add(50)
	rec.Finish(sim.Millisecond + sim.Millisecond/2)

	ws := rec.Windows()
	var buf bytes.Buffer
	if err := WriteWindowsJSONL(&buf, ws); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWindowsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ws) {
		t.Fatalf("round trip: %d windows, want %d", len(back), len(ws))
	}
	for i := range ws {
		if back[i].Index != ws[i].Index || back[i].Start != ws[i].Start || back[i].End != ws[i].End {
			t.Fatalf("window %d header mismatch: %+v vs %+v", i, back[i], ws[i])
		}
		for j, name := range ws[i].Names {
			d, ok := back[i].Delta(name)
			if !ok || d != ws[i].Deltas[j] {
				t.Fatalf("window %d metric %s: delta %d (ok=%v), want %d", i, name, d, ok, ws[i].Deltas[j])
			}
			v, _ := back[i].Value(name)
			if v != ws[i].Values[j] {
				t.Fatalf("window %d metric %s: value %d, want %d", i, name, v, ws[i].Values[j])
			}
		}
		if got, want := Derive(&back[i]), Derive(&ws[i]); got.WA != want.WA || got.EffectiveWA != want.EffectiveWA {
			t.Fatalf("window %d derived mismatch: %+v vs %+v", i, got, want)
		}
	}
}

func TestDerive(t *testing.T) {
	w := Window{
		Start: 0,
		End:   sim.Second,
		Names: []string{
			MetricGCBlocks, MetricGCCycles, MetricPaddingBlocks,
			MetricShadowBlocks, MetricUserBlocks,
			`lss_group_blocks_total{group="0"}`,
			`proto_device_busy_ns_total{device="1"}`,
		},
		Deltas: []int64{50, 4, 40, 10, 100, 120, int64(sim.Second / 2)},
	}
	d := Derive(&w)
	if d.WA != 1.5 {
		t.Errorf("WA = %v, want 1.5", d.WA)
	}
	if d.EffectiveWA != 2 {
		t.Errorf("EffectiveWA = %v, want 2", d.EffectiveWA)
	}
	if d.PaddingRatio != 0.2 {
		t.Errorf("PaddingRatio = %v, want 0.2", d.PaddingRatio)
	}
	if d.GCCyclesPerSec != 4 {
		t.Errorf("GCCyclesPerSec = %v, want 4", d.GCCyclesPerSec)
	}
	if got := d.GroupShare["0"]; got != 0.6 {
		t.Errorf("GroupShare[0] = %v, want 0.6", got)
	}
	if got := d.DeviceUtil["1"]; got != 0.5 {
		t.Errorf("DeviceUtil[1] = %v, want 0.5", got)
	}
}

func TestPromExposition(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("x_total", "things").Add(4)
	reg.NewCounter(`fam_total{group="2"}`, "labelled family").Add(9)
	h := reg.NewHistogram("sizes", "size histo", []int64{1, 10})
	h.Observe(0)
	h.Observe(5)
	h.Observe(50)
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# HELP x_total things",
		"# TYPE x_total counter",
		"x_total 4",
		"# TYPE fam_total counter",
		`fam_total{group="2"} 9`,
		`sizes_bucket{le="1"} 1`,
		`sizes_bucket{le="10"} 2`,
		`sizes_bucket{le="+Inf"} 3`,
		"sizes_sum 55",
		"sizes_count 3",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("exposition missing %q:\n%s", frag, out)
		}
	}
}

func TestLabelValue(t *testing.T) {
	if got := LabelValue(`lss_group_blocks_total{group="3"}`, "group"); got != "3" {
		t.Errorf("LabelValue = %q, want 3", got)
	}
	if got := LabelValue("plain_total", "group"); got != "" {
		t.Errorf("LabelValue on unlabelled = %q, want empty", got)
	}
	if got := LabelValue(`m{a="1",b="2"}`, "b"); got != "2" {
		t.Errorf("two-label LabelValue = %q, want 2", got)
	}
}
