// Package telemetry is the low-overhead instrumentation layer shared
// by the trace-driven simulator, the concurrent prototype, and the
// experiment harness. It has three cooperating pieces:
//
//   - A Registry of named instruments: atomic counters and gauges,
//     function-backed gauges that read owner state at snapshot time,
//     and fixed-bucket histograms. The registry renders Prometheus-style
//     text exposition for live scraping.
//   - A windowed time-series Recorder that snapshots every scalar
//     instrument at a configurable interval of simulated time (virtual
//     time in the simulator, wall-derived time in the prototype) and
//     keeps a bounded history of per-window deltas, from which
//     per-window WA, effective WA, padding ratio, GC-cycle rate, and
//     per-group/per-device utilization derive.
//   - A bounded ring-buffer Tracer of typed events (GC cycles, segment
//     seals, chunk flushes, threshold adaptations, demotions, SLA
//     padding flushes) with JSONL export.
//
// Every hook is nil-safe: a nil *Recorder, *Tracer, or *Histogram is a
// no-op, so instrumented hot paths cost one nil check and zero
// allocations when telemetry is disabled.
//
// Concurrency contract: ticking the Recorder and refreshing
// function-backed gauges must be serialized with the owner whose state
// the functions read (the store does both under its own lock, inside
// advance). Counters, gauges, exports, and the HTTP handler are safe
// for concurrent use; function gauges serve the value cached at the
// last refresh.
package telemetry

import "adapt/internal/sim"

// Options configures a telemetry Set. Zero fields take defaults.
type Options struct {
	// WindowInterval is the time-series window width in simulated time
	// (default 10 ms).
	WindowInterval sim.Time
	// MaxWindows bounds the recorder history; the oldest windows are
	// dropped first (default 4096).
	MaxWindows int
	// EventCapacity bounds the tracer ring buffer (default 4096).
	EventCapacity int
}

// Set bundles the telemetry components over one shared registry.
type Set struct {
	Registry *Registry
	Recorder *Recorder
	Tracer   *Tracer
	// Intervals collects interference windows (GC cycles, degraded
	// columns, rebuilds) for post-hoc tail-latency attribution.
	Intervals *IntervalLog
}

// New builds a telemetry set with the given options.
func New(opts Options) *Set {
	if opts.WindowInterval <= 0 {
		opts.WindowInterval = 10 * sim.Millisecond
	}
	if opts.MaxWindows <= 0 {
		opts.MaxWindows = 4096
	}
	if opts.EventCapacity <= 0 {
		opts.EventCapacity = 4096
	}
	reg := NewRegistry()
	return &Set{
		Registry:  reg,
		Recorder:  NewRecorder(reg, opts.WindowInterval, opts.MaxWindows),
		Tracer:    NewTracer(opts.EventCapacity),
		Intervals: NewIntervalLog(opts.EventCapacity),
	}
}
