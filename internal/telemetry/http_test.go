package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// testSet builds a Set with a little of everything registered so every
// endpoint has content to serve.
func testSet(t *testing.T) *Set {
	t.Helper()
	s := New(Options{})
	c := s.Registry.NewCounter("http_test_ops_total", "ops")
	c.Add(7)
	h := s.Registry.NewHistogram("http_test_lat_ns", "latency", Log2Bounds(1024, 1<<20))
	h.Observe(4096)
	return s
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestHandlerEndpoints(t *testing.T) {
	h := Handler(testSet(t))
	cases := []struct {
		path        string
		contentType string
		contains    string
	}{
		{"/", "", "/metrics"},
		{"/metrics", "text/plain; version=0.0.4", "http_test_ops_total 7"},
		{"/events.jsonl", "application/x-ndjson", ""},
		{"/series.jsonl", "application/x-ndjson", ""},
		{"/series.csv", "text/csv", ""},
		{"/debug/pprof/", "", "profiles"},
	}
	for _, c := range cases {
		rec := get(t, h, c.path)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", c.path, rec.Code)
			continue
		}
		if c.contentType != "" {
			if got := rec.Header().Get("Content-Type"); got != c.contentType {
				t.Errorf("GET %s: Content-Type %q, want %q", c.path, got, c.contentType)
			}
		}
		if c.contains != "" && !strings.Contains(rec.Body.String(), c.contains) {
			t.Errorf("GET %s: body missing %q:\n%s", c.path, c.contains, rec.Body.String())
		}
	}
}

func TestHandlerUnknownPath(t *testing.T) {
	h := Handler(testSet(t))
	if rec := get(t, h, "/nope"); rec.Code != http.StatusNotFound {
		t.Errorf("GET /nope: status %d, want 404", rec.Code)
	}
}

func TestHandlerWithExtraRoutes(t *testing.T) {
	extra := map[string]http.Handler{
		"/debug/trace": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			io.WriteString(w, `{"id":1}`+"\n")
		}),
	}
	h := HandlerWith(testSet(t), extra)
	rec := get(t, h, "/debug/trace")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/trace: status %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"id":1`) {
		t.Errorf("extra route body = %q", rec.Body.String())
	}
	// Built-ins still reachable alongside the extra route.
	if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK {
		t.Errorf("GET /metrics with extras: status %d", rec.Code)
	}
}

// TestHandlerConcurrentScrape hammers /metrics while instruments are
// being updated; meaningful under -race.
func TestHandlerConcurrentScrape(t *testing.T) {
	s := testSet(t)
	h := Handler(s)
	c := s.Registry.NewCounter("http_test_churn_total", "churn")
	hist := s.Registry.NewHistogram("http_test_churn_ns", "churn", Log2Bounds(1024, 1<<20))
	stop := make(chan struct{})
	mutatorDone := make(chan struct{})
	go func() {
		defer close(mutatorDone)
		for {
			select {
			case <-stop:
				return
			default:
				c.Inc()
				hist.Observe(2048)
			}
		}
	}()
	var scrapers sync.WaitGroup
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 50; i++ {
				if rec := get(t, h, "/metrics"); rec.Code != http.StatusOK {
					t.Errorf("scrape: status %d", rec.Code)
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 50; i++ {
				get(t, h, "/events.jsonl")
				get(t, h, "/series.jsonl")
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	<-mutatorDone
}

func TestServeAndShutdown(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", testSet(t), map[string]http.Handler{
		"/extra": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			io.WriteString(w, "ok")
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/extra"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, body %q", path, resp.StatusCode, body)
		}
	}
}
