package segfile

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"sort"
	"sync"
)

// MemFS is an in-memory FS with explicit durability modelling: every
// inode tracks its cached (post-write) and synced (post-File.Sync)
// contents separately, and the directory tracks its cached and synced
// (post-SyncDir) namespaces separately. CrashImage materializes "what a
// crash right now would leave on disk": the synced namespace mapped to
// each inode's synced bytes. That is the conservative POSIX model —
// writes are volatile until fsync, and creations/removals/renames are
// volatile until the directory itself is synced.
type MemFS struct {
	mu sync.Mutex
	// cached and synced are the live and durable namespaces; they map
	// names to shared inodes.
	cached map[string]*memInode
	synced map[string]*memInode
}

type memInode struct {
	cached []byte
	synced []byte
}

// NewMemFS returns an empty in-memory FS.
func NewMemFS() *MemFS {
	return &MemFS{
		cached: make(map[string]*memInode),
		synced: make(map[string]*memInode),
	}
}

// CrashImage returns a new MemFS holding the durable state only: the
// synced namespace, each file at its last-synced contents. The image is
// fully synced (as after a crash and remount).
func (m *MemFS) CrashImage() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := NewMemFS()
	for name, ino := range m.synced {
		b := append([]byte(nil), ino.synced...)
		n := &memInode{cached: b, synced: append([]byte(nil), b...)}
		img.cached[name] = n
		img.synced[name] = n
	}
	return img
}

func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.cached[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		ino = &memInode{}
		m.cached[name] = ino
	case flag&os.O_TRUNC != 0:
		ino.cached = nil
	}
	return &memFile{fs: m, ino: ino}, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.cached[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.cached, name)
	return nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ino, ok := m.cached[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.cached, oldname)
	m.cached[newname] = ino
	return nil
}

func (m *MemFS) ReadDir() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.cached))
	for name := range m.cached {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) SyncDir() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.synced = make(map[string]*memInode, len(m.cached))
	for name, ino := range m.cached {
		m.synced[name] = ino
	}
	return nil
}

var _ FS = (*MemFS)(nil)

type memFile struct {
	fs  *MemFS
	ino *memInode
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	end := off + int64(len(p))
	if int64(len(f.ino.cached)) < end {
		grown := make([]byte, end)
		copy(grown, f.ino.cached)
		f.ino.cached = grown
	}
	copy(f.ino.cached[off:end], p)
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off >= int64(len(f.ino.cached)) {
		if len(p) == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	n := copy(p, f.ino.cached[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	switch {
	case int64(len(f.ino.cached)) > size:
		f.ino.cached = f.ino.cached[:size]
	case int64(len(f.ino.cached)) < size:
		grown := make([]byte, size)
		copy(grown, f.ino.cached)
		f.ino.cached = grown
	}
	return nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.ino.synced = append(f.ino.synced[:0], f.ino.cached...)
	return nil
}

func (f *memFile) Close() error { return nil }

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.ino.cached)), nil
}

// ErrCrashed is returned by every CrashFS operation at and after the
// injected crash point: the killed syscall fails atomically (no partial
// effect) and the "process" never reaches the kernel again.
var ErrCrashed = errors.New("segfile: injected crash")

// CrashFS wraps a MemFS and kills the world at an exact syscall
// boundary: the Budget-th FS or File operation — and every one after
// it — fails with ErrCrashed and has no effect. Combined with MemFS's
// durability modelling, the surviving state is exactly CrashImage() of
// the underlying MemFS: synced file contents reachable through the
// synced namespace. The crash sweep drives a workload once with an
// infinite budget to count syscalls, then replays it once per boundary.
type CrashFS struct {
	mu     sync.Mutex
	inner  *MemFS
	budget int // syscalls still allowed; <= 0 means crashed
	calls  int
}

// NewCrashFS wraps inner, allowing budget syscalls before the crash.
// A negative budget never crashes (used for the counting run).
func NewCrashFS(inner *MemFS, budget int) *CrashFS {
	return &CrashFS{inner: inner, budget: budget}
}

// Calls returns how many syscalls were attempted (including any that
// failed with ErrCrashed).
func (c *CrashFS) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// Crashed reports whether the crash point has been reached.
func (c *CrashFS) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.budget == 0
}

// Image returns the post-crash durable state of the wrapped MemFS.
func (c *CrashFS) Image() *MemFS { return c.inner.CrashImage() }

// step consumes one syscall from the budget; it reports whether the
// operation may proceed.
func (c *CrashFS) step() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.budget == 0 {
		return false
	}
	if c.budget > 0 {
		c.budget--
		if c.budget == 0 {
			// This call is the crash point: it fails with no effect.
			return false
		}
	}
	return true
}

func (c *CrashFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if !c.step() {
		return nil, ErrCrashed
	}
	f, err := c.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &crashFile{fs: c, f: f}, nil
}

func (c *CrashFS) Remove(name string) error {
	if !c.step() {
		return ErrCrashed
	}
	return c.inner.Remove(name)
}

func (c *CrashFS) Rename(oldname, newname string) error {
	if !c.step() {
		return ErrCrashed
	}
	return c.inner.Rename(oldname, newname)
}

func (c *CrashFS) ReadDir() ([]string, error) {
	if !c.step() {
		return nil, ErrCrashed
	}
	return c.inner.ReadDir()
}

func (c *CrashFS) SyncDir() error {
	if !c.step() {
		return ErrCrashed
	}
	return c.inner.SyncDir()
}

var _ FS = (*CrashFS)(nil)

type crashFile struct {
	fs *CrashFS
	f  File
}

func (f *crashFile) WriteAt(p []byte, off int64) (int, error) {
	if !f.fs.step() {
		return 0, ErrCrashed
	}
	return f.f.WriteAt(p, off)
}

func (f *crashFile) ReadAt(p []byte, off int64) (int, error) {
	if !f.fs.step() {
		return 0, ErrCrashed
	}
	return f.f.ReadAt(p, off)
}

func (f *crashFile) Truncate(size int64) error {
	if !f.fs.step() {
		return ErrCrashed
	}
	return f.f.Truncate(size)
}

func (f *crashFile) Sync() error {
	if !f.fs.step() {
		return ErrCrashed
	}
	return f.f.Sync()
}

func (f *crashFile) Close() error {
	if !f.fs.step() {
		return ErrCrashed
	}
	return f.f.Close()
}

func (f *crashFile) Size() (int64, error) {
	if !f.fs.step() {
		return 0, ErrCrashed
	}
	return f.f.Size()
}
