package segfile

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"adapt/internal/lss"
)

// Recovery: the directory scan (done in Open) produced one segImage
// per surviving segment file. Recover validates each image against the
// configured geometry, degrades what a crash could legitimately leave
// behind (an unsealed-but-full segment, a torn open tail), synthesizes
// an lss checkpoint stream from the result, and lets the store's own
// Recover do the roll-forward — so the on-disk log and the in-memory
// checkpoint share one recovery semantics, and the crash oracle
// (checker.CompareRecovered) applies to both unchanged.

// RecoveryStats reports what Recover rolled forward.
type RecoveryStats struct {
	// Segments and SealedSegments count surviving (non-free) segment
	// incarnations, and how many of them were sealed.
	Segments       int
	SealedSegments int
	// Blocks is the number of LBAs mapped after roll-forward.
	Blocks int64
	// TornRecords counts record tails truncated across all files
	// (syscall-torn appends, geometry-invalid chunks, degraded seals).
	TornRecords int
	// CorruptFiles counts files dropped whole (bad header, bad name,
	// out-of-range id, undecodable checkpoint).
	CorruptFiles int
	// CheckpointLoaded reports whether a valid clock-floor checkpoint
	// was found.
	CheckpointLoaded bool
}

// lssCkptMagic is lss.WriteCheckpoint's stream magic; the synthesized
// image must carry it. Kept in sync by the segfile round-trip tests.
var lssCkptMagic = []byte("ADPTCK01")

// Segment states in the lss checkpoint stream (lss's private segState
// iota order, guarded by the round-trip tests).
const (
	stateFree   = 0
	stateOpen   = 1
	stateSealed = 2
)

// Recover rebuilds a live lss.Store from the scanned directory. cfg
// and p must match the geometry and group count the directory was
// written with. deps is wired into the recovered store; callers that
// want the store to keep persisting must include Durable: st in it.
func (st *Store) Recover(cfg lss.Config, p lss.Policy, deps ...lss.Deps) (*lss.Store, RecoveryStats, error) {
	var stats RecoveryStats
	if p == nil {
		return nil, stats, fmt.Errorf("segfile: recover: nil policy")
	}
	groups := p.Groups()
	total := cfg.TotalSegments(groups)
	eff := cfg.GeometryDefaults()
	chunkBlocks := eff.ChunkBlocks
	segChunks := eff.SegmentChunks
	segBlocks := chunkBlocks * segChunks

	if st.ckpt != nil {
		stats.CheckpointLoaded = true
		if g := st.ckpt.geo; g != (geometry{}) {
			want := geometry{
				blockSize:     eff.BlockSize,
				chunkBlocks:   eff.ChunkBlocks,
				segmentChunks: eff.SegmentChunks,
				userBlocks:    eff.UserBlocks,
			}
			if g != want {
				return nil, stats, fmt.Errorf("segfile: recover: checkpoint geometry %+v does not match configuration %+v", g, want)
			}
		}
	}

	// Validate every image against the geometry, truncating what a
	// crash (or corruption) left unusable, and take the clock maxima.
	var maxW, maxSeq, maxNow uint64
	if st.ckpt != nil {
		maxW, maxSeq, maxNow = st.ckpt.w, st.ckpt.appendSeq, st.ckpt.now
	}
	type segPlan struct {
		img    *segImage
		state  int
		chunks int
	}
	plans := make([]segPlan, total)
	for id, img := range st.images {
		if id < 0 || id >= total {
			// A segment id the configured store cannot hold: with the
			// right configuration this never parses; drop it whole.
			st.dropFile(id)
			stats.CorruptFiles++
			continue
		}
		keep := len(img.chunks)
		if keep > segChunks {
			keep = segChunks
		}
		for i := 0; i < keep; i++ {
			if len(img.chunks[i].lbas) != chunkBlocks || len(img.chunks[i].vers) != chunkBlocks {
				keep = i
				break
			}
		}
		entry := st.segs[id]
		if keep < len(img.chunks) {
			// Geometry-invalid or surplus chunks: the durable prefix
			// ends before them. Truncate the file so future appends
			// land at a parseable boundary.
			stats.TornRecords += len(img.chunks) - keep
			img.chunks = img.chunks[:keep]
			end := int64(img.header.dataStart)
			if keep > 0 {
				end = img.chunkEnds[keep-1]
			}
			if err := entry.f.Truncate(end); err != nil {
				return nil, stats, fmt.Errorf("segfile: recover truncate segment %d: %w", id, err)
			}
			entry.off = end
			entry.chunks = keep
			entry.sealed = false
			img.sealed = false
		}
		sealed := img.sealed && keep == segChunks
		if img.sealed && !sealed {
			// A seal record without its full complement of chunks can
			// only come from corruption (seals are write-ahead: data
			// first). Degrade to open and drop the record, or appends
			// after recovery would land unreachable behind it.
			stats.TornRecords++
			if err := entry.f.Truncate(img.sealOff); err != nil {
				return nil, stats, fmt.Errorf("segfile: recover unseal segment %d: %w", id, err)
			}
			entry.off = img.sealOff
			entry.sealed = false
			img.sealed = false
		}
		state := stateOpen
		if sealed {
			state = stateSealed
			stats.SealedSegments++
		}
		stats.Segments++
		plans[id] = segPlan{img: img, state: state, chunks: keep}

		if img.header.born > maxW {
			maxW = img.header.born
		}
		if sealed && img.sealedW > maxW {
			maxW = img.sealedW
		}
		for _, c := range img.chunks {
			if c.w > maxW {
				maxW = c.w
			}
			if c.now > maxNow {
				maxNow = c.now
			}
			for _, v := range c.vers {
				if uint64(v) > maxSeq {
					maxSeq = uint64(v)
				}
			}
		}
	}

	// Synthesize the lss checkpoint stream.
	buf := bytes.NewBuffer(nil)
	buf.Write(lssCkptMagic)
	var tmp [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putI := func(v int64) {
		n := binary.PutVarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putU(uint64(eff.BlockSize))
	putU(uint64(eff.ChunkBlocks))
	putU(uint64(eff.SegmentChunks))
	putU(uint64(eff.UserBlocks))
	putU(uint64(total))
	putU(uint64(groups))
	putU(maxW)
	putU(maxSeq)
	putU(maxNow)
	for id := 0; id < total; id++ {
		pl := plans[id]
		if pl.img == nil {
			putU(stateFree)
			putU(0) // group
			putU(0) // born
			putU(0) // sealedW
			putU(0) // flushed
			continue
		}
		putU(uint64(pl.state))
		putU(uint64(pl.img.header.group))
		putU(pl.img.header.born)
		if pl.state == stateSealed {
			putU(pl.img.sealedW)
		} else {
			putU(0)
		}
		putU(uint64(pl.chunks * chunkBlocks))
		for _, c := range pl.img.chunks {
			for i := range c.lbas {
				putI(c.lbas[i])
				putI(c.vers[i])
			}
		}
	}

	store, err := lss.Recover(buf, cfg, p, deps...)
	if err != nil {
		return nil, stats, fmt.Errorf("segfile: recover: %w", err)
	}
	if store.TotalSegments() != total || store.Config().SegmentBlocks() != segBlocks {
		// Defensive: the synthesized image and the built store must
		// agree or every later id-based append is misdirected.
		return nil, stats, fmt.Errorf("segfile: recover: store geometry drifted from synthesized image")
	}
	stats.Blocks = store.LiveBlocks()
	stats.TornRecords += int(st.tornRecords.Load())
	stats.CorruptFiles += int(st.corruptFiles)
	st.tornRecords.Store(int64(stats.TornRecords))
	st.corruptFiles = int64(stats.CorruptFiles)
	st.recoveredSegs.Store(int64(stats.Segments))
	st.recoveredBlocks.Store(stats.Blocks)
	st.lastW, st.lastSeq, st.lastNow = maxW, maxSeq, maxNow
	st.images = nil
	return store, stats, nil
}

// dropFile closes and removes a file that recovery rejected whole.
func (st *Store) dropFile(id int) {
	if entry := st.segs[id]; entry != nil {
		if entry.f != nil {
			_ = entry.f.Close()
		}
		delete(st.segs, id)
	}
	_ = st.fs.Remove(segFileName(id))
	delete(st.images, id)
}
