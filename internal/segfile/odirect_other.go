//go:build !linux

package segfile

// O_DIRECT is Linux-specific; elsewhere the store always runs
// buffered and Probe reports ODirect false.
const oDirectFlag = 0

const directAlign = 512

func alignedBuf(n int) []byte { return make([]byte, n) }

func probeODirect(dir string) bool { return false }
