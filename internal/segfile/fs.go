// Package segfile is the file-backed segment store beneath lss.Store:
// it implements lss.DurableLog over a single directory, persisting
// every flushed chunk, segment seal, and reclaim as it happens, plus an
// atomically-renamed checkpoint of the store clocks. The on-disk format
// is torn-write-safe (per-segment headers and per-record CRC32-C,
// reusing the wire protocol's Castagnoli discipline) and recovery rolls
// the directory forward into a live lss.Store through the existing
// checkpoint path, so the in-memory store, the crash oracle, and the
// durable backend all share one durability model.
package segfile

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// FS is the syscall seam the store writes through. A production store
// uses the operating-system directory (DirFS); tests substitute MemFS,
// and the crash-injection harness wraps either in a CrashFS that kills
// the process at an exact syscall boundary. Every method maps to one
// syscall-granularity operation, which is the unit the crash sweep
// enumerates.
//
// The namespace is a single flat directory. Durability follows POSIX
// rules: File.Sync persists a file's contents, SyncDir persists the
// namespace (creations, removals, renames). Neither implies the other.
type FS interface {
	// OpenFile opens (or creates) a file in the directory.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Remove unlinks a file. Durable only after SyncDir.
	Remove(name string) error
	// Rename atomically replaces newname with oldname. Durable only
	// after SyncDir.
	Rename(oldname, newname string) error
	// ReadDir lists the file names in the directory.
	ReadDir() ([]string, error)
	// SyncDir persists the directory namespace.
	SyncDir() error
}

// File is one open file of an FS.
type File interface {
	io.WriterAt
	io.ReaderAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Size() (int64, error)
}

// DirFS is the real-filesystem FS rooted at a directory. O_DIRECT is
// requested per open: the store ORs oDirectFlag into the OpenFile
// flags of files it appends to directly.
type DirFS struct {
	dir string
}

// NewDirFS creates (if needed) and opens dir as an FS.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirFS{dir: dir}, nil
}

// Dir returns the rooted directory path.
func (d *DirFS) Dir() string { return d.dir }

func (d *DirFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(filepath.Join(d.dir, name), flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (d *DirFS) Remove(name string) error { return os.Remove(filepath.Join(d.dir, name)) }

func (d *DirFS) Rename(oldname, newname string) error {
	return os.Rename(filepath.Join(d.dir, oldname), filepath.Join(d.dir, newname))
}

func (d *DirFS) ReadDir() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *DirFS) SyncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

type osFile struct{ f *os.File }

func (o osFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osFile) Sync() error                              { return o.f.Sync() }
func (o osFile) Close() error                             { return o.f.Close() }
func (o osFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

var _ FS = (*DirFS)(nil)

// readAll reads the full contents of name through fsys, returning
// (nil, nil) if the file does not exist.
func readAll(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return nil, fmt.Errorf("segfile: read %s: %w", name, err)
	}
	return buf, nil
}
