package segfile_test

import (
	"encoding/binary"
	"io"
	"os"
	"testing"

	"adapt/internal/lss"
	"adapt/internal/segfile"
)

// The fuzz target feeds Recover arbitrary directory images. An image
// is serialized as a flat archive: repeated
//
//	u8 nameLen | name | u32be dataLen | data
//
// so the fuzzer can mutate segment headers, tear record tails, flip
// CRC bytes, swap epochs, and truncate files wholesale. Whatever
// survives unpacking becomes a fully-synced MemFS.

const (
	fuzzMaxFiles    = 64
	fuzzMaxFileSize = 1 << 20
)

// unpackArchive builds a MemFS from archive bytes, stopping quietly at
// the first malformed entry.
func unpackArchive(data []byte) *segfile.MemFS {
	mem := segfile.NewMemFS()
	for files := 0; len(data) > 0 && files < fuzzMaxFiles; files++ {
		nameLen := int(data[0])
		data = data[1:]
		if nameLen == 0 || len(data) < nameLen+4 {
			break
		}
		name := string(data[:nameLen])
		data = data[nameLen:]
		size := int(binary.BigEndian.Uint32(data))
		data = data[4:]
		if size > fuzzMaxFileSize || size > len(data) {
			break
		}
		f, err := mem.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			break
		}
		_, _ = f.WriteAt(data[:size], 0)
		_ = f.Sync()
		_ = f.Close()
		data = data[size:]
	}
	_ = mem.SyncDir()
	return mem
}

// packArchive serializes every file of fsys into archive bytes.
func packArchive(t testing.TB, fsys segfile.FS) []byte {
	t.Helper()
	names, err := fsys.ReadDir()
	if err != nil {
		t.Fatalf("pack: %v", err)
	}
	var out []byte
	for _, name := range names {
		f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
		if err != nil {
			t.Fatalf("pack %s: %v", name, err)
		}
		size, err := f.Size()
		if err != nil {
			t.Fatalf("pack %s: %v", name, err)
		}
		buf := make([]byte, size)
		if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
			t.Fatalf("pack %s: %v", name, err)
		}
		_ = f.Close()
		out = append(out, byte(len(name)))
		out = append(out, name...)
		var lenb [4]byte
		binary.BigEndian.PutUint32(lenb[:], uint32(len(buf)))
		out = append(out, lenb[:]...)
		out = append(out, buf...)
	}
	return out
}

// seedImage drives the deterministic workload into a MemFS and packs
// the resulting directory.
func seedImage(t testing.TB, cfg lss.Config) []byte {
	mem := segfile.NewMemFS()
	sf, err := segfile.Open(segfile.Options{
		FS:                   mem,
		Sync:                 segfile.SyncAlways,
		Geometry:             cfg.GeometryDefaults(),
		CheckpointEverySeals: 4,
	})
	if err != nil {
		t.Fatalf("seed open: %v", err)
	}
	s := lss.New(cfg, newPolicy(t, cfg), lss.Deps{Durable: sf})
	if !driveWorkload(t, s, workloadOps/2) {
		t.Fatalf("seed workload: %v", s.DurableErr())
	}
	if err := sf.Close(); err != nil {
		t.Fatalf("seed close: %v", err)
	}
	return packArchive(t, mem)
}

// FuzzSegfileRecover opens and recovers arbitrary directory images:
// torn headers, truncated tails, flipped CRC bytes, stale epochs,
// hostile lengths. Recover may reject an image, but it must never
// panic, and any store it does build must pass the full invariant
// sweep (so corrupt bytes can never fabricate out-of-range mappings or
// broken accounting).
func FuzzSegfileRecover(f *testing.F) {
	cfg := smallCfg()
	clean := seedImage(f, cfg)
	f.Add(clean)
	f.Add([]byte{})
	// Truncated tail: the last file loses its final bytes.
	if len(clean) > 13 {
		f.Add(clean[:len(clean)-13])
	}
	// Torn header / flipped bytes at several offsets.
	for _, at := range []int{10, len(clean) / 3, len(clean) / 2, len(clean) - 20} {
		if at > 0 && at < len(clean) {
			mut := append([]byte(nil), clean...)
			mut[at] ^= 0x5a
			f.Add(mut)
		}
	}

	pol := newPolicy(f, cfg)
	f.Fuzz(func(t *testing.T, data []byte) {
		mem := unpackArchive(data)
		sf, err := segfile.Open(segfile.Options{
			FS:       mem,
			Sync:     segfile.SyncAlways,
			Geometry: cfg.GeometryDefaults(),
		})
		if err != nil {
			return
		}
		if !sf.HasData() {
			return
		}
		rec, _, err := sf.Recover(cfg, pol)
		if err != nil {
			return
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("recovered store from corrupt image violates invariants: %v", err)
		}
		for lba := int64(0); lba < cfg.UserBlocks; lba++ {
			if seg, slot, ok := rec.Location(lba); ok {
				if seg < 0 || seg >= rec.TotalSegments() || slot < 0 || slot >= cfg.SegmentBlocks() {
					t.Fatalf("lba %d mapped out of range: seg %d slot %d", lba, seg, slot)
				}
			}
		}
	})
}

// TestRecoverCorruptImages runs the fuzz body over a fixed set of
// handcrafted damage patterns so the cases are exercised on every
// plain `go test` run, not only under -fuzz: per-file truncation at
// awkward offsets, a stale-epoch checkpoint, and a segment file whose
// header claims the wrong id.
func TestRecoverCorruptImages(t *testing.T) {
	cfg := smallCfg()
	clean := seedImage(t, cfg)

	damage := []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)*2/3] },
		func(b []byte) []byte { b[len(b)/4] ^= 0xff; return b },
		func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b },
		func(b []byte) []byte { b[len(b)-5] ^= 0x80; return b },
	}
	for i, dmg := range damage {
		data := dmg(append([]byte(nil), clean...))
		mem := unpackArchive(data)
		sf, err := segfile.Open(segfile.Options{
			FS:       mem,
			Sync:     segfile.SyncAlways,
			Geometry: cfg.GeometryDefaults(),
		})
		if err != nil {
			t.Fatalf("damage %d: open: %v", i, err)
		}
		if !sf.HasData() {
			continue
		}
		rec, _, err := sf.Recover(cfg, newPolicy(t, cfg))
		if err != nil {
			continue
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("damage %d: invariants: %v", i, err)
		}
	}
}

// TestRecoverDropsStaleMisnamedFile plants a segment file whose header
// claims a different id than its name: the scan must drop it whole
// rather than let a stale incarnation masquerade as another segment.
func TestRecoverDropsStaleMisnamedFile(t *testing.T) {
	cfg := smallCfg()
	mem := unpackArchive(seedImage(t, cfg))

	names, _ := mem.ReadDir()
	var segName string
	for _, n := range names {
		if n != "checkpoint" {
			segName = n
			break
		}
	}
	if segName == "" {
		t.Fatal("seed image has no segment files")
	}
	src, err := mem.OpenFile(segName, os.O_RDONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := src.Size()
	buf := make([]byte, size)
	if _, err := src.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	// Plant the bytes under a free segment id's name; the embedded
	// header id no longer matches the file name.
	total := cfg.TotalSegments(newPolicy(t, cfg).Groups())
	planted := false
	for id := total - 1; id >= 0; id-- {
		if _, taken, _ := statFile(mem, id); !taken {
			dst, _ := mem.OpenFile(segfileName(id), os.O_RDWR|os.O_CREATE, 0o644)
			_, _ = dst.WriteAt(buf, 0)
			_ = dst.Sync()
			_ = dst.Close()
			_ = mem.SyncDir()
			planted = true
			break
		}
	}
	if !planted {
		t.Fatal("no free id to plant under")
	}

	sf, err := segfile.Open(segfile.Options{
		FS:       mem,
		Sync:     segfile.SyncAlways,
		Geometry: cfg.GeometryDefaults(),
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	rec, stats, err := sf.Recover(cfg, newPolicy(t, cfg))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if stats.CorruptFiles == 0 {
		t.Fatal("misnamed file was not reported corrupt")
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// segfileName mirrors the on-disk naming for test plumbing.
func segfileName(id int) string {
	return segfile.SegmentFileName(id)
}

// statFile reports whether a segment file exists for id.
func statFile(mem *segfile.MemFS, id int) (int64, bool, error) {
	f, err := mem.OpenFile(segfileName(id), os.O_RDONLY, 0)
	if err != nil {
		return 0, false, nil
	}
	size, serr := f.Size()
	_ = f.Close()
	return size, true, serr
}
