package segfile

// Capability describes what the host filesystem offers the durable
// path. bench-snapshot records it alongside benchmark output so
// durable-path numbers are comparable across containers (an O_DIRECT
// ext4 host and a buffered overlayfs container measure very different
// things).
type Capability struct {
	// FSType is the filesystem type name backing the probed directory
	// ("ext4", "tmpfs", "overlayfs", ...), "unknown" when the platform
	// offers no statfs.
	FSType string `json:"fs_type"`
	// ODirect reports whether an aligned O_DIRECT write succeeds there.
	ODirect bool `json:"o_direct"`
}

// Probe reports dir's durable-path capability.
func Probe(dir string) Capability {
	return Capability{
		FSType:  fsTypeName(dir),
		ODirect: probeODirect(dir),
	}
}
