//go:build linux

package segfile

import (
	"fmt"
	"syscall"
)

// fsTypeName resolves dir's filesystem magic to a name. Unknown magics
// render as hex so the capability record still distinguishes hosts.
func fsTypeName(dir string) string {
	var st syscall.Statfs_t
	if err := syscall.Statfs(dir, &st); err != nil {
		return "unknown"
	}
	switch uint64(uint32(st.Type)) {
	case 0xef53:
		return "ext4"
	case 0x58465342:
		return "xfs"
	case 0x9123683e:
		return "btrfs"
	case 0x01021994:
		return "tmpfs"
	case 0x794c7630:
		return "overlayfs"
	case 0x6969:
		return "nfs"
	case 0x2fc12fc1:
		return "zfs"
	case 0x858458f6:
		return "ramfs"
	case 0x01021997:
		return "v9fs"
	default:
		return fmt.Sprintf("0x%x", uint64(uint32(st.Type)))
	}
}
