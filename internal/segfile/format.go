package segfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk format. One file per physical segment incarnation,
// seg-NNNNN.seg, plus a checkpoint file replaced by atomic rename:
//
//	segment file = header | record*
//	header       = magic8 "ADPTSEG1" | u32 segID | u32 group |
//	               u64 born | u64 epoch | u32 dataStart | u32 CRC32-C
//	record       = u32 len | u8 kind | body[len-1] | u32 CRC32-C(kind|body)
//	chunk body   = uvarint chunkIdx | uvarint w | uvarint now |
//	               uvarint slots | slots × (varint slotVal, varint ver)
//	seal body    = uvarint sealedW
//	pad body     = zeros (alignment filler, skipped on parse)
//
// Torn-write safety: the header is written in a single syscall and
// synced before the file becomes reachable (its directory entry syncs
// after), every record carries its own CRC32-C (the Castagnoli
// discipline shared with internal/server/wire), and chunk records must
// form a contiguous chunkIdx prefix — the parser stops at the first
// hole, bad CRC, or short read, so a torn tail truncates cleanly to the
// last durable chunk. A seal record is honored only when every chunk of
// the segment parsed before it (write-ahead seal: data first). The
// checkpoint file carries the same magic/CRC discipline and only clock
// floors — segment files are the sole mapping authority.

var segMagic = []byte("ADPTSEG1")
var ckptMagic = []byte("ADPTCKF1")

// castagnoli is the CRC32-C table, the same checksum discipline the
// wire protocol uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	headerSize = 40

	recPad   = 0
	recChunk = 1
	recSeal  = 2

	// recordOverhead = len prefix + kind + trailing CRC.
	recordOverhead = 9
)

// ErrCorrupt reports an unparseable segment or checkpoint file.
var ErrCorrupt = errors.New("segfile: corrupt file")

// segFileName returns the file name for segment id.
func segFileName(id int) string { return fmt.Sprintf("seg-%05d.seg", id) }

// SegmentFileName exposes the on-disk naming for tests and tooling.
func SegmentFileName(id int) string { return segFileName(id) }

// parseSegFileName returns the segment id encoded in a file name.
func parseSegFileName(name string) (int, bool) {
	var id int
	if _, err := fmt.Sscanf(name, "seg-%05d.seg", &id); err != nil || segFileName(id) != name {
		return 0, false
	}
	return id, true
}

const (
	ckptName    = "checkpoint"
	ckptTmpName = "checkpoint.tmp"
)

// segHeader is the decoded fixed-size segment file header.
type segHeader struct {
	segID     int
	group     int
	born      uint64
	epoch     uint64
	dataStart int
}

// encodeHeader serializes h into a dataStart-sized block (the tail
// beyond the 40 header bytes is zero filler so the first record starts
// aligned).
func encodeHeader(h segHeader) []byte {
	buf := make([]byte, h.dataStart)
	copy(buf, segMagic)
	binary.BigEndian.PutUint32(buf[8:], uint32(h.segID))
	binary.BigEndian.PutUint32(buf[12:], uint32(h.group))
	binary.BigEndian.PutUint64(buf[16:], h.born)
	binary.BigEndian.PutUint64(buf[24:], h.epoch)
	binary.BigEndian.PutUint32(buf[32:], uint32(h.dataStart))
	binary.BigEndian.PutUint32(buf[36:], crc32.Checksum(buf[:36], castagnoli))
	return buf
}

// decodeHeader parses and validates a segment file header.
func decodeHeader(data []byte) (segHeader, error) {
	if len(data) < headerSize {
		return segHeader{}, fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:8]) != string(segMagic) {
		return segHeader{}, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:8])
	}
	if got, want := binary.BigEndian.Uint32(data[36:40]), crc32.Checksum(data[:36], castagnoli); got != want {
		return segHeader{}, fmt.Errorf("%w: header CRC %08x != %08x", ErrCorrupt, got, want)
	}
	h := segHeader{
		segID:     int(binary.BigEndian.Uint32(data[8:])),
		group:     int(binary.BigEndian.Uint32(data[12:])),
		born:      binary.BigEndian.Uint64(data[16:]),
		epoch:     binary.BigEndian.Uint64(data[24:]),
		dataStart: int(binary.BigEndian.Uint32(data[32:])),
	}
	if h.dataStart < headerSize || h.dataStart > 1<<20 {
		return segHeader{}, fmt.Errorf("%w: data start %d out of range", ErrCorrupt, h.dataStart)
	}
	return h, nil
}

// appendRecord appends one framed record (len | kind | body | CRC).
func appendRecord(dst []byte, kind byte, body []byte) []byte {
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(1+len(body)))
	dst = append(dst, lenb[:]...)
	start := len(dst)
	dst = append(dst, kind)
	dst = append(dst, body...)
	var crcb [4]byte
	binary.BigEndian.PutUint32(crcb[:], crc32.Checksum(dst[start:], castagnoli))
	return append(dst, crcb[:]...)
}

// chunkRecord is a decoded chunk record.
type chunkRecord struct {
	chunk int
	w     uint64
	now   uint64
	lbas  []int64
	vers  []int64
}

// encodeChunkBody serializes a chunk record body.
func encodeChunkBody(chunk int, w, now uint64, lbas, vers []int64) []byte {
	body := make([]byte, 0, 4*binary.MaxVarintLen64+len(lbas)*2*binary.MaxVarintLen64)
	body = binary.AppendUvarint(body, uint64(chunk))
	body = binary.AppendUvarint(body, w)
	body = binary.AppendUvarint(body, now)
	body = binary.AppendUvarint(body, uint64(len(lbas)))
	for i := range lbas {
		body = binary.AppendVarint(body, lbas[i])
		body = binary.AppendVarint(body, vers[i])
	}
	return body
}

// decodeChunkBody parses a chunk record body.
func decodeChunkBody(body []byte) (chunkRecord, error) {
	var rec chunkRecord
	u := func() (uint64, bool) {
		v, n := binary.Uvarint(body)
		if n <= 0 {
			return 0, false
		}
		body = body[n:]
		return v, true
	}
	i := func() (int64, bool) {
		v, n := binary.Varint(body)
		if n <= 0 {
			return 0, false
		}
		body = body[n:]
		return v, true
	}
	chunk, ok1 := u()
	w, ok2 := u()
	now, ok3 := u()
	slots, ok4 := u()
	if !ok1 || !ok2 || !ok3 || !ok4 || chunk > 1<<20 || slots > 1<<20 {
		return rec, fmt.Errorf("%w: chunk record header", ErrCorrupt)
	}
	if slots*2 > uint64(len(body)) {
		// Each slot costs at least two varint bytes; a claimed count the
		// body cannot hold is corruption — reject before allocating.
		return rec, fmt.Errorf("%w: chunk record claims %d slots in %d bytes", ErrCorrupt, slots, len(body))
	}
	rec.chunk = int(chunk)
	rec.w = w
	rec.now = now
	rec.lbas = make([]int64, slots)
	rec.vers = make([]int64, slots)
	for s := uint64(0); s < slots; s++ {
		lba, ok := i()
		ver, ok2 := i()
		if !ok || !ok2 {
			return rec, fmt.Errorf("%w: chunk record slot %d", ErrCorrupt, s)
		}
		rec.lbas[s] = lba
		rec.vers[s] = ver
	}
	if len(body) != 0 {
		return rec, fmt.Errorf("%w: %d trailing chunk-record bytes", ErrCorrupt, len(body))
	}
	return rec, nil
}

// segImage is the durable state parsed out of one segment file: the
// contiguous chunk prefix, whether a (complete, honored) seal record
// followed it, and the byte length of the valid prefix — everything
// past validLen is a torn tail the store truncates before appending
// again.
type segImage struct {
	header  segHeader
	chunks  []chunkRecord
	sealed  bool
	sealedW uint64
	// chunkEnds[i] is the file offset just past chunk record i, and
	// sealOff the offset where the seal record begins — recovery
	// truncates to these boundaries when it drops a geometry-invalid
	// chunk or degrades an incomplete seal.
	chunkEnds []int64
	sealOff   int64
	validLen  int64
	torn      int // records dropped at the tail (bad CRC / hole / short)
}

// parseSegment walks a segment file, returning its durable image. Only
// the header must be intact (an error otherwise); record-level damage
// truncates rather than fails.
func parseSegment(data []byte) (*segImage, error) {
	h, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	img := &segImage{header: h, validLen: int64(h.dataStart)}
	if h.dataStart > len(data) {
		// The header promises record space the file does not have:
		// nothing durable beyond the header, and the tail is torn.
		img.validLen = int64(len(data))
		img.torn++
		return img, nil
	}
	off := h.dataStart
	for off < len(data) {
		if len(data)-off < recordOverhead {
			img.torn++
			return img, nil
		}
		rlen := int(binary.BigEndian.Uint32(data[off:]))
		if rlen < 1 || rlen > len(data)-off-8 {
			img.torn++
			return img, nil
		}
		payload := data[off+4 : off+4+rlen]
		crc := binary.BigEndian.Uint32(data[off+4+rlen:])
		if crc != crc32.Checksum(payload, castagnoli) {
			img.torn++
			return img, nil
		}
		switch payload[0] {
		case recPad:
			// Alignment filler.
		case recChunk:
			rec, err := decodeChunkBody(payload[1:])
			if err != nil || rec.chunk != len(img.chunks) {
				// Undecodable or out-of-order chunk: the contiguous
				// durable prefix ends here.
				img.torn++
				return img, nil
			}
			img.chunks = append(img.chunks, rec)
			img.chunkEnds = append(img.chunkEnds, int64(off)+int64(rlen)+8)
		case recSeal:
			sealedW, n := binary.Uvarint(payload[1:])
			if n <= 0 {
				img.torn++
				return img, nil
			}
			img.sealed = true
			img.sealedW = sealedW
			img.sealOff = int64(off)
			img.validLen = int64(off) + int64(rlen) + 8
			return img, nil
		default:
			img.torn++
			return img, nil
		}
		off += rlen + 8
		img.validLen = int64(off)
	}
	return img, nil
}

// encodeCheckpoint serializes the clock-floor checkpoint.
func encodeCheckpoint(geo geometry, w, appendSeq, now, epoch uint64) []byte {
	buf := append([]byte(nil), ckptMagic...)
	for _, v := range []uint64{
		uint64(geo.blockSize), uint64(geo.chunkBlocks), uint64(geo.segmentChunks),
		uint64(geo.userBlocks), w, appendSeq, now, epoch,
	} {
		buf = binary.AppendUvarint(buf, v)
	}
	var crcb [4]byte
	binary.BigEndian.PutUint32(crcb[:], crc32.Checksum(buf, castagnoli))
	return append(buf, crcb[:]...)
}

// geometry is the store-geometry fingerprint stamped into checkpoints.
type geometry struct {
	blockSize     int
	chunkBlocks   int
	segmentChunks int
	userBlocks    int64
}

// checkpoint is a decoded checkpoint file.
type checkpoint struct {
	geo               geometry
	w, appendSeq, now uint64
	epoch             uint64
}

// decodeCheckpoint parses and validates a checkpoint file.
func decodeCheckpoint(data []byte) (checkpoint, error) {
	var ck checkpoint
	if len(data) < len(ckptMagic)+4 {
		return ck, fmt.Errorf("%w: short checkpoint", ErrCorrupt)
	}
	if string(data[:len(ckptMagic)]) != string(ckptMagic) {
		return ck, fmt.Errorf("%w: bad checkpoint magic", ErrCorrupt)
	}
	payload, crcb := data[:len(data)-4], data[len(data)-4:]
	if binary.BigEndian.Uint32(crcb) != crc32.Checksum(payload, castagnoli) {
		return ck, fmt.Errorf("%w: checkpoint CRC", ErrCorrupt)
	}
	rest := payload[len(ckptMagic):]
	vals := make([]uint64, 8)
	for i := range vals {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return ck, fmt.Errorf("%w: checkpoint field %d", ErrCorrupt, i)
		}
		vals[i] = v
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return ck, fmt.Errorf("%w: %d trailing checkpoint bytes", ErrCorrupt, len(rest))
	}
	ck.geo = geometry{
		blockSize:     int(vals[0]),
		chunkBlocks:   int(vals[1]),
		segmentChunks: int(vals[2]),
		userBlocks:    int64(vals[3]),
	}
	ck.w, ck.appendSeq, ck.now, ck.epoch = vals[4], vals[5], vals[6], vals[7]
	return ck, nil
}
