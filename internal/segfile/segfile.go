package segfile

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"adapt/internal/lss"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// SyncMode selects the fsync discipline.
type SyncMode int

const (
	// SyncAlways fsyncs after every appended chunk: an acknowledged
	// chunk is durable the moment AppendChunk returns. This is the mode
	// with the zero-lost-acks guarantee and the one the crash sweep
	// proves exact.
	SyncAlways SyncMode = iota
	// SyncOnSeal defers data fsyncs to durability boundaries — segment
	// seal, segment free (which first syncs every dirty file so a GC
	// victim is never destroyed before its migrated blocks persist),
	// and checkpoint. Open-segment tails may be lost in a crash;
	// recovery still converges to a consistent prefix.
	SyncOnSeal
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncOnSeal:
		return "seal"
	default:
		return fmt.Sprintf("sync(%d)", int(m))
	}
}

// ParseSyncMode parses a -durable-sync flag value.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "seal":
		return SyncOnSeal, nil
	default:
		return 0, fmt.Errorf("segfile: unknown sync mode %q (want always|seal)", s)
	}
}

// Options configures a file-backed segment store.
type Options struct {
	// Dir is the backing directory (created if absent). Ignored when FS
	// is set.
	Dir string
	// FS overrides the backing filesystem (tests inject MemFS/CrashFS).
	FS FS
	// Sync is the fsync discipline; the zero value is SyncAlways.
	Sync SyncMode
	// ODirect requests O_DIRECT appends on the real filesystem;
	// silently degraded to buffered I/O when the host does not support
	// it (see Store.ODirectActive and Probe).
	ODirect bool
	// CheckpointEverySeals writes a clock-floor checkpoint every N
	// segment seals (in addition to explicit Checkpoint calls). Zero
	// means 16; negative disables cadence checkpoints.
	CheckpointEverySeals int
	// Geometry, when non-zero, stamps the store-geometry fingerprint
	// into checkpoints so recovery can reject a mismatched
	// configuration before replaying. Pass Config.GeometryDefaults().
	Geometry lss.Config
	// Telemetry registers the lss_durable_* instruments on the set.
	Telemetry *telemetry.Set
	// Sharded/Shard label the instruments with {shard="id"}, exactly as
	// lss.Deps does for the store's own metrics.
	Sharded bool
	Shard   int
}

// fileState is the live append state of one segment file.
type fileState struct {
	f      File
	off    int64
	chunks int
	sealed bool
	dirty  bool
	direct bool
}

// Store is the file-backed segment store. It implements lss.DurableLog
// and is driven synchronously by a single lss.Store, so it needs no
// locking of its own (the counters are atomic only because telemetry
// scrapes read them concurrently).
type Store struct {
	fs    FS
	opts  Options
	align int // O_DIRECT write alignment for new files; 0 when inactive

	segs  map[int]*fileState
	epoch uint64 // next incarnation epoch

	// Scan results from Open, consumed by Recover.
	images       map[int]*segImage
	ckpt         *checkpoint
	corruptFiles int64

	// Clock floors cached from the latest append, for cadence-driven
	// checkpoints between explicit Checkpoint calls.
	lastW, lastSeq, lastNow uint64
	sealsSinceCkpt          int

	fsyncs          atomic.Int64
	syncedSegments  atomic.Int64
	checkpoints     atomic.Int64
	bytesWritten    atomic.Int64
	recoveredSegs   atomic.Int64
	recoveredBlocks atomic.Int64
	tornRecords     atomic.Int64

	hist    latHist
	regHist *telemetry.Histogram
	buf     []byte // staging buffer for aligned writes
	closed  bool
}

var _ lss.DurableLog = (*Store)(nil)

// Open opens (or creates) the backing directory, scans it for durable
// segment state, and truncates any torn record tails so appends can
// continue. Call Recover next when HasData reports existing state;
// build a fresh store with lss.New(..., Deps{Durable: st}) otherwise.
func Open(opts Options) (*Store, error) {
	if opts.CheckpointEverySeals == 0 {
		opts.CheckpointEverySeals = 16
	}
	st := &Store{
		fs:     opts.FS,
		opts:   opts,
		segs:   make(map[int]*fileState),
		images: make(map[int]*segImage),
		epoch:  1,
	}
	if st.fs == nil {
		if opts.Dir == "" {
			return nil, fmt.Errorf("segfile: Options.Dir or Options.FS required")
		}
		dfs, err := NewDirFS(opts.Dir)
		if err != nil {
			return nil, fmt.Errorf("segfile: open dir: %w", err)
		}
		if opts.ODirect && probeODirect(opts.Dir) {
			st.align = directAlign
		}
		st.fs = dfs
	}
	if err := st.scan(); err != nil {
		return nil, err
	}
	st.attachTelemetry()
	return st, nil
}

// scan reads the directory, parses every segment file and the
// checkpoint, truncates torn tails, and leaves append handles
// positioned at the end of each valid prefix.
func (st *Store) scan() error {
	names, err := st.fs.ReadDir()
	if err != nil {
		return fmt.Errorf("segfile: scan: %w", err)
	}
	for _, name := range names {
		switch {
		case name == ckptName:
			data, err := readAll(st.fs, name)
			if err != nil {
				return fmt.Errorf("segfile: scan: %w", err)
			}
			ck, err := decodeCheckpoint(data)
			if err != nil {
				// A corrupt checkpoint loses only clock floors; the
				// segment files are the mapping authority.
				st.corruptFiles++
				continue
			}
			st.ckpt = &ck
		case name == ckptTmpName:
			// A crash between tmp write and rename; the rename never
			// became durable, so the tmp content is dead weight.
			_ = st.fs.Remove(name)
		default:
			id, ok := parseSegFileName(name)
			if !ok {
				continue
			}
			data, err := readAll(st.fs, name)
			if err != nil {
				return fmt.Errorf("segfile: scan %s: %w", name, err)
			}
			img, perr := parseSegment(data)
			if perr != nil || img.header.segID != id {
				// Unreadable header (or a header claiming another id):
				// nothing durable is recoverable from this file.
				st.corruptFiles++
				_ = st.fs.Remove(name)
				continue
			}
			st.tornRecords.Add(int64(img.torn))
			f, err := st.fs.OpenFile(name, os.O_RDWR, 0o644)
			if err != nil {
				return fmt.Errorf("segfile: scan %s: %w", name, err)
			}
			if int64(len(data)) > img.validLen {
				if err := f.Truncate(img.validLen); err != nil {
					return fmt.Errorf("segfile: truncate %s: %w", name, err)
				}
			}
			st.images[id] = img
			st.segs[id] = &fileState{
				f:      f,
				off:    img.validLen,
				chunks: len(img.chunks),
				sealed: img.sealed,
			}
			if img.header.epoch >= st.epoch {
				st.epoch = img.header.epoch + 1
			}
		}
	}
	if st.ckpt != nil {
		if st.ckpt.epoch >= st.epoch {
			st.epoch = st.ckpt.epoch + 1
		}
		st.lastW = st.ckpt.w
		st.lastSeq = st.ckpt.appendSeq
		st.lastNow = st.ckpt.now
	}
	return nil
}

// HasData reports whether the directory held recoverable state —
// decide between Recover and a fresh lss.New on it.
func (st *Store) HasData() bool { return len(st.images) > 0 || st.ckpt != nil }

// ODirectActive reports whether appends use O_DIRECT.
func (st *Store) ODirectActive() bool { return st.align > 0 }

// Close syncs every dirty segment file and closes all handles. It does
// not checkpoint; lss.Store.Drain checkpoints through the DurableLog
// hook before the engine closes its backend.
func (st *Store) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	var firstErr error
	ids := make([]int, 0, len(st.segs))
	for id := range st.segs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		fs := st.segs[id]
		if fs.f == nil {
			continue
		}
		if fs.dirty {
			if err := st.syncFile(fs); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := fs.f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		fs.f = nil
	}
	return firstErr
}

// syncFile fsyncs one segment file, feeding the latency instruments.
func (st *Store) syncFile(fs *fileState) error {
	start := time.Now()
	if err := fs.f.Sync(); err != nil {
		return err
	}
	d := time.Since(start).Nanoseconds()
	st.fsyncs.Add(1)
	st.hist.observe(d)
	if st.regHist != nil {
		st.regHist.Observe(d)
	}
	fs.dirty = false
	return nil
}

// writeRec appends one framed record (plus alignment filler on direct
// files) at the file's append offset.
func (st *Store) writeRec(fs *fileState, rec []byte) error {
	if fs.direct {
		rec = padRecord(rec, st.align)
		need := len(rec)
		if cap(st.buf) < need {
			st.buf = alignedBuf(need + directAlign)
		}
		buf := st.buf[:need]
		copy(buf, rec)
		rec = buf
	}
	if _, err := fs.f.WriteAt(rec, fs.off); err != nil {
		return err
	}
	fs.off += int64(len(rec))
	fs.dirty = true
	st.bytesWritten.Add(int64(len(rec)))
	return nil
}

// padRecord extends rec with a pad record so its length is a multiple
// of align (pad records are skipped by the parser).
func padRecord(rec []byte, align int) []byte {
	if align <= 0 || len(rec)%align == 0 {
		return rec
	}
	gap := align - len(rec)%align
	if gap < recordOverhead {
		gap += align
	}
	return appendRecord(rec, recPad, make([]byte, gap-recordOverhead))
}

// OpenSegment implements lss.DurableLog: it creates a fresh incarnation
// file for segment id and makes it reachable (header synced, then the
// directory entry synced) before any chunk can be appended into it.
func (st *Store) OpenSegment(id int, group lss.GroupID, born sim.WriteClock) error {
	if old := st.segs[id]; old != nil {
		return fmt.Errorf("segfile: open segment %d: incarnation already present", id)
	}
	dataStart := headerSize
	direct := st.align > 0
	flag := os.O_RDWR | os.O_CREATE | os.O_TRUNC
	if direct {
		dataStart = st.align
		flag |= oDirectFlag
	}
	f, err := st.fs.OpenFile(segFileName(id), flag, 0o644)
	if err != nil {
		return fmt.Errorf("segfile: open segment %d: %w", id, err)
	}
	hdr := encodeHeader(segHeader{
		segID:     id,
		group:     int(group),
		born:      uint64(born),
		epoch:     st.epoch,
		dataStart: dataStart,
	})
	fs := &fileState{f: f, direct: direct}
	st.epoch++
	if err := st.writeRecRaw(fs, hdr); err != nil {
		f.Close()
		return fmt.Errorf("segfile: segment %d header: %w", id, err)
	}
	if err := st.syncFile(fs); err != nil {
		f.Close()
		return fmt.Errorf("segfile: segment %d header sync: %w", id, err)
	}
	if err := st.fs.SyncDir(); err != nil {
		f.Close()
		return fmt.Errorf("segfile: segment %d dir sync: %w", id, err)
	}
	st.segs[id] = fs
	return nil
}

// writeRecRaw writes pre-framed bytes (the header block) at the append
// offset, staging through the aligned buffer on direct files.
func (st *Store) writeRecRaw(fs *fileState, b []byte) error {
	if fs.direct {
		if cap(st.buf) < len(b) {
			st.buf = alignedBuf(len(b) + directAlign)
		}
		buf := st.buf[:len(b)]
		copy(buf, b)
		b = buf
	}
	if _, err := fs.f.WriteAt(b, fs.off); err != nil {
		return err
	}
	fs.off += int64(len(b))
	fs.dirty = true
	st.bytesWritten.Add(int64(len(b)))
	return nil
}

// AppendChunk implements lss.DurableLog.
func (st *Store) AppendChunk(c lss.DurableChunk) error {
	fs := st.segs[c.Segment]
	if fs == nil || fs.f == nil {
		return fmt.Errorf("segfile: append to segment %d with no open incarnation", c.Segment)
	}
	if fs.sealed {
		return fmt.Errorf("segfile: append to sealed segment %d", c.Segment)
	}
	if c.Chunk != fs.chunks {
		return fmt.Errorf("segfile: segment %d chunk %d out of order (have %d)", c.Segment, c.Chunk, fs.chunks)
	}
	rec := appendRecord(nil, recChunk, encodeChunkBody(c.Chunk, uint64(c.W), uint64(c.Now), c.LBAs, c.Vers))
	if err := st.writeRec(fs, rec); err != nil {
		return fmt.Errorf("segfile: segment %d chunk %d: %w", c.Segment, c.Chunk, err)
	}
	fs.chunks++
	st.lastW = uint64(c.W)
	st.lastNow = uint64(c.Now)
	for _, v := range c.Vers {
		if uint64(v) > st.lastSeq {
			st.lastSeq = uint64(v)
		}
	}
	if st.opts.Sync == SyncAlways {
		if err := st.syncFile(fs); err != nil {
			return fmt.Errorf("segfile: segment %d chunk %d sync: %w", c.Segment, c.Chunk, err)
		}
	}
	return nil
}

// SealSegment implements lss.DurableLog with write-ahead discipline:
// the chunk data is synced before the seal record is written, and the
// seal record itself is synced before the call returns, in every sync
// mode.
func (st *Store) SealSegment(id int, sealedW sim.WriteClock) error {
	fs := st.segs[id]
	if fs == nil || fs.f == nil {
		return fmt.Errorf("segfile: seal segment %d with no open incarnation", id)
	}
	if fs.sealed {
		return fmt.Errorf("segfile: segment %d already sealed", id)
	}
	if fs.dirty {
		if err := st.syncFile(fs); err != nil {
			return fmt.Errorf("segfile: segment %d pre-seal data sync: %w", id, err)
		}
	}
	var body [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(body[:], uint64(sealedW))
	rec := appendRecord(nil, recSeal, body[:n])
	if err := st.writeRec(fs, rec); err != nil {
		return fmt.Errorf("segfile: segment %d seal: %w", id, err)
	}
	if err := st.syncFile(fs); err != nil {
		return fmt.Errorf("segfile: segment %d seal sync: %w", id, err)
	}
	if err := fs.f.Close(); err != nil {
		return fmt.Errorf("segfile: segment %d close: %w", id, err)
	}
	fs.f = nil
	fs.sealed = true
	st.syncedSegments.Add(1)
	if st.opts.CheckpointEverySeals > 0 {
		st.sealsSinceCkpt++
		if st.sealsSinceCkpt >= st.opts.CheckpointEverySeals {
			if err := st.writeCheckpoint(); err != nil {
				return fmt.Errorf("segfile: cadence checkpoint: %w", err)
			}
		}
	}
	return nil
}

// FreeSegment implements lss.DurableLog. Before the victim's file is
// unlinked, every dirty segment file is synced: GC migrated the
// victim's live blocks into other segments' chunks, and those appends
// must be durable before the only prior copy is destroyed (a no-op
// under SyncAlways, where appends sync as they happen).
func (st *Store) FreeSegment(id int) error {
	victim := st.segs[id]
	if victim == nil {
		return fmt.Errorf("segfile: free segment %d with no incarnation", id)
	}
	for oid, fs := range st.segs {
		if fs.dirty && fs.f != nil {
			if err := st.syncFile(fs); err != nil {
				return fmt.Errorf("segfile: pre-free sync of segment %d: %w", oid, err)
			}
		}
	}
	if victim.f != nil {
		if err := victim.f.Close(); err != nil {
			return fmt.Errorf("segfile: free segment %d close: %w", id, err)
		}
		victim.f = nil
	}
	if err := st.fs.Remove(segFileName(id)); err != nil {
		return fmt.Errorf("segfile: free segment %d: %w", id, err)
	}
	if err := st.fs.SyncDir(); err != nil {
		return fmt.Errorf("segfile: free segment %d dir sync: %w", id, err)
	}
	delete(st.segs, id)
	return nil
}

// Checkpoint implements lss.DurableLog.
func (st *Store) Checkpoint(w sim.WriteClock, appendSeq int64, now sim.Time) error {
	st.lastW = uint64(w)
	st.lastSeq = uint64(appendSeq)
	st.lastNow = uint64(now)
	if err := st.writeCheckpoint(); err != nil {
		return fmt.Errorf("segfile: checkpoint: %w", err)
	}
	return nil
}

// writeCheckpoint atomically replaces the checkpoint file: write the
// tmp, sync it, rename over the live name, sync the directory.
func (st *Store) writeCheckpoint() error {
	geo := geometry{
		blockSize:     st.opts.Geometry.BlockSize,
		chunkBlocks:   st.opts.Geometry.ChunkBlocks,
		segmentChunks: st.opts.Geometry.SegmentChunks,
		userBlocks:    st.opts.Geometry.UserBlocks,
	}
	data := encodeCheckpoint(geo, st.lastW, st.lastSeq, st.lastNow, st.epoch)
	f, err := st.fs.OpenFile(ckptTmpName, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		f.Close()
		return err
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	d := time.Since(start).Nanoseconds()
	st.fsyncs.Add(1)
	st.hist.observe(d)
	if st.regHist != nil {
		st.regHist.Observe(d)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := st.fs.Rename(ckptTmpName, ckptName); err != nil {
		return err
	}
	if err := st.fs.SyncDir(); err != nil {
		return err
	}
	st.bytesWritten.Add(int64(len(data)))
	st.checkpoints.Add(1)
	st.sealsSinceCkpt = 0
	return nil
}

// Stats is a snapshot of the durable-backend counters.
type Stats struct {
	SyncedSegments int64
	Fsyncs         int64
	Checkpoints    int64
	BytesWritten   int64
	FsyncP50NS     int64
	FsyncP99NS     int64
	FsyncP999NS    int64

	RecoveredSegments int64
	RecoveredBlocks   int64
	TornRecords       int64
	CorruptFiles      int64
}

// Stats returns a snapshot of the counters. Safe to call concurrently
// with store use.
func (st *Store) Stats() Stats {
	return Stats{
		SyncedSegments:    st.syncedSegments.Load(),
		Fsyncs:            st.fsyncs.Load(),
		Checkpoints:       st.checkpoints.Load(),
		BytesWritten:      st.bytesWritten.Load(),
		FsyncP50NS:        st.hist.quantile(0.5),
		FsyncP99NS:        st.hist.quantile(0.99),
		FsyncP999NS:       st.hist.quantile(0.999),
		RecoveredSegments: st.recoveredSegs.Load(),
		RecoveredBlocks:   st.recoveredBlocks.Load(),
		TornRecords:       st.tornRecords.Load(),
		CorruptFiles:      st.corruptFiles,
	}
}

// metricName decorates a metric name with the shard label, mirroring
// the store's own shard decoration so both register on one set.
func (st *Store) metricName(name string) string {
	if !st.opts.Sharded {
		return name
	}
	return fmt.Sprintf("%s{shard=\"%d\"}", name, st.opts.Shard)
}

// attachTelemetry registers the lss_durable_* instruments.
func (st *Store) attachTelemetry() {
	ts := st.opts.Telemetry
	if ts == nil {
		return
	}
	reg := ts.Registry
	type cum struct {
		name, help string
		cumulative bool
		fn         func() int64
	}
	for _, c := range []cum{
		{telemetry.MetricDurableSyncedSegments, "Segments sealed and fsynced to the durable backend", true, st.syncedSegments.Load},
		{telemetry.MetricDurableFsyncs, "fsync syscalls issued by the durable backend", true, st.fsyncs.Load},
		{telemetry.MetricDurableBytes, "Bytes appended to the durable segment log", true, st.bytesWritten.Load},
		{telemetry.MetricDurableCheckpoints, "Clock-floor checkpoints atomically installed", true, st.checkpoints.Load},
		{telemetry.MetricDurableRecoveredSegments, "Segments rolled forward from disk at recovery", false, st.recoveredSegs.Load},
		{telemetry.MetricDurableRecoveredBlocks, "Blocks rolled forward from disk at recovery", false, st.recoveredBlocks.Load},
		{telemetry.MetricDurableTornRecords, "Torn record tails truncated at recovery", false, st.tornRecords.Load},
	} {
		reg.NewFuncGauge(st.metricName(c.name), c.help, c.cumulative, c.fn)
	}
	st.regHist = reg.NewHistogram(st.metricName(telemetry.MetricDurableFsyncHistogram),
		"fsync latency of the durable backend", fsyncBounds)
}
