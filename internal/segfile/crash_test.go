package segfile_test

import (
	"errors"
	"testing"

	"adapt/internal/checker"
	"adapt/internal/lss"
	"adapt/internal/segfile"
)

// replayToCrash drives the deterministic workload against a CrashFS
// with the given syscall budget and returns the acked-transition
// oracle. Budget < 0 never crashes (the counting run).
func replayToCrash(t *testing.T, cfg lss.Config, budget int) (*segfile.CrashFS, *checker.DurableLedger, bool) {
	t.Helper()
	crash := segfile.NewCrashFS(segfile.NewMemFS(), budget)
	opts := segfile.Options{
		FS:                   crash,
		Sync:                 segfile.SyncAlways,
		Geometry:             cfg.GeometryDefaults(),
		CheckpointEverySeals: 4,
	}
	sf, err := segfile.Open(opts)
	if err != nil {
		// The crash point landed inside Open itself (the directory
		// scan); nothing was ever acked.
		if !errors.Is(err, segfile.ErrCrashed) {
			t.Fatalf("budget %d: open: %v", budget, err)
		}
		return crash, checker.NewDurableLedger(nil), false
	}
	ledger := checker.NewDurableLedger(sf)
	s := lss.New(cfg, newPolicy(t, cfg), lss.Deps{Durable: ledger})
	completed := driveWorkload(t, s, workloadOps)
	if !completed && !errors.Is(s.DurableErr(), segfile.ErrCrashed) {
		t.Fatalf("budget %d: latched %v, want ErrCrashed", budget, s.DurableErr())
	}
	return crash, ledger, completed
}

// recoverImage opens the post-crash durable image and rolls it forward
// into a live store (a fresh store when the image is empty).
func recoverImage(t *testing.T, cfg lss.Config, crash *segfile.CrashFS) *lss.Store {
	t.Helper()
	opts := segfile.Options{
		FS:       crash.Image(),
		Sync:     segfile.SyncAlways,
		Geometry: cfg.GeometryDefaults(),
	}
	sf, err := segfile.Open(opts)
	if err != nil {
		t.Fatalf("post-crash open: %v", err)
	}
	if !sf.HasData() {
		return lss.New(cfg, newPolicy(t, cfg))
	}
	rec, _, err := sf.Recover(cfg, newPolicy(t, cfg))
	if err != nil {
		t.Fatalf("post-crash recover: %v", err)
	}
	return rec
}

// TestCrashPointSweep is the exhaustive crash harness: it counts every
// filesystem syscall the workload issues under the sync-per-append
// discipline, then replays the workload once per syscall boundary,
// killing the filesystem at exactly that call. For every crash point,
// recovery from the durable image must (a) succeed, (b) produce
// exactly the mapping the acked-transition oracle predicts — no lost
// acks, no resurrected frees — and (c) pass the store invariants.
func TestCrashPointSweep(t *testing.T) {
	cfg := smallCfg()

	count, _, completed := replayToCrash(t, cfg, -1)
	if !completed {
		t.Fatal("counting run did not complete")
	}
	n := count.Calls()
	if n < 300 {
		t.Fatalf("workload issued only %d syscalls; harness coverage too thin", n)
	}

	stride := 1
	if testing.Short() {
		stride = 17
	}
	for k := 1; k <= n; k += stride {
		crash, ledger, completed := replayToCrash(t, cfg, k)
		if completed {
			t.Fatalf("budget %d of %d: workload completed without crashing", k, n)
		}
		if !crash.Crashed() {
			t.Fatalf("budget %d: crash point never reached", k)
		}
		rec := recoverImage(t, cfg, crash)
		if err := checker.CompareRecovered(rec, ledger.ExpectedDurable()); err != nil {
			t.Fatalf("crash at syscall %d of %d: %v", k, n, err)
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("crash at syscall %d of %d: recovered invariants: %v", k, n, err)
		}
	}
}

// TestCrashSweepRelaxedSync sweeps crash points under SyncOnSeal,
// where acknowledged appends may legally be lost. The exactness oracle
// does not apply; instead recovery must stay safe: it succeeds, passes
// invariants, and never surfaces data that was not acked or a version
// newer than the acked one (nothing fabricated, nothing resurrected
// past a durable free).
func TestCrashSweepRelaxedSync(t *testing.T) {
	cfg := smallCfg()

	run := func(budget int) (*segfile.CrashFS, *checker.DurableLedger, bool) {
		crash := segfile.NewCrashFS(segfile.NewMemFS(), budget)
		opts := segfile.Options{
			FS:                   crash,
			Sync:                 segfile.SyncOnSeal,
			Geometry:             cfg.GeometryDefaults(),
			CheckpointEverySeals: 4,
		}
		sf, err := segfile.Open(opts)
		if err != nil {
			if !errors.Is(err, segfile.ErrCrashed) {
				t.Fatalf("budget %d: open: %v", budget, err)
			}
			return crash, checker.NewDurableLedger(nil), false
		}
		ledger := checker.NewDurableLedger(sf)
		s := lss.New(cfg, newPolicy(t, cfg), lss.Deps{Durable: ledger})
		return crash, ledger, driveWorkload(t, s, workloadOps)
	}

	count, _, completed := run(-1)
	if !completed {
		t.Fatal("counting run did not complete")
	}
	n := count.Calls()
	stride := 7
	if testing.Short() {
		stride = 41
	}
	for k := 1; k <= n; k += stride {
		crash, ledger, _ := run(k)
		rec := recoverImage(t, cfg, crash)
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("crash at syscall %d of %d: recovered invariants: %v", k, n, err)
		}
		acked := ledger.ExpectedDurable()
		for lba, loc := range checker.ExpectedRecovery(rec) {
			best, ok := acked[lba]
			if !ok {
				t.Fatalf("crash at syscall %d: recovered lba %d that was never acked", k, lba)
			}
			if loc.Version > best.Version {
				t.Fatalf("crash at syscall %d: recovered lba %d version %d beyond acked %d",
					k, lba, loc.Version, best.Version)
			}
		}
	}
}
