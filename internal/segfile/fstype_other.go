//go:build !linux

package segfile

func fsTypeName(dir string) string { return "unknown" }
