package segfile_test

import (
	"errors"
	"testing"

	"adapt/internal/checker"
	"adapt/internal/lss"
	"adapt/internal/placement"
	"adapt/internal/segfile"
	"adapt/internal/sim"
	"adapt/internal/telemetry"
)

// smallCfg is the crash-harness geometry: 32-byte blocks and 16-block
// segments keep a full syscall-boundary sweep (hundreds of replays of
// the whole workload) in test time while still forcing seals, GC
// reclaims, and cadence checkpoints.
func smallCfg() lss.Config {
	return lss.Config{
		BlockSize:     32,
		ChunkBlocks:   4,
		SegmentChunks: 4,
		UserBlocks:    256,
		OverProvision: 0.25,
	}
}

func newPolicy(t testing.TB, cfg lss.Config) lss.Policy {
	t.Helper()
	pol, err := placement.New(placement.NameSepGC, placement.Params{
		UserBlocks:    cfg.UserBlocks,
		SegmentBlocks: cfg.SegmentBlocks(),
		ChunkBlocks:   cfg.ChunkBlocks,
	})
	if err != nil {
		t.Fatalf("placement.New: %v", err)
	}
	return pol
}

// driveWorkload runs the deterministic crash-harness workload: an
// initial fill, hot overwrites that force GC, periodic trims, and
// periodic drains (which flush-pad every group and checkpoint). It
// stops at the first latched durable error and reports whether the
// workload ran to completion.
func driveWorkload(t testing.TB, s *lss.Store, ops int) bool {
	t.Helper()
	cfg := s.Config()
	rng := sim.NewRNG(42)
	now := sim.Time(0)
	for op := 0; op < ops; op++ {
		if s.DurableErr() != nil {
			return false
		}
		now += 10 * sim.Microsecond
		var err error
		switch {
		case op%149 == 148:
			s.Drain(now)
		case op%97 == 96:
			err = s.Trim(rng.Int63n(cfg.UserBlocks-8), 8, now)
		default:
			lba := rng.Int63n(cfg.UserBlocks)
			if op%2 == 0 {
				lba = rng.Int63n(cfg.UserBlocks / 8) // hot eighth: churn for GC
			}
			err = s.WriteBlock(lba, now)
		}
		if err != nil {
			if errors.Is(err, segfile.ErrCrashed) {
				return false
			}
			t.Fatalf("op %d: %v", op, err)
		}
	}
	if s.DurableErr() == nil {
		s.Drain(now + sim.Second)
	}
	return s.DurableErr() == nil
}

const workloadOps = 900

// TestRoundTrip drives a workload against a MemFS-backed store through
// a clean shutdown, recovers twice (with appends in between, so the
// second recovery replays chunks appended onto rolled-forward files),
// and requires the recovered mapping to equal the in-memory oracle
// each time.
func TestRoundTrip(t *testing.T) {
	cfg := smallCfg()
	mem := segfile.NewMemFS()
	opts := segfile.Options{
		FS:                   mem,
		Sync:                 segfile.SyncAlways,
		Geometry:             cfg.GeometryDefaults(),
		CheckpointEverySeals: 4,
	}

	sf, err := segfile.Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if sf.HasData() {
		t.Fatal("fresh MemFS claims recoverable data")
	}
	s := lss.New(cfg, newPolicy(t, cfg), lss.Deps{Durable: sf})
	if !driveWorkload(t, s, workloadOps) {
		t.Fatalf("workload did not complete: %v", s.DurableErr())
	}
	if s.Metrics().SegmentsReclaimed == 0 {
		t.Fatal("workload too light: GC never reclaimed a segment")
	}
	want := checker.ExpectedRecovery(s)
	if err := sf.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if st := sf.Stats(); st.Fsyncs == 0 || st.SyncedSegments == 0 || st.Checkpoints == 0 {
		t.Fatalf("stats did not move: %+v", st)
	}

	sf2, err := segfile.Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !sf2.HasData() {
		t.Fatal("reopen found no data")
	}
	rec, stats, err := sf2.Recover(cfg, newPolicy(t, cfg), lss.Deps{Durable: sf2})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := checker.CompareRecovered(rec, want); err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatalf("first recovery invariants: %v", err)
	}
	if stats.Segments == 0 || stats.Blocks == 0 || !stats.CheckpointLoaded {
		t.Fatalf("implausible recovery stats: %+v", stats)
	}
	if stats.TornRecords != 0 || stats.CorruptFiles != 0 {
		t.Fatalf("clean shutdown reported damage: %+v", stats)
	}

	// Keep writing through the recovered store: appends continue onto
	// recovered open-segment files and new incarnations alike.
	if !driveWorkload(t, rec, workloadOps/2) {
		t.Fatalf("post-recovery workload: %v", rec.DurableErr())
	}
	want2 := checker.ExpectedRecovery(rec)
	if err := sf2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}

	sf3, err := segfile.Open(opts)
	if err != nil {
		t.Fatalf("open 3: %v", err)
	}
	rec2, _, err := sf3.Recover(cfg, newPolicy(t, cfg))
	if err != nil {
		t.Fatalf("recover 2: %v", err)
	}
	if err := checker.CompareRecovered(rec2, want2); err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if err := rec2.CheckInvariants(); err != nil {
		t.Fatalf("second recovery invariants: %v", err)
	}
}

// TestRoundTripDirFS runs the round trip against the real filesystem
// (and requests O_DIRECT, accepting silent degradation where the host
// does not support it), proving DirFS and MemFS share semantics.
func TestRoundTripDirFS(t *testing.T) {
	cfg := smallCfg()
	opts := segfile.Options{
		Dir:      t.TempDir(),
		Sync:     segfile.SyncOnSeal,
		ODirect:  true,
		Geometry: cfg.GeometryDefaults(),
	}
	sf, err := segfile.Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Logf("o_direct active: %v", sf.ODirectActive())
	s := lss.New(cfg, newPolicy(t, cfg), lss.Deps{Durable: sf})
	if !driveWorkload(t, s, workloadOps) {
		t.Fatalf("workload: %v", s.DurableErr())
	}
	want := checker.ExpectedRecovery(s)
	if err := sf.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	sf2, err := segfile.Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	rec, _, err := sf2.Recover(cfg, newPolicy(t, cfg))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := checker.CompareRecovered(rec, want); err != nil {
		t.Fatal(err)
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLedgerMatchesExpectedRecovery pins the crash oracle to the
// in-memory one: after a fully drained (all chunks flushed) workload,
// the DurableLedger's acked-transition prediction and ExpectedRecovery
// over the live store must be the same mapping, entry for entry.
func TestLedgerMatchesExpectedRecovery(t *testing.T) {
	cfg := smallCfg()
	ledger := checker.NewDurableLedger(nil)
	s := lss.New(cfg, newPolicy(t, cfg), lss.Deps{Durable: ledger})
	if !driveWorkload(t, s, workloadOps) {
		t.Fatalf("workload: %v", s.DurableErr())
	}
	want := checker.ExpectedRecovery(s)
	got := ledger.ExpectedDurable()
	if len(got) != len(want) {
		t.Fatalf("ledger has %d mapped LBAs, store oracle %d", len(got), len(want))
	}
	for lba, w := range want {
		g, ok := got[lba]
		if !ok || g != w {
			t.Fatalf("lba %d: ledger %+v (present=%v), store oracle %+v", lba, g, ok, w)
		}
	}
}

// TestTelemetryRegistered checks the lss_durable_* instruments land on
// a telemetry registry, including the fsync-latency histogram.
func TestTelemetryRegistered(t *testing.T) {
	cfg := smallCfg()
	reg := telemetry.NewRegistry()
	sf, err := segfile.Open(segfile.Options{
		FS:        segfile.NewMemFS(),
		Geometry:  cfg.GeometryDefaults(),
		Telemetry: &telemetry.Set{Registry: reg},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	s := lss.New(cfg, newPolicy(t, cfg), lss.Deps{Durable: sf})
	if !driveWorkload(t, s, workloadOps/3) {
		t.Fatalf("workload: %v", s.DurableErr())
	}
	found := make(map[string]bool)
	for _, name := range reg.Names() {
		found[name] = true
	}
	for _, name := range []string{
		telemetry.MetricDurableSyncedSegments,
		telemetry.MetricDurableFsyncs,
		telemetry.MetricDurableBytes,
		telemetry.MetricDurableCheckpoints,
		telemetry.MetricDurableFsyncHistogram,
	} {
		if !found[name] {
			t.Errorf("metric %s not registered", name)
		}
	}
}
