//go:build linux

package segfile

import (
	"os"
	"syscall"
	"unsafe"
)

// oDirectFlag is OR-ed into OpenFile flags for direct appends.
const oDirectFlag = syscall.O_DIRECT

// directAlign is the buffer/offset/length alignment O_DIRECT writes
// must honor. 512 covers every current block device; records are
// padded to it with pad records.
const directAlign = 512

// alignedBuf returns a directAlign-aligned slice of length n.
func alignedBuf(n int) []byte {
	b := make([]byte, n+directAlign)
	shift := int(uintptr(unsafe.Pointer(&b[0])) & (directAlign - 1))
	if shift != 0 {
		shift = directAlign - shift
	}
	return b[shift : shift+n : shift+n]
}

// probeODirect reports whether dir's filesystem accepts an O_DIRECT
// write of one aligned sector (tmpfs and some overlays do not).
func probeODirect(dir string) bool {
	f, err := os.OpenFile(dir+"/.odirect-probe", os.O_RDWR|os.O_CREATE|os.O_TRUNC|syscall.O_DIRECT, 0o600)
	if err != nil {
		return false
	}
	defer os.Remove(dir + "/.odirect-probe")
	defer f.Close()
	buf := alignedBuf(directAlign)
	_, err = f.WriteAt(buf, 0)
	return err == nil
}
