package segfile

import "sync/atomic"

// fsyncBounds are the fsync-latency histogram bucket upper bounds in
// nanoseconds: 10 µs .. 1 s in decades, bracketing both tmpfs (~µs)
// and spinning storage (~ms).
var fsyncBounds = []int64{
	10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000,
}

// latHist is a tiny lock-free latency histogram over fsyncBounds. The
// store keeps one unconditionally so Stats can report quantiles even
// when no telemetry set is attached; it mirrors the quantile
// estimation of telemetry.Histogram (bucket upper bound, max for the
// overflow bucket).
type latHist struct {
	counts [7]atomic.Int64 // len(fsyncBounds)+1
	max    atomic.Int64
}

func (h *latHist) observe(v int64) {
	i := 0
	for i < len(fsyncBounds) && v > fsyncBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

func (h *latHist) quantile(q float64) int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			if i < len(fsyncBounds) {
				return fsyncBounds[i]
			}
			return h.max.Load()
		}
	}
	return h.max.Load()
}
