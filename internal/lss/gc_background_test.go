package lss

import (
	"testing"

	"adapt/internal/sim"
)

func backgroundConfig() Config {
	cfg := smallConfig()
	cfg.BackgroundGC = true
	return cfg
}

// runSliced replays a fixed workload with background GC settled after
// every write in slices of the given budget, and returns the victim
// sequence plus the final state.
func runSliced(t *testing.T, budget int) ([]int, *Metrics, map[int64]bool) {
	t.Helper()
	cfg := backgroundConfig()
	var victims []int
	s := New(cfg, twoGroup{}, Deps{ReclaimObserver: func(id int) { victims = append(victims, id) }})
	rng := sim.NewRNG(4242)
	now := sim.Time(0)
	for i := 0; i < 20000; i++ {
		now += 10 * sim.Microsecond
		if err := s.WriteBlock(rng.Int63n(cfg.UserBlocks), now); err != nil {
			t.Fatal(err)
		}
		for !s.GCStep(budget) {
		}
	}
	s.Drain(now + sim.Second)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("budget %d: %v", budget, err)
	}
	return victims, s.Metrics(), mappingSnapshot(s)
}

// TestBackgroundGCSliceEquivalence is the metamorphic preemption test:
// a GC cycle driven to completion in budget-sized slices — yielding at
// every chunk boundary for budget 1 — must produce exactly the victim
// sequence, traffic accounting, and live mapping of the unpreempted
// run, because preemption points only pause the state machine, never
// change what it does.
func TestBackgroundGCSliceEquivalence(t *testing.T) {
	wantVictims, wantM, wantSnap := runSliced(t, 1<<30) // unpreempted
	if wantM.GCCycles == 0 || wantM.SegmentsReclaimed == 0 {
		t.Fatal("workload did not trigger GC; test is vacuous")
	}
	for _, budget := range []int{1, 2, 3, 7, 16} {
		victims, m, snap := runSliced(t, budget)
		if len(victims) != len(wantVictims) {
			t.Fatalf("budget %d: %d victims, want %d", budget, len(victims), len(wantVictims))
		}
		for i := range victims {
			if victims[i] != wantVictims[i] {
				t.Fatalf("budget %d: victim[%d] = %d, want %d", budget, i, victims[i], wantVictims[i])
			}
		}
		if m.UserBlocks != wantM.UserBlocks || m.GCBlocks != wantM.GCBlocks ||
			m.PaddingBlocks != wantM.PaddingBlocks || m.SegmentsReclaimed != wantM.SegmentsReclaimed ||
			m.GCCycles != wantM.GCCycles || m.GCScannedBlocks != wantM.GCScannedBlocks {
			t.Fatalf("budget %d: metrics diverge: %+v vs %+v", budget, m, wantM)
		}
		if len(snap) != len(wantSnap) {
			t.Fatalf("budget %d: live set %d blocks, want %d", budget, len(snap), len(wantSnap))
		}
		for lba := range wantSnap {
			if !snap[lba] {
				t.Fatalf("budget %d: lba %d missing from live set", budget, lba)
			}
		}
	}
}

// TestBackgroundGCInterleavedWrites pauses cycles across user writes —
// one small slice per op, never settling — so segments written after a
// cycle began interleave with its relocations. Equivalence no longer
// holds (victim choice legitimately depends on when selection runs),
// but every structural invariant must.
func TestBackgroundGCInterleavedWrites(t *testing.T) {
	cfg := backgroundConfig()
	s := New(cfg, twoGroup{})
	rng := sim.NewRNG(99)
	now := sim.Time(0)
	for i := 0; i < 30000; i++ {
		now += 10 * sim.Microsecond
		if err := s.WriteBlock(rng.Int63n(cfg.UserBlocks), now); err != nil {
			t.Fatal(err)
		}
		s.GCStep(4)
		if i%5000 == 4999 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	for !s.GCStep(1 << 30) {
	}
	s.Drain(now + sim.Second)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.GCSlices == 0 {
		t.Fatal("no paced GC slices ran")
	}
	if m.GCCycles == 0 || m.SegmentsReclaimed == 0 {
		t.Fatal("background GC reclaimed nothing")
	}
}

// TestBackgroundGCDegradedToggleMidCycle reproduces the degraded-mode
// race the state machine closes: flipping Runtime.Degraded while a
// cycle is paused mid-victim must not corrupt the cycle — the new mode
// is latched at the next victim-batch boundary, and the cycle still
// runs to completion with invariants intact.
func TestBackgroundGCDegradedToggleMidCycle(t *testing.T) {
	cfg := backgroundConfig()
	s := New(cfg, twoGroup{})
	rng := sim.NewRNG(7)
	now := sim.Time(0)
	degraded := false
	for i := 0; i < 30000; i++ {
		now += 10 * sim.Microsecond
		if err := s.WriteBlock(rng.Int63n(cfg.UserBlocks), now); err != nil {
			t.Fatal(err)
		}
		s.GCStep(1) // smallest slices: maximal exposure mid-victim
		if i%97 == 0 {
			degraded = !degraded
			s.Reconfigure(func(r *Runtime) { r.Degraded = degraded })
		}
	}
	s.Reconfigure(func(r *Runtime) { r.Degraded = false })
	for !s.GCStep(1 << 30) {
	}
	s.Drain(now + sim.Second)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.GCCycles == 0 {
		t.Fatal("no GC cycles ran")
	}
	if m.ThrottledGCCycles == 0 {
		t.Fatal("no cycle started degraded despite the toggles")
	}
}

// TestBackgroundGCEmergencyFloor starves the pacer entirely: with
// BackgroundGC set and nobody calling GCStep, allocation must fall
// back to synchronous collection at the emergency floor rather than
// exhaust the free pool.
func TestBackgroundGCEmergencyFloor(t *testing.T) {
	cfg := backgroundConfig()
	s := New(cfg, twoGroup{})
	rng := sim.NewRNG(3)
	now := sim.Time(0)
	for i := 0; i < 30000; i++ {
		now += 10 * sim.Microsecond
		if err := s.WriteBlock(rng.Int63n(cfg.UserBlocks), now); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain(now + sim.Second)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.GCEmergencyRuns == 0 {
		t.Fatal("starved pacer never hit the emergency fallback")
	}
	if m.SegmentsReclaimed == 0 {
		t.Fatal("emergency GC reclaimed nothing")
	}
}

// TestBackgroundGCUrgencySignal pins the controller-facing signals:
// urgency is 0 at or above the high watermark, 1 at the low one,
// monotonically increasing as the free pool drains between them — and
// a background store reports GCNeeded while urgency is still below 1,
// so the pacer starts trickling before the pool reaches the urgent
// zone instead of racing the writers from there to the floor.
func TestBackgroundGCUrgencySignal(t *testing.T) {
	cfg := backgroundConfig()
	s := New(cfg, twoGroup{})
	if got := s.GCUrgency(); got != 0 {
		t.Fatalf("fresh store urgency = %v, want 0", got)
	}
	if s.GCNeeded() {
		t.Fatal("fresh store reports GC needed")
	}
	rng := sim.NewRNG(5)
	now := sim.Time(0)
	prev := 0.0
	firstNeeded := -1.0
	for s.GCUrgency() < 1 {
		now += 10 * sim.Microsecond
		if err := s.WriteBlock(rng.Int63n(cfg.UserBlocks), now); err != nil {
			t.Fatal(err)
		}
		u := s.GCUrgency()
		if u < prev-1e-9 {
			t.Fatalf("urgency fell from %v to %v while the pool drained", prev, u)
		}
		prev = u
		if firstNeeded < 0 && s.GCNeeded() {
			firstNeeded = u
		}
	}
	if firstNeeded < 0 {
		t.Fatal("GCNeeded never fired while the pool drained to the low watermark")
	}
	if firstNeeded >= 1 {
		t.Fatalf("background GC first due at urgency %v; want an early start below 1", firstNeeded)
	}
}
