package lss

import (
	"testing"

	"adapt/internal/sim"
)

// twoGroup is a minimal SepGC-style policy: user writes to group 0, GC
// rewrites to group 1.
type twoGroup struct{}

func (twoGroup) Name() string { return "test-sepgc" }
func (twoGroup) Groups() int  { return 2 }
func (twoGroup) PlaceUser(int64, sim.Time, sim.WriteClock) GroupID {
	return 0
}
func (twoGroup) PlaceGC(int64, GroupID, sim.WriteClock, sim.WriteClock, sim.WriteClock) GroupID {
	return 1
}

func smallConfig() Config {
	return Config{
		UserBlocks:    4096,
		ChunkBlocks:   4,
		SegmentChunks: 8, // 32-block segments
		OverProvision: 0.25,
	}
}

func TestWriteAndMapping(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	if err := s.WriteBlock(5, 0); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().UserBlocks; got != 1 {
		t.Fatalf("UserBlocks = %d, want 1", got)
	}
	if got := s.LiveBlocks(); got != 1 {
		t.Fatalf("LiveBlocks = %d, want 1", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBadLBARejected(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	if err := s.WriteBlock(-1, 0); err == nil {
		t.Fatal("negative LBA accepted")
	}
	if err := s.WriteBlock(1<<40, 0); err == nil {
		t.Fatal("oversized LBA accepted")
	}
}

func TestOverwriteKeepsOneValidCopy(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	for i := 0; i < 100; i++ {
		if err := s.WriteBlock(7, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.LiveBlocks(); got != 1 {
		t.Fatalf("LiveBlocks after overwrites = %d, want 1", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDenseWritesNoPadding: back-to-back writes (same timestamp) never
// wait, so no padding should occur.
func TestDenseWritesNoPadding(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	for i := int64(0); i < 1024; i++ {
		if err := s.WriteBlock(i%1000, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Metrics().PaddingBlocks; got != 0 {
		t.Fatalf("PaddingBlocks = %d, want 0 for dense traffic", got)
	}
}

// TestSparseWritesPad: arrivals spaced beyond the SLA window must pad
// every chunk.
func TestSparseWritesPad(t *testing.T) {
	cfg := smallConfig()
	cfg.SLAWindow = 100 * sim.Microsecond
	s := New(cfg, twoGroup{})
	gap := 200 * sim.Microsecond
	for i := int64(0); i < 64; i++ {
		if err := s.WriteBlock(i, sim.Time(i)*gap); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain(s.Now() + sim.Second)
	m := s.Metrics()
	// Each block should have been flushed in its own chunk with
	// ChunkBlocks-1 padding blocks.
	wantPad := int64(64 * (cfg.ChunkBlocks - 1))
	if m.PaddingBlocks != wantPad {
		t.Fatalf("PaddingBlocks = %d, want %d", m.PaddingBlocks, wantPad)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSLABoundary: a block arriving exactly at the window edge flushes;
// one arriving within the window coalesces.
func TestSLABoundary(t *testing.T) {
	cfg := smallConfig()
	cfg.SLAWindow = 100 * sim.Microsecond
	s := New(cfg, twoGroup{})
	s.WriteBlock(0, 0)
	// 50µs later: still within window, same chunk.
	s.WriteBlock(1, 50*sim.Microsecond)
	if got := s.Metrics().PaddingBlocks; got != 0 {
		t.Fatalf("padding before deadline: %d", got)
	}
	// 200µs: past deadline, the pending chunk must pad (2 data + 2 pad).
	s.WriteBlock(2, 200*sim.Microsecond)
	if got := s.Metrics().PaddingBlocks; got != 2 {
		t.Fatalf("PaddingBlocks = %d, want 2", got)
	}
}

func TestGCReclaimsAndPreservesData(t *testing.T) {
	cfg := smallConfig()
	s := New(cfg, twoGroup{})
	// Fill the LBA space, then overwrite random blocks so that victim
	// segments are partially valid and GC must migrate.
	for i := int64(0); i < cfg.UserBlocks; i++ {
		if err := s.WriteBlock(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	rng := sim.NewRNG(4)
	for i := 0; i < int(cfg.UserBlocks)*6; i++ {
		if err := s.WriteBlock(rng.Int63n(cfg.UserBlocks), 0); err != nil {
			t.Fatal(err)
		}
	}
	m := s.Metrics()
	if m.SegmentsReclaimed == 0 {
		t.Fatal("GC never ran despite 6× overwrite")
	}
	if m.GCBlocks == 0 {
		t.Fatal("GC reclaimed segments but migrated no blocks")
	}
	if got := s.LiveBlocks(); got != cfg.UserBlocks {
		t.Fatalf("LiveBlocks = %d, want %d (no data lost)", got, cfg.UserBlocks)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// SepGC separation: GC blocks must land in group 1 only.
	if m.PerGroup[0].GCBlocks != 0 {
		t.Fatalf("GC blocks leaked into user group: %d", m.PerGroup[0].GCBlocks)
	}
	if m.PerGroup[1].UserBlocks != 0 {
		t.Fatalf("user blocks leaked into GC group: %d", m.PerGroup[1].UserBlocks)
	}
}

func TestWAImprovesWithSkew(t *testing.T) {
	// A highly skewed overwrite pattern should yield lower WA than a
	// uniform one under the same policy, because hot segments
	// accumulate garbage faster.
	run := func(skewed bool) float64 {
		cfg := smallConfig()
		s := New(cfg, twoGroup{})
		rng := sim.NewRNG(1)
		for i := int64(0); i < cfg.UserBlocks; i++ {
			s.WriteBlock(i, 0)
		}
		for i := 0; i < int(cfg.UserBlocks)*6; i++ {
			var lba int64
			if skewed {
				// 90% of writes hit 10% of the space.
				if rng.Float64() < 0.9 {
					lba = rng.Int63n(cfg.UserBlocks / 10)
				} else {
					lba = rng.Int63n(cfg.UserBlocks)
				}
			} else {
				lba = rng.Int63n(cfg.UserBlocks)
			}
			s.WriteBlock(lba, 0)
		}
		return s.Metrics().WA()
	}
	uniform, skew := run(false), run(true)
	if skew >= uniform {
		t.Fatalf("skewed WA %.3f not lower than uniform WA %.3f", skew, uniform)
	}
}

func TestCostBenefitRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.Victim = CostBenefit
	s := New(cfg, twoGroup{})
	for round := 0; round < 5; round++ {
		for i := int64(0); i < cfg.UserBlocks; i++ {
			s.WriteBlock(i, 0)
		}
	}
	if s.Metrics().SegmentsReclaimed == 0 {
		t.Fatal("cost-benefit GC never reclaimed")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDChoicesRuns(t *testing.T) {
	cfg := smallConfig()
	cfg.Victim = DChoices
	s := New(cfg, twoGroup{})
	for round := 0; round < 5; round++ {
		for i := int64(0); i < cfg.UserBlocks; i++ {
			s.WriteBlock(i, 0)
		}
	}
	if s.Metrics().SegmentsReclaimed == 0 {
		t.Fatal("d-choices GC never reclaimed")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainFlushesPending(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	s.WriteBlock(1, 0)
	s.WriteBlock(2, 0)
	flushesBefore := s.Metrics().PerGroup[0].ChunkFlushes
	s.Drain(sim.Second)
	m := s.Metrics()
	if m.PerGroup[0].ChunkFlushes != flushesBefore+1 {
		t.Fatalf("Drain did not flush the pending chunk")
	}
	if m.PaddingBlocks != 2 {
		t.Fatalf("Drain padding = %d, want 2", m.PaddingBlocks)
	}
	// Drain on an already-clean store is a no-op.
	before := m.PaddingBlocks
	s.Drain(2 * sim.Second)
	if m.PaddingBlocks != before {
		t.Fatal("second Drain padded again")
	}
}

func TestMultiBlockWrite(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	if err := s.Write(10, 8, 0); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics().UserBlocks; got != 8 {
		t.Fatalf("UserBlocks = %d, want 8", got)
	}
	if got := s.LiveBlocks(); got != 8 {
		t.Fatalf("LiveBlocks = %d, want 8", got)
	}
}

func TestReadAccounting(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	s.Read(0, 4, 0)
	if got := s.Metrics().ReadBlocks; got != 4 {
		t.Fatalf("ReadBlocks = %d, want 4", got)
	}
}

func TestParityAccounting(t *testing.T) {
	cfg := smallConfig()
	cfg.DataColumns = 3
	s := New(cfg, twoGroup{})
	for i := int64(0); i < 1000; i++ {
		s.WriteBlock(i, 0)
	}
	s.Drain(sim.Second)
	a := s.Array()
	if a.DataChunks() == 0 {
		t.Fatal("no chunks written")
	}
	// One parity chunk per DataColumns data chunks (complete stripes).
	if want := a.DataChunks() / 3; a.ParityChunks() != want {
		t.Fatalf("ParityChunks = %d, want %d", a.ParityChunks(), want)
	}
}

func TestMetricsConsistencyUnderStress(t *testing.T) {
	cfg := smallConfig()
	cfg.SLAWindow = 50 * sim.Microsecond
	s := New(cfg, twoGroup{})
	rng := sim.NewRNG(99)
	now := sim.Time(0)
	for i := 0; i < 40000; i++ {
		now += sim.Time(rng.Int63n(120)) * sim.Microsecond
		lba := rng.Int63n(cfg.UserBlocks)
		if err := s.WriteBlock(lba, now); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain(now + sim.Second)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	// Array payload must equal non-padding block traffic.
	wantPayload := (m.UserBlocks + m.GCBlocks + m.ShadowBlocks) * 4096
	if got := s.Array().PayloadBytes(); got != wantPayload {
		t.Fatalf("array payload %d != block traffic %d", got, wantPayload)
	}
	wantPad := m.PaddingBlocks * 4096
	if got := s.Array().PaddingBytes(); got != wantPad {
		t.Fatalf("array padding %d != padding blocks %d", got, wantPad)
	}
}

func TestWriteClockAdvances(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	for i := int64(0); i < 10; i++ {
		s.WriteBlock(i, 0)
	}
	if got := s.WriteClock(); got != 10 {
		t.Fatalf("WriteClock = %d, want 10", got)
	}
}

func TestNonMonotonicTimestampsClamped(t *testing.T) {
	s := New(smallConfig(), twoGroup{})
	s.WriteBlock(0, 100*sim.Microsecond)
	// An out-of-order timestamp must not move time backwards.
	s.WriteBlock(1, 50*sim.Microsecond)
	if got := s.Now(); got != 100*sim.Microsecond {
		t.Fatalf("Now = %v, want clamp at 100us", got)
	}
}
