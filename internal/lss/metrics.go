package lss

import "fmt"

// GroupMetrics accumulates per-group traffic counters.
type GroupMetrics struct {
	UserBlocks    int64 // user-written blocks appended
	GCBlocks      int64 // GC-rewritten blocks appended
	ShadowBlocks  int64 // shadow copies appended (cross-group aggregation)
	PaddingBlocks int64 // zero-padding block slots written
	PaddingEvents int64 // padded chunk flushes
	ChunkFlushes  int64 // total chunk flushes
	Sealed        int64 // segments sealed in this group (cumulative)
}

// TotalBlocks returns all block slots written into the group.
func (g GroupMetrics) TotalBlocks() int64 {
	return g.UserBlocks + g.GCBlocks + g.ShadowBlocks + g.PaddingBlocks
}

// Metrics accumulates store-wide counters. All counters are in blocks
// unless stated otherwise.
type Metrics struct {
	UserBlocks    int64 // user writes accepted
	GCBlocks      int64 // valid blocks rewritten by GC
	ShadowBlocks  int64 // shadow copies written
	PaddingBlocks int64 // zero-padding blocks written
	ReadBlocks    int64 // user reads (stats only)
	TrimmedBlocks int64 // blocks discarded via Trim

	// Latency tracks user-block persistence latency.
	Latency LatencyStats

	GCCycles          int64 // GC activations
	SegmentsReclaimed int64
	// ThrottledGCCycles counts GC activations that ran in degraded
	// mode (array column failed, rebuild behind its watermark), where
	// the cycle reclaims only to just above the low watermark.
	ThrottledGCCycles int64
	// GCScannedBlocks measures victim-selection work. On the default
	// incremental-index path it counts index probes (bucket-heap and
	// seal-ring entries examined, plus sampling draws); under
	// Config.LegacyVictimScan it keeps the old meaning of candidates
	// considered by the full scan. Comparable as "selection effort"
	// either way, but not across the two paths.
	GCScannedBlocks int64
	// GCSlices counts externally paced GC executions (GCStep calls that
	// did work); a synchronous cycle is one activation and zero slices.
	GCSlices int64
	// GCEmergencyRuns counts allocations under Config.BackgroundGC that
	// hit the emergency floor and ran a synchronous cycle inline — the
	// pacer fell behind.
	GCEmergencyRuns int64

	PerGroup []GroupMetrics
}

// WA is the write amplification factor the paper reports in Figure 8:
// (user + GC-rewritten blocks) / user blocks.
func (m *Metrics) WA() float64 {
	if m.UserBlocks == 0 {
		return 1
	}
	return float64(m.UserBlocks+m.GCBlocks) / float64(m.UserBlocks)
}

// EffectiveWA additionally charges padding and shadow traffic:
// all block writes hitting the array / user blocks.
func (m *Metrics) EffectiveWA() float64 {
	if m.UserBlocks == 0 {
		return 1
	}
	total := m.UserBlocks + m.GCBlocks + m.ShadowBlocks + m.PaddingBlocks
	return float64(total) / float64(m.UserBlocks)
}

// PaddingRatio is the fraction of array block traffic that is zero
// padding — the padding traffic ratio of Figure 9.
func (m *Metrics) PaddingRatio() float64 {
	total := m.UserBlocks + m.GCBlocks + m.ShadowBlocks + m.PaddingBlocks
	if total == 0 {
		return 0
	}
	return float64(m.PaddingBlocks) / float64(total)
}

// TotalBlocks returns all block writes issued to the array.
func (m *Metrics) TotalBlocks() int64 {
	return m.UserBlocks + m.GCBlocks + m.ShadowBlocks + m.PaddingBlocks
}

// String renders a one-line summary covering the full traffic mix,
// the derived ratios, GC activity, and persistence latency.
func (m *Metrics) String() string {
	return fmt.Sprintf("user=%d gc=%d shadow=%d pad=%d read=%d trim=%d "+
		"WA=%.3f effWA=%.3f padRatio=%.3f gcCycles=%d throttled=%d reclaimed=%d scanned=%d "+
		"latMean=%v latP99=%v latMax=%v slaViolations=%d",
		m.UserBlocks, m.GCBlocks, m.ShadowBlocks, m.PaddingBlocks,
		m.ReadBlocks, m.TrimmedBlocks,
		m.WA(), m.EffectiveWA(), m.PaddingRatio(),
		m.GCCycles, m.ThrottledGCCycles, m.SegmentsReclaimed, m.GCScannedBlocks,
		m.Latency.Mean(), m.Latency.Quantile(0.99), m.Latency.Max, m.Latency.Violations)
}
