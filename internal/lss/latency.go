package lss

import (
	"fmt"
	"math"

	"adapt/internal/sim"
)

// LatencyStats tracks user-block persistence latency: the time between
// a block's arrival and the moment its data is durable on the array
// (its chunk flushes, or a shadow copy persists it). The SLA window is
// an upper bound by construction; the distribution below it shows how
// long writes actually sit in open chunks under each policy.
type LatencyStats struct {
	Count      int64
	Sum        sim.Time
	Max        sim.Time
	Violations int64 // latency beyond the SLA window (Drain leftovers)
	// Buckets[i] counts latencies in [2^(i-1), 2^i) microseconds,
	// with Buckets[0] covering [0, 1 µs).
	Buckets [20]int64
}

func (l *LatencyStats) record(d, window sim.Time) {
	if d < 0 {
		d = 0
	}
	l.Count++
	l.Sum += d
	if d > l.Max {
		l.Max = d
	}
	if d > window {
		l.Violations++
	}
	us := float64(d) / float64(sim.Microsecond)
	idx := 0
	if us >= 1 {
		idx = int(math.Log2(us)) + 1
	}
	if idx >= len(l.Buckets) {
		idx = len(l.Buckets) - 1
	}
	l.Buckets[idx]++
}

// Mean returns the mean persistence latency.
func (l LatencyStats) Mean() sim.Time {
	if l.Count == 0 {
		return 0
	}
	return sim.Time(int64(l.Sum) / l.Count)
}

// Quantile returns an upper bound on the q-quantile latency at bucket
// (power-of-two microsecond) resolution.
func (l LatencyStats) Quantile(q float64) sim.Time {
	if l.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(l.Count)))
	var cum int64
	for i, c := range l.Buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return sim.Microsecond
			}
			return sim.Time(1<<uint(i)) * sim.Microsecond
		}
	}
	return l.Max
}

// String renders a compact summary.
func (l LatencyStats) String() string {
	return fmt.Sprintf("n=%d mean=%v p99<=%v max=%v violations=%d",
		l.Count, l.Mean(), l.Quantile(0.99), l.Max, l.Violations)
}
