package lss

import (
	"bytes"
	"errors"
	"testing"

	"adapt/internal/sim"
)

// Native fuzz targets for the store's operation surface and the
// checkpoint parser. Both run on a tiny paranoid geometry so the
// store's fail-stop self-checks (CheckInvariants after every GC cycle
// and Drain) turn any state corruption into a crash the fuzzer can
// minimize. Seed corpora live under testdata/fuzz; `make fuzz` gives
// every target a real exploration budget.

type fuzzPolicy struct{}

func (fuzzPolicy) Name() string { return "fuzz" }
func (fuzzPolicy) Groups() int  { return 2 }
func (fuzzPolicy) PlaceUser(lba int64, _ sim.Time, _ sim.WriteClock) GroupID {
	return GroupID(lba & 1)
}
func (fuzzPolicy) PlaceGC(int64, GroupID, sim.WriteClock, sim.WriteClock, sim.WriteClock) GroupID {
	return 1
}

func fuzzConfig() Config {
	return Config{
		BlockSize:     32,
		ChunkBlocks:   4,
		SegmentChunks: 4,
		UserBlocks:    1024,
		OverProvision: 0.3,
		Paranoid:      true,
	}
}

// FuzzStoreOps decodes the input as a stream of store operations —
// writes, trims, clock advances, drains — and replays it on a paranoid
// store. Out-of-range requests must come back as errors, never as
// corruption; the final invariant sweep catches anything the paranoid
// GC checks missed.
func FuzzStoreOps(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 11, 0, 2, 10, 0, 3, 50, 0})
	f.Add(bytes.Repeat([]byte{0, 200, 1, 1, 200, 1}, 512))
	f.Add([]byte{2, 0, 4, 3, 255, 0, 0, 0, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := fuzzConfig()
		s := New(cfg, fuzzPolicy{})
		now := sim.Time(0)
		ops := 0
		for i := 0; i+2 < len(data) && ops < 4096; i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			// Mostly in-range addresses, occasionally past the end to
			// exercise the validation path.
			lba := (int64(a) | int64(b)<<8) % (cfg.UserBlocks + 8)
			switch op % 4 {
			case 0, 1:
				if err := s.WriteBlock(lba, now); err != nil && lba < cfg.UserBlocks {
					t.Fatalf("in-range write %d rejected: %v", lba, err)
				}
			case 2:
				_ = s.Trim(lba, int(a%8)+1, now)
			case 3:
				now += sim.Time(a) * sim.Microsecond
				if b%4 == 0 {
					s.Drain(now)
				}
			}
			ops++
		}
		s.Drain(now + sim.Second)
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("store corrupt after %d ops: %v", ops, err)
		}
	})
}

// FuzzRecover feeds arbitrary bytes to the checkpoint parser: hostile
// images must be rejected with ErrBadCheckpoint (never a panic or an
// oversized allocation), and anything accepted must produce a store
// that passes the full invariant sweep.
func FuzzRecover(f *testing.F) {
	cfg := fuzzConfig()
	cfg.Paranoid = false
	// Seed with genuine checkpoints: empty, mid-traffic, and drained.
	for _, ops := range []int{0, 300, 900} {
		s := New(cfg, fuzzPolicy{})
		now := sim.Time(0)
		for i := 0; i < ops; i++ {
			if err := s.WriteBlock(int64(i*7%512), now); err != nil {
				f.Fatal(err)
			}
			now += sim.Microsecond
		}
		if ops > 500 {
			s.Drain(now)
		}
		var buf bytes.Buffer
		if err := s.WriteCheckpoint(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Recover(bytes.NewReader(data), cfg, fuzzPolicy{})
		if err != nil {
			if !errors.Is(err, ErrBadCheckpoint) {
				t.Fatalf("rejection not wrapped in ErrBadCheckpoint: %v", err)
			}
			return
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("accepted checkpoint built a corrupt store: %v", err)
		}
	})
}
