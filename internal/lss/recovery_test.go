package lss

import (
	"bytes"
	"strings"
	"testing"

	"adapt/internal/sim"
)

// mappingSnapshot captures lba -> decoded block presence for
// comparing stores.
func mappingSnapshot(s *Store) map[int64]bool {
	out := make(map[int64]bool)
	for lba, loc := range s.mapping {
		if loc >= 0 {
			out[int64(lba)] = true
		}
	}
	return out
}

func TestCheckpointRoundTripAfterDrain(t *testing.T) {
	cfg := smallConfig()
	s := New(cfg, twoGroup{})
	rng := sim.NewRNG(31)
	now := sim.Time(0)
	for i := 0; i < 20000; i++ {
		now += sim.Time(rng.Int63n(150)) * sim.Microsecond
		if err := s.WriteBlock(rng.Int63n(cfg.UserBlocks), now); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain(now + sim.Second)
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(&buf, cfg, twoGroup{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// After Drain every block is durable: the recovered mapping must
	// cover exactly the same live set.
	want := mappingSnapshot(s)
	got := mappingSnapshot(r)
	if len(want) != len(got) {
		t.Fatalf("recovered %d live blocks, want %d", len(got), len(want))
	}
	for lba := range want {
		if !got[lba] {
			t.Fatalf("lba %d lost in recovery", lba)
		}
	}
	if r.WriteClock() != s.WriteClock() {
		t.Fatalf("write clock %d, want %d", r.WriteClock(), s.WriteClock())
	}
	// The recovered store must accept writes and keep invariants.
	for i := 0; i < 5000; i++ {
		now += 10 * sim.Microsecond
		if err := r.WriteBlock(rng.Int63n(cfg.UserBlocks), now); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashLosesOnlyUnflushedTail(t *testing.T) {
	cfg := smallConfig()
	s := New(cfg, twoGroup{})
	// Flush one full chunk (4 blocks), then leave 2 blocks pending.
	for i := int64(0); i < 4; i++ {
		s.WriteBlock(i, 0)
	}
	s.WriteBlock(100, 0)
	s.WriteBlock(101, 0)
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(&buf, cfg, twoGroup{})
	if err != nil {
		t.Fatal(err)
	}
	got := mappingSnapshot(r)
	for i := int64(0); i < 4; i++ {
		if !got[i] {
			t.Fatalf("flushed block %d lost", i)
		}
	}
	if got[100] || got[101] {
		t.Fatal("unflushed pending blocks survived the crash")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoversFromShadowCopy(t *testing.T) {
	// A block whose only durable copy is a shadow append must survive.
	adv := &scriptedAdvisor3{}
	adv.action = func(g GroupID) TimeoutAction {
		if g == 0 {
			return TimeoutAction{Kind: ShadowInto, Target: 1}
		}
		return TimeoutAction{Kind: PadOwn}
	}
	cfg := smallConfig()
	s := New(cfg, adv)
	s.WriteBlock(0, 0) // group 0, pending
	// Timeout: block 0 shadow-persists into group 1's chunk, which is
	// flushed; the primary stays pending (not durable).
	s.WriteBlock(2, sim.Millisecond)
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(&buf, cfg, adv)
	if err != nil {
		t.Fatal(err)
	}
	got := mappingSnapshot(r)
	if !got[0] {
		t.Fatal("shadow-persisted block lost in crash recovery")
	}
	if got[2] {
		t.Fatal("unflushed block 2 survived")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// GC after recovery must be able to migrate the shadow-mapped
	// block without losing it.
	rng := sim.NewRNG(7)
	now := 2 * sim.Millisecond
	for i := 0; i < int(cfg.UserBlocks)*6; i++ {
		now += sim.Microsecond
		lba := rng.Int63n(cfg.UserBlocks)
		if lba == 0 {
			continue // never overwrite block 0
		}
		if err := r.WriteBlock(lba, now); err != nil {
			t.Fatal(err)
		}
	}
	if !mappingSnapshot(r)[0] {
		t.Fatal("shadow-recovered block lost during post-recovery GC")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLatestVersionWinsAcrossSegments(t *testing.T) {
	cfg := smallConfig()
	s := New(cfg, twoGroup{})
	// Write block 7 many times across chunks/segments, always at the
	// same timestamp so everything flushes densely.
	for i := 0; i < 200; i++ {
		s.WriteBlock(7, 0)
		s.WriteBlock(int64(i%50)+100, 0) // interleave to spread chunks
	}
	s.Drain(sim.Second)
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Recover(&buf, cfg, twoGroup{})
	if err != nil {
		t.Fatal(err)
	}
	// The recovered mapping for block 7 must match the live store's.
	if r.mapping[7] != s.mapping[7] {
		t.Fatalf("recovered mapping %d, want %d (stale version chosen)", r.mapping[7], s.mapping[7])
	}
}

func TestRecoverRejectsMismatchedGeometry(t *testing.T) {
	cfg := smallConfig()
	s := New(cfg, twoGroup{})
	s.WriteBlock(0, 0)
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.UserBlocks = 8192
	if _, err := Recover(bytes.NewReader(buf.Bytes()), other, twoGroup{}); err == nil {
		t.Fatal("mismatched geometry accepted")
	}
}

func TestRecoverRejectsCorruption(t *testing.T) {
	if _, err := Recover(strings.NewReader("JUNKJUNKJUNK"), smallConfig(), twoGroup{}); err == nil {
		t.Fatal("garbage accepted")
	}
	cfg := smallConfig()
	s := New(cfg, twoGroup{})
	for i := int64(0); i < 64; i++ {
		s.WriteBlock(i, 0)
	}
	var buf bytes.Buffer
	if err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Recover(bytes.NewReader(trunc), cfg, twoGroup{}); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestRecoveredStoreMatchesReplayWA(t *testing.T) {
	// Recovery must leave the store in a state where continued
	// operation is sane: run the same tail workload on a recovered
	// store and on the original; live data must match at the end.
	cfg := smallConfig()
	build := func() *Store {
		s := New(cfg, twoGroup{})
		rng := sim.NewRNG(77)
		now := sim.Time(0)
		for i := 0; i < 30000; i++ {
			now += 20 * sim.Microsecond
			s.WriteBlock(rng.Int63n(cfg.UserBlocks), now)
		}
		s.Drain(now + sim.Second)
		return s
	}
	orig := build()
	var buf bytes.Buffer
	if err := orig.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(&buf, cfg, twoGroup{})
	if err != nil {
		t.Fatal(err)
	}
	tail := func(s *Store) {
		rng := sim.NewRNG(99)
		now := s.Now()
		for i := 0; i < 10000; i++ {
			now += 20 * sim.Microsecond
			s.WriteBlock(rng.Int63n(cfg.UserBlocks), now)
		}
		s.Drain(now + sim.Second)
	}
	tail(orig)
	tail(rec)
	a, b := mappingSnapshot(orig), mappingSnapshot(rec)
	if len(a) != len(b) {
		t.Fatalf("live sets diverge: %d vs %d", len(a), len(b))
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
