// Package lss implements the log-structured store deployed on an SSD
// array (paper §2.1–2.2): fixed-size segments divided into array
// chunks, per-group open segments with SLA-bounded chunk coalescing and
// zero padding, garbage collection with pluggable victim selection, and
// pluggable data-placement policies. It is the substrate every
// placement scheme in the evaluation runs on.
package lss

import (
	"fmt"

	"adapt/internal/sim"
)

// GroupID identifies a segment group (a stream in multi-stream terms).
type GroupID int

// NoGroup is returned by advisory interfaces to decline a placement.
const NoGroup GroupID = -1

// VictimPolicy selects GC victim segments.
type VictimPolicy int

// Victim selection policies from the paper's evaluation (§4.2) plus
// the Greedy variants discussed in related work (§5): d-choices [22],
// Windowed Greedy [8], and Random Greedy [15].
const (
	Greedy VictimPolicy = iota
	CostBenefit
	DChoices
	WindowedGreedy
	RandomGreedy
)

// String returns the policy name.
func (v VictimPolicy) String() string {
	switch v {
	case Greedy:
		return "greedy"
	case CostBenefit:
		return "cost-benefit"
	case DChoices:
		return "d-choices"
	case WindowedGreedy:
		return "windowed-greedy"
	case RandomGreedy:
		return "random-greedy"
	default:
		return fmt.Sprintf("victim(%d)", int(v))
	}
}

// Config describes the store geometry and policies. Zero fields take
// the defaults from the paper's experimental setup (§4.1): 4 KiB
// blocks, 64 KiB chunks, 100 µs coalescing window, RAID-5 over 4 SSDs.
type Config struct {
	// BlockSize is the user request granularity in bytes.
	BlockSize int
	// ChunkBlocks is the array chunk size in blocks (the array's
	// minimum write unit).
	ChunkBlocks int
	// SegmentChunks is the segment size in chunks.
	SegmentChunks int
	// DataColumns is the number of data columns per RAID stripe.
	DataColumns int
	// UserBlocks is the user-visible LBA space in blocks.
	UserBlocks int64
	// OverProvision is the extra physical capacity fraction (0.15 means
	// physical = 1.15 × user capacity).
	OverProvision float64
	// SLAWindow is the maximum time a user block may wait in an
	// unfilled chunk before the chunk is padded and flushed.
	SLAWindow sim.Time
	// Victim selects the GC victim policy.
	Victim VictimPolicy
	// DChoicesD is the sample size when Victim == DChoices.
	DChoicesD int
	// GreedyWindow is the candidate window (in segments, oldest first)
	// when Victim == WindowedGreedy. Zero means 1/8 of capacity.
	GreedyWindow int
	// GCLowWater triggers GC when free segments drop to or below it;
	// GCHighWater is where a GC cycle stops. Zero means derived
	// defaults.
	GCLowWater, GCHighWater int
	// BackgroundGC defers watermark-triggered GC to an external pacer:
	// allocation no longer runs a full synchronous cycle at the low
	// watermark; instead the owner polls GCNeeded and drives bounded
	// slices through GCStep. Allocation still runs the cycle inline —
	// synchronously, to completion — if the free pool falls to
	// GCEmergencyFloor, so correctness never depends on the pacer
	// keeping up.
	BackgroundGC bool
	// GCEmergencyFloor is the free-segment hard floor for BackgroundGC
	// mode. Zero means max(1, GCLowWater-2); it must stay below
	// GCLowWater so the pacer has room to act first.
	GCEmergencyFloor int
	// LegacyVictimScan selects the reference scan-and-sort victim
	// selector instead of the incremental victim index. The two produce
	// identical victim sequences for the deterministic policies; the
	// scan rescans every segment per GC cycle and exists for
	// differential tests and benchmarks.
	LegacyVictimScan bool
	// Paranoid turns on fail-stop self-verification: CheckInvariants
	// runs after every GC cycle and at every Drain, and a violation
	// panics instead of letting corruption propagate. It is O(capacity)
	// per GC cycle — meant for tests, fuzzing, and oracle-backed
	// replays (make paranoid), not production runs. The public
	// SimulatorConfig.Paranoid additionally attaches the full
	// reference-model oracle from internal/checker.
	Paranoid bool
}

// GeometryDefaults returns cfg with the group-independent geometry
// fields (block/chunk/segment sizes, columns, capacity,
// over-provisioning, SLA window, d-choices sample) defaulted. The
// sharded engine uses it to partition the LBA space before any
// placement policy — and therefore any group count — exists; the GC
// watermarks stay untouched and are completed per store by New.
func (cfg Config) GeometryDefaults() Config {
	if cfg.BlockSize == 0 {
		cfg.BlockSize = 4096
	}
	if cfg.ChunkBlocks == 0 {
		cfg.ChunkBlocks = 16 // 64 KiB chunks of 4 KiB blocks
	}
	if cfg.SegmentChunks == 0 {
		cfg.SegmentChunks = 32 // 2 MiB segments
	}
	if cfg.DataColumns == 0 {
		cfg.DataColumns = 3 // 4-SSD RAID-5
	}
	if cfg.UserBlocks == 0 {
		cfg.UserBlocks = 64 << 10
	}
	if cfg.OverProvision == 0 {
		cfg.OverProvision = 0.15
	}
	if cfg.SLAWindow == 0 {
		cfg.SLAWindow = 100 * sim.Microsecond
	}
	if cfg.DChoicesD == 0 {
		cfg.DChoicesD = 8
	}
	return cfg
}

// withDefaults returns cfg with zero fields replaced by defaults and
// validates the geometry.
func (cfg Config) withDefaults(groups int) Config {
	cfg = cfg.GeometryDefaults()
	if cfg.GCLowWater == 0 {
		cfg.GCLowWater = groups + 2
	}
	if cfg.GCHighWater <= cfg.GCLowWater {
		cushion := 4
		if cfg.BackgroundGC {
			// The watermark cushion is the write burst the pacer can
			// absorb as paced work: below the high watermark it starts
			// trickling, and only after the whole cushion is consumed
			// does an emergency cycle stall a writer. A background store
			// therefore provisions a deeper default cushion than the
			// synchronous trigger needs; the reserve is added on top of
			// the user capacity (totalSegments), not carved out of the
			// over-provisioning spare, so WA stays comparable across
			// modes.
			cushion = 12
		}
		cfg.GCHighWater = cfg.GCLowWater + cushion
	}
	if cfg.BackgroundGC {
		if cfg.GCEmergencyFloor == 0 {
			cfg.GCEmergencyFloor = cfg.GCLowWater - 2
			if cfg.GCEmergencyFloor < 1 {
				cfg.GCEmergencyFloor = 1
			}
		}
		if cfg.GCEmergencyFloor < 1 || cfg.GCEmergencyFloor >= cfg.GCLowWater {
			panic("lss: GCEmergencyFloor must be in [1, GCLowWater)")
		}
	}
	if cfg.BlockSize <= 0 || cfg.ChunkBlocks <= 0 || cfg.SegmentChunks <= 0 {
		panic("lss: non-positive geometry")
	}
	if cfg.UserBlocks <= 0 {
		panic("lss: non-positive user capacity")
	}
	if cfg.OverProvision < 0.02 {
		panic("lss: over-provisioning below 2% cannot sustain GC")
	}
	return cfg
}

// TotalSegments returns the physical segment count a store built from
// this configuration with a groups-group policy will have. External
// durable backends (internal/segfile) use it to synthesize recovery
// images that match the store New would build.
func (cfg Config) TotalSegments(groups int) int {
	c := cfg.withDefaults(groups)
	return c.totalSegments(groups)
}

// SegmentBlocks returns blocks per segment.
func (cfg Config) SegmentBlocks() int { return cfg.ChunkBlocks * cfg.SegmentChunks }

// ChunkBytes returns the chunk size in bytes.
func (cfg Config) ChunkBytes() int64 { return int64(cfg.BlockSize) * int64(cfg.ChunkBlocks) }

// totalSegments derives the physical segment count: enough segments
// to hold the user capacity plus the over-provisioning spare, with the
// per-group open segments and the GC watermark reserve added on top so
// that the effective spare is scale-independent (at paper scale the
// reserve is negligible; at test scale it would otherwise swallow the
// spare and inflate WA for many-group policies).
func (cfg Config) totalSegments(groups int) int {
	physBlocks := float64(cfg.UserBlocks) * (1 + cfg.OverProvision)
	n := int(physBlocks)/cfg.SegmentBlocks() + 1
	return n + groups + cfg.GCHighWater + 2
}
