package lss

// Read-only inspection API. The correctness checker (internal/checker)
// rebuilds the store's live-block sets, garbage counts, and recovery
// winners independently from these views and cross-checks them against
// the store's own accounting; they are also the seam the metamorphic
// harness uses to capture victim sequences. Everything here is a
// snapshot of private state — callers must not retain views across
// mutating operations.

// SegmentState is the externally visible lifecycle state of a segment.
type SegmentState uint8

// Segment lifecycle states, in allocation order.
const (
	SegmentFree SegmentState = iota
	SegmentOpen
	SegmentSealed
)

// String returns the state name.
func (st SegmentState) String() string {
	switch st {
	case SegmentFree:
		return "free"
	case SegmentOpen:
		return "open"
	case SegmentSealed:
		return "sealed"
	default:
		return "invalid"
	}
}

// SegmentView is a read-only snapshot of one segment's accounting.
type SegmentView struct {
	ID      int
	State   SegmentState
	Group   GroupID
	Written int // slots consumed (user/GC/shadow/padding)
	Valid   int // live (mapped) blocks by the store's own count
}

// Segment returns a snapshot of segment id, or ok=false when the id is
// out of range.
func (s *Store) Segment(id int) (SegmentView, bool) {
	if id < 0 || id >= len(s.segments) {
		return SegmentView{}, false
	}
	seg := s.segments[id]
	return SegmentView{
		ID:      seg.id,
		State:   SegmentState(seg.state),
		Group:   seg.group,
		Written: seg.written,
		Valid:   seg.valid,
	}, true
}

// SlotKind classifies what a written segment slot holds.
type SlotKind uint8

// Slot kinds.
const (
	// SlotPad is zero padding: no block address, never mapped.
	SlotPad SlotKind = iota
	// SlotPrimary holds a user- or GC-appended block.
	SlotPrimary
	// SlotShadow holds a shadow copy written by cross-group
	// aggregation; the mapping points at it only after crash recovery.
	SlotShadow
)

// SlotInfo describes one written slot of a segment.
type SlotInfo struct {
	Kind SlotKind
	// LBA is the block address the slot holds (primary or shadow);
	// zero for padding.
	LBA int64
	// Version is the monotone append sequence stamped when the slot
	// was written; recovery's roll-forward picks the highest version
	// per LBA among durable slots. Zero for padding.
	Version int64
}

// Slot returns the decoded contents of the given slot, or ok=false
// when the slot is out of range or not yet written.
func (s *Store) Slot(segID, slot int) (SlotInfo, bool) {
	if segID < 0 || segID >= len(s.segments) || slot < 0 {
		return SlotInfo{}, false
	}
	seg := s.segments[segID]
	if slot >= seg.written {
		return SlotInfo{}, false
	}
	v := seg.lbas[slot]
	lba, ok := decodeSlot(v)
	if !ok {
		return SlotInfo{Kind: SlotPad}, true
	}
	kind := SlotPrimary
	if v <= shadowBase {
		kind = SlotShadow
	}
	return SlotInfo{Kind: kind, LBA: lba, Version: seg.vers[slot]}, true
}

// Location returns the physical position the mapping holds for lba, or
// ok=false when the block is unmapped or out of range.
func (s *Store) Location(lba int64) (segID, slot int, ok bool) {
	if lba < 0 || lba >= s.cfg.UserBlocks {
		return 0, 0, false
	}
	loc := s.mapping[lba]
	if loc < 0 {
		return 0, 0, false
	}
	return int(loc / int64(s.segBlocks)), int(loc % int64(s.segBlocks)), true
}

// FlushedSlots returns how many slots of the segment are durable: all
// written slots for sealed segments, and the flushed-chunk prefix
// (excluding the buffered tail chunk) for open ones. This matches
// exactly what WriteCheckpoint persists, so an independent recovery
// oracle can predict Recover's roll-forward.
func (s *Store) FlushedSlots(segID int) int {
	if segID < 0 || segID >= len(s.segments) {
		return 0
	}
	seg := s.segments[segID]
	if seg.state == segOpen {
		return seg.written - seg.written%s.chunkBlocks
	}
	return seg.written
}
